package cogdiff

import (
	"strings"
	"testing"
)

func TestInstructionsListing(t *testing.T) {
	names := Instructions()
	if len(names) < 250 {
		t.Fatalf("expected byte-codes + native methods, got %d entries", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate instruction name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"primAdd", "pushTemporaryVariable0", "primitiveAsFloat", "primitiveFFIMemCopy"} {
		if !seen[want] {
			t.Errorf("missing instruction %q", want)
		}
	}
}

func TestExploreFacade(t *testing.T) {
	ex, err := Explore("primAdd")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Kind != "bytecode" || len(ex.Paths) < 5 {
		t.Fatalf("unexpected exploration: kind=%s paths=%d", ex.Kind, len(ex.Paths))
	}
	foundOverflow := false
	for _, p := range ex.Paths {
		if strings.Contains(p.Constraints, "!(isIntegerValue") {
			foundOverflow = true
		}
	}
	if !foundOverflow {
		t.Error("overflow path missing from facade exploration")
	}

	if _, err := Explore("noSuchInstruction"); err == nil {
		t.Error("unknown instruction must error")
	}
}

func TestExploreReportFacade(t *testing.T) {
	out, err := ExploreReport("primitiveAdd")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"primitiveAdd", "failure", "success", "constraint path"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTestInstructionFacade(t *testing.T) {
	res, err := TestInstruction("primitiveFloatAdd", CompilerNativeMethods)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Differences) == 0 {
		t.Fatal("primitiveFloatAdd must differ under the production defects")
	}
	for _, d := range res.Differences {
		if d.Family != "missing compiled type check" {
			t.Errorf("unexpected family %q: %s", d.Family, d.Detail)
		}
	}

	if _, err := TestInstruction("primAdd", "nonsense"); err == nil {
		t.Error("unknown compiler must error")
	}
	if _, err := TestInstruction("nope", CompilerSimple); err == nil {
		t.Error("unknown instruction must error")
	}
}

func TestSeededCauseInventory(t *testing.T) {
	inv := SeededCauseInventory()
	total := 0
	for _, n := range inv {
		total += n
	}
	if total != 91 {
		t.Fatalf("seeded catalog must have 91 causes like the paper, got %d: %v", total, inv)
	}
	if inv["missing functionality"] != 60 || inv["missing compiled type check"] != 13 {
		t.Fatalf("catalog family counts wrong: %v", inv)
	}
}

func TestSortedFamilies(t *testing.T) {
	fams := SortedFamilies(map[string]int{"b": 1, "a": 2})
	if len(fams) != 2 || fams[0] != "a" {
		t.Fatalf("sorted families wrong: %v", fams)
	}
}
