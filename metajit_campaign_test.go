package cogdiff

import (
	"testing"
)

func TestParseCompilerSpec(t *testing.T) {
	cases := []struct {
		spec string
		want []string
		err  bool
	}{
		{"", []string{"native", "simple", "stacktoregister", "registerallocating"}, false},
		{"+metajit", []string{"native", "simple", "stacktoregister", "registerallocating", "metajit"}, false},
		{"simple,metajit", []string{"simple", "metajit"}, false},
		{" simple , metajit ", []string{"simple", "metajit"}, false},
		{"+metajit,+metajit", []string{"native", "simple", "stacktoregister", "registerallocating", "metajit"}, false},
		{"simple,+metajit", nil, true},
		{"bogus", nil, true},
	}
	for _, c := range cases {
		got, err := ParseCompilerSpec(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParseCompilerSpec(%q): expected error, got %v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCompilerSpec(%q): %v", c.spec, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseCompilerSpec(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseCompilerSpec(%q)[%d] = %q, want %q", c.spec, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseSequenceCompilerSpec(t *testing.T) {
	got, err := ParseSequenceCompilerSpec("+metajit")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"simple", "stacktoregister", "registerallocating", "metajit"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := ParseSequenceCompilerSpec("native,simple"); err == nil {
		t.Fatal("native accepted for sequence fuzzing")
	}
	if _, err := ParseSequenceCompilerSpec("+native"); err == nil {
		t.Fatal("+native accepted for sequence fuzzing")
	}
}

// TestMetaJITCampaignByteIdentity is the fifth compiler's determinism
// contract, checked on the full campaign: with the meta-compiled
// front-end in the set, the stable report surface must be byte-identical
// at any worker count and any exploration-cache state (off, cold, warm,
// read-only warm). This is the same contract the four hand-written
// compilers honour — the derived front-end must not introduce
// scheduling- or cache-dependent behaviour.
func TestMetaJITCampaignByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-compiler campaign matrix; run without -short")
	}
	compilers, err := ParseCompilerSpec("+metajit")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int, dir, mode string) string {
		t.Helper()
		sum, err := RunCampaign(CampaignOptions{
			Compilers: compilers,
			Workers:   workers,
			CacheDir:  dir,
			CacheMode: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum.StableReport()
	}

	baseline := run(1, "", "")
	if baseline == "" {
		t.Fatal("empty stable report")
	}
	dir := t.TempDir()
	cases := []struct {
		name    string
		workers int
		dir     string
		mode    string
	}{
		{"workers=4 cache=off", 4, "", ""},
		{"workers=gomaxprocs cache=off", 0, "", ""},
		{"workers=1 cache=cold", 1, dir, "rw"},
		{"workers=4 cache=warm", 4, dir, "rw"},
		{"workers=1 cache=warm-ro", 1, dir, "ro"},
	}
	for _, c := range cases {
		if got := run(c.workers, c.dir, c.mode); got != baseline {
			t.Errorf("%s: stable report diverged from serial cache-less run", c.name)
		}
	}
}

// TestMetaJITCampaignRowPresent pins that an opted-in metajit campaign
// actually tests instructions under the fifth compiler and reports them
// as a Table 2 row.
func TestMetaJITCampaignRowPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-compiler campaign; run without -short")
	}
	sum, err := RunCampaign(CampaignOptions{Compilers: []string{CompilerSimple, CompilerMetaJIT}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 2 {
		t.Fatalf("expected 2 campaign rows, got %d", len(sum.Rows))
	}
	meta := sum.Rows[1]
	if meta.Compiler != "Meta-compiled BC Compiler" {
		t.Fatalf("second row is %q, want the meta-compiled front-end", meta.Compiler)
	}
	if meta.Instructions == 0 || meta.Curated == 0 {
		t.Fatalf("metajit row tested nothing: %+v", meta)
	}
}
