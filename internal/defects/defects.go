// Package defects hosts the seeded defect catalog of this reproduction.
//
// The paper evaluates the testing technique against the organic defects of
// a ten-year-old production VM. This substrate is written from scratch, so
// equivalent defects are seeded at the same locations and of the same
// kinds the paper reports (§5.3, Table 3). The differential tester has no
// knowledge of this package: it must rediscover every difference through
// interpreter-guided testing, and its classification is compared against
// this catalog in the evaluation harness.
package defects

import "fmt"

// Family is a defect category of Table 3.
type Family int

const (
	MissingInterpreterTypeCheck Family = iota
	MissingCompiledTypeCheck
	OptimizationDifference
	BehavioralDifference
	MissingFunctionality
	SimulationError

	NumFamilies
)

func (f Family) String() string {
	switch f {
	case MissingInterpreterTypeCheck:
		return "missing interpreter type check"
	case MissingCompiledTypeCheck:
		return "missing compiled type check"
	case OptimizationDifference:
		return "optimisation difference"
	case BehavioralDifference:
		return "behavioral difference"
	case MissingFunctionality:
		return "missing functionality"
	case SimulationError:
		return "simulation error"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// Switches toggles the seeded defects. The zero value is a pristine VM;
// ProductionVM returns the state the evaluation reproduces.
type Switches struct {
	// AsFloatSkipsTypeCheck: the interpreter's primitiveAsFloat receiver
	// check is an assertion compiled out of the production build
	// (Listing 5) — the 1 missing *interpreter* type check.
	AsFloatSkipsTypeCheck bool

	// FloatPrimsSkipReceiverCheck: the native-method compiler's templates
	// for float arithmetic, comparison, truncated, fractionPart, sqrt,
	// exponent and timesTwoPower unbox the receiver without a type check
	// and segfault on wrong receivers — the 13 missing *compiled* type
	// checks (plus the 2 carriers of the simulation errors below).
	FloatPrimsSkipReceiverCheck bool

	// BitwisePrimsUnsigned: compiled bitwise native methods accept
	// negative operands as unsigned values while the interpreter fails
	// and falls back to library code — the 5 behavioral differences.
	BitwisePrimsUnsigned bool

	// FFIMissingInJIT: the FFI acceleration native methods and the
	// libm-backed float functions were never implemented in the 32-bit
	// native-method compiler — the 60 missing-functionality causes.
	FFIMissingInJIT bool

	// SimulationMissingAccessors: two register accessors of the machine
	// simulation's fault-recovery layer are missing — the 2 simulation
	// errors, surfaced by the float templates of primitiveFloatTruncated
	// and primitiveFloatFractionPart.
	SimulationMissingAccessors bool

	// ConstFoldSignError is a pass-targeted defect: the constant-folding
	// pass of the byte-code pipelines folds subtraction as addition.
	// It is not part of the production-VM catalog; campaigns enable it
	// explicitly to exercise pass-level difference blame, which must
	// attribute the resulting differences to "pass:constfold".
	ConstFoldSignError bool

	// VerifyStackLeak is a pass-targeted defect aimed at the *static*
	// verification tier: the peephole pass of the byte-code pipelines
	// deletes the first pop it encounters, leaking one stack slot. It is
	// not part of the production-VM catalog; campaigns enable it
	// explicitly to exercise static pass blame — the IR verifier must
	// reject every affected unit with
	// "ir-verify:stack-balance after pass:peephole" before execution.
	VerifyStackLeak bool

	// MetaJITGuardSignError is a generator-targeted defect: the
	// meta-compiled front-end (internal/metacompile) lowers strict
	// less-than path-condition guards as less-or-equal, so boundary
	// inputs take the wrong recorded path. It is not part of the
	// production-VM catalog; campaigns enable it explicitly to exercise
	// front-end blame on the derived compiler, which must attribute the
	// resulting differences to "front-end".
	MetaJITGuardSignError bool
}

// ProductionVM returns the defect state of the evaluated VM: everything
// the paper found is present.
func ProductionVM() Switches {
	return Switches{
		AsFloatSkipsTypeCheck:       true,
		FloatPrimsSkipReceiverCheck: true,
		BitwisePrimsUnsigned:        true,
		FFIMissingInJIT:             true,
		SimulationMissingAccessors:  true,
	}
}

// Pristine returns a defect-free VM (used by sanity tests: a clean VM must
// produce only the inherent optimization differences).
func Pristine() Switches { return Switches{} }

// Cause is a catalog entry: one root cause as the evaluation counts them
// (Table 3 counts causes once regardless of how many paths they fail).
type Cause struct {
	ID          string
	Family      Family
	Instrument  string // instruction or component carrying the defect
	Description string
}

// Catalog returns the full seeded-cause inventory; the evaluation harness
// compares rediscovered causes against it.
func Catalog() []Cause {
	var out []Cause
	out = append(out, Cause{
		ID: "interp-asfloat-check", Family: MissingInterpreterTypeCheck,
		Instrument:  "primitiveAsFloat",
		Description: "receiver assertion compiled out; pointer receivers coerce to garbage floats",
	})
	for _, p := range []string{
		"primitiveFloatAdd", "primitiveFloatSubtract", "primitiveFloatMultiply", "primitiveFloatDivide",
		"primitiveFloatLessThan", "primitiveFloatGreaterThan", "primitiveFloatLessOrEqual",
		"primitiveFloatGreaterOrEqual", "primitiveFloatEqual", "primitiveFloatNotEqual",
		"primitiveFloatSquareRoot", "primitiveFloatExponent", "primitiveFloatTimesTwoPower",
	} {
		out = append(out, Cause{
			ID: "jit-" + p + "-receiver-check", Family: MissingCompiledTypeCheck,
			Instrument:  p,
			Description: "compiled template unboxes the receiver without a type check",
		})
	}
	for _, bc := range []string{"primAdd", "primSubtract", "primMultiply", "primDivide",
		"primLessThan", "primGreaterThan", "primLessOrEqual", "primGreaterOrEqual",
		"primEqual", "primNotEqual"} {
		out = append(out, Cause{
			ID: "opt-float-" + bc, Family: OptimizationDifference,
			Instrument:  bc,
			Description: "interpreter inlines the float fast path; the byte-code compilers do not",
		})
	}
	for _, p := range []string{"primitiveBitAnd", "primitiveBitOr", "primitiveBitXor",
		"primitiveBitShift", "primitiveMakePoint"} {
		out = append(out, Cause{
			ID: "beh-" + p, Family: BehavioralDifference,
			Instrument:  p,
			Description: "compiled code accepts operands the interpreter rejects (unsigned bitwise / unchecked point parts)",
		})
	}
	// Missing functionality: the FFI family plus the libm-backed float
	// functions, never implemented in the 32-bit native-method compiler.
	for _, p := range FFIMissingPrimitiveNames() {
		out = append(out, Cause{
			ID: "mf-" + p, Family: MissingFunctionality,
			Instrument:  p,
			Description: "no 32-bit compiler template; compiled code raises not-yet-implemented",
		})
	}
	out = append(out,
		Cause{ID: "sim-setter-r5", Family: SimulationError, Instrument: "primitiveFloatTruncated",
			Description: "fault-recovery register setter for r5 missing in the simulation"},
		Cause{ID: "sim-setter-r3", Family: SimulationError, Instrument: "primitiveFloatFractionPart",
			Description: "fault-recovery register setter for r3 missing in the simulation"},
	)
	return out
}

// CountByFamily aggregates the catalog like Table 3.
func CountByFamily(causes []Cause) map[Family]int {
	out := make(map[Family]int)
	for _, c := range causes {
		out[c.Family]++
	}
	return out
}
