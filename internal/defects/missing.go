package defects

import "cogdiff/internal/primitives"

// FFIMissingPrimitiveNames lists the native methods that have no template
// in the 32-bit native-method compiler: the entire FFI acceleration family
// plus the libm-backed float functions (sin, arctan, ln, exp), which the
// interpreter implements through the C runtime.
func FFIMissingPrimitiveNames() []string {
	var out []string
	for _, p := range primitives.NewTable().All() {
		if p.Category == primitives.CatFFI {
			out = append(out, p.Name)
		}
	}
	out = append(out,
		"primitiveFloatSin", "primitiveFloatArctan",
		"primitiveFloatLogN", "primitiveFloatExp",
	)
	return out
}

// IsMissingInJIT reports whether the named native method lacks a compiler
// template under the given switches.
func IsMissingInJIT(sw Switches, name string, category primitives.Category) bool {
	if !sw.FFIMissingInJIT {
		return false
	}
	if category == primitives.CatFFI {
		return true
	}
	switch name {
	case "primitiveFloatSin", "primitiveFloatArctan", "primitiveFloatLogN", "primitiveFloatExp":
		return true
	}
	return false
}
