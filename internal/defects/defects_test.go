package defects

import (
	"testing"

	"cogdiff/internal/primitives"
)

func TestCatalogMatchesPaperCounts(t *testing.T) {
	counts := CountByFamily(Catalog())
	want := map[Family]int{
		MissingInterpreterTypeCheck: 1,
		MissingCompiledTypeCheck:    13,
		OptimizationDifference:      10,
		BehavioralDifference:        5,
		MissingFunctionality:        60,
		SimulationError:             2,
	}
	for fam, n := range want {
		if counts[fam] != n {
			t.Errorf("%s: catalog has %d causes, paper reports %d", fam, counts[fam], n)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 91 {
		t.Errorf("catalog total %d, paper reports 91", total)
	}
}

func TestCatalogIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Catalog() {
		if c.ID == "" || c.Instrument == "" || c.Description == "" {
			t.Errorf("incomplete cause %+v", c)
		}
		if seen[c.ID] {
			t.Errorf("duplicate cause id %q", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestProductionVsPristine(t *testing.T) {
	prod := ProductionVM()
	if !prod.AsFloatSkipsTypeCheck || !prod.FloatPrimsSkipReceiverCheck ||
		!prod.BitwisePrimsUnsigned || !prod.FFIMissingInJIT || !prod.SimulationMissingAccessors {
		t.Error("production VM must enable every seeded defect")
	}
	clean := Pristine()
	if clean != (Switches{}) {
		t.Error("pristine must be the zero value")
	}
}

func TestIsMissingInJIT(t *testing.T) {
	prod := ProductionVM()
	if !IsMissingInJIT(prod, "primitiveFFIInt8At", primitives.CatFFI) {
		t.Error("FFI must be missing under production defects")
	}
	if !IsMissingInJIT(prod, "primitiveFloatSin", primitives.CatFloat) {
		t.Error("libm-backed sin must be missing")
	}
	if IsMissingInJIT(prod, "primitiveFloatAdd", primitives.CatFloat) {
		t.Error("float add has a template")
	}
	if IsMissingInJIT(Pristine(), "primitiveFFIInt8At", primitives.CatFFI) {
		t.Error("pristine VM compiles everything")
	}
}

func TestFFIMissingPrimitiveNames(t *testing.T) {
	names := FFIMissingPrimitiveNames()
	if len(names) != 60 {
		t.Fatalf("missing-functionality list has %d entries, paper reports 60", len(names))
	}
}

func TestFamilyStrings(t *testing.T) {
	for f := Family(0); f < NumFamilies; f++ {
		if f.String() == "" {
			t.Errorf("family %d has no name", f)
		}
	}
}
