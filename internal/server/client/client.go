// Package client is the typed Go client for the cogdiff server HTTP
// API (internal/server). The `cogdiff submit` verb is built on it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cogdiff/internal/server"
)

// Client talks to one cogdiff server.
type Client struct {
	base string
	http *http.Client
}

// New builds a client for a base URL like "http://127.0.0.1:8377". A
// trailing slash is tolerated.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// apiError is a non-2xx response, carrying the server's JSON error body
// when one was sent.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Msg)
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// WaitHealthy polls /healthz until it answers or the timeout elapses —
// the handshake `cogdiff submit` performs against a just-started server.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //cogdiff:allow-nondeterminism client deadline bookkeeping, not report content
	var last error
	for time.Now().Before(deadline) { //cogdiff:allow-nondeterminism client deadline bookkeeping, not report content
		if last = c.Health(ctx); last == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not healthy after %s: %w", c.base, timeout, last)
}

// Version fetches GET /v1/version.
func (c *Client) Version(ctx context.Context) (server.VersionInfo, error) {
	var v server.VersionInfo
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v, err
}

// Submit posts a job spec; the returned status carries the job ID.
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (server.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return server.JobStatus{}, err
	}
	var st server.JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it reaches a terminal state. poll <= 0 uses
// 100ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Events streams a job's SSE events, invoking fn for each until the
// done event, the context cancels, or the stream ends. fn returning an
// error stops the stream with that error.
func (c *Client) Events(ctx context.Context, id string, fn func(server.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxEventBytes)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("bad event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Type == server.EventDone {
			return nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

const maxEventBytes = 1 << 20

// GetCorpus fetches the shared corpus document (go-fuzz-format JSON).
func (c *Client) GetCorpus(ctx context.Context) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/corpus", nil, &raw)
	return raw, err
}

// CorpusPutResult mirrors the PUT /v1/corpus response.
type CorpusPutResult struct {
	Received int `json:"received"`
	Added    int `json:"added"`
	Total    int `json:"total"`
}

// PutCorpus merges a corpus document into the shared store.
func (c *Client) PutCorpus(ctx context.Context, doc []byte) (CorpusPutResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/corpus", bytes.NewReader(doc))
	if err != nil {
		return CorpusPutResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return CorpusPutResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return CorpusPutResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return CorpusPutResult{}, &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	var out CorpusPutResult
	return out, json.Unmarshal(data, &out)
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &raw)
	return string(raw), err
}
