package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cogdiff/internal/fuzzer"
	"cogdiff/internal/telemetry"
)

// CorpusStore is the server's shared fuzzing corpus: a content-hash-
// deduplicated set of sequence genomes that fuzz jobs (sharedCorpus) and
// HTTP clients (GET/PUT /v1/corpus) feed and drain concurrently.
//
// With a directory configured, every entry persists as its own file,
// seq-<sha256-of-key>.json, written with excache's temp+rename
// discipline — a crashed or cancelled server leaves only complete
// entries, and concurrent adds of the same entry are idempotent. The
// in-memory index is authoritative between loads; the directory is the
// durable mirror.
type CorpusStore struct {
	dir string

	mu      sync.Mutex
	entries map[string]*fuzzer.Seq // keyed by content hash

	mEntries  *telemetry.Gauge
	mAdded    *telemetry.Counter
	mDupes    *telemetry.Counter
	mRejected *telemetry.Counter
}

// corpusHash is the store's content hash: sha256 over the genome's
// canonical content key (Seq.Key), hex-encoded. Two genomes hash equal
// exactly when the fuzzer would treat them as the same input.
func corpusHash(s *fuzzer.Seq) string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:])
}

// OpenCorpus opens (and, with a directory, loads) the shared store.
// Files that fail to parse, fail the genome check, or whose name does
// not match their content hash are skipped and counted as rejected —
// one bad file never poisons the store.
func OpenCorpus(dir string, reg *telemetry.Registry) (*CorpusStore, error) {
	st := &CorpusStore{
		dir:       dir,
		entries:   make(map[string]*fuzzer.Seq),
		mEntries:  reg.Gauge(telemetry.MetricServerCorpusEntries),
		mAdded:    reg.Counter(telemetry.MetricServerCorpusAdded),
		mDupes:    reg.Counter(telemetry.MetricServerCorpusDupes),
		mRejected: reg.Counter(telemetry.MetricServerCorpusRejected),
	}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus dir: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "seq-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			st.mRejected.Inc()
			continue
		}
		seqs, err := fuzzer.UnmarshalCorpus(data)
		if err != nil || len(seqs) != 1 {
			st.mRejected.Inc()
			continue
		}
		h := corpusHash(seqs[0])
		if name != entryFile(h) {
			st.mRejected.Inc()
			continue
		}
		st.entries[h] = seqs[0]
	}
	st.mEntries.Set(int64(len(st.entries)))
	return st, nil
}

func entryFile(hash string) string { return "seq-" + hash + ".json" }

// Add inserts one genome. It reports whether the entry was new;
// duplicates and Check-failing genomes are counted and dropped.
func (st *CorpusStore) Add(s *fuzzer.Seq) bool {
	if s == nil || s.Check() != nil {
		st.mRejected.Inc()
		return false
	}
	h := corpusHash(s)
	st.mu.Lock()
	if _, dup := st.entries[h]; dup {
		st.mu.Unlock()
		st.mDupes.Inc()
		return false
	}
	st.entries[h] = s
	n := len(st.entries)
	st.mu.Unlock()
	st.mAdded.Inc()
	st.mEntries.Set(int64(n))
	st.persist(h, s)
	return true
}

// Merge adds every genome, returning how many were new.
func (st *CorpusStore) Merge(seqs []*fuzzer.Seq) int {
	added := 0
	for _, s := range seqs {
		if st.Add(s) {
			added++
		}
	}
	return added
}

// Snapshot returns the entries sorted by content hash — a deterministic
// order for seeding fuzz jobs and serving GET /v1/corpus.
func (st *CorpusStore) Snapshot() []*fuzzer.Seq {
	st.mu.Lock()
	hashes := make([]string, 0, len(st.entries))
	for h := range st.entries {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	out := make([]*fuzzer.Seq, len(hashes))
	for i, h := range hashes {
		out[i] = st.entries[h]
	}
	st.mu.Unlock()
	return out
}

// Len returns the entry count.
func (st *CorpusStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// persist writes one entry to its content-addressed file via temp+
// rename. Persistence is best-effort: the in-memory store stays
// authoritative, and the entry is re-persisted on the next Add of the
// same content after a restart.
func (st *CorpusStore) persist(hash string, s *fuzzer.Seq) {
	if st.dir == "" {
		return
	}
	data, err := fuzzer.MarshalCorpus([]*fuzzer.Seq{s})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(st.dir, "tmp-seq-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(st.dir, entryFile(hash))); err != nil {
		os.Remove(tmp.Name())
	}
}
