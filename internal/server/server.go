// Package server turns the batch differential-testing engines into a
// long-running campaign service: the `cogdiff serve` verb.
//
// The server owns four pieces:
//
//   - A job queue and scheduler (jobs.go). Campaign, difftest and fuzz
//     jobs arrive as JSON over POST /v1/jobs, wait in a FIFO queue, and
//     run on a bounded pool of job slots (Config.MaxJobs). Campaign
//     execution shards across the existing core worker pool by canonical
//     unit index and reassembles through the serial cause-attribution
//     merge, so a served report is byte-identical to the serial CLI run
//     with the same options. Jobs are cancellable (DELETE /v1/jobs/{id})
//     at any point: cancellation propagates as context cancellation into
//     the engines, which abort at the next unit boundary without
//     corrupting the cache or the corpus.
//
//   - Streaming progress over SSE (events.go). GET /v1/jobs/{id}/events
//     replays the job's event log and then follows it live:
//     unit-completed, difference-found, cache-stats, progress (fuzz
//     batches) and done. Events carry no wall-clock data, so the stream
//     for a fixed configuration at workers=1 is deterministic.
//
//   - A shared corpus store (corpus.go). GET/PUT /v1/corpus speak the
//     fuzzer's go-fuzz-format JSON corpus; entries dedup by content
//     hash, persist one-file-per-entry with excache's temp+rename
//     discipline, and feed fuzz jobs submitted with sharedCorpus, which
//     drain their coverage-increasing findings back into the store.
//
//   - Live observability (http.go). GET /metrics serves the telemetry
//     Registry in the Prometheus text exposition format mid-run;
//     /healthz and /v1/version (the semantics-version stamps) complete
//     the operational surface.
package server

import (
	"context"
	"fmt"
	"sync"

	"cogdiff/internal/excache"
	"cogdiff/internal/telemetry"
)

// Config parameterizes a server.
type Config struct {
	// Workers is the per-job default worker count when a job spec does
	// not name one (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// CacheDir, when non-empty, is the exploration cache shared by every
	// job; CacheMode selects off/ro/rw participation (empty = rw).
	// Concurrent jobs share the directory safely: excache writes are
	// atomic temp+rename and entries are pure functions of their keys.
	CacheDir  string
	CacheMode string
	// CorpusDir, when non-empty, persists the shared corpus store there
	// (one file per entry). An empty dir keeps the store in memory only.
	CorpusDir string
	// MaxJobs bounds concurrently running jobs (0 = 2). Queued jobs
	// beyond MaxQueue (0 = 256) are rejected with 503.
	MaxJobs  int
	MaxQueue int
	// Metrics, when non-nil, is the registry /metrics serves. A nil
	// registry is replaced by a fresh one, so /metrics always works.
	Metrics *telemetry.Registry
}

// Server is a running differential-testing service. Create with New,
// expose with Handler, stop with Close.
type Server struct {
	cfg    Config
	reg    *telemetry.Registry
	corpus *CorpusStore

	baseCtx context.Context
	cancel  context.CancelFunc
	queue   chan *job
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for GET /v1/jobs
	nextID int
	// unitGate, when non-nil, runs inside every campaign unit-completed
	// callback (serialized, job mid-run). Test-only (export_test.go): the
	// cancellation test parks a job at its first unit boundary so a cancel
	// deterministically lands mid-run, however fast the campaign is.
	unitGate func()

	mRunning *telemetry.Gauge
	mQueued  *telemetry.Gauge
}

// New validates the configuration, opens the corpus store, probes the
// cache configuration and starts the job-slot workers.
func New(cfg Config) (*Server, error) {
	mode, err := excache.ParseMode(cfg.CacheMode)
	if err != nil {
		return nil, err
	}
	if cfg.CacheDir == "" && cfg.CacheMode != "" && mode != excache.ModeOff {
		return nil, fmt.Errorf("cache mode %s requires a cache directory", mode)
	}
	// Probe the cache directory once at startup so misconfiguration
	// fails the serve verb, not the first submitted job.
	if _, err := excache.Open(excache.Config{Dir: cfg.CacheDir, Mode: mode}); err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	corpus, err := OpenCorpus(cfg.CorpusDir, reg)
	if err != nil {
		return nil, err
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		corpus:   corpus,
		baseCtx:  ctx,
		cancel:   cancel,
		queue:    make(chan *job, cfg.MaxQueue),
		jobs:     make(map[string]*job),
		mRunning: reg.Gauge(telemetry.MetricServerJobsRunning),
		mQueued:  reg.Gauge(telemetry.MetricServerJobsQueued),
	}
	for i := 0; i < cfg.MaxJobs; i++ {
		s.wg.Add(1)
		go s.jobWorker()
	}
	return s, nil
}

// Registry returns the server's telemetry registry (what /metrics
// serves).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Corpus returns the shared corpus store.
func (s *Server) Corpus() *CorpusStore { return s.corpus }

// Close cancels every queued and running job and waits for the job
// slots to drain. Safe to call more than once.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// jobWorker is one job slot: it drains the FIFO queue until the server
// closes. Jobs cancelled while queued are skipped (their state already
// says canceled).
func (s *Server) jobWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.mQueued.Add(-1)
			s.runJob(j)
		}
	}
}

// enqueue registers a new job and queues it, or reports a full queue.
func (s *Server) enqueue(j *job) error {
	s.mu.Lock()
	s.nextID++
	j.status.ID = fmt.Sprintf("j-%06d", s.nextID)
	s.jobs[j.status.ID] = j
	s.order = append(s.order, j.status.ID)
	s.mu.Unlock()

	s.reg.LabeledCounter(telemetry.MetricServerJobsSubmitted, "type", string(j.status.Type)).Inc()
	select {
	case s.queue <- j:
		s.mQueued.Add(1)
		return nil
	default:
		s.finish(j, StateFailed, "job queue full")
		return fmt.Errorf("job queue full (%d waiting)", cap(s.queue))
	}
}

// testUnitGate reads the test-only unit gate under the server mutex (the
// setter in export_test.go writes under the same mutex, so gated jobs are
// race-free under -race).
func (s *Server) testUnitGate() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unitGate
}

// lookup returns a job by ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// statuses snapshots every job in submission order.
func (s *Server) statuses() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.lookup(id); ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}
