package server

// SetUnitGateForTest installs a hook that runs inside every campaign
// unit-completed callback. The campaign serializes those callbacks, and a
// worker blocks inside its unit until its callback returns — so a gate
// that parks the first call holds the job mid-run deterministically: the
// remaining workers finish at most one unit each and then queue behind
// the serialized callback, and the campaign cannot complete until the
// gate releases. The cancellation test uses this to land a cancel
// mid-run without racing campaign completion.
func (s *Server) SetUnitGateForTest(gate func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unitGate = gate
}
