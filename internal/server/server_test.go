package server_test

// End-to-end tests of the campaign service over real HTTP (httptest):
// the byte-identity contract between served and serial CLI reports, SSE
// stream determinism, shared-corpus coherence under concurrent clients,
// cancellation hygiene, and /metrics validity mid-run.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cogdiff"
	"cogdiff/internal/fuzzer"
	"cogdiff/internal/server"
	"cogdiff/internal/server/client"
	"cogdiff/internal/telemetry"
)

// startServer brings up a server on an httptest listener and returns a
// typed client for it. Cleanup order matters: the HTTP listener closes
// first, then the job engine.
func startServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL)
}

func submitAndWait(t *testing.T, cl *client.Client, spec server.JobSpec) server.JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait %s: %v", st.ID, err)
	}
	return final
}

// TestServedDifftestMatchesLocal pins the cheap end of the byte-identity
// contract: a served difftest report equals the local API rendering.
func TestServedDifftestMatchesLocal(t *testing.T) {
	_, cl := startServer(t, server.Config{})
	res, err := cogdiff.TestInstructionWith("primAdd", "simple", cogdiff.TestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	final := submitAndWait(t, cl, server.JobSpec{Type: server.JobDifftest,
		Difftest: &server.DifftestSpec{Instruction: "primAdd", Compiler: "simple"}})
	if final.State != server.StateDone {
		t.Fatalf("job state %s: %s", final.State, final.Error)
	}
	if final.Report != res.Render() {
		t.Errorf("served difftest diverged from local:\n--- local ---\n%s--- served ---\n%s",
			res.Render(), final.Report)
	}
}

// TestServedCampaignByteIdentical is the tentpole acceptance test: a
// campaign served at any worker count, with the cache off, cold or
// warm, reports byte-identically to the serial in-process run.
func TestServedCampaignByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full served-campaign matrix skipped in -short mode")
	}
	serial, err := cogdiff.RunCampaign(cogdiff.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseline := serial.StableReport()

	cacheDir := t.TempDir()
	_, cl := startServer(t, server.Config{CacheDir: cacheDir, CacheMode: "off", MaxJobs: 1})

	cases := []struct {
		name string
		spec server.CampaignSpec
	}{
		{"workers1-cacheoff", server.CampaignSpec{Workers: 1}},
		{"workers4-cacheoff", server.CampaignSpec{Workers: 4}},
		{fmt.Sprintf("workers%d-cacheoff", runtime.GOMAXPROCS(0)), server.CampaignSpec{}},
		{"workers4-cachecold", server.CampaignSpec{Workers: 4, Cache: "rw"}},
		{"workers4-cachewarm", server.CampaignSpec{Workers: 4, Cache: "rw"}},
	}
	for _, tc := range cases {
		spec := tc.spec
		final := submitAndWait(t, cl, server.JobSpec{Type: server.JobCampaign, Campaign: &spec})
		if final.State != server.StateDone {
			t.Fatalf("%s: job state %s: %s", tc.name, final.State, final.Error)
		}
		if final.Report != baseline {
			t.Errorf("%s: served campaign report diverged from the serial run", tc.name)
		}
	}
}

// TestCancelledCampaignLeavesCacheSound cancels a cache-writing
// campaign mid-run and checks (1) the job lands in canceled, and (2) a
// rerun through the same cache directory still reproduces the serial
// baseline — the cancelled run left only complete cache entries.
//
// The cancel lands deterministically: the server's test-only unit gate
// parks the job inside its first unit-completed callback (the campaign
// cannot finish while the gate holds, because unit callbacks are
// serialized and each worker blocks in its unit until its callback
// returns), the cancel is issued against the parked job, and only then
// does the gate release. No retries, no completion race.
func TestCancelledCampaignLeavesCacheSound(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns skipped in -short mode")
	}
	serial, err := cogdiff.RunCampaign(cogdiff.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	srv, cl := startServer(t, server.Config{CacheDir: t.TempDir(), MaxJobs: 1})
	gateEntered := make(chan struct{})
	gateRelease := make(chan struct{})
	var once sync.Once
	srv.SetUnitGateForTest(func() {
		once.Do(func() {
			close(gateEntered)
			<-gateRelease
		})
	})

	st, err := cl.Submit(ctx, server.JobSpec{Type: server.JobCampaign,
		Campaign: &server.CampaignSpec{Workers: 4, Cache: "rw"}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gateEntered:
	case <-time.After(60 * time.Second):
		t.Fatal("campaign never reached its first unit boundary")
	}
	// The job is parked mid-run. Cancel it — the job context is cancelled
	// before Cancel returns — then let the campaign continue into the
	// cancelled context, which aborts it at the next unit boundary.
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	close(gateRelease)
	final, err := cl.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateCanceled {
		t.Fatalf("cancelled job state %s, want canceled", final.State)
	}

	rerun := submitAndWait(t, cl, server.JobSpec{Type: server.JobCampaign,
		Campaign: &server.CampaignSpec{Workers: 4, Cache: "rw"}})
	if rerun.State != server.StateDone {
		t.Fatalf("rerun state %s: %s", rerun.State, rerun.Error)
	}
	if rerun.Report != serial.StableReport() {
		t.Error("rerun through the cancelled run's cache diverged from the serial baseline")
	}
}

// TestCancelQueuedJob cancels a job that never left the queue.
func TestCancelQueuedJob(t *testing.T) {
	_, cl := startServer(t, server.Config{MaxJobs: 1, Workers: 1})
	ctx := context.Background()
	// Occupy the single job slot with a slow fuzz job.
	running, err := cl.Submit(ctx, server.JobSpec{Type: server.JobFuzz,
		Fuzz: &server.FuzzSpec{Seed: 1, Budget: 2000000, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Submit(ctx, server.JobSpec{Type: server.JobFuzz,
		Fuzz: &server.FuzzSpec{Seed: 2, Budget: 100, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, queued.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateCanceled {
		t.Errorf("queued job state %s, want canceled", st.State)
	}
	if st.Started != 0 {
		t.Error("cancelled queued job reports a start time; it must never have run")
	}
	if _, err := cl.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	if st, err := cl.Wait(ctx, running.ID, 10*time.Millisecond); err != nil || st.State != server.StateCanceled {
		t.Errorf("running job after cancel: state %v err %v, want canceled", st.State, err)
	}
}

// rawEventStream fetches a terminal job's full SSE stream as bytes.
func rawEventStream(t *testing.T, base *client.Client, url, id string) string {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSSEStreamDeterministic runs the same fuzz job twice at workers=1
// and byte-compares the two complete SSE streams: progress events carry
// no wall-clock data, so identical specs must produce identical bytes.
func TestSSEStreamDeterministic(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	cl := client.New(ts.URL)

	spec := server.JobSpec{Type: server.JobFuzz,
		Fuzz: &server.FuzzSpec{Seed: 2022, Budget: 300, Workers: 1, Minimize: true}}
	a := submitAndWait(t, cl, spec)
	b := submitAndWait(t, cl, spec)
	if a.State != server.StateDone || b.State != server.StateDone {
		t.Fatalf("job states %s/%s: %s%s", a.State, b.State, a.Error, b.Error)
	}
	streamA := rawEventStream(t, cl, ts.URL, a.ID)
	streamB := rawEventStream(t, cl, ts.URL, b.ID)
	if streamA != streamB {
		t.Errorf("SSE streams of identical jobs differ\n--- first ---\n%s--- second ---\n%s", streamA, streamB)
	}
	if !strings.Contains(streamA, "event: progress") || !strings.Contains(streamA, "event: done") {
		t.Errorf("stream missing expected event types:\n%s", streamA)
	}
	// Replay from an offset skips exactly the first events.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + a.ID + "/events?from=2")
	if err != nil {
		t.Fatal(err)
	}
	partial, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasSuffix(streamA, string(partial)) || len(partial) >= len(streamA) {
		t.Error("?from= replay is not a proper suffix of the full stream")
	}
}

// TestSharedCorpusConcurrentClients hammers PUT /v1/corpus from several
// clients with overlapping entry sets and checks the store ends up with
// exactly the union: nothing lost, nothing duplicated.
func TestSharedCorpusConcurrentClients(t *testing.T) {
	srv, cl := startServer(t, server.Config{CorpusDir: t.TempDir()})
	ctx := context.Background()

	// 40 distinct genomes; each client PUTs an overlapping window of 16.
	const total, clients, window = 40, 8, 16
	seqs := make([]*fuzzer.Seq, total)
	for i := range seqs {
		seqs[i] = fuzzer.SeedFromTuple(int64(i+1), int64(i), 1, 2)
	}
	uniq := make(map[string]bool)
	for _, s := range seqs {
		uniq[s.Key()] = true
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start := (c * 5) % total
			var batch []*fuzzer.Seq
			for k := 0; k < window; k++ {
				batch = append(batch, seqs[(start+k)%total])
			}
			doc, err := fuzzer.MarshalCorpus(batch)
			if err == nil {
				_, err = cl.PutCorpus(ctx, doc)
			}
			errs[c] = err
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	snap := srv.Corpus().Snapshot()
	if len(snap) != len(uniq) {
		t.Errorf("store has %d entries, want %d distinct", len(snap), len(uniq))
	}
	seen := make(map[string]bool)
	for _, s := range snap {
		if seen[s.Key()] {
			t.Errorf("duplicate entry %q in store", s.Key())
		}
		seen[s.Key()] = true
		if !uniq[s.Key()] {
			t.Errorf("foreign entry %q in store", s.Key())
		}
	}

	// Re-uploading everything is a pure no-op.
	doc, err := cl.GetCorpus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.PutCorpus(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 0 || res.Total != len(uniq) {
		t.Errorf("idempotent re-PUT added %d (total %d), want 0 (total %d)", res.Added, res.Total, len(uniq))
	}
}

// TestCorpusPersistsAcrossRestart closes a server and reopens its
// corpus directory: the store must reload every entry, and a corrupt
// file must be skipped without poisoning the rest.
func TestCorpusPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, err := server.New(server.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 5; i++ {
		s := fuzzer.SeedFromTuple(int64(100+i), 0, 0, 0)
		srv1.Corpus().Add(s)
		want = append(want, s.Key())
	}
	n := srv1.Corpus().Len()
	srv1.Close()

	srv2, err := server.New(server.Config{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.Corpus().Len(); got != n {
		t.Errorf("reloaded %d entries, want %d", got, n)
	}
	reloaded := make(map[string]bool)
	for _, s := range srv2.Corpus().Snapshot() {
		reloaded[s.Key()] = true
	}
	for _, k := range want {
		if !reloaded[k] {
			t.Errorf("entry %q lost across restart", k)
		}
	}
}

// TestSharedCorpusFeedsFuzzJobs checks the loop: PUT seeds the store, a
// sharedCorpus fuzz job drains them as seeds and merges its findings
// back, growing the store.
func TestSharedCorpusFeedsFuzzJobs(t *testing.T) {
	srv, cl := startServer(t, server.Config{Workers: 1})
	ctx := context.Background()
	doc, err := fuzzer.MarshalCorpus([]*fuzzer.Seq{fuzzer.SeedFromTuple(7, 1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PutCorpus(ctx, doc); err != nil {
		t.Fatal(err)
	}
	before := srv.Corpus().Len()
	final := submitAndWait(t, cl, server.JobSpec{Type: server.JobFuzz,
		Fuzz: &server.FuzzSpec{Seed: 2022, Budget: 300, Workers: 1, SharedCorpus: true}})
	if final.State != server.StateDone {
		t.Fatalf("fuzz job state %s: %s", final.State, final.Error)
	}
	if after := srv.Corpus().Len(); after <= before {
		t.Errorf("shared corpus did not grow: %d -> %d", before, after)
	}
}

// TestMetricsValidMidRun scrapes /metrics while a job is running and
// after it finishes; both snapshots must parse as Prometheus text.
func TestMetricsValidMidRun(t *testing.T) {
	_, cl := startServer(t, server.Config{Workers: 1, MaxJobs: 1})
	ctx := context.Background()
	st, err := cl.Submit(ctx, server.JobSpec{Type: server.JobFuzz,
		Fuzz: &server.FuzzSpec{Seed: 3, Budget: 100000, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ParsePrometheus(mid); err != nil {
		t.Errorf("mid-run /metrics does not parse: %v", err)
	}
	if !strings.Contains(mid, telemetry.MetricServerJobsSubmitted) {
		t.Error("mid-run /metrics missing the jobs-submitted counter")
	}
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	after, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ParsePrometheus(after); err != nil {
		t.Errorf("post-run /metrics does not parse: %v", err)
	}
	if !strings.Contains(after, `state="canceled"`) {
		t.Error("post-cancel /metrics missing the canceled completion series")
	}
}

// TestSubmitValidation pins the HTTP error surface: malformed and
// invalid specs are 400s naming the problem, unknown jobs are 404s.
func TestSubmitValidation(t *testing.T) {
	_, cl := startServer(t, server.Config{})
	ctx := context.Background()
	badSpecs := []server.JobSpec{
		{},
		{Type: "bogus"},
		{Type: server.JobDifftest},
		{Type: server.JobFuzz, Fuzz: &server.FuzzSpec{Budget: -1}},
		{Type: server.JobCampaign, Campaign: &server.CampaignSpec{Workers: -2}},
		{Type: server.JobCampaign, Campaign: &server.CampaignSpec{Cache: "sideways"}},
		// Cache override needs a server cache directory; this server has none.
		{Type: server.JobCampaign, Campaign: &server.CampaignSpec{Cache: "rw"}},
	}
	for i, spec := range badSpecs {
		if _, err := cl.Submit(ctx, spec); err == nil {
			t.Errorf("bad spec %d accepted, want 400", i)
		} else if !strings.Contains(err.Error(), "400") {
			t.Errorf("bad spec %d: %v, want a 400", i, err)
		}
	}
	if _, err := cl.Job(ctx, "j-999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job lookup: %v, want a 404", err)
	}
	if err := cl.Health(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}
	if v, err := cl.Version(ctx); err != nil || v.Interp == "" {
		t.Errorf("version: %+v err %v", v, err)
	}
}
