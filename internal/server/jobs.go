package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cogdiff"
	"cogdiff/internal/excache"
	"cogdiff/internal/fuzzer"
	"cogdiff/internal/telemetry"
)

// JobType names one of the three engines a job can drive.
type JobType string

// The accepted job types.
const (
	JobCampaign JobType = "campaign"
	JobDifftest JobType = "difftest"
	JobFuzz     JobType = "fuzz"
)

// State is a job lifecycle state.
type State string

// The job lifecycle: queued -> running -> done | failed | canceled.
// A queued job can move straight to canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is the JSON body of POST /v1/jobs: the job type plus exactly
// the options the matching CLI verb takes, so a served run reproduces a
// local one.
type JobSpec struct {
	Type     JobType       `json:"type"`
	Campaign *CampaignSpec `json:"campaign,omitempty"`
	Difftest *DifftestSpec `json:"difftest,omitempty"`
	Fuzz     *FuzzSpec     `json:"fuzz,omitempty"`
}

// CampaignSpec configures a campaign job. The report is the stable
// surface (`cogdiff campaign -stable`): byte-identical to the serial
// CLI run with the same options, at any worker count, any cache state.
type CampaignSpec struct {
	Pristine           bool `json:"pristine,omitempty"`
	ConstFoldSignError bool `json:"defectConstfold,omitempty"`
	// MetaJITGuardSignError enables the meta-compiler guard-sign defect
	// (only the metajit compiler is affected).
	MetaJITGuardSignError bool `json:"defectMetajitGuard,omitempty"`
	// Compilers selects the compiler set with the CLI -compilers spec
	// syntax: an exact list like "simple,metajit" or additions like
	// "+metajit" (empty = the paper's four).
	Compilers     string `json:"compilers,omitempty"`
	MaxIterations int    `json:"maxIterations,omitempty"`
	// Workers shards the campaign (0 = the server's default).
	Workers int `json:"workers,omitempty"`
	// Cache overrides the server's cache mode for this job: off, ro or
	// rw (empty = the server's configured mode).
	Cache string `json:"cache,omitempty"`
}

// DifftestSpec configures a single-instruction differential test job.
type DifftestSpec struct {
	Instruction           string `json:"instruction"`
	Compiler              string `json:"compiler"`
	Pristine              bool   `json:"pristine,omitempty"`
	ConstFoldSignError    bool   `json:"defectConstfold,omitempty"`
	MetaJITGuardSignError bool   `json:"defectMetajitGuard,omitempty"`
}

// FuzzSpec configures a coverage-guided fuzzing job.
type FuzzSpec struct {
	Seed    int64 `json:"seed"`
	Budget  int   `json:"budget,omitempty"`
	Workers int   `json:"workers,omitempty"`
	// Compilers selects the compiler set with the CLI -compilers spec
	// syntax (empty = the three byte-code compilers; "+metajit" adds the
	// meta-compiled front-end; native is rejected).
	Compilers string `json:"compilers,omitempty"`
	Minimize  bool   `json:"minimize,omitempty"`
	// SharedCorpus seeds the run from the server's corpus store and
	// merges the run's coverage-increasing corpus back afterwards, so
	// concurrent fuzz clients feed and drain one corpus.
	SharedCorpus bool `json:"sharedCorpus,omitempty"`
}

// Validate rejects malformed specs before they reach the queue.
func (spec *JobSpec) Validate(srv *Config) error {
	switch spec.Type {
	case JobCampaign:
		c := spec.Campaign
		if c == nil {
			c = &CampaignSpec{}
		}
		if c.Workers < 0 {
			return fmt.Errorf("campaign.workers %d: must be >= 0", c.Workers)
		}
		if c.MaxIterations < 0 {
			return fmt.Errorf("campaign.maxIterations %d: must be >= 0", c.MaxIterations)
		}
		if _, err := cogdiff.ParseCompilerSpec(c.Compilers); err != nil {
			return fmt.Errorf("campaign.compilers: %w", err)
		}
		mode, err := excache.ParseMode(c.Cache)
		if err != nil {
			return fmt.Errorf("campaign.cache: %w", err)
		}
		if c.Cache != "" && mode != excache.ModeOff && srv.CacheDir == "" {
			return fmt.Errorf("campaign.cache %s: server has no -cache-dir", mode)
		}
	case JobDifftest:
		d := spec.Difftest
		if d == nil || d.Instruction == "" || d.Compiler == "" {
			return fmt.Errorf("difftest job needs difftest.instruction and difftest.compiler")
		}
	case JobFuzz:
		f := spec.Fuzz
		if f == nil {
			return fmt.Errorf("fuzz job needs a fuzz section")
		}
		if f.Budget < 0 {
			return fmt.Errorf("fuzz.budget %d: must be >= 0", f.Budget)
		}
		if f.Workers < 0 {
			return fmt.Errorf("fuzz.workers %d: must be >= 0", f.Workers)
		}
		if _, err := cogdiff.ParseSequenceCompilerSpec(f.Compilers); err != nil {
			return fmt.Errorf("fuzz.compilers: %w", err)
		}
	case "":
		return fmt.Errorf("job spec missing type (campaign, difftest or fuzz)")
	default:
		return fmt.Errorf("unknown job type %q (want campaign, difftest or fuzz)", spec.Type)
	}
	return nil
}

// CacheStats mirrors the public cache-traffic counters in JSON.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Corrupt int64 `json:"corrupt"`
	Writes  int64 `json:"writes"`
	Evicted int64 `json:"evicted"`
}

// JobStatus is the wire form of one job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID    string  `json:"id"`
	Type  JobType `json:"type"`
	State State   `json:"state"`
	// Created/Started/Finished are unix milliseconds (0 = not yet).
	Created  int64 `json:"created,omitempty"`
	Started  int64 `json:"started,omitempty"`
	Finished int64 `json:"finished,omitempty"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Report is the engine's rendered report, present when done. For
	// campaign jobs it is the stable surface, byte-identical to the
	// serial CLI run with the same options.
	Report      string      `json:"report,omitempty"`
	Differences int         `json:"differences,omitempty"`
	Cache       *CacheStats `json:"cache,omitempty"`
	// Events counts the job's progress events so far.
	Events int `json:"events"`
}

// job is the server-side job record: status and event log under one
// mutex, a condition variable for event followers, and the cancel hook.
type job struct {
	spec JobSpec

	mu     sync.Mutex
	cond   *sync.Cond
	status JobStatus
	events []Event
	cancel context.CancelFunc // non-nil once running
}

func newJob(spec JobSpec) *job {
	j := &job{
		spec: spec,
		status: JobStatus{
			Type:    spec.Type,
			State:   StateQueued,
			Created: time.Now().UnixMilli(), //cogdiff:allow-nondeterminism job timestamps are operational metadata, not report content
		},
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// snapshot copies the status under the lock.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	st.Events = len(j.events)
	if j.status.Cache != nil {
		c := *j.status.Cache
		st.Cache = &c
	}
	return st
}

// requestCancel moves a queued job straight to canceled, or cancels a
// running job's context. Terminal jobs are left alone.
func (s *Server) requestCancel(j *job) bool {
	j.mu.Lock()
	switch {
	case j.status.State == StateQueued:
		j.mu.Unlock()
		s.finish(j, StateCanceled, "")
		return true
	case j.status.State == StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
	j.mu.Unlock()
	return false
}

// finish moves a job to a terminal state and closes its event stream
// with the final done event.
func (s *Server) finish(j *job, state State, errMsg string) {
	j.mu.Lock()
	if j.status.State.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status.State = state
	j.status.Error = errMsg
	j.status.Finished = time.Now().UnixMilli() //cogdiff:allow-nondeterminism job timestamps are operational metadata, not report content
	started := j.status.Started
	jtype := j.status.Type
	diffs := j.status.Differences
	j.mu.Unlock()

	j.publish(Event{Type: EventDone, State: string(state), Error: errMsg,
		Differences: diffs})
	s.reg.LabeledCounter(telemetry.MetricServerJobsCompleted,
		"state", string(state), "type", string(jtype)).Inc()
	if started > 0 {
		s.reg.LabeledHistogram(telemetry.MetricServerJobSeconds, telemetry.DurationBuckets,
			"type", string(jtype)).
			Observe(float64(time.Now().UnixMilli()-started) / 1000) //cogdiff:allow-nondeterminism job timestamps are operational metadata, not report content
	}
}

// runJob executes one job inside a job slot.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.status.State != StateQueued {
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.cancel = cancel
	j.status.State = StateRunning
	j.status.Started = time.Now().UnixMilli() //cogdiff:allow-nondeterminism job timestamps are operational metadata, not report content
	j.mu.Unlock()

	s.mRunning.Add(1)
	defer s.mRunning.Add(-1)

	var report string
	var differences int
	var cache *CacheStats
	var err error
	switch j.spec.Type {
	case JobCampaign:
		report, differences, cache, err = s.runCampaign(ctx, j)
	case JobDifftest:
		report, differences, err = s.runDifftest(ctx, j)
	case JobFuzz:
		report, differences, err = s.runFuzz(ctx, j)
	default:
		err = fmt.Errorf("unknown job type %q", j.spec.Type)
	}

	j.mu.Lock()
	j.status.Report = report
	j.status.Differences = differences
	j.status.Cache = cache
	j.mu.Unlock()

	switch {
	case err == nil:
		s.finish(j, StateDone, "")
	case ctx.Err() != nil:
		s.finish(j, StateCanceled, "")
	default:
		s.finish(j, StateFailed, err.Error())
	}
}

// cacheModeFor resolves a job's effective cache dir+mode from the
// server configuration and the job's override.
func (s *Server) cacheModeFor(override string) (dir, mode string) {
	dir, mode = s.cfg.CacheDir, s.cfg.CacheMode
	if override != "" {
		mode = override
	}
	if dir == "" || mode == "off" {
		return "", "off"
	}
	return dir, mode
}

func (s *Server) runCampaign(ctx context.Context, j *job) (string, int, *CacheStats, error) {
	spec := j.spec.Campaign
	if spec == nil {
		spec = &CampaignSpec{}
	}
	workers := spec.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	compilers, err := cogdiff.ParseCompilerSpec(spec.Compilers)
	if err != nil {
		return "", 0, nil, err
	}
	dir, mode := s.cacheModeFor(spec.Cache)
	opts := cogdiff.CampaignOptions{
		Context:               ctx,
		Pristine:              spec.Pristine,
		ConstFoldSignError:    spec.ConstFoldSignError,
		MetaJITGuardSignError: spec.MetaJITGuardSignError,
		Compilers:             compilers,
		MaxIterations:         spec.MaxIterations,
		Workers:               workers,
		Metrics:               s.reg,
		CacheDir:              dir,
		CacheMode:             mode,
		OnUnitDone: func(ev cogdiff.UnitProgress) {
			if gate := s.testUnitGate(); gate != nil {
				gate()
			}
			j.publish(Event{Type: EventUnitCompleted, Compiler: ev.Compiler,
				Instruction: ev.Instruction, Done: ev.Done, Total: ev.Total,
				Differences: ev.Differences})
			if ev.Differences > 0 {
				j.publish(Event{Type: EventDifferenceFound, Compiler: ev.Compiler,
					Instruction: ev.Instruction, Differences: ev.Differences})
			}
		},
	}
	sum, err := cogdiff.RunCampaign(opts)
	if err != nil {
		return "", 0, nil, err
	}
	cache := &CacheStats{Hits: sum.Cache.Hits, Misses: sum.Cache.Misses,
		Corrupt: sum.Cache.Corrupt, Writes: sum.Cache.Writes, Evicted: sum.Cache.Evicted}
	j.publish(Event{Type: EventCacheStats, Hits: cache.Hits, Misses: cache.Misses,
		Corrupt: cache.Corrupt, Writes: cache.Writes, Evicted: cache.Evicted})
	return sum.StableReport(), sum.TotalDifferences, cache, nil
}

func (s *Server) runDifftest(ctx context.Context, j *job) (string, int, error) {
	if err := ctx.Err(); err != nil {
		return "", 0, err
	}
	spec := j.spec.Difftest
	dir, mode := s.cacheModeFor("")
	res, err := cogdiff.TestInstructionWith(spec.Instruction, spec.Compiler, cogdiff.TestConfig{
		Pristine:              spec.Pristine,
		ConstFoldSignError:    spec.ConstFoldSignError,
		MetaJITGuardSignError: spec.MetaJITGuardSignError,
		Metrics:               s.reg,
		CacheDir:              dir,
		CacheMode:             mode,
	})
	if err != nil {
		return "", 0, err
	}
	return res.Render(), len(res.Differences), nil
}

func (s *Server) runFuzz(ctx context.Context, j *job) (string, int, error) {
	spec := j.spec.Fuzz
	workers := spec.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	names, err := cogdiff.ParseSequenceCompilerSpec(spec.Compilers)
	if err != nil {
		return "", 0, err
	}
	kinds, err := cogdiff.CompilerKindsFor(names)
	if err != nil {
		return "", 0, err
	}
	opts := fuzzer.Options{
		Seed:      spec.Seed,
		Budget:    spec.Budget,
		Workers:   workers,
		Compilers: kinds,
		Minimize:  spec.Minimize,
		Metrics:   s.reg,
		OnProgress: func(done, total, corpusSize, causes int) {
			j.publish(Event{Type: EventProgress, Done: done, Total: total,
				Corpus: corpusSize, Differences: causes})
		},
	}
	if spec.SharedCorpus {
		opts.SeedSeqs = s.corpus.Snapshot()
	}
	res, err := fuzzer.RunContext(ctx, opts)
	if err != nil {
		return "", 0, err
	}
	if spec.SharedCorpus {
		s.corpus.Merge(res.Corpus)
	}
	for _, d := range res.Differences {
		j.publish(Event{Type: EventDifferenceFound, Instruction: d.Instrument,
			Compiler: d.Compiler.String(), Differences: d.Count})
	}
	return fuzzer.Report(res), len(res.Differences), nil
}
