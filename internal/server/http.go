package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"cogdiff/internal/excache"
	"cogdiff/internal/fuzzer"
	"cogdiff/internal/telemetry"
)

// maxBodyBytes bounds request bodies (job specs, corpus uploads).
const maxBodyBytes = 8 << 20

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// VersionInfo is GET /v1/version: the semantics-version stamps that key
// the exploration cache. Two servers with equal stamps produce
// byte-identical reports for equal job specs.
type VersionInfo struct {
	Schema     string `json:"schema"`
	Interp     string `json:"interp"`
	Primitives string `json:"primitives"`
	Solver     string `json:"solver"`
	JIT        string `json:"jit"`
	Machine    string `json:"machine"`
}

// Handler returns the server's HTTP API:
//
//	GET    /healthz              liveness probe ("ok")
//	GET    /metrics              Prometheus text exposition, live mid-run
//	GET    /v1/version           semantics-version stamps
//	POST   /v1/jobs              submit a JobSpec, returns JobStatus (202)
//	GET    /v1/jobs              all jobs, submission order
//	GET    /v1/jobs/{id}         one job's JobStatus
//	DELETE /v1/jobs/{id}         cancel (idempotent on terminal jobs)
//	GET    /v1/jobs/{id}/events  SSE progress stream
//	GET    /v1/corpus            shared corpus, go-fuzz-format JSON
//	PUT    /v1/corpus            merge a corpus document into the store
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/version", s.route("version", s.handleVersion))
	mux.HandleFunc("POST /v1/jobs", s.route("jobs-submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.route("jobs-list", s.handleJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.route("job-get", s.handleJob))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.route("job-cancel", s.handleCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.route("job-events", s.handleEvents))
	mux.HandleFunc("GET /v1/corpus", s.route("corpus-get", s.handleCorpusGet))
	mux.HandleFunc("PUT /v1/corpus", s.route("corpus-put", s.handleCorpusPut))
	return mux
}

// route counts requests per logical route. The route label is a fixed
// name, not the raw path, so the metric's cardinality stays bounded.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	c := s.reg.LabeledCounter(telemetry.MetricServerHTTPRequests, "route", name)
	return func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.Snapshot().WritePrometheus(w)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	v := excache.DefaultVersions()
	writeJSON(w, http.StatusOK, VersionInfo{
		Schema:     v.Schema,
		Interp:     v.Interp,
		Primitives: v.Primitives,
		Solver:     v.Solver,
		JIT:        v.JIT,
		Machine:    v.Machine,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	var spec JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	if err := spec.Validate(&s.cfg); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j := newJob(spec)
	if err := s.enqueue(j); err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statuses())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	s.requestCancel(j)
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleCorpusGet(w http.ResponseWriter, r *http.Request) {
	data, err := fuzzer.MarshalCorpus(s.corpus.Snapshot())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// corpusPutResult is the PUT /v1/corpus response.
type corpusPutResult struct {
	Received int `json:"received"`
	Added    int `json:"added"`
	Total    int `json:"total"`
}

func (s *Server) handleCorpusPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	seqs, err := fuzzer.UnmarshalCorpus(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	added := s.corpus.Merge(seqs)
	writeJSON(w, http.StatusOK, corpusPutResult{
		Received: len(seqs),
		Added:    added,
		Total:    s.corpus.Len(),
	})
}
