package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"cogdiff/internal/telemetry"
)

// Event types on a job's SSE stream (GET /v1/jobs/{id}/events).
const (
	// EventUnitCompleted: a campaign (compiler, instruction) test unit
	// finished. Done/Total track campaign progress; Differences is the
	// unit's differing-path count.
	EventUnitCompleted = "unit-completed"
	// EventDifferenceFound: a unit (campaign) or deduplicated cause
	// (fuzz) produced differences.
	EventDifferenceFound = "difference-found"
	// EventProgress: a fuzz batch merged; Done/Total count executions,
	// Corpus the corpus size, Differences the cause count so far.
	EventProgress = "progress"
	// EventCacheStats: the job's exploration-cache traffic, emitted once
	// after a campaign completes.
	EventCacheStats = "cache-stats"
	// EventDone: terminal event; State holds the final job state. The
	// stream closes after it.
	EventDone = "done"
)

// Event is one entry in a job's event log. The wire form (the SSE data
// line) is JSON with empty fields omitted. Events deliberately carry no
// wall-clock data: for a fixed job spec at workers=1 the whole stream
// is deterministic, which the SSE tests byte-compare.
type Event struct {
	// ID is the 1-based position in the job's event log, assigned by
	// publish; it doubles as the SSE event id for Last-Event-ID resume.
	ID   int    `json:"id"`
	Type string `json:"type"`

	Compiler    string `json:"compiler,omitempty"`
	Instruction string `json:"instruction,omitempty"`
	Done        int    `json:"done,omitempty"`
	Total       int    `json:"total,omitempty"`
	Differences int    `json:"differences,omitempty"`
	Corpus      int    `json:"corpus,omitempty"`

	Hits    int64 `json:"hits,omitempty"`
	Misses  int64 `json:"misses,omitempty"`
	Corrupt int64 `json:"corrupt,omitempty"`
	Writes  int64 `json:"writes,omitempty"`
	Evicted int64 `json:"evicted,omitempty"`

	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// publish appends an event to the job's log and wakes every follower.
// The log is append-only, so followers replay from any index without
// missing or reordering events.
func (j *job) publish(ev Event) {
	j.mu.Lock()
	ev.ID = len(j.events) + 1
	j.events = append(j.events, ev)
	j.mu.Unlock()
	j.cond.Broadcast()
}

// next blocks until the event log grows past from (returning the new
// events) or the job reaches a terminal state with nothing left to
// deliver (returning nil). stop unblocks waiters whose client went away.
func (j *job) next(from int, stop <-chan struct{}) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if from < len(j.events) {
			return append([]Event(nil), j.events[from:]...)
		}
		if j.status.State.Terminal() {
			return nil
		}
		select {
		case <-stop:
			return nil
		default:
		}
		j.cond.Wait()
	}
}

// handleEvents is GET /v1/jobs/{id}/events: an SSE stream that replays
// the job's event log from the start (or from ?from= / Last-Event-ID)
// and then follows it live until the done event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad from %q", v))
			return
		}
		from = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			from = n
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	clients := s.reg.Gauge(telemetry.MetricServerSSEClients)
	clients.Add(1)
	defer clients.Add(-1)

	// Wake the cond loop when the client disconnects, so a follower of a
	// long-running job does not leak until the job's next event.
	ctx := r.Context()
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-ctx.Done():
			j.cond.Broadcast()
		case <-stopped:
		}
	}()

	for ctx.Err() == nil {
		batch := j.next(from, ctx.Done())
		if batch == nil {
			return
		}
		for _, ev := range batch {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data); err != nil {
				return
			}
			from = ev.ID
		}
		flusher.Flush()
	}
}
