package analyzers

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks module packages from source so the analyzers can
// run without export data or any tooling beyond the standard library.
// Module-internal imports resolve recursively through the loader itself
// (memoized); standard-library imports go through the stdlib source
// importer, so every package — ours or std — shares one *token.FileSet
// and one identity per import path.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*types.Package
	passes map[string]*Pass
}

// NewLoader builds a loader rooted at the module directory. modulePath
// is the module's import path ("cogdiff").
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*types.Package),
		passes:     make(map[string]*Pass),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module packages load from source,
// everything else delegates to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pass, err := l.LoadPackage(path)
		if err != nil {
			return nil, err
		}
		return pass.Pkg, nil
	}
	return l.std.Import(path)
}

// LoadPackage parses and type-checks the module package with the given
// import path, returning a ready-to-analyze Pass. Results are memoized.
func (l *Loader) LoadPackage(importPath string) (*Pass, error) {
	if pass, ok := l.passes[importPath]; ok {
		return pass, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	var names []string
	names = append(names, bp.GoFiles...)
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pass, err := l.Check(importPath, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pass.Pkg
	l.passes[importPath] = pass
	return pass, nil
}

// Check type-checks already parsed files as one package and wraps the
// result in a Pass. It is the shared back half of LoadPackage, exposed
// so tests can check synthetic file sets under a chosen import path.
func (l *Loader) Check(importPath string, files []*ast.File) (*Pass, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Pass{
		Fset:       l.fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ImportPath: importPath,
	}, nil
}

// ModulePackages walks the module tree and returns the import path of
// every directory holding buildable Go files, sorted.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return fs.SkipDir
		}
		has, err := hasGoFiles(p)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
