package analyzers_test

// The analyzer tests follow the classic vet-test shape: each testdata
// package is real, type-checked Go whose lines carry `// want "substr"`
// annotations. Running the analyzers must produce exactly the annotated
// diagnostics — every want matched, nothing extra — so a rule that goes
// quiet or chatty fails loudly with positions.

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"cogdiff/internal/analyzers"
)

var wantPattern = regexp.MustCompile(`// want "([^"]*)"`)

// runTestdata type-checks one testdata directory under the given import
// path and diffs the analyzer output against its want annotations.
func runTestdata(t *testing.T, dir, importPath string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader := analyzers.NewLoader(root, "cogdiff")
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(full, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantPattern.FindAllStringSubmatch(line, -1) {
				k := key{path, i + 1}
				wants[k] = append(wants[k], m[1])
			}
		}
		f, err := parser.ParseFile(loader.Fset(), path, data, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}

	pass, err := loader.Check(importPath, files)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range analyzers.RunAll(pass) {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: annotated want %q produced no diagnostic", k.file, k.line, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	runTestdata(t, "determinism", "cogdiff/testdata/determinism")
}

func TestSemverMissingStamp(t *testing.T) {
	// The import path makes this a cache-keyed package; the testdata
	// deliberately omits the stamp.
	runTestdata(t, "semver_missing", "cogdiff/internal/interp")
}

func TestSemverBadStamps(t *testing.T) {
	runTestdata(t, "semver_bad", "cogdiff/testdata/stamps")
}

func TestTelemetryNameDecls(t *testing.T) {
	// The telemetry import path switches on the declaration-side rule.
	runTestdata(t, "telemetry_decl", "cogdiff/internal/telemetry")
}

func TestTelemetryNameUses(t *testing.T) {
	runTestdata(t, "telemetry_use", "cogdiff/testdata/use")
}

// TestRepoLintsClean is the in-tree acceptance gate: the analyzers run
// over every package of this module and must report nothing. Any new
// wall clock, RNG, ordered map emission, stamp or metric naming drift
// fails this test with exact positions.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module source typecheck is seconds of work; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader := analyzers.NewLoader(root, "cogdiff")
	pkgs, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("module walk found only %d packages: %v", len(pkgs), pkgs)
	}
	for _, pkg := range pkgs {
		pass, err := loader.LoadPackage(pkg)
		if err != nil {
			t.Fatalf("load %s: %v", pkg, err)
		}
		for _, d := range analyzers.RunAll(pass) {
			t.Errorf("%s", d)
		}
	}
}
