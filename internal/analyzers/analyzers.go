// Package analyzers implements the repository's invariant linters:
// static analyses over the cogdiff source tree that catch determinism
// hazards and cache-key versioning mistakes before they can corrupt the
// byte-identical report surface.
//
// The package is deliberately self-contained — parsed ASTs plus go/types
// over the standard library only — so the linters run in two harnesses
// without external dependencies:
//
//   - cmd/cogdiff-lint as a standalone driver over package patterns, and
//   - the same binary speaking the `go vet -vettool` unitchecker
//     protocol, which gives per-package incremental runs under the go
//     command's action cache.
//
// Three analyzers ship:
//
//   - determinism: no time.Now/time.Since/time.Until, no math/rand, and
//     no ranging over maps outside test files. All three inject
//     schedule- or seed-dependent values that are forbidden on the
//     byte-identical report surface. Intentional sites (telemetry
//     timings, the seeded fuzzer RNG) carry a
//     `//cogdiff:allow-nondeterminism <reason>` directive.
//   - semver: packages whose semantics feed persistent cache keys
//     declare a `SemanticsVersion` constant with a `name/N` value, so a
//     semantic change has one audited place to bump — and stale cache
//     entries orphan instead of resurfacing.
//   - telemetryname: metric name constants follow the cogdiff_* naming
//     scheme, counters end in _total and histograms in _seconds, checked
//     at every Registry.Counter/Histogram call site via constant
//     folding.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one linter finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is the per-package unit of work handed to each analyzer: the
// package's syntax, its type information, and the allow-directive index.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string

	directives map[string]map[int]string // file -> line -> reason
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// All returns the repository's analyzer set in canonical order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Semver, TelemetryName}
}

// RunAll applies every analyzer to the pass and returns the findings
// sorted by position, so driver output is deterministic.
func RunAll(p *Pass) []Diagnostic {
	p.indexDirectives()
	var out []Diagnostic
	for _, a := range All() {
		out = append(out, a.Run(p)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowDirective is the in-source waiver for the determinism analyzer.
// It must carry a reason: a bare waiver documents nothing.
const allowDirective = "//cogdiff:allow-nondeterminism"

// indexDirectives scans every comment for allow directives and records
// them by file and line.
func (p *Pass) indexDirectives() {
	p.directives = make(map[string]map[int]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, allowDirective))
				pos := p.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]string)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = reason
			}
		}
	}
}

// allowed reports whether the node at pos is covered by an allow
// directive — on the same line or the line directly above — and whether
// that directive carries the mandatory reason.
func (p *Pass) allowed(pos token.Position) (covered, hasReason bool) {
	byLine := p.directives[pos.Filename]
	if byLine == nil {
		return false, false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if reason, ok := byLine[line]; ok {
			return true, reason != ""
		}
	}
	return false, false
}

// diag builds a positioned diagnostic.
func (p *Pass) diag(name string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Analyzer: name, Message: fmt.Sprintf(format, args...)}
}

// isTestFile reports whether the file a node belongs to is a _test.go
// file; test code may use wall clocks, RNGs and map iteration freely.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}
