package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
)

// Semver enforces the semantic-version-stamp convention behind the
// persistent caches. Packages whose semantics are folded into cache
// keys (the interpreter, the primitive catalog, the solver, the JIT
// pipeline, the machine model and the meta-compiler) must each declare
// a `SemanticsVersion` string constant whose value has the `name/N`
// shape, so a semantic change has exactly one audited bump site and
// stale cache entries orphan instead of resurfacing. An exported
// `Version` constant carrying a stamp-shaped value is flagged too: the
// uniform name is what makes `grep SemanticsVersion` an exhaustive
// audit.
var Semver = &Analyzer{
	Name: "semver",
	Doc:  "cache-keyed packages declare a well-formed SemanticsVersion stamp",
	Run:  runSemver,
}

// semverPackages are the import paths whose semantics feed persistent
// cache keys (see internal/excache/versions.go).
var semverPackages = map[string]bool{
	"cogdiff/internal/interp":      true,
	"cogdiff/internal/primitives":  true,
	"cogdiff/internal/solver":      true,
	"cogdiff/internal/jit":         true,
	"cogdiff/internal/machine":     true,
	"cogdiff/internal/metacompile": true,
}

// stampPattern is the required stamp shape: a lowercase component name,
// a slash, a monotonically bumped integer.
var stampPattern = regexp.MustCompile(`^[a-z0-9-]+/[0-9]+$`)

func runSemver(p *Pass) []Diagnostic {
	var out []Diagnostic
	var stampPos token.Pos = token.NoPos

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					switch name.Name {
					case "SemanticsVersion":
						stampPos = name.Pos()
						if val, ok := constStringValue(p, name); ok && !stampPattern.MatchString(val) {
							out = append(out, p.diag("semver", name.Pos(),
								"SemanticsVersion %q does not match name/N (e.g. %q)", val, "interp/1"))
						}
					case "Version":
						if !p.isTestFile(name.Pos()) && name.IsExported() {
							if val, ok := constStringValue(p, name); ok && stampPattern.MatchString(val) {
								out = append(out, p.diag("semver", name.Pos(),
									"version stamp %q is named Version: name it SemanticsVersion so stamp audits stay exhaustive", val))
							}
						}
					}
				}
			}
		}
	}

	if semverPackages[p.ImportPath] && stampPos == token.NoPos {
		pos := token.NoPos
		if len(p.Files) > 0 {
			pos = p.Files[0].Name.Pos()
		}
		out = append(out, p.diag("semver", pos,
			"package %s feeds persistent cache keys but declares no SemanticsVersion constant", p.ImportPath))
	}
	return out
}

// constStringValue folds a constant identifier to its string value.
func constStringValue(p *Pass, id *ast.Ident) (string, bool) {
	obj := p.Info.Defs[id]
	if obj == nil {
		return "", false
	}
	c, ok := obj.(interface{ Val() constant.Value })
	if !ok {
		return "", false
	}
	v := c.Val()
	if v == nil || v.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(v), true
}
