// Package telemetry is analyzer test input: type-checked under the
// telemetry package's import path so the declaration-side metric name
// rule applies.
package telemetry

const (
	MetricGoodCounter = "cogdiff_campaign_runs_total"
	MetricBadCase     = "Cogdiff_Campaign_Runs" // want "does not match cogdiff_"
	MetricBadPrefix   = "campaign_runs_total"   // want "does not match cogdiff_"

	// Non-Metric constants are out of scope.
	SpanExplore = "explore"
)
