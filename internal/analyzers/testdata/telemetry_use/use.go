// Package use is analyzer test input: registration call sites against
// the real telemetry Registry, checked by constant-folding the name
// argument.
package use

import "cogdiff/internal/telemetry"

const localName = "cogdiff_local_checks_total"

func register(r *telemetry.Registry, dynamic string) {
	r.Counter("cogdiff_campaign_runs_total")
	r.Counter(localName)
	r.Counter("cogdiff_campaign_runs")        // want "must end in"
	r.LabeledCounter("bad_name_total", "isa") // want "does not match cogdiff_"
	r.Histogram("cogdiff_compile_seconds", nil)
	r.Histogram("cogdiff_compile_time", nil) // want "must end in"
	r.Gauge("cogdiff_active_workers")
	r.Counter(dynamic) // dynamic names cannot be folded: not flagged
}
