// Package determinism is analyzer test input: every construct the
// determinism analyzer must flag, waive, or ignore.
package determinism

import (
	"fmt"
	"math/rand" // want "use a seeded, explicitly threaded source"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "call to time.Now: wall-clock reads are nondeterministic"
	return time.Since(start) // want "call to time.Since: wall-clock reads are nondeterministic"
}

func waived() time.Time {
	//cogdiff:allow-nondeterminism trace timestamps never reach a report
	return time.Now()
}

func waivedSameLine() time.Time {
	return time.Now() //cogdiff:allow-nondeterminism trace timestamps never reach a report
}

func waiverWithoutReason() time.Time {
	//cogdiff:allow-nondeterminism
	return time.Now() // want "allow-nondeterminism directive without a reason"
}

func emittingMapRange(m map[string]int) {
	for k, v := range m { // want "map range emits output in iteration order"
		fmt.Println(k, v)
	}
}

func collectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // ordered downstream by the caller's sort: not flagged
		keys = append(keys, k)
	}
	return keys
}

func sliceRange(xs []int) {
	for _, x := range xs { // slices iterate in order: not flagged
		fmt.Println(x)
	}
}

func seeded() int {
	return rand.Intn(10)
}
