// Package interp is analyzer test input: type-checked under the import
// path cogdiff/internal/interp — a cache-keyed package — but declaring
// no SemanticsVersion stamp.
package interp // want "declares no SemanticsVersion constant"

// Step is a stand-in for the package's real semantics.
func Step() int { return 1 }
