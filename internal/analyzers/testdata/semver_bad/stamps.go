// Package stamps is analyzer test input for the semver stamp rules.
package stamps

// A malformed stamp value: uppercase and no /N suffix.
const SemanticsVersion = "Interp/One" // want "does not match name/N"

// A well-shaped stamp hiding under the wrong name.
const Version = "solver/1" // want "is named Version: name it SemanticsVersion"

// Not a stamp at all: ignored.
const Greeting = "hello"

// Unexported version constants are free to exist.
const version = "solver/9"
