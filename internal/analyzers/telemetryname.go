package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// TelemetryName pins the metric naming scheme the dashboards and the
// bench exporter key on: every metric name constant (Metric*) in the
// telemetry package matches `cogdiff_[a-z0-9_]+`, and at every
// registration site that the compiler can constant-fold, counters end
// in `_total` and histograms in `_seconds`. The check runs on call
// arguments, not just the constant declarations, so a raw string
// literal slipped into Registry.Counter is caught at its use.
var TelemetryName = &Analyzer{
	Name: "telemetryname",
	Doc:  "metric names follow the cogdiff_* scheme; counters end _total, histograms _seconds",
	Run:  runTelemetryName,
}

const telemetryPkgPath = "cogdiff/internal/telemetry"

var metricNamePattern = regexp.MustCompile(`^cogdiff_[a-z0-9_]+$`)

// registrySuffix maps Registry registration methods to the unit suffix
// their metric names must carry ("" = prefix check only).
var registrySuffix = map[string]string{
	"Counter":          "_total",
	"LabeledCounter":   "_total",
	"Histogram":        "_seconds",
	"LabeledHistogram": "_seconds",
	"Gauge":            "",
}

func runTelemetryName(p *Pass) []Diagnostic {
	var out []Diagnostic

	// Declaration-side check: Metric* constants in the telemetry package.
	if p.ImportPath == telemetryPkgPath {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "Metric") || p.isTestFile(name.Pos()) {
							continue
						}
						if val, ok := constStringValue(p, name); ok && !metricNamePattern.MatchString(val) {
							out = append(out, p.diag("telemetryname", name.Pos(),
								"metric constant %s = %q does not match cogdiff_[a-z0-9_]+", name.Name, val))
						}
					}
				}
			}
		}
	}

	// Use-side check: fold the name argument at every registration call.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || p.isTestFile(call.Pos()) {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != telemetryPkgPath {
				return true
			}
			suffix, isReg := registrySuffix[fn.Name()]
			if !isReg || !isRegistryMethod(fn) {
				return true
			}
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic name: nothing to fold
			}
			name := constant.StringVal(tv.Value)
			switch {
			case !metricNamePattern.MatchString(name):
				out = append(out, p.diag("telemetryname", call.Args[0].Pos(),
					"metric name %q does not match cogdiff_[a-z0-9_]+", name))
			case suffix != "" && !strings.HasSuffix(name, suffix):
				out = append(out, p.diag("telemetryname", call.Args[0].Pos(),
					"%s metric %q must end in %q", fn.Name(), name, suffix))
			}
			return true
		})
	}
	return out
}

// isRegistryMethod reports whether fn is a method on telemetry.Registry.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
