package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism flags the three sources of run-to-run nondeterminism that
// have historically threatened the byte-identical report surface:
//
//   - wall-clock reads (time.Now, time.Since, time.Until),
//   - the math/rand package (its global source is seeded per-process),
//   - ranging over a map while emitting output from the loop body, so
//     the randomized iteration order becomes the output order. The
//     repo-standard collect-keys-then-sort idiom ranges without
//     emitting and passes; a fmt print call or Write* method inside the
//     loop does not.
//
// Test files are exempt. Production sites that are intentionally
// nondeterministic — telemetry timings that never reach a report, the
// fuzzer's explicitly seeded RNG — carry a
// `//cogdiff:allow-nondeterminism <reason>` directive on the same line
// or the line above; a directive without a reason is itself flagged.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, math/rand and map ranges on the deterministic report surface",
	Run:  runDeterminism,
}

// wallClockFuncs are the time package functions that read the wall
// clock. time.Sleep is deliberately absent: sleeping is schedule-visible
// but value-invisible.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(p *Pass) []Diagnostic {
	var out []Diagnostic
	report := func(node ast.Node, format string, args ...any) {
		pos := p.Fset.Position(node.Pos())
		if p.isTestFile(node.Pos()) {
			return
		}
		covered, hasReason := p.allowed(pos)
		if covered {
			if !hasReason {
				out = append(out, p.diag("determinism", node.Pos(),
					"allow-nondeterminism directive without a reason"))
			}
			return
		}
		out = append(out, p.diag("determinism", node.Pos(), format, args...))
	}

	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"math/rand"` || imp.Path.Value == `"math/rand/v2"` {
				report(imp, "import of %s: use a seeded, explicitly threaded source instead", imp.Path.Value)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(p.Info, n); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
					report(n, "call to time.%s: wall-clock reads are nondeterministic", fn.Name())
				}
			case *ast.RangeStmt:
				if tv, ok := p.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && emitsInLoop(p.Info, n.Body) {
						report(n, "map range emits output in iteration order, which is nondeterministic: collect and sort first")
					}
				}
			}
			return true
		})
	}
	return out
}

// writeMethods are method names whose call inside a map-range body turns
// iteration order into output order.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// emitsInLoop reports whether the loop body emits output — an fmt print
// call or a Write* method call — making iteration order observable.
func emitsInLoop(info *types.Info, body *ast.BlockStmt) bool {
	emits := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || emits {
			return !emits
		}
		if fn := calleeFunc(info, call); fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
				emits = true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && writeMethods[fn.Name()] {
				emits = true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
				emits = true
			}
		}
		return !emits
	})
	return emits
}

// calleeFunc resolves a call expression's callee to the *types.Func it
// invokes, or nil for indirect calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
