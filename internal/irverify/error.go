package irverify

import "fmt"

// Error is the typed compile failure the JIT back-end raises when
// static verification rejects an IR function. It carries the pipeline
// stage that produced the rejected function ("front-end" or
// "pass:<name>") so the differential tester can attribute the verdict
// statically — the exact analogue of dynamic pass-level blame, minus
// the execution.
type Error struct {
	// Stage names the compilation stage after which the violation was
	// detected: "front-end" or "pass:<name>".
	Stage string
	// Violations holds every rule violation, most significant first
	// (pass-effect violations precede whole-function ones, so a pass
	// that breaks stack balance is blamed on the balance rule even if
	// the breakage knocks on into other rules).
	Violations []Violation
}

// Error renders the primary violation plus a count of the rest.
func (e *Error) Error() string {
	if len(e.Violations) == 0 {
		return fmt.Sprintf("ir-verify: rejected after %s", e.Stage)
	}
	s := fmt.Sprintf("ir-verify: %s after %s", e.Violations[0], e.Stage)
	if n := len(e.Violations) - 1; n > 0 {
		s += fmt.Sprintf(" (+%d more)", n)
	}
	return s
}

// Blame is the statically-attributed cause string surfaced in campaign,
// difftest, fuzz and serve reports: `ir-verify:<rule> after <stage>`.
func (e *Error) Blame() string {
	rule := "unknown"
	if len(e.Violations) > 0 {
		rule = e.Violations[0].Rule
	}
	return "ir-verify:" + rule + " after " + e.Stage
}
