// Package irverify statically verifies the JIT's typed IR
// (internal/ir) before a single instruction executes. It is the
// complement of the dynamic differential tester: where the tester
// compares executed behaviour against the interpreter, this package
// checks structural invariants every compiled unit must satisfy
// regardless of input — labels resolve, virtual registers are defined
// before use, control cannot fall through a terminator into dead code,
// every opcode carries exactly the operand fields its machine semantics
// read, the abstract stack depth balances along every path, and (for
// meta-compiled plans) a deoptimization stub is present and reachable.
//
// The package also implements a translation-validation-lite check over
// the pass pipeline: VerifyPassEffect compares the abstract stack effect
// of a function before and after one optimization pass. The passes of
// internal/ir (deadpushpop, constfold, peephole) are stack-effect
// preserving by contract, so any change to the per-exit depth summary is
// a pass bug — caught statically, with the guilty pass named, before the
// miscompiled unit ever runs.
//
// irverify sits below internal/jit in the dependency order (jit calls
// into it), so nothing here may import jit; the meta-compiled deopt
// breakpoint identifier arrives through Options instead.
package irverify

import (
	"fmt"

	"cogdiff/internal/ir"
)

// Options parameterize one verification run.
type Options struct {
	// RequireDeopt demands a reachable deoptimization stub: a Brk
	// instruction carrying DeoptBrkID. The meta-compiled front-end's
	// guard chains are only exhaustive if an input matching no recorded
	// path can still reach the stub.
	RequireDeopt bool
	// DeoptBrkID is the breakpoint identifier of the deoptimization stub
	// (jit.BrkMetaDeopt; passed in to keep this package below jit).
	DeoptBrkID int64
}

// Violation is one static rule violation. Rule is a stable identifier
// (it becomes part of the blame string `ir-verify:<rule> after <stage>`),
// Index the offending instruction's position in Fn.Instrs (-1 for
// whole-function rules), Detail the human-readable specifics.
type Violation struct {
	Rule   string
	Index  int
	Detail string
}

func (v Violation) String() string {
	if v.Index < 0 {
		return fmt.Sprintf("%s: %s", v.Rule, v.Detail)
	}
	return fmt.Sprintf("%s at #%d: %s", v.Rule, v.Index, v.Detail)
}

// Rule identifiers. RuleStackBalance is produced only by
// VerifyPassEffect; the others by Verify.
const (
	RuleLabel        = "label"          // duplicate or unresolved label
	RuleDefBeforeUse = "def-before-use" // virtual register used before defined
	RuleDeadCode     = "dead-code"      // fallthrough past an unconditional terminator
	RuleOpcodeShape  = "opcode-shape"   // operand fields inconsistent with the opcode
	RuleRegRange     = "reg-range"      // register outside physical and virtual ranges
	RuleTerminator   = "terminator"     // control can run off the end of the function
	RuleUnderflow    = "stack-underflow"
	RuleStackJoin    = "stack-join"    // conflicting stack depths reach a depth-sensitive op
	RuleStackTrack   = "stack-track"   // SP written by an instruction the model cannot track
	RuleFrameBalance = "frame-balance" // Ret with a non-empty (or unprovable) frame
	RuleGuardDeopt   = "guard-deopt"   // deoptimization stub missing or unreachable
	RuleStackBalance = "stack-balance" // pass changed the abstract stack effect
)

// shape describes which operand fields an opcode's machine semantics
// read. Fields not read must be zero-valued — a non-zero unused field
// means the front-end (or a pass) built the instruction wrong, even if
// lowering happens to ignore it today.
type shape struct {
	rd, rs1, rs2, imm, sym bool
}

var shapes = map[ir.Opc]shape{
	ir.OpcNop:        {},
	ir.OpcMovR:       {rd: true, rs1: true},
	ir.OpcMovI:       {rd: true, imm: true},
	ir.OpcLoad:       {rd: true, rs1: true, imm: true},
	ir.OpcStore:      {rs1: true, rs2: true, imm: true},
	ir.OpcLoadX:      {rd: true, rs1: true, rs2: true},
	ir.OpcStoreX:     {rd: true, rs1: true, rs2: true},
	ir.OpcPush:       {rs1: true},
	ir.OpcPop:        {rd: true},
	ir.OpcAdd:        {rd: true, rs1: true, rs2: true},
	ir.OpcSub:        {rd: true, rs1: true, rs2: true},
	ir.OpcMul:        {rd: true, rs1: true, rs2: true},
	ir.OpcDiv:        {rd: true, rs1: true, rs2: true},
	ir.OpcMod:        {rd: true, rs1: true, rs2: true},
	ir.OpcAnd:        {rd: true, rs1: true, rs2: true},
	ir.OpcOr:         {rd: true, rs1: true, rs2: true},
	ir.OpcXor:        {rd: true, rs1: true, rs2: true},
	ir.OpcShl:        {rd: true, rs1: true, rs2: true},
	ir.OpcShr:        {rd: true, rs1: true, rs2: true},
	ir.OpcSar:        {rd: true, rs1: true, rs2: true},
	ir.OpcAddI:       {rd: true, rs1: true, imm: true},
	ir.OpcSubI:       {rd: true, rs1: true, imm: true},
	ir.OpcAndI:       {rd: true, rs1: true, imm: true},
	ir.OpcOrI:        {rd: true, rs1: true, imm: true},
	ir.OpcShlI:       {rd: true, rs1: true, imm: true},
	ir.OpcSarI:       {rd: true, rs1: true, imm: true},
	ir.OpcCmp:        {rs1: true, rs2: true},
	ir.OpcCmpI:       {rs1: true, imm: true},
	ir.OpcJmp:        {sym: true},
	ir.OpcJeq:        {sym: true},
	ir.OpcJne:        {sym: true},
	ir.OpcJlt:        {sym: true},
	ir.OpcJle:        {sym: true},
	ir.OpcJgt:        {sym: true},
	ir.OpcJge:        {sym: true},
	ir.OpcCall:       {imm: true},
	ir.OpcCallR:      {rs1: true},
	ir.OpcRet:        {},
	ir.OpcBrk:        {imm: true},
	ir.OpcHlt:        {},
	ir.OpcFAdd:       {rd: true, rs1: true, rs2: true},
	ir.OpcFSub:       {rd: true, rs1: true, rs2: true},
	ir.OpcFMul:       {rd: true, rs1: true, rs2: true},
	ir.OpcFDiv:       {rd: true, rs1: true, rs2: true},
	ir.OpcFCmp:       {rs1: true, rs2: true},
	ir.OpcI2F:        {rd: true, rs1: true},
	ir.OpcF2I:        {rd: true, rs1: true},
	ir.OpcFSqrt:      {rd: true, rs1: true},
	ir.OpcF64To32:    {rd: true, rs1: true},
	ir.OpcF32To64:    {rd: true, rs1: true},
	ir.OpcFSin:       {rd: true, rs1: true},
	ir.OpcFAtan:      {rd: true, rs1: true},
	ir.OpcFLog:       {rd: true, rs1: true},
	ir.OpcFExp:       {rd: true, rs1: true},
	ir.OpcAllocFloat: {rd: true, rs1: true},
	ir.OpcAlloc:      {rd: true, rs1: true, rs2: true},
	ir.OpcLabel:      {sym: true},
}

// isTerminator reports an instruction after which control never falls
// through: unconditional jump, return, halt, or breakpoint (the
// simulated machine stops at breakpoints; code after one without an
// intervening label is unreachable).
func isTerminator(op ir.Opc) bool {
	switch op {
	case ir.OpcJmp, ir.OpcRet, ir.OpcHlt, ir.OpcBrk:
		return true
	}
	return false
}

// Analysis is one function's verification result, kept whole so a
// compilation pipeline can reuse the pass-input's analysis when
// verifying the pass output instead of re-analyzing the same function
// up to three times per stage. Obtain one with Options.Analyze; read
// the rule verdict with Violations and feed before/after pairs to
// VerifyPassEffectOn.
type Analysis struct {
	fn         *ir.Fn
	structural []Violation
	flow       *analysis // nil when structural violations suppressed it
	deopt      []Violation
}

// Fn returns the analyzed function.
func (an *Analysis) Fn() *ir.Fn { return an.fn }

// Violations returns the full rule verdict: structural violations,
// then — only on a structurally sound function — the flow-sensitive
// and deopt-reachability violations. Identical to Options.Verify.
func (an *Analysis) Violations() []Violation {
	if len(an.structural) > 0 {
		return an.structural
	}
	var vs []Violation
	if an.flow != nil {
		vs = append(vs, an.flow.violations...)
	}
	return append(vs, an.deopt...)
}

// Analyze runs the full verifier over fn once and keeps every
// intermediate result for reuse. The flow analysis runs even when
// structural checks fail (Violations still suppresses its findings, to
// avoid double-reporting): VerifyPassEffectOn needs the exit summary of
// a broken function so a pass that breaks stack balance is blamed on
// stack-balance, not on whichever structural rule the breakage also
// tripped.
func (o Options) Analyze(fn *ir.Fn) *Analysis {
	an := &Analysis{fn: fn, structural: o.verifyStructural(fn)}
	an.flow = analyze(fn)
	if len(an.structural) == 0 && o.RequireDeopt {
		an.deopt = o.verifyDeopt(fn, an.flow)
	}
	return an
}

// Verify statically checks one IR function against the full rule
// catalog and returns every violation found (nil when clean).
func (o Options) Verify(fn *ir.Fn) []Violation {
	return o.Analyze(fn).Violations()
}

// verifyStructural runs the linear-order rules: labels, opcode shapes,
// register ranges, def-before-use, dead fallthrough, termination.
func (o Options) verifyStructural(fn *ir.Fn) []Violation {
	var vs []Violation
	labels := make(map[string]int, 8)
	for i, ins := range fn.Instrs {
		if ins.Op == ir.OpcLabel {
			if prev, dup := labels[ins.Sym]; dup {
				vs = append(vs, Violation{Rule: RuleLabel, Index: i,
					Detail: fmt.Sprintf("label %q already defined at #%d", ins.Sym, prev)})
				continue
			}
			labels[ins.Sym] = i
		}
	}

	vregDef := make(map[ir.Reg]int)
	for i, ins := range fn.Instrs {
		sh, known := shapes[ins.Op]
		if !known {
			vs = append(vs, Violation{Rule: RuleOpcodeShape, Index: i,
				Detail: fmt.Sprintf("unknown opcode %s", ins.Op)})
			continue
		}
		vs = append(vs, checkShape(i, ins, sh)...)
		if ins.IsJump() {
			if _, ok := labels[ins.Sym]; !ok {
				vs = append(vs, Violation{Rule: RuleLabel, Index: i,
					Detail: fmt.Sprintf("jump to undefined label %q", ins.Sym)})
			}
		}
		// Dead fallthrough. The compilation schema deliberately plants
		// exit stubs behind unconditional control transfers (an always-
		// taken jump byte-code still gets its end-fall breakpoint), so a
		// dead region is legal as long as it terminates on its own before
		// the next label. What is never legal is dead code bleeding into
		// a live block: that means a front-end or pass lost track of its
		// block structure.
		if i > 0 && ins.Op != ir.OpcLabel && isTerminator(fn.Instrs[i-1].Op) {
			if j, ok := deadRegionEnd(fn.Instrs, i); !ok {
				into := "the end of the function"
				if j < len(fn.Instrs) {
					into = fmt.Sprintf("label %q", fn.Instrs[j].Sym)
				}
				vs = append(vs, Violation{Rule: RuleDeadCode, Index: i,
					Detail: fmt.Sprintf("dead code behind %s falls through into %s", fn.Instrs[i-1].Op, into)})
			}
		}
		// Virtual-register def-before-use in linear order. Emission is
		// linear, so a register's first definition precedes every use in
		// any well-formed front-end output (backward jumps re-enter code
		// that is linearly after the definition).
		if sh.rs1 && ins.Rs1.IsVirtual() {
			if _, ok := vregDef[ins.Rs1]; !ok {
				vs = append(vs, Violation{Rule: RuleDefBeforeUse, Index: i,
					Detail: fmt.Sprintf("%s read before any definition", ins.Rs1)})
			}
		}
		if sh.rs2 && ins.Rs2.IsVirtual() {
			if _, ok := vregDef[ins.Rs2]; !ok {
				vs = append(vs, Violation{Rule: RuleDefBeforeUse, Index: i,
					Detail: fmt.Sprintf("%s read before any definition", ins.Rs2)})
			}
		}
		if sh.rd && ins.Rd.IsVirtual() {
			// StoreX and Store read their "destination" field; everything
			// else writes it.
			if ins.Op == ir.OpcStoreX {
				if _, ok := vregDef[ins.Rd]; !ok {
					vs = append(vs, Violation{Rule: RuleDefBeforeUse, Index: i,
						Detail: fmt.Sprintf("%s read before any definition", ins.Rd)})
				}
			} else if _, ok := vregDef[ins.Rd]; !ok {
				vregDef[ins.Rd] = i
			}
		}
	}

	if n := len(fn.Instrs); n == 0 || !isTerminator(fn.Instrs[n-1].Op) {
		vs = append(vs, Violation{Rule: RuleTerminator, Index: -1,
			Detail: "control can run off the end of the function"})
	}

	return vs
}

// verifyDeopt checks deoptimization-stub exhaustiveness: any input not
// matching a recorded path must be able to bail out. A plan with no
// reachable conditional jump accepts every input on its single path, so
// its stub is legitimately dead; once the code discriminates inputs, a
// reachable stub is mandatory.
func (o Options) verifyDeopt(fn *ir.Fn, a *analysis) []Violation {
	present, reachable, guarded := false, false, false
	for i, ins := range fn.Instrs {
		if ins.Op == ir.OpcBrk && ins.Imm == o.DeoptBrkID {
			present = true
			if a.reached[i] {
				reachable = true
			}
		}
		if ins.IsJump() && ins.Op != ir.OpcJmp && a.reached[i] {
			guarded = true
		}
	}
	switch {
	case !present:
		return []Violation{{Rule: RuleGuardDeopt, Index: -1,
			Detail: fmt.Sprintf("no deoptimization stub (brk %d)", o.DeoptBrkID)}}
	case guarded && !reachable:
		return []Violation{{Rule: RuleGuardDeopt, Index: -1,
			Detail: fmt.Sprintf("deoptimization stub (brk %d) unreachable from the guard chain", o.DeoptBrkID)}}
	}
	return nil
}

// deadRegionEnd scans the dead region starting at i (the first
// instruction behind a terminator, no intervening label) and reports
// where it ends — the next label's index or len(instrs) — plus whether
// the region reaches a terminator of its own before ending.
func deadRegionEnd(instrs []ir.Instr, i int) (int, bool) {
	for ; i < len(instrs); i++ {
		if instrs[i].Op == ir.OpcLabel {
			return i, false
		}
		if isTerminator(instrs[i].Op) {
			return i + 1, true
		}
	}
	return i, false
}

func checkShape(i int, ins ir.Instr, sh shape) []Violation {
	var vs []Violation
	bad := func(field string, detail string) {
		vs = append(vs, Violation{Rule: RuleOpcodeShape, Index: i,
			Detail: fmt.Sprintf("%s: %s %s", ins.Op, field, detail)})
	}
	checkReg := func(field string, r ir.Reg, used bool) {
		if used {
			if r >= ir.NumPhysRegs && !r.IsVirtual() {
				vs = append(vs, Violation{Rule: RuleRegRange, Index: i,
					Detail: fmt.Sprintf("%s: %s names register %d, outside the physical and virtual ranges", ins.Op, field, r)})
			}
		} else if r != 0 {
			bad(field, fmt.Sprintf("set to %s but unused by this opcode", r))
		}
	}
	checkReg("rd", ins.Rd, sh.rd)
	checkReg("rs1", ins.Rs1, sh.rs1)
	checkReg("rs2", ins.Rs2, sh.rs2)
	if !sh.imm && ins.Imm != 0 {
		bad("imm", fmt.Sprintf("set to %d but unused by this opcode", ins.Imm))
	}
	if sh.sym {
		if ins.Sym == "" {
			bad("sym", "empty label reference")
		}
	} else if ins.Sym != "" {
		bad("sym", fmt.Sprintf("set to %q but unused by this opcode", ins.Sym))
	}
	return vs
}
