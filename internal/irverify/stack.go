package irverify

import (
	"fmt"
	"sort"
	"strings"

	"cogdiff/internal/ir"
)

// The abstract stack model. The front-ends' frame conventions make SP
// and FP fully trackable without value analysis:
//
//	Push rs          depth+1        Pop rd            depth-1
//	AddI sp,sp,k     depth-k        SubI sp,sp,k      depth+k
//	MovR fp,sp       fp := depth    MovR sp,fp        depth := fp
//	Call/CallR       neutral (the callee pops its own return address)
//	Ret              exit; requires depth == 0 (the entry slot is the
//	                 caller's — the sentinel return address Ret consumes)
//
// Depth counts pushed words relative to function entry. The analysis is
// path-sensitive up to a bound: each program point keeps a small set of
// distinct incoming states, so a join merging different depths stays
// precise (each state flows on independently). Past the bound, or after
// an untracked SP write, the state degrades to "unknown" — harmless
// into a terminal breakpoint but a violation if it reaches a
// depth-sensitive instruction.
//
// Alongside depth the analysis tracks the *raw* cumulative stack
// movement: the signed sum of explicit pushes, pops and SP adjustments,
// deliberately ignoring the frame teardown's `MovR sp,fp` restore. The
// teardown discards whatever the body left on the stack, so exit depth
// alone cannot distinguish a correct body from one where a pass leaked
// a slot — the raw movement can. Correct passes preserve it exactly:
// dead-push/pop removes balanced pairs (+1 −1), constant folding never
// touches stack traffic, and a sound peephole deletes only stack-neutral
// no-ops. A pass that drops a lone pop shifts every downstream exit's
// raw movement by +1, which VerifyPassEffect rejects.

// absState is the abstract machine state at one program point.
type absState struct {
	depth   int
	depthOK bool
	fp      int
	fpOK    bool
	raw     int
	rawOK   bool
}

// maxStatesPerPoint bounds distinct states tracked per instruction
// before the analysis degrades that point to unknown (termination on
// pathological inputs; real pipelines see one or two states).
const maxStatesPerPoint = 8

// analysis is the result of one abstract interpretation of a function.
type analysis struct {
	// reached marks instructions the entry can flow to.
	reached []bool
	// exits lists every reachable exit point in linear order.
	exits []exitPoint
	// violations are the flow-sensitive rule violations.
	violations []Violation
}

// exitState is one abstract arrival state at an exit instruction,
// projected down to what a pass must preserve: the stack depth and the
// raw cumulative movement (each OK flag false when an untracked write
// made it unprovable).
type exitState struct {
	depth   int
	depthOK bool
	raw     int
	rawOK   bool
}

func (s exitState) String() string {
	d, r := "?", "?"
	if s.depthOK {
		d = fmt.Sprintf("%+d", s.depth)
	}
	if s.rawOK {
		r = fmt.Sprintf("%+d", s.raw)
	}
	return fmt.Sprintf("@%s raw %s", d, r)
}

// less orders exit states canonically, so the comparison is independent
// of the order the worklist discovered them in.
func (s exitState) less(o exitState) bool {
	if s.depthOK != o.depthOK {
		return s.depthOK
	}
	if s.depth != o.depth {
		return s.depth < o.depth
	}
	if s.rawOK != o.rawOK {
		return s.rawOK
	}
	return s.raw < o.raw
}

// exitPoint summarizes one reachable exit instruction: its opcode (Brk,
// Ret or Hlt), the breakpoint id for Brk, and the set of distinct
// abstract states the paths reaching it arrive in, canonically sorted.
// Keeping the states separate — instead of merging them into one
// summary — is what lets VerifyPassEffect see a dropped pop on a
// function whose exits are reached at several depths: merging would
// collapse both sides to "unknown" and the shifted raw movement would
// hide.
type exitPoint struct {
	index  int
	op     ir.Opc
	brkID  int64
	states []exitState
}

func (e exitPoint) effect() string {
	parts := make([]string, len(e.states))
	for i, s := range e.states {
		parts[i] = s.String()
	}
	joined := strings.Join(parts, ", ")
	if e.op == ir.OpcBrk {
		return fmt.Sprintf("%s %d [%s]", e.op, e.brkID, joined)
	}
	return fmt.Sprintf("%s [%s]", e.op, joined)
}

// analyze runs the abstract interpretation. It assumes the structural
// rules already passed: every jump target resolves.
func analyze(fn *ir.Fn) *analysis {
	n := len(fn.Instrs)
	a := &analysis{reached: make([]bool, n)}
	if n == 0 {
		return a
	}
	labels := make(map[string]int, 8)
	for i, ins := range fn.Instrs {
		if ins.Op == ir.OpcLabel {
			labels[ins.Sym] = i
		}
	}

	seen := make([][]absState, n)
	flagged := make([]bool, n) // one flow violation per instruction, max
	type workItem struct {
		index int
		st    absState
	}
	work := []workItem{{0, absState{depthOK: true, rawOK: true}}}

	flag := func(i int, rule, detail string) {
		if !flagged[i] {
			flagged[i] = true
			a.violations = append(a.violations, Violation{Rule: rule, Index: i, Detail: detail})
		}
	}

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		i, st := it.index, it.st
		if i >= n {
			continue // running off the end is the terminator rule's job
		}
		// Merge into the point's recorded states; revisit only with a
		// genuinely new state.
		dup := false
		for _, prev := range seen[i] {
			if prev == st {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if len(seen[i]) >= maxStatesPerPoint {
			if st.depthOK || st.fpOK {
				st = absState{}
			} else {
				continue
			}
		}
		seen[i] = append(seen[i], st)
		a.reached[i] = true

		ins := fn.Instrs[i]
		next := st
		switch ins.Op {
		case ir.OpcLabel, ir.OpcNop:
			// no effect
		case ir.OpcPush:
			if next.depthOK {
				next.depth++
			}
			next.raw++
		case ir.OpcPop:
			if next.depthOK {
				if next.depth <= 0 {
					flag(i, RuleUnderflow, fmt.Sprintf("pop at stack depth %d", next.depth))
				}
				next.depth--
			} else {
				flag(i, RuleStackJoin, "pop with unprovable stack depth")
			}
			next.raw--
			if ins.Rd == ir.SP {
				flag(i, RuleStackTrack, "pop into sp")
				next.depthOK = false
				next.rawOK = false
			}
			if ins.Rd == ir.FP {
				// The epilogue's `pop fp` restores the caller's FP; the
				// frame anchor is gone from this point on.
				next.fpOK = false
			}
		case ir.OpcAddI, ir.OpcSubI:
			if ins.Rd == ir.SP {
				if ins.Rs1 != ir.SP {
					flag(i, RuleStackTrack, fmt.Sprintf("sp defined from %s", ins.Rs1))
					next.depthOK = false
					next.rawOK = false
					break
				}
				delta := ins.Imm
				if ins.Op == ir.OpcAddI {
					delta = -delta // the stack grows downward
				}
				if next.depthOK {
					next.depth += int(delta)
					if next.depth < 0 {
						flag(i, RuleUnderflow, fmt.Sprintf("sp adjusted to depth %d", next.depth))
					}
				} else {
					flag(i, RuleStackJoin, "sp adjustment with unprovable stack depth")
				}
				next.raw += int(delta)
			}
			if ins.Rd == ir.FP {
				next.fpOK = false
			}
		case ir.OpcMovR:
			switch {
			case ins.Rd == ir.FP && ins.Rs1 == ir.SP:
				if next.depthOK {
					next.fp, next.fpOK = next.depth, true
				} else {
					next.fpOK = false
				}
			case ins.Rd == ir.SP && ins.Rs1 == ir.FP:
				// The frame teardown: SP jumps back to the anchor,
				// discarding the body's leftovers. raw deliberately does
				// not follow — it records explicit traffic only.
				if next.fpOK {
					next.depth, next.depthOK = next.fp, true
				} else {
					flag(i, RuleStackTrack, "sp restored from an untracked fp")
					next.depthOK = false
				}
			case ins.Rd == ir.SP:
				flag(i, RuleStackTrack, fmt.Sprintf("sp defined from %s", ins.Rs1))
				next.depthOK = false
				next.rawOK = false
			case ins.Rd == ir.FP:
				next.fpOK = false
			}
		case ir.OpcRet:
			if !next.depthOK {
				flag(i, RuleFrameBalance, "return with unprovable stack depth (conflicting join)")
			} else if next.depth != 0 {
				flag(i, RuleFrameBalance, fmt.Sprintf("return at stack depth %d (want 0)", next.depth))
			}
		default:
			if sh := shapes[ins.Op]; sh.rd && ins.Op != ir.OpcStoreX {
				if ins.Rd == ir.SP {
					flag(i, RuleStackTrack, fmt.Sprintf("sp defined by %s", ins.Op))
					next.depthOK = false
					next.rawOK = false
				}
				if ins.Rd == ir.FP {
					next.fpOK = false
				}
			}
		}

		switch {
		case ins.Op == ir.OpcRet || ins.Op == ir.OpcHlt || ins.Op == ir.OpcBrk:
			// exit; no successors
		case ins.Op == ir.OpcJmp:
			work = append(work, workItem{labels[ins.Sym], next})
		case ins.IsJump():
			work = append(work, workItem{labels[ins.Sym], next})
			work = append(work, workItem{i + 1, next})
		default:
			work = append(work, workItem{i + 1, next})
		}
	}

	// Collect reachable exits in linear order, each with its canonically
	// sorted, deduplicated set of arrival states.
	for i, ins := range fn.Instrs {
		if !a.reached[i] {
			continue
		}
		switch ins.Op {
		case ir.OpcBrk, ir.OpcRet, ir.OpcHlt:
			e := exitPoint{index: i, op: ins.Op}
			if ins.Op == ir.OpcBrk {
				e.brkID = ins.Imm
			}
			for _, st := range seen[i] {
				s := exitState{depthOK: st.depthOK, rawOK: st.rawOK}
				if st.depthOK {
					s.depth = st.depth
				}
				if st.rawOK {
					s.raw = st.raw
				}
				dup := false
				for _, prev := range e.states {
					if prev == s {
						dup = true
						break
					}
				}
				if !dup {
					e.states = append(e.states, s)
				}
			}
			sort.Slice(e.states, func(x, y int) bool { return e.states[x].less(e.states[y]) })
			a.exits = append(a.exits, e)
		}
	}
	return a
}

// VerifyPassEffect is the translation-validation-lite check: a correct
// optimization pass preserves its input's abstract stack effect — the
// sequence of reachable exit points (breakpoints, returns, halts, in
// program order, with their identities) and the abstract stack depth at
// each. A pass that drops a pop, unbalances a push, or removes an exit
// changes this summary and is caught here without executing a single
// instruction.
func VerifyPassEffect(before, after *ir.Fn) []Violation {
	return VerifyPassEffectOn(Options{}.Analyze(before), Options{}.Analyze(after))
}

// VerifyPassEffectOn is VerifyPassEffect over already computed analyses,
// so a compilation pipeline re-analyzes nothing: the pass input's
// analysis is the previous stage's output analysis.
func VerifyPassEffectOn(before, after *Analysis) []Violation {
	be := before.flow.exits
	ae := after.flow.exits
	if len(be) != len(ae) {
		return []Violation{{Rule: RuleStackBalance, Index: -1,
			Detail: fmt.Sprintf("pass changed the reachable exit count: %d before, %d after", len(be), len(ae))}}
	}
	var vs []Violation
	for k := range be {
		b, a := be[k], ae[k]
		if b.op != a.op || b.brkID != a.brkID || !sameExitStates(b.states, a.states) {
			vs = append(vs, Violation{Rule: RuleStackBalance, Index: a.index,
				Detail: fmt.Sprintf("exit %d changed stack effect: %s before, %s after", k, b.effect(), a.effect())})
		}
	}
	return vs
}

// sameExitStates compares two canonically sorted arrival-state sets.
func sameExitStates(b, a []exitState) bool {
	if len(b) != len(a) {
		return false
	}
	for i := range b {
		if b[i] != a[i] {
			return false
		}
	}
	return true
}
