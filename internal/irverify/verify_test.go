package irverify

import (
	"strings"
	"testing"

	"cogdiff/internal/ir"
)

// frame emits the byte-code compilation schema's preamble/epilogue
// around body: push fp, anchor it, body, restore, return.
func frame(body func(b *ir.Builder)) *ir.Fn {
	b := ir.NewBuilder()
	b.Push(ir.FP)
	b.MovR(ir.FP, ir.SP)
	body(b)
	b.MovR(ir.SP, ir.FP)
	b.Pop(ir.FP)
	b.Ret()
	fn, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return fn
}

func rules(vs []Violation) string {
	var out []string
	for _, v := range vs {
		out = append(out, v.Rule)
	}
	return strings.Join(out, ",")
}

func wantClean(t *testing.T, fn *ir.Fn) {
	t.Helper()
	if vs := (Options{}).Verify(fn); len(vs) > 0 {
		t.Fatalf("want clean, got %d violations: %v", len(vs), vs)
	}
}

func wantRule(t *testing.T, fn *ir.Fn, opts Options, rule string) {
	t.Helper()
	vs := opts.Verify(fn)
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("want a %s violation, got [%s]", rule, rules(vs))
}

func TestCleanFramedFunction(t *testing.T) {
	wantClean(t, frame(func(b *ir.Builder) {
		b.MovI(ir.ScratchReg, 7)
		b.Push(ir.ScratchReg)
		b.Push(ir.ScratchReg)
		b.Pop(ir.TempReg)
		b.Bin(ir.OpcAdd, ir.TempReg, ir.TempReg, ir.TempReg)
		b.BinI(ir.OpcAddI, ir.SP, ir.SP, 1) // dropTop
	}))
}

func TestCleanBranchyFunction(t *testing.T) {
	b := ir.NewBuilder()
	b.Push(ir.FP)
	b.MovR(ir.FP, ir.SP)
	b.CmpI(ir.ReceiverResultReg, 0)
	b.Jump(ir.OpcJeq, "zero")
	b.Push(ir.ReceiverResultReg)
	b.Pop(ir.TempReg)
	b.Label("zero")
	b.Brk(1)
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wantClean(t, fn)
}

func TestUndefinedLabel(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcJmp, Sym: "nowhere"},
		{Op: ir.OpcLabel, Sym: "here"},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{}, RuleLabel)
}

func TestDuplicateLabel(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcLabel, Sym: "l"},
		{Op: ir.OpcLabel, Sym: "l"},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{}, RuleLabel)
}

func TestVirtualUseBeforeDef(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcMovR, Rd: ir.TempReg, Rs1: ir.V(0)},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{}, RuleDefBeforeUse)
}

func TestVirtualDefThenUseIsClean(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcMovI, Rd: ir.V(0), Imm: 3},
		{Op: ir.OpcMovR, Rd: ir.TempReg, Rs1: ir.V(0)},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantClean(t, fn)
}

func TestDeadFallthrough(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcBrk, Imm: 1},
		{Op: ir.OpcNop},
	}}
	wantRule(t, fn, Options{}, RuleDeadCode)
}

func TestOpcodeShape(t *testing.T) {
	// A push carrying an immediate is malformed even though lowering
	// would ignore the field.
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcPush, Rs1: ir.TempReg, Imm: 9},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{}, RuleOpcodeShape)
}

func TestRegRange(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcPush, Rs1: ir.Reg(12)}, // between NumPhysRegs and vBase
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{}, RuleRegRange)
}

func TestMissingTerminator(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{{Op: ir.OpcNop}}}
	wantRule(t, fn, Options{}, RuleTerminator)
}

func TestStackUnderflow(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcPop, Rd: ir.TempReg},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{}, RuleUnderflow)
}

func TestFrameImbalanceAtRet(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcPush, Rs1: ir.TempReg},
		{Op: ir.OpcRet},
	}}
	wantRule(t, fn, Options{}, RuleFrameBalance)
}

func TestConflictingJoinIntoPopStaysPrecise(t *testing.T) {
	// One predecessor arrives at depth 1, the other at depth 2. The
	// path-sensitive state set keeps both, and the pop is provably safe
	// under each — no false positive at the join.
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcPush, Rs1: ir.TempReg},
		{Op: ir.OpcCmpI, Rs1: ir.TempReg, Imm: 0},
		{Op: ir.OpcJeq, Sym: "join"},
		{Op: ir.OpcPush, Rs1: ir.TempReg},
		{Op: ir.OpcLabel, Sym: "join"},
		{Op: ir.OpcPop, Rd: ir.TempReg},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantClean(t, fn)
}

func TestUnprovableDepthIntoPopIsFlagged(t *testing.T) {
	// Once SP is clobbered from an untracked source, a later pop cannot
	// be proven safe.
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcMovR, Rd: ir.SP, Rs1: ir.TempReg},
		{Op: ir.OpcPop, Rd: ir.TempReg},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{}, RuleStackJoin)
}

func TestConflictingJoinIntoBreakpointIsBenign(t *testing.T) {
	// The same conflicting join is harmless when nothing depth-sensitive
	// follows: a guard chain's deopt stub merges arbitrary depths.
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcPush, Rs1: ir.TempReg},
		{Op: ir.OpcCmpI, Rs1: ir.TempReg, Imm: 0},
		{Op: ir.OpcJeq, Sym: "join"},
		{Op: ir.OpcPush, Rs1: ir.TempReg},
		{Op: ir.OpcLabel, Sym: "join"},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantClean(t, fn)
}

func TestUntrackedSPWrite(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcMovI, Rd: ir.SP, Imm: 100},
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{}, RuleStackTrack)
}

func TestGuardDeoptPresent(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcCmpI, Rs1: ir.ReceiverResultReg, Imm: 0},
		{Op: ir.OpcJne, Sym: "deopt"},
		{Op: ir.OpcBrk, Imm: 1},
		{Op: ir.OpcLabel, Sym: "deopt"},
		{Op: ir.OpcBrk, Imm: 5},
	}}
	opts := Options{RequireDeopt: true, DeoptBrkID: 5}
	if vs := opts.Verify(fn); len(vs) > 0 {
		t.Fatalf("want clean, got %v", vs)
	}
}

func TestGuardDeoptMissing(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantRule(t, fn, Options{RequireDeopt: true, DeoptBrkID: 5}, RuleGuardDeopt)
}

func TestGuardDeoptUnreachable(t *testing.T) {
	// The code discriminates inputs (a guard jump exists) but its fail
	// path no longer leads to the stub: the chain is not exhaustive.
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcCmpI, Rs1: ir.ReceiverResultReg, Imm: 0},
		{Op: ir.OpcJne, Sym: "other"},
		{Op: ir.OpcBrk, Imm: 1},
		{Op: ir.OpcLabel, Sym: "other"},
		{Op: ir.OpcBrk, Imm: 2},
		{Op: ir.OpcLabel, Sym: "deopt"},
		{Op: ir.OpcBrk, Imm: 5},
	}}
	wantRule(t, fn, Options{RequireDeopt: true, DeoptBrkID: 5}, RuleGuardDeopt)
}

func TestGuardDeoptDeadStubOnStraightLinePlan(t *testing.T) {
	// A guard-free single-path plan accepts every input; its planted stub
	// is legitimately dead.
	fn := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcBrk, Imm: 1},
		{Op: ir.OpcLabel, Sym: "deopt"},
		{Op: ir.OpcBrk, Imm: 5},
	}}
	opts := Options{RequireDeopt: true, DeoptBrkID: 5}
	if vs := opts.Verify(fn); len(vs) > 0 {
		t.Fatalf("want clean, got %v", vs)
	}
}

func TestPassEffectPreserved(t *testing.T) {
	before := frame(func(b *ir.Builder) {
		b.Push(ir.TempReg)
		b.Pop(ir.ExtraReg)
	})
	after := ir.DeadPushPop().Run(before)
	if vs := VerifyPassEffect(before, after); len(vs) > 0 {
		t.Fatalf("dead-push/pop should preserve the stack effect, got %v", vs)
	}
}

func TestPassEffectDroppedPop(t *testing.T) {
	before := frame(func(b *ir.Builder) {
		b.Push(ir.TempReg)
		b.MovI(ir.ScratchReg, 1)
		b.Pop(ir.ExtraReg)
	})
	// Simulate a defective pass deleting the pop: every exit behind it
	// shifts one word deeper.
	after := before.Clone()
	var kept []ir.Instr
	for _, ins := range after.Instrs {
		if ins.Op == ir.OpcPop && ins.Rd == ir.ExtraReg {
			continue
		}
		kept = append(kept, ins)
	}
	after.Instrs = kept
	vs := VerifyPassEffect(before, after)
	if len(vs) == 0 {
		t.Fatal("want a stack-balance violation for the dropped pop")
	}
	if vs[0].Rule != RuleStackBalance {
		t.Fatalf("want %s first, got %s", RuleStackBalance, vs[0].Rule)
	}
}

func TestPassEffectDroppedExit(t *testing.T) {
	before := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcCmpI, Rs1: ir.TempReg, Imm: 0},
		{Op: ir.OpcJeq, Sym: "l"},
		{Op: ir.OpcBrk, Imm: 1},
		{Op: ir.OpcLabel, Sym: "l"},
		{Op: ir.OpcBrk, Imm: 2},
	}}
	after := &ir.Fn{Instrs: []ir.Instr{
		{Op: ir.OpcBrk, Imm: 1},
	}}
	wantPassRule(t, before, after, RuleStackBalance)
}

func wantPassRule(t *testing.T, before, after *ir.Fn, rule string) {
	t.Helper()
	vs := VerifyPassEffect(before, after)
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("want a %s violation, got [%s]", rule, rules(vs))
}

func TestErrorBlame(t *testing.T) {
	e := &Error{Stage: "pass:peephole", Violations: []Violation{
		{Rule: RuleStackBalance, Index: 3, Detail: "exit 0 changed"},
	}}
	if got, want := e.Blame(), "ir-verify:stack-balance after pass:peephole"; got != want {
		t.Fatalf("Blame() = %q, want %q", got, want)
	}
	if !strings.Contains(e.Error(), "stack-balance") || !strings.Contains(e.Error(), "pass:peephole") {
		t.Fatalf("Error() = %q lacks rule or stage", e.Error())
	}
}

func TestRealPipelinesStayClean(t *testing.T) {
	// The real passes over a representative framed function must neither
	// trip the verifier nor change the abstract stack effect.
	fn := frame(func(b *ir.Builder) {
		b.MovI(ir.ScratchReg, 40)
		b.Push(ir.ScratchReg)
		b.MovI(ir.ScratchReg, 2)
		b.Push(ir.ScratchReg)
		b.Pop(ir.TempReg)
		b.Pop(ir.ExtraReg)
		b.Bin(ir.OpcAdd, ir.ReceiverResultReg, ir.ExtraReg, ir.TempReg)
	})
	wantClean(t, fn)
	for _, p := range []ir.Pass{ir.DeadPushPop(), ir.ConstFold(false), ir.Peephole(false)} {
		next := p.Run(fn)
		if vs := VerifyPassEffect(fn, next); len(vs) > 0 {
			t.Fatalf("pass %s changed the stack effect: %v", p.Name, vs)
		}
		wantClean(t, next)
		fn = next
	}
}
