package machine

import (
	"reflect"
	"testing"
)

// The pre-decoded dispatch stream must be an invisible optimization:
// Run over the stream and single-stepping via Step execute the same
// semantics, the stream is built once and shared, and the steady-state
// hot loop does not allocate.

// dispatchProg exercises arithmetic, immediates, stack traffic,
// comparisons, both jump polarities, call/ret, and halt — enough spread
// that a handler-table hole or a PC bookkeeping slip shows up as a
// register or step-count divergence.
func dispatchProg(t *testing.T) *Program {
	t.Helper()
	return assemble(t, func(a *Assembler) {
		a.MovI(R0, 0)  // acc
		a.MovI(R1, 1)  // i
		a.MovI(R2, 10) // limit
		a.Label("loop")
		a.Bin(OpcAdd, R0, R0, R1)
		a.BinI(OpcAddI, R1, R1, 1)
		a.Cmp(R1, R2)
		a.Jump(OpcJlt, "loop")
		a.Push(R0)
		a.Pop(R3)
		a.BinI(OpcShlI, R3, R3, 1)
		a.Call(a.Here() + 2)
		a.Jump(OpcJmp, "done")
		a.Ret()
		a.Label("done")
		a.Emit(Instr{Op: OpcHlt})
	})
}

func TestRunMatchesSingleStepping(t *testing.T) {
	p := dispatchProg(t)

	ran := newCPU(t)
	ran.Install(p)
	ranStop := ran.Run(10000)

	stepped := newCPU(t)
	stepped.Install(p)
	var stepStop *Stop
	for i := 0; i < 10000; i++ {
		if stepStop = stepped.Step(); stepStop != nil {
			break
		}
	}

	if ranStop == nil || stepStop == nil {
		t.Fatalf("no stop: run=%v step=%v", ranStop, stepStop)
	}
	if ranStop.Kind != stepStop.Kind {
		t.Fatalf("stop kind: run=%v step=%v", ranStop.Kind, stepStop.Kind)
	}
	if ran.Steps != stepped.Steps {
		t.Fatalf("step counts diverge: run=%d step=%d", ran.Steps, stepped.Steps)
	}
	if !reflect.DeepEqual(ran.Regs, stepped.Regs) {
		t.Fatalf("registers diverge:\nrun:  %v\nstep: %v", ran.Regs, stepped.Regs)
	}
	if ran.PC != stepped.PC {
		t.Fatalf("PC diverges: run=%d step=%d", ran.PC, stepped.PC)
	}
}

func TestDispatchStreamBuiltOnce(t *testing.T) {
	p := dispatchProg(t)
	s1 := p.stream()
	s2 := p.stream()
	if len(s1) != p.Len() {
		t.Fatalf("stream has %d entries for %d instructions", len(s1), p.Len())
	}
	if &s1[0] != &s2[0] {
		t.Fatal("stream rebuilt on second use; must be memoized")
	}
}

func TestStepTableCoversEveryOpcode(t *testing.T) {
	for op := Opc(0); op < NumOpcs; op++ {
		if stepFor(op) == nil {
			t.Errorf("opcode %s resolves to a nil handler", op)
		}
	}
	if stepFor(NumOpcs) == nil || stepFor(NumOpcs+100) == nil {
		t.Error("out-of-range opcodes must resolve to the illegal handler, not nil")
	}
}

func TestIllegalOpcodeStops(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.Emit(Instr{Op: NumOpcs + 3})
	})
	c.Install(p)
	stop := c.Run(10)
	if stop.Kind != StopFault {
		t.Fatalf("illegal opcode: stop %v", stop)
	}
}

// TestRunSteadyStateAllocFree is an allocation-regression gate on the
// simulator hot loop: once a program's dispatch stream exists, re-running
// it allocates nothing beyond the final Stop.
func TestRunSteadyStateAllocFree(t *testing.T) {
	c := newCPU(t)
	p := dispatchProg(t)
	c.Install(p)
	if stop := c.Run(10000); stop.Kind != StopHalt {
		t.Fatalf("warmup run: %v", stop)
	}
	if avg := testing.AllocsPerRun(100, func() {
		c.Reset()
		c.Install(p)
		if stop := c.Run(10000); stop.Kind != StopHalt {
			panic("run did not halt")
		}
	}); avg > 1 {
		t.Fatalf("steady-state run allocates %.1f/run, want <= 1 (the Stop)", avg)
	}
}

// TestFinishDoesNotCopy pins the Finish hand-off: the returned program
// owns the assembler's slice (no clone), label fixups are patched in
// place, and the assembler cannot leak instructions into the program
// afterwards.
func TestFinishDoesNotCopy(t *testing.T) {
	a := NewAssembler(CodeBase)
	a.MovI(R0, 1)
	a.Jump(OpcJmp, "end")
	a.MovI(R0, 2)
	a.Label("end")
	a.Emit(Instr{Op: OpcHlt})
	before := &a.instrs[0]
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if &p.Instrs[0] != before {
		t.Fatal("Finish copied the instruction slice")
	}
	if p.Instrs[1].Imm != CodeBase+3 {
		t.Fatalf("fixup not patched: Imm=%d", p.Instrs[1].Imm)
	}
	if a.instrs != nil {
		t.Fatal("assembler retains the handed-off slice")
	}
}

// TestFinishAllocs pins the allocation cost of assembling a small body:
// the instruction buffer growth plus the fixed assembler/program
// overhead, with no whole-slice clone at Finish.
func TestFinishAllocs(t *testing.T) {
	avg := testing.AllocsPerRun(100, func() {
		a := NewAssembler(CodeBase)
		a.MovI(R0, 1)
		a.MovI(R1, 2)
		a.Bin(OpcAdd, R2, R0, R1)
		a.Emit(Instr{Op: OpcHlt})
		if _, err := a.Finish(); err != nil {
			panic(err)
		}
	})
	// assembler + 2 maps + buffer growth (1->2->4) + program: anything
	// above this means Finish started cloning again.
	if avg > 8 {
		t.Fatalf("assemble+finish allocates %.1f/run, want <= 8", avg)
	}
}
