// Package machine implements the simulated target machine the JIT
// compilers emit code for: a 32-bit-style register machine with
// word-addressed memory, flags, call/return, trampolines, breakpoints and
// memory traps. It replaces the Unicorn-based simulation of the paper's
// testing infrastructure (Fig. 4) and provides the observation points the
// differential tester needs: sentinel returns, trampoline calls,
// breakpoint hits and faults.
package machine

import "fmt"

// Reg names a machine register. R0..R7 are general purpose; SP and FP are
// the stack and frame pointers.
type Reg uint8

const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	SP
	FP
	NumRegs
)

func (r Reg) String() string {
	if r < 8 {
		return fmt.Sprintf("r%d", int(r))
	}
	switch r {
	case SP:
		return "sp"
	case FP:
		return "fp"
	}
	return fmt.Sprintf("reg%d", int(r))
}

// Register-usage convention of the JIT compilers (mirroring Cogit's
// ReceiverResultReg / Arg0Reg / ... naming).
const (
	ReceiverResultReg = R0
	Arg0Reg           = R1
	Arg1Reg           = R2
	Arg2Reg           = R3
	TempReg           = R4
	ExtraReg          = R5
	ScratchReg        = R6
	ClassSelectorReg  = R7
)

// Opc is a machine opcode.
type Opc uint8

const (
	OpcNop    Opc = iota
	OpcMovR       // rd <- rs1
	OpcMovI       // rd <- imm
	OpcLoad       // rd <- [rs1 + imm]
	OpcStore      // [rs1 + imm] <- rs2
	OpcLoadX      // rd <- [rs1 + rs2]
	OpcStoreX     // [rs1 + rs2] <- rd
	OpcPush       // [--sp] <- rs1
	OpcPop        // rd <- [sp++]
	OpcAdd        // rd <- rs1 + rs2
	OpcSub
	OpcMul
	OpcDiv // truncated; divisor 0 faults
	OpcMod
	OpcAnd
	OpcOr
	OpcXor
	OpcShl
	OpcShr  // logical right shift
	OpcSar  // arithmetic right shift
	OpcAddI // rd <- rs1 + imm
	OpcSubI
	OpcAndI
	OpcOrI
	OpcShlI
	OpcSarI
	OpcCmp  // flags <- rs1 - rs2
	OpcCmpI // flags <- rs1 - imm
	OpcJmp  // pc <- imm
	OpcJeq
	OpcJne
	OpcJlt
	OpcJle
	OpcJgt
	OpcJge
	OpcCall  // push return; pc <- imm
	OpcCallR // push return; pc <- rs1
	OpcRet
	OpcBrk // breakpoint imm
	OpcHlt

	// Float operations interpret register contents as IEEE-754 bit
	// patterns (the simulated FPU).
	OpcFAdd
	OpcFSub
	OpcFMul
	OpcFDiv
	OpcFCmp    // flags from float comparison
	OpcI2F     // rd <- float bits of integer rs1
	OpcF2I     // rd <- truncated integer of float bits rs1
	OpcFSqrt   // rd <- sqrt of float bits rs1 (NaN for negative inputs)
	OpcF64To32 // rd <- rs1 rounded through IEEE single precision
	OpcF32To64 // rd <- float64 bits of the float32 bit pattern in rs1
	// Libm trampolines of the runtime, modelled as macro-instructions.
	OpcFSin
	OpcFAtan
	OpcFLog
	OpcFExp

	// OpcAllocFloat is the inlined allocation sequence of the JIT,
	// modelled as one macro-instruction: allocate a boxed float whose raw
	// bits are rs1 and leave its reference in rd. Fails (fault) when the
	// heap is exhausted.
	OpcAllocFloat
	// OpcAlloc allocates an object of class index rs1 (raw) with rs2 body
	// slots (raw), leaving the reference in rd — the allocation trampoline.
	OpcAlloc

	NumOpcs
)

var opcNames = map[Opc]string{
	OpcNop: "nop", OpcMovR: "mov", OpcMovI: "movi", OpcLoad: "load",
	OpcStore: "store", OpcLoadX: "loadx", OpcStoreX: "storex",
	OpcPush: "push", OpcPop: "pop",
	OpcAdd: "add", OpcSub: "sub", OpcMul: "mul", OpcDiv: "div", OpcMod: "mod",
	OpcAnd: "and", OpcOr: "or", OpcXor: "xor", OpcShl: "shl", OpcShr: "shr", OpcSar: "sar",
	OpcAddI: "addi", OpcSubI: "subi", OpcAndI: "andi", OpcOrI: "ori",
	OpcShlI: "shli", OpcSarI: "sari",
	OpcCmp: "cmp", OpcCmpI: "cmpi",
	OpcJmp: "jmp", OpcJeq: "jeq", OpcJne: "jne", OpcJlt: "jlt",
	OpcJle: "jle", OpcJgt: "jgt", OpcJge: "jge",
	OpcCall: "call", OpcCallR: "callr", OpcRet: "ret", OpcBrk: "brk", OpcHlt: "hlt",
	OpcFAdd: "fadd", OpcFSub: "fsub", OpcFMul: "fmul", OpcFDiv: "fdiv",
	OpcFCmp: "fcmp", OpcI2F: "i2f", OpcF2I: "f2i",
	OpcFSqrt: "fsqrt", OpcF64To32: "f64to32", OpcF32To64: "f32to64",
	OpcFSin: "fsin", OpcFAtan: "fatan", OpcFLog: "flog", OpcFExp: "fexp",
	OpcAllocFloat: "allocfloat", OpcAlloc: "alloc",
}

func (o Opc) String() string {
	if n, ok := opcNames[o]; ok {
		return n
	}
	return fmt.Sprintf("opc%d", int(o))
}

// Instr is one decoded machine instruction.
type Instr struct {
	Op       Opc
	Rd       Reg
	Rs1, Rs2 Reg
	Imm      int64
}

func (i Instr) String() string {
	switch i.Op {
	case OpcNop, OpcRet, OpcHlt:
		return i.Op.String()
	case OpcMovI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case OpcMovR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	case OpcLoad:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpcStore:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, i.Rs1, i.Imm, i.Rs2)
	case OpcPush:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case OpcPop:
		return fmt.Sprintf("%s %s", i.Op, i.Rd)
	case OpcAddI, OpcSubI, OpcAndI, OpcOrI, OpcShlI, OpcSarI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpcCmp, OpcFCmp:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rs1, i.Rs2)
	case OpcCmpI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
	case OpcJmp, OpcJeq, OpcJne, OpcJlt, OpcJle, OpcJgt, OpcJge, OpcCall:
		return fmt.Sprintf("%s %#x", i.Op, uint64(i.Imm))
	case OpcCallR:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case OpcBrk:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case OpcI2F, OpcF2I:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	case OpcAllocFloat:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// IsJump reports whether the instruction is a (conditional) jump.
func (i Instr) IsJump() bool {
	switch i.Op {
	case OpcJmp, OpcJeq, OpcJne, OpcJlt, OpcJle, OpcJgt, OpcJge:
		return true
	}
	return false
}

// Memory layout of the simulated machine. The heap (internal/heap) sits at
// its own base; code and stack are mapped by the machine.
const (
	// SentinelReturn is the return address the harness seeds; a RET to it
	// means the compiled method returned to its caller.
	SentinelReturn = 0x4
	// SendTrampoline is the runtime routine compiled sends call; the
	// selector identifier travels in ClassSelectorReg.
	SendTrampoline = 0x10
	// CodeBase is where compiled methods are installed.
	CodeBase = 0x1000
	// CodeSize is the capacity of the code zone in instructions.
	CodeSize = 1 << 14
	// StackBase and StackSize delimit the machine stack (grows down from
	// StackLimit).
	StackBase  = 0xE000
	StackSize  = 1 << 12
	StackLimit = StackBase + StackSize
)
