package machine

import (
	"math"
	"math/rand"
	"testing"

	"cogdiff/internal/heap"
)

func newCPU(t *testing.T) *CPU {
	t.Helper()
	om := heap.NewBootedObjectMemory()
	c, err := New(om)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func assemble(t *testing.T, build func(a *Assembler)) *Program {
	t.Helper()
	a := NewAssembler(CodeBase)
	build(a)
	p, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runProg(t *testing.T, c *CPU, p *Program) *Stop {
	t.Helper()
	c.Install(p)
	return c.Run(10000)
}

func TestArithmeticAndHalt(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, 20)
		a.MovI(R1, 22)
		a.Bin(OpcAdd, R2, R0, R1)
		a.Emit(Instr{Op: OpcHlt})
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopHalt {
		t.Fatalf("stop %v", stop)
	}
	if c.Regs[R2] != 42 {
		t.Fatalf("r2 = %d", c.Regs[R2])
	}
}

func TestPushPopAndStack(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, 7)
		a.Push(R0)
		a.MovI(R0, 9)
		a.Push(R0)
		a.Pop(R1)
		a.Emit(Instr{Op: OpcHlt})
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopHalt || c.Regs[R1] != 9 {
		t.Fatalf("stop %v r1=%d", stop, c.Regs[R1])
	}
	slice, err := c.StackSlice(StackLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(slice) != 1 || slice[0] != 7 {
		t.Fatalf("stack %v", slice)
	}
}

func TestConditionalJumps(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, 5)
		a.CmpI(R0, 10)
		a.Jump(OpcJlt, "less")
		a.MovI(R1, 0)
		a.Emit(Instr{Op: OpcHlt})
		a.Label("less")
		a.MovI(R1, 1)
		a.Emit(Instr{Op: OpcHlt})
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopHalt || c.Regs[R1] != 1 {
		t.Fatalf("jlt not taken: %v r1=%d", stop, c.Regs[R1])
	}
}

func TestSentinelReturn(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.Ret()
	})
	c.Install(p)
	// Seed the sentinel return address like the harness does.
	if err := c.push(SentinelReturn); err != nil {
		t.Fatal(err)
	}
	stop := c.Run(100)
	if stop.Kind != StopReturned {
		t.Fatalf("stop %v", stop)
	}
}

func TestCallAndReturn(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.Call(CodeBase + 3) // call the "callee" below
		a.MovI(R1, 99)
		a.Emit(Instr{Op: OpcHlt})
		// callee:
		a.MovI(R0, 42)
		a.Ret()
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopHalt || c.Regs[R0] != 42 || c.Regs[R1] != 99 {
		t.Fatalf("call/ret: %v r0=%d r1=%d", stop, c.Regs[R0], c.Regs[R1])
	}
}

func TestTrampolineStops(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.MovI(ClassSelectorReg, 3)
		a.Call(SendTrampoline)
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopTrampoline || stop.TrampolineAddr != SendTrampoline {
		t.Fatalf("stop %v", stop)
	}
	if c.Regs[ClassSelectorReg] != 3 {
		t.Fatal("selector register lost")
	}
}

func TestBreakpoint(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.Brk(17)
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopBreakpoint || stop.BreakID != 17 {
		t.Fatalf("stop %v", stop)
	}
}

func TestMemoryFault(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, 0x999999)
		a.Load(R1, R0, 0)
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopFault {
		t.Fatalf("stop %v", stop)
	}
}

func TestSimulationErrorDefect(t *testing.T) {
	c := newCPU(t)
	c.SimDefects.MissingSetters = map[Reg]bool{R1: true}
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, 0x999999)
		a.Load(R1, R0, 0)
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopSimulationError {
		t.Fatalf("stop %v", stop)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, 10)
		a.MovI(R1, 0)
		a.Bin(OpcDiv, R2, R0, R1)
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopFault {
		t.Fatalf("stop %v", stop)
	}
}

func TestStepLimit(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.Label("loop")
		a.Jump(OpcJmp, "loop")
	})
	c.Install(p)
	stop := c.Run(50)
	if stop.Kind != StopStepLimit {
		t.Fatalf("stop %v", stop)
	}
}

func TestFloatOps(t *testing.T) {
	c := newCPU(t)
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, int64(math.Float64bits(1.5)))
		a.MovI(R1, int64(math.Float64bits(2.25)))
		a.Bin(OpcFAdd, R2, R0, R1)
		a.FCmp(R0, R1)
		a.Jump(OpcJlt, "less")
		a.MovI(R3, 0)
		a.Emit(Instr{Op: OpcHlt})
		a.Label("less")
		a.MovI(R3, 1)
		a.Emit(Instr{Op: OpcHlt})
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopHalt {
		t.Fatalf("stop %v", stop)
	}
	if got := math.Float64frombits(uint64(c.Regs[R2])); got != 3.75 {
		t.Fatalf("fadd = %g", got)
	}
	if c.Regs[R3] != 1 {
		t.Fatal("fcmp branch wrong")
	}
}

func TestAllocFloat(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	c, err := New(om)
	if err != nil {
		t.Fatal(err)
	}
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, int64(math.Float64bits(6.5)))
		a.Emit(Instr{Op: OpcAllocFloat, Rd: R1, Rs1: R0})
		a.Emit(Instr{Op: OpcHlt})
	})
	stop := runProg(t, c, p)
	if stop.Kind != StopHalt {
		t.Fatalf("stop %v", stop)
	}
	if !om.IsFloatObject(c.Regs[R1]) {
		t.Fatal("no float allocated")
	}
	if f, _ := om.FloatValueOf(c.Regs[R1]); f != 6.5 {
		t.Fatalf("boxed %g", f)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	a := NewAssembler(CodeBase)
	a.Jump(OpcJmp, "nowhere")
	if _, err := a.Finish(); err == nil {
		t.Fatal("undefined label must fail")
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	a := NewAssembler(CodeBase)
	a.Label("x").Label("x")
	if _, err := a.Finish(); err == nil {
		t.Fatal("duplicate label must fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, isa := range []ISA{ISAAmd64Like, ISAArm32Like} {
		var instrs []Instr
		for i := 0; i < 200; i++ {
			op := Opc(rng.Intn(int(NumOpcs)))
			ins := Instr{
				Op:  op,
				Rd:  Reg(rng.Intn(int(NumRegs))),
				Rs1: Reg(rng.Intn(int(NumRegs))),
				Rs2: Reg(rng.Intn(int(NumRegs))),
			}
			if needsImm(op) {
				ins.Imm = int64(int32(rng.Uint32()))
			}
			instrs = append(instrs, ins)
		}
		p := &Program{Base: CodeBase, Instrs: instrs}
		code, err := Encode(p, isa)
		if err != nil {
			t.Fatalf("%v: %v", isa, err)
		}
		back, err := Decode(code, CodeBase, isa)
		if err != nil {
			t.Fatalf("%v: %v", isa, err)
		}
		if len(back.Instrs) != len(instrs) {
			t.Fatalf("%v: %d decoded of %d", isa, len(back.Instrs), len(instrs))
		}
		for i := range instrs {
			if back.Instrs[i] != instrs[i] {
				t.Fatalf("%v: instr %d: %v != %v", isa, i, back.Instrs[i], instrs[i])
			}
		}
	}
}

func TestEncodingSizesDiffer(t *testing.T) {
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, 5)
		a.MovR(R1, R0)
		a.Ret()
	})
	amd, err := Encode(p, ISAAmd64Like)
	if err != nil {
		t.Fatal(err)
	}
	arm, err := Encode(p, ISAArm32Like)
	if err != nil {
		t.Fatal(err)
	}
	if len(amd) >= len(arm) {
		t.Fatalf("variable encoding (%d bytes) should beat fixed (%d bytes) on small immediates", len(amd), len(arm))
	}
}

func TestArm32RejectsHugeImmediates(t *testing.T) {
	p := &Program{Base: CodeBase, Instrs: []Instr{{Op: OpcMovI, Rd: R0, Imm: 1 << 40}}}
	if _, err := Encode(p, ISAArm32Like); err == nil {
		t.Fatal("40-bit immediate must be unencodable on the fixed-width ISA")
	}
	if _, err := Encode(p, ISAAmd64Like); err != nil {
		t.Fatalf("variable-width ISA must accept it: %v", err)
	}
}

func TestDisassemble(t *testing.T) {
	p := assemble(t, func(a *Assembler) {
		a.MovI(R0, 5)
		a.Load(R1, R0, 2)
		a.Store(R0, 1, R1)
		a.Brk(3)
	})
	out := p.Disassemble()
	for _, want := range []string{"movi r0, 5", "load r1, [r0+2]", "store [r0+1], r1", "brk 3"} {
		if !contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
