package machine

import (
	"fmt"

	"cogdiff/internal/ir"
)

// armImmLimit is the magnitude from which compare immediates no longer
// fit the fixed-width ISA's compare encoding and must be materialized
// through the scratch register.
const armImmLimit = 1 << 12

// lowerReg maps an IR register to a physical one: physical registers
// pass through, virtual registers index the variant's register pool.
func lowerReg(r ir.Reg, pool []Reg) (Reg, error) {
	if !r.IsVirtual() {
		return Reg(r), nil
	}
	n := r.VirtualIndex()
	if n >= len(pool) {
		return 0, fmt.Errorf("machine: virtual register v%d exceeds the %d-register pool", n, len(pool))
	}
	return pool[n], nil
}

// Lower assembles a post-pipeline IR function into a machine program for
// one ISA. It resolves labels, maps virtual registers onto pool, drops
// register moves that land on their own physical register (a virtual
// source can be pool-assigned to its destination), and on the
// fixed-width ISA materializes out-of-range compare immediates through
// the scratch register — the one lowering decision that makes the two
// back-ends emit differently shaped code for the same IR.
func Lower(f *ir.Fn, isa ISA, base int64, pool []Reg) (*Program, error) {
	asm := NewAssembler(base)
	for _, ins := range f.Instrs {
		if ins.Op == ir.OpcLabel {
			asm.Label(ins.Sym)
			continue
		}
		if ins.Op >= ir.NumMachineOpcs {
			return nil, fmt.Errorf("machine: cannot lower IR pseudo-op %s", ins.Op)
		}
		rd, err := lowerReg(ins.Rd, pool)
		if err != nil {
			return nil, err
		}
		rs1, err := lowerReg(ins.Rs1, pool)
		if err != nil {
			return nil, err
		}
		rs2, err := lowerReg(ins.Rs2, pool)
		if err != nil {
			return nil, err
		}
		m := Instr{Op: Opc(ins.Op), Rd: rd, Rs1: rs1, Rs2: rs2, Imm: ins.Imm}
		switch {
		case ins.IsJump():
			asm.EmitToLabel(m, ins.Sym)
		case m.Op == OpcMovR && m.Rd == m.Rs1:
			// The move's operands collapsed onto one physical register.
		case m.Op == OpcCmpI && isa == ISAArm32Like && (m.Imm >= armImmLimit || m.Imm <= -armImmLimit):
			asm.MovI(ScratchReg, m.Imm)
			asm.Cmp(m.Rs1, ScratchReg)
		default:
			asm.Emit(m)
		}
	}
	return asm.Finish()
}
