package machine

// SemanticsVersion stamps the simulated machines' observable behaviour:
// ISA lowering, encoding and CPU simulation. Any change that could alter
// a compiled observation must bump this, orphaning all cached test-unit
// verdicts (internal/excache unit keys embed it; exploration entries are
// unaffected).
const SemanticsVersion = "machine/1"
