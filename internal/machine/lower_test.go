package machine

import (
	"strings"
	"testing"

	"cogdiff/internal/ir"
)

// TestIROpcodeMirror pins the sed-friendly contract between the IR and
// the machine layer: every machine opcode has an IR twin with the same
// value and the same mnemonic, and the only IR-side extension is the
// label pseudo-op.
func TestIROpcodeMirror(t *testing.T) {
	if int(ir.NumMachineOpcs) != int(NumOpcs) {
		t.Fatalf("ir.NumMachineOpcs = %d, machine.NumOpcs = %d", ir.NumMachineOpcs, NumOpcs)
	}
	for op := Opc(0); op < NumOpcs; op++ {
		if got, want := ir.Opc(op).String(), op.String(); got != want {
			t.Errorf("opcode %d: ir %q, machine %q", op, got, want)
		}
	}
	if ir.OpcLabel.String() != "label" {
		t.Errorf("ir.OpcLabel.String() = %q", ir.OpcLabel.String())
	}
}

// TestIRRegisterMirror pins the register numbering contract Lower's
// physical pass-through cast depends on.
func TestIRRegisterMirror(t *testing.T) {
	pairs := []struct {
		i ir.Reg
		m Reg
	}{
		{ir.ReceiverResultReg, ReceiverResultReg},
		{ir.Arg0Reg, Arg0Reg},
		{ir.Arg1Reg, Arg1Reg},
		{ir.Arg2Reg, Arg2Reg},
		{ir.TempReg, TempReg},
		{ir.ExtraReg, ExtraReg},
		{ir.ScratchReg, ScratchReg},
		{ir.ClassSelectorReg, ClassSelectorReg},
		{ir.SP, SP},
		{ir.FP, FP},
	}
	for _, p := range pairs {
		if Reg(p.i) != p.m {
			t.Errorf("ir register %s = %d, machine %s = %d", p.i, p.i, p.m, p.m)
		}
	}
}

func TestLowerMapsVirtualRegisters(t *testing.T) {
	b := ir.NewBuilder()
	b.MovI(ir.V(0), 7)
	b.MovR(ir.V(1), ir.V(0))
	b.Ret()
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(fn, ISAAmd64Like, CodeBase, []Reg{TempReg, ExtraReg})
	if err != nil {
		t.Fatal(err)
	}
	if ins := prog.Instrs[0]; ins.Op != OpcMovI || ins.Rd != TempReg {
		t.Fatalf("v0 -> %s, want %s: %s", ins.Rd, TempReg, ins)
	}
	if ins := prog.Instrs[1]; ins.Op != OpcMovR || ins.Rd != ExtraReg || ins.Rs1 != TempReg {
		t.Fatalf("v1 <- v0 lowered to %s", ins)
	}

	// A virtual register beyond the pool is a lowering error.
	b = ir.NewBuilder()
	b.MovI(ir.V(5), 1)
	b.Ret()
	fn, _ = b.Finish()
	if _, err := Lower(fn, ISAAmd64Like, CodeBase, []Reg{TempReg}); err == nil {
		t.Fatal("v5 with a 1-register pool must fail to lower")
	}
}

func TestLowerDropsCollapsedSelfMoves(t *testing.T) {
	// movr v0, r4 with v0 pool-mapped onto r4 is a physical self-move.
	b := ir.NewBuilder()
	b.MovR(ir.V(0), ir.TempReg)
	b.Ret()
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(fn, ISAAmd64Like, CodeBase, []Reg{TempReg})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 1 || prog.Instrs[0].Op != OpcRet {
		t.Fatalf("collapsed self-move survived lowering:\n%s", prog.Disassemble())
	}
}

func TestLowerResolvesLabels(t *testing.T) {
	b := ir.NewBuilder()
	b.Jump(ir.OpcJmp, "end")
	b.MovI(ir.ReceiverResultReg, 1)
	b.Label("end")
	b.Ret()
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(fn, ISAAmd64Like, CodeBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Label at IR index 2 is machine address CodeBase+2 (the label itself
	// emits nothing).
	if ins := prog.Instrs[0]; ins.Op != OpcJmp || ins.Imm != CodeBase+2 {
		t.Fatalf("jump lowered to %s, want jmp %#x", ins, uint64(CodeBase+2))
	}
}

// TestLowerMaterializesLargeCompareImmediates pins the one deliberate
// back-end asymmetry: the fixed-width ISA cannot encode wide compare
// immediates and goes through the scratch register, while the CISC-like
// ISA compares directly. Same IR in, differently shaped code out.
func TestLowerMaterializesLargeCompareImmediates(t *testing.T) {
	b := ir.NewBuilder()
	b.CmpI(ir.ReceiverResultReg, 1<<20)
	b.Ret()
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	amd, err := Lower(fn, ISAAmd64Like, CodeBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	if amd.Len() != 2 || amd.Instrs[0].Op != OpcCmpI {
		t.Fatalf("amd64-like must compare directly:\n%s", amd.Disassemble())
	}

	arm, err := Lower(fn, ISAArm32Like, CodeBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	if arm.Len() != 3 || arm.Instrs[0].Op != OpcMovI || arm.Instrs[0].Rd != ScratchReg || arm.Instrs[1].Op != OpcCmp {
		t.Fatalf("arm32-like must materialize through the scratch register:\n%s", arm.Disassemble())
	}

	// Small immediates compare directly on both.
	b = ir.NewBuilder()
	b.CmpI(ir.ReceiverResultReg, 100)
	b.Ret()
	fn, _ = b.Finish()
	arm, err = Lower(fn, ISAArm32Like, CodeBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	if arm.Len() != 2 || arm.Instrs[0].Op != OpcCmpI {
		t.Fatalf("small immediate must not be materialized:\n%s", arm.Disassemble())
	}
}

func TestLowerRejectsPseudoOps(t *testing.T) {
	fn := &ir.Fn{Instrs: []ir.Instr{{Op: ir.OpcLabel + 1}}}
	if _, err := Lower(fn, ISAAmd64Like, CodeBase, nil); err == nil ||
		!strings.Contains(err.Error(), "pseudo-op") {
		t.Fatalf("unknown pseudo-op must fail lowering, got %v", err)
	}
}
