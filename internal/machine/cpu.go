package machine

import (
	"errors"
	"fmt"
	"math"

	"cogdiff/internal/heap"
)

// StopKind classifies why execution stopped.
type StopKind int

const (
	// StopReturned: RET popped the sentinel return address — the compiled
	// method returned to its caller.
	StopReturned StopKind = iota
	// StopTrampoline: the code called into a runtime trampoline (message
	// sends); the selector identifier is in ClassSelectorReg.
	StopTrampoline
	// StopBreakpoint: a BRK instruction was hit (exit markers,
	// fall-through detection of native methods, §4.2).
	StopBreakpoint
	// StopFault: invalid memory access, division by zero or heap
	// exhaustion — the simulated segmentation fault.
	StopFault
	// StopSimulationError: the simulation environment itself failed while
	// recovering from a fault (§5.3 "simulation error": a register
	// accessor of the recovery layer is missing).
	StopSimulationError
	// StopStepLimit: runaway execution.
	StopStepLimit
	// StopHalt: HLT executed.
	StopHalt
)

func (k StopKind) String() string {
	switch k {
	case StopReturned:
		return "returned"
	case StopTrampoline:
		return "trampoline"
	case StopBreakpoint:
		return "breakpoint"
	case StopFault:
		return "fault"
	case StopSimulationError:
		return "simulationError"
	case StopStepLimit:
		return "stepLimit"
	case StopHalt:
		return "halt"
	}
	return fmt.Sprintf("StopKind(%d)", int(k))
}

// Stop describes a finished execution.
type Stop struct {
	Kind           StopKind
	BreakID        int64
	TrampolineAddr int64
	Fault          error
	Steps          int
}

func (s Stop) String() string {
	switch s.Kind {
	case StopBreakpoint:
		return fmt.Sprintf("breakpoint(%d)", s.BreakID)
	case StopTrampoline:
		return fmt.Sprintf("trampoline(%#x)", uint64(s.TrampolineAddr))
	case StopFault:
		return fmt.Sprintf("fault(%v)", s.Fault)
	default:
		return s.Kind.String()
	}
}

// SimulationDefects seeds the simulation-environment errors of §5.3: the
// fault-recovery layer reflectively calls register setters/getters; a
// missing accessor turns a recoverable fault into a simulation error.
type SimulationDefects struct {
	MissingSetters map[Reg]bool
}

// CPU is the simulated processor. It executes decoded instructions from a
// Program against the shared flat memory (stack + heap regions).
type CPU struct {
	Mem  *heap.Memory
	OM   *heap.ObjectMemory
	Prog *Program

	Regs  [NumRegs]heap.Word
	PC    int64
	cmp   int // last comparison: -1, 0, +1
	Steps int

	SimDefects SimulationDefects

	// BlockHook, when non-nil, observes every taken control-flow transfer:
	// it receives the program-relative offset of each basic-block entry the
	// run reaches through a non-sequential PC change. The fuzzer's
	// machine-block coverage signal hangs off this hook; execution cost is
	// one comparison per step when unset.
	BlockHook func(offset int64)
}

// New prepares a CPU over the given object memory, mapping the machine
// stack region if it is not mapped yet.
func New(om *heap.ObjectMemory) (*CPU, error) {
	mem := om.Mem
	if mem.RegionAt(StackBase) == nil {
		if _, err := mem.Map("stack", StackBase, StackSize, true); err != nil {
			return nil, err
		}
	}
	c := &CPU{Mem: mem, OM: om}
	c.Reset()
	return c, nil
}

// Reset clears registers and points SP at the top of the stack.
func (c *CPU) Reset() {
	for i := range c.Regs {
		c.Regs[i] = 0
	}
	c.Regs[SP] = StackLimit
	c.Regs[FP] = StackLimit
	c.PC = 0
	c.cmp = 0
	c.Steps = 0
}

// Install loads a program and sets the PC to its base.
func (c *CPU) Install(p *Program) {
	c.Prog = p
	c.PC = p.Base
}

var errStackOverflow = errors.New("machine: stack overflow")

func (c *CPU) push(w heap.Word) error {
	c.Regs[SP]--
	if int64(c.Regs[SP]) < StackBase {
		return errStackOverflow
	}
	return c.Mem.Write(c.Regs[SP], w)
}

func (c *CPU) pop() (heap.Word, error) {
	w, err := c.Mem.Read(c.Regs[SP])
	if err != nil {
		return 0, err
	}
	c.Regs[SP]++
	return w, nil
}

// fault builds the stop for a memory error, routing through the simulated
// register-accessor recovery layer (where the seeded simulation errors
// live).
func (c *CPU) fault(err error, destination Reg, isLoad bool) *Stop {
	if isLoad && c.SimDefects.MissingSetters != nil && c.SimDefects.MissingSetters[destination] {
		return &Stop{Kind: StopSimulationError, Fault: fmt.Errorf("machine: missing register setter %s while recovering from %v", destination, err), Steps: c.Steps}
	}
	return &Stop{Kind: StopFault, Fault: err, Steps: c.Steps}
}

// Run executes until a stop condition or the step limit.
func (c *CPU) Run(maxSteps int) *Stop {
	for c.Steps < maxSteps {
		prev := c.PC
		stop := c.Step()
		if stop != nil {
			stop.Steps = c.Steps
			return stop
		}
		if c.BlockHook != nil && c.PC != prev+1 {
			c.BlockHook(c.PC - c.Prog.Base)
		}
	}
	return &Stop{Kind: StopStepLimit, Steps: c.Steps}
}

func float(w heap.Word) float64 { return math.Float64frombits(uint64(w)) }
func bits(f float64) heap.Word  { return heap.Word(math.Float64bits(f)) }

// Step executes one instruction; a non-nil result stops the run.
func (c *CPU) Step() *Stop {
	if c.Prog == nil {
		return &Stop{Kind: StopFault, Fault: errors.New("machine: no program installed")}
	}
	ins, ok := c.Prog.At(c.PC)
	if !ok {
		return &Stop{Kind: StopFault, Fault: &heap.Fault{Kind: heap.AccessExecute, Addr: heap.Word(c.PC)}}
	}
	c.Steps++
	c.PC++

	switch ins.Op {
	case OpcNop:
	case OpcMovR:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1]
	case OpcMovI:
		c.Regs[ins.Rd] = heap.Word(ins.Imm)
	case OpcLoad:
		w, err := c.Mem.Read(c.Regs[ins.Rs1] + heap.Word(ins.Imm))
		if err != nil {
			return c.fault(err, ins.Rd, true)
		}
		c.Regs[ins.Rd] = w
	case OpcStore:
		if err := c.Mem.Write(c.Regs[ins.Rs1]+heap.Word(ins.Imm), c.Regs[ins.Rs2]); err != nil {
			return c.fault(err, ins.Rs2, false)
		}
	case OpcLoadX:
		w, err := c.Mem.Read(c.Regs[ins.Rs1] + c.Regs[ins.Rs2])
		if err != nil {
			return c.fault(err, ins.Rd, true)
		}
		c.Regs[ins.Rd] = w
	case OpcStoreX:
		if err := c.Mem.Write(c.Regs[ins.Rs1]+c.Regs[ins.Rs2], c.Regs[ins.Rd]); err != nil {
			return c.fault(err, ins.Rd, false)
		}
	case OpcPush:
		if err := c.push(c.Regs[ins.Rs1]); err != nil {
			return c.fault(err, ins.Rs1, false)
		}
	case OpcPop:
		w, err := c.pop()
		if err != nil {
			return c.fault(err, ins.Rd, true)
		}
		c.Regs[ins.Rd] = w
	case OpcAdd:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] + c.Regs[ins.Rs2]
	case OpcSub:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] - c.Regs[ins.Rs2]
	case OpcMul:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] * c.Regs[ins.Rs2]
	case OpcDiv, OpcMod:
		d := int64(c.Regs[ins.Rs2])
		if d == 0 {
			return c.fault(errors.New("machine: integer division by zero"), ins.Rd, false)
		}
		if ins.Op == OpcDiv {
			c.Regs[ins.Rd] = heap.Word(int64(c.Regs[ins.Rs1]) / d)
		} else {
			c.Regs[ins.Rd] = heap.Word(int64(c.Regs[ins.Rs1]) % d)
		}
	case OpcAnd:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] & c.Regs[ins.Rs2]
	case OpcOr:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] | c.Regs[ins.Rs2]
	case OpcXor:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] ^ c.Regs[ins.Rs2]
	case OpcShl:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] << uint(c.Regs[ins.Rs2]&63)
	case OpcShr:
		c.Regs[ins.Rd] = heap.Word(uint64(c.Regs[ins.Rs1]) >> uint(c.Regs[ins.Rs2]&63))
	case OpcSar:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] >> uint(c.Regs[ins.Rs2]&63)
	case OpcAddI:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] + heap.Word(ins.Imm)
	case OpcSubI:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] - heap.Word(ins.Imm)
	case OpcAndI:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] & heap.Word(ins.Imm)
	case OpcOrI:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] | heap.Word(ins.Imm)
	case OpcShlI:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] << uint(ins.Imm&63)
	case OpcSarI:
		c.Regs[ins.Rd] = c.Regs[ins.Rs1] >> uint(ins.Imm&63)
	case OpcCmp:
		c.cmp = compareWords(int64(c.Regs[ins.Rs1]), int64(c.Regs[ins.Rs2]))
	case OpcCmpI:
		c.cmp = compareWords(int64(c.Regs[ins.Rs1]), ins.Imm)
	case OpcFCmp:
		a, b := float(c.Regs[ins.Rs1]), float(c.Regs[ins.Rs2])
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			c.cmp = 2 // unordered: only != holds
		case a < b:
			c.cmp = -1
		case a > b:
			c.cmp = 1
		default:
			c.cmp = 0
		}
	case OpcJmp:
		c.PC = ins.Imm
	case OpcJeq:
		if c.cmp == 0 {
			c.PC = ins.Imm
		}
	case OpcJne:
		if c.cmp != 0 {
			c.PC = ins.Imm
		}
	case OpcJlt:
		if c.cmp == -1 {
			c.PC = ins.Imm
		}
	case OpcJle:
		if c.cmp == -1 || c.cmp == 0 {
			c.PC = ins.Imm
		}
	case OpcJgt:
		if c.cmp == 1 {
			c.PC = ins.Imm
		}
	case OpcJge:
		if c.cmp == 1 || c.cmp == 0 {
			c.PC = ins.Imm
		}
	case OpcCall, OpcCallR:
		target := ins.Imm
		if ins.Op == OpcCallR {
			target = int64(c.Regs[ins.Rs1])
		}
		if err := c.push(heap.Word(c.PC)); err != nil {
			return c.fault(err, SP, false)
		}
		if target < CodeBase {
			// Runtime trampolines live below the code zone.
			return &Stop{Kind: StopTrampoline, TrampolineAddr: target}
		}
		c.PC = target
	case OpcRet:
		addr, err := c.pop()
		if err != nil {
			return c.fault(err, SP, true)
		}
		if int64(addr) == SentinelReturn {
			return &Stop{Kind: StopReturned}
		}
		c.PC = int64(addr)
	case OpcBrk:
		return &Stop{Kind: StopBreakpoint, BreakID: ins.Imm}
	case OpcHlt:
		return &Stop{Kind: StopHalt}
	case OpcFAdd:
		c.Regs[ins.Rd] = bits(float(c.Regs[ins.Rs1]) + float(c.Regs[ins.Rs2]))
	case OpcFSub:
		c.Regs[ins.Rd] = bits(float(c.Regs[ins.Rs1]) - float(c.Regs[ins.Rs2]))
	case OpcFMul:
		c.Regs[ins.Rd] = bits(float(c.Regs[ins.Rs1]) * float(c.Regs[ins.Rs2]))
	case OpcFDiv:
		c.Regs[ins.Rd] = bits(float(c.Regs[ins.Rs1]) / float(c.Regs[ins.Rs2]))
	case OpcI2F:
		c.Regs[ins.Rd] = bits(float64(int64(c.Regs[ins.Rs1])))
	case OpcF2I:
		f := float(c.Regs[ins.Rs1])
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return c.fault(errors.New("machine: float-to-int of non-finite value"), ins.Rd, false)
		}
		c.Regs[ins.Rd] = heap.Word(int64(f))
	case OpcFSqrt:
		c.Regs[ins.Rd] = bits(math.Sqrt(float(c.Regs[ins.Rs1])))
	case OpcFSin:
		c.Regs[ins.Rd] = bits(math.Sin(float(c.Regs[ins.Rs1])))
	case OpcFAtan:
		c.Regs[ins.Rd] = bits(math.Atan(float(c.Regs[ins.Rs1])))
	case OpcFLog:
		c.Regs[ins.Rd] = bits(math.Log(float(c.Regs[ins.Rs1])))
	case OpcFExp:
		c.Regs[ins.Rd] = bits(math.Exp(float(c.Regs[ins.Rs1])))
	case OpcF64To32:
		c.Regs[ins.Rd] = bits(float64(float32(float(c.Regs[ins.Rs1]))))
	case OpcF32To64:
		c.Regs[ins.Rd] = bits(float64(math.Float32frombits(uint32(c.Regs[ins.Rs1]))))
	case OpcAllocFloat:
		oop, err := c.OM.NewFloat(float(c.Regs[ins.Rs1]))
		if err != nil {
			return c.fault(err, ins.Rd, false)
		}
		c.Regs[ins.Rd] = oop
	case OpcAlloc:
		classIdx := int(c.Regs[ins.Rs1])
		cd := c.OM.ClassAt(classIdx)
		if cd == nil {
			return c.fault(fmt.Errorf("machine: allocation of unknown class %d", classIdx), ins.Rd, false)
		}
		oop, err := c.OM.Allocate(classIdx, cd.InstanceFormat, int(c.Regs[ins.Rs2]))
		if err != nil {
			return c.fault(err, ins.Rd, false)
		}
		c.Regs[ins.Rd] = oop
	default:
		return &Stop{Kind: StopFault, Fault: fmt.Errorf("machine: illegal instruction %v at %#x", ins.Op, uint64(c.PC-1))}
	}
	return nil
}

func compareWords(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// StackSlice returns the live machine stack contents from SP (top) up to
// but excluding limit. The differential tester reads the flushed operand
// stack this way.
func (c *CPU) StackSlice(limit heap.Word) ([]heap.Word, error) {
	var out []heap.Word
	for addr := c.Regs[SP]; addr < limit; addr++ {
		w, err := c.Mem.Read(addr)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}
