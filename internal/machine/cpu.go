package machine

import (
	"errors"
	"fmt"
	"math"

	"cogdiff/internal/heap"
)

// StopKind classifies why execution stopped.
type StopKind int

const (
	// StopReturned: RET popped the sentinel return address — the compiled
	// method returned to its caller.
	StopReturned StopKind = iota
	// StopTrampoline: the code called into a runtime trampoline (message
	// sends); the selector identifier is in ClassSelectorReg.
	StopTrampoline
	// StopBreakpoint: a BRK instruction was hit (exit markers,
	// fall-through detection of native methods, §4.2).
	StopBreakpoint
	// StopFault: invalid memory access, division by zero or heap
	// exhaustion — the simulated segmentation fault.
	StopFault
	// StopSimulationError: the simulation environment itself failed while
	// recovering from a fault (§5.3 "simulation error": a register
	// accessor of the recovery layer is missing).
	StopSimulationError
	// StopStepLimit: runaway execution.
	StopStepLimit
	// StopHalt: HLT executed.
	StopHalt
)

func (k StopKind) String() string {
	switch k {
	case StopReturned:
		return "returned"
	case StopTrampoline:
		return "trampoline"
	case StopBreakpoint:
		return "breakpoint"
	case StopFault:
		return "fault"
	case StopSimulationError:
		return "simulationError"
	case StopStepLimit:
		return "stepLimit"
	case StopHalt:
		return "halt"
	}
	return fmt.Sprintf("StopKind(%d)", int(k))
}

// Stop describes a finished execution.
type Stop struct {
	Kind           StopKind
	BreakID        int64
	TrampolineAddr int64
	Fault          error
	Steps          int
}

func (s Stop) String() string {
	switch s.Kind {
	case StopBreakpoint:
		return fmt.Sprintf("breakpoint(%d)", s.BreakID)
	case StopTrampoline:
		return fmt.Sprintf("trampoline(%#x)", uint64(s.TrampolineAddr))
	case StopFault:
		return fmt.Sprintf("fault(%v)", s.Fault)
	default:
		return s.Kind.String()
	}
}

// SimulationDefects seeds the simulation-environment errors of §5.3: the
// fault-recovery layer reflectively calls register setters/getters; a
// missing accessor turns a recoverable fault into a simulation error.
type SimulationDefects struct {
	MissingSetters map[Reg]bool
}

// CPU is the simulated processor. It executes decoded instructions from a
// Program against the shared flat memory (stack + heap regions).
type CPU struct {
	Mem  *heap.Memory
	OM   *heap.ObjectMemory
	Prog *Program

	Regs  [NumRegs]heap.Word
	PC    int64
	cmp   int // last comparison: -1, 0, +1
	Steps int

	SimDefects SimulationDefects

	// BlockHook, when non-nil, observes every taken control-flow transfer:
	// it receives the program-relative offset of each basic-block entry the
	// run reaches through a non-sequential PC change. The fuzzer's
	// machine-block coverage signal hangs off this hook; execution cost is
	// one comparison per step when unset.
	BlockHook func(offset int64)
}

// New prepares a CPU over the given object memory, mapping the machine
// stack region if it is not mapped yet.
func New(om *heap.ObjectMemory) (*CPU, error) {
	mem := om.Mem
	if mem.RegionAt(StackBase) == nil {
		if _, err := mem.Map("stack", StackBase, StackSize, true); err != nil {
			return nil, err
		}
	}
	c := &CPU{Mem: mem, OM: om}
	c.Reset()
	return c, nil
}

// Reset clears registers and points SP at the top of the stack.
func (c *CPU) Reset() {
	for i := range c.Regs {
		c.Regs[i] = 0
	}
	c.Regs[SP] = StackLimit
	c.Regs[FP] = StackLimit
	c.PC = 0
	c.cmp = 0
	c.Steps = 0
}

// Install loads a program and sets the PC to its base.
func (c *CPU) Install(p *Program) {
	c.Prog = p
	c.PC = p.Base
}

var errStackOverflow = errors.New("machine: stack overflow")

func (c *CPU) push(w heap.Word) error {
	c.Regs[SP]--
	if int64(c.Regs[SP]) < StackBase {
		return errStackOverflow
	}
	return c.Mem.Write(c.Regs[SP], w)
}

func (c *CPU) pop() (heap.Word, error) {
	w, err := c.Mem.Read(c.Regs[SP])
	if err != nil {
		return 0, err
	}
	c.Regs[SP]++
	return w, nil
}

// fault builds the stop for a memory error, routing through the simulated
// register-accessor recovery layer (where the seeded simulation errors
// live).
func (c *CPU) fault(err error, destination Reg, isLoad bool) *Stop {
	if isLoad && c.SimDefects.MissingSetters != nil && c.SimDefects.MissingSetters[destination] {
		return &Stop{Kind: StopSimulationError, Fault: fmt.Errorf("machine: missing register setter %s while recovering from %v", destination, err), Steps: c.Steps}
	}
	return &Stop{Kind: StopFault, Fault: err, Steps: c.Steps}
}

// Run executes until a stop condition or the step limit. Dispatch runs
// over the program's pre-decoded instruction stream: each stream entry
// pairs the instruction with its handler, so the per-step cost is one
// bounds check plus one indirect call (no per-step opcode decode). The
// stream is built once per Program and shared by every run of it — the
// compiled-code cache makes that amortization count across paths.
func (c *CPU) Run(maxSteps int) *Stop {
	if c.Prog == nil {
		return &Stop{Kind: StopFault, Fault: errors.New("machine: no program installed"), Steps: c.Steps}
	}
	stream := c.Prog.stream()
	base := c.Prog.Base
	if c.BlockHook != nil {
		return c.runHooked(stream, base, maxSteps)
	}
	for c.Steps < maxSteps {
		idx := c.PC - base
		if idx < 0 || idx >= int64(len(stream)) {
			return &Stop{Kind: StopFault, Fault: &heap.Fault{Kind: heap.AccessExecute, Addr: heap.Word(c.PC)}, Steps: c.Steps}
		}
		d := &stream[idx]
		c.Steps++
		c.PC++
		if stop := d.fn(c, &d.ins); stop != nil {
			stop.Steps = c.Steps
			return stop
		}
	}
	return &Stop{Kind: StopStepLimit, Steps: c.Steps}
}

// runHooked is Run with the block-coverage hook observed after every
// taken control-flow transfer; split out so the unhooked hot loop pays
// nothing for the feature.
func (c *CPU) runHooked(stream []decodedInstr, base int64, maxSteps int) *Stop {
	for c.Steps < maxSteps {
		idx := c.PC - base
		if idx < 0 || idx >= int64(len(stream)) {
			return &Stop{Kind: StopFault, Fault: &heap.Fault{Kind: heap.AccessExecute, Addr: heap.Word(c.PC)}, Steps: c.Steps}
		}
		d := &stream[idx]
		c.Steps++
		c.PC++
		prev := base + idx
		if stop := d.fn(c, &d.ins); stop != nil {
			stop.Steps = c.Steps
			return stop
		}
		if c.PC != prev+1 {
			c.BlockHook(c.PC - base)
		}
	}
	return &Stop{Kind: StopStepLimit, Steps: c.Steps}
}

func float(w heap.Word) float64 { return math.Float64frombits(uint64(w)) }
func bits(f float64) heap.Word  { return heap.Word(math.Float64bits(f)) }

// Step executes one instruction; a non-nil result stops the run.
func (c *CPU) Step() *Stop {
	if c.Prog == nil {
		return &Stop{Kind: StopFault, Fault: errors.New("machine: no program installed")}
	}
	ins, ok := c.Prog.At(c.PC)
	if !ok {
		return &Stop{Kind: StopFault, Fault: &heap.Fault{Kind: heap.AccessExecute, Addr: heap.Word(c.PC)}}
	}
	c.Steps++
	c.PC++
	return stepFor(ins.Op)(c, &ins)
}

// stepFn executes one pre-decoded instruction. The PC has already been
// advanced past it; a non-nil result stops the run.
type stepFn func(c *CPU, ins *Instr) *Stop

// stepTable maps opcodes to handlers; stepIllegal covers the holes.
var stepTable [NumOpcs]stepFn

// stepFor resolves the handler for an opcode, including out-of-range ones.
func stepFor(op Opc) stepFn {
	if op < NumOpcs {
		if fn := stepTable[op]; fn != nil {
			return fn
		}
	}
	return stepIllegal
}

func init() {
	for op, fn := range map[Opc]stepFn{
		OpcNop:        stepNop,
		OpcMovR:       stepMovR,
		OpcMovI:       stepMovI,
		OpcLoad:       stepLoad,
		OpcStore:      stepStore,
		OpcLoadX:      stepLoadX,
		OpcStoreX:     stepStoreX,
		OpcPush:       stepPush,
		OpcPop:        stepPop,
		OpcAdd:        stepAdd,
		OpcSub:        stepSub,
		OpcMul:        stepMul,
		OpcDiv:        stepDiv,
		OpcMod:        stepMod,
		OpcAnd:        stepAnd,
		OpcOr:         stepOr,
		OpcXor:        stepXor,
		OpcShl:        stepShl,
		OpcShr:        stepShr,
		OpcSar:        stepSar,
		OpcAddI:       stepAddI,
		OpcSubI:       stepSubI,
		OpcAndI:       stepAndI,
		OpcOrI:        stepOrI,
		OpcShlI:       stepShlI,
		OpcSarI:       stepSarI,
		OpcCmp:        stepCmp,
		OpcCmpI:       stepCmpI,
		OpcFCmp:       stepFCmp,
		OpcJmp:        stepJmp,
		OpcJeq:        stepJeq,
		OpcJne:        stepJne,
		OpcJlt:        stepJlt,
		OpcJle:        stepJle,
		OpcJgt:        stepJgt,
		OpcJge:        stepJge,
		OpcCall:       stepCall,
		OpcCallR:      stepCallR,
		OpcRet:        stepRet,
		OpcBrk:        stepBrk,
		OpcHlt:        stepHlt,
		OpcFAdd:       stepFAdd,
		OpcFSub:       stepFSub,
		OpcFMul:       stepFMul,
		OpcFDiv:       stepFDiv,
		OpcI2F:        stepI2F,
		OpcF2I:        stepF2I,
		OpcFSqrt:      stepFSqrt,
		OpcFSin:       stepFSin,
		OpcFAtan:      stepFAtan,
		OpcFLog:       stepFLog,
		OpcFExp:       stepFExp,
		OpcF64To32:    stepF64To32,
		OpcF32To64:    stepF32To64,
		OpcAllocFloat: stepAllocFloat,
		OpcAlloc:      stepAlloc,
	} {
		stepTable[op] = fn
	}
}

func stepNop(c *CPU, ins *Instr) *Stop { return nil }

func stepMovR(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1]
	return nil
}

func stepMovI(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = heap.Word(ins.Imm)
	return nil
}

func stepLoad(c *CPU, ins *Instr) *Stop {
	w, err := c.Mem.Read(c.Regs[ins.Rs1] + heap.Word(ins.Imm))
	if err != nil {
		return c.fault(err, ins.Rd, true)
	}
	c.Regs[ins.Rd] = w
	return nil
}

func stepStore(c *CPU, ins *Instr) *Stop {
	if err := c.Mem.Write(c.Regs[ins.Rs1]+heap.Word(ins.Imm), c.Regs[ins.Rs2]); err != nil {
		return c.fault(err, ins.Rs2, false)
	}
	return nil
}

func stepLoadX(c *CPU, ins *Instr) *Stop {
	w, err := c.Mem.Read(c.Regs[ins.Rs1] + c.Regs[ins.Rs2])
	if err != nil {
		return c.fault(err, ins.Rd, true)
	}
	c.Regs[ins.Rd] = w
	return nil
}

func stepStoreX(c *CPU, ins *Instr) *Stop {
	if err := c.Mem.Write(c.Regs[ins.Rs1]+c.Regs[ins.Rs2], c.Regs[ins.Rd]); err != nil {
		return c.fault(err, ins.Rd, false)
	}
	return nil
}

func stepPush(c *CPU, ins *Instr) *Stop {
	if err := c.push(c.Regs[ins.Rs1]); err != nil {
		return c.fault(err, ins.Rs1, false)
	}
	return nil
}

func stepPop(c *CPU, ins *Instr) *Stop {
	w, err := c.pop()
	if err != nil {
		return c.fault(err, ins.Rd, true)
	}
	c.Regs[ins.Rd] = w
	return nil
}

func stepAdd(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] + c.Regs[ins.Rs2]
	return nil
}

func stepSub(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] - c.Regs[ins.Rs2]
	return nil
}

func stepMul(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] * c.Regs[ins.Rs2]
	return nil
}

func stepDiv(c *CPU, ins *Instr) *Stop {
	d := int64(c.Regs[ins.Rs2])
	if d == 0 {
		return c.fault(errors.New("machine: integer division by zero"), ins.Rd, false)
	}
	c.Regs[ins.Rd] = heap.Word(int64(c.Regs[ins.Rs1]) / d)
	return nil
}

func stepMod(c *CPU, ins *Instr) *Stop {
	d := int64(c.Regs[ins.Rs2])
	if d == 0 {
		return c.fault(errors.New("machine: integer division by zero"), ins.Rd, false)
	}
	c.Regs[ins.Rd] = heap.Word(int64(c.Regs[ins.Rs1]) % d)
	return nil
}

func stepAnd(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] & c.Regs[ins.Rs2]
	return nil
}

func stepOr(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] | c.Regs[ins.Rs2]
	return nil
}

func stepXor(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] ^ c.Regs[ins.Rs2]
	return nil
}

func stepShl(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] << uint(c.Regs[ins.Rs2]&63)
	return nil
}

func stepShr(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = heap.Word(uint64(c.Regs[ins.Rs1]) >> uint(c.Regs[ins.Rs2]&63))
	return nil
}

func stepSar(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] >> uint(c.Regs[ins.Rs2]&63)
	return nil
}

func stepAddI(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] + heap.Word(ins.Imm)
	return nil
}

func stepSubI(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] - heap.Word(ins.Imm)
	return nil
}

func stepAndI(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] & heap.Word(ins.Imm)
	return nil
}

func stepOrI(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] | heap.Word(ins.Imm)
	return nil
}

func stepShlI(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] << uint(ins.Imm&63)
	return nil
}

func stepSarI(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = c.Regs[ins.Rs1] >> uint(ins.Imm&63)
	return nil
}

func stepCmp(c *CPU, ins *Instr) *Stop {
	c.cmp = compareWords(int64(c.Regs[ins.Rs1]), int64(c.Regs[ins.Rs2]))
	return nil
}

func stepCmpI(c *CPU, ins *Instr) *Stop {
	c.cmp = compareWords(int64(c.Regs[ins.Rs1]), ins.Imm)
	return nil
}

func stepFCmp(c *CPU, ins *Instr) *Stop {
	a, b := float(c.Regs[ins.Rs1]), float(c.Regs[ins.Rs2])
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		c.cmp = 2 // unordered: only != holds
	case a < b:
		c.cmp = -1
	case a > b:
		c.cmp = 1
	default:
		c.cmp = 0
	}
	return nil
}

func stepJmp(c *CPU, ins *Instr) *Stop {
	c.PC = ins.Imm
	return nil
}

func stepJeq(c *CPU, ins *Instr) *Stop {
	if c.cmp == 0 {
		c.PC = ins.Imm
	}
	return nil
}

func stepJne(c *CPU, ins *Instr) *Stop {
	if c.cmp != 0 {
		c.PC = ins.Imm
	}
	return nil
}

func stepJlt(c *CPU, ins *Instr) *Stop {
	if c.cmp == -1 {
		c.PC = ins.Imm
	}
	return nil
}

func stepJle(c *CPU, ins *Instr) *Stop {
	if c.cmp == -1 || c.cmp == 0 {
		c.PC = ins.Imm
	}
	return nil
}

func stepJgt(c *CPU, ins *Instr) *Stop {
	if c.cmp == 1 {
		c.PC = ins.Imm
	}
	return nil
}

func stepJge(c *CPU, ins *Instr) *Stop {
	if c.cmp == 1 || c.cmp == 0 {
		c.PC = ins.Imm
	}
	return nil
}

func (c *CPU) callTo(target int64) *Stop {
	if err := c.push(heap.Word(c.PC)); err != nil {
		return c.fault(err, SP, false)
	}
	if target < CodeBase {
		// Runtime trampolines live below the code zone.
		return &Stop{Kind: StopTrampoline, TrampolineAddr: target}
	}
	c.PC = target
	return nil
}

func stepCall(c *CPU, ins *Instr) *Stop { return c.callTo(ins.Imm) }

func stepCallR(c *CPU, ins *Instr) *Stop { return c.callTo(int64(c.Regs[ins.Rs1])) }

func stepRet(c *CPU, ins *Instr) *Stop {
	addr, err := c.pop()
	if err != nil {
		return c.fault(err, SP, true)
	}
	if int64(addr) == SentinelReturn {
		return &Stop{Kind: StopReturned}
	}
	c.PC = int64(addr)
	return nil
}

func stepBrk(c *CPU, ins *Instr) *Stop {
	return &Stop{Kind: StopBreakpoint, BreakID: ins.Imm}
}

func stepHlt(c *CPU, ins *Instr) *Stop {
	return &Stop{Kind: StopHalt}
}

func stepFAdd(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(float(c.Regs[ins.Rs1]) + float(c.Regs[ins.Rs2]))
	return nil
}

func stepFSub(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(float(c.Regs[ins.Rs1]) - float(c.Regs[ins.Rs2]))
	return nil
}

func stepFMul(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(float(c.Regs[ins.Rs1]) * float(c.Regs[ins.Rs2]))
	return nil
}

func stepFDiv(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(float(c.Regs[ins.Rs1]) / float(c.Regs[ins.Rs2]))
	return nil
}

func stepI2F(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(float64(int64(c.Regs[ins.Rs1])))
	return nil
}

func stepF2I(c *CPU, ins *Instr) *Stop {
	f := float(c.Regs[ins.Rs1])
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return c.fault(errors.New("machine: float-to-int of non-finite value"), ins.Rd, false)
	}
	c.Regs[ins.Rd] = heap.Word(int64(f))
	return nil
}

func stepFSqrt(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(math.Sqrt(float(c.Regs[ins.Rs1])))
	return nil
}

func stepFSin(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(math.Sin(float(c.Regs[ins.Rs1])))
	return nil
}

func stepFAtan(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(math.Atan(float(c.Regs[ins.Rs1])))
	return nil
}

func stepFLog(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(math.Log(float(c.Regs[ins.Rs1])))
	return nil
}

func stepFExp(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(math.Exp(float(c.Regs[ins.Rs1])))
	return nil
}

func stepF64To32(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(float64(float32(float(c.Regs[ins.Rs1]))))
	return nil
}

func stepF32To64(c *CPU, ins *Instr) *Stop {
	c.Regs[ins.Rd] = bits(float64(math.Float32frombits(uint32(c.Regs[ins.Rs1]))))
	return nil
}

func stepAllocFloat(c *CPU, ins *Instr) *Stop {
	oop, err := c.OM.NewFloat(float(c.Regs[ins.Rs1]))
	if err != nil {
		return c.fault(err, ins.Rd, false)
	}
	c.Regs[ins.Rd] = oop
	return nil
}

func stepAlloc(c *CPU, ins *Instr) *Stop {
	classIdx := int(c.Regs[ins.Rs1])
	cd := c.OM.ClassAt(classIdx)
	if cd == nil {
		return c.fault(fmt.Errorf("machine: allocation of unknown class %d", classIdx), ins.Rd, false)
	}
	oop, err := c.OM.Allocate(classIdx, cd.InstanceFormat, int(c.Regs[ins.Rs2]))
	if err != nil {
		return c.fault(err, ins.Rd, false)
	}
	c.Regs[ins.Rd] = oop
	return nil
}

func stepIllegal(c *CPU, ins *Instr) *Stop {
	return &Stop{Kind: StopFault, Fault: fmt.Errorf("machine: illegal instruction %v at %#x", ins.Op, uint64(c.PC-1))}
}

func compareWords(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// StackSlice returns the live machine stack contents from SP (top) up to
// but excluding limit. The differential tester reads the flushed operand
// stack this way.
func (c *CPU) StackSlice(limit heap.Word) ([]heap.Word, error) {
	var out []heap.Word
	// Pre-size for the common case; a corrupt SP far below the limit
	// falls back to append growth so a bad register can't force a huge
	// allocation before the first read faults.
	if n := limit - c.Regs[SP]; n > 0 && n <= 1<<16 {
		out = make([]heap.Word, 0, n)
	}
	for addr := c.Regs[SP]; addr < limit; addr++ {
		w, err := c.Mem.Read(addr)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}
