package machine

import (
	"encoding/binary"
	"fmt"
)

// ISA identifies a target instruction-set encoding. The simulated CPU
// executes decoded instructions; the encoders exist so each back-end
// produces genuine machine-code bytes in its own format (variable-length
// for the x86-style target, fixed-width for the ARM32-style target), which
// the disassembler and the cross-ISA tests exercise.
type ISA int

const (
	// ISAAmd64Like uses variable-length encoding: 1 opcode byte, 1
	// register byte, and an immediate only when the instruction needs one
	// (1 or 8 bytes depending on range).
	ISAAmd64Like ISA = iota
	// ISAArm32Like uses fixed 8-byte instructions with a 32-bit immediate
	// field; immediates outside 32 bits are unencodable.
	ISAArm32Like
)

func (i ISA) String() string {
	if i == ISAAmd64Like {
		return "amd64-like"
	}
	return "arm32-like"
}

// needsImm reports whether the opcode carries an immediate operand.
func needsImm(op Opc) bool {
	switch op {
	case OpcMovI, OpcLoad, OpcStore, OpcAddI, OpcSubI, OpcAndI, OpcOrI,
		OpcShlI, OpcSarI, OpcCmpI, OpcJmp, OpcJeq, OpcJne, OpcJlt, OpcJle,
		OpcJgt, OpcJge, OpcCall, OpcBrk:
		return true
	}
	return false
}

// Encode serializes a program in the given ISA's byte format.
func Encode(p *Program, isa ISA) ([]byte, error) {
	var out []byte
	for _, ins := range p.Instrs {
		regs := byte(ins.Rd)<<4 | byte(ins.Rs1)
		switch isa {
		case ISAAmd64Like:
			out = append(out, byte(ins.Op), regs, byte(ins.Rs2))
			if needsImm(ins.Op) {
				if ins.Imm >= -128 && ins.Imm <= 127 {
					out = append(out, 1, byte(int8(ins.Imm)))
				} else {
					var buf [8]byte
					binary.LittleEndian.PutUint64(buf[:], uint64(ins.Imm))
					out = append(out, 8)
					out = append(out, buf[:]...)
				}
			}
		case ISAArm32Like:
			if ins.Imm < -(1<<31) || ins.Imm >= 1<<31 {
				return nil, fmt.Errorf("machine: immediate %d unencodable on %s", ins.Imm, isa)
			}
			var buf [8]byte
			buf[0] = byte(ins.Op)
			buf[1] = regs
			buf[2] = byte(ins.Rs2)
			binary.LittleEndian.PutUint32(buf[4:], uint32(int32(ins.Imm)))
			out = append(out, buf[:]...)
		default:
			return nil, fmt.Errorf("machine: unknown ISA %d", isa)
		}
	}
	return out, nil
}

// Decode deserializes machine code back into a program (the simulation's
// disassembler, used when recovering from faults and in tests).
func Decode(code []byte, base int64, isa ISA) (*Program, error) {
	var instrs []Instr
	i := 0
	for i < len(code) {
		var ins Instr
		switch isa {
		case ISAAmd64Like:
			if i+3 > len(code) {
				return nil, fmt.Errorf("machine: truncated instruction at %d", i)
			}
			ins.Op = Opc(code[i])
			ins.Rd = Reg(code[i+1] >> 4)
			ins.Rs1 = Reg(code[i+1] & 0xF)
			ins.Rs2 = Reg(code[i+2])
			i += 3
			if needsImm(ins.Op) {
				if i >= len(code) {
					return nil, fmt.Errorf("machine: truncated immediate at %d", i)
				}
				width := int(code[i])
				i++
				switch width {
				case 1:
					ins.Imm = int64(int8(code[i]))
					i++
				case 8:
					if i+8 > len(code) {
						return nil, fmt.Errorf("machine: truncated immediate at %d", i)
					}
					ins.Imm = int64(binary.LittleEndian.Uint64(code[i:]))
					i += 8
				default:
					return nil, fmt.Errorf("machine: bad immediate width %d at %d", width, i)
				}
			}
		case ISAArm32Like:
			if i+8 > len(code) {
				return nil, fmt.Errorf("machine: truncated instruction at %d", i)
			}
			ins.Op = Opc(code[i])
			ins.Rd = Reg(code[i+1] >> 4)
			ins.Rs1 = Reg(code[i+1] & 0xF)
			ins.Rs2 = Reg(code[i+2])
			ins.Imm = int64(int32(binary.LittleEndian.Uint32(code[i+4:])))
			i += 8
		default:
			return nil, fmt.Errorf("machine: unknown ISA %d", isa)
		}
		if ins.Op >= NumOpcs {
			return nil, fmt.Errorf("machine: illegal opcode %d", ins.Op)
		}
		instrs = append(instrs, ins)
	}
	return &Program{Base: base, Instrs: instrs}, nil
}
