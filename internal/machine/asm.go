package machine

import (
	"fmt"
	"sync"
)

// Assembler builds machine programs with symbolic labels. Backends emit
// through it; Finish resolves label references to absolute code addresses.
type Assembler struct {
	base   int64 // address of the first instruction
	instrs []Instr
	labels map[string]int64
	// fixups maps instruction index -> label whose address patches Imm.
	fixups map[int]string
	errs   []error
}

// NewAssembler starts a program at the given base address.
func NewAssembler(base int64) *Assembler {
	return &Assembler{
		base:   base,
		labels: make(map[string]int64),
		fixups: make(map[int]string),
	}
}

// Emit appends a raw instruction.
func (a *Assembler) Emit(i Instr) *Assembler {
	a.instrs = append(a.instrs, i)
	return a
}

// Here returns the address of the next instruction.
func (a *Assembler) Here() int64 { return a.base + int64(len(a.instrs)) }

// Label binds name to the current address.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("asm: duplicate label %q", name))
	}
	a.labels[name] = a.Here()
	return a
}

// EmitToLabel appends a control-flow instruction whose Imm is patched to
// the label's address at Finish.
func (a *Assembler) EmitToLabel(i Instr, label string) *Assembler {
	a.fixups[len(a.instrs)] = label
	a.instrs = append(a.instrs, i)
	return a
}

// Convenience emitters used by the JIT back-ends.

func (a *Assembler) MovR(rd, rs Reg) *Assembler { return a.Emit(Instr{Op: OpcMovR, Rd: rd, Rs1: rs}) }
func (a *Assembler) MovI(rd Reg, imm int64) *Assembler {
	return a.Emit(Instr{Op: OpcMovI, Rd: rd, Imm: imm})
}
func (a *Assembler) Load(rd, rb Reg, off int64) *Assembler {
	return a.Emit(Instr{Op: OpcLoad, Rd: rd, Rs1: rb, Imm: off})
}
func (a *Assembler) Store(rb Reg, off int64, rs Reg) *Assembler {
	return a.Emit(Instr{Op: OpcStore, Rs1: rb, Rs2: rs, Imm: off})
}
func (a *Assembler) Push(rs Reg) *Assembler { return a.Emit(Instr{Op: OpcPush, Rs1: rs}) }
func (a *Assembler) Pop(rd Reg) *Assembler  { return a.Emit(Instr{Op: OpcPop, Rd: rd}) }
func (a *Assembler) Bin(op Opc, rd, rs1, rs2 Reg) *Assembler {
	return a.Emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (a *Assembler) BinI(op Opc, rd, rs1 Reg, imm int64) *Assembler {
	return a.Emit(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}
func (a *Assembler) Cmp(rs1, rs2 Reg) *Assembler {
	return a.Emit(Instr{Op: OpcCmp, Rs1: rs1, Rs2: rs2})
}
func (a *Assembler) CmpI(rs Reg, imm int64) *Assembler {
	return a.Emit(Instr{Op: OpcCmpI, Rs1: rs, Imm: imm})
}
func (a *Assembler) FCmp(rs1, rs2 Reg) *Assembler {
	return a.Emit(Instr{Op: OpcFCmp, Rs1: rs1, Rs2: rs2})
}
func (a *Assembler) Jump(op Opc, label string) *Assembler {
	return a.EmitToLabel(Instr{Op: op}, label)
}
func (a *Assembler) Call(addr int64) *Assembler { return a.Emit(Instr{Op: OpcCall, Imm: addr}) }
func (a *Assembler) Ret() *Assembler            { return a.Emit(Instr{Op: OpcRet}) }
func (a *Assembler) Brk(id int64) *Assembler    { return a.Emit(Instr{Op: OpcBrk, Imm: id}) }

// Finish resolves labels and returns the program. The builder's slice is
// handed off to the program rather than copied — the assembler is done
// with it, and cloning every assembled body was a measurable share of the
// compile path's allocations. The assembler must not be reused after.
func (a *Assembler) Finish() (*Program, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	out := a.instrs
	a.instrs = nil
	for idx, label := range a.fixups {
		addr, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", label)
		}
		out[idx].Imm = addr
	}
	return &Program{Base: a.base, Instrs: out}, nil
}

// Program is an assembled machine-code method.
type Program struct {
	Base   int64
	Instrs []Instr

	// decoded is the pre-decoded dispatch stream built lazily by stream():
	// one handler+instruction pair per slot, so CPU.Run dispatches without
	// re-decoding the opcode every step. Programs are immutable once
	// published, which makes the once-guarded build safe to share across
	// runs and (via the compiled-code cache) across units and workers.
	decodeOnce sync.Once
	decoded    []decodedInstr
}

// decodedInstr pairs an instruction with its resolved step handler.
type decodedInstr struct {
	fn  stepFn
	ins Instr
}

// stream returns the pre-decoded dispatch stream, building it on first use.
func (p *Program) stream() []decodedInstr {
	p.decodeOnce.Do(func() {
		d := make([]decodedInstr, len(p.Instrs))
		for i, ins := range p.Instrs {
			d[i] = decodedInstr{fn: stepFor(ins.Op), ins: ins}
		}
		p.decoded = d
	})
	return p.decoded
}

// At returns the instruction at an absolute address.
func (p *Program) At(addr int64) (Instr, bool) {
	idx := addr - p.Base
	if idx < 0 || idx >= int64(len(p.Instrs)) {
		return Instr{}, false
	}
	return p.Instrs[idx], true
}

// Disassemble renders the program.
func (p *Program) Disassemble() string {
	s := ""
	for i, ins := range p.Instrs {
		s += fmt.Sprintf("%#6x: %s\n", uint64(p.Base+int64(i)), ins)
	}
	return s
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }
