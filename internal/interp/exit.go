// Package interp implements the virtual machine's byte-code interpreter.
//
// The interpreter is written once against an execution context (Ctx) whose
// semantic operations (isSmallInteger, overflow range checks, class index
// fetches, slot and operand-stack access) optionally report to a Tracer.
// With a nil tracer the interpreter is the VM's plain concrete execution
// engine; with the concolic tracer installed the very same instruction
// source records the path constraints of §3.3, making the interpreter an
// executable specification in the paper's sense.
package interp

import "fmt"

// ExitKind models how an instruction execution finished (§3.4).
type ExitKind int

const (
	// ExitSuccess is the correct execution of an instruction to its end
	// (fetchNextBytecode reached, or a native method returning a result).
	ExitSuccess ExitKind = iota
	// ExitFailure is a native method failing its operand checks; execution
	// falls back to the user-defined method body.
	ExitFailure
	// ExitMessageSend leaves the instruction to activate a message send
	// (slow paths of optimized byte-codes, explicit sends, mustBeBoolean).
	ExitMessageSend
	// ExitMethodReturn returns to the caller.
	ExitMethodReturn
	// ExitInvalidFrame is an access to a non-existing operand stack value;
	// the concolic engine uses it to grow the abstract frame.
	ExitInvalidFrame
	// ExitInvalidMemoryAccess is an out-of-bounds object access: an
	// expected failure for unsafe byte-codes, an error for native methods.
	ExitInvalidMemoryAccess
	// ExitUnsupported marks instructions the testing prototype does not
	// handle (stack-frame reification, byte-code look-ahead; §4.3). Paths
	// ending here are curated out of the evaluation.
	ExitUnsupported
)

func (k ExitKind) String() string {
	switch k {
	case ExitSuccess:
		return "success"
	case ExitFailure:
		return "failure"
	case ExitMessageSend:
		return "messageSend"
	case ExitMethodReturn:
		return "methodReturn"
	case ExitInvalidFrame:
		return "invalidFrame"
	case ExitInvalidMemoryAccess:
		return "invalidMemoryAccess"
	case ExitUnsupported:
		return "unsupported"
	}
	return fmt.Sprintf("ExitKind(%d)", int(k))
}

// Exit is the full exit condition of one instruction execution.
type Exit struct {
	Kind ExitKind
	// NextPC is the byte-code offset execution continues at (Success).
	NextPC int
	// Selector and NumArgs describe the activation for ExitMessageSend.
	Selector string
	NumArgs  int
	// Result is the returned value for ExitMethodReturn and the pushed
	// result for successful native methods.
	Result Value
	// HasResult distinguishes a present zero Result from no result.
	HasResult bool
	// FailCode is the primitive failure code for ExitFailure.
	FailCode int
}

func (e Exit) String() string {
	switch e.Kind {
	case ExitSuccess:
		return fmt.Sprintf("success(pc=%d)", e.NextPC)
	case ExitMessageSend:
		return fmt.Sprintf("messageSend(#%s/%d)", e.Selector, e.NumArgs)
	case ExitFailure:
		return fmt.Sprintf("failure(code=%d)", e.FailCode)
	case ExitMethodReturn:
		return "methodReturn"
	default:
		return e.Kind.String()
	}
}

// exitSignal carries an Exit through panic/recover inside the interpreter;
// deeply nested instruction code terminates by raising it.
type exitSignal struct{ exit Exit }
