package interp

import (
	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// Value is a VM value flowing through the interpreter: a concrete tagged
// word plus, in concolic mode, the symbolic expression describing it. In
// plain concrete execution Sym is nil everywhere.
type Value struct {
	W   heap.Word
	Sym sym.ValExpr
}

// Concrete wraps a plain word with no symbolic information.
func Concrete(w heap.Word) Value { return Value{W: w} }

// IntValue is an untagged integer mid-computation.
type IntValue struct {
	V   int64
	Sym sym.IntExpr // nil when fully concrete
}

// FloatValue is an unboxed float mid-computation.
type FloatValue struct {
	F   float64
	Sym sym.FloatExpr
}

// intExprOf extracts (or synthesizes) the integer expression describing a
// value that is known to be a tagged small integer.
func intExprOf(v Value) sym.IntExpr {
	switch s := v.Sym.(type) {
	case sym.VarRef:
		return sym.IntValueOf{V: s.V}
	case sym.IntObj:
		return s.E
	}
	return nil
}

// floatExprOf extracts the float expression of a value known to be a
// boxed float.
func floatExprOf(v Value) sym.FloatExpr {
	switch s := v.Sym.(type) {
	case sym.VarRef:
		return sym.FloatValueOf{V: s.V}
	case sym.FloatObj:
		return s.E
	}
	return nil
}

// varOf returns the input variable behind a value, if it is one.
func varOf(v Value) (*sym.Var, bool) {
	if s, ok := v.Sym.(sym.VarRef); ok {
		return s.V, true
	}
	return nil, false
}

// constraintHasVars reports whether a constraint mentions any symbolic
// variable; conditions over fully concrete data are deterministic and are
// not recorded as path conditions.
func constraintHasVars(c sym.Constraint) bool {
	switch n := c.(type) {
	case sym.TypeIs, sym.ClassIs, sym.FormatIs, sym.SlotCountAtLeast, sym.Identical, sym.StackSizeAtLeast:
		return true
	case sym.ICmp:
		vars := map[int]*sym.Var{}
		sym.VarsOfInt(n.L, vars)
		sym.VarsOfInt(n.R, vars)
		return len(vars) > 0
	case sym.FCmp:
		vars := map[int]*sym.Var{}
		sym.VarsOfFloat(n.L, vars)
		sym.VarsOfFloat(n.R, vars)
		return len(vars) > 0
	case sym.InSmallIntRange:
		vars := map[int]*sym.Var{}
		sym.VarsOfInt(n.E, vars)
		return len(vars) > 0
	case sym.Not:
		return constraintHasVars(n.C)
	case sym.AllOf:
		for _, e := range n {
			if constraintHasVars(e) {
				return true
			}
		}
		return false
	case sym.AnyOf:
		for _, e := range n {
			if constraintHasVars(e) {
				return true
			}
		}
		return false
	}
	return false
}
