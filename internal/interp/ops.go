package interp

import (
	"math"

	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// This file implements the semantic operations of the execution model
// (§3.3): type predicates, tagged arithmetic, class and format checks and
// object accesses. Each operation computes the concrete result and, when
// the operands carry symbolic information, reports the corresponding
// semantic condition to the tracer.

// ---- type predicates ----

// IsSmallInt checks the tagged-integer predicate, recording
// isSmallInteger(v) / isNotSmallInteger(v) for input variables.
func (c *Ctx) IsSmallInt(v Value) bool {
	outcome := heap.IsSmallInt(v.W)
	if vr, ok := varOf(v); ok {
		c.recordOutcome(sym.TypeIs{V: vr, Kind: sym.KindSmallInt}, outcome)
	}
	return outcome
}

// AreIntegers is the non-short-circuiting two-operand integer check of the
// Pharo interpreter (objectMemory areIntegers:and:): both conditions are
// recorded even when the first fails, matching Table 1.
func (c *Ctx) AreIntegers(a, b Value) bool {
	ra := c.IsSmallInt(a)
	rb := c.IsSmallInt(b)
	return ra && rb
}

// IsFloatObject checks for a boxed float.
func (c *Ctx) IsFloatObject(v Value) bool {
	outcome := c.OM.IsFloatObject(v.W)
	if vr, ok := varOf(v); ok {
		c.recordOutcome(sym.TypeIs{V: vr, Kind: sym.KindFloat}, outcome)
	}
	return outcome
}

// AreFloats checks both operands for boxed floats, recording both.
func (c *Ctx) AreFloats(a, b Value) bool {
	ra := c.IsFloatObject(a)
	rb := c.IsFloatObject(b)
	return ra && rb
}

// ClassIndexIs checks classIndexOf(v) = idx.
func (c *Ctx) ClassIndexIs(v Value, idx int) bool {
	outcome := c.OM.ClassIndexOf(v.W) == idx
	if vr, ok := varOf(v); ok {
		c.recordOutcome(sym.ClassIs{V: vr, ClassIndex: idx}, outcome)
	}
	return outcome
}

// FormatOfIs checks the heap format of v (meaningful for non-immediates).
func (c *Ctx) FormatOfIs(v Value, f heap.Format) bool {
	outcome := !heap.IsSmallInt(v.W) && c.OM.FormatOf(v.W) == f
	if vr, ok := varOf(v); ok {
		c.recordOutcome(sym.FormatIs{V: vr, F: f}, outcome)
	}
	return outcome
}

// IsIndexable checks whether v answers at:/at:put:, recording the format
// condition that held (or all three negative conditions).
func (c *Ctx) IsIndexable(v Value) bool {
	if heap.IsSmallInt(v.W) {
		return false
	}
	f := c.OM.FormatOf(v.W)
	outcome := f.IsIndexable()
	if vr, ok := varOf(v); ok {
		if outcome {
			c.record(sym.FormatIs{V: vr, F: f})
		} else {
			c.record(sym.AllOf{
				sym.Not{C: sym.FormatIs{V: vr, F: heap.FormatPointers}},
				sym.Not{C: sym.FormatIs{V: vr, F: heap.FormatWords}},
				sym.Not{C: sym.FormatIs{V: vr, F: heap.FormatBytes}},
			})
		}
	}
	return outcome
}

// ---- tagged integer arithmetic ----

// SmallIntValue untags a checked small integer.
func (c *Ctx) SmallIntValue(v Value) IntValue {
	return IntValue{V: heap.SmallIntValue(v.W), Sym: intExprOf(v)}
}

// UnsafeIntValue untags without any check: applied to a pointer it yields
// garbage, exactly like the production VM (used by seeded interpreter
// defects).
func (c *Ctx) UnsafeIntValue(v Value) IntValue {
	return IntValue{V: heap.SmallIntValue(v.W), Sym: intExprOf(v)}
}

// IsIntegerValue is the overflow range check on an untagged result.
func (c *Ctx) IsIntegerValue(iv IntValue) bool {
	outcome := heap.IsIntegerValue(iv.V)
	if iv.Sym != nil {
		c.recordOutcome(sym.InSmallIntRange{E: iv.Sym}, outcome)
	}
	return outcome
}

// IntObjectOf tags an in-range integer result.
func (c *Ctx) IntObjectOf(iv IntValue) Value {
	s := iv.Sym
	if s == nil {
		s = sym.IntConst{V: iv.V}
	}
	return Value{W: heap.SmallIntFor(iv.V), Sym: sym.IntObj{E: s}}
}

func intSymOr(iv IntValue) sym.IntExpr {
	if iv.Sym != nil {
		return iv.Sym
	}
	return sym.IntConst{V: iv.V}
}

// IntBinOp applies a binary operator with Smalltalk semantics (floored //
// and \\). Division by zero must be guarded by the caller.
func (c *Ctx) IntBinOp(op sym.BinOp, a, b IntValue) IntValue {
	var v int64
	switch op {
	case sym.OpAdd:
		v = a.V + b.V
	case sym.OpSub:
		v = a.V - b.V
	case sym.OpMul:
		v = a.V * b.V
	case sym.OpDiv:
		v = a.V / b.V
		if (a.V%b.V != 0) && ((a.V < 0) != (b.V < 0)) {
			v--
		}
	case sym.OpMod:
		v = a.V % b.V
		if v != 0 && ((a.V < 0) != (b.V < 0)) {
			v += b.V
		}
	case sym.OpQuo:
		v = a.V / b.V
	case sym.OpBitAnd:
		v = a.V & b.V
	case sym.OpBitOr:
		v = a.V | b.V
	case sym.OpBitXor:
		v = a.V ^ b.V
	case sym.OpShiftLeft:
		v = a.V << uint(b.V&63)
	case sym.OpShiftRight:
		v = a.V >> uint(b.V&63)
	}
	var s sym.IntExpr
	if a.Sym != nil || b.Sym != nil {
		s = sym.IntBin{Op: op, L: intSymOr(a), R: intSymOr(b)}
	}
	return IntValue{V: v, Sym: s}
}

// IntCompare evaluates a comparison and returns the symbolic condition
// describing it (nil when fully concrete). It records nothing: comparison
// byte-codes produce a boolean without branching; guards that do branch
// use GuardIntCompare.
func (c *Ctx) IntCompare(op sym.CmpOp, a, b IntValue) (bool, sym.Constraint) {
	var outcome bool
	switch op {
	case sym.CmpEQ:
		outcome = a.V == b.V
	case sym.CmpNE:
		outcome = a.V != b.V
	case sym.CmpLT:
		outcome = a.V < b.V
	case sym.CmpLE:
		outcome = a.V <= b.V
	case sym.CmpGT:
		outcome = a.V > b.V
	case sym.CmpGE:
		outcome = a.V >= b.V
	}
	var cond sym.Constraint
	if a.Sym != nil || b.Sym != nil {
		cond = sym.ICmp{Op: op, L: intSymOr(a), R: intSymOr(b)}
	}
	return outcome, cond
}

// GuardIntCompare is IntCompare for control flow: the outcome is recorded
// as a path condition.
func (c *Ctx) GuardIntCompare(op sym.CmpOp, a, b IntValue) bool {
	outcome, cond := c.IntCompare(op, a, b)
	if cond != nil {
		c.recordOutcome(cond, outcome)
	}
	return outcome
}

// ---- floats ----

// FloatValueOf unboxes a checked float receiver.
func (c *Ctx) FloatValueOf(v Value) FloatValue {
	f, err := c.OM.FloatValueOf(v.W)
	if err != nil {
		c.invalidMemory()
	}
	return FloatValue{F: f, Sym: floatExprOf(v)}
}

// UnsafeFloatValue unboxes without a type check: on a non-float pointer it
// reads whatever the first body slot holds; on a tagged integer it reads
// heap garbage or faults (the missing-compiled-type-check failure mode).
func (c *Ctx) UnsafeFloatValue(v Value) FloatValue {
	f, err := c.OM.FloatValueOf(v.W)
	if err != nil {
		c.invalidMemory()
	}
	return FloatValue{F: f}
}

func floatSymOr(fv FloatValue) sym.FloatExpr {
	if fv.Sym != nil {
		return fv.Sym
	}
	return sym.FloatConst{V: fv.F}
}

// IntToFloat coerces an integer value (asFloat).
func (c *Ctx) IntToFloat(iv IntValue) FloatValue {
	var s sym.FloatExpr
	if iv.Sym != nil {
		s = sym.IntToFloat{E: iv.Sym}
	}
	return FloatValue{F: float64(iv.V), Sym: s}
}

// FloatBinOp applies float arithmetic.
func (c *Ctx) FloatBinOp(op sym.BinOp, a, b FloatValue) FloatValue {
	var f float64
	switch op {
	case sym.OpAdd:
		f = a.F + b.F
	case sym.OpSub:
		f = a.F - b.F
	case sym.OpMul:
		f = a.F * b.F
	case sym.OpDiv:
		f = a.F / b.F
	}
	var s sym.FloatExpr
	if a.Sym != nil || b.Sym != nil {
		s = sym.FloatBin{Op: op, L: floatSymOr(a), R: floatSymOr(b)}
	}
	return FloatValue{F: f, Sym: s}
}

// FloatCompare evaluates a float comparison without recording.
func (c *Ctx) FloatCompare(op sym.CmpOp, a, b FloatValue) (bool, sym.Constraint) {
	var outcome bool
	if math.IsNaN(a.F) || math.IsNaN(b.F) {
		outcome = op == sym.CmpNE
	} else {
		switch op {
		case sym.CmpEQ:
			outcome = a.F == b.F
		case sym.CmpNE:
			outcome = a.F != b.F
		case sym.CmpLT:
			outcome = a.F < b.F
		case sym.CmpLE:
			outcome = a.F <= b.F
		case sym.CmpGT:
			outcome = a.F > b.F
		case sym.CmpGE:
			outcome = a.F >= b.F
		}
	}
	var cond sym.Constraint
	if a.Sym != nil || b.Sym != nil {
		cond = sym.FCmp{Op: op, L: floatSymOr(a), R: floatSymOr(b)}
	}
	return outcome, cond
}

// NewFloatValue boxes a float result.
func (c *Ctx) NewFloatValue(fv FloatValue) Value {
	oop, err := c.OM.NewFloat(fv.F)
	if err != nil {
		c.invalidMemory()
	}
	s := fv.Sym
	if s == nil {
		s = sym.FloatConst{V: fv.F}
	}
	return Value{W: oop, Sym: sym.FloatObj{E: s}}
}

// ---- object access ----

// SlotCount returns the body slot count of a heap object as an integer
// value carrying the symbolic slotCountOf expression.
func (c *Ctx) SlotCount(v Value) IntValue {
	n := int64(c.OM.SlotCountOf(v.W))
	var s sym.IntExpr
	if vr, ok := varOf(v); ok {
		s = sym.SlotCountOf{V: vr}
	}
	return IntValue{V: n, Sym: s}
}

// slotSym resolves the symbolic identity of a fetched slot value.
func (c *Ctx) slotSym(obj Value, index int, raw heap.Word) sym.ValExpr {
	if c.Tracer == nil {
		return nil
	}
	if _, ok := varOf(obj); !ok {
		return nil
	}
	if sv, ok := c.Tracer.SlotVar(obj.Sym, index); ok {
		return sym.VarRef{V: sv}
	}
	return nil
}

// FetchSlotChecked reads body slot index with a bounds check, recording the
// slot-count condition and exiting InvalidMemoryAccess when out of bounds.
func (c *Ctx) FetchSlotChecked(obj Value, index int) Value {
	slots := c.OM.SlotCountOf(obj.W)
	ok := index >= 0 && index < slots
	if vr, okVar := varOf(obj); okVar {
		c.recordOutcome(sym.SlotCountAtLeast{V: vr, N: index + 1}, ok)
	}
	if !ok {
		c.invalidMemory()
	}
	raw, err := c.OM.FetchSlot(obj.W, index)
	if err != nil {
		c.invalidMemory()
	}
	if c.OM.FormatOf(obj.W) == heap.FormatPointers || c.OM.FormatOf(obj.W) == heap.FormatFixed {
		return Value{W: raw, Sym: c.slotSym(obj, index, raw)}
	}
	// Raw formats (bytes/words) store untagged data; at: answers the
	// tagged integer.
	return c.IntObjectOf(IntValue{V: int64(raw)})
}

// StoreSlotChecked writes body slot index with a bounds check.
func (c *Ctx) StoreSlotChecked(obj Value, index int, v Value) {
	slots := c.OM.SlotCountOf(obj.W)
	ok := index >= 0 && index < slots
	if vr, okVar := varOf(obj); okVar {
		c.recordOutcome(sym.SlotCountAtLeast{V: vr, N: index + 1}, ok)
	}
	if !ok {
		c.invalidMemory()
	}
	raw := v.W
	f := c.OM.FormatOf(obj.W)
	if f == heap.FormatBytes || f == heap.FormatWords {
		// Raw formats store the untagged value.
		raw = heap.Word(heap.SmallIntValue(v.W))
	}
	if err := c.OM.StoreSlot(obj.W, index, raw); err != nil {
		c.invalidMemory()
	}
}

// IdenticalValues is pointer identity (==), recording the strongest
// semantic condition available for the operand shapes.
func (c *Ctx) IdenticalValues(a, b Value) bool {
	outcome := a.W == b.W
	av, aIsVar := varOf(a)
	bv, bIsVar := varOf(b)
	switch {
	case aIsVar && bIsVar:
		c.recordOutcome(sym.Identical{A: av, B: bv}, outcome)
	case aIsVar:
		c.recordIdentityWithKnown(av, a.W, b, outcome)
	case bIsVar:
		c.recordIdentityWithKnown(bv, b.W, a, outcome)
	}
	return outcome
}

// recordIdentityWithKnown records the identity of a variable (whose
// concrete value is varWord) against a non-variable value: nil/true/false
// become type conditions, tagged integers become value equality under a
// type condition.
func (c *Ctx) recordIdentityWithKnown(v *sym.Var, varWord heap.Word, known Value, outcome bool) {
	switch k := known.Sym.(type) {
	case sym.KnownObj:
		var kind sym.TypeKind
		switch k.Name {
		case "nil":
			kind = sym.KindNil
		case "true":
			kind = sym.KindTrue
		case "false":
			kind = sym.KindFalse
		default:
			return
		}
		c.recordOutcome(sym.TypeIs{V: v, Kind: kind}, outcome)
	case sym.IntObj:
		// Identity with a small integer: the variable must be a small
		// integer of equal value. Record stepwise, faithful to the
		// concrete check order.
		vIsInt := heap.IsSmallInt(varWord)
		c.recordOutcome(sym.TypeIs{V: v, Kind: sym.KindSmallInt}, vIsInt)
		if vIsInt {
			c.recordOutcome(sym.ICmp{Op: sym.CmpEQ, L: sym.IntValueOf{V: v}, R: k.E}, outcome)
		}
	}
}
