package interp

import (
	"errors"
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
)

// Runtime executes whole methods on the interpreter, resolving message
// sends through per-class method dictionaries. It is the minimal live
// runtime the examples and the byte-code sequence tester run programs on;
// the differential tester itself only needs single instructions.
type Runtime struct {
	OM    *heap.ObjectMemory
	Prims PrimitiveTable
	// Defects forwards the interpreter-side defect switches.
	Defects DefectSwitches

	// MaxSteps bounds the total executed byte-codes per Send.
	MaxSteps int
	// MaxDepth bounds activation nesting.
	MaxDepth int

	methods map[int]map[string]*bytecode.Method
	steps   int
}

// NewRuntime builds a runtime over an object memory and primitive table.
func NewRuntime(om *heap.ObjectMemory, prims PrimitiveTable) *Runtime {
	return &Runtime{
		OM:       om,
		Prims:    prims,
		MaxSteps: 1 << 20,
		MaxDepth: 256,
		methods:  make(map[int]map[string]*bytecode.Method),
	}
}

// Install registers a method under (class, selector).
func (r *Runtime) Install(classIndex int, selector string, m *bytecode.Method) {
	dict := r.methods[classIndex]
	if dict == nil {
		dict = make(map[string]*bytecode.Method)
		r.methods[classIndex] = dict
	}
	dict[selector] = m
}

// Lookup resolves a selector for a receiver class. Methods installed on
// Object (class index heap.ClassIndexObject) act as a fallback root.
func (r *Runtime) Lookup(classIndex int, selector string) (*bytecode.Method, bool) {
	if m, ok := r.methods[classIndex][selector]; ok {
		return m, true
	}
	if m, ok := r.methods[heap.ClassIndexObject][selector]; ok && classIndex != heap.ClassIndexObject {
		return m, true
	}
	return nil, false
}

// Errors the runtime surfaces.
var (
	ErrDoesNotUnderstand = errors.New("interp: message not understood")
	ErrRuntimeLimit      = errors.New("interp: execution limit exceeded")
	ErrMustBeBoolean     = errors.New("interp: mustBeBoolean")
	ErrBadFrame          = errors.New("interp: invalid frame during method execution")
)

// Send performs a full message send: method lookup, activation, execution
// to completion, answering the return value.
func (r *Runtime) Send(receiver Value, selector string, args ...Value) (Value, error) {
	r.steps = 0
	return r.send(receiver, selector, args, 0)
}

func (r *Runtime) send(receiver Value, selector string, args []Value, depth int) (Value, error) {
	if depth >= r.MaxDepth {
		return Value{}, fmt.Errorf("%w: activation depth %d", ErrRuntimeLimit, depth)
	}
	classIdx := r.OM.ClassIndexOf(receiver.W)
	m, ok := r.Lookup(classIdx, selector)
	if !ok {
		return Value{}, fmt.Errorf("%w: %s>>#%s", ErrDoesNotUnderstand, r.OM.Describe(receiver.W), selector)
	}
	if len(args) != m.NumArgs {
		return Value{}, fmt.Errorf("interp: #%s expects %d arguments, got %d", selector, m.NumArgs, len(args))
	}
	temps := make([]Value, m.TempCount())
	copy(temps, args)
	for i := m.NumArgs; i < len(temps); i++ {
		temps[i] = Value{W: r.OM.NilObj}
	}
	frame := NewFrame(receiver, temps, nil)
	return r.runFrame(frame, m, depth)
}

// runFrame drives one activation to its method return.
func (r *Runtime) runFrame(frame *Frame, m *bytecode.Method, depth int) (Value, error) {
	ctx := NewCtx(r.OM, frame, m)
	ctx.Primitives = r.Prims
	ctx.InterpreterDefects = r.Defects
	for {
		if r.steps++; r.steps > r.MaxSteps {
			return Value{}, fmt.Errorf("%w: %d byte-codes executed", ErrRuntimeLimit, r.MaxSteps)
		}
		if ctx.PC >= len(m.Code) {
			// Falling off the end answers the receiver, like an implicit
			// returnReceiver.
			return frame.Receiver, nil
		}
		exit := RunInstruction(ctx)
		switch exit.Kind {
		case ExitSuccess:
			continue
		case ExitMethodReturn:
			return exit.Result, nil
		case ExitMessageSend:
			if exit.Selector == "mustBeBoolean" {
				return Value{}, ErrMustBeBoolean
			}
			// Pop receiver + arguments off the operand stack, activate,
			// push the answer back, resume after the send.
			n := exit.NumArgs
			args := make([]Value, n)
			for i := n - 1; i >= 0; i-- {
				v, _, ok := frame.StackValue(0)
				if !ok {
					return Value{}, ErrBadFrame
				}
				args[i] = v
				frame.PopN(1)
			}
			rcvr, _, ok := frame.StackValue(0)
			if !ok {
				return Value{}, ErrBadFrame
			}
			frame.PopN(1)
			result, err := r.send(rcvr, exit.Selector, args, depth+1)
			if err != nil {
				return Value{}, err
			}
			frame.Push(result)
		case ExitFailure:
			// Hybrid native methods: the failing primitive falls back to
			// the byte-code body following the callPrimitive instruction.
			continue
		default:
			return Value{}, fmt.Errorf("%w: %v in %s", ErrBadFrame, exit, m.Name)
		}
	}
}

// SendInt is a convenience for integer receivers/arguments.
func (r *Runtime) SendInt(receiver int64, selector string, args ...int64) (Value, error) {
	av := make([]Value, len(args))
	for i, a := range args {
		av[i] = Concrete(heap.SmallIntFor(a))
	}
	return r.Send(Concrete(heap.SmallIntFor(receiver)), selector, av...)
}
