package interp

import (
	"errors"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
)

func newRuntime(t *testing.T) (*Runtime, *heap.ObjectMemory) {
	t.Helper()
	om := heap.NewBootedObjectMemory()
	return NewRuntime(om, nil), om
}

func TestRuntimeSimpleMethod(t *testing.T) {
	r, om := newRuntime(t)
	// SmallInteger >> double: ^self + self
	double := bytecode.NewBuilder("double", 0).
		PushReceiver().PushReceiver().Add().ReturnTop().MustMethod()
	r.Install(heap.ClassIndexSmallInteger, "double", double)

	v, err := r.SendInt(21, "double")
	if err != nil {
		t.Fatal(err)
	}
	if v.W != heap.SmallIntFor(42) {
		t.Fatalf("double(21) = %s", om.Describe(v.W))
	}
}

func TestRuntimeNestedSends(t *testing.T) {
	r, _ := newRuntime(t)
	// inc: ^self + 1 ; twiceInc: ^(self inc) inc
	inc := bytecode.NewBuilder("inc", 0).PushReceiver().PushInt(1).Add().ReturnTop().MustMethod()
	twice := bytecode.NewBuilder("twiceInc", 0).
		PushReceiver().Send("inc", 0).Send("inc", 0).ReturnTop().MustMethod()
	r.Install(heap.ClassIndexSmallInteger, "inc", inc)
	r.Install(heap.ClassIndexSmallInteger, "twiceInc", twice)

	v, err := r.SendInt(5, "twiceInc")
	if err != nil {
		t.Fatal(err)
	}
	if v.W != heap.SmallIntFor(7) {
		t.Fatalf("twiceInc(5) = %v", v.W)
	}
}

func TestRuntimeConditional(t *testing.T) {
	r, _ := newRuntime(t)
	// max: other  ^self > other ifTrue:[self] ifFalse:[other]
	max := bytecode.NewBuilder("max:", 1).
		PushReceiver().PushTemp(0).Op(bytecode.OpPrimGreaterThan).
		JumpIfTrue("self").
		PushTemp(0).ReturnTop().
		Label("self").
		PushReceiver().ReturnTop().
		MustMethod()
	r.Install(heap.ClassIndexSmallInteger, "max:", max)

	for _, c := range []struct{ a, b, want int64 }{{3, 5, 5}, {9, 2, 9}, {-4, -4, -4}} {
		v, err := r.SendInt(c.a, "max:", c.b)
		if err != nil {
			t.Fatal(err)
		}
		if v.W != heap.SmallIntFor(c.want) {
			t.Fatalf("max(%d,%d) = %v, want %d", c.a, c.b, v.W, c.want)
		}
	}
}

func TestRuntimeRecursion(t *testing.T) {
	r, _ := newRuntime(t)
	// fib: ^self < 2 ifTrue:[self] ifFalse:[(self-1) fib + (self-2) fib]
	fib := bytecode.NewBuilder("fib", 0).
		PushReceiver().PushInt(2).LessThan().
		JumpIfFalse("rec").
		PushReceiver().ReturnTop().
		Label("rec").
		PushReceiver().PushInt(1).Subtract().Send("fib", 0).
		PushReceiver().PushInt(2).Subtract().Send("fib", 0).
		Add().ReturnTop().
		MustMethod()
	r.Install(heap.ClassIndexSmallInteger, "fib", fib)

	v, err := r.SendInt(15, "fib")
	if err != nil {
		t.Fatal(err)
	}
	if v.W != heap.SmallIntFor(610) {
		t.Fatalf("fib(15) = %v, want 610", v.W)
	}
}

func TestRuntimeObjectFallback(t *testing.T) {
	r, om := newRuntime(t)
	// Object >> yourself  ^self
	r.Install(heap.ClassIndexObject, "yourself", bytecode.NewBuilder("yourself", 0).ReturnReceiver().MustMethod())
	arr, _ := om.NewArray()
	v, err := r.Send(Concrete(arr), "yourself")
	if err != nil {
		t.Fatal(err)
	}
	if v.W != arr {
		t.Fatal("yourself must answer the receiver")
	}
}

func TestRuntimeDoesNotUnderstand(t *testing.T) {
	r, _ := newRuntime(t)
	if _, err := r.SendInt(1, "nope"); !errors.Is(err, ErrDoesNotUnderstand) {
		t.Fatalf("expected doesNotUnderstand, got %v", err)
	}
}

func TestRuntimeMustBeBoolean(t *testing.T) {
	r, _ := newRuntime(t)
	bad := bytecode.NewBuilder("bad", 0).
		PushInt(5).JumpIfTrue("x").Nop().Label("x").ReturnReceiver().MustMethod()
	r.Install(heap.ClassIndexSmallInteger, "bad", bad)
	if _, err := r.SendInt(1, "bad"); !errors.Is(err, ErrMustBeBoolean) {
		t.Fatalf("expected mustBeBoolean, got %v", err)
	}
}

func TestRuntimeStepLimit(t *testing.T) {
	r, _ := newRuntime(t)
	r.MaxSteps = 100
	// looper: ^self looper
	loop := bytecode.NewBuilder("looper", 0).PushReceiver().Send("looper", 0).ReturnTop().MustMethod()
	r.Install(heap.ClassIndexSmallInteger, "looper", loop)
	if _, err := r.SendInt(1, "looper"); !errors.Is(err, ErrRuntimeLimit) {
		t.Fatalf("expected runtime limit, got %v", err)
	}
}

func TestRuntimeFallOffEndAnswersReceiver(t *testing.T) {
	r, _ := newRuntime(t)
	m := bytecode.NewBuilder("noop", 0).Nop().MustMethod()
	r.Install(heap.ClassIndexSmallInteger, "noop", m)
	v, err := r.SendInt(7, "noop")
	if err != nil {
		t.Fatal(err)
	}
	if v.W != heap.SmallIntFor(7) {
		t.Fatalf("implicit return = %v", v.W)
	}
}

func TestRuntimeArgCountMismatch(t *testing.T) {
	r, _ := newRuntime(t)
	m := bytecode.NewBuilder("one:", 1).PushTemp(0).ReturnTop().MustMethod()
	r.Install(heap.ClassIndexSmallInteger, "one:", m)
	if _, err := r.SendInt(1, "one:"); err == nil {
		t.Fatal("missing argument must error")
	}
}
