package interp

import (
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// Tracer receives the semantic events of an execution. The concolic engine
// installs one to record path constraints; plain concrete execution leaves
// it nil.
type Tracer interface {
	// Record notes that the constraint held on the executed path.
	Record(held sym.Constraint)
	// SlotVar returns the input variable standing for body slot index of
	// the object bound to owner, or false if owner is not an input object.
	SlotVar(owner sym.ValExpr, index int) (*sym.Var, bool)
}

// Ctx is the execution context of the interpreter: the VM state (object
// memory, frame, method, pc) plus the semantic operations instruction
// implementations are written against. Every type check, range check,
// class fetch and stack access goes through Ctx so that one instruction
// source serves both concrete and concolic execution.
type Ctx struct {
	OM     *heap.ObjectMemory
	Frame  *Frame
	Method *bytecode.Method
	PC     int

	Tracer Tracer

	// Primitives dispatches native methods for the callPrimitive
	// byte-code; nil leaves that byte-code unsupported.
	Primitives PrimitiveTable

	// InterpreterDefects enables seeded interpreter-side defects (the
	// paper's "missing interpreter type check" family). The concrete
	// production interpreter runs with them; see internal/defects.
	InterpreterDefects DefectSwitches

	maxStackRecorded int
	literalCache     map[int]Value
}

// PrimitiveTable dispatches a native method by index.
type PrimitiveTable interface {
	// Run executes primitive index against the context. It must finish
	// with an exit panic or return normally after pushing its result.
	Run(ctx *Ctx, index int)
	// Exists reports whether the index is a known native method.
	Exists(index int) bool
}

// DefectSwitches carries the interpreter-relevant defect toggles. The
// zero value is a defect-free interpreter.
type DefectSwitches struct {
	// AsFloatSkipsTypeCheck reproduces the paper's primitiveAsFloat bug
	// (Listing 5): the receiver type assertion is compiled out, so a
	// pointer receiver is coerced through untagging to a garbage float.
	AsFloatSkipsTypeCheck bool
}

// NewCtx builds a context for running method code against frame.
func NewCtx(om *heap.ObjectMemory, frame *Frame, method *bytecode.Method) *Ctx {
	return &Ctx{OM: om, Frame: frame, Method: method}
}

// ---- exits ----

func (c *Ctx) exit(e Exit) { panic(exitSignal{exit: e}) }

// Success terminates the instruction normally; the interpreter loop
// catches it when running a single instruction.
func (c *Ctx) success() { c.exit(Exit{Kind: ExitSuccess, NextPC: c.PC}) }

// NormalSend exits to activate a message send (slow paths, explicit sends).
func (c *Ctx) NormalSend(selector string, numArgs int) {
	c.exit(Exit{Kind: ExitMessageSend, Selector: selector, NumArgs: numArgs})
}

// MethodReturn exits returning v to the caller.
func (c *Ctx) MethodReturn(v Value) {
	c.exit(Exit{Kind: ExitMethodReturn, Result: v, HasResult: true})
}

// PrimFail exits a native method with a failure code.
func (c *Ctx) PrimFail(code int) { c.exit(Exit{Kind: ExitFailure, FailCode: code}) }

// PrimReturn exits a native method successfully with a result.
func (c *Ctx) PrimReturn(v Value) {
	c.exit(Exit{Kind: ExitSuccess, NextPC: c.PC, Result: v, HasResult: true})
}

// Unsupported exits marking the instruction outside prototype coverage.
func (c *Ctx) Unsupported() { c.exit(Exit{Kind: ExitUnsupported}) }

func (c *Ctx) invalidFrame(neededInputs int) {
	c.record(sym.Negate(sym.StackSizeAtLeast{N: neededInputs}))
	c.exit(Exit{Kind: ExitInvalidFrame})
}

func (c *Ctx) invalidMemory() { c.exit(Exit{Kind: ExitInvalidMemoryAccess}) }

// ---- tracing ----

func (c *Ctx) record(held sym.Constraint) {
	if c.Tracer == nil || !constraintHasVars(held) {
		return
	}
	c.Tracer.Record(held)
}

// RecordGuard records a condition that held on this path; native methods
// use it for guards expressed through the non-recording comparison helpers.
func (c *Ctx) RecordGuard(held sym.Constraint) { c.record(held) }

// recordOutcome records cond when outcome holds and its negation otherwise,
// then returns outcome.
func (c *Ctx) recordOutcome(cond sym.Constraint, outcome bool) bool {
	if outcome {
		c.record(cond)
	} else {
		c.record(sym.Negate(cond))
	}
	return outcome
}

// ---- operand stack ----

// StackValue reads the value i entries below the top of the operand stack,
// recording the stack-size requirement and exiting with InvalidFrame on
// underflow.
func (c *Ctx) StackValue(i int) Value {
	v, need, ok := c.Frame.StackValue(i)
	if !ok {
		c.invalidFrame(need)
	}
	if need > c.maxStackRecorded {
		c.record(sym.StackSizeAtLeast{N: need})
		c.maxStackRecorded = need
	}
	return v
}

// Push pushes v.
func (c *Ctx) Push(v Value) { c.Frame.Push(v) }

// PopN pops n values, exiting with InvalidFrame on underflow.
func (c *Ctx) PopN(n int) {
	// Popping requires the cells to exist, same as reading them.
	if n > 0 {
		c.StackValue(n - 1)
	}
	if need, ok := c.Frame.PopN(n); !ok {
		c.invalidFrame(need)
	}
}

// PopThenPush pops n values and pushes v (the internalPop:thenPush: of the
// Pharo interpreter).
func (c *Ctx) PopThenPush(n int, v Value) {
	c.PopN(n)
	c.Push(v)
}

// ---- frame slots ----

// Receiver returns the frame receiver.
func (c *Ctx) Receiver() Value { return c.Frame.Receiver }

// Temp reads temporary i; a missing temp is a malformed frame.
func (c *Ctx) Temp(i int) Value {
	v, ok := c.Frame.Temp(i)
	if !ok {
		c.exit(Exit{Kind: ExitInvalidFrame})
	}
	return v
}

// SetTemp writes temporary i.
func (c *Ctx) SetTemp(i int, v Value) {
	if !c.Frame.SetTemp(i, v) {
		c.exit(Exit{Kind: ExitInvalidFrame})
	}
}

// Arg returns argument i of a native-method activation (arguments are the
// leading temporaries).
func (c *Ctx) Arg(i int) Value { return c.Temp(i) }

// Literal resolves literal index i of the current method to a value.
func (c *Ctx) Literal(i int) Value {
	if v, ok := c.literalCache[i]; ok {
		return v
	}
	lit, err := c.Method.LiteralAt(i)
	if err != nil {
		c.exit(Exit{Kind: ExitInvalidFrame})
	}
	v, err := ResolveLiteral(c.OM, lit)
	if err != nil {
		c.exit(Exit{Kind: ExitInvalidFrame})
	}
	if c.literalCache == nil {
		c.literalCache = make(map[int]Value)
	}
	c.literalCache[i] = v
	return v
}

// ResolveLiteral materializes a method literal in an object memory.
func ResolveLiteral(om *heap.ObjectMemory, lit bytecode.Literal) (Value, error) {
	switch lit.Kind {
	case bytecode.LitInt:
		if !heap.IsIntegerValue(lit.Int) {
			return Value{}, fmt.Errorf("interp: literal %d outside small int range", lit.Int)
		}
		return Value{W: heap.SmallIntFor(lit.Int), Sym: sym.IntObj{E: sym.IntConst{V: lit.Int}}}, nil
	case bytecode.LitFloat:
		oop, err := om.NewFloat(lit.Float)
		if err != nil {
			return Value{}, err
		}
		return Value{W: oop, Sym: sym.FloatObj{E: sym.FloatConst{V: lit.Float}}}, nil
	case bytecode.LitNil:
		return Value{W: om.NilObj, Sym: sym.KnownObj{Name: "nil"}}, nil
	case bytecode.LitTrue:
		return Value{W: om.TrueObj, Sym: sym.KnownObj{Name: "true"}}, nil
	case bytecode.LitFalse:
		return Value{W: om.FalseObj, Sym: sym.KnownObj{Name: "false"}}, nil
	case bytecode.LitString:
		oop, err := om.NewString(lit.Str)
		if err != nil {
			return Value{}, err
		}
		return Value{W: oop, Sym: sym.KnownObj{Name: fmt.Sprintf("%q", lit.Str)}}, nil
	case bytecode.LitSelector:
		oop, err := om.NewString(lit.Str)
		if err != nil {
			return Value{}, err
		}
		return Value{W: oop, Sym: sym.KnownObj{Name: "#" + lit.Str}}, nil
	}
	return Value{}, fmt.Errorf("interp: unknown literal kind %d", lit.Kind)
}

// ---- well-known values ----

// NilValue, TrueValue, FalseValue construct the special constants.
func (c *Ctx) NilValue() Value   { return Value{W: c.OM.NilObj, Sym: sym.KnownObj{Name: "nil"}} }
func (c *Ctx) TrueValue() Value  { return Value{W: c.OM.TrueObj, Sym: sym.KnownObj{Name: "true"}} }
func (c *Ctx) FalseValue() Value { return Value{W: c.OM.FalseObj, Sym: sym.KnownObj{Name: "false"}} }

// ConstInt builds a small-integer constant value.
func (c *Ctx) ConstInt(v int64) Value {
	return Value{W: heap.SmallIntFor(v), Sym: sym.IntObj{E: sym.IntConst{V: v}}}
}

// BoolValue builds the true/false object for outcome, annotated with the
// condition that produced it so jump byte-codes can branch symbolically.
func (c *Ctx) BoolValue(outcome bool, cond sym.Constraint) Value {
	s := sym.ValExpr(sym.KnownObj{Name: fmt.Sprintf("%t", outcome)})
	if cond != nil && constraintHasVars(cond) {
		s = sym.BoolObj{C: cond}
	}
	return Value{W: c.OM.BoolObject(outcome), Sym: s}
}
