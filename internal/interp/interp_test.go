package interp

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
)

// run executes a single instruction concretely against the given frame.
func run(t *testing.T, om *heap.ObjectMemory, m *bytecode.Method, f *Frame) (Exit, *Ctx) {
	t.Helper()
	ctx := NewCtx(om, f, m)
	return RunInstruction(ctx), ctx
}

func intV(v int64) Value { return Concrete(heap.SmallIntFor(v)) }

func TestAddFastPath(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := bytecode.NewBuilder("t", 0).Add().MustMethod()
	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(3), intV(4)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess {
		t.Fatalf("exit %v", exit)
	}
	if f.Size() != 1 || f.Stack[0].W != heap.SmallIntFor(7) {
		t.Fatalf("stack after add: %v", f.Stack)
	}
}

func TestAddOverflowGoesToSend(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := bytecode.NewBuilder("t", 0).Add().MustMethod()
	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(heap.MaxSmallInt), intV(1)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitMessageSend || exit.Selector != "+" || exit.NumArgs != 1 {
		t.Fatalf("overflow should exit to send #+, got %v", exit)
	}
	// The slow path leaves the operands on the stack.
	if f.Size() != 2 {
		t.Fatalf("operands must stay for the send, stack %v", f.Stack)
	}
}

func TestAddNonIntGoesToSend(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	obj := om.MustAllocate(heap.ClassIndexObject, heap.FormatFixed, 0)
	m := bytecode.NewBuilder("t", 0).Add().MustMethod()
	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(1), Concrete(obj)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitMessageSend {
		t.Fatalf("exit %v", exit)
	}
}

func TestAddFloatFastPath(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	f1, _ := om.NewFloat(1.5)
	f2, _ := om.NewFloat(2.25)
	m := bytecode.NewBuilder("t", 0).Add().MustMethod()
	f := NewFrame(Concrete(om.NilObj), nil, []Value{Concrete(f1), Concrete(f2)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess {
		t.Fatalf("exit %v", exit)
	}
	got, _ := om.FloatValueOf(f.Stack[0].W)
	if got != 3.75 {
		t.Fatalf("float add gave %g", got)
	}
}

func TestAddUnderflowIsInvalidFrame(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := bytecode.NewBuilder("t", 0).Add().MustMethod()
	f := NewFrame(Concrete(om.NilObj), nil, nil)
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitInvalidFrame {
		t.Fatalf("exit %v", exit)
	}
}

func TestPushConstants(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	cases := []struct {
		op   bytecode.Op
		want heap.Word
	}{
		{bytecode.OpPushConstantTrue, om.TrueObj},
		{bytecode.OpPushConstantFalse, om.FalseObj},
		{bytecode.OpPushConstantNil, om.NilObj},
		{bytecode.OpPushConstantZero, heap.SmallIntFor(0)},
		{bytecode.OpPushConstantOne, heap.SmallIntFor(1)},
		{bytecode.OpPushConstantMinusOne, heap.SmallIntFor(-1)},
		{bytecode.OpPushConstantTwo, heap.SmallIntFor(2)},
	}
	for _, cse := range cases {
		m := &bytecode.Method{Name: "t", Code: []byte{byte(cse.op)}}
		f := NewFrame(Concrete(om.NilObj), nil, nil)
		exit, _ := run(t, om, m, f)
		if exit.Kind != ExitSuccess || f.Size() != 1 || f.Stack[0].W != cse.want {
			t.Errorf("op %v: exit %v stack %v", cse.op, exit, f.Stack)
		}
	}
}

func TestTempAccess(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := bytecode.NewBuilder("t", 1).PushTemp(0).MustMethod()
	f := NewFrame(Concrete(om.NilObj), []Value{intV(9)}, nil)
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Stack[0].W != heap.SmallIntFor(9) {
		t.Fatalf("pushTemp failed: %v %v", exit, f.Stack)
	}

	m2 := &bytecode.Method{Name: "t", NumArgs: 1, Code: []byte{byte(bytecode.OpPopIntoTemporaryVariable0)}}
	f2 := NewFrame(Concrete(om.NilObj), []Value{intV(0)}, []Value{intV(5)})
	exit2, _ := run(t, om, m2, f2)
	if exit2.Kind != ExitSuccess || f2.Temps[0].W != heap.SmallIntFor(5) || f2.Size() != 0 {
		t.Fatalf("popIntoTemp failed: %v", exit2)
	}
}

func TestReceiverVariableAccess(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	obj := om.MustAllocate(heap.ClassIndexObject, heap.FormatFixed, 2)
	om.StoreSlot(obj, 1, heap.SmallIntFor(42))
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPushReceiverVariable0 + 1)}}
	f := NewFrame(Concrete(obj), nil, nil)
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Stack[0].W != heap.SmallIntFor(42) {
		t.Fatalf("pushReceiverVariable: %v %v", exit, f.Stack)
	}

	// Out-of-bounds access is an InvalidMemoryAccess exit.
	m2 := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPushReceiverVariable0 + 5)}}
	f2 := NewFrame(Concrete(obj), nil, nil)
	exit2, _ := run(t, om, m2, f2)
	if exit2.Kind != ExitInvalidMemoryAccess {
		t.Fatalf("OOB slot access: %v", exit2)
	}
}

func TestComparisonPushesBoolean(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := bytecode.NewBuilder("t", 0).LessThan().MustMethod()
	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(3), intV(4)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Stack[0].W != om.TrueObj {
		t.Fatalf("3 < 4 should push true: %v %v", exit, f.Stack)
	}
}

func TestDivideExactAndInexact(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := bytecode.NewBuilder("t", 0).Divide().MustMethod()

	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(8), intV(2)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Stack[0].W != heap.SmallIntFor(4) {
		t.Fatalf("8/2: %v %v", exit, f.Stack)
	}

	f2 := NewFrame(Concrete(om.NilObj), nil, []Value{intV(7), intV(2)})
	exit2, _ := run(t, om, m, f2)
	if exit2.Kind != ExitMessageSend {
		t.Fatalf("7/2 must take the send path: %v", exit2)
	}

	f3 := NewFrame(Concrete(om.NilObj), nil, []Value{intV(7), intV(0)})
	exit3, _ := run(t, om, m, f3)
	if exit3.Kind != ExitMessageSend {
		t.Fatalf("division by zero must take the send path: %v", exit3)
	}
}

func TestBitwiseNegativeFallsBack(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPrimBitAnd)}}
	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(6), intV(3)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Stack[0].W != heap.SmallIntFor(2) {
		t.Fatalf("6 bitAnd 3: %v %v", exit, f.Stack)
	}

	f2 := NewFrame(Concrete(om.NilObj), nil, []Value{intV(-6), intV(3)})
	exit2, _ := run(t, om, m, f2)
	if exit2.Kind != ExitMessageSend {
		t.Fatalf("negative bitAnd must fall back to a send: %v", exit2)
	}
}

func TestBitShift(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPrimBitShift)}}

	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(3), intV(4)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Stack[0].W != heap.SmallIntFor(48) {
		t.Fatalf("3 << 4: %v %v", exit, f.Stack)
	}

	f2 := NewFrame(Concrete(om.NilObj), nil, []Value{intV(48), intV(-4)})
	exit2, _ := run(t, om, m, f2)
	if exit2.Kind != ExitSuccess || f2.Stack[0].W != heap.SmallIntFor(3) {
		t.Fatalf("48 >> 4: %v %v", exit2, f2.Stack)
	}

	f3 := NewFrame(Concrete(om.NilObj), nil, []Value{intV(1), intV(40)})
	exit3, _ := run(t, om, m, f3)
	if exit3.Kind != ExitMessageSend {
		t.Fatalf("overflowing shift must send: %v", exit3)
	}
}

func TestIdentical(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPrimIdentical)}}
	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(3), intV(3)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Stack[0].W != om.TrueObj {
		t.Fatalf("3 == 3: %v", exit)
	}
	f2 := NewFrame(Concrete(om.NilObj), nil, []Value{intV(3), Concrete(om.NilObj)})
	exit2, _ := run(t, om, m, f2)
	if exit2.Kind != ExitSuccess || f2.Stack[0].W != om.FalseObj {
		t.Fatalf("3 == nil: %v", exit2)
	}
}

func TestSizeAndAt(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	arr, _ := om.NewArray(heap.SmallIntFor(10), heap.SmallIntFor(20))

	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPrimSize)}}
	f := NewFrame(Concrete(om.NilObj), nil, []Value{Concrete(arr)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Stack[0].W != heap.SmallIntFor(2) {
		t.Fatalf("size: %v %v", exit, f.Stack)
	}

	mAt := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPrimAt)}}
	f2 := NewFrame(Concrete(om.NilObj), nil, []Value{Concrete(arr), intV(2)})
	exit2, _ := run(t, om, mAt, f2)
	if exit2.Kind != ExitSuccess || f2.Stack[0].W != heap.SmallIntFor(20) {
		t.Fatalf("at: %v %v", exit2, f2.Stack)
	}

	// Index out of bounds takes the send path (safe fallback).
	f3 := NewFrame(Concrete(om.NilObj), nil, []Value{Concrete(arr), intV(3)})
	exit3, _ := run(t, om, mAt, f3)
	if exit3.Kind != ExitMessageSend {
		t.Fatalf("at: OOB must send: %v", exit3)
	}
}

func TestAtPut(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	arr, _ := om.NewArray(heap.SmallIntFor(10), heap.SmallIntFor(20))
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPrimAtPut)}}
	f := NewFrame(Concrete(om.NilObj), nil, []Value{Concrete(arr), intV(1), intV(99)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess {
		t.Fatalf("atPut: %v", exit)
	}
	got, _ := om.FetchSlot(arr, 0)
	if got != heap.SmallIntFor(99) {
		t.Fatalf("slot not stored: %v", got)
	}
	if f.Size() != 1 || f.Stack[0].W != heap.SmallIntFor(99) {
		t.Fatalf("at:put: must push the stored value: %v", f.Stack)
	}
}

func TestJumps(t *testing.T) {
	om := heap.NewBootedObjectMemory()

	// Unconditional jump skips bytes.
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpShortJump1 + 1), 0, 0, byte(bytecode.OpNop)}}
	f := NewFrame(Concrete(om.NilObj), nil, nil)
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || exit.NextPC != 3 {
		t.Fatalf("jump: %v", exit)
	}

	// Conditional jump on true.
	m2 := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpShortJumpIfTrue1), 0}}
	f2 := NewFrame(Concrete(om.NilObj), nil, []Value{Concrete(om.TrueObj)})
	exit2, _ := run(t, om, m2, f2)
	if exit2.Kind != ExitSuccess || exit2.NextPC != 2 {
		t.Fatalf("jumpIfTrue taken: %v", exit2)
	}

	// Conditional jump on false does not branch.
	f3 := NewFrame(Concrete(om.NilObj), nil, []Value{Concrete(om.FalseObj)})
	exit3, _ := run(t, om, m2, f3)
	if exit3.Kind != ExitSuccess || exit3.NextPC != 1 {
		t.Fatalf("jumpIfTrue not taken: %v", exit3)
	}

	// Non-boolean condition sends #mustBeBoolean.
	f4 := NewFrame(Concrete(om.NilObj), nil, []Value{intV(5)})
	exit4, _ := run(t, om, m2, f4)
	if exit4.Kind != ExitMessageSend || exit4.Selector != "mustBeBoolean" {
		t.Fatalf("non-boolean jump: %v", exit4)
	}
}

func TestReturns(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpReturnTop)}}
	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(5)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitMethodReturn || exit.Result.W != heap.SmallIntFor(5) {
		t.Fatalf("returnTop: %v", exit)
	}

	m2 := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpReturnTrue)}}
	f2 := NewFrame(Concrete(om.NilObj), nil, nil)
	exit2, _ := run(t, om, m2, f2)
	if exit2.Kind != ExitMethodReturn || exit2.Result.W != om.TrueObj {
		t.Fatalf("returnTrue: %v", exit2)
	}
}

func TestSendExit(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := bytecode.NewBuilder("t", 0).PushInt(1).PushInt(2).Send("max:", 1).MustMethod()
	f := NewFrame(Concrete(om.NilObj), nil, nil)
	ctx := NewCtx(om, f, m)
	// Run the two pushes then the send.
	for i := 0; i < 2; i++ {
		if e := RunInstruction(ctx); e.Kind != ExitSuccess {
			t.Fatalf("push %d: %v", i, e)
		}
	}
	exit := RunInstruction(ctx)
	if exit.Kind != ExitMessageSend || exit.Selector != "max:" || exit.NumArgs != 1 {
		t.Fatalf("send: %v", exit)
	}
}

func TestPushThisContextUnsupported(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPushThisContext)}}
	f := NewFrame(Concrete(om.NilObj), nil, nil)
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitUnsupported {
		t.Fatalf("pushThisContext: %v", exit)
	}
}

func TestDupAndPop(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpDuplicateTop)}}
	f := NewFrame(Concrete(om.NilObj), nil, []Value{intV(5)})
	exit, _ := run(t, om, m, f)
	if exit.Kind != ExitSuccess || f.Size() != 2 {
		t.Fatalf("dup: %v %v", exit, f.Stack)
	}

	mp := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPopStackTop)}}
	f2 := NewFrame(Concrete(om.NilObj), nil, nil)
	exit2, _ := run(t, om, mp, f2)
	if exit2.Kind != ExitInvalidFrame {
		t.Fatalf("pop on empty: %v", exit2)
	}
}

func TestFrameCloneIndependence(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	f := NewFrame(Concrete(om.NilObj), []Value{intV(1)}, []Value{intV(2)})
	cp := f.Clone()
	f.Push(intV(3))
	f.SetTemp(0, intV(9))
	if cp.Size() != 1 || cp.Temps[0].W != heap.SmallIntFor(1) {
		t.Fatal("clone shares state with original")
	}
}
