package interp

import (
	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// RunInstruction executes exactly one byte-code instruction at ctx.PC and
// returns its exit condition. Reaching the end of the instruction without
// an explicit exit is the Success exit (fetchNextBytecode).
func RunInstruction(ctx *Ctx) (exit Exit) {
	defer func() {
		if r := recover(); r != nil {
			s, ok := r.(exitSignal)
			if !ok {
				panic(r)
			}
			exit = s.exit
		}
	}()
	op, operands, next, ok := ctx.Method.FetchOp(ctx.PC)
	if !ok {
		return Exit{Kind: ExitUnsupported}
	}
	ctx.PC = next
	ctx.dispatch(op, operands)
	return Exit{Kind: ExitSuccess, NextPC: ctx.PC}
}

// RunPrimitive executes one native method against ctx and returns its exit
// condition. Native methods always finish through an explicit exit
// (PrimReturn, PrimFail, or a frame/memory exit).
func RunPrimitive(ctx *Ctx, table PrimitiveTable, index int) (exit Exit) {
	defer func() {
		if r := recover(); r != nil {
			s, ok := r.(exitSignal)
			if !ok {
				panic(r)
			}
			exit = s.exit
		}
	}()
	table.Run(ctx, index)
	return Exit{Kind: ExitFailure, FailCode: 0}
}

// dispatch routes an opcode to its family implementation.
func (c *Ctx) dispatch(op bytecode.Op, operands []byte) {
	d := bytecode.Describe(op)
	switch d.Family {
	case bytecode.FamPushReceiverVariable:
		c.bcPushReceiverVariable(d.Embedded)
	case bytecode.FamPushTemporaryVariable:
		c.Push(c.Temp(d.Embedded))
	case bytecode.FamStoreReceiverVariable:
		c.bcStoreReceiverVariable(d.Embedded, false)
	case bytecode.FamPopIntoReceiverVariable:
		c.bcStoreReceiverVariable(d.Embedded, true)
	case bytecode.FamStoreTemporaryVariable:
		c.SetTemp(d.Embedded, c.StackValue(0))
	case bytecode.FamPopIntoTemporaryVariable:
		v := c.StackValue(0)
		c.PopN(1)
		c.SetTemp(d.Embedded, v)
	case bytecode.FamPushLiteralConstant:
		c.Push(c.Literal(d.Embedded))
	case bytecode.FamPushReceiver:
		c.Push(c.Receiver())
	case bytecode.FamPushConstant:
		c.bcPushConstant(d.Embedded)
	case bytecode.FamDuplicateTop:
		c.Push(c.StackValue(0))
	case bytecode.FamPopStackTop:
		c.PopN(1)
	case bytecode.FamNop:
		// nothing
	case bytecode.FamPushThisContext:
		// Stack-frame reification is outside prototype coverage (§4.3).
		c.Unsupported()
	case bytecode.FamPrimAdd:
		c.bcArithmetic(sym.OpAdd, "+")
	case bytecode.FamPrimSubtract:
		c.bcArithmetic(sym.OpSub, "-")
	case bytecode.FamPrimMultiply:
		c.bcArithmetic(sym.OpMul, "*")
	case bytecode.FamPrimDivide:
		c.bcDivide()
	case bytecode.FamPrimDiv:
		c.bcFlooredDivision(sym.OpDiv, "//")
	case bytecode.FamPrimMod:
		c.bcFlooredDivision(sym.OpMod, "\\\\")
	case bytecode.FamPrimBitAnd:
		c.bcBitwise(sym.OpBitAnd, "bitAnd:")
	case bytecode.FamPrimBitOr:
		c.bcBitwise(sym.OpBitOr, "bitOr:")
	case bytecode.FamPrimBitXor:
		c.bcBitwise(sym.OpBitXor, "bitXor:")
	case bytecode.FamPrimBitShift:
		c.bcBitShift()
	case bytecode.FamPrimLessThan:
		c.bcComparison(sym.CmpLT, "<")
	case bytecode.FamPrimGreaterThan:
		c.bcComparison(sym.CmpGT, ">")
	case bytecode.FamPrimLessOrEqual:
		c.bcComparison(sym.CmpLE, "<=")
	case bytecode.FamPrimGreaterOrEqual:
		c.bcComparison(sym.CmpGE, ">=")
	case bytecode.FamPrimEqual:
		c.bcComparison(sym.CmpEQ, "=")
	case bytecode.FamPrimNotEqual:
		c.bcComparison(sym.CmpNE, "~=")
	case bytecode.FamPrimIdentical:
		c.bcIdentical(false)
	case bytecode.FamPrimNotIdentical:
		c.bcIdentical(true)
	case bytecode.FamPrimClass:
		c.bcClass()
	case bytecode.FamPrimSize:
		c.bcSize()
	case bytecode.FamPrimAt:
		c.bcAt()
	case bytecode.FamPrimAtPut:
		c.bcAtPut()
	case bytecode.FamShortJump, bytecode.FamShortJumpIfTrue, bytecode.FamShortJumpIfFalse, bytecode.FamLongJumpForward:
		c.bcJump(op, operands)
	case bytecode.FamReturnSpecial:
		c.bcReturnSpecial(d.Embedded)
	case bytecode.FamReturnTop:
		v := c.StackValue(0)
		c.PopN(1)
		c.MethodReturn(v)
	case bytecode.FamSend0Args, bytecode.FamSend1Arg, bytecode.FamSend2Args:
		c.bcSend(op, d.Embedded)
	case bytecode.FamCallPrimitive:
		c.bcCallPrimitive(int(operands[0]) | int(operands[1])<<8)
	default:
		c.Unsupported()
	}
}

func (c *Ctx) bcPushReceiverVariable(i int) {
	// Byte-codes are unsafe by design: the bounds condition is recorded by
	// the checked fetch, and an out-of-bounds access exits with
	// InvalidMemoryAccess (an *expected failure* for byte-codes, §3.4).
	c.Push(c.FetchSlotChecked(c.Receiver(), i))
}

func (c *Ctx) bcStoreReceiverVariable(i int, pop bool) {
	v := c.StackValue(0)
	if pop {
		c.PopN(1)
	}
	c.StoreSlotChecked(c.Receiver(), i, v)
}

func (c *Ctx) bcPushConstant(embedded int) {
	switch embedded {
	case 0:
		c.Push(c.TrueValue())
	case 1:
		c.Push(c.FalseValue())
	case 2:
		c.Push(c.NilValue())
	case 3:
		c.Push(c.ConstInt(0))
	case 4:
		c.Push(c.ConstInt(1))
	case 5:
		c.Push(c.ConstInt(-1))
	case 6:
		c.Push(c.ConstInt(2))
	}
}

// bcArithmetic is the static-type-prediction arithmetic of Listing 1,
// extended with the float fast path the Pharo interpreter also inlines
// (§5.3 "optimization difference"): integers first, then floats, then the
// message-send slow path.
func (c *Ctx) bcArithmetic(op sym.BinOp, selector string) {
	rcvr := c.StackValue(1)
	arg := c.StackValue(0)
	if c.AreIntegers(rcvr, arg) {
		result := c.IntBinOp(op, c.SmallIntValue(rcvr), c.SmallIntValue(arg))
		if c.IsIntegerValue(result) {
			c.PopThenPush(2, c.IntObjectOf(result))
			return // fetchNextBytecode: success
		}
	} else if c.AreFloats(rcvr, arg) {
		result := c.FloatBinOp(op, c.FloatValueOf(rcvr), c.FloatValueOf(arg))
		c.PopThenPush(2, c.NewFloatValue(result))
		return
	}
	// Slow path, message send.
	c.NormalSend(selector, 1)
}

func (c *Ctx) bcDivide() {
	rcvr := c.StackValue(1)
	arg := c.StackValue(0)
	if c.AreIntegers(rcvr, arg) {
		a, b := c.SmallIntValue(rcvr), c.SmallIntValue(arg)
		if c.GuardIntCompare(sym.CmpNE, b, IntValue{V: 0}) {
			// Smalltalk / succeeds on integers only for exact division.
			rem := c.IntBinOp(sym.OpMod, a, b)
			if c.GuardIntCompare(sym.CmpEQ, rem, IntValue{V: 0}) {
				q := c.IntBinOp(sym.OpDiv, a, b)
				if c.IsIntegerValue(q) {
					c.PopThenPush(2, c.IntObjectOf(q))
					return
				}
			}
		}
	} else if c.AreFloats(rcvr, arg) {
		result := c.FloatBinOp(sym.OpDiv, c.FloatValueOf(rcvr), c.FloatValueOf(arg))
		c.PopThenPush(2, c.NewFloatValue(result))
		return
	}
	c.NormalSend("/", 1)
}

func (c *Ctx) bcFlooredDivision(op sym.BinOp, selector string) {
	rcvr := c.StackValue(1)
	arg := c.StackValue(0)
	if c.AreIntegers(rcvr, arg) {
		a, b := c.SmallIntValue(rcvr), c.SmallIntValue(arg)
		if c.GuardIntCompare(sym.CmpNE, b, IntValue{V: 0}) {
			r := c.IntBinOp(op, a, b)
			if c.IsIntegerValue(r) {
				c.PopThenPush(2, c.IntObjectOf(r))
				return
			}
		}
	}
	c.NormalSend(selector, 1)
}

// bcBitwise implements the inlined bitwise byte-codes. The interpreter
// falls back to library code for negative operands (§5.3 "behavioral
// difference": compiled code treats them as unsigned instead).
func (c *Ctx) bcBitwise(op sym.BinOp, selector string) {
	rcvr := c.StackValue(1)
	arg := c.StackValue(0)
	if c.AreIntegers(rcvr, arg) {
		a, b := c.SmallIntValue(rcvr), c.SmallIntValue(arg)
		if c.GuardIntCompare(sym.CmpGE, a, IntValue{V: 0}) &&
			c.GuardIntCompare(sym.CmpGE, b, IntValue{V: 0}) {
			c.PopThenPush(2, c.IntObjectOf(c.IntBinOp(op, a, b)))
			return
		}
	}
	c.NormalSend(selector, 1)
}

func (c *Ctx) bcBitShift() {
	rcvr := c.StackValue(1)
	arg := c.StackValue(0)
	if c.AreIntegers(rcvr, arg) {
		a, b := c.SmallIntValue(rcvr), c.SmallIntValue(arg)
		if c.GuardIntCompare(sym.CmpGE, a, IntValue{V: 0}) {
			if c.GuardIntCompare(sym.CmpGE, b, IntValue{V: 0}) {
				// Left shift with overflow check; shifts beyond the word
				// width always overflow.
				if c.GuardIntCompare(sym.CmpLE, b, IntValue{V: 31}) {
					r := c.IntBinOp(sym.OpShiftLeft, a, b)
					if c.IsIntegerValue(r) {
						c.PopThenPush(2, c.IntObjectOf(r))
						return
					}
				}
			} else if c.GuardIntCompare(sym.CmpGE, b, IntValue{V: -31}) {
				neg := c.IntBinOp(sym.OpSub, IntValue{V: 0}, b)
				r := c.IntBinOp(sym.OpShiftRight, a, neg)
				c.PopThenPush(2, c.IntObjectOf(r))
				return
			}
		}
	}
	c.NormalSend("bitShift:", 1)
}

func (c *Ctx) bcComparison(op sym.CmpOp, selector string) {
	rcvr := c.StackValue(1)
	arg := c.StackValue(0)
	if c.AreIntegers(rcvr, arg) {
		outcome, cond := c.IntCompare(op, c.SmallIntValue(rcvr), c.SmallIntValue(arg))
		c.PopThenPush(2, c.BoolValue(outcome, cond))
		return
	}
	if c.AreFloats(rcvr, arg) {
		outcome, cond := c.FloatCompare(op, c.FloatValueOf(rcvr), c.FloatValueOf(arg))
		c.PopThenPush(2, c.BoolValue(outcome, cond))
		return
	}
	c.NormalSend(selector, 1)
}

func (c *Ctx) bcIdentical(negated bool) {
	rcvr := c.StackValue(1)
	arg := c.StackValue(0)
	outcome := c.IdenticalValues(rcvr, arg)
	if negated {
		outcome = !outcome
	}
	c.PopThenPush(2, c.BoolValue(outcome, nil))
}

func (c *Ctx) bcClass() {
	v := c.StackValue(0)
	idx := c.OM.ClassIndexOf(v.W)
	cd := c.OM.ClassAt(idx)
	if cd == nil {
		c.NormalSend("class", 0)
	}
	c.PopThenPush(1, Value{W: cd.Oop, Sym: sym.KnownObj{Name: "class " + cd.Name}})
}

func (c *Ctx) bcSize() {
	v := c.StackValue(0)
	if c.IsSmallInt(v) {
		c.NormalSend("size", 0)
	}
	if !c.IsIndexable(v) {
		c.NormalSend("size", 0)
	}
	c.PopThenPush(1, c.IntObjectOf(c.SlotCount(v)))
}

func (c *Ctx) bcAt() {
	rcvr := c.StackValue(1)
	idx := c.StackValue(0)
	if !c.IsSmallInt(idx) || c.IsSmallInt(rcvr) || !c.IsIndexable(rcvr) {
		c.NormalSend("at:", 1)
	}
	i := c.SmallIntValue(idx)
	if c.GuardIntCompare(sym.CmpGE, i, IntValue{V: 1}) &&
		c.GuardIntCompare(sym.CmpLE, i, c.SlotCount(rcvr)) {
		v := c.FetchSlotChecked(rcvr, int(i.V-1))
		c.PopThenPush(2, v)
		return
	}
	c.NormalSend("at:", 1)
}

func (c *Ctx) bcAtPut() {
	rcvr := c.StackValue(2)
	idx := c.StackValue(1)
	val := c.StackValue(0)
	if !c.IsSmallInt(idx) || c.IsSmallInt(rcvr) || !c.IsIndexable(rcvr) {
		c.NormalSend("at:put:", 2)
	}
	f := c.OM.FormatOf(rcvr.W)
	if f == heap.FormatBytes || f == heap.FormatWords {
		if !c.IsSmallInt(val) {
			c.NormalSend("at:put:", 2)
		}
	}
	i := c.SmallIntValue(idx)
	if c.GuardIntCompare(sym.CmpGE, i, IntValue{V: 1}) &&
		c.GuardIntCompare(sym.CmpLE, i, c.SlotCount(rcvr)) {
		c.StoreSlotChecked(rcvr, int(i.V-1), val)
		c.PopThenPush(3, val)
		return
	}
	c.NormalSend("at:put:", 2)
}

// branchDecision classifies the popped jump operand.
type branchDecision int

const (
	branchTrue branchDecision = iota
	branchFalse
	branchNonBoolean
)

// decideBranch pops the condition value and classifies it, recording the
// boolean conditions that held.
func (c *Ctx) decideBranch() branchDecision {
	v := c.StackValue(0)
	c.PopN(1)
	switch s := v.Sym.(type) {
	case sym.BoolObj:
		// A boolean derived from an inlined comparison: the branch
		// condition is the comparison itself.
		if v.W == c.OM.TrueObj {
			c.record(s.C)
			return branchTrue
		}
		c.record(sym.Negate(s.C))
		return branchFalse
	case sym.VarRef:
		if v.W == c.OM.TrueObj {
			c.recordOutcome(sym.TypeIs{V: s.V, Kind: sym.KindTrue}, true)
			return branchTrue
		}
		c.recordOutcome(sym.TypeIs{V: s.V, Kind: sym.KindTrue}, false)
		if v.W == c.OM.FalseObj {
			c.recordOutcome(sym.TypeIs{V: s.V, Kind: sym.KindFalse}, true)
			return branchFalse
		}
		c.recordOutcome(sym.TypeIs{V: s.V, Kind: sym.KindFalse}, false)
		return branchNonBoolean
	default:
		switch v.W {
		case c.OM.TrueObj:
			return branchTrue
		case c.OM.FalseObj:
			return branchFalse
		default:
			return branchNonBoolean
		}
	}
}

func (c *Ctx) bcJump(op bytecode.Op, operands []byte) {
	var operand byte
	if len(operands) > 0 {
		operand = operands[0]
	}
	off, conditional, onTrue, _ := bytecode.JumpOffset(op, operand)
	if !conditional {
		c.PC += off
		return
	}
	switch c.decideBranch() {
	case branchTrue:
		if onTrue {
			c.PC += off
		}
	case branchFalse:
		if !onTrue {
			c.PC += off
		}
	case branchNonBoolean:
		c.NormalSend("mustBeBoolean", 0)
	}
}

func (c *Ctx) bcReturnSpecial(embedded int) {
	switch embedded {
	case 0:
		c.MethodReturn(c.Receiver())
	case 1:
		c.MethodReturn(c.TrueValue())
	case 2:
		c.MethodReturn(c.FalseValue())
	case 3:
		c.MethodReturn(c.NilValue())
	}
}

func (c *Ctx) bcSend(op bytecode.Op, literalIndex int) {
	numArgs, _ := bytecode.ArgCountOfSend(op)
	lit, err := c.Method.LiteralAt(literalIndex)
	if err != nil || lit.Kind != bytecode.LitSelector {
		c.exit(Exit{Kind: ExitInvalidFrame})
	}
	// The receiver and arguments must exist on the operand stack.
	c.StackValue(numArgs)
	c.NormalSend(lit.Str, numArgs)
}

func (c *Ctx) bcCallPrimitive(index int) {
	if c.Primitives == nil || !c.Primitives.Exists(index) {
		c.Unsupported()
	}
	c.Primitives.Run(c, index)
}
