package interp

// SemanticsVersion stamps the interpreter's observable semantics. Any
// change to instruction behaviour, exit conditions, frame layout or the
// path conditions it records must bump this, orphaning all cached
// explorations derived from the old semantics (internal/excache keys
// embed it).
const SemanticsVersion = "interp/1"
