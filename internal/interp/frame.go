package interp

import "fmt"

// Frame is an interpreter activation: receiver, temporaries (arguments
// followed by locals) and the operand stack.
//
// The operand stack distinguishes *input* cells (present when the
// instruction under test starts) from cells the instruction pushed itself:
// stack-size path conditions are only recorded against input cells,
// matching the paper's abstract input frames (Fig. 2). Input cells sit at
// the bottom; pops consume pushed cells first.
type Frame struct {
	Receiver Value
	Temps    []Value
	Stack    []Value

	// initialInputs is the operand stack depth when execution started.
	initialInputs int
	// inputRemaining counts input cells still on the stack.
	inputRemaining int
}

// NewFrame creates a frame whose operand stack holds the given input cells
// (bottom first).
func NewFrame(receiver Value, temps, stack []Value) *Frame {
	return &Frame{
		Receiver:       receiver,
		Temps:          append([]Value(nil), temps...),
		Stack:          append([]Value(nil), stack...),
		initialInputs:  len(stack),
		inputRemaining: len(stack),
	}
}

// Clone deep-copies the frame. Input and output constraint frames must be
// distinct copies because instructions have side effects (§3.2).
func (f *Frame) Clone() *Frame {
	cp := *f
	cp.Temps = append([]Value(nil), f.Temps...)
	cp.Stack = append([]Value(nil), f.Stack...)
	return &cp
}

// Size returns the operand stack depth.
func (f *Frame) Size() int { return len(f.Stack) }

// InitialInputs returns the operand stack depth at instruction start.
func (f *Frame) InitialInputs() int { return f.initialInputs }

// Push appends a value to the operand stack.
func (f *Frame) Push(v Value) { f.Stack = append(f.Stack, v) }

// StackValue reads the value i entries below the top.
//
// On success, inputNeed is the 1-based *initial* stack depth this access
// required (0 if the cell was pushed by the instruction itself). On
// underflow ok is false and inputNeed is the initial depth that would have
// satisfied the access.
func (f *Frame) StackValue(i int) (v Value, inputNeed int, ok bool) {
	idx := len(f.Stack) - 1 - i
	if idx < 0 {
		// Pushes and pops since instruction start are deterministic, so
		// satisfying this access requires the *initial* stack to have
		// been deeper by -idx cells.
		return Value{}, f.initialInputs - idx, false
	}
	if idx < f.inputRemaining {
		// Reaching input cell idx through depth i requires the initial
		// stack to hold initialInputs - idx cells.
		return f.Stack[idx], f.initialInputs - idx, true
	}
	return f.Stack[idx], 0, true
}

// PopN removes n values. On underflow ok is false and inputNeed is the
// initial stack depth that would have satisfied the pops.
func (f *Frame) PopN(n int) (inputNeed int, ok bool) {
	if n > len(f.Stack) {
		return f.initialInputs + (n - len(f.Stack)), false
	}
	f.Stack = f.Stack[:len(f.Stack)-n]
	if len(f.Stack) < f.inputRemaining {
		f.inputRemaining = len(f.Stack)
	}
	return 0, true
}

// Temp returns temporary i; ok=false when the frame has no such temp.
func (f *Frame) Temp(i int) (Value, bool) {
	if i < 0 || i >= len(f.Temps) {
		return Value{}, false
	}
	return f.Temps[i], true
}

// SetTemp stores temporary i.
func (f *Frame) SetTemp(i int, v Value) bool {
	if i < 0 || i >= len(f.Temps) {
		return false
	}
	f.Temps[i] = v
	return true
}

func (f *Frame) String() string {
	return fmt.Sprintf("frame(temps=%d stack=%d inputs=%d/%d)", len(f.Temps), len(f.Stack), f.inputRemaining, f.initialInputs)
}
