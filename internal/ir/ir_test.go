package ir

import (
	"strings"
	"testing"
)

func TestBuilderFinishValidatesLabels(t *testing.T) {
	b := NewBuilder()
	b.Jump(OpcJmp, "nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("jump to an undefined label must fail Finish")
	}

	b = NewBuilder()
	b.Label("twice")
	b.Label("twice")
	if _, err := b.Finish(); err == nil {
		t.Fatal("duplicate label must fail Finish")
	}

	b = NewBuilder()
	b.Label("ok")
	b.Jump(OpcJeq, "ok")
	b.Ret()
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fn.Instrs); got != 3 {
		t.Fatalf("got %d instructions, want 3 (label + jump + ret)", got)
	}
	if fn.NumInstrs() != 2 {
		t.Fatalf("NumInstrs = %d, want 2 (labels excluded)", fn.NumInstrs())
	}
}

func TestVirtualRegisters(t *testing.T) {
	v3 := V(3)
	if !v3.IsVirtual() || v3.VirtualIndex() != 3 {
		t.Fatalf("V(3) = %s: IsVirtual %v, index %d", v3, v3.IsVirtual(), v3.VirtualIndex())
	}
	if v3.String() != "v3" {
		t.Fatalf("V(3).String() = %q", v3.String())
	}
	if TempReg.IsVirtual() || SP.IsVirtual() {
		t.Fatal("physical registers must not be virtual")
	}
}

func mustFinish(t *testing.T, b *Builder) *Fn {
	t.Helper()
	fn, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestConstFoldReplacesWithoutDeleting(t *testing.T) {
	b := NewBuilder()
	b.MovI(V(0), 7)
	b.MovI(V(1), 5)
	b.Bin(OpcSub, V(2), V(0), V(1))
	b.BinI(OpcAddI, V(3), V(2), 10)
	b.Ret()
	fn := mustFinish(t, b)

	out := ConstFold(false).Run(fn)
	if len(out.Instrs) != len(fn.Instrs) {
		t.Fatalf("constfold changed the instruction count: %d -> %d", len(fn.Instrs), len(out.Instrs))
	}
	if ins := out.Instrs[2]; ins.Op != OpcMovI || ins.Imm != 2 {
		t.Fatalf("sub fold: got %s, want movi v2, 2", ins)
	}
	if ins := out.Instrs[3]; ins.Op != OpcMovI || ins.Imm != 12 {
		t.Fatalf("addi fold: got %s, want movi v3, 12", ins)
	}

	// The sign-error defect folds subtraction as addition.
	bad := ConstFold(true).Run(fn)
	if ins := bad.Instrs[2]; ins.Op != OpcMovI || ins.Imm != 12 {
		t.Fatalf("sign-error sub fold: got %s, want movi v2, 12", ins)
	}
}

func TestConstFoldBarriers(t *testing.T) {
	// Labels and calls must forget all known constants; Div never folds.
	b := NewBuilder()
	b.MovI(V(0), 8)
	b.Label("join")
	b.BinI(OpcAddI, V(1), V(0), 1) // v0 unknown after the label
	b.Ret()
	fn := mustFinish(t, b)
	out := ConstFold(false).Run(fn)
	if out.Instrs[2].Op != OpcAddI {
		t.Fatalf("fold across a label: got %s", out.Instrs[2])
	}

	b = NewBuilder()
	b.MovI(V(0), 8)
	b.Call(0x10)
	b.BinI(OpcAddI, V(1), V(0), 1) // call clobbered the register file
	b.Ret()
	out = ConstFold(false).Run(mustFinish(t, b))
	if out.Instrs[2].Op != OpcAddI {
		t.Fatalf("fold across a call: got %s", out.Instrs[2])
	}

	b = NewBuilder()
	b.MovI(V(0), 8)
	b.MovI(V(1), 0)
	b.Bin(OpcDiv, V(2), V(0), V(1)) // must fault at run time, never fold
	b.Ret()
	out = ConstFold(false).Run(mustFinish(t, b))
	if out.Instrs[2].Op != OpcDiv {
		t.Fatalf("div folded: got %s", out.Instrs[2])
	}
}

func TestConstFoldShiftMasking(t *testing.T) {
	b := NewBuilder()
	b.MovI(V(0), 1)
	b.MovI(V(1), 65) // 65 & 63 == 1
	b.Bin(OpcShl, V(2), V(0), V(1))
	b.Ret()
	out := ConstFold(false).Run(mustFinish(t, b))
	if ins := out.Instrs[2]; ins.Op != OpcMovI || ins.Imm != 2 {
		t.Fatalf("shift fold must mask the count to 6 bits: got %s", ins)
	}
}

func TestDeadPushPop(t *testing.T) {
	b := NewBuilder()
	b.Push(V(0))
	b.Pop(V(1)) // becomes movr v1, v0
	b.Push(V(2))
	b.Pop(V(2)) // same register: disappears entirely
	b.Push(V(3))
	b.BinI(OpcAddI, SP, SP, 1) // dropTop: push + drop disappears
	b.Ret()
	out := DeadPushPop().Run(mustFinish(t, b))
	if len(out.Instrs) != 2 {
		t.Fatalf("got %d instructions, want movr + ret:\n%s", len(out.Instrs), out)
	}
	if ins := out.Instrs[0]; ins.Op != OpcMovR || ins.Rd != V(1) || ins.Rs1 != V(0) {
		t.Fatalf("got %s, want movr v1, v0", ins)
	}
}

func TestDeadPushPopStopsAtLabels(t *testing.T) {
	// A label between push and pop is a control-flow join: no rewrite.
	b := NewBuilder()
	b.Push(V(0))
	b.Label("join")
	b.Pop(V(1))
	b.Ret()
	out := DeadPushPop().Run(mustFinish(t, b))
	if out.Instrs[0].Op != OpcPush {
		t.Fatalf("push/pop fused across a label:\n%s", out)
	}
}

func TestDeadPushPopFixpoint(t *testing.T) {
	// Removing the inner pair exposes the outer one.
	b := NewBuilder()
	b.Push(V(0))
	b.Push(V(1))
	b.Pop(V(1))
	b.Pop(V(2))
	b.Ret()
	out := DeadPushPop().Run(mustFinish(t, b))
	if len(out.Instrs) != 2 || out.Instrs[0].Op != OpcMovR {
		t.Fatalf("fixpoint missed the exposed pair:\n%s", out)
	}
}

func TestPeephole(t *testing.T) {
	b := NewBuilder()
	b.MovR(V(0), V(0))             // self move: deleted
	b.BinI(OpcAddI, V(1), V(1), 0) // identity: deleted
	b.BinI(OpcAndI, V(2), V(2), 0) // AndI zero CLEARS: kept
	b.Jump(OpcJmp, "next")         // jump to next label: deleted
	b.Label("next")
	b.Ret()
	out := Peephole(false).Run(mustFinish(t, b))
	if len(out.Instrs) != 3 {
		t.Fatalf("got %d instructions, want andi + label + ret:\n%s", len(out.Instrs), out)
	}
	if out.Instrs[0].Op != OpcAndI {
		t.Fatalf("andi v, v, 0 is not an identity and must survive:\n%s", out)
	}
}

func TestPassesArePure(t *testing.T) {
	b := NewBuilder()
	b.MovI(V(0), 1)
	b.MovI(V(1), 2)
	b.Bin(OpcAdd, V(2), V(0), V(1))
	b.Push(V(2))
	b.Pop(V(3))
	b.Ret()
	fn := mustFinish(t, b)
	before := fn.String()
	for _, p := range []Pass{ConstFold(false), DeadPushPop(), Peephole(false)} {
		p.Run(fn)
		if fn.String() != before {
			t.Fatalf("pass %s mutated its input", p.Name)
		}
	}
}

func TestFnStringFormatsLabels(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.CmpI(V(0), 7)
	b.Jump(OpcJne, "top")
	b.Ret()
	fn := mustFinish(t, b)
	s := fn.String()
	for _, want := range []string{"top:", "\tcmpi v0, 7", "\tjne top"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fn.String() missing %q:\n%s", want, s)
		}
	}
}
