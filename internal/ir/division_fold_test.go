package ir

import "testing"

// TestConstFoldNeverFoldsDivision pins the division constant-folding
// policy: div and mod are never folded — not even with well-defined
// constant operands — so the run-time zero-divisor and range guards stay
// the single source of truth for division semantics. Folding a constant
// zero divisor would turn a guarded run-time failure into whatever the
// folder computes; folding a valid pair would skip the range check.
func TestConstFoldNeverFoldsDivision(t *testing.T) {
	cases := []struct {
		name string
		op   Opc
		a, b int64
	}{
		{"div by zero", OpcDiv, 8, 0},
		{"mod by zero", OpcMod, 8, 0},
		{"div valid", OpcDiv, 8, 2},
		{"mod valid", OpcMod, 8, 3},
		{"div min by minus one", OpcDiv, -1 << 30, -1},
		{"mod min by minus one", OpcMod, -1 << 30, -1},
	}
	for _, c := range cases {
		b := NewBuilder()
		b.MovI(V(0), c.a)
		b.MovI(V(1), c.b)
		b.Bin(c.op, V(2), V(0), V(1))
		b.Ret()
		out := ConstFold(false).Run(mustFinish(t, b))
		if ins := out.Instrs[2]; ins.Op != c.op {
			t.Errorf("%s: folded to %s; division must always reach the run-time guard", c.name, ins)
		}
		// The destination becomes unknown: a later use must not fold with
		// a stale constant for v2.
		b = NewBuilder()
		b.MovI(V(0), c.a)
		b.MovI(V(1), c.b)
		b.Bin(c.op, V(2), V(0), V(1))
		b.BinI(OpcAddI, V(3), V(2), 1)
		b.Ret()
		out = ConstFold(false).Run(mustFinish(t, b))
		if ins := out.Instrs[3]; ins.Op != OpcAddI {
			t.Errorf("%s: use of the division result folded to %s; the result must be unknown", c.name, ins)
		}
	}
}
