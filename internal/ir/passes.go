package ir

// A Pass is one deterministic IR-to-IR transformation. Run must be pure:
// it clones its input and never mutates it, so the blame machinery can
// re-run any pipeline prefix and compare outcomes.
type Pass struct {
	Name string
	Run  func(*Fn) *Fn
}

// RunPipeline applies passes in order and returns the final function.
func RunPipeline(f *Fn, passes []Pass) *Fn {
	for _, p := range passes {
		f = p.Run(f)
	}
	return f
}

// foldBin evaluates a register-register ALU opcode on two known
// constants with the CPU's exact semantics: int64 wrap-around
// arithmetic, shift counts masked to 6 bits, logical right shift on the
// unsigned bit pattern. signError is the deliberately unsound
// pass-targeted defect: subtraction folds as addition.
func foldBin(op Opc, a, b int64, signError bool) int64 {
	switch op {
	case OpcAdd:
		return a + b
	case OpcSub:
		if signError {
			return a + b
		}
		return a - b
	case OpcMul:
		return a * b
	case OpcAnd:
		return a & b
	case OpcOr:
		return a | b
	case OpcXor:
		return a ^ b
	case OpcShl:
		return a << (uint64(b) & 63)
	case OpcShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case OpcSar:
		return a >> (uint64(b) & 63)
	}
	return 0
}

// foldBinI evaluates a register-immediate ALU opcode on a known constant.
func foldBinI(op Opc, a, imm int64, signError bool) int64 {
	switch op {
	case OpcAddI:
		return a + imm
	case OpcSubI:
		if signError {
			return a + imm
		}
		return a - imm
	case OpcAndI:
		return a & imm
	case OpcOrI:
		return a | imm
	case OpcShlI:
		return a << (uint64(imm) & 63)
	case OpcSarI:
		return a >> (uint64(imm) & 63)
	}
	return 0
}

// ConstFold propagates known register constants and replaces foldable
// ALU instructions with equivalent MovI instructions. Replacement (never
// deletion) keeps the instruction count and every register's content
// bit-identical, so the fold is observation-sound for the differential
// tester under any coverage channel.
//
// Div and Mod never fold: a zero divisor must fault at run time exactly
// as the unoptimized code would. Compares never fold: flags are only
// ever consumed by the immediately following conditional jump, and
// folding them would require branch rewriting.
func ConstFold(signError bool) Pass {
	return Pass{Name: "constfold", Run: func(f *Fn) *Fn {
		out := f.Clone()
		known := make(map[Reg]int64)
		for i := range out.Instrs {
			ins := &out.Instrs[i]
			switch ins.Op {
			case OpcLabel:
				// Control may arrive here from any jump; forget everything.
				known = make(map[Reg]int64)
			case OpcCall, OpcCallR:
				// The callee (trampoline) clobbers the register file.
				known = make(map[Reg]int64)
			case OpcMovI:
				known[ins.Rd] = ins.Imm
			case OpcMovR:
				if c, ok := known[ins.Rs1]; ok {
					*ins = Instr{Op: OpcMovI, Rd: ins.Rd, Imm: c}
					known[ins.Rd] = c
				} else {
					delete(known, ins.Rd)
				}
			case OpcAdd, OpcSub, OpcMul, OpcAnd, OpcOr, OpcXor, OpcShl, OpcShr, OpcSar:
				a, aok := known[ins.Rs1]
				b, bok := known[ins.Rs2]
				if aok && bok {
					c := foldBin(ins.Op, a, b, signError)
					*ins = Instr{Op: OpcMovI, Rd: ins.Rd, Imm: c}
					known[ins.Rd] = c
				} else {
					delete(known, ins.Rd)
				}
			case OpcAddI, OpcSubI, OpcAndI, OpcOrI, OpcShlI, OpcSarI:
				if a, ok := known[ins.Rs1]; ok {
					c := foldBinI(ins.Op, a, ins.Imm, signError)
					*ins = Instr{Op: OpcMovI, Rd: ins.Rd, Imm: c}
					known[ins.Rd] = c
				} else {
					delete(known, ins.Rd)
				}
			case OpcCmp, OpcFCmp:
				// Flags only; no register changes.
			case OpcCmpI:
				// Flags only — but the fixed-width back-end may materialize
				// a large immediate through the scratch register, so its
				// content is not portable across compares.
				delete(known, ScratchReg)
			case OpcPush, OpcStore, OpcStoreX, OpcBrk, OpcNop, OpcRet, OpcHlt,
				OpcJmp, OpcJeq, OpcJne, OpcJlt, OpcJle, OpcJgt, OpcJge:
				// No register definition.
			default:
				// Div, Mod, loads, pops, floats, allocations: never folded,
				// the destination becomes unknown.
				delete(known, ins.Rd)
			}
		}
		return out
	}}
}

// DeadPushPop eliminates stack round-trips: an adjacent push/pop pair
// becomes a register move (or nothing), and a push immediately dropped
// by the stack-pointer adjustment the front-ends emit for dropTop
// disappears entirely. Both rewrites leave SP and every live register
// identical; only memory below SP changes, which the machine's
// observable state (SP up to the stack limit) never includes. Runs to a
// fixpoint so pairs exposed by earlier removals are caught.
func DeadPushPop() Pass {
	return Pass{Name: "deadpushpop", Run: func(f *Fn) *Fn {
		out := f.Clone()
		for {
			changed := false
			next := out.Instrs[:0:0]
			for i := 0; i < len(out.Instrs); i++ {
				ins := out.Instrs[i]
				if ins.Op == OpcPush && i+1 < len(out.Instrs) {
					nx := out.Instrs[i+1]
					if nx.Op == OpcPop {
						if nx.Rd != ins.Rs1 {
							next = append(next, Instr{Op: OpcMovR, Rd: nx.Rd, Rs1: ins.Rs1})
						}
						i++
						changed = true
						continue
					}
					if nx.Op == OpcAddI && nx.Rd == SP && nx.Rs1 == SP && nx.Imm == 1 {
						i++
						changed = true
						continue
					}
				}
				next = append(next, ins)
			}
			out.Instrs = next
			if !changed {
				return out
			}
		}
	}}
}

// Peephole deletes local no-ops: self-moves, identity immediate
// arithmetic writing back to its own source, and jumps to the
// immediately following label.
//
// dropPop is the seeded pass-targeted defect (-defect-verify-stackleak):
// the pass additionally deletes the first pop it encounters, leaking one
// stack slot. Unlike the dynamic defects this one is meant to be caught
// statically — the dropped pop shifts every exit's abstract stack depth,
// which the IR verifier's pass-effect check rejects before execution.
func Peephole(dropPop bool) Pass {
	return Pass{Name: "peephole", Run: func(f *Fn) *Fn {
		out := f.Clone()
		next := out.Instrs[:0:0]
		dropped := false
		for i, ins := range out.Instrs {
			switch {
			case dropPop && !dropped && ins.Op == OpcPop:
				dropped = true
				continue
			case ins.Op == OpcMovR && ins.Rd == ins.Rs1:
				continue
			case isIdentityBinI(ins):
				continue
			case ins.IsJump() && i+1 < len(out.Instrs) &&
				out.Instrs[i+1].Op == OpcLabel && out.Instrs[i+1].Sym == ins.Sym:
				continue
			}
			next = append(next, ins)
		}
		out.Instrs = next
		return out
	}}
}

// isIdentityBinI reports an immediate ALU instruction that provably
// leaves its destination unchanged. AndI is excluded: a zero mask
// clears, it does not preserve.
func isIdentityBinI(ins Instr) bool {
	if ins.Imm != 0 || ins.Rd != ins.Rs1 {
		return false
	}
	switch ins.Op {
	case OpcAddI, OpcSubI, OpcOrI, OpcShlI, OpcSarI:
		return true
	}
	return false
}
