// Package ir defines the JIT's intermediate representation: a typed,
// label-based linear instruction list over physical and virtual
// registers. The compilation pipeline has three layers:
//
//	front-end (internal/jit)  parses byte-code or native-method
//	                          templates into an ir.Fn
//	passes (this package)     transform the Fn — each pass is a pure
//	                          func(*Fn) *Fn, deterministic and cheap
//	back-end (internal/machine.Lower)
//	                          maps virtual registers onto a physical
//	                          pool and assembles per-ISA machine code
//
// The opcode set mirrors the machine layer's one-to-one (same names,
// same order) plus one IR-only pseudo-instruction, OpcLabel, which keeps
// control flow symbolic until lowering. Keeping the sets aligned makes
// lowering a cast for ordinary instructions and keeps the differential
// tester's machine-level observations stable across the layers.
package ir

import (
	"fmt"
	"strings"
)

// Reg is an IR register: the machine's physical register file (the ABI
// set) in [0, NumPhysRegs), plus an open-ended space of virtual
// registers starting at vBase that the front-end allocators hand out and
// lowering maps onto a per-variant physical pool.
type Reg uint8

const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	SP
	FP
	NumPhysRegs
)

// ABI aliases, mirroring the machine layer's calling convention.
const (
	ReceiverResultReg = R0
	Arg0Reg           = R1
	Arg1Reg           = R2
	Arg2Reg           = R3
	TempReg           = R4
	ExtraReg          = R5
	ScratchReg        = R6
	ClassSelectorReg  = R7
)

// vBase is the first virtual register number.
const vBase = 16

// V returns the n-th virtual register.
func V(n int) Reg { return Reg(vBase + n) }

// IsVirtual reports whether r is a virtual register.
func (r Reg) IsVirtual() bool { return r >= vBase }

// VirtualIndex returns n for V(n); meaningless for physical registers.
func (r Reg) VirtualIndex() int { return int(r) - vBase }

func (r Reg) String() string {
	switch {
	case r == SP:
		return "sp"
	case r == FP:
		return "fp"
	case r.IsVirtual():
		return fmt.Sprintf("v%d", r.VirtualIndex())
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// Opc is an IR opcode. The constants below NumMachineOpcs mirror the
// machine layer's opcode set name-for-name and value-for-value (the
// lowering cast and the cross-layer parity test depend on it); OpcLabel
// is the one IR-only pseudo-instruction.
type Opc uint8

const (
	OpcNop Opc = iota
	OpcMovR
	OpcMovI
	OpcLoad
	OpcStore
	OpcLoadX
	OpcStoreX
	OpcPush
	OpcPop
	OpcAdd
	OpcSub
	OpcMul
	OpcDiv
	OpcMod
	OpcAnd
	OpcOr
	OpcXor
	OpcShl
	OpcShr
	OpcSar
	OpcAddI
	OpcSubI
	OpcAndI
	OpcOrI
	OpcShlI
	OpcSarI
	OpcCmp
	OpcCmpI
	OpcJmp
	OpcJeq
	OpcJne
	OpcJlt
	OpcJle
	OpcJgt
	OpcJge
	OpcCall
	OpcCallR
	OpcRet
	OpcBrk
	OpcHlt
	OpcFAdd
	OpcFSub
	OpcFMul
	OpcFDiv
	OpcFCmp
	OpcI2F
	OpcF2I
	OpcFSqrt
	OpcF64To32
	OpcF32To64
	OpcFSin
	OpcFAtan
	OpcFLog
	OpcFExp
	OpcAllocFloat
	OpcAlloc
	NumMachineOpcs
)

// OpcLabel binds Sym to the next real instruction. Lowering turns it
// into an assembler label; it never reaches the machine layer.
const OpcLabel = NumMachineOpcs

var opcNames = map[Opc]string{
	OpcNop: "nop", OpcMovR: "mov", OpcMovI: "movi", OpcLoad: "load",
	OpcStore: "store", OpcLoadX: "loadx", OpcStoreX: "storex",
	OpcPush: "push", OpcPop: "pop",
	OpcAdd: "add", OpcSub: "sub", OpcMul: "mul", OpcDiv: "div", OpcMod: "mod",
	OpcAnd: "and", OpcOr: "or", OpcXor: "xor", OpcShl: "shl", OpcShr: "shr", OpcSar: "sar",
	OpcAddI: "addi", OpcSubI: "subi", OpcAndI: "andi", OpcOrI: "ori",
	OpcShlI: "shli", OpcSarI: "sari",
	OpcCmp: "cmp", OpcCmpI: "cmpi",
	OpcJmp: "jmp", OpcJeq: "jeq", OpcJne: "jne", OpcJlt: "jlt",
	OpcJle: "jle", OpcJgt: "jgt", OpcJge: "jge",
	OpcCall: "call", OpcCallR: "callr", OpcRet: "ret", OpcBrk: "brk", OpcHlt: "hlt",
	OpcFAdd: "fadd", OpcFSub: "fsub", OpcFMul: "fmul", OpcFDiv: "fdiv",
	OpcFCmp: "fcmp", OpcI2F: "i2f", OpcF2I: "f2i",
	OpcFSqrt: "fsqrt", OpcF64To32: "f64to32", OpcF32To64: "f32to64",
	OpcFSin: "fsin", OpcFAtan: "fatan", OpcFLog: "flog", OpcFExp: "fexp",
	OpcAllocFloat: "allocfloat", OpcAlloc: "alloc",
	OpcLabel: "label",
}

func (o Opc) String() string {
	if n, ok := opcNames[o]; ok {
		return n
	}
	return fmt.Sprintf("opc%d", int(o))
}

// Instr is one IR instruction. Control-flow instructions carry their
// target in Sym; label pseudo-instructions carry their name there.
type Instr struct {
	Op       Opc
	Rd       Reg
	Rs1, Rs2 Reg
	Imm      int64
	Sym      string
}

// IsJump reports whether the instruction is a (conditional) jump.
func (i Instr) IsJump() bool {
	switch i.Op {
	case OpcJmp, OpcJeq, OpcJne, OpcJlt, OpcJle, OpcJgt, OpcJge:
		return true
	}
	return false
}

func (i Instr) String() string {
	switch i.Op {
	case OpcLabel:
		return i.Sym + ":"
	case OpcNop, OpcRet, OpcHlt:
		return i.Op.String()
	case OpcMovI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case OpcMovR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	case OpcLoad:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpcStore:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, i.Rs1, i.Imm, i.Rs2)
	case OpcPush:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case OpcPop:
		return fmt.Sprintf("%s %s", i.Op, i.Rd)
	case OpcAddI, OpcSubI, OpcAndI, OpcOrI, OpcShlI, OpcSarI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpcCmp, OpcFCmp:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rs1, i.Rs2)
	case OpcCmpI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
	case OpcJmp, OpcJeq, OpcJne, OpcJlt, OpcJle, OpcJgt, OpcJge:
		return fmt.Sprintf("%s %s", i.Op, i.Sym)
	case OpcCall:
		return fmt.Sprintf("%s %#x", i.Op, uint64(i.Imm))
	case OpcCallR:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case OpcBrk:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case OpcI2F, OpcF2I, OpcAllocFloat:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// Fn is one compiled unit in IR form: a linear instruction list with
// labels as pseudo-instructions.
type Fn struct {
	Name   string
	Instrs []Instr
}

// Clone deep-copies the function. Passes transform clones, never their
// input — the pipeline's purity contract.
func (f *Fn) Clone() *Fn {
	out := &Fn{Name: f.Name, Instrs: make([]Instr, len(f.Instrs))}
	copy(out.Instrs, f.Instrs)
	return out
}

// NumInstrs counts real instructions, excluding label pseudo-ops.
func (f *Fn) NumInstrs() int {
	n := 0
	for _, ins := range f.Instrs {
		if ins.Op != OpcLabel {
			n++
		}
	}
	return n
}

// String renders the function with labels outdented, one instruction per
// line — the CLI's ir-dump format.
func (f *Fn) String() string {
	var b strings.Builder
	for _, ins := range f.Instrs {
		if ins.Op == OpcLabel {
			fmt.Fprintf(&b, "%s\n", ins)
		} else {
			fmt.Fprintf(&b, "\t%s\n", ins)
		}
	}
	return b.String()
}
