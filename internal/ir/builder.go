package ir

import "fmt"

// Builder accumulates an IR function. It mirrors the machine assembler's
// emit surface so front-ends read the same whether they target IR or
// (historically) machine code directly; labels stay symbolic until
// lowering resolves them.
type Builder struct {
	instrs []Instr
	labels map[string]bool
	errs   []error
}

// NewBuilder starts an empty function.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]bool)}
}

// Emit appends a raw instruction.
func (b *Builder) Emit(i Instr) *Builder {
	b.instrs = append(b.instrs, i)
	return b
}

// Label binds name to the next instruction.
func (b *Builder) Label(name string) *Builder {
	if b.labels[name] {
		b.errs = append(b.errs, fmt.Errorf("ir: duplicate label %q", name))
	}
	b.labels[name] = true
	return b.Emit(Instr{Op: OpcLabel, Sym: name})
}

// Convenience emitters used by the JIT front-ends.

func (b *Builder) MovR(rd, rs Reg) *Builder { return b.Emit(Instr{Op: OpcMovR, Rd: rd, Rs1: rs}) }
func (b *Builder) MovI(rd Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpcMovI, Rd: rd, Imm: imm})
}
func (b *Builder) Load(rd, rb Reg, off int64) *Builder {
	return b.Emit(Instr{Op: OpcLoad, Rd: rd, Rs1: rb, Imm: off})
}
func (b *Builder) Store(rb Reg, off int64, rs Reg) *Builder {
	return b.Emit(Instr{Op: OpcStore, Rs1: rb, Rs2: rs, Imm: off})
}
func (b *Builder) Push(rs Reg) *Builder { return b.Emit(Instr{Op: OpcPush, Rs1: rs}) }
func (b *Builder) Pop(rd Reg) *Builder  { return b.Emit(Instr{Op: OpcPop, Rd: rd}) }
func (b *Builder) Bin(op Opc, rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) BinI(op Opc, rd, rs1 Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Cmp(rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpcCmp, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) CmpI(rs Reg, imm int64) *Builder {
	return b.Emit(Instr{Op: OpcCmpI, Rs1: rs, Imm: imm})
}
func (b *Builder) FCmp(rs1, rs2 Reg) *Builder {
	return b.Emit(Instr{Op: OpcFCmp, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Jump(op Opc, label string) *Builder {
	return b.Emit(Instr{Op: op, Sym: label})
}
func (b *Builder) Call(addr int64) *Builder { return b.Emit(Instr{Op: OpcCall, Imm: addr}) }
func (b *Builder) Ret() *Builder            { return b.Emit(Instr{Op: OpcRet}) }
func (b *Builder) Brk(id int64) *Builder    { return b.Emit(Instr{Op: OpcBrk, Imm: id}) }

// Finish validates the function: duplicate labels and jumps to undefined
// labels are front-end bugs caught here, before any pass runs.
func (b *Builder) Finish() (*Fn, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, ins := range b.instrs {
		if ins.IsJump() && !b.labels[ins.Sym] {
			return nil, fmt.Errorf("ir: undefined label %q", ins.Sym)
		}
	}
	out := make([]Instr, len(b.instrs))
	copy(out, b.instrs)
	return &Fn{Instrs: out}, nil
}
