package heap

import "sync"

// bootPool recycles booted object memories across executions. Booting is
// deterministic but expensive — zeroing the 64K-word heap region alone
// dominated campaign profiles — so engines that need "a fresh boot" per
// execution acquire a sealed one here and get an O(words touched) reset
// instead. The pool seals each memory at boot; AcquireBooted rewinds to
// that seal, so an acquired memory is indistinguishable from a fresh
// NewBootedObjectMemory result (identical contents, identical allocation
// addresses).
var bootPool = sync.Pool{New: func() any {
	om := NewBootedObjectMemory()
	om.Seal()
	return om
}}

// AcquireBooted returns a booted object memory rewound to its boot state.
func AcquireBooted() *ObjectMemory {
	om := bootPool.Get().(*ObjectMemory)
	om.ResetToSeal()
	return om
}

// ReleaseBooted returns a memory obtained from AcquireBooted. Callers
// must not release a memory whose execution panicked mid-flight —
// abandoning it to the GC is the containment contract — and must not use
// it after release.
func ReleaseBooted(om *ObjectMemory) {
	if om != nil {
		bootPool.Put(om)
	}
}
