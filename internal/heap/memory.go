package heap

import "fmt"

// AccessKind distinguishes read and write faults.
type AccessKind uint8

const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExecute
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExecute:
		return "execute"
	}
	return "access"
}

// Fault is the trap raised by the flat memory on an access outside a
// mapped region. The simulated machine surfaces it as a segmentation
// fault; the concolic engine surfaces it as an InvalidMemoryAccess exit.
type Fault struct {
	Kind AccessKind
	Addr Word
}

func (f *Fault) Error() string {
	return fmt.Sprintf("memory fault: invalid %s at %#x", f.Kind, uint64(f.Addr))
}

// Region is a mapped, contiguous span of words.
type Region struct {
	Name     string
	Base     Word
	Size     int // in words
	Writable bool
	words    []Word
}

// End returns the first address past the region.
func (r *Region) End() Word { return r.Base + Word(r.Size) }

// Memory is a flat, word-addressed memory composed of mapped regions.
// Addresses are word indices (one Word per address unit), which keeps the
// simulated ISA simple while preserving realistic fault behaviour:
// unmapped or misprotected accesses return a *Fault.
type Memory struct {
	regions []*Region
}

// NewMemory returns an empty memory with no mapped regions.
func NewMemory() *Memory { return &Memory{} }

// Map adds a region. Regions must not overlap.
func (m *Memory) Map(name string, base Word, size int, writable bool) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("memory: region %q has non-positive size %d", name, size)
	}
	end := base + Word(size)
	for _, r := range m.regions {
		if base < r.End() && r.Base < end {
			return nil, fmt.Errorf("memory: region %q [%#x,%#x) overlaps %q", name, uint64(base), uint64(end), r.Name)
		}
	}
	r := &Region{Name: name, Base: base, Size: size, Writable: writable, words: make([]Word, size)}
	m.regions = append(m.regions, r)
	return r, nil
}

// RegionAt returns the region containing addr, or nil.
func (m *Memory) RegionAt(addr Word) *Region {
	for _, r := range m.regions {
		if addr >= r.Base && addr < r.End() {
			return r
		}
	}
	return nil
}

// Read loads the word at addr, trapping on unmapped addresses.
func (m *Memory) Read(addr Word) (Word, error) {
	r := m.RegionAt(addr)
	if r == nil {
		return 0, &Fault{Kind: AccessRead, Addr: addr}
	}
	return r.words[addr-r.Base], nil
}

// Write stores w at addr, trapping on unmapped or read-only addresses.
func (m *Memory) Write(addr, w Word) error {
	r := m.RegionAt(addr)
	if r == nil || !r.Writable {
		return &Fault{Kind: AccessWrite, Addr: addr}
	}
	r.words[addr-r.Base] = w
	return nil
}

// MustRead is Read for addresses the caller guarantees are mapped
// (e.g. object bodies the allocator itself produced). It panics on fault,
// which would indicate a VM bug rather than a guest error.
func (m *Memory) MustRead(addr Word) Word {
	w, err := m.Read(addr)
	if err != nil {
		panic(err)
	}
	return w
}

// MustWrite is Write with the same contract as MustRead.
func (m *Memory) MustWrite(addr, w Word) {
	if err := m.Write(addr, w); err != nil {
		panic(err)
	}
}

// Snapshot copies the full contents of every region, keyed by region name.
// Used by tests and by the differential tester to detect stray writes.
func (m *Memory) Snapshot() map[string][]Word {
	out := make(map[string][]Word, len(m.regions))
	for _, r := range m.regions {
		cp := make([]Word, len(r.words))
		copy(cp, r.words)
		out[r.Name] = cp
	}
	return out
}

// Restore writes back a snapshot taken with Snapshot.
func (m *Memory) Restore(snap map[string][]Word) error {
	for _, r := range m.regions {
		saved, ok := snap[r.Name]
		if !ok {
			continue
		}
		if len(saved) != len(r.words) {
			return fmt.Errorf("memory: snapshot size mismatch for region %q", r.Name)
		}
		copy(r.words, saved)
	}
	return nil
}
