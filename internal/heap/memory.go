package heap

import "fmt"

// AccessKind distinguishes read and write faults.
type AccessKind uint8

const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExecute
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExecute:
		return "execute"
	}
	return "access"
}

// Fault is the trap raised by the flat memory on an access outside a
// mapped region. The simulated machine surfaces it as a segmentation
// fault; the concolic engine surfaces it as an InvalidMemoryAccess exit.
type Fault struct {
	Kind AccessKind
	Addr Word
}

func (f *Fault) Error() string {
	return fmt.Sprintf("memory fault: invalid %s at %#x", f.Kind, uint64(f.Addr))
}

// Region is a mapped, contiguous span of words.
type Region struct {
	Name     string
	Base     Word
	Size     int // in words
	Writable bool
	words    []Word

	// Arena-reuse state: sealed holds a snapshot of words taken by Seal,
	// and [dirtyLo, dirtyHi) is the index span written since the last
	// Seal/ResetToSeal. ResetToSeal restores only the dirty span, so a
	// reset costs O(words actually touched) instead of O(region size).
	sealed  []Word
	dirtyLo int
	dirtyHi int
}

// touch widens the dirty span to include index idx.
func (r *Region) touch(idx int) {
	if idx < r.dirtyLo {
		r.dirtyLo = idx
	}
	if idx >= r.dirtyHi {
		r.dirtyHi = idx + 1
	}
}

// End returns the first address past the region.
func (r *Region) End() Word { return r.Base + Word(r.Size) }

// Memory is a flat, word-addressed memory composed of mapped regions.
// Addresses are word indices (one Word per address unit), which keeps the
// simulated ISA simple while preserving realistic fault behaviour:
// unmapped or misprotected accesses return a *Fault.
//
// A Memory is not safe for concurrent use: the region-lookup cache and
// the dirty-span bookkeeping assume one goroutine at a time, which is the
// execution model of every engine (each worker owns its environment).
type Memory struct {
	regions []*Region
	// last caches the most recently hit region: accesses cluster heavily
	// (runs of stack traffic, runs of heap traffic), so the common case
	// skips the linear region scan entirely.
	last *Region
}

// NewMemory returns an empty memory with no mapped regions.
func NewMemory() *Memory { return &Memory{} }

// Map adds a region. Regions must not overlap.
func (m *Memory) Map(name string, base Word, size int, writable bool) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("memory: region %q has non-positive size %d", name, size)
	}
	end := base + Word(size)
	for _, r := range m.regions {
		if base < r.End() && r.Base < end {
			return nil, fmt.Errorf("memory: region %q [%#x,%#x) overlaps %q", name, uint64(base), uint64(end), r.Name)
		}
	}
	r := &Region{Name: name, Base: base, Size: size, Writable: writable, words: make([]Word, size), dirtyLo: size}
	m.regions = append(m.regions, r)
	return r, nil
}

// RegionAt returns the region containing addr, or nil.
func (m *Memory) RegionAt(addr Word) *Region {
	if r := m.last; r != nil && addr >= r.Base && addr < r.End() {
		return r
	}
	for _, r := range m.regions {
		if addr >= r.Base && addr < r.End() {
			m.last = r
			return r
		}
	}
	return nil
}

// Read loads the word at addr, trapping on unmapped addresses.
func (m *Memory) Read(addr Word) (Word, error) {
	r := m.RegionAt(addr)
	if r == nil {
		return 0, &Fault{Kind: AccessRead, Addr: addr}
	}
	return r.words[addr-r.Base], nil
}

// Write stores w at addr, trapping on unmapped or read-only addresses.
func (m *Memory) Write(addr, w Word) error {
	r := m.RegionAt(addr)
	if r == nil || !r.Writable {
		return &Fault{Kind: AccessWrite, Addr: addr}
	}
	idx := int(addr - r.Base)
	r.words[idx] = w
	r.touch(idx)
	return nil
}

// Seal snapshots every region's current contents as the reset point for
// ResetToSeal and clears the dirty spans. Engines call it once, right
// after booting an execution environment; from then on every write is
// tracked and ResetToSeal restores exactly the sealed state.
func (m *Memory) Seal() {
	for _, r := range m.regions {
		if r.sealed == nil {
			r.sealed = make([]Word, r.Size)
		}
		copy(r.sealed, r.words)
		r.dirtyLo, r.dirtyHi = r.Size, 0
	}
}

// ResetToSeal restores every sealed region to its Seal-time contents by
// copying back only the words written since — the arena-reuse fast path.
// Unsealed regions (Seal never called) are left untouched.
func (m *Memory) ResetToSeal() {
	for _, r := range m.regions {
		if r.sealed == nil || r.dirtyHi <= r.dirtyLo {
			continue
		}
		copy(r.words[r.dirtyLo:r.dirtyHi], r.sealed[r.dirtyLo:r.dirtyHi])
		r.dirtyLo, r.dirtyHi = r.Size, 0
	}
}

// MustRead is Read for addresses the caller guarantees are mapped
// (e.g. object bodies the allocator itself produced). It panics on fault,
// which would indicate a VM bug rather than a guest error.
func (m *Memory) MustRead(addr Word) Word {
	w, err := m.Read(addr)
	if err != nil {
		panic(err)
	}
	return w
}

// MustWrite is Write with the same contract as MustRead.
func (m *Memory) MustWrite(addr, w Word) {
	if err := m.Write(addr, w); err != nil {
		panic(err)
	}
}

// Snapshot copies the full contents of every region, keyed by region name.
// Used by tests and by the differential tester to detect stray writes.
func (m *Memory) Snapshot() map[string][]Word {
	out := make(map[string][]Word, len(m.regions))
	for _, r := range m.regions {
		cp := make([]Word, len(r.words))
		copy(cp, r.words)
		out[r.Name] = cp
	}
	return out
}

// Restore writes back a snapshot taken with Snapshot.
func (m *Memory) Restore(snap map[string][]Word) error {
	for _, r := range m.regions {
		saved, ok := snap[r.Name]
		if !ok {
			continue
		}
		if len(saved) != len(r.words) {
			return fmt.Errorf("memory: snapshot size mismatch for region %q", r.Name)
		}
		copy(r.words, saved)
		// A bulk restore may rewrite anything; widen the dirty span to the
		// whole region so a later ResetToSeal stays exact.
		r.dirtyLo, r.dirtyHi = 0, r.Size
	}
	return nil
}
