// Package heap implements the object memory substrate of the virtual
// machine: a flat word-addressed memory with access traps, tagged small
// integers, boxed floats, and header-described heap objects organized
// around a class table.
//
// The memory model mirrors a 32-bit Pharo-style VM: small integers are
// 31-bit signed values tagged in the low bit, object references are
// word-aligned addresses into the flat memory. The flat memory is shared
// with the simulated machine (internal/machine) so that JIT-compiled code
// operates on exactly the same heap and stack the interpreter describes.
package heap

import "fmt"

// Word is the fundamental VM cell. The VM simulates a 32-bit machine, so
// even though Word is 64 bits wide on the host, all tagged integer values
// are constrained to the 31-bit SmallInteger range and addresses to the
// low 4 GiB.
type Word int64

// SmallInteger tagging. The low bit set marks a tagged immediate integer,
// matching the Pharo/OpenSmalltalk scheme on 32-bit targets.
const (
	SmallIntTagBits = 1
	SmallIntTag     = 1

	// MinSmallInt and MaxSmallInt delimit the 31-bit signed range of a
	// tagged SmallInteger on a 32-bit VM.
	MinSmallInt = -1 << 30
	MaxSmallInt = 1<<30 - 1
)

// IsSmallInt reports whether w is a tagged immediate integer.
func IsSmallInt(w Word) bool { return w&SmallIntTag == SmallIntTag }

// SmallIntValue untags w. The caller must have established IsSmallInt(w);
// untagging a pointer silently produces garbage, which is exactly the
// failure mode missing type checks expose (§5.3 of the paper).
func SmallIntValue(w Word) int64 { return int64(w) >> SmallIntTagBits }

// SmallIntFor tags v as an immediate integer. The caller must have
// established IsIntegerValue(v).
func SmallIntFor(v int64) Word { return Word(v<<SmallIntTagBits | SmallIntTag) }

// IsIntegerValue reports whether the untagged value v fits the tagged
// SmallInteger range. This is the overflow check of the interpreter's
// arithmetic fast paths.
func IsIntegerValue(v int64) bool { return v >= MinSmallInt && v <= MaxSmallInt }

// IsObjectRef reports whether w looks like an object reference (an
// untagged, word-aligned address). Zero is reserved as the null reference
// and is never a valid object.
func IsObjectRef(w Word) bool { return w != 0 && w&SmallIntTag == 0 }

// Format describes the body layout of a heap object.
type Format uint8

const (
	// FormatFixed objects have only named instance variable slots.
	FormatFixed Format = iota
	// FormatPointers objects are variable-sized arrays of object
	// references (e.g. Array).
	FormatPointers
	// FormatWords objects are variable-sized arrays of raw 32-bit words
	// (e.g. Bitmap, WordArray).
	FormatWords
	// FormatBytes objects are variable-sized byte arrays (e.g. String,
	// ByteArray). Bytes are stored one per slot for simplicity of the
	// simulated machine's word addressing.
	FormatBytes
	// FormatFloat objects box a 64-bit IEEE float in a single raw slot.
	FormatFloat
	// FormatCompiledMethod objects reference a method literal frame plus
	// byte-codes; in this VM methods live outside the heap and the heap
	// object is a handle.
	FormatCompiledMethod
)

func (f Format) String() string {
	switch f {
	case FormatFixed:
		return "fixed"
	case FormatPointers:
		return "pointers"
	case FormatWords:
		return "words"
	case FormatBytes:
		return "bytes"
	case FormatFloat:
		return "float"
	case FormatCompiledMethod:
		return "compiledMethod"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// IsIndexable reports whether objects of this format answer to at:/at:put:.
func (f Format) IsIndexable() bool {
	switch f {
	case FormatPointers, FormatWords, FormatBytes:
		return true
	}
	return false
}

// Well-known class indices. The class table assigns these on boot; they are
// stable constants so that both the interpreter and the JIT compilers can
// emit class checks against literal indices, as Cogit does.
const (
	ClassIndexNone           = 0
	ClassIndexSmallInteger   = 1
	ClassIndexFloat          = 2
	ClassIndexUndefinedObj   = 3
	ClassIndexTrue           = 4
	ClassIndexFalse          = 5
	ClassIndexArray          = 6
	ClassIndexString         = 7
	ClassIndexObject         = 8
	ClassIndexContext        = 9
	ClassIndexMetaclass      = 10
	ClassIndexByteArray      = 11
	ClassIndexWordArray      = 12
	ClassIndexCompiledMethod = 13
	ClassIndexExternalAddr   = 14 // FFI external address objects
	ClassIndexExternalStruct = 15 // FFI structure objects
	ClassIndexPoint          = 16
	ClassIndexAssociation    = 17

	// FirstUserClassIndex is where dynamically created classes start.
	FirstUserClassIndex = 32
)
