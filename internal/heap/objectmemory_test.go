package heap

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBootSpecialObjects(t *testing.T) {
	om := NewBootedObjectMemory()
	if om.ClassIndexOf(om.NilObj) != ClassIndexUndefinedObj {
		t.Error("nil class wrong")
	}
	if om.ClassIndexOf(om.TrueObj) != ClassIndexTrue {
		t.Error("true class wrong")
	}
	if om.ClassIndexOf(om.FalseObj) != ClassIndexFalse {
		t.Error("false class wrong")
	}
	if om.BoolObject(true) != om.TrueObj || om.BoolObject(false) != om.FalseObj {
		t.Error("BoolObject mapping wrong")
	}
	if !om.IsBoolObject(om.TrueObj) || om.IsBoolObject(om.NilObj) {
		t.Error("IsBoolObject wrong")
	}
}

func TestHeaderPackUnpack(t *testing.T) {
	f := func(classIndex uint16, format uint8, slots uint16) bool {
		fm := Format(format % 6)
		h := packHeader(int(classIndex), fm, int(slots))
		ci, gf, s := unpackHeader(h)
		return ci == int(classIndex) && gf == fm && s == int(slots)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateAndSlots(t *testing.T) {
	om := NewBootedObjectMemory()
	oop := om.MustAllocate(ClassIndexArray, FormatPointers, 3)
	if om.ClassIndexOf(oop) != ClassIndexArray {
		t.Fatal("class index wrong")
	}
	if om.SlotCountOf(oop) != 3 {
		t.Fatal("slot count wrong")
	}
	if om.FormatOf(oop) != FormatPointers {
		t.Fatal("format wrong")
	}
	// Pointer slots initialize to nil.
	for i := 0; i < 3; i++ {
		w, err := om.FetchSlot(oop, i)
		if err != nil {
			t.Fatal(err)
		}
		if w != om.NilObj {
			t.Fatalf("slot %d not nil-initialized", i)
		}
	}
	if err := om.StoreSlot(oop, 1, SmallIntFor(7)); err != nil {
		t.Fatal(err)
	}
	w, err := om.FetchSlot(oop, 1)
	if err != nil || w != SmallIntFor(7) {
		t.Fatalf("store/fetch mismatch: %v %v", w, err)
	}
}

func TestSlotBounds(t *testing.T) {
	om := NewBootedObjectMemory()
	oop := om.MustAllocate(ClassIndexArray, FormatPointers, 2)
	var oob *OOBError
	if _, err := om.FetchSlot(oop, 2); !errors.As(err, &oob) {
		t.Fatalf("expected OOBError, got %v", err)
	}
	if _, err := om.FetchSlot(oop, -1); !errors.As(err, &oob) {
		t.Fatalf("expected OOBError, got %v", err)
	}
	if err := om.StoreSlot(oop, 5, 0); !errors.As(err, &oob) {
		t.Fatalf("expected OOBError, got %v", err)
	}
	// Unsafe fetch does NOT bounds check: reading slot 2 of the 2-slot
	// object reads the header of the next allocation instead.
	if _, err := om.UnsafeFetchSlot(oop, 2); err != nil {
		t.Fatalf("unsafe in-heap read should not fault: %v", err)
	}
}

func TestFloatBoxing(t *testing.T) {
	om := NewBootedObjectMemory()
	for _, f := range []float64{0, 1.5, -3.25, math.Pi, math.Inf(1), math.MaxFloat64} {
		oop, err := om.NewFloat(f)
		if err != nil {
			t.Fatal(err)
		}
		if !om.IsFloatObject(oop) {
			t.Fatal("not a float object")
		}
		got, err := om.FloatValueOf(oop)
		if err != nil || got != f {
			t.Fatalf("float roundtrip %g -> %g (%v)", f, got, err)
		}
	}
	if om.IsFloatObject(SmallIntFor(3)) {
		t.Fatal("small int misclassified as float")
	}
}

func TestFloatRoundTripProperty(t *testing.T) {
	om := NewBootedObjectMemory()
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		oop, err := om.NewFloat(v)
		if err != nil {
			return false
		}
		got, err := om.FloatValueOf(oop)
		if err != nil {
			return false
		}
		return math.Float64bits(got) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassIndexOfImmediates(t *testing.T) {
	om := NewBootedObjectMemory()
	if om.ClassIndexOf(SmallIntFor(-5)) != ClassIndexSmallInteger {
		t.Fatal("small int class index wrong")
	}
	if om.ClassIndexOf(0) != ClassIndexNone {
		t.Fatal("null ref should have no class")
	}
}

func TestDefineClass(t *testing.T) {
	om := NewBootedObjectMemory()
	cd := om.DefineClass("Widget", FormatFixed, 3)
	if cd.Index < FirstUserClassIndex {
		t.Fatalf("user class index %d too small", cd.Index)
	}
	if om.ClassAt(cd.Index) != cd {
		t.Fatal("class table lookup failed")
	}
	if om.ClassByOop(cd.Oop) != cd {
		t.Fatal("class oop lookup failed")
	}
	inst := om.MustAllocate(cd.Index, cd.InstanceFormat, cd.FixedSlots)
	if om.ClassIndexOf(inst) != cd.Index {
		t.Fatal("instance class index wrong")
	}
}

func TestNewArrayAndString(t *testing.T) {
	om := NewBootedObjectMemory()
	arr, err := om.NewArray(SmallIntFor(1), SmallIntFor(2))
	if err != nil {
		t.Fatal(err)
	}
	if om.SlotCountOf(arr) != 2 {
		t.Fatal("array size wrong")
	}
	s, err := om.NewString("hi")
	if err != nil {
		t.Fatal(err)
	}
	if om.ClassIndexOf(s) != ClassIndexString || om.SlotCountOf(s) != 2 {
		t.Fatal("string shape wrong")
	}
	b, err := om.FetchSlot(s, 0)
	if err != nil || b != Word('h') {
		t.Fatal("string byte wrong")
	}
}

func TestDescribe(t *testing.T) {
	om := NewBootedObjectMemory()
	if om.Describe(SmallIntFor(41)) != "41" {
		t.Error("int describe")
	}
	if om.Describe(om.NilObj) != "nil" {
		t.Error("nil describe")
	}
	f, _ := om.NewFloat(1.5)
	if om.Describe(f) != "1.5" {
		t.Error("float describe")
	}
	arr, _ := om.NewArray()
	if om.Describe(arr) == "" {
		t.Error("array describe empty")
	}
}
