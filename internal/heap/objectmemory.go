package heap

import (
	"fmt"
	"math"
)

// Object header layout, one word per object:
//
//	bits  0..23  slot count (number of body words)
//	bits 24..31  format
//	bits 32..55  class index
//
// The header sits at the object's address; slots follow at addr+1.
const (
	headerSlotBits   = 24
	headerFormatBits = 8
	headerSlotMask   = 1<<headerSlotBits - 1
	headerFormatMask = 1<<headerFormatBits - 1
	// HeaderWords is the per-object header overhead in words.
	HeaderWords = 1

	// Exported header layout for JIT-compiled code, which extracts class
	// index, format and slot count from headers with shifts and masks.
	HeaderSlotBits   = headerSlotBits
	HeaderFormatBits = headerFormatBits
	HeaderSlotMask   = headerSlotMask
	HeaderFormatMask = headerFormatMask
	HeaderClassShift = headerSlotBits + headerFormatBits
)

func packHeader(classIndex int, format Format, slots int) Word {
	return Word(slots&headerSlotMask) |
		Word(format&headerFormatMask)<<headerSlotBits |
		Word(classIndex)<<(headerSlotBits+headerFormatBits)
}

func unpackHeader(h Word) (classIndex int, format Format, slots int) {
	slots = int(h & headerSlotMask)
	format = Format((h >> headerSlotBits) & headerFormatMask)
	classIndex = int(h >> (headerSlotBits + headerFormatBits))
	return
}

// OOBError is returned by slot accessors for out-of-bounds indices. The
// interpreter maps it to the InvalidMemoryAccess exit condition.
type OOBError struct {
	Obj   Word
	Index int
	Slots int
}

func (e *OOBError) Error() string {
	return fmt.Sprintf("object %#x: slot index %d out of bounds (size %d)", uint64(e.Obj), e.Index, e.Slots)
}

// ClassDescription is the host-side description of a class table entry. A
// companion class object lives in the heap so guest code can reference it.
type ClassDescription struct {
	Index          int
	Name           string
	InstanceFormat Format
	// FixedSlots is the number of named instance variables instances
	// carry in addition to indexable slots.
	FixedSlots int
	// Oop is the heap address of the class object itself.
	Oop Word
}

// ObjectMemory manages the VM heap inside a flat Memory region: object
// allocation, the class table, tagged/boxed value construction and the
// special objects (nil, true, false).
type ObjectMemory struct {
	Mem  *Memory
	heap *Region
	next Word // bump-allocation pointer

	classes      []*ClassDescription // indexed by class index
	classesByOop map[Word]*ClassDescription

	NilObj   Word
	TrueObj  Word
	FalseObj Word

	// Seal/ResetToSeal state for arena reuse: the allocation pointer and
	// class-table length to rewind to.
	sealedNext    Word
	sealedClasses int
}

// Default heap placement inside the flat memory. The machine's code and
// stack live elsewhere; see internal/machine.
const (
	DefaultHeapBase = 0x10000
	// DefaultHeapSize is sized for testing workloads: the concolic engine
	// boots a fresh object memory per path execution, so the heap is kept
	// small (64K words).
	DefaultHeapSize = 1 << 16

	// ClassTableBase is a memory-mapped array of class-object references
	// indexed by class index. JIT-compiled code resolves classIndexOf
	// through it (as Cogit does through the VM's class table).
	ClassTableBase = 0xC000
	// ClassTableSize bounds the number of memory-visible classes.
	ClassTableSize = 256
)

// NewObjectMemory boots an object memory inside mem, mapping a heap
// region, installing the class table and allocating the special objects.
func NewObjectMemory(mem *Memory) (*ObjectMemory, error) {
	hr, err := mem.Map("heap", DefaultHeapBase, DefaultHeapSize, true)
	if err != nil {
		return nil, err
	}
	if mem.RegionAt(ClassTableBase) == nil {
		if _, err := mem.Map("classtable", ClassTableBase, ClassTableSize, true); err != nil {
			return nil, err
		}
	}
	om := &ObjectMemory{
		Mem:          mem,
		heap:         hr,
		next:         hr.Base,
		classesByOop: make(map[Word]*ClassDescription),
	}
	om.bootClassTable()
	om.NilObj = om.MustAllocate(ClassIndexUndefinedObj, FormatFixed, 0)
	om.TrueObj = om.MustAllocate(ClassIndexTrue, FormatFixed, 0)
	om.FalseObj = om.MustAllocate(ClassIndexFalse, FormatFixed, 0)
	return om, nil
}

// NewBootedObjectMemory is a convenience constructor creating both the
// flat memory and the object memory. It panics on setup failure, which can
// only be a programming error in the boot constants.
func NewBootedObjectMemory() *ObjectMemory {
	om, err := NewObjectMemory(NewMemory())
	if err != nil {
		panic(err)
	}
	return om
}

// BootClass statically describes one entry of the boot class table. The
// constraint solver uses this table to pick witness classes without a live
// object memory.
type BootClass struct {
	Index      int
	Name       string
	Format     Format
	FixedSlots int
}

var bootClasses = []BootClass{
	{ClassIndexSmallInteger, "SmallInteger", FormatFixed, 0},
	{ClassIndexFloat, "Float", FormatFloat, 0},
	{ClassIndexUndefinedObj, "UndefinedObject", FormatFixed, 0},
	{ClassIndexTrue, "True", FormatFixed, 0},
	{ClassIndexFalse, "False", FormatFixed, 0},
	{ClassIndexArray, "Array", FormatPointers, 0},
	{ClassIndexString, "String", FormatBytes, 0},
	{ClassIndexObject, "Object", FormatFixed, 0},
	{ClassIndexContext, "Context", FormatPointers, 4},
	{ClassIndexMetaclass, "Metaclass", FormatFixed, 2},
	{ClassIndexByteArray, "ByteArray", FormatBytes, 0},
	{ClassIndexWordArray, "WordArray", FormatWords, 0},
	{ClassIndexCompiledMethod, "CompiledMethod", FormatCompiledMethod, 0},
	{ClassIndexExternalAddr, "ExternalAddress", FormatWords, 0},
	{ClassIndexExternalStruct, "ExternalStructure", FormatFixed, 2},
	{ClassIndexPoint, "Point", FormatFixed, 2},
	{ClassIndexAssociation, "Association", FormatFixed, 2},
}

// BootClasses returns the static boot class table.
func BootClasses() []BootClass { return bootClasses }

func (om *ObjectMemory) bootClassTable() {
	maxIdx := FirstUserClassIndex
	om.classes = make([]*ClassDescription, maxIdx)
	for _, b := range bootClasses {
		om.classes[b.Index] = &ClassDescription{
			Index:          b.Index,
			Name:           b.Name,
			InstanceFormat: b.Format,
			FixedSlots:     b.FixedSlots,
		}
	}
	// Allocate heap-side class objects so guest code can hold references.
	for _, cd := range om.classes {
		if cd == nil {
			continue
		}
		oop := om.MustAllocate(ClassIndexMetaclass, FormatFixed, 3)
		om.Mem.MustWrite(oop+HeaderWords, SmallIntFor(int64(cd.Index)))
		om.Mem.MustWrite(oop+HeaderWords+1, SmallIntFor(int64(cd.InstanceFormat)))
		om.Mem.MustWrite(oop+HeaderWords+2, SmallIntFor(int64(cd.FixedSlots)))
		cd.Oop = oop
		om.classesByOop[oop] = cd
		om.Mem.MustWrite(ClassTableBase+Word(cd.Index), oop)
	}
}

// DefineClass registers a new user class and returns its description.
func (om *ObjectMemory) DefineClass(name string, format Format, fixedSlots int) *ClassDescription {
	cd := &ClassDescription{
		Index:          len(om.classes),
		Name:           name,
		InstanceFormat: format,
		FixedSlots:     fixedSlots,
	}
	om.classes = append(om.classes, cd)
	oop := om.MustAllocate(ClassIndexMetaclass, FormatFixed, 3)
	om.Mem.MustWrite(oop+HeaderWords, SmallIntFor(int64(cd.Index)))
	om.Mem.MustWrite(oop+HeaderWords+1, SmallIntFor(int64(format)))
	om.Mem.MustWrite(oop+HeaderWords+2, SmallIntFor(int64(fixedSlots)))
	cd.Oop = oop
	om.classesByOop[oop] = cd
	if cd.Index < ClassTableSize {
		om.Mem.MustWrite(ClassTableBase+Word(cd.Index), oop)
	}
	return cd
}

// ClassAt returns the class description for a class index, or nil.
func (om *ObjectMemory) ClassAt(index int) *ClassDescription {
	if index < 0 || index >= len(om.classes) {
		return nil
	}
	return om.classes[index]
}

// ClassByOop resolves a class object reference to its description.
func (om *ObjectMemory) ClassByOop(oop Word) *ClassDescription { return om.classesByOop[oop] }

// ClassCount returns the number of class table entries.
func (om *ObjectMemory) ClassCount() int { return len(om.classes) }

// Allocate creates an object of classIndex with the given format and body
// slot count, zero-filled (slots of pointer objects are initialized to
// nil). It returns the object reference.
func (om *ObjectMemory) Allocate(classIndex int, format Format, slots int) (Word, error) {
	if slots < 0 || slots > headerSlotMask {
		return 0, fmt.Errorf("heap: invalid slot count %d", slots)
	}
	// Keep allocation 2-word aligned: object references must have a clear
	// low bit to be distinguishable from tagged integers.
	need := Word(HeaderWords + slots)
	if need%2 != 0 {
		need++
	}
	if om.next+need > om.heap.End() {
		return 0, fmt.Errorf("heap: out of memory allocating %d slots", slots)
	}
	oop := om.next
	om.next += need
	om.Mem.MustWrite(oop, packHeader(classIndex, format, slots))
	fill := Word(0)
	if format == FormatFixed || format == FormatPointers {
		fill = om.NilObj
	}
	for i := 0; i < slots; i++ {
		om.Mem.MustWrite(oop+HeaderWords+Word(i), fill)
	}
	return oop, nil
}

// MustAllocate is Allocate panicking on failure; used during boot and in
// tests where exhaustion is a programming error.
func (om *ObjectMemory) MustAllocate(classIndex int, format Format, slots int) Word {
	oop, err := om.Allocate(classIndex, format, slots)
	if err != nil {
		panic(err)
	}
	return oop
}

// HeapUsed reports the number of heap words consumed so far.
func (om *ObjectMemory) HeapUsed() int { return int(om.next - om.heap.Base) }

// Seal marks the current state — memory contents, allocation pointer,
// class table — as the reset point for ResetToSeal. Engines seal a
// freshly booted environment once and then reuse it across executions:
// because boot is deterministic, a reset environment is observationally
// identical to a brand-new one (same addresses, same contents), which is
// what keeps reports byte-identical with arenas on or off.
func (om *ObjectMemory) Seal() {
	om.Mem.Seal()
	om.sealedNext = om.next
	om.sealedClasses = len(om.classes)
}

// ResetToSeal rewinds the object memory to its Seal-time state: every
// word written since (heap, class table, any other mapped region) is
// restored, the allocation pointer rewinds, and classes defined since the
// seal are forgotten. Calling it without a prior Seal is a no-op.
func (om *ObjectMemory) ResetToSeal() {
	if om.sealedNext == 0 {
		return
	}
	om.Mem.ResetToSeal()
	om.next = om.sealedNext
	for i := om.sealedClasses; i < len(om.classes); i++ {
		delete(om.classesByOop, om.classes[i].Oop)
	}
	om.classes = om.classes[:om.sealedClasses]
}

// HeapRange copies the raw heap words in [from, to) heap offsets (as
// reported by HeapUsed). The compiled-code cache records the words a
// compilation allocated this way, so a cache hit can replay them.
func (om *ObjectMemory) HeapRange(from, to int) []Word {
	out := make([]Word, to-from)
	copy(out, om.heap.words[from:to])
	return out
}

// ReplayHeapRange re-applies a recorded allocation range at heap offset
// `from`, bumping the allocation pointer past it. The caller guarantees
// the current HeapUsed equals from (the compiled-code cache keys on it),
// so the replayed objects land at the addresses the cached code embeds.
func (om *ObjectMemory) ReplayHeapRange(from int, words []Word) error {
	if om.HeapUsed() != from {
		return fmt.Errorf("heap: replay at offset %d but %d words are in use", from, om.HeapUsed())
	}
	if from+len(words) > om.heap.Size {
		return fmt.Errorf("heap: replay of %d words overflows the heap", len(words))
	}
	base := int(om.next - om.heap.Base)
	copy(om.heap.words[base:base+len(words)], words)
	om.heap.touch(base)
	if len(words) > 0 {
		om.heap.touch(base + len(words) - 1)
	}
	om.next += Word(len(words))
	return nil
}

// header reads and unpacks an object header.
func (om *ObjectMemory) header(oop Word) (classIndex int, format Format, slots int, err error) {
	h, err := om.Mem.Read(oop)
	if err != nil {
		return 0, 0, 0, err
	}
	ci, f, s := unpackHeader(h)
	return ci, f, s, nil
}

// ClassIndexOf returns the class index of any value, including immediates.
// This is the semantic operation the constraint model exposes as
// classIndexOf (§3.3).
func (om *ObjectMemory) ClassIndexOf(w Word) int {
	if IsSmallInt(w) {
		return ClassIndexSmallInteger
	}
	ci, _, _, err := om.header(w)
	if err != nil {
		return ClassIndexNone
	}
	return ci
}

// FormatOf returns the format of an object reference.
func (om *ObjectMemory) FormatOf(oop Word) Format {
	_, f, _, err := om.header(oop)
	if err != nil {
		return FormatFixed
	}
	return f
}

// SlotCountOf returns the number of body slots of an object reference.
func (om *ObjectMemory) SlotCountOf(oop Word) int {
	_, _, s, err := om.header(oop)
	if err != nil {
		return 0
	}
	return s
}

// FetchSlot reads body slot index (0-based) with bounds checking.
func (om *ObjectMemory) FetchSlot(oop Word, index int) (Word, error) {
	_, _, slots, err := om.header(oop)
	if err != nil {
		return 0, err
	}
	if index < 0 || index >= slots {
		return 0, &OOBError{Obj: oop, Index: index, Slots: slots}
	}
	return om.Mem.Read(oop + HeaderWords + Word(index))
}

// StoreSlot writes body slot index (0-based) with bounds checking.
func (om *ObjectMemory) StoreSlot(oop Word, index int, value Word) error {
	_, _, slots, err := om.header(oop)
	if err != nil {
		return err
	}
	if index < 0 || index >= slots {
		return &OOBError{Obj: oop, Index: index, Slots: slots}
	}
	return om.Mem.Write(oop+HeaderWords+Word(index), value)
}

// UnsafeFetchSlot reads a slot without bounds checking, exactly as raw
// compiled code would. Out-of-heap reads fault.
func (om *ObjectMemory) UnsafeFetchSlot(oop Word, index int) (Word, error) {
	return om.Mem.Read(oop + HeaderWords + Word(index))
}

// IsFloatObject reports whether w references a boxed float.
func (om *ObjectMemory) IsFloatObject(w Word) bool {
	if IsSmallInt(w) {
		return false
	}
	return om.ClassIndexOf(w) == ClassIndexFloat
}

// NewFloat boxes a float64.
func (om *ObjectMemory) NewFloat(f float64) (Word, error) {
	oop, err := om.Allocate(ClassIndexFloat, FormatFloat, 1)
	if err != nil {
		return 0, err
	}
	om.Mem.MustWrite(oop+HeaderWords, Word(math.Float64bits(f)))
	return oop, nil
}

// FloatValueOf unboxes a float object. It performs no type check: calling
// it on a non-float coerces the first body slot's raw bits, reproducing
// the segfault/garbage behaviour of unchecked compiled code.
func (om *ObjectMemory) FloatValueOf(oop Word) (float64, error) {
	raw, err := om.Mem.Read(oop + HeaderWords)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(uint64(raw)), nil
}

// NewArray allocates a pointers array with the given elements.
func (om *ObjectMemory) NewArray(elems ...Word) (Word, error) {
	oop, err := om.Allocate(ClassIndexArray, FormatPointers, len(elems))
	if err != nil {
		return 0, err
	}
	for i, e := range elems {
		om.Mem.MustWrite(oop+HeaderWords+Word(i), e)
	}
	return oop, nil
}

// NewString allocates a byte-format object holding s (one byte per slot).
func (om *ObjectMemory) NewString(s string) (Word, error) {
	oop, err := om.Allocate(ClassIndexString, FormatBytes, len(s))
	if err != nil {
		return 0, err
	}
	for i := 0; i < len(s); i++ {
		om.Mem.MustWrite(oop+HeaderWords+Word(i), Word(s[i]))
	}
	return oop, nil
}

// BoolObject maps a host boolean to the true/false objects.
func (om *ObjectMemory) BoolObject(b bool) Word {
	if b {
		return om.TrueObj
	}
	return om.FalseObj
}

// IsBoolObject reports whether w is the true or false object.
func (om *ObjectMemory) IsBoolObject(w Word) bool { return w == om.TrueObj || w == om.FalseObj }

// Describe renders a short human-readable description of any value.
func (om *ObjectMemory) Describe(w Word) string {
	switch {
	case IsSmallInt(w):
		return fmt.Sprintf("%d", SmallIntValue(w))
	case w == om.NilObj:
		return "nil"
	case w == om.TrueObj:
		return "true"
	case w == om.FalseObj:
		return "false"
	case om.IsFloatObject(w):
		f, _ := om.FloatValueOf(w)
		return fmt.Sprintf("%g", f)
	default:
		ci, f, s, err := om.header(w)
		if err != nil {
			return fmt.Sprintf("<invalid %#x>", uint64(w))
		}
		name := "?"
		if cd := om.ClassAt(ci); cd != nil {
			name = cd.Name
		}
		return fmt.Sprintf("a %s(%s,%d)@%#x", name, f, s, uint64(w))
	}
}
