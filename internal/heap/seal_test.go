package heap

import (
	"testing"
)

// The arena contract: a sealed object memory, after arbitrary mutation,
// rewinds to a state indistinguishable from a fresh boot — identical
// contents AND identical allocation addresses — in O(words touched), with
// zero allocations. The execution core's pooled environments and the
// compiled-code cache's heap replay both stand on this.

// mutate dirties om in every way an execution can: heap allocation, slot
// stores into pre-seal objects, and user-defined classes.
func mutate(t *testing.T, om *ObjectMemory) {
	t.Helper()
	f, err := om.NewFloat(3.25)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := om.NewArray(f, om.TrueObj, SmallIntFor(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := om.StoreSlot(arr, 1, om.FalseObj); err != nil {
		t.Fatal(err)
	}
	om.DefineClass("Scratch", FormatPointers, 2)
	if _, err := om.NewString("dirty"); err != nil {
		t.Fatal(err)
	}
}

// sameBootState asserts a and b are observationally identical booted
// memories: same watermark, same class table, same heap words, and — the
// address-determinism clincher — the next allocation lands on the same
// oop with the same contents.
func sameBootState(t *testing.T, a, b *ObjectMemory) {
	t.Helper()
	if a.HeapUsed() != b.HeapUsed() {
		t.Fatalf("HeapUsed: %d vs %d", a.HeapUsed(), b.HeapUsed())
	}
	if a.ClassCount() != b.ClassCount() {
		t.Fatalf("ClassCount: %d vs %d", a.ClassCount(), b.ClassCount())
	}
	aw := a.HeapRange(0, a.HeapUsed())
	bw := b.HeapRange(0, b.HeapUsed())
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("heap word %d: %#x vs %#x", i, aw[i], bw[i])
		}
	}
	af, err := a.NewFloat(1.5)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := b.NewFloat(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if af != bf {
		t.Fatalf("allocation addresses diverge after reset: %#x vs %#x", af, bf)
	}
}

func TestResetToSealRestoresBootState(t *testing.T) {
	om := NewBootedObjectMemory()
	om.Seal()
	mutate(t, om)
	om.ResetToSeal()
	sameBootState(t, om, NewBootedObjectMemory())
}

func TestResetToSealIsIdempotent(t *testing.T) {
	om := NewBootedObjectMemory()
	om.Seal()
	for i := 0; i < 3; i++ {
		mutate(t, om)
		om.ResetToSeal()
	}
	om.ResetToSeal() // reset with nothing dirty
	sameBootState(t, om, NewBootedObjectMemory())
}

// TestResetToSealAllocFree is an allocation-regression gate: rewinding an
// arena must not allocate, no matter how dirty it is. If this fires, the
// dirty-span bookkeeping regressed and pooled environments lost their
// reason to exist.
func TestResetToSealAllocFree(t *testing.T) {
	om := NewBootedObjectMemory()
	om.Seal()
	if avg := testing.AllocsPerRun(50, func() {
		mutateQuiet(om)
		om.ResetToSeal()
	}); avg > float64(allocsPerMutateQuiet) {
		t.Fatalf("mutate+reset allocates %.1f/run, want <= %d (reset itself must be alloc-free)", avg, allocsPerMutateQuiet)
	}
}

// allocsPerMutateQuiet bounds the Go allocations mutateQuiet itself may
// perform (error paths, class bookkeeping); the reset must add zero.
const allocsPerMutateQuiet = 2

func mutateQuiet(om *ObjectMemory) {
	f, _ := om.NewFloat(3.25)
	arr, _ := om.NewArray(f, om.TrueObj)
	_ = om.StoreSlot(arr, 0, om.FalseObj)
}

func TestAcquireBootedMatchesFreshBoot(t *testing.T) {
	om := AcquireBooted()
	mutate(t, om)
	ReleaseBooted(om)
	got := AcquireBooted()
	defer ReleaseBooted(got)
	sameBootState(t, got, NewBootedObjectMemory())
}

func TestReplayHeapRangeValidatesWatermark(t *testing.T) {
	om := NewBootedObjectMemory()
	om.Seal()
	start := om.HeapUsed()
	if _, err := om.NewFloat(2.5); err != nil {
		t.Fatal(err)
	}
	delta := om.HeapRange(start, om.HeapUsed())

	om.ResetToSeal()
	if err := om.ReplayHeapRange(start+1, delta); err == nil {
		t.Fatal("replay at wrong watermark must fail")
	}
	if err := om.ReplayHeapRange(start, delta); err != nil {
		t.Fatalf("replay at correct watermark: %v", err)
	}
	f, err := om.NewFloat(1.0)
	if err != nil {
		t.Fatal(err)
	}
	_ = f

	// The replayed span must be byte-identical to the original effect.
	om2 := NewBootedObjectMemory()
	w, err := om2.NewFloat(2.5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := om.FloatValueOf(w)
	if err != nil {
		t.Fatalf("replayed float not readable at original oop: %v", err)
	}
	if v != 2.5 {
		t.Fatalf("replayed float reads %v, want 2.5", v)
	}
}
