package heap

import (
	"errors"
	"testing"
)

func TestMemoryMapAndAccess(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map("a", 100, 10, true); err != nil {
		t.Fatal(err)
	}
	m.MustWrite(105, 42)
	if got := m.MustRead(105); got != 42 {
		t.Fatalf("read back %d", got)
	}
}

func TestMemoryFaults(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map("rw", 100, 10, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("ro", 200, 10, false); err != nil {
		t.Fatal(err)
	}

	if _, err := m.Read(50); err == nil {
		t.Fatal("unmapped read must fault")
	} else {
		var f *Fault
		if !errors.As(err, &f) || f.Kind != AccessRead || f.Addr != 50 {
			t.Fatalf("wrong fault %v", err)
		}
	}
	if err := m.Write(250, 1); err == nil {
		t.Fatal("unmapped write must fault")
	}
	if err := m.Write(205, 1); err == nil {
		t.Fatal("read-only write must fault")
	}
	if _, err := m.Read(205); err != nil {
		t.Fatalf("read-only read must succeed: %v", err)
	}
}

func TestMemoryOverlapRejected(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map("a", 100, 10, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("b", 105, 10, true); err == nil {
		t.Fatal("overlap must be rejected")
	}
	if _, err := m.Map("c", 110, 10, true); err != nil {
		t.Fatalf("adjacent region must be accepted: %v", err)
	}
	if _, err := m.Map("d", 100, 0, true); err == nil {
		t.Fatal("empty region must be rejected")
	}
}

func TestMemorySnapshotRestore(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map("a", 0, 4, true); err != nil {
		t.Fatal(err)
	}
	m.MustWrite(0, 1)
	m.MustWrite(1, 2)
	snap := m.Snapshot()
	m.MustWrite(0, 99)
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m.MustRead(0) != 1 || m.MustRead(1) != 2 {
		t.Fatal("restore did not bring back contents")
	}
}

func TestRegionAt(t *testing.T) {
	m := NewMemory()
	r, err := m.Map("a", 100, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.RegionAt(100) != r || m.RegionAt(109) != r {
		t.Fatal("RegionAt misses region bounds")
	}
	if m.RegionAt(110) != nil || m.RegionAt(99) != nil {
		t.Fatal("RegionAt matches outside region")
	}
}
