package heap

import (
	"testing"
	"testing/quick"
)

func TestSmallIntTaggingRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, MinSmallInt, MaxSmallInt, MinSmallInt + 1, MaxSmallInt - 1}
	for _, v := range cases {
		w := SmallIntFor(v)
		if !IsSmallInt(w) {
			t.Errorf("SmallIntFor(%d) not tagged", v)
		}
		if got := SmallIntValue(w); got != v {
			t.Errorf("roundtrip %d -> %d", v, got)
		}
	}
}

func TestSmallIntTaggingRoundTripProperty(t *testing.T) {
	f := func(raw int32) bool {
		v := int64(raw)
		if !IsIntegerValue(v) {
			return true // outside the 31-bit range, not a SmallInteger
		}
		w := SmallIntFor(v)
		return IsSmallInt(w) && SmallIntValue(w) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsIntegerValueBounds(t *testing.T) {
	if !IsIntegerValue(MinSmallInt) || !IsIntegerValue(MaxSmallInt) {
		t.Fatal("range endpoints must be integer values")
	}
	if IsIntegerValue(MinSmallInt-1) || IsIntegerValue(MaxSmallInt+1) {
		t.Fatal("values outside the range must not be integer values")
	}
}

func TestObjectRefsAreNotSmallInts(t *testing.T) {
	om := NewBootedObjectMemory()
	for _, w := range []Word{om.NilObj, om.TrueObj, om.FalseObj} {
		if IsSmallInt(w) {
			t.Errorf("special object %#x is tagged as integer", uint64(w))
		}
		if !IsObjectRef(w) {
			t.Errorf("special object %#x is not an object ref", uint64(w))
		}
	}
}

func TestFormatStrings(t *testing.T) {
	for f := FormatFixed; f <= FormatCompiledMethod; f++ {
		if f.String() == "" {
			t.Errorf("format %d has empty name", f)
		}
	}
	if !FormatPointers.IsIndexable() || FormatFixed.IsIndexable() {
		t.Error("indexability misclassified")
	}
}
