package sym

import (
	"fmt"
	"sort"
	"strings"

	"cogdiff/internal/heap"
)

// TypedValue is a solver assignment for one variable: a semantic type
// plus enough structure to materialize a concrete VM value from it.
type TypedValue struct {
	Kind       TypeKind
	Int        int64   // value for KindSmallInt
	Float      float64 // value for KindFloat
	ClassIndex int     // class for KindPointer
	Format     heap.Format
	SlotCount  int // body slots for KindPointer
}

func (tv TypedValue) String() string {
	switch tv.Kind {
	case KindSmallInt:
		return fmt.Sprintf("%d", tv.Int)
	case KindFloat:
		return fmt.Sprintf("%g", tv.Float)
	case KindNil:
		return "nil"
	case KindTrue:
		return "true"
	case KindFalse:
		return "false"
	case KindPointer:
		return fmt.Sprintf("obj(class=%d,%s,slots=%d)", tv.ClassIndex, tv.Format, tv.SlotCount)
	}
	return "?"
}

// Model is a satisfying assignment produced by the constraint solver. The
// differential tester interprets it together with the abstract frame
// structure to build a concrete VM input frame (§3.2).
type Model struct {
	// StackSize is the number of operand stack entries the input frame
	// must materialize.
	StackSize int
	// Values assigns a typed value to each constrained variable (by ID).
	// Unconstrained variables materialize as plain objects.
	Values map[int]TypedValue
	// Alias maps a variable ID to the representative variable ID whose
	// object it must share (from Identical constraints).
	Alias map[int]int
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{Values: make(map[int]TypedValue), Alias: make(map[int]int)}
}

// Rep returns the representative ID for id following alias links.
func (m *Model) Rep(id int) int {
	for {
		next, ok := m.Alias[id]
		if !ok || next == id {
			return id
		}
		id = next
	}
}

// ValueOf returns the assignment for a variable, following aliases.
func (m *Model) ValueOf(v *Var) (TypedValue, bool) {
	tv, ok := m.Values[m.Rep(v.ID)]
	return tv, ok
}

// Set assigns a value to a variable ID.
func (m *Model) Set(id int, tv TypedValue) { m.Values[id] = tv }

func (m *Model) String() string {
	ids := make([]int, 0, len(m.Values))
	for id := range m.Values {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids)+1)
	parts = append(parts, fmt.Sprintf("stackSize=%d", m.StackSize))
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("v%d=%s", id, m.Values[id]))
	}
	return strings.Join(parts, " ")
}
