package sym

import (
	"fmt"
	"strings"

	"cogdiff/internal/heap"
)

// TypeKind is the semantic type domain of a value, as seen by the
// constraint model (§3.3): the model records isSmallInteger(v) rather than
// (v & 1) == 1, keeping constraints address- and representation-independent.
type TypeKind int

const (
	KindSmallInt TypeKind = iota
	KindFloat
	KindNil
	KindTrue
	KindFalse
	// KindPointer is any non-immediate heap object that is not one of the
	// singled-out kinds above.
	KindPointer

	NumTypeKinds
)

func (k TypeKind) String() string {
	switch k {
	case KindSmallInt:
		return "SmallInteger"
	case KindFloat:
		return "Float"
	case KindNil:
		return "nil"
	case KindTrue:
		return "true"
	case KindFalse:
		return "false"
	case KindPointer:
		return "object"
	}
	return fmt.Sprintf("TypeKind(%d)", int(k))
}

// CmpOp enumerates comparison operators.
type CmpOp int

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Negated returns the complementary comparison.
func (o CmpOp) Negated() CmpOp {
	return [...]CmpOp{CmpNE, CmpEQ, CmpGE, CmpGT, CmpLE, CmpLT}[o]
}

// Constraint is one semantic path condition.
type Constraint interface {
	constraint()
	String() string
}

// TypeIs asserts the semantic type of a variable.
type TypeIs struct {
	V    *Var
	Kind TypeKind
}

// ClassIs asserts classIndexOf(V) = ClassIndex.
type ClassIs struct {
	V          *Var
	ClassIndex int
}

// FormatIs asserts the heap format of the object bound to V.
type FormatIs struct {
	V *Var
	F heap.Format
}

// ICmp is an integer comparison between two expressions.
type ICmp struct {
	Op   CmpOp
	L, R IntExpr
}

// FCmp is a float comparison between two expressions.
type FCmp struct {
	Op   CmpOp
	L, R FloatExpr
}

// InSmallIntRange asserts the expression fits the tagged SmallInteger
// range. It is kept as a single atom so its negation yields the paper's
// disjunction (Fig. 2: s3 >= max OR s3 <= min).
type InSmallIntRange struct{ E IntExpr }

// StackSizeAtLeast asserts the operand stack holds at least N values.
// Fig. 2's "operand_stack_size > 1" is StackSizeAtLeast{2}.
type StackSizeAtLeast struct{ N int }

// SlotCountAtLeast asserts the object bound to V has at least N body slots.
type SlotCountAtLeast struct {
	V *Var
	N int
}

// Identical asserts two variables are the very same object (pointer
// identity), used by ==.
type Identical struct{ A, B *Var }

// Bool is a constant condition (from constant-folded checks).
type Bool struct{ B bool }

// Not negates a constraint.
type Not struct{ C Constraint }

// Opaque carries a constraint in display form only — used when loading
// cached explorations, whose constraint paths serialize as text. Opaque
// constraints keep signatures and reports intact but cannot be solved.
type Opaque struct{ Text string }

// AllOf is a conjunction.
type AllOf []Constraint

// AnyOf is a disjunction.
type AnyOf []Constraint

func (TypeIs) constraint()           {}
func (ClassIs) constraint()          {}
func (FormatIs) constraint()         {}
func (ICmp) constraint()             {}
func (FCmp) constraint()             {}
func (InSmallIntRange) constraint()  {}
func (StackSizeAtLeast) constraint() {}
func (SlotCountAtLeast) constraint() {}
func (Identical) constraint()        {}
func (Bool) constraint()             {}
func (Not) constraint()              {}
func (Opaque) constraint()           {}
func (AllOf) constraint()            {}
func (AnyOf) constraint()            {}

func (c TypeIs) String() string {
	switch c.Kind {
	case KindSmallInt:
		return fmt.Sprintf("isSmallInteger(%s)", c.V)
	case KindFloat:
		return fmt.Sprintf("isFloat(%s)", c.V)
	default:
		return fmt.Sprintf("is%s(%s)", strings.Title(c.Kind.String()), c.V)
	}
}
func (c ClassIs) String() string  { return fmt.Sprintf("classIndexOf(%s) = %d", c.V, c.ClassIndex) }
func (c FormatIs) String() string { return fmt.Sprintf("formatOf(%s) = %s", c.V, c.F) }
func (c ICmp) String() string     { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }
func (c FCmp) String() string     { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }
func (c InSmallIntRange) String() string {
	return fmt.Sprintf("isIntegerValue(%s)", c.E)
}
func (c StackSizeAtLeast) String() string { return fmt.Sprintf("operand_stack_size >= %d", c.N) }
func (c SlotCountAtLeast) String() string { return fmt.Sprintf("slotCountOf(%s) >= %d", c.V, c.N) }
func (c Identical) String() string        { return fmt.Sprintf("%s == %s", c.A, c.B) }
func (c Bool) String() string             { return fmt.Sprintf("%t", c.B) }
func (c Not) String() string              { return fmt.Sprintf("!(%s)", c.C) }
func (c Opaque) String() string           { return c.Text }

func (c AllOf) String() string {
	parts := make([]string, len(c))
	for i, e := range c {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

func (c AnyOf) String() string {
	parts := make([]string, len(c))
	for i, e := range c {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Negate returns the logical negation of c, pushing the negation inward
// where a direct complement exists (comparison flips, De Morgan).
func Negate(c Constraint) Constraint {
	switch n := c.(type) {
	case Not:
		return n.C
	case Bool:
		return Bool{!n.B}
	case ICmp:
		return ICmp{Op: n.Op.Negated(), L: n.L, R: n.R}
	case FCmp:
		return FCmp{Op: n.Op.Negated(), L: n.L, R: n.R}
	case AllOf:
		out := make(AnyOf, len(n))
		for i, e := range n {
			out[i] = Negate(e)
		}
		return out
	case AnyOf:
		out := make(AllOf, len(n))
		for i, e := range n {
			out[i] = Negate(e)
		}
		return out
	default:
		return Not{C: c}
	}
}

// Condition is one recorded path condition: the constraint that held
// during a concolic execution, plus bookkeeping used by the explorer.
type Condition struct {
	C Constraint
	// Assumed marks conditions that were forced by the explorer (they
	// belong to the negated prefix) and must not be negated again.
	Assumed bool
}

// Path is the ordered list of conditions one concolic execution recorded.
type Path []Condition

// Constraints returns the bare constraint list of the path.
func (p Path) Constraints() []Constraint {
	out := make([]Constraint, len(p))
	for i, c := range p {
		out[i] = c.C
	}
	return out
}

func (p Path) String() string {
	parts := make([]string, len(p))
	for i, c := range p {
		s := c.C.String()
		if c.Assumed {
			s = "*" + s
		}
		parts[i] = s
	}
	return strings.Join(parts, " AND ")
}

// Signature returns a canonical string identifying the path's constraint
// sequence; the explorer uses it to avoid re-exploring identical prefixes.
func (p Path) Signature() string {
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.C.String()
	}
	return strings.Join(parts, "&")
}
