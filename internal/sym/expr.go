package sym

import "fmt"

// BinOp enumerates arithmetic operators in symbolic expressions.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv // truncated toward negative infinity (Smalltalk //) for ints
	OpMod // Smalltalk \\
	OpQuo // truncated toward zero
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShiftLeft
	OpShiftRight
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "//", OpMod: "\\\\",
	OpQuo: "quo", OpBitAnd: "bitAnd", OpBitOr: "bitOr", OpBitXor: "bitXor",
	OpShiftLeft: "<<", OpShiftRight: ">>",
}

func (o BinOp) String() string { return binOpNames[o] }

// IsBitwise reports whether the operator is a bitwise operation, which the
// solver has no theory for (paper §4.3). Bitwise expressions may appear in
// *output* descriptions but must never reach a path constraint.
func (o BinOp) IsBitwise() bool {
	switch o {
	case OpBitAnd, OpBitOr, OpBitXor, OpShiftLeft, OpShiftRight:
		return true
	}
	return false
}

// IntExpr is a symbolic integer-valued expression (untagged values).
type IntExpr interface {
	intExpr()
	String() string
}

// IntConst is a literal integer.
type IntConst struct{ V int64 }

// IntValueOf is the untagged integer value of a variable; meaningful under
// a TypeIs(V, KindSmallInt) assumption.
type IntValueOf struct{ V *Var }

// SlotCountOf is the body slot count of the object bound to V.
type SlotCountOf struct{ V *Var }

// IntBin is a binary arithmetic node.
type IntBin struct {
	Op   BinOp
	L, R IntExpr
}

func (IntConst) intExpr()    {}
func (IntValueOf) intExpr()  {}
func (SlotCountOf) intExpr() {}
func (IntBin) intExpr()      {}

func (e IntConst) String() string    { return fmt.Sprintf("%d", e.V) }
func (e IntValueOf) String() string  { return fmt.Sprintf("intValueOf(%s)", e.V) }
func (e SlotCountOf) String() string { return fmt.Sprintf("slotCountOf(%s)", e.V) }
func (e IntBin) String() string      { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// FloatExpr is a symbolic float-valued expression.
type FloatExpr interface {
	floatExpr()
	String() string
}

// FloatConst is a literal float.
type FloatConst struct{ V float64 }

// FloatValueOf is the unboxed float value of a variable; meaningful under
// a TypeIs(V, KindFloat) assumption.
type FloatValueOf struct{ V *Var }

// IntToFloat coerces an integer expression (the asFloat conversion, one of
// the paper's semantic conditions in §3.3).
type IntToFloat struct{ E IntExpr }

// FloatBin is a binary float arithmetic node.
type FloatBin struct {
	Op   BinOp
	L, R FloatExpr
}

func (FloatConst) floatExpr()   {}
func (FloatValueOf) floatExpr() {}
func (IntToFloat) floatExpr()   {}
func (FloatBin) floatExpr()     {}

func (e FloatConst) String() string   { return fmt.Sprintf("%g", e.V) }
func (e FloatValueOf) String() string { return fmt.Sprintf("floatValueOf(%s)", e.V) }
func (e IntToFloat) String() string   { return fmt.Sprintf("intToFloat(%s)", e.E) }
func (e FloatBin) String() string     { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// ValExpr symbolically describes one VM value (a tagged word): where it
// came from and, for derived values, how it was computed. Abstract output
// frames are made of ValExprs.
type ValExpr interface {
	valExpr()
	String() string
}

// VarRef is an unmodified input value.
type VarRef struct{ V *Var }

// IntObj is a tagged small integer holding E.
type IntObj struct{ E IntExpr }

// FloatObj is a boxed float holding E.
type FloatObj struct{ E FloatExpr }

// BoolObj is the true/false object chosen by condition C.
type BoolObj struct{ C Constraint }

// KnownObj is a well-known constant value: nil, true, false, a method
// literal, or a class object.
type KnownObj struct{ Name string }

func (VarRef) valExpr()   {}
func (IntObj) valExpr()   {}
func (FloatObj) valExpr() {}
func (BoolObj) valExpr()  {}
func (KnownObj) valExpr() {}

func (e VarRef) String() string   { return e.V.String() }
func (e IntObj) String() string   { return fmt.Sprintf("int(%s)", e.E) }
func (e FloatObj) String() string { return fmt.Sprintf("float(%s)", e.E) }
func (e BoolObj) String() string  { return fmt.Sprintf("bool(%s)", e.C) }
func (e KnownObj) String() string { return e.Name }

// VarsOfInt collects the variables appearing in an integer expression.
func VarsOfInt(e IntExpr, into map[int]*Var) {
	switch n := e.(type) {
	case IntValueOf:
		into[n.V.ID] = n.V
	case SlotCountOf:
		into[n.V.ID] = n.V
	case IntBin:
		VarsOfInt(n.L, into)
		VarsOfInt(n.R, into)
	}
}

// VarsOfFloat collects the variables appearing in a float expression.
func VarsOfFloat(e FloatExpr, into map[int]*Var) {
	switch n := e.(type) {
	case FloatValueOf:
		into[n.V.ID] = n.V
	case IntToFloat:
		VarsOfInt(n.E, into)
	case FloatBin:
		VarsOfFloat(n.L, into)
		VarsOfFloat(n.R, into)
	}
}

// HasBitwise reports whether an integer expression contains bitwise
// operations the solver cannot reason about.
func HasBitwise(e IntExpr) bool {
	if b, ok := e.(IntBin); ok {
		return b.Op.IsBitwise() || HasBitwise(b.L) || HasBitwise(b.R)
	}
	return false
}
