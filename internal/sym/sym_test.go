package sym

import (
	"strings"
	"testing"

	"cogdiff/internal/heap"
)

func TestUniverseInterning(t *testing.T) {
	u := NewUniverse()
	r1 := u.Receiver()
	r2 := u.Receiver()
	if r1 != r2 {
		t.Fatal("receiver not interned")
	}
	s0 := u.Stack(0)
	s0b := u.Stack(0)
	s1 := u.Stack(1)
	if s0 != s0b || s0 == s1 {
		t.Fatal("stack vars not interned correctly")
	}
	slot := u.Slot(r1, 2)
	if u.Slot(r1, 2) != slot {
		t.Fatal("slot var not interned")
	}
	if u.Slot(s0, 2) == slot {
		t.Fatal("slot vars of different owners must differ")
	}
	if u.ByID(r1.ID) != r1 {
		t.Fatal("ByID lookup broken")
	}
	if u.Count() != 5 {
		t.Fatalf("expected 5 vars, got %d", u.Count())
	}
}

func TestNegateInvolution(t *testing.T) {
	u := NewUniverse()
	v := u.Stack(0)
	w := u.Stack(1)
	cases := []Constraint{
		TypeIs{v, KindSmallInt},
		ClassIs{v, heap.ClassIndexArray},
		FormatIs{v, heap.FormatPointers},
		ICmp{CmpLT, IntValueOf{v}, IntValueOf{w}},
		FCmp{CmpGE, FloatValueOf{v}, FloatConst{1.5}},
		InSmallIntRange{IntBin{OpAdd, IntValueOf{v}, IntValueOf{w}}},
		StackSizeAtLeast{2},
		SlotCountAtLeast{v, 3},
		Identical{v, w},
		Bool{true},
		AllOf{TypeIs{v, KindSmallInt}, TypeIs{w, KindFloat}},
		AnyOf{TypeIs{v, KindNil}, TypeIs{v, KindTrue}},
	}
	for _, c := range cases {
		nn := Negate(Negate(c))
		if nn.String() != c.String() {
			t.Errorf("double negation of %s gives %s", c, nn)
		}
	}
}

func TestNegateComparisonFlips(t *testing.T) {
	u := NewUniverse()
	v := u.Stack(0)
	c := ICmp{CmpLT, IntValueOf{v}, IntConst{5}}
	n, ok := Negate(c).(ICmp)
	if !ok || n.Op != CmpGE {
		t.Fatalf("negated < should be >=, got %v", Negate(c))
	}
}

func TestNegateDeMorgan(t *testing.T) {
	u := NewUniverse()
	v := u.Stack(0)
	c := AllOf{
		ICmp{CmpLT, IntValueOf{v}, IntConst{10}},
		ICmp{CmpGT, IntValueOf{v}, IntConst{0}},
	}
	n, ok := Negate(c).(AnyOf)
	if !ok || len(n) != 2 {
		t.Fatalf("negated conjunction should be disjunction, got %v", Negate(c))
	}
}

func TestCmpOpNegated(t *testing.T) {
	pairs := map[CmpOp]CmpOp{
		CmpEQ: CmpNE, CmpNE: CmpEQ, CmpLT: CmpGE,
		CmpGE: CmpLT, CmpLE: CmpGT, CmpGT: CmpLE,
	}
	for op, want := range pairs {
		if op.Negated() != want {
			t.Errorf("%s negated should be %s, got %s", op, want, op.Negated())
		}
	}
}

func TestVarsCollection(t *testing.T) {
	u := NewUniverse()
	a, b := u.Stack(0), u.Stack(1)
	e := IntBin{OpAdd, IntValueOf{a}, IntBin{OpMul, IntValueOf{b}, IntConst{2}}}
	vars := map[int]*Var{}
	VarsOfInt(e, vars)
	if len(vars) != 2 {
		t.Fatalf("expected 2 vars, got %d", len(vars))
	}
	fe := FloatBin{OpAdd, FloatValueOf{a}, IntToFloat{IntValueOf{b}}}
	fvars := map[int]*Var{}
	VarsOfFloat(fe, fvars)
	if len(fvars) != 2 {
		t.Fatalf("expected 2 float vars, got %d", len(fvars))
	}
}

func TestHasBitwise(t *testing.T) {
	u := NewUniverse()
	v := u.Stack(0)
	if HasBitwise(IntBin{OpAdd, IntValueOf{v}, IntConst{1}}) {
		t.Error("add is not bitwise")
	}
	if !HasBitwise(IntBin{OpAdd, IntBin{OpBitAnd, IntValueOf{v}, IntConst{1}}, IntConst{0}}) {
		t.Error("nested bitAnd not detected")
	}
}

func TestPathSignatureAndString(t *testing.T) {
	u := NewUniverse()
	v := u.Stack(0)
	p := Path{
		{C: StackSizeAtLeast{1}, Assumed: true},
		{C: TypeIs{v, KindSmallInt}},
	}
	if !strings.Contains(p.String(), "*operand_stack_size >= 1") {
		t.Errorf("assumed condition not marked: %s", p)
	}
	q := Path{
		{C: StackSizeAtLeast{1}},
		{C: TypeIs{v, KindSmallInt}, Assumed: true},
	}
	if p.Signature() != q.Signature() {
		t.Error("signature must ignore assumed flags")
	}
	if len(p.Constraints()) != 2 {
		t.Error("constraints extraction wrong")
	}
}

func TestModelAlias(t *testing.T) {
	u := NewUniverse()
	a, b := u.Stack(0), u.Stack(1)
	m := NewModel()
	m.Alias[b.ID] = a.ID
	m.Set(a.ID, TypedValue{Kind: KindSmallInt, Int: 7})
	tv, ok := m.ValueOf(b)
	if !ok || tv.Int != 7 {
		t.Fatal("alias lookup failed")
	}
	if m.Rep(b.ID) != a.ID {
		t.Fatal("rep wrong")
	}
}

func TestConstraintStrings(t *testing.T) {
	u := NewUniverse()
	v := u.Stack(0)
	if got := (TypeIs{v, KindSmallInt}).String(); got != "isSmallInteger(s0)" {
		t.Errorf("TypeIs prints %q", got)
	}
	if got := (StackSizeAtLeast{2}).String(); got != "operand_stack_size >= 2" {
		t.Errorf("StackSizeAtLeast prints %q", got)
	}
	if got := (InSmallIntRange{IntValueOf{v}}).String(); got != "isIntegerValue(intValueOf(s0))" {
		t.Errorf("InSmallIntRange prints %q", got)
	}
}

func TestTypedValueString(t *testing.T) {
	for _, tv := range []TypedValue{
		{Kind: KindSmallInt, Int: 3},
		{Kind: KindFloat, Float: 2.5},
		{Kind: KindNil}, {Kind: KindTrue}, {Kind: KindFalse},
		{Kind: KindPointer, ClassIndex: 6, Format: heap.FormatPointers, SlotCount: 2},
	} {
		if tv.String() == "" || tv.String() == "?" {
			t.Errorf("typed value %v prints %q", tv.Kind, tv.String())
		}
	}
}
