// Package sym implements the symbolic constraint model of the concolic
// execution engine (paper §3.2–§3.3, Fig. 3): symbolic variables grouped
// in abstract frames and abstract objects, semantic type constraints
// (isSmallInteger, classIndexOf, …), linear integer and float comparisons,
// and structural constraints on operand-stack size and object slot counts.
//
// Crucially, constraints model *VM semantics*, not memory manipulation:
// tagging, header packing and pointer arithmetic never appear, so the
// solver needs no bitwise theory (mirroring the paper's solver limits).
package sym

import (
	"fmt"
	"sync"
)

// RoleKind identifies what a symbolic variable stands for inside the
// abstract input frame.
type RoleKind int

const (
	// RoleReceiver is the frame's receiver object.
	RoleReceiver RoleKind = iota
	// RoleArg is argument Index of the frame.
	RoleArg
	// RoleTemp is (non-argument) temporary Index of the frame.
	RoleTemp
	// RoleStack is operand stack slot Index, counted from the bottom of
	// the operand stack.
	RoleStack
	// RoleSlot is body slot Index of the object bound to variable OwnerID.
	RoleSlot
)

func (k RoleKind) String() string {
	switch k {
	case RoleReceiver:
		return "receiver"
	case RoleArg:
		return "arg"
	case RoleTemp:
		return "temp"
	case RoleStack:
		return "s"
	case RoleSlot:
		return "slot"
	}
	return "var"
}

// Role is the stable identity of a symbolic variable. Variables are
// interned by role so that constraints recorded in different concolic
// iterations refer to the same variable.
type Role struct {
	Kind    RoleKind
	Index   int
	OwnerID int // variable ID of the owning object for RoleSlot; -1 otherwise
}

// Var is a symbolic variable standing for one abstract input value.
type Var struct {
	ID   int
	Role Role
}

func (v *Var) String() string {
	if v == nil {
		return "<nil var>"
	}
	switch v.Role.Kind {
	case RoleReceiver:
		return "receiver"
	case RoleSlot:
		return fmt.Sprintf("v%d.slot%d", v.Role.OwnerID, v.Role.Index)
	default:
		return fmt.Sprintf("%s%d", v.Role.Kind, v.Role.Index)
	}
}

// Universe interns symbolic variables by role.
//
// A universe is safe for concurrent use. Exploration itself is
// single-goroutine, but the parallel campaign engine shares one cached
// exploration — and therefore its universe — across concurrent
// differential-test units, whose frame builders intern variables on
// demand.
type Universe struct {
	mu     sync.RWMutex
	vars   []*Var
	byRole map[Role]*Var
}

// NewUniverse returns an empty variable universe.
func NewUniverse() *Universe {
	return &Universe{byRole: make(map[Role]*Var)}
}

// Of returns the variable for role, creating it on first use.
func (u *Universe) Of(role Role) *Var {
	u.mu.RLock()
	v, ok := u.byRole[role]
	u.mu.RUnlock()
	if ok {
		return v
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if v, ok := u.byRole[role]; ok {
		return v
	}
	v = &Var{ID: len(u.vars), Role: role}
	u.vars = append(u.vars, v)
	u.byRole[role] = v
	return v
}

// Receiver returns the receiver variable.
func (u *Universe) Receiver() *Var { return u.Of(Role{Kind: RoleReceiver, OwnerID: -1}) }

// Arg returns the variable for argument i.
func (u *Universe) Arg(i int) *Var { return u.Of(Role{Kind: RoleArg, Index: i, OwnerID: -1}) }

// Temp returns the variable for temporary i.
func (u *Universe) Temp(i int) *Var { return u.Of(Role{Kind: RoleTemp, Index: i, OwnerID: -1}) }

// Stack returns the variable for operand stack slot i (bottom-indexed).
func (u *Universe) Stack(i int) *Var { return u.Of(Role{Kind: RoleStack, Index: i, OwnerID: -1}) }

// Slot returns the variable for body slot i of the object bound to owner.
func (u *Universe) Slot(owner *Var, i int) *Var {
	return u.Of(Role{Kind: RoleSlot, Index: i, OwnerID: owner.ID})
}

// ByID returns the variable with the given ID, or nil.
func (u *Universe) ByID(id int) *Var {
	u.mu.RLock()
	defer u.mu.RUnlock()
	if id < 0 || id >= len(u.vars) {
		return nil
	}
	return u.vars[id]
}

// Vars returns all interned variables in creation order. The returned
// slice is a stable snapshot: variables interned later never mutate the
// elements it covers.
func (u *Universe) Vars() []*Var {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.vars
}

// Count returns the number of interned variables.
func (u *Universe) Count() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.vars)
}
