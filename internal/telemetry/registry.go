// Package telemetry is a zero-dependency metrics-and-tracing layer for
// the differential testing engines. It provides atomic counters and
// gauges, fixed-bucket latency histograms, phase spans feeding a
// ring-buffer trace, and snapshots that serialize to JSON and to the
// Prometheus text exposition format.
//
// Design contract:
//
//   - Every type is nil-safe. A nil *Registry hands out nil instruments,
//     and every instrument method is a no-op on a nil receiver, so
//     instrumented code never branches on "telemetry enabled".
//   - The hot path (Counter.Add, Gauge.Set, Histogram.Observe) is
//     allocation-free and lock-free: instruments are resolved once at
//     setup time and then touched only through atomics.
//   - Telemetry is a pure sink. Nothing in this package feeds back into
//     engine decisions, so enabling it cannot perturb report output.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count, zero for a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (corpus size, workers active).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n. No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value, zero for a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry owns every instrument of one engine run. Instruments are
// registered on first use and live for the registry's lifetime;
// registration takes a lock, subsequent updates are lock-free through
// the returned handle.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *Trace
}

// NewRegistry builds an empty registry with a trace ring of the default
// capacity.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		trace:    NewTrace(DefaultTraceCapacity),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// LabeledCounter returns the counter for name plus label pairs
// (alternating key, value). The labels become part of the series
// identity, rendered in Prometheus notation. Label resolution formats a
// key string, so call it on cold paths only and cache the handle.
func (r *Registry) LabeledCounter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(seriesKey(name, labels))
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Buckets must be sorted ascending;
// an implicit +Inf bucket is always appended. Returns nil on a nil
// registry. The bucket layout of the first registration wins.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// LabeledHistogram is Histogram with label pairs folded into the series
// identity, like LabeledCounter.
func (r *Registry) LabeledHistogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.Histogram(seriesKey(name, labels), buckets)
}

// Trace returns the registry's event ring, nil on a nil registry.
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// seriesKey folds label pairs into a canonical Prometheus-style series
// name: name{k1="v1",k2="v2"} with keys sorted.
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := name + "{"
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += p.k + `="` + escapeLabelValue(p.v) + `"`
	}
	return out + "}"
}

// escapeLabelValue escapes backslash, double quote and newline per the
// Prometheus text format.
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}
