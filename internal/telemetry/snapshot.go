package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// HistogramSnapshot is the frozen state of one histogram series.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds, excluding +Inf.
	Bounds []float64 `json:"bounds"`
	// Cumulative[i] counts observations <= Bounds[i]; the final extra
	// element is the total (+Inf bucket).
	Cumulative []int64 `json:"cumulative"`
	Sum        float64 `json:"sum"`
	Count      int64   `json:"count"`
}

// Snapshot is a consistent point-in-time copy of every instrument in a
// registry, suitable for serialization. Counter and gauge keys are full
// series names (labels folded in, Prometheus notation).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. Returns an empty snapshot on a nil
// registry so callers can serialize unconditionally.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		bounds, cum := h.Buckets()
		s.Histograms[k] = HistogramSnapshot{
			Bounds:     bounds,
			Cumulative: cum,
			Sum:        h.Sum(),
			Count:      h.Count(),
		}
	}
	return s
}

// MarshalJSON renders the snapshot with stable formatting (maps are
// sorted by encoding/json already).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// baseName strips the label block from a series key.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// withLabel injects one more label pair into a series key, preserving
// the existing label block.
func withLabel(series, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:len(series)-1] + "," + pair + "}"
	}
	return series + "{" + pair + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	writeFamily := func(keys []string, typ string, emit func(series string)) {
		sort.Strings(keys)
		seen := map[string]bool{}
		for _, k := range keys {
			base := baseName(k)
			if !seen[base] {
				seen[base] = true
				fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
			}
			emit(k)
		}
	}

	ck := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		ck = append(ck, k)
	}
	writeFamily(ck, "counter", func(series string) {
		fmt.Fprintf(&b, "%s %d\n", series, s.Counters[series])
	})

	gk := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gk = append(gk, k)
	}
	writeFamily(gk, "gauge", func(series string) {
		fmt.Fprintf(&b, "%s %d\n", series, s.Gauges[series])
	})

	hk := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hk = append(hk, k)
	}
	writeFamily(hk, "histogram", func(series string) {
		h := s.Histograms[series]
		base := baseName(series)
		bucketSeries := strings.Replace(series, base, base+"_bucket", 1)
		for i, bound := range h.Bounds {
			le := strconv.FormatFloat(bound, 'g', -1, 64)
			fmt.Fprintf(&b, "%s %d\n", withLabel(bucketSeries, "le", le), h.Cumulative[i])
		}
		inf := int64(0)
		if n := len(h.Cumulative); n > 0 {
			inf = h.Cumulative[n-1]
		}
		fmt.Fprintf(&b, "%s %d\n", withLabel(bucketSeries, "le", "+Inf"), inf)
		fmt.Fprintf(&b, "%s %s\n", strings.Replace(series, base, base+"_sum", 1),
			strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(&b, "%s %d\n", strings.Replace(series, base, base+"_count", 1), h.Count)
	})

	_, err := io.WriteString(w, b.String())
	return err
}

// ParsePrometheus parses text in the Prometheus exposition format and
// returns every sample keyed by its full series string (name plus label
// block, whitespace-normalized). Comment and blank lines are skipped;
// any other malformed line is an error. This is the validation half of
// the round-trip contract: everything WritePrometheus emits must parse
// back to the same values.
func ParsePrometheus(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q", ln+1, value)
		}
		if _, dup := out[series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", ln+1, series)
		}
		out[series] = v
	}
	return out, nil
}

// splitSample splits "name{labels} value" or "name value" at the last
// space outside the label block.
func splitSample(line string) (series, value string, err error) {
	end := strings.IndexByte(line, '}')
	rest := line
	offset := 0
	if end >= 0 {
		offset = end + 1
		rest = line[offset:]
	}
	sp := strings.IndexAny(rest, " \t")
	if sp < 0 {
		return "", "", fmt.Errorf("no sample value in %q", line)
	}
	series = strings.TrimSpace(line[:offset+sp])
	value = strings.TrimSpace(rest[sp:])
	if series == "" || value == "" || strings.ContainsAny(value, " \t") {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	if open := strings.IndexByte(series, '{'); open >= 0 && !strings.HasSuffix(series, "}") {
		return "", "", fmt.Errorf("unterminated label block in %q", line)
	}
	if !validSeriesName(baseName(series)) {
		return "", "", fmt.Errorf("invalid metric name in %q", line)
	}
	return series, value, nil
}

func validSeriesName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
