package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress periodically renders a one-line status from registry
// snapshots, replacing ad-hoc per-unit progress printf in the engines.
// It runs on its own goroutine and never touches engine state, so it
// cannot perturb determinism; the rendered line goes to a side channel
// (stderr), never into reports.
type Progress struct {
	w        io.Writer
	reg      *Registry
	render   func(Snapshot) string
	interval time.Duration

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartProgress begins emitting a rendered line every interval. Returns
// nil (safe to Stop) when the registry or writer is absent.
func StartProgress(reg *Registry, w io.Writer, interval time.Duration, render func(Snapshot) string) *Progress {
	if reg == nil || w == nil || render == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	p := &Progress{
		w: w, reg: reg, render: render, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.emit()
		case <-p.stop:
			return
		}
	}
}

func (p *Progress) emit() {
	if line := p.render(p.reg.Snapshot()); line != "" {
		fmt.Fprintln(p.w, line)
	}
}

// Stop halts the loop and emits one final line so short runs still get
// a summary. No-op on a nil receiver; safe to call more than once.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
		p.emit()
	})
}
