package telemetry

import (
	"sync"
	"time"
)

// DefaultTraceCapacity bounds the ring of recent span events.
const DefaultTraceCapacity = 256

// Event is one completed span in the trace ring.
type Event struct {
	Seq   uint64        `json:"seq"`
	Phase string        `json:"phase"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// Trace is a fixed-capacity ring buffer of recent span events. Appends
// and reads take a mutex; spans bound whole phases or units of work, so
// the lock is never on a per-instruction path.
type Trace struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever appended
}

// NewTrace builds a ring holding the last capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{ring: make([]Event, capacity)}
}

// Append records one completed event. No-op on a nil receiver.
func (t *Trace) Append(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.next
	t.ring[t.next%uint64(len(t.ring))] = e
	t.next++
	t.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	cap64 := uint64(len(t.ring))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]Event, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, t.ring[s%cap64])
	}
	return out
}

// Span measures one phase of work. It is a value type: starting a span
// allocates nothing, and End routes the measured duration into the
// phase histogram and the trace ring. The zero Span is a no-op.
type Span struct {
	phase string
	start time.Time
	hist  *Histogram
	trace *Trace
}

// StartSpan opens a span for the named phase. The duration lands in the
// histogram series cogdiff_span_seconds{phase=name} and in the trace
// ring. Safe on a nil registry (returns a no-op span).
func (r *Registry) StartSpan(phase string) Span {
	if r == nil {
		return Span{}
	}
	return Span{
		phase: phase,
		start: time.Now(), //cogdiff:allow-nondeterminism span timing is telemetry by definition
		hist:  r.LabeledHistogram("cogdiff_span_seconds", DurationBuckets, "phase", phase),
		trace: r.trace,
	}
}

// End closes the span. No-op for the zero Span.
func (s Span) End() {
	if s.hist == nil && s.trace == nil {
		return
	}
	d := time.Since(s.start) //cogdiff:allow-nondeterminism span timing is telemetry by definition
	s.hist.ObserveDuration(d)
	s.trace.Append(Event{Phase: s.phase, Start: s.start, Dur: d})
}
