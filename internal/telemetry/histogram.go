package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// DurationBuckets is the default latency bucket layout, in seconds:
// exponential from 1µs to ~16s, wide enough for a single peephole pass
// and a whole fuzzing batch alike.
var DurationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observe is lock-free and allocation-free; bucket bounds are immutable
// after construction.
type Histogram struct {
	bounds []float64 // sorted upper bounds, excluding +Inf
	counts []atomic.Int64
	// sum accumulates the total of observed values as math.Float64bits
	// under compare-and-swap, so Sum is exact without a lock.
	sum   atomic.Uint64
	count atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the last slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations, zero for a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values, zero for a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket upper bounds (excluding the implicit +Inf)
// and the cumulative count per bucket, Prometheus-style: bucket i holds
// the number of observations <= bound i, and the final extra element is
// the total count (the +Inf bucket).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return bounds, cumulative
}
