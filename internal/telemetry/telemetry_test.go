package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	h := r.Histogram("h", DurationBuckets)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	sp := r.StartSpan("phase")
	sp.End()
	r.Trace().Append(Event{})
	if r.Trace().Events() != nil {
		t.Fatal("nil trace must have no events")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bounds %v cum %v", bounds, cum)
	}
	// <=1: {0.5, 1}; <=10: +{1.5, 10}; <=100: +{99, 100}; +Inf: +{101, 1e9}.
	want := []int64{2, 4, 6, 8}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(0.5+1+1.5+10+99+100+101+1e9)) > 1e-6 {
		t.Fatalf("sum %v", got)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("gauge")
			h := r.Histogram("hist", []float64{0.5})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				r.LabeledCounter("labeled", "k", "v").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*per {
		t.Fatalf("counter %d, want %d", got, workers*per)
	}
	if got := r.Gauge("gauge").Value(); got != workers*per {
		t.Fatalf("gauge %d, want %d", got, workers*per)
	}
	if got := r.Histogram("hist", nil).Count(); got != workers*per {
		t.Fatalf("histogram count %d, want %d", got, workers*per)
	}
	if got := r.LabeledCounter("labeled", "k", "v").Value(); got != workers*per {
		t.Fatalf("labeled counter %d, want %d", got, workers*per)
	}
}

func TestSeriesKeyCanonicalization(t *testing.T) {
	a := seriesKey("m", []string{"b", "2", "a", "1"})
	b := seriesKey("m", []string{"a", "1", "b", "2"})
	if a != b || a != `m{a="1",b="2"}` {
		t.Fatalf("series keys differ: %q vs %q", a, b)
	}
	esc := seriesKey("m", []string{"k", "a\"b\\c\nd"})
	if esc != `m{k="a\"b\\c\nd"}` {
		t.Fatalf("escaping wrong: %q", esc)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("cogdiff_units_tested_total").Add(42)
	r.LabeledCounter(MetricDifferences, "family", "behavioral difference").Add(3)
	r.Gauge(MetricFuzzCorpusSize).Set(17)
	r.Histogram("lat", []float64{0.001, 0.1}).Observe(0.05)

	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["cogdiff_units_tested_total"] != 42 {
		t.Fatalf("counter lost: %v", back.Counters)
	}
	if back.Counters[`cogdiff_differences_total{family="behavioral difference"}`] != 3 {
		t.Fatalf("labeled counter lost: %v", back.Counters)
	}
	if back.Gauges[MetricFuzzCorpusSize] != 17 {
		t.Fatalf("gauge lost: %v", back.Gauges)
	}
	h := back.Histograms["lat"]
	if h.Count != 1 || h.Sum != 0.05 || len(h.Cumulative) != 3 || h.Cumulative[1] != 1 {
		t.Fatalf("histogram lost: %+v", h)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("cogdiff_units_tested_total").Add(42)
	r.LabeledCounter(MetricDifferences, "family", "optimisation difference").Add(9)
	r.Gauge(MetricFuzzCorpusSize).Set(5)
	h := r.Histogram("cogdiff_batch_seconds", []float64{0.01, 1})
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, err := ParsePrometheus(text)
	if err != nil {
		t.Fatalf("emitted text does not parse: %v\n%s", err, text)
	}
	checks := map[string]float64{
		"cogdiff_units_tested_total":                                  42,
		`cogdiff_differences_total{family="optimisation difference"}`: 9,
		MetricFuzzCorpusSize:                                          5,
		`cogdiff_batch_seconds_bucket{le="0.01"}`:                     0,
		`cogdiff_batch_seconds_bucket{le="1"}`:                        1,
		`cogdiff_batch_seconds_bucket{le="+Inf"}`:                     2,
		"cogdiff_batch_seconds_sum":                                   2.5,
		"cogdiff_batch_seconds_count":                                 2,
	}
	for series, want := range checks {
		got, ok := samples[series]
		if !ok {
			t.Fatalf("series %s missing from exposition:\n%s", series, text)
		}
		if got != want {
			t.Fatalf("series %s = %v, want %v", series, got, want)
		}
	}
	if !strings.Contains(text, "# TYPE cogdiff_batch_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", text)
	}
}

func TestPrometheusDeterministicOutput(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.LabeledCounter("c_total", "x", "1").Inc()
		r.LabeledCounter("c_total", "x", "2").Inc()
		var b strings.Builder
		if err := r.Snapshot().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if build() != build() {
		t.Fatal("exposition output must be deterministic")
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value",
		"name not-a-number",
		`1leading_digit 3`,
		"dup 1\ndup 2",
	} {
		if _, err := ParsePrometheus(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
	ok, err := ParsePrometheus("# HELP x y\n\nx_total 3\n")
	if err != nil || ok["x_total"] != 3 {
		t.Fatalf("valid text rejected: %v %v", ok, err)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Append(Event{Phase: "p"})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(6+i) {
			t.Fatalf("event %d has seq %d, want %d (oldest-first)", i, e.Seq, 6+i)
		}
	}
}

func TestSpanRecordsHistogramAndTrace(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("explore")
	sp.End()
	s := r.Snapshot()
	h, ok := s.Histograms[`cogdiff_span_seconds{phase="explore"}`]
	if !ok || h.Count != 1 {
		t.Fatalf("span histogram missing: %+v", s.Histograms)
	}
	ev := r.Trace().Events()
	if len(ev) != 1 || ev[0].Phase != "explore" {
		t.Fatalf("trace events %+v", ev)
	}
}

func TestHistogramAllocationFreeObserve(t *testing.T) {
	h := newHistogram(DurationBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.001) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v times per call", allocs)
	}
	c := &Counter{}
	allocs = testing.AllocsPerRun(1000, func() { c.Inc() })
	if allocs != 0 {
		t.Fatalf("Counter.Inc allocates %v times per call", allocs)
	}
}
