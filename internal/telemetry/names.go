package telemetry

// The metric catalog. Engines reference these constants so the names
// stay consistent across the campaign, fuzzer, concolic explorer, JIT
// pipeline, CLI output and documentation (DESIGN.md "Observability").
const (
	// Concolic exploration.
	MetricPathsExplored     = "cogdiff_paths_explored_total"
	MetricSolverCalls       = "cogdiff_solver_calls_total"
	MetricExploreIterations = "cogdiff_explore_iterations_total"
	MetricCuratedOut        = "cogdiff_paths_curated_out_total"

	// Differential testing (campaign).
	MetricUnitsCompiled   = "cogdiff_units_compiled_total"
	MetricUnitsTested     = "cogdiff_units_tested_total"
	MetricVerdictsSkipped = "cogdiff_verdicts_skipped_total"
	// MetricDifferences carries a family label; MetricCauses a stage
	// label (front-end, pass:<name>, unreproducible). Both are bumped
	// only in the campaign's serial merge pass, which walks verdicts in
	// canonical order — so their totals equal the report tables exactly
	// at any worker count.
	MetricDifferences = "cogdiff_differences_total"
	MetricCauses      = "cogdiff_causes_total"

	// Crash containment.
	MetricPanicsContained = "cogdiff_panics_contained_total"

	// Exploration cache (internal/excache). Corrupt entries also count
	// as misses, so hits+misses equals total lookups.
	MetricCacheHits    = "cogdiff_excache_hits_total"
	MetricCacheMisses  = "cogdiff_excache_misses_total"
	MetricCacheCorrupt = "cogdiff_excache_corrupt_total"
	MetricCacheWrites  = "cogdiff_excache_writes_total"
	MetricCacheEvicted = "cogdiff_excache_evicted_total"

	// In-process compiled-code cache (internal/codecache). Counts may be
	// schedule-dependent at workers > 1 (racing double-misses); reports
	// are not.
	MetricCodeCacheHits   = "cogdiff_codecache_hits_total"
	MetricCodeCacheMisses = "cogdiff_codecache_misses_total"

	// Unit-cache keying. A fingerprint error means the affected test units
	// run uncached (correct but slow) — it must be visible, not silent.
	MetricUnitCacheFingerprintErrors = "cogdiff_unitcache_fingerprint_errors_total"

	// JIT pipeline. MetricPassSeconds carries a pass label.
	MetricPassSeconds = "cogdiff_pass_seconds"
	MetricPassesRun   = "cogdiff_passes_run_total"

	// Static IR verification (internal/irverify). Runs count one per
	// verified stage (front-end or pass prefix); violations count rule
	// hits, which reject the unit without executing it.
	MetricIRVerifyRuns       = "cogdiff_irverify_runs_total"
	MetricIRVerifyViolations = "cogdiff_irverify_violations_total"
	MetricIRVerifySeconds    = "cogdiff_irverify_seconds"

	// Fuzzing.
	MetricFuzzExecs            = "cogdiff_fuzz_execs_total"
	MetricFuzzDiscarded        = "cogdiff_fuzz_discarded_total"
	MetricFuzzBatches          = "cogdiff_fuzz_batches_total"
	MetricFuzzCorpusAdmissions = "cogdiff_fuzz_corpus_admissions_total"
	MetricFuzzCorpusSize       = "cogdiff_fuzz_corpus_size"
	MetricFuzzDifferences      = "cogdiff_fuzz_differences_total"

	// Differential-testing server (internal/server). Job counters carry a
	// type label (campaign, difftest, fuzz); completions additionally a
	// state label (done, failed, canceled). HTTP requests carry a route
	// label. The corpus gauges/counters describe the shared corpus store.
	MetricServerJobsSubmitted  = "cogdiff_server_jobs_submitted_total"
	MetricServerJobsCompleted  = "cogdiff_server_jobs_completed_total"
	MetricServerJobsRunning    = "cogdiff_server_jobs_running"
	MetricServerJobsQueued     = "cogdiff_server_jobs_queued"
	MetricServerJobSeconds     = "cogdiff_server_job_seconds"
	MetricServerHTTPRequests   = "cogdiff_server_http_requests_total"
	MetricServerSSEClients     = "cogdiff_server_sse_clients"
	MetricServerCorpusEntries  = "cogdiff_server_corpus_entries"
	MetricServerCorpusAdded    = "cogdiff_server_corpus_added_total"
	MetricServerCorpusDupes    = "cogdiff_server_corpus_duplicates_total"
	MetricServerCorpusRejected = "cogdiff_server_corpus_rejected_total"

	// Span phases (histogram series cogdiff_span_seconds{phase=...}).
	SpanExplore   = "explore"
	SpanTestUnit  = "test-unit"
	SpanMerge     = "merge"
	SpanFuzzBatch = "fuzz-batch"
	SpanFuzzExec  = "fuzz-exec"
)
