// Package codecache is the in-process compiled-code cache of the
// execution core. Differential testing compiles the same source body many
// times: every concolic path of a unit wants the same compiled method,
// fuzz iterations re-encounter the same sequences, and served campaign
// shards repeat whole units. The cache keys compiled bodies by full
// semantic identity — compiler mode and variant, ISA, pass limit, seeded
// defect configuration, method content, input stack, and the heap
// watermark at compile start — so a hit is exactly the artifact a fresh
// compile would have produced.
//
// Compilation is not heap-pure: the JIT front-end allocates literal
// objects in the object memory and bakes their oops (and other heap
// addresses) into the code as immediates. An entry therefore records the
// span of heap words the compile appended, and a hit replays those words
// at the same watermark before reusing the code. Keying on the watermark
// makes the replay sound: the addresses baked into the cached body are
// valid if and only if the heap is in the same state it was at compile
// time, which the arena seal/reset lifecycle guarantees.
package codecache

import (
	"sync"

	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/jit"
	"cogdiff/internal/telemetry"
)

// Entry is one cached compilation.
type Entry struct {
	// CM is the compiled method, shared by reference: compiled methods are
	// immutable once published, and sharing the Program also shares its
	// pre-decoded dispatch stream across every run.
	CM *jit.CompiledMethod
	// IROps is the post-pipeline IR opcode trace the compile emitted
	// through the OnIR hook, replayed on every hit so IR coverage signals
	// (the fuzzer's) are identical whether the body was compiled or reused.
	IROps []ir.Opc
	// HeapStart and HeapWords describe the compile's heap effect: the
	// words it appended to the object memory starting at word offset
	// HeapStart. A hit replays them so baked-in heap addresses stay valid.
	HeapStart int
	HeapWords []heap.Word
}

// Replay re-applies the entry's heap effect to om. It must be called
// before executing the cached code; an error means the heap is not at the
// entry's watermark (a keying bug, not a recoverable condition).
func (e *Entry) Replay(om *heap.ObjectMemory) error {
	if len(e.HeapWords) == 0 && om.HeapUsed() == e.HeapStart {
		return nil
	}
	return om.ReplayHeapRange(e.HeapStart, e.HeapWords)
}

// Cache is a bounded, concurrency-safe compiled-code cache. The zero
// value of *Cache (nil) is a valid always-miss cache, so callers never
// branch on "caching enabled".
type Cache struct {
	mu      sync.Mutex
	entries map[string]*Entry
	max     int
	hits    int64
	misses  int64

	hitCtr  *telemetry.Counter
	missCtr *telemetry.Counter
}

// DefaultMaxEntries bounds the cache when callers pass max <= 0. Entries
// are small (a compiled body plus its heap delta); 8192 comfortably
// covers a full campaign's distinct units times ISAs.
const DefaultMaxEntries = 8192

// New returns an empty cache holding at most max entries.
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Cache{entries: make(map[string]*Entry), max: max}
}

// SetMetrics attaches telemetry counters for hits and misses. Metrics are
// a pure observation sink: at worker counts above one, two workers can
// race to compile the same key and both count a miss, so counter values
// may vary by schedule even though reports never do.
func (c *Cache) SetMetrics(reg *telemetry.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.hitCtr = reg.Counter(telemetry.MetricCodeCacheHits)
	c.missCtr = reg.Counter(telemetry.MetricCodeCacheMisses)
}

// Lookup returns the entry for key, or nil on miss (or nil cache). The
// key is taken as bytes so the hot path's map probe does not allocate a
// string copy.
func (c *Cache) Lookup(key []byte) *Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	e := c.entries[string(key)]
	if e != nil {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if e != nil {
		c.hitCtr.Inc()
	} else {
		c.missCtr.Inc()
	}
	return e
}

// Store inserts an entry. When the cache is full it is flushed whole — a
// deterministic eviction policy (no recency state that could differ
// between schedules) that in practice never triggers mid-campaign.
func (c *Cache) Store(key []byte, e *Entry) {
	if c == nil || e == nil {
		return
	}
	c.mu.Lock()
	if _, exists := c.entries[string(key)]; !exists && len(c.entries) >= c.max {
		c.entries = make(map[string]*Entry)
	}
	c.entries[string(key)] = e
	c.mu.Unlock()
}

// Stats reports cumulative lookup hits and misses.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
