// Package codecache is the in-process compiled-code cache of the
// execution core. Differential testing compiles the same source body many
// times: every concolic path of a unit wants the same compiled method,
// fuzz iterations re-encounter the same sequences, and served campaign
// shards repeat whole units. The cache keys compiled bodies by full
// semantic identity — compiler mode and variant, ISA, pass limit, seeded
// defect configuration, method content, input stack, and the heap
// watermark at compile start — so a hit is exactly the artifact a fresh
// compile would have produced.
//
// Compilation is not heap-pure: the JIT front-end allocates literal
// objects in the object memory and bakes their oops (and other heap
// addresses) into the code as immediates. An entry therefore records the
// span of heap words the compile appended, and a hit replays those words
// at the same watermark before reusing the code. Keying on the watermark
// makes the replay sound: the addresses baked into the cached body are
// valid if and only if the heap is in the same state it was at compile
// time, which the arena seal/reset lifecycle guarantees.
package codecache

import (
	"sync"

	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/jit"
	"cogdiff/internal/telemetry"
)

// Entry is one cached compilation.
type Entry struct {
	// CM is the compiled method, shared by reference: compiled methods are
	// immutable once published, and sharing the Program also shares its
	// pre-decoded dispatch stream across every run.
	CM *jit.CompiledMethod
	// IROps is the post-pipeline IR opcode trace the compile emitted
	// through the OnIR hook, replayed on every hit so IR coverage signals
	// (the fuzzer's) are identical whether the body was compiled or reused.
	IROps []ir.Opc
	// HeapStart and HeapWords describe the compile's heap effect: the
	// words it appended to the object memory starting at word offset
	// HeapStart. A hit replays them so baked-in heap addresses stay valid.
	HeapStart int
	HeapWords []heap.Word
}

// Replay re-applies the entry's heap effect to om. It must be called
// before executing the cached code; an error means the heap is not at the
// entry's watermark (a keying bug, not a recoverable condition).
func (e *Entry) Replay(om *heap.ObjectMemory) error {
	if len(e.HeapWords) == 0 && om.HeapUsed() == e.HeapStart {
		return nil
	}
	return om.ReplayHeapRange(e.HeapStart, e.HeapWords)
}

// Cache is a bounded, concurrency-safe compiled-code cache. The zero
// value of *Cache (nil) is a valid always-miss cache, so callers never
// branch on "caching enabled".
//
// Capacity is enforced generationally: entries insert into the young
// generation, and when it reaches half the configured capacity it
// becomes the old generation (whose previous contents are dropped). A
// hit in the old generation promotes the entry back into young, so
// anything referenced within the last half-capacity of insertions
// survives an overflow. This replaces the original whole-cache flush at
// capacity, which zeroed the hit rate exactly when the cache was most
// valuable — long fuzz sessions and served campaigns that live past the
// entry bound.
type Cache struct {
	mu     sync.Mutex
	young  map[string]*Entry
	old    map[string]*Entry
	half   int // per-generation capacity (max/2)
	hits   int64
	misses int64

	hitCtr  *telemetry.Counter
	missCtr *telemetry.Counter
}

// DefaultMaxEntries bounds the cache when callers pass max <= 0. Entries
// are small (a compiled body plus its heap delta); 8192 comfortably
// covers a full campaign's distinct units times ISAs.
const DefaultMaxEntries = 8192

// New returns an empty cache holding at most max entries.
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	half := max / 2
	if half < 1 {
		half = 1
	}
	return &Cache{
		young: make(map[string]*Entry),
		old:   make(map[string]*Entry),
		half:  half,
	}
}

// SetMetrics attaches telemetry counters for hits and misses. Metrics are
// a pure observation sink: at worker counts above one, two workers can
// race to compile the same key and both count a miss, so counter values
// may vary by schedule even though reports never do.
func (c *Cache) SetMetrics(reg *telemetry.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.hitCtr = reg.Counter(telemetry.MetricCodeCacheHits)
	c.missCtr = reg.Counter(telemetry.MetricCodeCacheMisses)
}

// Lookup returns the entry for key, or nil on miss (or nil cache). The
// key is taken as bytes so the hot path's map probe does not allocate a
// string copy. A hit in the old generation promotes the entry into the
// young generation.
func (c *Cache) Lookup(key []byte) *Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	e := c.young[string(key)]
	if e == nil {
		if e = c.old[string(key)]; e != nil {
			delete(c.old, string(key))
			c.insertYoung(string(key), e)
		}
	}
	if e != nil {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if e != nil {
		c.hitCtr.Inc()
	} else {
		c.missCtr.Inc()
	}
	return e
}

// Store inserts an entry into the young generation (promoting a key that
// lives in the old one). Eviction is a pure function of the insertion
// sequence — no recency clocks or random sampling — so a serial run's
// cache behaviour is reproducible.
func (c *Cache) Store(key []byte, e *Entry) {
	if c == nil || e == nil {
		return
	}
	c.mu.Lock()
	k := string(key)
	if _, inYoung := c.young[k]; inYoung {
		c.young[k] = e
	} else {
		delete(c.old, k)
		c.insertYoung(k, e)
	}
	c.mu.Unlock()
}

// insertYoung adds one entry to the young generation, rotating the
// generations when young is full: old's contents are dropped, young
// becomes old, and the new entry starts the next young generation.
// Callers hold c.mu.
func (c *Cache) insertYoung(k string, e *Entry) {
	if len(c.young) >= c.half {
		c.old = c.young
		c.young = make(map[string]*Entry, c.half)
	}
	c.young[k] = e
}

// Stats reports cumulative lookup hits and misses.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the current entry count across both generations.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.young) + len(c.old)
}
