package codecache

import (
	"fmt"
	"testing"

	"cogdiff/internal/heap"
	"cogdiff/internal/jit"
	"cogdiff/internal/telemetry"
)

func TestLookupStoreAndStats(t *testing.T) {
	c := New(0)
	key := []byte("k1")
	if c.Lookup(key) != nil {
		t.Fatal("hit on empty cache")
	}
	e := &Entry{CM: &jit.CompiledMethod{}}
	c.Store(key, e)
	if got := c.Lookup(key); got != e {
		t.Fatalf("lookup returned %v, want stored entry", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

func TestKeyIsCopiedOnStore(t *testing.T) {
	c := New(0)
	key := []byte("mutable")
	c.Store(key, &Entry{})
	key[0] = 'X' // caller reuses its buffer; the cache must not care
	if c.Lookup([]byte("mutable")) == nil {
		t.Fatal("stored key aliased the caller's buffer")
	}
	if c.Lookup(key) != nil {
		t.Fatal("mutated buffer matched the stored key")
	}
}

func TestGenerationalEviction(t *testing.T) {
	c := New(4) // two generations of 2
	c.Store([]byte("a"), &Entry{})
	c.Store([]byte("b"), &Entry{})
	c.Store([]byte("c"), &Entry{}) // rotates: old={a,b}, young={c}
	if c.Len() != 3 {
		t.Fatalf("len %d after rotation, want 3", c.Len())
	}
	if c.Lookup([]byte("a")) == nil { // hit in old promotes a into young
		t.Fatal("old-generation entry lost at rotation")
	}
	c.Store([]byte("d"), &Entry{}) // rotates: old={c,a}, young={d} — drops b
	if c.Lookup([]byte("b")) != nil {
		t.Fatal("unreferenced old entry survived two rotations")
	}
	for _, k := range []string{"a", "c", "d"} {
		if c.Lookup([]byte(k)) == nil {
			t.Fatalf("entry %q lost; generational eviction must keep recent/promoted keys", k)
		}
	}
}

// TestHotEntrySurvivesColdStream is the regression test for the original
// flush-whole eviction: a continuously referenced entry must survive an
// unbounded stream of cold insertions. Under flush-at-capacity the hot
// entry was dropped every max insertions, zeroing the warm hit rate of
// long fuzz and serve sessions.
func TestHotEntrySurvivesColdStream(t *testing.T) {
	c := New(8)
	hot := []byte("hot")
	misses := 0
	for i := 0; i < 100; i++ {
		if c.Lookup(hot) == nil {
			misses++
			c.Store(hot, &Entry{})
		}
		c.Store([]byte(fmt.Sprintf("cold%d", i)), &Entry{})
	}
	if misses != 1 {
		t.Fatalf("hot entry missed %d times, want 1 (evicted by cold stream)", misses)
	}
}

// TestCapacityBound pins that the generations never exceed the configured
// bound.
func TestCapacityBound(t *testing.T) {
	c := New(6)
	for i := 0; i < 1000; i++ {
		c.Store([]byte(fmt.Sprintf("k%d", i)), &Entry{})
		if c.Len() > 6 {
			t.Fatalf("len %d exceeds capacity 6 after %d inserts", c.Len(), i+1)
		}
	}
}

// TestOverwriteDoesNotRotate pins that re-storing an existing key at
// capacity replaces in place instead of evicting.
func TestOverwriteDoesNotRotate(t *testing.T) {
	c := New(2)
	c.Store([]byte("a"), &Entry{})
	c.Store([]byte("b"), &Entry{})
	c.Store([]byte("b"), &Entry{})
	if c.Len() != 2 {
		t.Fatalf("len %d after overwrite, want 2", c.Len())
	}
	if c.Lookup([]byte("a")) == nil || c.Lookup([]byte("b")) == nil {
		t.Fatal("overwrite evicted a live entry")
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if c.Lookup([]byte("k")) != nil {
		t.Fatal("nil cache hit")
	}
	c.Store([]byte("k"), &Entry{}) // must not panic
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache stats %d/%d", h, m)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache non-empty")
	}
	c.SetMetrics(telemetry.NewRegistry()) // must not panic
}

func TestReplayRequiresWatermark(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	om.Seal()
	start := om.HeapUsed()
	if _, err := om.NewFloat(9.5); err != nil {
		t.Fatal(err)
	}
	e := &Entry{HeapStart: start, HeapWords: om.HeapRange(start, om.HeapUsed())}

	om.ResetToSeal()
	if err := e.Replay(om); err != nil {
		t.Fatalf("replay at watermark: %v", err)
	}
	if om.HeapUsed() != start+len(e.HeapWords) {
		t.Fatalf("replay advanced heap to %d, want %d", om.HeapUsed(), start+len(e.HeapWords))
	}
	// Heap no longer at the entry's watermark: replay must refuse.
	if err := e.Replay(om); err == nil {
		t.Fatal("replay off watermark succeeded")
	}
}

func TestReplayEmptyEffect(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	e := &Entry{HeapStart: om.HeapUsed()}
	if err := e.Replay(om); err != nil {
		t.Fatalf("empty effect at watermark: %v", err)
	}
	if _, err := om.NewFloat(1.0); err != nil {
		t.Fatal(err)
	}
	if err := e.Replay(om); err == nil {
		t.Fatal("empty effect off watermark succeeded")
	}
}

func TestMetricsCountHitsAndMisses(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(0)
	c.SetMetrics(reg)
	c.Store([]byte("k"), &Entry{})
	c.Lookup([]byte("k"))
	c.Lookup([]byte("absent"))
	snap := reg.Snapshot()
	want := map[string]int64{
		telemetry.MetricCodeCacheHits:   1,
		telemetry.MetricCodeCacheMisses: 1,
	}
	for name, val := range want {
		if got := snap.Counters[name]; got != val {
			t.Errorf("%s = %d, want %d", name, got, val)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("k%d", i%32))
				if c.Lookup(key) == nil {
					c.Store(key, &Entry{})
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if c.Len() == 0 {
		t.Fatal("nothing cached after concurrent traffic")
	}
}
