package core

import (
	"errors"
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
	"cogdiff/internal/telemetry"
)

// maxMachineSteps bounds one compiled execution.
const maxMachineSteps = 20000

// Tester performs interpreter-guided differential testing of one compiler
// against the interpreter (Fig. 1, steps 2-4).
type Tester struct {
	Prims   *primitives.Table
	Defects defects.Switches

	// Telemetry handles, resolved once by SetMetrics so the per-path
	// hot loop touches only atomics. All nil (no-op) by default.
	passMetrics *jit.PassMetrics
}

// NewTester builds a tester with the given native-method table and seeded
// defect state.
func NewTester(prims *primitives.Table, sw defects.Switches) *Tester {
	return &Tester{Prims: prims, Defects: sw}
}

// SetMetrics attaches a telemetry registry, resolving the instrument
// handles the compilation path updates. Call before testing starts; the
// resolved handles are read-only afterwards and safe to share across
// workers. A nil registry leaves the tester un-instrumented.
func (t *Tester) SetMetrics(reg *telemetry.Registry) {
	t.passMetrics = jit.NewPassMetrics(reg, t.Defects)
}

// interpreterReference re-executes the interpreter concretely for a path
// on a fresh object memory and returns its exit, frame and input map.
func (t *Tester) interpreterReference(target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult) (interp.Exit, *interp.Frame, *heap.ObjectMemory, map[heap.Word]int, error) {
	om := heap.NewBootedObjectMemory()
	b := concolic.NewFrameBuilder(om, ex.Universe, path.Model)
	frame, err := b.BuildFrame(target)
	if err != nil {
		return interp.Exit{}, nil, nil, nil, err
	}
	ctx := interp.NewCtx(om, frame, target.Method)
	ctx.Primitives = t.Prims
	ctx.InterpreterDefects = interp.DefectSwitches{AsFloatSkipsTypeCheck: t.Defects.AsFloatSkipsTypeCheck}
	var exit interp.Exit
	if target.Kind == concolic.TargetBytecode {
		exit = interp.RunInstruction(ctx)
	} else {
		exit = interp.RunPrimitive(ctx, t.Prims, target.PrimIndex)
	}
	return exit, frame, om, b.InputObjects(), nil
}

// TestPath runs one concolic path against one compiler on one ISA and
// compares the observable behaviour (Fig. 1 steps 2-4).
func (t *Tester) TestPath(target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult, kind CompilerKind, isa machine.ISA) PathVerdict {
	v := PathVerdict{Compiler: kind, ISA: isa}

	// Expected failures of the test runner (§3.4): invalid frames always,
	// invalid memory accesses for unsafe byte-codes.
	switch path.Exit.Kind {
	case interp.ExitInvalidFrame:
		v.Skipped, v.Reason = true, "invalid frame (expected failure)"
		return v
	case interp.ExitInvalidMemoryAccess:
		if target.Kind == concolic.TargetBytecode {
			v.Skipped, v.Reason = true, "invalid memory access on unsafe byte-code (expected failure)"
			return v
		}
	case interp.ExitUnsupported:
		v.Skipped, v.Reason = true, "unsupported instruction"
		return v
	}
	if (kind == NativeMethodCompilerKind) != (target.Kind == concolic.TargetNativeMethod) {
		v.Skipped, v.Reason = true, "compiler does not apply to this instruction kind"
		return v
	}

	interpExit, interpFrame, interpOM, interpInputs, err := t.interpreterReference(target, ex, path)
	if err != nil {
		v.Skipped, v.Reason = true, "input construction failed: "+err.Error()
		return v
	}

	obs, err := t.runCompiled(target, ex, path, kind, isa, -1)
	if err != nil {
		if errors.Is(err, jit.ErrNotCompilable) {
			v.Skipped, v.Reason = true, "not compilable: "+err.Error()
			return v
		}
		v.Skipped, v.Reason = true, "compilation failed: "+err.Error()
		return v
	}
	v.Observed = obs
	v.InterpExit = interpExit

	differs, detail := t.compare(target, interpExit, interpFrame, interpOM, interpInputs, obs)
	v.Differs = differs
	v.Detail = detail
	if differs {
		v.Cause = t.blamePath(target, ex, path, kind, isa, interpExit, interpFrame, interpOM, interpInputs)
	}
	return v
}

// blamePath attributes a differing path verdict to a compilation stage by
// re-running the compiled execution with the pass pipeline truncated at
// every prefix: if the bare front-end output (no passes) already differs
// from the interpreter reference the front-end is blamed, otherwise the
// first pass whose inclusion flips the verdict is. Native methods have no
// pipeline, so every native difference is a front-end difference.
func (t *Tester) blamePath(target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult, kind CompilerKind, isa machine.ISA, iExit interp.Exit, iFrame *interp.Frame, iOM *heap.ObjectMemory, iInputs map[heap.Word]int) string {
	if kind == NativeMethodCompilerKind {
		return "front-end"
	}
	passes := jit.PipelineFor(variantOf(kind), t.Defects)
	for k := 0; k <= len(passes); k++ {
		obs, err := t.runCompiled(target, ex, path, kind, isa, k)
		if err != nil {
			return "front-end"
		}
		if differs, _ := t.compare(target, iExit, iFrame, iOM, iInputs, obs); differs {
			if k == 0 {
				return "front-end"
			}
			return "pass:" + passes[k-1].Name
		}
	}
	// Every prefix agreed yet the full pipeline differed: the re-run did
	// not reproduce, which the blame string surfaces rather than hides.
	return "unreproducible"
}

// runCompiled compiles the instruction for a path and executes it on the
// simulated machine, extracting the observable behaviour.
func (t *Tester) runCompiled(target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult, kind CompilerKind, isa machine.ISA, passLimit int) (*CompiledObservation, error) {
	om := heap.NewBootedObjectMemory()
	b := concolic.NewFrameBuilder(om, ex.Universe, path.Model)
	frame, err := b.BuildFrame(target)
	if err != nil {
		return nil, err
	}
	inputs := b.InputObjects()

	cpu, err := machine.New(om)
	if err != nil {
		return nil, err
	}
	if t.Defects.SimulationMissingAccessors {
		cpu.SimDefects.MissingSetters = map[machine.Reg]bool{
			machine.ExtraReg: true,
			machine.Arg2Reg:  true,
		}
	}

	if kind == NativeMethodCompilerKind {
		return t.runCompiledNative(target, om, cpu, frame, inputs, isa)
	}
	return t.runCompiledBytecode(target, om, cpu, frame, inputs, kind, isa, passLimit)
}

func variantOf(kind CompilerKind) jit.Variant {
	switch kind {
	case SimpleBytecodeCompiler:
		return jit.SimpleStackBasedCogit
	case RegisterAllocatingCompiler:
		return jit.RegisterAllocatingCogit
	default:
		return jit.StackToRegisterCogit
	}
}

func (t *Tester) runCompiledBytecode(target concolic.Target, om *heap.ObjectMemory, cpu *machine.CPU, frame *interp.Frame, inputs map[heap.Word]int, kind CompilerKind, isa machine.ISA, passLimit int) (*CompiledObservation, error) {
	cogit := jit.NewCogit(variantOf(kind), isa, om, t.Defects)
	cogit.PassLimit = passLimit
	cogit.Metrics = t.passMetrics
	inputStack := make([]heap.Word, frame.Size())
	for i, v := range frame.Stack {
		inputStack[i] = v.W
	}
	cm, err := cogit.CompileBytecode(target.Method, inputStack)
	if err != nil {
		return nil, err
	}

	// Frame setup per the compiled calling convention: temporaries pushed
	// first (temp 0 deepest), then the sentinel return address; the
	// receiver travels in ReceiverResultReg.
	cpu.Reset()
	for _, tv := range frame.Temps {
		if err := pushWord(cpu, tv.W); err != nil {
			return nil, err
		}
	}
	if err := pushWord(cpu, machine.SentinelReturn); err != nil {
		return nil, err
	}
	cpu.Regs[machine.ReceiverResultReg] = frame.Receiver.W
	cpu.Install(cm.Prog)
	stop := cpu.Run(maxMachineSteps)

	obs := &CompiledObservation{Steps: stop.Steps, CodeBytes: len(cm.Code)}
	numTemps := target.Method.TempCount()

	readFrameState := func(skipTop int) {
		fp := cpu.Regs[machine.FP]
		raw, err := cpu.StackSlice(fp)
		if err == nil && len(raw) >= skipTop {
			cells := raw[skipTop:] // top first
			stackWords := make([]heap.Word, len(cells))
			for i, w := range cells {
				stackWords[len(cells)-1-i] = w // bottom first
			}
			obs.Stack = CanonicalizeAll(om, stackWords, inputs)
		}
		temps := make([]heap.Word, numTemps)
		for i := 0; i < numTemps; i++ {
			w, err := cpu.Mem.Read(fp + heap.Word(jit.TempOffset(i, numTemps)))
			if err == nil {
				temps[i] = w
			}
		}
		obs.Temps = CanonicalizeAll(om, temps, inputs)
	}

	switch stop.Kind {
	case machine.StopBreakpoint:
		switch stop.BreakID {
		case jit.BrkEndFall:
			obs.Kind = CompiledEndFall
		case jit.BrkJumpTaken:
			obs.Kind = CompiledJumpTaken
		default:
			obs.Kind = CompiledCrash
			obs.Detail = fmt.Sprintf("unexpected breakpoint %d", stop.BreakID)
		}
		readFrameState(0)
	case machine.StopTrampoline:
		obs.Kind = CompiledMessageSend
		sel, ok := cm.SelectorAt(int64(cpu.Regs[machine.ClassSelectorReg]))
		if ok {
			obs.Selector, obs.NumArgs = sel.Name, sel.NumArgs
		}
		readFrameState(1) // the trampoline call pushed its return address
	case machine.StopReturned:
		obs.Kind = CompiledMethodReturn
		obs.Result = Canonicalize(om, cpu.Regs[machine.ReceiverResultReg], inputs)
		// After the epilogue the frame is gone; temporaries sit above the
		// (restored) stack pointer and remain readable.
		temps := make([]heap.Word, numTemps)
		for i := 0; i < numTemps; i++ {
			addr := heap.Word(machine.StackLimit - 1 - i)
			if w, err := cpu.Mem.Read(addr); err == nil {
				temps[i] = w
			}
		}
		obs.Temps = CanonicalizeAll(om, temps, inputs)
	case machine.StopFault:
		obs.Kind = CompiledCrash
		obs.Detail = stop.String()
	case machine.StopSimulationError:
		obs.Kind = CompiledSimulationError
		obs.Detail = stop.String()
	default:
		obs.Kind = CompiledRunaway
		obs.Detail = stop.String()
	}
	obs.Heap = HeapEffects(om, inputs)
	return obs, nil
}

func (t *Tester) runCompiledNative(target concolic.Target, om *heap.ObjectMemory, cpu *machine.CPU, frame *interp.Frame, inputs map[heap.Word]int, isa machine.ISA) (*CompiledObservation, error) {
	prim := t.Prims.Lookup(target.PrimIndex)
	if prim == nil {
		return nil, fmt.Errorf("%w: unknown primitive %d", jit.ErrNotCompilable, target.PrimIndex)
	}
	nc := jit.NewNativeMethodCompiler(isa, om, t.Defects)
	nc.Metrics = t.passMetrics
	cm, err := nc.CompileNativeMethod(prim)
	if err != nil {
		return nil, err
	}

	cpu.Reset()
	if err := pushWord(cpu, machine.SentinelReturn); err != nil {
		return nil, err
	}
	cpu.Regs[machine.ReceiverResultReg] = frame.Receiver.W
	argRegs := []machine.Reg{machine.Arg0Reg, machine.Arg1Reg, machine.Arg2Reg}
	for i, av := range frame.Temps {
		if i < len(argRegs) {
			cpu.Regs[argRegs[i]] = av.W
		}
	}
	cpu.Install(cm.Prog)
	stop := cpu.Run(maxMachineSteps)

	obs := &CompiledObservation{Steps: stop.Steps, CodeBytes: len(cm.Code)}
	switch stop.Kind {
	case machine.StopReturned:
		obs.Kind = CompiledReturned
		obs.Result = Canonicalize(om, cpu.Regs[machine.ReceiverResultReg], inputs)
	case machine.StopBreakpoint:
		switch stop.BreakID {
		case jit.BrkNativeFallthrough:
			obs.Kind = CompiledFailure
		case jit.BrkNotImplemented:
			obs.Kind = CompiledNotImplemented
		default:
			obs.Kind = CompiledCrash
			obs.Detail = fmt.Sprintf("unexpected breakpoint %d", stop.BreakID)
		}
	case machine.StopFault:
		obs.Kind = CompiledCrash
		obs.Detail = stop.String()
	case machine.StopSimulationError:
		obs.Kind = CompiledSimulationError
		obs.Detail = stop.String()
	default:
		obs.Kind = CompiledRunaway
		obs.Detail = stop.String()
	}
	obs.Heap = HeapEffects(om, inputs)
	return obs, nil
}

func pushWord(cpu *machine.CPU, w heap.Word) error {
	cpu.Regs[machine.SP]--
	return cpu.Mem.Write(cpu.Regs[machine.SP], w)
}

// compare validates the compiled observation against the interpreter
// reference: exit-condition equivalence first, then frame effects.
func (t *Tester) compare(target concolic.Target, iExit interp.Exit, iFrame *interp.Frame, iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	if obs.Kind == CompiledCrash {
		return true, fmt.Sprintf("interpreter exits %v but compiled code crashes (%s)", iExit, obs.Detail)
	}
	if obs.Kind == CompiledSimulationError {
		return true, "simulation error while executing compiled code: " + obs.Detail
	}
	if obs.Kind == CompiledNotImplemented {
		return true, fmt.Sprintf("interpreter exits %v but compiled code raises not-yet-implemented", iExit)
	}
	if obs.Kind == CompiledRunaway {
		return true, "compiled code did not terminate: " + obs.Detail
	}

	if target.Kind == concolic.TargetNativeMethod {
		return t.compareNative(iExit, iOM, iInputs, obs)
	}
	return t.compareBytecode(target, iExit, iFrame, iOM, iInputs, obs)
}

func (t *Tester) compareNative(iExit interp.Exit, iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	switch iExit.Kind {
	case interp.ExitSuccess:
		if obs.Kind != CompiledReturned {
			return true, fmt.Sprintf("interpreter succeeds but compiled code %s", obs.Kind)
		}
		want := Canonicalize(iOM, iExit.Result.W, iInputs)
		if want != obs.Result {
			return true, fmt.Sprintf("results differ: interpreter %s, compiled %s", want, obs.Result)
		}
	case interp.ExitFailure:
		if obs.Kind != CompiledFailure {
			return true, fmt.Sprintf("interpreter fails (code %d) but compiled code %s (result %s)", iExit.FailCode, obs.Kind, obs.Result)
		}
	default:
		return true, fmt.Sprintf("interpreter exit %v has no compiled counterpart (%s)", iExit, obs.Kind)
	}
	return t.compareHeap(iOM, iInputs, obs)
}

func (t *Tester) compareBytecode(target concolic.Target, iExit interp.Exit, iFrame *interp.Frame, iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	switch iExit.Kind {
	case interp.ExitSuccess:
		expected := CompiledEndFall
		if op, operands, next, ok := target.Method.FetchOp(0); ok {
			var operand byte
			if len(operands) > 0 {
				operand = operands[0]
			}
			if off, _, _, isJump := bytecode.JumpOffset(op, operand); isJump && iExit.NextPC != next {
				_ = off
				expected = CompiledJumpTaken
			}
		}
		// A jump of length zero lands on the fall-through end either way.
		if obs.Kind != expected && !(obs.Kind == CompiledEndFall && expected == CompiledJumpTaken && sameTarget(target, iExit)) {
			return true, fmt.Sprintf("interpreter continues at pc %d but compiled code stops at %s", iExit.NextPC, obs.Kind)
		}
		if d, why := t.compareStackAndTemps(iFrame, iOM, iInputs, obs); d {
			return true, why
		}
	case interp.ExitMessageSend:
		if obs.Kind != CompiledMessageSend {
			return true, fmt.Sprintf("interpreter sends #%s but compiled code %s", iExit.Selector, obs.Kind)
		}
		if obs.Selector != iExit.Selector || obs.NumArgs != iExit.NumArgs {
			return true, fmt.Sprintf("send mismatch: interpreter #%s/%d, compiled #%s/%d", iExit.Selector, iExit.NumArgs, obs.Selector, obs.NumArgs)
		}
		if d, why := t.compareStackAndTemps(iFrame, iOM, iInputs, obs); d {
			return true, why
		}
	case interp.ExitMethodReturn:
		if obs.Kind != CompiledMethodReturn {
			return true, fmt.Sprintf("interpreter returns but compiled code %s", obs.Kind)
		}
		want := Canonicalize(iOM, iExit.Result.W, iInputs)
		if want != obs.Result {
			return true, fmt.Sprintf("return values differ: interpreter %s, compiled %s", want, obs.Result)
		}
	default:
		return true, fmt.Sprintf("interpreter exit %v has no compiled counterpart", iExit)
	}
	return t.compareHeap(iOM, iInputs, obs)
}

// sameTarget reports whether the instruction's jump target coincides with
// its fall-through successor.
func sameTarget(target concolic.Target, iExit interp.Exit) bool {
	op, operands, next, ok := target.Method.FetchOp(0)
	if !ok {
		return false
	}
	var operand byte
	if len(operands) > 0 {
		operand = operands[0]
	}
	off, _, _, isJump := bytecode.JumpOffset(op, operand)
	return isJump && off == 0 && iExit.NextPC == next
}

func (t *Tester) compareStackAndTemps(iFrame *interp.Frame, iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	wantStack := make([]heap.Word, iFrame.Size())
	for i, v := range iFrame.Stack {
		wantStack[i] = v.W
	}
	want := CanonicalizeAll(iOM, wantStack, iInputs)
	if !stringSlicesEqual(want, obs.Stack) {
		return true, fmt.Sprintf("operand stacks differ: interpreter %v, compiled %v", want, obs.Stack)
	}
	wantTemps := make([]heap.Word, len(iFrame.Temps))
	for i, v := range iFrame.Temps {
		wantTemps[i] = v.W
	}
	wt := CanonicalizeAll(iOM, wantTemps, iInputs)
	if !stringSlicesEqual(wt, obs.Temps) {
		return true, fmt.Sprintf("temporaries differ: interpreter %v, compiled %v", wt, obs.Temps)
	}
	return false, ""
}

func (t *Tester) compareHeap(iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	want := HeapEffects(iOM, iInputs)
	for rep, body := range want {
		got, ok := obs.Heap[rep]
		if !ok {
			continue // object never materialized on the compiled side
		}
		if !stringSlicesEqual(body, got) {
			return true, fmt.Sprintf("side effects on input object %d differ: interpreter %v, compiled %v", rep, body, got)
		}
	}
	return false, ""
}
