package core

import (
	"errors"
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/codecache"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/irverify"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
	"cogdiff/internal/metacompile"
	"cogdiff/internal/primitives"
	"cogdiff/internal/telemetry"
)

// maxMachineSteps bounds one compiled execution.
const maxMachineSteps = 20000

// Tester performs interpreter-guided differential testing of one compiler
// against the interpreter (Fig. 1, steps 2-4).
type Tester struct {
	Prims   *primitives.Table
	Defects defects.Switches

	// Telemetry handles, resolved once by SetMetrics so the per-path
	// hot loop touches only atomics. All nil (no-op) by default.
	passMetrics *jit.PassMetrics

	// cache shares compiled bodies across paths, units and workers; nil
	// disables it (every execution recompiles). defectsFP is the seeded
	// defect configuration rendered once for cache keys.
	cache     *codecache.Cache
	defectsFP string

	// noReuse switches off the execution-environment pool (and, via a nil
	// cache, compiled-code sharing): every execution boots fresh state.
	// The determinism suite uses it to pin that pooling cannot change a
	// single report byte.
	noReuse bool

	// noVerify disables the static IR verifier inside every compiler this
	// tester constructs. Verification is on by default; the byte-identity
	// suite flips this to pin that the verifier cannot change a report
	// byte on a clean catalog.
	noVerify bool
}

// NewTester builds a tester with the given native-method table and seeded
// defect state.
func NewTester(prims *primitives.Table, sw defects.Switches) *Tester {
	return &Tester{
		Prims:     prims,
		Defects:   sw,
		cache:     codecache.New(0),
		defectsFP: fmt.Sprintf("%+v", sw),
	}
}

// SetMetrics attaches a telemetry registry, resolving the instrument
// handles the compilation path updates. Call before testing starts; the
// resolved handles are read-only afterwards and safe to share across
// workers. A nil registry leaves the tester un-instrumented.
func (t *Tester) SetMetrics(reg *telemetry.Registry) {
	t.passMetrics = jit.NewPassMetrics(reg, t.Defects)
	t.cache.SetMetrics(reg)
}

// CodeCacheStats reports the compiled-code cache's cumulative hits and
// misses (zero when caching is disabled).
func (t *Tester) CodeCacheStats() (hits, misses int64) { return t.cache.Stats() }

// SetNoReuse flips the tester to its reuse-free reference behaviour:
// no pooled environments, no compiled-code cache.
func (t *Tester) SetNoReuse() {
	t.noReuse = true
	t.cache = nil
}

// SetNoVerify disables the static IR verifier for every compilation this
// tester performs.
func (t *Tester) SetNoVerify() { t.noVerify = true }

// interpreterReference re-executes the interpreter concretely for a path
// on the env's (freshly reset) object memory and returns its exit, frame
// and input map.
func (t *Tester) interpreterReference(env *execEnv, target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult) (interp.Exit, *interp.Frame, map[heap.Word]int, error) {
	om := env.om
	b := concolic.NewFrameBuilder(om, ex.Universe, path.Model)
	frame, err := b.BuildFrame(target)
	if err != nil {
		return interp.Exit{}, nil, nil, err
	}
	ctx := interp.NewCtx(om, frame, target.Method)
	ctx.Primitives = t.Prims
	ctx.InterpreterDefects = interp.DefectSwitches{AsFloatSkipsTypeCheck: t.Defects.AsFloatSkipsTypeCheck}
	var exit interp.Exit
	if target.Kind == concolic.TargetBytecode {
		exit = interp.RunInstruction(ctx)
	} else {
		exit = interp.RunPrimitive(ctx, t.Prims, target.PrimIndex)
	}
	return exit, frame, b.InputObjects(), nil
}

// UnitRun batches the paths of one unit (target × exploration): the
// interpreter reference for a path is computed once and reused for every
// (compiler, ISA) pairing, and compiled bodies are shared through the
// tester's code cache. Call Close when the unit is done to release the
// held environment. A UnitRun is not safe for concurrent use; units are
// the parallelism grain, so each worker drives its own.
type UnitRun struct {
	t      *Tester
	target concolic.Target
	ex     *concolic.Exploration

	// Cached interpreter reference for the path most recently tested.
	// Paths arrive path-major (all compilers × ISAs of a path together),
	// so one slot suffices. refEnv owns the reference object memory and
	// is retired when the path changes.
	refPath   *concolic.PathResult
	refEnv    *execEnv
	refExit   interp.Exit
	refFrame  *interp.Frame
	refInputs map[heap.Word]int
	refErr    error
}

// BeginUnit starts a batched run over one unit's paths.
func (t *Tester) BeginUnit(target concolic.Target, ex *concolic.Exploration) *UnitRun {
	return &UnitRun{t: t, target: target, ex: ex}
}

// Close releases the unit's held execution environment.
func (u *UnitRun) Close() {
	if u.refEnv != nil {
		u.t.putEnv(u.refEnv)
		u.refEnv = nil
	}
	u.refPath = nil
}

// reference returns the interpreter reference for path, computing it on
// the first request and replaying the cached result for subsequent
// (compiler, ISA) pairings of the same path.
func (u *UnitRun) reference(path *concolic.PathResult) (interp.Exit, *interp.Frame, *heap.ObjectMemory, map[heap.Word]int, error) {
	if u.refPath == path {
		var om *heap.ObjectMemory
		if u.refEnv != nil {
			om = u.refEnv.om
		}
		return u.refExit, u.refFrame, om, u.refInputs, u.refErr
	}
	if u.refEnv != nil {
		u.t.putEnv(u.refEnv)
		u.refEnv = nil
	}
	u.refPath = nil
	env := u.t.getEnv()
	// A contained panic below abandons env (never pooled again) and
	// leaves the slot empty, so the next call recomputes deterministically.
	exit, frame, inputs, err := u.t.interpreterReference(env, u.target, u.ex, path)
	u.refPath = path
	u.refExit, u.refFrame, u.refInputs, u.refErr = exit, frame, inputs, err
	if err != nil {
		u.t.putEnv(env)
		return exit, frame, nil, inputs, err
	}
	u.refEnv = env
	return exit, frame, env.om, inputs, err
}

// TestPath runs one concolic path against one compiler on one ISA within
// a unit batch (Fig. 1 steps 2-4), reusing the per-path interpreter
// reference and the shared compiled body.
func (u *UnitRun) TestPath(path *concolic.PathResult, kind CompilerKind, isa machine.ISA) PathVerdict {
	t, target := u.t, u.target
	v := PathVerdict{Compiler: kind, ISA: isa}

	// Expected failures of the test runner (§3.4): invalid frames always,
	// invalid memory accesses for unsafe byte-codes.
	switch path.Exit.Kind {
	case interp.ExitInvalidFrame:
		v.Skipped, v.Reason = true, "invalid frame (expected failure)"
		return v
	case interp.ExitInvalidMemoryAccess:
		if target.Kind == concolic.TargetBytecode {
			v.Skipped, v.Reason = true, "invalid memory access on unsafe byte-code (expected failure)"
			return v
		}
	case interp.ExitUnsupported:
		v.Skipped, v.Reason = true, "unsupported instruction"
		return v
	}
	if (kind == NativeMethodCompilerKind) != (target.Kind == concolic.TargetNativeMethod) {
		v.Skipped, v.Reason = true, "compiler does not apply to this instruction kind"
		return v
	}
	if kind == MetaJITCompiler {
		// The derived compiler's guard chain only contains paths the
		// generator's plan supports; consult the plan up front so the
		// skip is deterministic and named, instead of a deopt breakpoint.
		if ok, reason := metacompile.PlanFor(target.Method).PathSupported(path.Path.Signature()); !ok {
			v.Skipped, v.Reason = true, "not compilable: metacompile: "+reason
			return v
		}
	}

	interpExit, interpFrame, interpOM, interpInputs, err := u.reference(path)
	if err != nil {
		v.Skipped, v.Reason = true, "input construction failed: "+err.Error()
		return v
	}

	obs, err := t.runCompiled(target, u.ex, path, kind, isa, -1)
	if err != nil {
		var verr *irverify.Error
		if errors.As(err, &verr) {
			// Static verdict: the verifier rejected the compiled unit, so
			// the difference is established — and blamed — without
			// executing a single instruction of it.
			v.Differs = true
			v.Cause = verr.Blame()
			v.Detail = "static IR verification failed: " + verr.Error()
			v.Observed = &CompiledObservation{Kind: CompiledVerifierReject, Detail: verr.Error()}
			v.InterpExit = interpExit
			return v
		}
		if errors.Is(err, jit.ErrNotCompilable) {
			v.Skipped, v.Reason = true, "not compilable: "+err.Error()
			return v
		}
		v.Skipped, v.Reason = true, "compilation failed: "+err.Error()
		return v
	}
	v.Observed = obs
	v.InterpExit = interpExit

	differs, detail := t.compare(target, interpExit, interpFrame, interpOM, interpInputs, obs)
	v.Differs = differs
	v.Detail = detail
	if differs {
		v.Cause = t.blamePath(target, u.ex, path, kind, isa, interpExit, interpFrame, interpOM, interpInputs)
	}
	return v
}

// TestPath runs one concolic path against one compiler on one ISA and
// compares the observable behaviour. It is the single-shot form of a
// UnitRun; callers testing several paths or pairings of one unit should
// batch through BeginUnit instead.
func (t *Tester) TestPath(target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult, kind CompilerKind, isa machine.ISA) PathVerdict {
	u := t.BeginUnit(target, ex)
	defer u.Close()
	return u.TestPath(path, kind, isa)
}

// blamePath attributes a differing path verdict to a compilation stage by
// re-running the compiled execution with the pass pipeline truncated at
// every prefix: if the bare front-end output (no passes) already differs
// from the interpreter reference the front-end is blamed, otherwise the
// first pass whose inclusion flips the verdict is. Native methods have no
// pipeline, so every native difference is a front-end difference.
func (t *Tester) blamePath(target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult, kind CompilerKind, isa machine.ISA, iExit interp.Exit, iFrame *interp.Frame, iOM *heap.ObjectMemory, iInputs map[heap.Word]int) string {
	if kind == NativeMethodCompilerKind {
		return "front-end"
	}
	passes := jit.PipelineFor(variantOf(kind), t.Defects)
	for k := 0; k <= len(passes); k++ {
		obs, err := t.runCompiled(target, ex, path, kind, isa, k)
		if err != nil {
			return "front-end"
		}
		if differs, _ := t.compare(target, iExit, iFrame, iOM, iInputs, obs); differs {
			if k == 0 {
				return "front-end"
			}
			return "pass:" + passes[k-1].Name
		}
	}
	// Every prefix agreed yet the full pipeline differed: the re-run did
	// not reproduce, which the blame string surfaces rather than hides.
	return "unreproducible"
}

// runCompiled compiles the instruction for a path and executes it on the
// simulated machine, extracting the observable behaviour. The execution
// runs on a pooled environment; the returned observation holds only
// rendered values, so the environment is released before returning. A
// contained panic abandons the environment instead.
func (t *Tester) runCompiled(target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult, kind CompilerKind, isa machine.ISA, passLimit int) (*CompiledObservation, error) {
	env := t.getEnv()
	om, cpu := env.om, env.cpu
	b := concolic.NewFrameBuilder(om, ex.Universe, path.Model)
	frame, err := b.BuildFrame(target)
	if err != nil {
		t.putEnv(env)
		return nil, err
	}
	inputs := b.InputObjects()

	if t.Defects.SimulationMissingAccessors {
		cpu.SimDefects.MissingSetters = map[machine.Reg]bool{
			machine.ExtraReg: true,
			machine.Arg2Reg:  true,
		}
	}

	var obs *CompiledObservation
	if kind == NativeMethodCompilerKind {
		obs, err = t.runCompiledNative(target, om, cpu, frame, inputs, isa)
	} else {
		obs, err = t.runCompiledBytecode(target, om, cpu, frame, inputs, kind, isa, passLimit)
	}
	t.putEnv(env)
	return obs, err
}

func variantOf(kind CompilerKind) jit.Variant {
	switch kind {
	case SimpleBytecodeCompiler:
		return jit.SimpleStackBasedCogit
	case RegisterAllocatingCompiler:
		return jit.RegisterAllocatingCogit
	case MetaJITCompiler:
		return jit.MetaJITCogit
	default:
		return jit.StackToRegisterCogit
	}
}

func (t *Tester) runCompiledBytecode(target concolic.Target, om *heap.ObjectMemory, cpu *machine.CPU, frame *interp.Frame, inputs map[heap.Word]int, kind CompilerKind, isa machine.ISA, passLimit int) (*CompiledObservation, error) {
	inputStack := make([]heap.Word, frame.Size())
	for i, v := range frame.Stack {
		inputStack[i] = v.W
	}
	cm, err := t.compileBytecode(om, modeInstruction, variantOf(kind), isa, passLimit, target.Method, inputStack, nil)
	if err != nil {
		return nil, err
	}

	// Frame setup per the compiled calling convention: temporaries pushed
	// first (temp 0 deepest), then the sentinel return address; the
	// receiver travels in ReceiverResultReg.
	cpu.Reset()
	for _, tv := range frame.Temps {
		if err := pushWord(cpu, tv.W); err != nil {
			return nil, err
		}
	}
	if err := pushWord(cpu, machine.SentinelReturn); err != nil {
		return nil, err
	}
	cpu.Regs[machine.ReceiverResultReg] = frame.Receiver.W
	cpu.Install(cm.Prog)
	stop := cpu.Run(maxMachineSteps)

	obs := &CompiledObservation{Steps: stop.Steps, CodeBytes: len(cm.Code)}
	numTemps := target.Method.TempCount()

	readFrameState := func(skipTop int) {
		fp := cpu.Regs[machine.FP]
		raw, err := cpu.StackSlice(fp)
		if err == nil && len(raw) >= skipTop {
			cells := raw[skipTop:] // top first
			stackWords := make([]heap.Word, len(cells))
			for i, w := range cells {
				stackWords[len(cells)-1-i] = w // bottom first
			}
			obs.Stack = CanonicalizeAll(om, stackWords, inputs)
		}
		temps := make([]heap.Word, numTemps)
		for i := 0; i < numTemps; i++ {
			w, err := cpu.Mem.Read(fp + heap.Word(jit.TempOffset(i, numTemps)))
			if err == nil {
				temps[i] = w
			}
		}
		obs.Temps = CanonicalizeAll(om, temps, inputs)
	}

	switch stop.Kind {
	case machine.StopBreakpoint:
		switch stop.BreakID {
		case jit.BrkEndFall:
			obs.Kind = CompiledEndFall
		case jit.BrkJumpTaken:
			obs.Kind = CompiledJumpTaken
		default:
			obs.Kind = CompiledCrash
			obs.Detail = fmt.Sprintf("unexpected breakpoint %d", stop.BreakID)
		}
		readFrameState(0)
	case machine.StopTrampoline:
		obs.Kind = CompiledMessageSend
		sel, ok := cm.SelectorAt(int64(cpu.Regs[machine.ClassSelectorReg]))
		if ok {
			obs.Selector, obs.NumArgs = sel.Name, sel.NumArgs
		}
		readFrameState(1) // the trampoline call pushed its return address
	case machine.StopReturned:
		obs.Kind = CompiledMethodReturn
		obs.Result = Canonicalize(om, cpu.Regs[machine.ReceiverResultReg], inputs)
		// After the epilogue the frame is gone; temporaries sit above the
		// (restored) stack pointer and remain readable.
		temps := make([]heap.Word, numTemps)
		for i := 0; i < numTemps; i++ {
			addr := heap.Word(machine.StackLimit - 1 - i)
			if w, err := cpu.Mem.Read(addr); err == nil {
				temps[i] = w
			}
		}
		obs.Temps = CanonicalizeAll(om, temps, inputs)
	case machine.StopFault:
		obs.Kind = CompiledCrash
		obs.Detail = stop.String()
	case machine.StopSimulationError:
		obs.Kind = CompiledSimulationError
		obs.Detail = stop.String()
	default:
		obs.Kind = CompiledRunaway
		obs.Detail = stop.String()
	}
	obs.Heap = HeapEffects(om, inputs)
	return obs, nil
}

func (t *Tester) runCompiledNative(target concolic.Target, om *heap.ObjectMemory, cpu *machine.CPU, frame *interp.Frame, inputs map[heap.Word]int, isa machine.ISA) (*CompiledObservation, error) {
	prim := t.Prims.Lookup(target.PrimIndex)
	if prim == nil {
		return nil, fmt.Errorf("%w: unknown primitive %d", jit.ErrNotCompilable, target.PrimIndex)
	}
	cm, err := t.compileNative(om, prim, isa)
	if err != nil {
		return nil, err
	}

	cpu.Reset()
	if err := pushWord(cpu, machine.SentinelReturn); err != nil {
		return nil, err
	}
	cpu.Regs[machine.ReceiverResultReg] = frame.Receiver.W
	argRegs := []machine.Reg{machine.Arg0Reg, machine.Arg1Reg, machine.Arg2Reg}
	for i, av := range frame.Temps {
		if i < len(argRegs) {
			cpu.Regs[argRegs[i]] = av.W
		}
	}
	cpu.Install(cm.Prog)
	stop := cpu.Run(maxMachineSteps)

	obs := &CompiledObservation{Steps: stop.Steps, CodeBytes: len(cm.Code)}
	switch stop.Kind {
	case machine.StopReturned:
		obs.Kind = CompiledReturned
		obs.Result = Canonicalize(om, cpu.Regs[machine.ReceiverResultReg], inputs)
	case machine.StopBreakpoint:
		switch stop.BreakID {
		case jit.BrkNativeFallthrough:
			obs.Kind = CompiledFailure
		case jit.BrkNotImplemented:
			obs.Kind = CompiledNotImplemented
		default:
			obs.Kind = CompiledCrash
			obs.Detail = fmt.Sprintf("unexpected breakpoint %d", stop.BreakID)
		}
	case machine.StopFault:
		obs.Kind = CompiledCrash
		obs.Detail = stop.String()
	case machine.StopSimulationError:
		obs.Kind = CompiledSimulationError
		obs.Detail = stop.String()
	default:
		obs.Kind = CompiledRunaway
		obs.Detail = stop.String()
	}
	obs.Heap = HeapEffects(om, inputs)
	return obs, nil
}

func pushWord(cpu *machine.CPU, w heap.Word) error {
	cpu.Regs[machine.SP]--
	return cpu.Mem.Write(cpu.Regs[machine.SP], w)
}

// compare validates the compiled observation against the interpreter
// reference: exit-condition equivalence first, then frame effects.
func (t *Tester) compare(target concolic.Target, iExit interp.Exit, iFrame *interp.Frame, iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	if obs.Kind == CompiledCrash {
		return true, fmt.Sprintf("interpreter exits %v but compiled code crashes (%s)", iExit, obs.Detail)
	}
	if obs.Kind == CompiledSimulationError {
		return true, "simulation error while executing compiled code: " + obs.Detail
	}
	if obs.Kind == CompiledNotImplemented {
		return true, fmt.Sprintf("interpreter exits %v but compiled code raises not-yet-implemented", iExit)
	}
	if obs.Kind == CompiledRunaway {
		return true, "compiled code did not terminate: " + obs.Detail
	}

	if target.Kind == concolic.TargetNativeMethod {
		return t.compareNative(iExit, iOM, iInputs, obs)
	}
	return t.compareBytecode(target, iExit, iFrame, iOM, iInputs, obs)
}

func (t *Tester) compareNative(iExit interp.Exit, iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	switch iExit.Kind {
	case interp.ExitSuccess:
		if obs.Kind != CompiledReturned {
			return true, fmt.Sprintf("interpreter succeeds but compiled code %s", obs.Kind)
		}
		want := Canonicalize(iOM, iExit.Result.W, iInputs)
		if want != obs.Result {
			return true, fmt.Sprintf("results differ: interpreter %s, compiled %s", want, obs.Result)
		}
	case interp.ExitFailure:
		if obs.Kind != CompiledFailure {
			return true, fmt.Sprintf("interpreter fails (code %d) but compiled code %s (result %s)", iExit.FailCode, obs.Kind, obs.Result)
		}
	default:
		return true, fmt.Sprintf("interpreter exit %v has no compiled counterpart (%s)", iExit, obs.Kind)
	}
	return t.compareHeap(iOM, iInputs, obs)
}

func (t *Tester) compareBytecode(target concolic.Target, iExit interp.Exit, iFrame *interp.Frame, iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	switch iExit.Kind {
	case interp.ExitSuccess:
		expected := CompiledEndFall
		if op, operands, next, ok := target.Method.FetchOp(0); ok {
			var operand byte
			if len(operands) > 0 {
				operand = operands[0]
			}
			if off, _, _, isJump := bytecode.JumpOffset(op, operand); isJump && iExit.NextPC != next {
				_ = off
				expected = CompiledJumpTaken
			}
		}
		// A jump of length zero lands on the fall-through end either way.
		if obs.Kind != expected && !(obs.Kind == CompiledEndFall && expected == CompiledJumpTaken && sameTarget(target, iExit)) {
			return true, fmt.Sprintf("interpreter continues at pc %d but compiled code stops at %s", iExit.NextPC, obs.Kind)
		}
		if d, why := t.compareStackAndTemps(iFrame, iOM, iInputs, obs); d {
			return true, why
		}
	case interp.ExitMessageSend:
		if obs.Kind != CompiledMessageSend {
			return true, fmt.Sprintf("interpreter sends #%s but compiled code %s", iExit.Selector, obs.Kind)
		}
		if obs.Selector != iExit.Selector || obs.NumArgs != iExit.NumArgs {
			return true, fmt.Sprintf("send mismatch: interpreter #%s/%d, compiled #%s/%d", iExit.Selector, iExit.NumArgs, obs.Selector, obs.NumArgs)
		}
		if d, why := t.compareStackAndTemps(iFrame, iOM, iInputs, obs); d {
			return true, why
		}
	case interp.ExitMethodReturn:
		if obs.Kind != CompiledMethodReturn {
			return true, fmt.Sprintf("interpreter returns but compiled code %s", obs.Kind)
		}
		want := Canonicalize(iOM, iExit.Result.W, iInputs)
		if want != obs.Result {
			return true, fmt.Sprintf("return values differ: interpreter %s, compiled %s", want, obs.Result)
		}
	default:
		return true, fmt.Sprintf("interpreter exit %v has no compiled counterpart", iExit)
	}
	return t.compareHeap(iOM, iInputs, obs)
}

// sameTarget reports whether the instruction's jump target coincides with
// its fall-through successor.
func sameTarget(target concolic.Target, iExit interp.Exit) bool {
	op, operands, next, ok := target.Method.FetchOp(0)
	if !ok {
		return false
	}
	var operand byte
	if len(operands) > 0 {
		operand = operands[0]
	}
	off, _, _, isJump := bytecode.JumpOffset(op, operand)
	return isJump && off == 0 && iExit.NextPC == next
}

func (t *Tester) compareStackAndTemps(iFrame *interp.Frame, iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	wantStack := make([]heap.Word, iFrame.Size())
	for i, v := range iFrame.Stack {
		wantStack[i] = v.W
	}
	want := CanonicalizeAll(iOM, wantStack, iInputs)
	if !stringSlicesEqual(want, obs.Stack) {
		return true, fmt.Sprintf("operand stacks differ: interpreter %v, compiled %v", want, obs.Stack)
	}
	wantTemps := make([]heap.Word, len(iFrame.Temps))
	for i, v := range iFrame.Temps {
		wantTemps[i] = v.W
	}
	wt := CanonicalizeAll(iOM, wantTemps, iInputs)
	if !stringSlicesEqual(wt, obs.Temps) {
		return true, fmt.Sprintf("temporaries differ: interpreter %v, compiled %v", wt, obs.Temps)
	}
	return false, ""
}

func (t *Tester) compareHeap(iOM *heap.ObjectMemory, iInputs map[heap.Word]int, obs *CompiledObservation) (bool, string) {
	want := HeapEffects(iOM, iInputs)
	for rep, body := range want {
		got, ok := obs.Heap[rep]
		if !ok {
			continue // object never materialized on the compiled side
		}
		if !stringSlicesEqual(body, got) {
			return true, fmt.Sprintf("side effects on input object %d differ: interpreter %v, compiled %v", rep, body, got)
		}
	}
	return false, ""
}
