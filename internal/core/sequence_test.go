package core

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

func seqTester() *Tester {
	return NewTester(primitives.NewTable(), defects.ProductionVM())
}

func allBCCompilers() []CompilerKind {
	return []CompilerKind{SimpleBytecodeCompiler, StackToRegisterCompiler, RegisterAllocatingCompiler}
}

func bothISAs() []machine.ISA {
	return []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like}
}

func requireSeqAgreement(t *testing.T, m *bytecode.Method, in SequenceInput) {
	t.Helper()
	tester := seqTester()
	for _, kind := range allBCCompilers() {
		for _, isa := range bothISAs() {
			v, err := tester.TestSequence(m, in, kind, isa)
			if err != nil {
				t.Fatalf("%s/%v: %v", kind, isa, err)
			}
			if v.Differs {
				t.Errorf("%s/%v on %s: %s", kind, isa, m.Name, v.Detail)
			}
		}
	}
}

func TestSequenceMax(t *testing.T) {
	// max: other ^self > other ifTrue:[self] ifFalse:[other]
	m := bytecode.NewBuilder("max:", 1).
		PushReceiver().PushTemp(0).Op(bytecode.OpPrimGreaterThan).
		JumpIfTrue("self").
		PushTemp(0).ReturnTop().
		Label("self").
		PushReceiver().ReturnTop().
		MustMethod()
	for _, c := range [][2]int64{{3, 5}, {5, 3}, {-7, -7}, {0, 1}} {
		requireSeqAgreement(t, m, SequenceInput{Receiver: Int64(c[0]), Args: []SeqValue{Int64(c[1])}})
	}
}

func TestSequenceArithmeticChain(t *testing.T) {
	// ^(self + 3) * (self - 1)
	m := bytecode.NewBuilder("poly", 0).
		PushReceiver().PushLiteral(bytecode.IntLiteral(3)).Add().
		PushReceiver().PushInt(1).Subtract().
		Multiply().ReturnTop().
		MustMethod()
	for _, r := range []int64{0, 1, -5, 1000} {
		requireSeqAgreement(t, m, SequenceInput{Receiver: Int64(r)})
	}
}

func TestSequenceTempShuffle(t *testing.T) {
	// stores, dup and pops across temps
	m := bytecode.NewBuilder("shuffle:", 1).SetTemps(1).
		PushTemp(0).Dup().Add().
		PopIntoTemp(1).
		PushTemp(1).PushTemp(0).Subtract().
		ReturnTop().
		MustMethod()
	requireSeqAgreement(t, m, SequenceInput{Receiver: Int64(1), Args: []SeqValue{Int64(21)}})
}

func TestSequenceSendBoundary(t *testing.T) {
	// ^self foo: 5  — compared at the send boundary
	m := bytecode.NewBuilder("caller", 0).
		PushReceiver().PushLiteral(bytecode.IntLiteral(5)).Send("foo:", 1).
		ReturnTop().
		MustMethod()
	tester := seqTester()
	v, err := tester.TestSequence(m, SequenceInput{Receiver: Int64(3)}, StackToRegisterCompiler, machine.ISAAmd64Like)
	if err != nil {
		t.Fatal(err)
	}
	if v.Differs {
		t.Fatalf("send boundary differs: %s", v.Detail)
	}
	if v.Interp.Kind != "send" || v.Interp.Selector != "foo:" {
		t.Fatalf("unexpected boundary %s", v.Interp)
	}
}

func TestSequenceFallOffEnd(t *testing.T) {
	m := bytecode.NewBuilder("noop", 0).Nop().MustMethod()
	requireSeqAgreement(t, m, SequenceInput{Receiver: Int64(7)})
}

func TestSequenceBooleanInputs(t *testing.T) {
	// ^cond ifTrue:[1] ifFalse:[2] over an argument
	m := bytecode.NewBuilder("pick:", 1).
		PushTemp(0).
		JumpIfFalse("two").
		PushInt(1).ReturnTop().
		Label("two").
		PushInt(2).ReturnTop().
		MustMethod()
	requireSeqAgreement(t, m, SequenceInput{Receiver: Nil(), Args: []SeqValue{Bool(true)}})
	requireSeqAgreement(t, m, SequenceInput{Receiver: Nil(), Args: []SeqValue{Bool(false)}})
}

func TestSequenceRejectsNativeCompiler(t *testing.T) {
	m := bytecode.NewBuilder("x", 0).ReturnReceiver().MustMethod()
	if _, err := seqTester().TestSequence(m, SequenceInput{Receiver: Nil()}, NativeMethodCompilerKind, machine.ISAAmd64Like); err == nil {
		t.Fatal("native compiler must be rejected for sequences")
	}
}
