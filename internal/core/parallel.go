package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ResolveWorkers resolves a Workers configuration value: 0 defaults to
// runtime.GOMAXPROCS(0), anything else is clamped to at least 1.
func ResolveWorkers(w int) int {
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (c *Campaign) workerCount() int { return ResolveWorkers(c.Config.Workers) }

// RunUnits executes fn(0..n-1) over a pool of worker goroutines. It is
// RunUnitsCtx without a cancellation source; see there for the
// scheduling and memory-model contract.
func RunUnits(workers, n int, fn func(i int)) {
	RunUnitsCtx(context.Background(), workers, n, fn)
}

// RunUnitsCtx executes fn(0..n-1) over a pool of worker goroutines. Units
// are claimed from a shared atomic counter, so scheduling is
// work-stealing-ish: a worker that drew a cheap unit immediately claims
// the next one. With workers <= 1 it degenerates to a plain loop on the
// calling goroutine — the strictly serial mode the determinism tests
// compare against.
//
// Cancelling ctx stops the pool claiming new units; units already
// running finish (they are short), every worker goroutine exits, and
// RunUnitsCtx returns ctx.Err(). The pool never leaks goroutines: all
// exits funnel through the WaitGroup, cancelled or not.
//
// RunUnitsCtx establishes a happens-before edge between every completed
// fn call and its return (via WaitGroup), so callers may read unit
// results without further synchronization. The campaign engine, the
// fuzzer and the server's job runner all shard their work through it.
func RunUnitsCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
