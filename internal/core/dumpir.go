package core

import (
	"fmt"
	"strings"

	"cogdiff/internal/concolic"
	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
)

// DumpIR compiles one explored path of the instruction and renders every
// compilation stage: the front-end IR, the IR after each optimization
// pass, and the lowered machine program for both ISAs. The IR stages are
// ISA-independent (the front-ends and passes never consult the target),
// so they are printed once; only the lowered programs differ.
//
// Not every explored path materializes a compilable input frame (invalid
// frames are the test runner's expected failures), so the dump uses the
// first path that compiles end to end.
func (t *Tester) DumpIR(target concolic.Target, ex *concolic.Exploration, kind CompilerKind) (string, error) {
	var lastErr error
	for _, path := range ex.Paths {
		out, err := t.dumpPathIR(target, ex, path, kind)
		if err == nil {
			return out, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: %s has no explored paths", target.Name)
	}
	return "", fmt.Errorf("core: no explored path of %s compiles: %w", target.Name, lastErr)
}

func (t *Tester) dumpPathIR(target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult, kind CompilerKind) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "instruction %s, compiler %s\n", target.Name, kind)

	stagesDone := false
	for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
		// A fresh object memory per ISA keeps heap addresses embedded in
		// the code (true/false objects, floats) identical across dumps.
		om := heap.NewBootedObjectMemory()
		onStage := func(stage string, fn *ir.Fn) {
			if stagesDone {
				return
			}
			fmt.Fprintf(&b, "\n== %s ==\n%s", stage, fn)
		}
		var cm *jit.CompiledMethod
		var err error
		if kind == NativeMethodCompilerKind {
			prim := t.Prims.Lookup(target.PrimIndex)
			if prim == nil {
				return "", fmt.Errorf("unknown primitive %d", target.PrimIndex)
			}
			nc := jit.NewNativeMethodCompiler(isa, om, t.Defects)
			nc.OnStage = onStage
			cm, err = nc.CompileNativeMethod(prim)
		} else {
			frame, ferr := concolic.NewFrameBuilder(om, ex.Universe, path.Model).BuildFrame(target)
			if ferr != nil {
				return "", ferr
			}
			inputStack := make([]heap.Word, frame.Size())
			for i, v := range frame.Stack {
				inputStack[i] = v.W
			}
			cogit := jit.NewCogit(variantOf(kind), isa, om, t.Defects)
			cogit.OnStage = onStage
			cm, err = cogit.CompileBytecode(target.Method, inputStack)
		}
		if err != nil {
			return "", err
		}
		stagesDone = true
		fmt.Fprintf(&b, "\n== lowered %s ==\n%s", isa, cm.Prog.Disassemble())
	}
	return b.String(), nil
}
