package core

import (
	"encoding/json"
	"time"

	"cogdiff/internal/concolic"
	"cogdiff/internal/interp"
	"cogdiff/internal/machine"
)

// Test-unit results are pure functions of (exploration content, compiler,
// ISA list, defect switches), so the campaign caches them alongside
// explorations (internal/excache) keyed by the exploration fingerprint.
// This file is the serialization half: an InstructionReport round-trips
// through JSON carrying everything the merge pass and the report tables
// consume — verdict flags, blamed stage, classification inputs (the
// interpreter exit kind and the compiled observation) and the recorded
// test time, so a warm campaign renders byte-identical Table 2/3, cause
// and Figure 7 output. The symbolic result value inside interp.Exit is
// deliberately dropped (like concolic's exit serialization): nothing
// downstream of a verdict reads it.

type unitObservationDTO struct {
	Kind     int    `json:"kind"`
	Selector string `json:"selector,omitempty"`
	NumArgs  int    `json:"numArgs,omitempty"`
	Result   string `json:"result,omitempty"`
	// No omitempty on the containers: JSON null round-trips a nil slice
	// or map and []/{} a non-nil empty one, keeping cached observations
	// deep-equal to fresh ones.
	Stack     []string         `json:"stack"`
	Temps     []string         `json:"temps"`
	Heap      map[int][]string `json:"heap"`
	Steps     int              `json:"steps,omitempty"`
	CodeBytes int              `json:"codeBytes,omitempty"`
	Detail    string           `json:"detail,omitempty"`
}

type unitExitDTO struct {
	Kind     int    `json:"kind"`
	NextPC   int    `json:"nextPC,omitempty"`
	Selector string `json:"selector,omitempty"`
	NumArgs  int    `json:"numArgs,omitempty"`
	FailCode int    `json:"failCode,omitempty"`
}

type unitVerdictDTO struct {
	Compiler int                 `json:"compiler"`
	ISA      int                 `json:"isa"`
	Skipped  bool                `json:"skipped,omitempty"`
	Reason   string              `json:"reason,omitempty"`
	Differs  bool                `json:"differs,omitempty"`
	Detail   string              `json:"detail,omitempty"`
	Cause    string              `json:"cause,omitempty"`
	Observed *unitObservationDTO `json:"observed,omitempty"`
	Exit     unitExitDTO         `json:"exit"`
}

type unitReportDTO struct {
	Paths       int              `json:"paths"`
	Curated     int              `json:"curated"`
	Differences int              `json:"differences"`
	TestTimeNS  int64            `json:"testTimeNs"`
	Verdicts    []unitVerdictDTO `json:"verdicts"`
}

// MarshalInstructionReport serializes one test unit's report for the
// exploration cache. The target and exploration time are omitted — they
// are rebound from the live campaign on load.
func MarshalInstructionReport(ir *InstructionReport) ([]byte, error) {
	dto := unitReportDTO{
		Paths:       ir.Paths,
		Curated:     ir.Curated,
		Differences: ir.Differences,
		TestTimeNS:  ir.TestTime.Nanoseconds(),
	}
	for _, v := range ir.Verdicts {
		vd := unitVerdictDTO{
			Compiler: int(v.Compiler),
			ISA:      int(v.ISA),
			Skipped:  v.Skipped,
			Reason:   v.Reason,
			Differs:  v.Differs,
			Detail:   v.Detail,
			Cause:    v.Cause,
			Exit: unitExitDTO{
				Kind: int(v.InterpExit.Kind), NextPC: v.InterpExit.NextPC,
				Selector: v.InterpExit.Selector, NumArgs: v.InterpExit.NumArgs,
				FailCode: v.InterpExit.FailCode,
			},
		}
		if o := v.Observed; o != nil {
			vd.Observed = &unitObservationDTO{
				Kind: int(o.Kind), Selector: o.Selector, NumArgs: o.NumArgs,
				Result: o.Result, Stack: o.Stack, Temps: o.Temps, Heap: o.Heap,
				Steps: o.Steps, CodeBytes: o.CodeBytes, Detail: o.Detail,
			}
		}
		dto.Verdicts = append(dto.Verdicts, vd)
	}
	return json.Marshal(dto)
}

// UnmarshalInstructionReport reconstructs a cached test-unit report,
// rebinding it to the live target and exploration (for Target identity
// and the current run's ExploreTime, exactly as testInstruction would
// record them).
func UnmarshalInstructionReport(data []byte, target concolic.Target, ex *concolic.Exploration) (InstructionReport, error) {
	var dto unitReportDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return InstructionReport{}, err
	}
	ir := InstructionReport{
		Target:      target,
		Paths:       dto.Paths,
		Curated:     dto.Curated,
		Differences: dto.Differences,
		ExploreTime: ex.Duration,
		TestTime:    time.Duration(dto.TestTimeNS),
	}
	for _, vd := range dto.Verdicts {
		v := PathVerdict{
			Compiler: CompilerKind(vd.Compiler),
			ISA:      machine.ISA(vd.ISA),
			Skipped:  vd.Skipped,
			Reason:   vd.Reason,
			Differs:  vd.Differs,
			Detail:   vd.Detail,
			Cause:    vd.Cause,
			InterpExit: interp.Exit{
				Kind: interp.ExitKind(vd.Exit.Kind), NextPC: vd.Exit.NextPC,
				Selector: vd.Exit.Selector, NumArgs: vd.Exit.NumArgs,
				FailCode: vd.Exit.FailCode,
			},
		}
		if o := vd.Observed; o != nil {
			v.Observed = &CompiledObservation{
				Kind: CompiledExitKind(o.Kind), Selector: o.Selector, NumArgs: o.NumArgs,
				Result: o.Result, Stack: o.Stack, Temps: o.Temps, Heap: o.Heap,
				Steps: o.Steps, CodeBytes: o.CodeBytes, Detail: o.Detail,
			}
		}
		ir.Verdicts = append(ir.Verdicts, v)
	}
	return ir, nil
}
