package core_test

// Campaign-level soundness tests for the exploration cache: a campaign
// run with caching off, with a cold cache, and with a warm cache must be
// observationally identical at any worker count, on both the structured
// results and every deterministic rendered surface. The cache must also
// survive hostile directory contents (robustness) and concurrent
// campaigns sharing one directory (exercised under the -race tier).

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"cogdiff/internal/core"
	"cogdiff/internal/excache"
	"cogdiff/internal/interp"
	"cogdiff/internal/report"
	"cogdiff/internal/telemetry"
)

// cacheNormalize deep-copies the campaign reports and strips everything
// a cache hit is allowed to change: the wall-clock fields, plus the
// interpreter exit's concrete result value (the serialized exit carries
// the kind and control fields only — Classify never reads the value, so
// dropping it is observationally invisible to every report surface).
func cacheNormalize(res *core.CampaignResult) []core.CompilerReport {
	out := make([]core.CompilerReport, len(res.Reports))
	for i, r := range res.Reports {
		nr := core.CompilerReport{Compiler: r.Compiler, Instructions: make([]core.InstructionReport, len(r.Instructions))}
		for j, ir := range r.Instructions {
			ir.ExploreTime = 0
			ir.TestTime = 0
			verdicts := make([]core.PathVerdict, len(ir.Verdicts))
			for k, v := range ir.Verdicts {
				v.InterpExit.Result = interp.Value{}
				v.InterpExit.HasResult = false
				verdicts[k] = v
			}
			ir.Verdicts = verdicts
			nr.Instructions[j] = ir
		}
		out[i] = nr
	}
	return out
}

// renderSurfaces renders every deterministic report surface. Figures 6
// and 7 are excluded: they embed wall-clock timings by design (cached
// entries replay the recorded durations, so they still differ from a
// fresh run).
func renderSurfaces(res *core.CampaignResult) string {
	return report.Table2(res) + "\n" + report.Table3(res) + "\n" + report.Figure5(res) + "\n" + report.Causes(res)
}

func runCampaignWithCache(t *testing.T, cache *excache.Cache, workers int) *core.CampaignResult {
	t.Helper()
	cfg := determinismConfig()
	cfg.Workers = workers
	cfg.Cache = cache
	return core.NewCampaign(cfg).Run()
}

func openCampaignCache(t *testing.T, dir string, reg *telemetry.Registry) *excache.Cache {
	t.Helper()
	c, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCampaignByteIdenticalOffColdWarm is the acceptance property: the
// same campaign with caching off, populating a cold cache, and served
// from a warm cache produces identical results at workers 1 and 4.
func TestCampaignByteIdenticalOffColdWarm(t *testing.T) {
	dir := t.TempDir()

	off := runCampaignWithCache(t, nil, 1)
	offReports, offSurfaces := cacheNormalize(off), renderSurfaces(off)

	cold := runCampaignWithCache(t, openCampaignCache(t, dir, nil), 1)
	if !reflect.DeepEqual(offReports, cacheNormalize(cold)) {
		t.Error("cold-cache reports differ from cache-off reports")
	}
	if got := renderSurfaces(cold); got != offSurfaces {
		t.Errorf("cold-cache rendered surfaces differ from cache-off:\n--- off ---\n%s\n--- cold ---\n%s", offSurfaces, got)
	}

	for _, workers := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		warm := runCampaignWithCache(t, openCampaignCache(t, dir, reg), workers)
		if !reflect.DeepEqual(offReports, cacheNormalize(warm)) {
			t.Errorf("workers=%d: warm-cache reports differ from cache-off reports", workers)
		}
		if got := renderSurfaces(warm); got != offSurfaces {
			t.Errorf("workers=%d: warm-cache rendered surfaces differ from cache-off:\n--- off ---\n%s\n--- warm ---\n%s", workers, offSurfaces, got)
		}
		if !reflect.DeepEqual(off.Causes, warm.Causes) {
			t.Errorf("workers=%d: warm-cache cause classification differs", workers)
		}
		if hits := reg.Counter(telemetry.MetricCacheHits).Value(); hits == 0 {
			t.Errorf("workers=%d: warm campaign recorded no cache hits", workers)
		}
		if misses := reg.Counter(telemetry.MetricCacheMisses).Value(); misses != 0 {
			t.Errorf("workers=%d: warm campaign recorded %d misses, want 0", workers, misses)
		}
	}
}

// TestCampaignSurvivesCorruptCacheDirectory truncates every entry of a
// warm cache and re-runs: the campaign must fall back to fresh work
// (identical results), count the damage in cogdiff_excache_corrupt_total,
// and heal the directory so the following run hits again.
func TestCampaignSurvivesCorruptCacheDirectory(t *testing.T) {
	dir := t.TempDir()
	baseline := runCampaignWithCache(t, openCampaignCache(t, dir, nil), 1)
	baseReports, baseSurfaces := cacheNormalize(baseline), renderSurfaces(baseline)

	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries after cold run (err %v)", err)
	}
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reg := telemetry.NewRegistry()
	res := runCampaignWithCache(t, openCampaignCache(t, dir, reg), 1)
	if !reflect.DeepEqual(baseReports, cacheNormalize(res)) {
		t.Error("campaign over a corrupted cache produced different reports")
	}
	if got := renderSurfaces(res); got != baseSurfaces {
		t.Error("campaign over a corrupted cache produced different rendered surfaces")
	}
	if corrupt := reg.Counter(telemetry.MetricCacheCorrupt).Value(); corrupt == 0 {
		t.Error("corrupted entries were not counted in cogdiff_excache_corrupt_total")
	}

	// The corrupted entries must have been overwritten: the next run hits.
	reg2 := telemetry.NewRegistry()
	runCampaignWithCache(t, openCampaignCache(t, dir, reg2), 1)
	if reg2.Counter(telemetry.MetricCacheCorrupt).Value() != 0 {
		t.Error("cache did not heal: corrupt entries seen on the run after re-population")
	}
	if reg2.Counter(telemetry.MetricCacheHits).Value() == 0 {
		t.Error("cache did not heal: no hits on the run after re-population")
	}
}

// TestCampaignVersionBumpForcesReexploration pins the invalidation rule
// at the campaign level: a cache populated under one semantics version
// serves zero hits after a version bump, and the re-explored campaign
// still matches.
func TestCampaignVersionBumpForcesReexploration(t *testing.T) {
	dir := t.TempDir()
	baseline := runCampaignWithCache(t, openCampaignCache(t, dir, nil), 1)

	bumped := excache.DefaultVersions()
	bumped.Interp = "interp/next"
	reg := telemetry.NewRegistry()
	cache, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW, Metrics: reg, Versions: bumped})
	if err != nil {
		t.Fatal(err)
	}
	res := runCampaignWithCache(t, cache, 1)
	if hits := reg.Counter(telemetry.MetricCacheHits).Value(); hits != 0 {
		t.Errorf("version-bumped campaign served %d hits from the old generation", hits)
	}
	if !reflect.DeepEqual(cacheNormalize(baseline), cacheNormalize(res)) {
		t.Error("version-bumped campaign produced different reports")
	}
}

// TestConcurrentCampaignsShareCacheDir runs two campaigns concurrently
// against one cache directory — the two-writers scenario the atomic
// temp-file+rename protocol exists for. Under the -race tier this also
// proves the absence of data races between concurrent cache users.
func TestConcurrentCampaignsShareCacheDir(t *testing.T) {
	dir := t.TempDir()
	baseline := runCampaignWithCache(t, nil, 1)
	baseReports := cacheNormalize(baseline)

	results := make([]*core.CampaignResult, 2)
	caches := []*excache.Cache{
		openCampaignCache(t, dir, telemetry.NewRegistry()),
		openCampaignCache(t, dir, telemetry.NewRegistry()),
	}
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := determinismConfig()
			cfg.Workers = 2
			cfg.Cache = caches[i]
			results[i] = core.NewCampaign(cfg).Run()
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if !reflect.DeepEqual(baseReports, cacheNormalize(res)) {
			t.Errorf("concurrent campaign %d differs from the cache-off baseline", i)
		}
	}
	// Whatever interleaving happened, the directory must be left fully
	// consistent: a fresh warm run sees no corruption.
	reg := telemetry.NewRegistry()
	runCampaignWithCache(t, openCampaignCache(t, dir, reg), 1)
	if corrupt := reg.Counter(telemetry.MetricCacheCorrupt).Value(); corrupt != 0 {
		t.Errorf("concurrent writers left %d corrupt entries behind", corrupt)
	}
}
