package core_test

// The compile-only verification sweep's contract: a pristine (or
// production) catalog verifies clean across every compiler and both
// ISAs, a seeded structural defect is caught statically with pass-level
// blame, the report is byte-identical at any worker count, and turning
// the verifier off changes no report byte on a clean configuration.

import (
	"context"
	"strings"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/core"
	"cogdiff/internal/report"
)

// sweepConfig is determinismConfig plus the meta-compiled front-end:
// static verification is cheap enough to sweep all five compilers even
// in -short mode.
func sweepConfig() core.Config {
	cfg := determinismConfig()
	cfg.Compilers = append(cfg.Compilers, core.MetaJITCompiler)
	return cfg
}

// TestVerifyIRCatalogClean sweeps the whole catalog — every instruction,
// all five compilers, both ISAs, front-end plus every pass prefix — and
// demands zero violations without executing anything. This is the
// pristine-catalog acceptance bar for the static verification layer.
func TestVerifyIRCatalogClean(t *testing.T) {
	cfg := sweepConfig()
	cfg.Workers = 4
	res, err := core.NewCampaign(cfg).VerifyIR(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("pristine catalog has %d verifier violations:\n%s", res.Violations, res.Render())
	}
	if res.Compiled == 0 {
		t.Fatal("sweep verified nothing")
	}
	// Every configured compiler must have contributed clean compiles.
	perCompiler := map[core.CompilerKind]int{}
	for _, row := range res.Rows {
		perCompiler[row.Compiler] += row.Compiled
	}
	for _, kind := range cfg.Compilers {
		if perCompiler[kind] == 0 {
			t.Errorf("compiler %s verified no units", kind)
		}
	}
}

// TestVerifyIRDeterministicAcrossWorkerCounts pins the sweep's rendered
// report byte-identical for any worker count.
func TestVerifyIRDeterministicAcrossWorkerCounts(t *testing.T) {
	var baseline string
	for _, workers := range []int{1, 4} {
		cfg := sweepConfig()
		cfg.Workers = workers
		res, err := core.NewCampaign(cfg).VerifyIR(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if baseline == "" {
			baseline = res.Render()
			continue
		}
		if got := res.Render(); got != baseline {
			t.Errorf("Workers=%d: sweep report differs from serial run\n--- serial ---\n%s\n--- parallel ---\n%s", workers, baseline, got)
		}
	}
}

// TestVerifyIRStackLeakBlame seeds the verifier-targeted defect — the
// peephole pass drops the first pop — and demands the sweep reject every
// affected unit statically with the exact pass-level blame string, before
// a single instruction of the broken code could have run.
func TestVerifyIRStackLeakBlame(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Compilers = []core.CompilerKind{core.SimpleBytecodeCompiler}
	cfg.BytecodeFilter = func(op bytecode.Op) bool { return op == bytecode.OpPrimAdd }
	cfg.Defects.VerifyStackLeak = true
	cfg.Workers = 1
	res, err := core.NewCampaign(cfg).VerifyIR(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("seeded stack leak produced no verifier violations")
	}
	for _, row := range res.Rows {
		for _, v := range row.Violations {
			if v.Blame != "ir-verify:stack-balance after pass:peephole" {
				t.Errorf("violation blamed %q, want ir-verify:stack-balance after pass:peephole", v.Blame)
			}
		}
	}
	if !strings.Contains(res.Render(), "ir-verify:stack-balance after pass:peephole") {
		t.Error("rendered report does not carry the blame string")
	}
}

// TestVerifierOnOffReportIdentity is the overhead knob's soundness
// contract: on a verifier-clean configuration, every rendered campaign
// report is byte-identical with the verifier on (default) or off, at
// any worker count.
func TestVerifierOnOffReportIdentity(t *testing.T) {
	var baseline [2]string // Table2+Table3+causes, verifier on/off
	for _, workers := range []int{1, 4} {
		for vi, noVerify := range []bool{false, true} {
			cfg := determinismConfig()
			cfg.Workers = workers
			cfg.NoVerify = noVerify
			res := core.NewCampaign(cfg).Run()
			got := report.Table2(res) + report.Table3(res) + report.Causes(res)
			if workers == 1 {
				baseline[vi] = got
				continue
			}
			if got != baseline[vi] {
				t.Errorf("Workers=%d NoVerify=%t: report differs from serial run", workers, noVerify)
			}
		}
		if workers == 1 && baseline[0] != baseline[1] {
			t.Errorf("verifier on/off changed the campaign report:\n--- on ---\n%s\n--- off ---\n%s", baseline[0], baseline[1])
		}
	}
}
