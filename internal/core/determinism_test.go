package core_test

// The parallel campaign engine promises a deterministic merge: reports,
// verdict ordering and rendered tables must be byte-identical to the
// serial run for any worker count. These tests pin that guarantee — they
// are the contract the race-detector tier and the golden CLI tables
// build on.

import (
	"reflect"
	"runtime"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/core"
	"cogdiff/internal/primitives"
	"cogdiff/internal/report"
)

// determinismConfig returns the campaign configuration under comparison:
// the paper's full evaluation normally, a reduced instruction selection
// under -short (the race-detector tier runs the reduced version).
func determinismConfig() core.Config {
	cfg := core.DefaultConfig()
	if testing.Short() {
		cfg.BytecodeFilter = func(op bytecode.Op) bool {
			return op == bytecode.OpPrimAdd || op == bytecode.OpPushConstantOne || op == bytecode.OpPrimLessThan
		}
		cfg.PrimitiveFilter = func(p *primitives.Primitive) bool {
			switch p.Name {
			case "primitiveAdd", "primitiveAsFloat", "primitiveFloatAdd", "primitiveBitAnd", "primitiveFFIInt8At", "primitiveFloatTruncated":
				return true
			}
			return false
		}
	}
	return cfg
}

// normalizeReports strips the wall-clock fields (ExploreTime, TestTime) —
// the only nondeterministic data a campaign produces — leaving the full
// verdict structure for deep comparison.
func normalizeReports(res *core.CampaignResult) []core.CompilerReport {
	out := make([]core.CompilerReport, len(res.Reports))
	for i, r := range res.Reports {
		nr := core.CompilerReport{Compiler: r.Compiler, Instructions: make([]core.InstructionReport, len(r.Instructions))}
		for j, ir := range r.Instructions {
			ir.ExploreTime = 0
			ir.TestTime = 0
			nr.Instructions[j] = ir
		}
		out[i] = nr
	}
	return out
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	var baseline *core.CampaignResult
	var baseReports []core.CompilerReport
	for _, workers := range workerCounts {
		cfg := determinismConfig()
		cfg.Workers = workers
		res := core.NewCampaign(cfg).Run()

		if baseline == nil {
			baseline, baseReports = res, normalizeReports(res)
			continue
		}
		got := normalizeReports(res)
		if !reflect.DeepEqual(baseReports, got) {
			t.Errorf("Workers=%d: CompilerReports differ from serial run", workers)
			for i := range baseReports {
				if !reflect.DeepEqual(baseReports[i], got[i]) {
					t.Errorf("  first diverging compiler: %s", baseReports[i].Compiler)
					break
				}
			}
		}
		if !reflect.DeepEqual(baseline.Causes, res.Causes) {
			t.Errorf("Workers=%d: cause classification differs from serial run", workers)
		}

		// The acceptance bar: rendered Table 2 and Table 3 byte-identical.
		if t2s, t2p := report.Table2(baseline), report.Table2(res); t2s != t2p {
			t.Errorf("Workers=%d: Table 2 differs\nserial:\n%s\nparallel:\n%s", workers, t2s, t2p)
		}
		if t3s, t3p := report.Table3(baseline), report.Table3(res); t3s != t3p {
			t.Errorf("Workers=%d: Table 3 differs\nserial:\n%s\nparallel:\n%s", workers, t3s, t3p)
		}
	}
}

// TestCampaignDeterministicWithBlameDefect extends the determinism
// guarantee to pass-level blame: with the pass-targeted constant-folding
// defect enabled, the cause table must attribute differences to
// "pass:constfold" and the attribution — chosen from the first differing
// path — must not depend on the worker count.
func TestCampaignDeterministicWithBlameDefect(t *testing.T) {
	var baseline *core.CampaignResult
	var baseReports []core.CompilerReport
	for _, workers := range []int{1, 4} {
		cfg := determinismConfig()
		cfg.Defects.ConstFoldSignError = true
		cfg.Workers = workers
		res := core.NewCampaign(cfg).Run()

		if baseline == nil {
			baseline, baseReports = res, normalizeReports(res)
			blamed := false
			for _, c := range res.Causes {
				if c.Stage == "pass:constfold" {
					blamed = true
				}
			}
			if !blamed {
				t.Fatal("no cause blamed on pass:constfold with the defect enabled")
			}
			continue
		}
		if !reflect.DeepEqual(baseReports, normalizeReports(res)) {
			t.Errorf("Workers=%d: CompilerReports differ from serial run with blame defect", workers)
		}
		if !reflect.DeepEqual(baseline.Causes, res.Causes) {
			t.Errorf("Workers=%d: cause classification (including blamed stages) differs from serial run", workers)
		}
	}
}

// TestCampaignProgressCallback pins the OnInstructionDone contract: one
// serialized call per (compiler, instruction) unit, Done counting up to
// Total exactly once each.
func TestCampaignProgressCallback(t *testing.T) {
	cfg := determinismConfig()
	if !testing.Short() {
		// The reduced selection is enough to exercise the callback path.
		mini := core.DefaultConfig()
		cfg.BytecodeFilter = func(op bytecode.Op) bool { return op == bytecode.OpPrimAdd }
		cfg.PrimitiveFilter = func(p *primitives.Primitive) bool { return p.Name == "primitiveAdd" }
		cfg.Defects = mini.Defects
	}
	cfg.Workers = 4

	var events []core.InstructionDone
	cfg.OnInstructionDone = func(ev core.InstructionDone) { events = append(events, ev) }
	core.NewCampaign(cfg).Run()

	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	total := events[0].Total
	if len(events) != total {
		t.Fatalf("got %d events, Total says %d", len(events), total)
	}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Errorf("event %d has Done=%d, want %d (callbacks must serialize)", i, ev.Done, i+1)
		}
		if ev.Total != total {
			t.Errorf("event %d has Total=%d, want %d", i, ev.Total, total)
		}
		if ev.Instruction == "" {
			t.Errorf("event %d missing instruction name", i)
		}
	}
}
