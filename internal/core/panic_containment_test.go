package core

import (
	"strings"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
	"cogdiff/internal/telemetry"
)

// TestCampaignContainsHeapPanics injects a genuine heap fault — the
// panic(err) the memory layer raises on an unmapped MustRead — into every
// simple-compiler/amd64 test unit and checks the campaign survives: the
// run completes, the poisoned units stay in the report as crash-style
// differences, classification still applies, and the containment counter
// records each panic.
func TestCampaignContainsHeapPanics(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.BytecodeFilter = func(op bytecode.Op) bool { return op == bytecode.OpPrimAdd }
	cfg.PrimitiveFilter = func(p *primitives.Primitive) bool { return false }
	cfg.Workers = 4
	cfg.Metrics = reg
	cfg.faultInject = func(target concolic.Target, kind CompilerKind, isa machine.ISA) {
		if kind == SimpleBytecodeCompiler && isa == machine.ISAAmd64Like {
			heap.NewMemory().MustRead(0x40)
		}
	}
	res := NewCampaign(cfg).Run()

	var simple *CompilerReport
	for i := range res.Reports {
		if res.Reports[i].Compiler == SimpleBytecodeCompiler {
			simple = &res.Reports[i]
		}
	}
	if simple == nil || len(simple.Instructions) == 0 {
		t.Fatal("simple-compiler report missing from the campaign result")
	}
	contained := 0
	for _, ir := range simple.Instructions {
		for _, v := range ir.Verdicts {
			if v.ISA != machine.ISAAmd64Like {
				continue
			}
			if !v.Differs || v.Cause != "panic" || !strings.Contains(v.Detail, "contained panic") {
				t.Errorf("amd64 verdict not a contained-panic difference: differs=%v cause=%q detail=%q", v.Differs, v.Cause, v.Detail)
				continue
			}
			if v.Observed == nil || v.Observed.Kind != CompiledCrash {
				t.Errorf("contained panic not observed as a compiled crash: %+v", v.Observed)
			}
			contained++
		}
		if ir.Differences == 0 {
			t.Errorf("%s: poisoned instruction dropped from the difference totals", ir.Target.Name)
		}
	}
	if contained == 0 {
		t.Fatal("no contained-panic verdicts in the report; the fault injection never fired")
	}
	if got := reg.Counter(telemetry.MetricPanicsContained).Value(); got < int64(contained) {
		t.Errorf("panics_contained counter %d, want at least %d", got, contained)
	}
	if len(res.Causes) == 0 {
		t.Error("contained panics must still be classified into causes")
	}
}

// TestCampaignPanicContainmentDeterministic checks contained panics do
// not perturb determinism: the panic is a deterministic function of the
// unit, so serial and parallel runs agree verdict for verdict.
func TestCampaignPanicContainmentDeterministic(t *testing.T) {
	run := func(workers int) *CampaignResult {
		cfg := DefaultConfig()
		cfg.BytecodeFilter = func(op bytecode.Op) bool { return op == bytecode.OpPrimAdd }
		cfg.PrimitiveFilter = func(p *primitives.Primitive) bool { return false }
		cfg.Workers = workers
		cfg.faultInject = func(target concolic.Target, kind CompilerKind, isa machine.ISA) {
			if kind == SimpleBytecodeCompiler {
				heap.NewMemory().MustRead(0x40)
			}
		}
		return NewCampaign(cfg).Run()
	}
	serial, parallel := run(1), run(4)
	if len(serial.Reports) != len(parallel.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(serial.Reports), len(parallel.Reports))
	}
	for i := range serial.Reports {
		sp, sc, sd := serial.Reports[i].Totals()
		pp, pc, pd := parallel.Reports[i].Totals()
		if sp != pp || sc != pc || sd != pd {
			t.Errorf("%s: totals differ between worker counts: %d/%d/%d vs %d/%d/%d",
				serial.Reports[i].Compiler, sp, sc, sd, pp, pc, pd)
		}
		for j := range serial.Reports[i].Instructions {
			sv := serial.Reports[i].Instructions[j].Verdicts
			pv := parallel.Reports[i].Instructions[j].Verdicts
			if len(sv) != len(pv) {
				t.Fatalf("verdict counts differ for %s", serial.Reports[i].Instructions[j].Target.Name)
			}
			for k := range sv {
				if sv[k].Differs != pv[k].Differs || sv[k].Detail != pv[k].Detail || sv[k].Cause != pv[k].Cause {
					t.Errorf("verdict %d diverges between worker counts: %+v vs %+v", k, sv[k], pv[k])
				}
			}
		}
	}
}
