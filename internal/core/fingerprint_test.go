package core

import (
	"math"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/excache"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
	"cogdiff/internal/sym"
	"cogdiff/internal/telemetry"
)

// TestFingerprintErrorIsCounted pins the fix for silently dropped
// FingerprintExploration errors: an exploration whose witness model holds
// a NaN cannot marshal to JSON, so its fingerprint fails — the campaign
// must count the failure (result field and telemetry counter), run the
// affected units uncached, and still produce the normal report.
func TestFingerprintErrorIsCounted(t *testing.T) {
	cache, err := excache.Open(excache.Config{Dir: t.TempDir(), Mode: excache.ModeRW})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cfg := Config{
		Defects:         defects.Pristine(),
		Compilers:       []CompilerKind{SimpleBytecodeCompiler},
		ISAs:            []machine.ISA{machine.ISAAmd64Like},
		Explore:         concolic.DefaultOptions(),
		BytecodeFilter:  func(op bytecode.Op) bool { return op == bytecode.OpPushConstantTrue },
		PrimitiveFilter: func(*primitives.Primitive) bool { return false },
		Workers:         1,
		Cache:           cache,
		Metrics:         reg,
		poisonExploration: func(_ concolic.Target, ex *concolic.Exploration) {
			if len(ex.Paths) > 0 {
				// ID 9999 belongs to no universe variable, so the poison
				// breaks json.Marshal (NaN) without touching the witness
				// the differ materializes.
				ex.Paths[0].Model.Values[9999] = sym.TypedValue{Float: math.NaN()}
			}
		},
	}
	res, err := NewCampaign(cfg).RunContext(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.FingerprintErrors != 1 {
		t.Errorf("FingerprintErrors = %d, want 1", res.FingerprintErrors)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricUnitCacheFingerprintErrors]; got != 1 {
		t.Errorf("%s = %d, want 1", telemetry.MetricUnitCacheFingerprintErrors, got)
	}
	if len(res.Reports) != 1 || len(res.Reports[0].Instructions) != 1 {
		t.Fatalf("campaign shape wrong: %+v", res.Reports)
	}
	if res.Reports[0].Instructions[0].Differences != 0 {
		t.Errorf("pushConstantTrue differs under pristine VM: %+v", res.Reports[0].Instructions[0])
	}
}

// TestFingerprintCleanRunCountsZero pins the healthy path: a normal cached
// campaign reports zero fingerprint errors.
func TestFingerprintCleanRunCountsZero(t *testing.T) {
	cache, err := excache.Open(excache.Config{Dir: t.TempDir(), Mode: excache.ModeRW})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Defects:         defects.Pristine(),
		Compilers:       []CompilerKind{SimpleBytecodeCompiler},
		ISAs:            []machine.ISA{machine.ISAAmd64Like},
		Explore:         concolic.DefaultOptions(),
		BytecodeFilter:  func(op bytecode.Op) bool { return op == bytecode.OpPushConstantTrue },
		PrimitiveFilter: func(*primitives.Primitive) bool { return false },
		Workers:         1,
		Cache:           cache,
	}
	res, err := NewCampaign(cfg).RunContext(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.FingerprintErrors != 0 {
		t.Errorf("FingerprintErrors = %d, want 0", res.FingerprintErrors)
	}
}
