package core

import (
	"testing"

	"cogdiff/internal/defects"
)

// TestFullCampaignShape runs the complete evaluation (all instructions,
// all compilers, both ISAs) and pins the Table 2 / Table 3 shape this
// reproduction reports (EXPERIMENTS.md records these against the paper).
// The campaign is deterministic, so exact counts act as a regression
// guard over the entire pipeline.
func TestFullCampaignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign skipped in -short mode")
	}
	res := NewCampaign(DefaultConfig()).Run()

	byCompiler := map[CompilerKind][3]int{}
	for _, r := range res.Reports {
		p, c, d := r.Totals()
		byCompiler[r.Compiler] = [3]int{p, c, d}
	}

	// The byte-code compiler rows must land exactly on the paper's
	// difference counts: Simple 18, Stack-to-Register 10, Linear-Scan 10.
	if d := byCompiler[SimpleBytecodeCompiler][2]; d != 18 {
		t.Errorf("Simple compiler differences = %d, want 18 (paper Table 2)", d)
	}
	if d := byCompiler[StackToRegisterCompiler][2]; d != 10 {
		t.Errorf("Stack-to-Register differences = %d, want 10 (paper Table 2)", d)
	}
	if d := byCompiler[RegisterAllocatingCompiler][2]; d != 10 {
		t.Errorf("Linear-Scan differences = %d, want 10 (paper Table 2)", d)
	}

	// Native methods dominate the byte-code tiers by an order of
	// magnitude (paper: 440 vs 18/10/10; here 256 vs 18/10/10).
	nm := byCompiler[NativeMethodCompilerKind][2]
	if nm < 10*byCompiler[SimpleBytecodeCompiler][2] {
		t.Errorf("native methods (%d) must dominate the byte-code tiers", nm)
	}

	// Table 3: five of six families match the paper exactly; the
	// optimisation family counts the Simple tier's missing integer fast
	// paths individually (see EXPERIMENTS.md).
	fams := res.CausesByFamily()
	want := map[defects.Family]int{
		defects.MissingInterpreterTypeCheck: 1,
		defects.MissingCompiledTypeCheck:    13,
		defects.BehavioralDifference:        5,
		defects.MissingFunctionality:        60,
		defects.SimulationError:             2,
		defects.OptimizationDifference:      16,
	}
	for fam, n := range want {
		if fams[fam] != n {
			t.Errorf("family %q: %d causes, want %d", fam, fams[fam], n)
		}
	}

	// Per-path difference verdicts must be symmetric across ISAs for
	// every non-crashing behaviour: a path differing on one ISA differs
	// on the other (cross-ISA consistency of the compilers themselves).
	for _, r := range res.Reports {
		for _, ir := range r.Instructions {
			for i := 0; i+1 < len(ir.Verdicts); i += 2 {
				a, b := ir.Verdicts[i], ir.Verdicts[i+1]
				if a.Skipped || b.Skipped {
					continue
				}
				if a.Differs != b.Differs {
					t.Errorf("%s/%s: ISA-asymmetric verdict (%v vs %v): %s | %s",
						r.Compiler, ir.Target.Name, a.Differs, b.Differs, a.Detail, b.Detail)
				}
			}
		}
	}
}
