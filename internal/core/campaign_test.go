package core

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// TestMiniCampaign runs a restricted campaign end to end and checks the
// aggregate structure.
func TestMiniCampaign(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BytecodeFilter = func(op bytecode.Op) bool {
		return op == bytecode.OpPrimAdd || op == bytecode.OpPushConstantOne || op == bytecode.OpPrimLessThan
	}
	cfg.PrimitiveFilter = func(p *primitives.Primitive) bool {
		switch p.Name {
		case "primitiveAdd", "primitiveAsFloat", "primitiveFloatAdd", "primitiveBitAnd", "primitiveFFIInt8At", "primitiveFloatTruncated":
			return true
		}
		return false
	}
	res := NewCampaign(cfg).Run()

	if len(res.Reports) != 4 {
		t.Fatalf("expected 4 compiler reports, got %d", len(res.Reports))
	}
	for _, r := range res.Reports {
		paths, curated, diffs := r.Totals()
		if paths == 0 || curated == 0 {
			t.Errorf("%s: empty totals (%d paths, %d curated)", r.Compiler, paths, curated)
		}
		if curated > paths {
			t.Errorf("%s: curated %d exceeds paths %d", r.Compiler, curated, paths)
		}
		if diffs > curated {
			t.Errorf("%s: diffs %d exceed curated %d", r.Compiler, diffs, curated)
		}
	}

	// The native-method row must dominate the differences (Table 2 shape).
	nm := res.Reports[0]
	if nm.Compiler != NativeMethodCompilerKind {
		t.Fatal("first report should be the native-method compiler")
	}
	_, _, nmDiffs := nm.Totals()
	if nmDiffs == 0 {
		t.Error("native methods must show differences under the production defects")
	}

	// All six defect families must be rediscovered by this selection.
	fams := res.CausesByFamily()
	for _, want := range []defects.Family{
		defects.MissingInterpreterTypeCheck,
		defects.MissingCompiledTypeCheck,
		defects.OptimizationDifference,
		defects.BehavioralDifference,
		defects.MissingFunctionality,
		defects.SimulationError,
	} {
		if fams[want] == 0 {
			t.Errorf("family %q not rediscovered: %v", want, fams)
		}
	}
}

// TestPristineCampaignOnlyOptimizationDiffs: with every seeded defect
// corrected, the only remaining differences are the inherent optimisation
// differences of the byte-code tiers.
func TestPristineCampaignOnlyOptimizationDiffs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Defects = defects.Pristine()
	cfg.ISAs = []machine.ISA{machine.ISAAmd64Like}
	cfg.BytecodeFilter = func(op bytecode.Op) bool {
		return op == bytecode.OpPrimAdd || op == bytecode.OpPrimBitAnd
	}
	cfg.PrimitiveFilter = func(p *primitives.Primitive) bool {
		switch p.Name {
		case "primitiveAdd", "primitiveAsFloat", "primitiveFloatAdd", "primitiveBitAnd",
			"primitiveFFIInt8At", "primitiveFloatTruncated", "primitiveFloatSin":
			return true
		}
		return false
	}
	res := NewCampaign(cfg).Run()
	for _, cause := range res.Causes {
		if cause.Family != defects.OptimizationDifference {
			t.Errorf("pristine VM rediscovered %s on %s: %s", cause.Family, cause.Instruction, cause.Example)
		}
	}
}
