package core

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// MeasurePerPathAllocs reports the average Go allocations per path test
// of a representative explored unit (OpPrimAdd: float and integer paths,
// differing and agreeing verdicts). With noReuse false it measures the
// steady state of one UnitRun — pooled environments, warm compiled-code
// cache, shared interpreter reference. With noReuse true it measures the
// pre-overhaul architecture: every call boots fresh heaps and compiles
// from scratch. bench-export records both and their ratio; the
// perf-smoke gate holds the ratio to the overhaul's acceptance bar.
//
// This is a measurement entry point, not a test helper: it lives in the
// package proper so the CLI can re-measure on the machine at hand
// instead of trusting numbers committed from another one.
func MeasurePerPathAllocs(noReuse bool) float64 {
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	ex := explorer.Explore(target)
	tester := NewTester(prims, defects.ProductionVM())
	if noReuse {
		tester.SetNoReuse()
	}
	isas := []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like}
	run := tester.BeginUnit(target, ex)
	defer run.Close()
	for _, p := range ex.Paths { // warm pools, cache, and reference
		for _, isa := range isas {
			run.TestPath(p, SimpleBytecodeCompiler, isa)
		}
	}
	n := len(ex.Paths) * len(isas)
	var per float64
	if noReuse {
		// The one-shot wrapper recomputes the reference and compiles on
		// every call — the pre-overhaul per-path cost.
		per = testing.AllocsPerRun(20, func() {
			for _, p := range ex.Paths {
				for _, isa := range isas {
					tester.TestPath(target, ex, p, SimpleBytecodeCompiler, isa)
				}
			}
		})
	} else {
		per = testing.AllocsPerRun(20, func() {
			for _, p := range ex.Paths {
				for _, isa := range isas {
					run.TestPath(p, SimpleBytecodeCompiler, isa)
				}
			}
		})
	}
	return per / float64(n)
}
