package core

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// divisionEdgeValues are the operand edges all three division families
// must agree on: zero divisors, the MinSmallInt/-1 overflow pair, mixed
// signs and both ends of the small-integer range.
var divisionEdgeValues = []int64{
	heap.MinSmallInt, heap.MinSmallInt + 1,
	-7, -3, -2, -1, 0, 1, 2, 3, 7,
	heap.MaxSmallInt - 1, heap.MaxSmallInt,
}

var divisionEdgeOps = []struct {
	op         bytecode.Op
	instrument string
}{
	{bytecode.OpPrimDivide, "primDivide"},
	{bytecode.OpPrimDiv, "primDiv"},
	{bytecode.OpPrimMod, "primMod"},
}

func divisionEdgeMethod(op bytecode.Op) *bytecode.Method {
	return bytecode.NewBuilder("divedge", 1).
		PushReceiver().PushTemp(0).Op(op).ReturnTop().MustMethod()
}

// TestDivisionEdgesRegisterCompilersAgree locks in the audit result that
// the stack-to-register and register-allocating compilers agree with the
// interpreter on every division edge pair — including zero divisors and
// MinSmallInt / -1 — on both ISAs.
func TestDivisionEdgesRegisterCompilersAgree(t *testing.T) {
	tester := NewTester(primitives.NewTable(), defects.ProductionVM())
	kinds := []CompilerKind{StackToRegisterCompiler, RegisterAllocatingCompiler}
	isas := []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like}
	for _, o := range divisionEdgeOps {
		meth := divisionEdgeMethod(o.op)
		for _, a := range divisionEdgeValues {
			for _, b := range divisionEdgeValues {
				in := SequenceInput{Receiver: Int64(a), Args: []SeqValue{Int64(b)}}
				for _, k := range kinds {
					for _, isa := range isas {
						v, err := tester.TestSequence(meth, in, k, isa)
						if err != nil {
							t.Fatalf("%s %d/%d %v %v: %v", o.instrument, a, b, k, isa, err)
						}
						if v.Differs {
							t.Errorf("%s rcvr=%d arg=%d %v %v: %s", o.instrument, a, b, k, isa, v.Detail)
						}
					}
				}
			}
		}
	}
}

// TestDivisionEdgesSimpleCompilerDiffsAreOptimizationOnly locks in the
// other half of the audit: the simple stack compiler always emits a send
// for division selectors while the interpreter inlines the exact and
// in-range cases. Every difference on the edge grid must therefore be an
// interpreter-return / compiled-send pair classified as an
// OptimizationDifference attributed to the division instrument — never a
// value mismatch or a crash.
func TestDivisionEdgesSimpleCompilerDiffsAreOptimizationOnly(t *testing.T) {
	tester := NewTester(primitives.NewTable(), defects.ProductionVM())
	isas := []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like}
	instruments := map[string]bool{"primDivide": true, "primDiv": true, "primMod": true}
	diffs := 0
	for _, o := range divisionEdgeOps {
		meth := divisionEdgeMethod(o.op)
		for _, a := range divisionEdgeValues {
			for _, b := range divisionEdgeValues {
				in := SequenceInput{Receiver: Int64(a), Args: []SeqValue{Int64(b)}}
				for _, isa := range isas {
					v, err := tester.TestSequence(meth, in, SimpleBytecodeCompiler, isa)
					if err != nil {
						t.Fatalf("%s %d/%d %v: %v", o.instrument, a, b, isa, err)
					}
					if !v.Differs {
						continue
					}
					diffs++
					if v.Interp.Kind != "return" || v.Compiled.Kind != "send" {
						t.Errorf("%s rcvr=%d arg=%d %v: unexpected difference shape interp=%q compiled=%q (%s)",
							o.instrument, a, b, isa, v.Interp.Kind, v.Compiled.Kind, v.Detail)
						continue
					}
					instrument, fam := ClassifySequence(v)
					if fam != defects.OptimizationDifference {
						t.Errorf("%s rcvr=%d arg=%d %v: classified %v, want OptimizationDifference", o.instrument, a, b, isa, fam)
					}
					if !instruments[instrument] {
						t.Errorf("%s rcvr=%d arg=%d %v: attributed to %q, want a division instrument", o.instrument, a, b, isa, instrument)
					}
				}
			}
		}
	}
	if diffs == 0 {
		t.Fatal("expected the simple compiler to send on some inlined division edges; the probe grid found none")
	}
}
