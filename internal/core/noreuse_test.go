package core

// In-package determinism tests for the raw-speed reuse layers: pooled
// execution environments, pooled exploration heaps, and the compiled-code
// cache are pure optimizations, so a campaign with every layer disabled
// (noReuse) must produce byte-identical results to the default run. The
// rendered-table and worker-count axes live in the external determinism
// tests; this file pins the pools-on/off axis, which needs the unexported
// knob.

import (
	"encoding/json"
	"reflect"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// noReuseConfig is a reduced campaign: big enough to cross every reuse
// layer (interpreter references, compiled runs, blame reruns, exploration
// heaps), small enough to run twice per test.
func noReuseConfig() Config {
	cfg := DefaultConfig()
	cfg.BytecodeFilter = func(op bytecode.Op) bool {
		return op == bytecode.OpPrimAdd || op == bytecode.OpPushConstantOne || op == bytecode.OpPrimLessThan
	}
	cfg.PrimitiveFilter = func(p *primitives.Primitive) bool {
		switch p.Name {
		case "primitiveAdd", "primitiveAsFloat", "primitiveFloatAdd", "primitiveFloatTruncated":
			return true
		}
		return false
	}
	return cfg
}

// reportBytes serializes the verdict structure minus wall-clock fields,
// giving a byte-comparable surface without importing the report package
// (which would cycle).
func reportBytes(t *testing.T, res *CampaignResult) []byte {
	t.Helper()
	norm := make([]CompilerReport, len(res.Reports))
	for i, r := range res.Reports {
		nr := CompilerReport{Compiler: r.Compiler, Instructions: make([]InstructionReport, len(r.Instructions))}
		for j, ir := range r.Instructions {
			ir.ExploreTime = 0
			ir.TestTime = 0
			nr.Instructions[j] = ir
		}
		norm[i] = nr
	}
	b, err := json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCampaignByteIdenticalPoolsOnOff(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := noReuseConfig()
		cfg.Workers = workers
		pooled := NewCampaign(cfg).Run()

		cfg = noReuseConfig()
		cfg.Workers = workers
		cfg.noReuse = true
		fresh := NewCampaign(cfg).Run()

		if pb, fb := reportBytes(t, pooled), reportBytes(t, fresh); string(pb) != string(fb) {
			t.Errorf("workers=%d: reports differ between pooled and noReuse runs", workers)
		}
		if !reflect.DeepEqual(pooled.Causes, fresh.Causes) {
			t.Errorf("workers=%d: cause classification differs between pooled and noReuse runs", workers)
		}
		if fresh.CodeCache.Hits != 0 || fresh.CodeCache.Misses != 0 {
			t.Errorf("workers=%d: noReuse run recorded code-cache traffic %d/%d",
				workers, fresh.CodeCache.Hits, fresh.CodeCache.Misses)
		}
		if pooled.CodeCache.Hits == 0 {
			t.Errorf("workers=%d: pooled run recorded no code-cache hits", workers)
		}
	}
}

// TestUnitRunMatchesTesterTestPath pins the batched entry point: driving
// paths through one UnitRun (shared reference, shared environments) gives
// the same verdicts as the one-shot Tester.TestPath wrapper.
func TestUnitRunMatchesTesterTestPath(t *testing.T) {
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	ex := explorer.Explore(target)
	tester := NewTester(prims, defects.ProductionVM())

	run := tester.BeginUnit(target, ex)
	defer run.Close()
	for _, p := range ex.Paths {
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			batched := run.TestPath(p, SimpleBytecodeCompiler, isa)
			oneShot := tester.TestPath(target, ex, p, SimpleBytecodeCompiler, isa)
			if !reflect.DeepEqual(batched, oneShot) {
				t.Fatalf("verdict differs for path %s on %v:\nbatched: %+v\none-shot: %+v", p.Exit, isa, batched, oneShot)
			}
		}
	}
}
