package core

// Allocation-regression gates on the per-path testing hot path. The
// raw-speed overhaul's claim is that testing one more path of an already
// explored unit costs almost nothing: the environments are pooled, the
// compiled body is cached, the reference is shared across ISAs. These
// gates pin that claim with testing.AllocsPerRun so an accidental
// per-path boot, clone, or compile shows up as a test failure, not a
// silent 10x slowdown. The precise before/after ratio is recorded in
// BENCH_campaign.json and enforced by `make perf-smoke`; the bounds here
// are deliberately looser so scheduler noise cannot flake CI.

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// TestPerPathAllocsWarm gates the steady-state cost: ~33 allocs/path at
// the time of writing (frame construction, canonicalization strings,
// comparison bookkeeping). The bound leaves room for noise, not for a
// reintroduced boot (~100+) or compile (~500+).
func TestPerPathAllocsWarm(t *testing.T) {
	if warm := MeasurePerPathAllocs(false); warm > 60 {
		t.Fatalf("warm per-path allocs = %.1f, want <= 60", warm)
	}
}

// TestPerPathAllocsReduction gates the before/after ratio: the reuse
// layers must cut per-path allocations by well over half against the
// fresh-boot architecture. perf-smoke enforces the full >= 80% bar on the
// recorded benchmark; this in-tree bound is looser to stay flake-free.
func TestPerPathAllocsReduction(t *testing.T) {
	warm := MeasurePerPathAllocs(false)
	fresh := MeasurePerPathAllocs(true)
	if fresh <= 0 {
		t.Fatalf("degenerate baseline measurement: %.1f", fresh)
	}
	reduction := 1 - warm/fresh
	t.Logf("per-path allocs: warm=%.1f fresh=%.1f reduction=%.1f%%", warm, fresh, 100*reduction)
	if reduction < 0.70 {
		t.Fatalf("per-path alloc reduction %.1f%% (warm=%.1f fresh=%.1f), want >= 70%%", 100*reduction, warm, fresh)
	}
}

// BenchmarkUnitPathWarm is the per-path hot-path benchmark backing the
// perPathAllocsPerOp field of bench-export: one op = one TestPath on a
// warm UnitRun, averaged over every (path, ISA) of the unit.
func BenchmarkUnitPathWarm(b *testing.B) {
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	ex := explorer.Explore(target)
	tester := NewTester(prims, defects.ProductionVM())
	isas := []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like}
	run := tester.BeginUnit(target, ex)
	defer run.Close()
	for _, p := range ex.Paths {
		for _, isa := range isas {
			run.TestPath(p, SimpleBytecodeCompiler, isa)
		}
	}
	n := len(ex.Paths) * len(isas)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += n {
		for _, p := range ex.Paths {
			for _, isa := range isas {
				run.TestPath(p, SimpleBytecodeCompiler, isa)
			}
		}
	}
}
