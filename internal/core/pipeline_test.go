package core

// White-box tests of the compilation pipeline's differential guarantees:
// the optimization passes must be observation-sound on a defect-free VM,
// both back-ends must agree on every verdict for the same post-pipeline
// IR, and the blame machinery must attribute an injected pass defect to
// the pass by name.

import (
	"reflect"
	"strings"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// pipelineTargets returns the byte-code instructions the pipeline tests
// sweep: everything normally, a representative selection under -short.
func pipelineTargets(t *testing.T) []concolic.Target {
	c := NewCampaign(DefaultConfig())
	if !testing.Short() {
		return c.BytecodeTargets()
	}
	short := map[bytecode.Op]bool{
		bytecode.OpPrimAdd:         true,
		bytecode.OpPrimSubtract:    true,
		bytecode.OpPrimLessThan:    true,
		bytecode.OpPushConstantOne: true,
	}
	var out []concolic.Target
	for _, target := range c.BytecodeTargets() {
		if short[target.Op] {
			out = append(out, target)
		}
	}
	return out
}

// normalizeObs strips the fields the differential comparison ignores —
// Steps and CodeBytes change under any count-altering pass and carry no
// observable behaviour.
func normalizeObs(obs *CompiledObservation) CompiledObservation {
	o := *obs
	o.Steps = 0
	o.CodeBytes = 0
	return o
}

var bytecodeKinds = []CompilerKind{
	SimpleBytecodeCompiler, StackToRegisterCompiler, RegisterAllocatingCompiler,
}

// TestPipelineSoundnessOnPristineVM pins the pass-soundness self-check:
// with every defect off, compiling with the full pipeline and with the
// pipeline disabled must produce identical observable behaviour on every
// explored path of every instruction, for every variant and ISA.
func TestPipelineSoundnessOnPristineVM(t *testing.T) {
	prims := primitives.NewTable()
	tester := NewTester(prims, defects.Pristine())
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	for _, target := range pipelineTargets(t) {
		ex := explorer.Explore(target)
		for pi, path := range ex.Paths {
			for _, kind := range bytecodeKinds {
				for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
					raw, rawErr := tester.runCompiled(target, ex, path, kind, isa, 0)
					opt, optErr := tester.runCompiled(target, ex, path, kind, isa, -1)
					if (rawErr == nil) != (optErr == nil) {
						// The one sanctioned flip: constant folding may
						// materialize an immediate the fixed-width ISA cannot
						// encode. Anything else is a pipeline bug.
						if isa == machine.ISAArm32Like && rawErr == nil &&
							strings.Contains(optErr.Error(), "unencodable") {
							continue
						}
						t.Fatalf("%s path %d %s/%s: pipeline flips compilability: raw %v, optimized %v",
							target.Name, pi, kind, isa, rawErr, optErr)
					}
					if rawErr != nil {
						continue
					}
					if !reflect.DeepEqual(normalizeObs(raw), normalizeObs(opt)) {
						t.Errorf("%s path %d %s/%s: pipeline changes observable behaviour\nraw: %+v\noptimized: %+v",
							target.Name, pi, kind, isa, normalizeObs(raw), normalizeObs(opt))
					}
				}
			}
		}
	}
}

// TestCrossBackendParity pins the back-end contract: the two ISAs lower
// the same post-pipeline IR, so for every explored path of every
// instruction they must reach the same differential verdict and the same
// blamed stage — the code may be shaped differently, the observable
// behaviour may not.
func TestCrossBackendParity(t *testing.T) {
	prims := primitives.NewTable()
	tester := NewTester(prims, defects.ProductionVM())
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	for _, target := range pipelineTargets(t) {
		ex := explorer.Explore(target)
		for pi, path := range ex.Paths {
			for _, kind := range bytecodeKinds {
				amd := tester.TestPath(target, ex, path, kind, machine.ISAAmd64Like)
				arm := tester.TestPath(target, ex, path, kind, machine.ISAArm32Like)
				// The fixed-width ISA may skip a path the variable-length one
				// encodes — the only divergence the back-ends are allowed.
				if arm.Skipped && !amd.Skipped && strings.Contains(arm.Reason, "unencodable") {
					continue
				}
				if amd.Skipped != arm.Skipped || amd.Differs != arm.Differs {
					t.Errorf("%s path %d %s: verdicts diverge across ISAs: amd skipped=%v differs=%v, arm skipped=%v differs=%v",
						target.Name, pi, kind, amd.Skipped, amd.Differs, arm.Skipped, arm.Differs)
				}
				if amd.Cause != arm.Cause {
					t.Errorf("%s path %d %s: blame diverges across ISAs: amd %q, arm %q",
						target.Name, pi, kind, amd.Cause, arm.Cause)
				}
			}
		}
	}
}

// TestBlameNamesInjectedPass is the blame acceptance test: enabling the
// pass-targeted constant-folding defect must produce differences whose
// cause names the guilty pass, while the pre-existing front-end
// differences keep their front-end attribution.
func TestBlameNamesInjectedPass(t *testing.T) {
	sw := defects.ProductionVM()
	sw.ConstFoldSignError = true
	prims := primitives.NewTable()
	tester := NewTester(prims, sw)
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	ex := explorer.Explore(target)

	blamed := map[string]int{}
	for _, path := range ex.Paths {
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			v := tester.TestPath(target, ex, path, SimpleBytecodeCompiler, isa)
			if v.Differs {
				blamed[v.Cause]++
			}
		}
	}
	if blamed["pass:constfold"] == 0 {
		t.Errorf("no difference blamed on pass:constfold, got %v", blamed)
	}
	if blamed["front-end"] == 0 {
		t.Errorf("the inherent float fast-path difference lost its front-end blame, got %v", blamed)
	}
	for cause := range blamed {
		if cause != "pass:constfold" && cause != "front-end" {
			t.Errorf("unexpected blame %q, got %v", cause, blamed)
		}
	}

	// Every differing verdict on a defect-free pipeline is front-end work.
	pristine := NewTester(prims, defects.ProductionVM())
	for _, path := range ex.Paths {
		v := pristine.TestPath(target, ex, path, SimpleBytecodeCompiler, machine.ISAAmd64Like)
		if v.Differs && v.Cause != "front-end" {
			t.Errorf("sound pipeline blamed %q, want front-end", v.Cause)
		}
	}
}
