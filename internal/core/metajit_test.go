package core

import (
	"strings"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
)

// TestMetaJITSimpleOpsAgree smoke-tests the derived front-end on trivially
// faithful instructions: zero differences on both ISAs.
func TestMetaJITSimpleOpsAgree(t *testing.T) {
	for _, op := range []bytecode.Op{
		bytecode.OpPushConstantTrue, bytecode.OpPushConstantNil,
		bytecode.OpPushConstantOne, bytecode.OpPushReceiver,
		bytecode.OpDuplicateTop, bytecode.OpPopStackTop, bytecode.OpNop,
	} {
		ex, vs := testHarness(t, concolic.BytecodeTarget(op), MetaJITCompiler, defects.ProductionVM())
		requireNoDiffs(t, "metajit/"+bytecode.Describe(op).Mnemonic, ex, vs)
	}
}

// TestMetaJITWholeCatalogParity is the tentpole's correctness gate: on a
// pristine VM, the compiler derived from the interpreter must agree with
// the interpreter on every supported path of every byte-code, both ISAs —
// zero differences, and every skip carries an explicit reason.
func TestMetaJITWholeCatalogParity(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-catalog parity skipped in -short mode")
	}
	for _, op := range bytecode.AllOpcodes() {
		d := bytecode.Describe(op)
		if d.Family == bytecode.FamCallPrimitive {
			continue
		}
		op := op
		t.Run(d.Mnemonic, func(t *testing.T) {
			t.Parallel()
			ex, vs := testHarness(t, concolic.BytecodeTarget(op), MetaJITCompiler, defects.Switches{})
			supported := 0
			for i, v := range vs {
				if v.Differs {
					t.Errorf("path %d (%s) differs on %v: %s",
						i/2, ex.Paths[i/2].Exit, v.ISA, v.Detail)
				}
				if v.Skipped {
					if v.Reason == "" {
						t.Errorf("path %d skipped without a reason", i/2)
					}
					continue
				}
				supported++
			}
			if len(ex.Paths) > 0 && supported == 0 {
				t.Logf("note: no path of %s is metajit-supported", d.Mnemonic)
			}
		})
	}
}

// TestMetaJITGuardSignErrorBlamedFrontEnd seeds the generator-targeted
// defect: strict less-than guards lowered as less-or-equal break the guard
// chain's exclusivity, so a boundary input executes the wrong path block.
// The resulting differences must exist and must all be blamed "front-end"
// — the defect lives in the derived front-end, before any IR pass runs.
func TestMetaJITGuardSignErrorBlamedFrontEnd(t *testing.T) {
	sw := defects.Switches{MetaJITGuardSignError: true}
	ex, vs := testHarness(t, concolic.BytecodeTarget(bytecode.OpPrimLessThan), MetaJITCompiler, sw)
	_ = ex
	diffs := 0
	for _, v := range vs {
		if !v.Differs {
			continue
		}
		diffs++
		if v.Cause != "front-end" {
			t.Errorf("difference blamed %q, want \"front-end\" (%s)", v.Cause, v.Detail)
		}
	}
	if diffs == 0 {
		t.Fatal("MetaJITGuardSignError produced no differences on primLessThan")
	}

	// The same instruction on the pristine generator shows none.
	_, clean := testHarness(t, concolic.BytecodeTarget(bytecode.OpPrimLessThan), MetaJITCompiler, defects.Switches{})
	if n := countDiffs(clean); n != 0 {
		t.Fatalf("pristine metajit differs %d times on primLessThan", n)
	}
}

// TestMetaJITSkipReasonsAreDeterministic pins that unsupported paths skip
// with a stable "not compilable: metacompile:" reason rather than failing
// at compile time inside the unit.
func TestMetaJITSkipReasonsAreDeterministic(t *testing.T) {
	ex, vs := testHarness(t, concolic.BytecodeTarget(bytecode.OpCallPrimitive), MetaJITCompiler, defects.Switches{})
	_ = ex
	for _, v := range vs {
		if v.Differs {
			t.Fatalf("callPrimitive must skip, not differ: %s", v.Detail)
		}
		if v.Skipped && strings.Contains(v.Reason, "metacompile") &&
			!strings.HasPrefix(v.Reason, "not compilable: metacompile: ") {
			t.Errorf("unexpected skip reason shape: %q", v.Reason)
		}
	}
}
