package core

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/interp"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// testHarness explores a target and tests it against one compiler,
// returning verdicts per (path, ISA).
func testHarness(t *testing.T, target concolic.Target, kind CompilerKind, sw defects.Switches) (*concolic.Exploration, []PathVerdict) {
	t.Helper()
	prims := primitives.NewTable()
	opts := concolic.DefaultOptions()
	opts.InterpreterDefects = interp.DefectSwitches{AsFloatSkipsTypeCheck: sw.AsFloatSkipsTypeCheck}
	explorer := concolic.NewExplorer(prims, opts)
	ex := explorer.Explore(target)
	tester := NewTester(prims, sw)
	var verdicts []PathVerdict
	for _, p := range ex.Paths {
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			verdicts = append(verdicts, tester.TestPath(target, ex, p, kind, isa))
		}
	}
	return ex, verdicts
}

func countDiffs(vs []PathVerdict) int {
	n := 0
	for _, v := range vs {
		if v.Differs {
			n++
		}
	}
	return n
}

func requireNoDiffs(t *testing.T, name string, ex *concolic.Exploration, vs []PathVerdict) {
	t.Helper()
	for i, v := range vs {
		if v.Differs {
			t.Errorf("%s: path %d (%s) differs on %v: %s",
				name, i/2, ex.Paths[i/2].Exit, v.ISA, v.Detail)
		}
	}
}

// TestPushConstantFamilyAgrees: trivially faithful instructions must show
// zero differences on every compiler and ISA.
func TestPushConstantFamilyAgrees(t *testing.T) {
	for _, kind := range []CompilerKind{SimpleBytecodeCompiler, StackToRegisterCompiler, RegisterAllocatingCompiler} {
		for _, op := range []bytecode.Op{
			bytecode.OpPushConstantTrue, bytecode.OpPushConstantNil,
			bytecode.OpPushConstantOne, bytecode.OpPushReceiver,
			bytecode.OpDuplicateTop, bytecode.OpPopStackTop, bytecode.OpNop,
		} {
			ex, vs := testHarness(t, concolic.BytecodeTarget(op), kind, defects.ProductionVM())
			requireNoDiffs(t, kind.String()+"/"+bytecode.Describe(op).Mnemonic, ex, vs)
		}
	}
}

// TestAddBytecodeOptimizationDifference: the float fast path is inlined by
// the interpreter but not by the byte-code compilers — exactly one
// differing path per compiler (per ISA), classified as an optimisation
// difference.
func TestAddBytecodeOptimizationDifference(t *testing.T) {
	for _, kind := range []CompilerKind{SimpleBytecodeCompiler, StackToRegisterCompiler, RegisterAllocatingCompiler} {
		ex, vs := testHarness(t, concolic.BytecodeTarget(bytecode.OpPrimAdd), kind, defects.ProductionVM())
		_ = ex
		var diffs int
		prims := primitives.NewTable()
		for _, v := range vs {
			if !v.Differs {
				continue
			}
			diffs++
			fam := Classify(concolic.BytecodeTarget(bytecode.OpPrimAdd), prims, v.InterpExit, v.Observed)
			if fam != defects.OptimizationDifference {
				t.Errorf("%s: diff classified as %s: %s", kind, fam, v.Detail)
			}
		}
		if diffs != 2 { // the float path, on both ISAs
			t.Errorf("%s: expected exactly the float path to differ on 2 ISAs, got %d diffs", kind, diffs)
		}
	}
}

// TestIntArithmeticAgrees: the integer fast path, overflow slow path and
// type-mismatch slow paths must agree for all byte-code compilers.
func TestIntArithmeticAgrees(t *testing.T) {
	for _, op := range []bytecode.Op{bytecode.OpPrimSubtract, bytecode.OpPrimMultiply} {
		for _, kind := range []CompilerKind{SimpleBytecodeCompiler, StackToRegisterCompiler, RegisterAllocatingCompiler} {
			ex, vs := testHarness(t, concolic.BytecodeTarget(op), kind, defects.ProductionVM())
			for i, v := range vs {
				if v.Differs && ex.Paths[i/2].Exit.Kind.String() != "success" {
					t.Errorf("%s/%s: non-success path differs: %s", kind, bytecode.Describe(op).Mnemonic, v.Detail)
				}
			}
		}
	}
}

// TestComparisonBytecode: integer comparisons agree; the float comparison
// path differs (optimization difference).
func TestComparisonBytecode(t *testing.T) {
	ex, vs := testHarness(t, concolic.BytecodeTarget(bytecode.OpPrimLessThan), StackToRegisterCompiler, defects.ProductionVM())
	diffs := countDiffs(vs)
	if diffs != 2 {
		for i, v := range vs {
			if v.Differs {
				t.Logf("diff path %d: %s", i/2, v.Detail)
			}
		}
		t.Errorf("primLessThan: expected the float path to differ on both ISAs, got %d", diffs)
	}
	_ = ex
}

// TestSimpleCompilerExtraDifferences: the simple compiler lacks the
// division and bitwise fast paths, producing extra differences the
// stack-to-register compiler does not have.
func TestSimpleCompilerExtraDifferences(t *testing.T) {
	for _, op := range []bytecode.Op{bytecode.OpPrimDivide, bytecode.OpPrimBitAnd} {
		exS, vsS := testHarness(t, concolic.BytecodeTarget(op), SimpleBytecodeCompiler, defects.ProductionVM())
		exR, vsR := testHarness(t, concolic.BytecodeTarget(op), StackToRegisterCompiler, defects.ProductionVM())
		_ = exS
		_ = exR
		if countDiffs(vsS) <= countDiffs(vsR) {
			t.Errorf("%s: simple compiler should differ more (%d) than stack-to-register (%d)",
				bytecode.Describe(op).Mnemonic, countDiffs(vsS), countDiffs(vsR))
		}
		// The stack-to-register compiler may only show the inherent float
		// optimization difference, never a correctness difference.
		prims := primitives.NewTable()
		for i, v := range vsR {
			if !v.Differs {
				continue
			}
			fam := Classify(concolic.BytecodeTarget(op), prims, v.InterpExit, v.Observed)
			if fam != defects.OptimizationDifference {
				t.Errorf("stacktoreg/%s: unexpected %s: %s", bytecode.Describe(op).Mnemonic, fam, v.Detail)
			}
			_ = i
		}
	}
}

// TestJumpBytecodes: all jump variants agree with the interpreter.
func TestJumpBytecodes(t *testing.T) {
	for _, op := range []bytecode.Op{
		bytecode.OpShortJump1, bytecode.OpShortJump1 + 4,
		bytecode.OpShortJumpIfTrue1, bytecode.OpShortJumpIfFalse1 + 2,
	} {
		for _, kind := range []CompilerKind{SimpleBytecodeCompiler, StackToRegisterCompiler, RegisterAllocatingCompiler} {
			ex, vs := testHarness(t, concolic.BytecodeTarget(op), kind, defects.ProductionVM())
			requireNoDiffs(t, kind.String()+"/"+bytecode.Describe(op).Mnemonic, ex, vs)
		}
	}
}

// TestReturnsAndStores: returns, temp and receiver-variable accesses agree.
func TestReturnsAndStores(t *testing.T) {
	ops := []bytecode.Op{
		bytecode.OpReturnTop, bytecode.OpReturnReceiver, bytecode.OpReturnTrue,
		bytecode.OpPushTemporaryVariable0 + 1,
		bytecode.OpStoreTemporaryVariable0,
		bytecode.OpPopIntoTemporaryVariable0 + 1,
		bytecode.OpPushReceiverVariable0 + 1,
		bytecode.OpStoreReceiverVariable0,
		bytecode.OpPopIntoReceiverVariable0,
		bytecode.OpPushLiteralConstant0,
	}
	for _, op := range ops {
		for _, kind := range []CompilerKind{SimpleBytecodeCompiler, StackToRegisterCompiler, RegisterAllocatingCompiler} {
			ex, vs := testHarness(t, concolic.BytecodeTarget(op), kind, defects.ProductionVM())
			requireNoDiffs(t, kind.String()+"/"+bytecode.Describe(op).Mnemonic, ex, vs)
		}
	}
}

// TestSendsAndIdentity: explicit sends and identity byte-codes agree.
func TestSendsAndIdentity(t *testing.T) {
	ops := []bytecode.Op{
		bytecode.OpSend0Args0, bytecode.OpSend1Arg0, bytecode.OpSend2Args0,
		bytecode.OpPrimIdentical, bytecode.OpPrimNotIdentical,
		bytecode.OpPrimClass, bytecode.OpPrimSize,
	}
	for _, op := range ops {
		for _, kind := range []CompilerKind{SimpleBytecodeCompiler, StackToRegisterCompiler, RegisterAllocatingCompiler} {
			ex, vs := testHarness(t, concolic.BytecodeTarget(op), kind, defects.ProductionVM())
			requireNoDiffs(t, kind.String()+"/"+bytecode.Describe(op).Mnemonic, ex, vs)
		}
	}
}

// TestAtAndAtPut: the inlined array access byte-codes agree.
func TestAtAndAtPut(t *testing.T) {
	for _, op := range []bytecode.Op{bytecode.OpPrimAt, bytecode.OpPrimAtPut} {
		for _, kind := range []CompilerKind{StackToRegisterCompiler, RegisterAllocatingCompiler, SimpleBytecodeCompiler} {
			ex, vs := testHarness(t, concolic.BytecodeTarget(op), kind, defects.ProductionVM())
			requireNoDiffs(t, kind.String()+"/"+bytecode.Describe(op).Mnemonic, ex, vs)
		}
	}
}

// TestNativeIntegerAddAgrees: faithful native templates show no diffs.
func TestNativeIntegerAddAgrees(t *testing.T) {
	for _, idx := range []int{primitives.PrimIdxAdd, primitives.PrimIdxSubtract, primitives.PrimIdxMultiply,
		primitives.PrimIdxLess, primitives.PrimIdxEqual, primitives.PrimIdxDivide,
		primitives.PrimIdxDiv, primitives.PrimIdxMod, primitives.PrimIdxQuo} {
		p := primitives.NewTable().Lookup(idx)
		target := concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs)
		ex, vs := testHarness(t, target, NativeMethodCompilerKind, defects.ProductionVM())
		requireNoDiffs(t, p.Name, ex, vs)
	}
}

// TestNativeBitwiseBehavioralDifference: negative operands fail in the
// interpreter but succeed (unsigned) in compiled code.
func TestNativeBitwiseBehavioralDifference(t *testing.T) {
	p := primitives.NewTable().Lookup(primitives.PrimIdxBitAnd)
	target := concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs)
	ex, vs := testHarness(t, target, NativeMethodCompilerKind, defects.ProductionVM())
	_ = ex
	if countDiffs(vs) == 0 {
		t.Fatal("bitAnd must show behavioral differences on negative operands")
	}
	prims := primitives.NewTable()
	for _, v := range vs {
		if v.Differs {
			fam := Classify(target, prims, v.InterpExit, v.Observed)
			if fam != defects.BehavioralDifference {
				t.Errorf("bitAnd diff classified as %s (%s)", fam, v.Detail)
			}
		}
	}

	// With the defect corrected, no differences remain.
	sw := defects.ProductionVM()
	sw.BitwisePrimsUnsigned = false
	ex2, vs2 := testHarness(t, target, NativeMethodCompilerKind, sw)
	requireNoDiffs(t, "bitAnd corrected", ex2, vs2)
}

// TestNativeFloatMissingCheck: float arithmetic segfaults on non-float
// receivers in compiled form (missing compiled type check), and agrees
// once corrected.
func TestNativeFloatMissingCheck(t *testing.T) {
	p := primitives.NewTable().Lookup(primitives.PrimIdxFloatAdd)
	target := concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs)
	ex, vs := testHarness(t, target, NativeMethodCompilerKind, defects.ProductionVM())
	_ = ex
	sawCrash := false
	prims := primitives.NewTable()
	for _, v := range vs {
		if !v.Differs {
			continue
		}
		if v.Observed != nil && v.Observed.Kind == CompiledCrash {
			sawCrash = true
		}
		fam := Classify(target, prims, v.InterpExit, v.Observed)
		if fam != defects.MissingCompiledTypeCheck {
			t.Errorf("floatAdd diff classified as %s (%s)", fam, v.Detail)
		}
	}
	if !sawCrash {
		t.Error("expected a segmentation fault on a tagged-integer receiver")
	}

	sw := defects.ProductionVM()
	sw.FloatPrimsSkipReceiverCheck = false
	ex2, vs2 := testHarness(t, target, NativeMethodCompilerKind, sw)
	requireNoDiffs(t, "floatAdd corrected", ex2, vs2)
}

// TestNativeAsFloatInterpreterDefect: the interpreter succeeds with
// garbage on pointer receivers while the compiled version fails.
func TestNativeAsFloatInterpreterDefect(t *testing.T) {
	p := primitives.NewTable().Lookup(primitives.PrimIdxAsFloat)
	target := concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs)
	ex, vs := testHarness(t, target, NativeMethodCompilerKind, defects.ProductionVM())
	_ = ex
	if countDiffs(vs) == 0 {
		t.Fatal("asFloat must differ (missing interpreter type check)")
	}
	prims := primitives.NewTable()
	for _, v := range vs {
		if v.Differs {
			fam := Classify(target, prims, v.InterpExit, v.Observed)
			if fam != defects.MissingInterpreterTypeCheck {
				t.Errorf("asFloat diff classified as %s (%s)", fam, v.Detail)
			}
		}
	}
}

// TestNativeFFIMissing: FFI native methods raise not-yet-implemented in
// compiled form (missing functionality), and work when compiled in the
// pristine configuration.
func TestNativeFFIMissing(t *testing.T) {
	prims := primitives.NewTable()
	var ffi *primitives.Primitive
	for _, p := range prims.All() {
		if p.Name == "primitiveFFIInt32At" {
			ffi = p
		}
	}
	target := concolic.NativeMethodTarget(ffi.Index, ffi.Name, ffi.NumArgs)
	ex, vs := testHarness(t, target, NativeMethodCompilerKind, defects.ProductionVM())
	_ = ex
	if countDiffs(vs) == 0 {
		t.Fatal("missing FFI template must differ on every curated path")
	}
	for _, v := range vs {
		if v.Differs {
			fam := Classify(target, prims, v.InterpExit, v.Observed)
			if fam != defects.MissingFunctionality {
				t.Errorf("FFI diff classified as %s (%s)", fam, v.Detail)
			}
		}
	}

	sw := defects.ProductionVM()
	sw.FFIMissingInJIT = false
	ex2, vs2 := testHarness(t, target, NativeMethodCompilerKind, sw)
	requireNoDiffs(t, "ffi int32At pristine", ex2, vs2)
}

// TestSimulationErrors: the two carrier primitives surface simulation
// errors instead of plain faults.
func TestSimulationErrors(t *testing.T) {
	prims := primitives.NewTable()
	p := prims.Lookup(primitives.PrimIdxFloatTruncated)
	target := concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs)
	ex, vs := testHarness(t, target, NativeMethodCompilerKind, defects.ProductionVM())
	_ = ex
	saw := false
	for _, v := range vs {
		if v.Differs && v.Observed != nil && v.Observed.Kind == CompiledSimulationError {
			saw = true
			fam := Classify(target, prims, v.InterpExit, v.Observed)
			if fam != defects.SimulationError {
				t.Errorf("classified as %s", fam)
			}
		}
	}
	if !saw {
		t.Error("primitiveFloatTruncated should hit the missing register accessor")
	}
}

// TestObjectPrimitivesAgree: faithful object native methods show no
// differences.
func TestObjectPrimitivesAgree(t *testing.T) {
	prims := primitives.NewTable()
	for _, idx := range []int{
		primitives.PrimIdxAt, primitives.PrimIdxAtPut, primitives.PrimIdxSize,
		primitives.PrimIdxStringAt, primitives.PrimIdxInstVarAt, primitives.PrimIdxInstVarAtPut,
		primitives.PrimIdxIdentical, primitives.PrimIdxNotIdentical, primitives.PrimIdxClass,
		primitives.PrimIdxShallowCopy, primitives.PrimIdxBasicNew, primitives.PrimIdxBasicNewWith,
		primitives.PrimIdxIdentityHash, primitives.PrimIdxAsCharacter, primitives.PrimIdxAsInteger,
	} {
		p := prims.Lookup(idx)
		target := concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs)
		ex, vs := testHarness(t, target, NativeMethodCompilerKind, defects.ProductionVM())
		requireNoDiffs(t, p.Name, ex, vs)
	}
}

// TestCachedExplorationDrivesDiffTesting: explorations serialized and
// reloaded (§5.4 caching) must produce the same verdicts as fresh ones.
func TestCachedExplorationDrivesDiffTesting(t *testing.T) {
	prims := primitives.NewTable()
	opts := concolic.DefaultOptions()
	explorer := concolic.NewExplorer(prims, opts)
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	fresh := explorer.Explore(target)

	data, err := concolic.MarshalExploration(fresh)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := concolic.UnmarshalExploration(data)
	if err != nil {
		t.Fatal(err)
	}

	tester := NewTester(prims, defects.ProductionVM())
	for i := range fresh.Paths {
		vf := tester.TestPath(target, fresh, fresh.Paths[i], StackToRegisterCompiler, machine.ISAAmd64Like)
		vc := tester.TestPath(cached.Target, cached, cached.Paths[i], StackToRegisterCompiler, machine.ISAAmd64Like)
		if vf.Differs != vc.Differs || vf.Skipped != vc.Skipped {
			t.Errorf("path %d: cached verdict drift (fresh differs=%v skipped=%v, cached differs=%v skipped=%v)",
				i, vf.Differs, vf.Skipped, vc.Differs, vc.Skipped)
		}
	}
}
