package core_test

// FuzzSequenceDiff is the native fuzz entry for whole-pipeline sequence
// testing: random well-formed byte-code sequences must behave identically
// in the interpreter and in all three byte-code compilers on both ISAs.
// Run a session with:
//
//	go test -fuzz=FuzzSequenceDiff ./internal/core/
//
// The seed corpus lives under testdata/fuzz/FuzzSequenceDiff/. Each seed
// is regenerated through fuzzer.SeedFromTuple — the same grammar the
// coverage-guided engine uses — so the corpus here doubles as the engine's
// seed set (cogdiff fuzz -seed-corpus internal/core/testdata/fuzz/FuzzSequenceDiff).

import (
	"math/rand"
	"testing"

	"cogdiff/internal/core"
	"cogdiff/internal/defects"
	"cogdiff/internal/fuzzer"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

func agreementTester() *core.Tester {
	return core.NewTester(primitives.NewTable(), defects.ProductionVM())
}

func bcCompilers() []core.CompilerKind {
	return []core.CompilerKind{core.SimpleBytecodeCompiler, core.StackToRegisterCompiler, core.RegisterAllocatingCompiler}
}

func isas() []machine.ISA {
	return []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like}
}

func requireAgreement(t *testing.T, tester *core.Tester, s *fuzzer.Seq, label string) {
	t.Helper()
	m := s.Method("fuzz")
	in := s.Input()
	for _, kind := range bcCompilers() {
		for _, isa := range isas() {
			v, err := tester.TestSequence(m, in, kind, isa)
			if err != nil {
				t.Fatalf("%s %s/%v: %v\n%s", label, kind, isa, err, m.Disassemble())
			}
			if v.Differs {
				t.Fatalf("%s %s/%v differs: %s\n%s", label, kind, isa, v.Detail, m.Disassemble())
			}
		}
	}
}

func FuzzSequenceDiff(f *testing.F) {
	f.Add(int64(2022), int64(7), int64(-3), int64(100))
	f.Add(int64(1), int64(0), int64(0), int64(0))
	f.Add(int64(-9000), int64(-100), int64(99), int64(-1))
	f.Add(int64(424242), int64(1<<19), int64(-(1 << 19)), int64(13))

	tester := agreementTester()
	f.Fuzz(func(t *testing.T, seed, receiver, arg0, arg1 int64) {
		requireAgreement(t, tester, fuzzer.SeedFromTuple(seed, receiver, arg0, arg1), "tuple")
	})
}

// TestSequenceFuzzProperty is the whole-pipeline property test: random
// send-free integer byte-code sequences from the shared agreement grammar
// must behave identically in the interpreter and in all three byte-code
// compilers on both ISAs.
func TestSequenceFuzzProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2022))
	tester := agreementTester()
	for iter := 0; iter < 120; iter++ {
		s := fuzzer.RandomSeq(rng, rng.Intn(3), fuzzer.ProfileAgreement)
		s.Receiver = fuzzer.IntValue(int64(rng.Intn(200) - 100))
		for i := range s.Args {
			s.Args[i] = fuzzer.IntValue(int64(rng.Intn(200) - 100))
		}
		requireAgreement(t, tester, s, "iter")
	}
}
