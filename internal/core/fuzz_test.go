package core

// FuzzSequenceDiff is the native fuzz entry for whole-pipeline sequence
// testing: random well-formed byte-code sequences (the generator behind
// TestSequenceFuzzProperty) must behave identically in the interpreter
// and in all three byte-code compilers on both ISAs. Run a session with:
//
//	go test -fuzz=FuzzSequenceDiff ./internal/core/
//
// The seed corpus lives under testdata/fuzz/FuzzSequenceDiff/.

import (
	"math/rand"
	"testing"
)

// fuzzClamp folds an arbitrary fuzzed int64 into a small-integer-safe
// range while keeping sign and low bits.
func fuzzClamp(v int64) int64 {
	return v % (1 << 20)
}

func FuzzSequenceDiff(f *testing.F) {
	f.Add(int64(2022), int64(7), int64(-3), int64(100))
	f.Add(int64(1), int64(0), int64(0), int64(0))
	f.Add(int64(-9000), int64(-100), int64(99), int64(-1))
	f.Add(int64(424242), int64(1<<19), int64(-(1 << 19)), int64(13))

	tester := seqTester()
	f.Fuzz(func(t *testing.T, seed, receiver, arg0, arg1 int64) {
		rng := rand.New(rand.NewSource(seed))
		numArgs := rng.Intn(3)
		m := genRandomMethod(rng, numArgs)

		in := SequenceInput{Receiver: Int64(fuzzClamp(receiver))}
		fuzzedArgs := []int64{arg0, arg1}
		for i := 0; i < numArgs; i++ {
			in.Args = append(in.Args, Int64(fuzzClamp(fuzzedArgs[i])))
		}

		for _, kind := range allBCCompilers() {
			for _, isa := range bothISAs() {
				v, err := tester.TestSequence(m, in, kind, isa)
				if err != nil {
					t.Fatalf("%s/%v: %v\n%s", kind, isa, err, m.Disassemble())
				}
				if v.Differs {
					t.Fatalf("%s/%v differs: %s\n%s", kind, isa, v.Detail, m.Disassemble())
				}
			}
		}
	})
}
