package core

import (
	"fmt"

	"cogdiff/internal/interp"
	"cogdiff/internal/machine"
)

// CompilerKind names one of the four evaluated compilers (Table 2).
type CompilerKind int

const (
	NativeMethodCompilerKind CompilerKind = iota
	SimpleBytecodeCompiler
	StackToRegisterCompiler
	RegisterAllocatingCompiler
	// MetaJITCompiler is the fifth compiler: a front-end derived from the
	// interpreter by meta-compilation (internal/metacompile) rather than
	// hand-written templates. Campaigns opt in explicitly; it is not part
	// of the default four of Table 2.
	MetaJITCompiler

	NumCompilerKinds
)

func (k CompilerKind) String() string {
	switch k {
	case NativeMethodCompilerKind:
		return "Native Methods (primitives)"
	case SimpleBytecodeCompiler:
		return "Simple Stack BC Compiler"
	case StackToRegisterCompiler:
		return "Stack-to-Register BC Compiler"
	case RegisterAllocatingCompiler:
		return "Linear-Scan Allocator BC Compiler"
	case MetaJITCompiler:
		return "Meta-compiled BC Compiler"
	}
	return fmt.Sprintf("CompilerKind(%d)", int(k))
}

// IsBytecodeCompiler reports whether the kind tests byte-codes.
func (k CompilerKind) IsBytecodeCompiler() bool { return k != NativeMethodCompilerKind }

// CompiledExitKind is the observable exit of a compiled execution, the
// machine-level mirror of interp.ExitKind.
type CompiledExitKind int

const (
	CompiledEndFall CompiledExitKind = iota
	CompiledJumpTaken
	CompiledMessageSend
	CompiledMethodReturn
	CompiledReturned // native method returned to its caller
	CompiledFailure  // native fall-through breakpoint
	CompiledNotImplemented
	CompiledCrash // segmentation fault / machine trap
	CompiledSimulationError
	CompiledRunaway
	// CompiledVerifierReject is a static outcome: the IR verifier rejected
	// the compiled unit before execution, so no machine state was ever
	// observed. The verdict's Cause carries the statically-attributed
	// blame (`ir-verify:<rule> after <stage>`).
	CompiledVerifierReject
)

func (k CompiledExitKind) String() string {
	switch k {
	case CompiledEndFall:
		return "endOfInstruction"
	case CompiledJumpTaken:
		return "jumpTaken"
	case CompiledMessageSend:
		return "messageSend"
	case CompiledMethodReturn:
		return "methodReturn"
	case CompiledReturned:
		return "returned"
	case CompiledFailure:
		return "failure"
	case CompiledNotImplemented:
		return "notImplemented"
	case CompiledCrash:
		return "segfault"
	case CompiledSimulationError:
		return "simulationError"
	case CompiledRunaway:
		return "runaway"
	case CompiledVerifierReject:
		return "verifierReject"
	}
	return fmt.Sprintf("CompiledExitKind(%d)", int(k))
}

// CompiledObservation is everything the differential tester extracts from
// one compiled execution.
type CompiledObservation struct {
	Kind     CompiledExitKind
	Selector string
	NumArgs  int
	// Result is the canonicalized result value (returns).
	Result string
	// Stack is the canonicalized operand stack, bottom first.
	Stack []string
	// Temps is the canonicalized temporary frame.
	Temps []string
	// Heap is the canonicalized body of every input object.
	Heap map[int][]string
	// Steps is the executed machine instruction count.
	Steps int
	// CodeBytes is the encoded size of the compiled method.
	CodeBytes int
	Detail    string
}

// PathVerdict is the comparison result for one (path, compiler, ISA).
type PathVerdict struct {
	Compiler CompilerKind
	ISA      machine.ISA
	Skipped  bool
	Reason   string
	Differs  bool
	Detail   string
	// Cause names the compilation stage blamed for a differing verdict
	// ("front-end" or "pass:<name>"); empty when the verdict agrees.
	Cause    string
	Observed *CompiledObservation
	// InterpExit is the reference interpreter exit used for comparison
	// (re-executed under the production defect switches).
	InterpExit interp.Exit
}
