package core

import (
	"errors"
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/ir"
	"cogdiff/internal/irverify"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
)

// This file implements byte-code *sequence* testing — the paper's stated
// future work ("generate minimal and relevant byte-code sequences for
// unit testing the JIT compiler"): a whole synthesized method is executed
// by the interpreter and by a whole-method compilation, and the
// observable behaviour at the first boundary (method return or message
// send) is compared.

// SeqValue is a concrete input value for a sequence test.
type SeqValue struct {
	Kind  SeqKind
	Int   int64
	Float float64
}

// SeqKind enumerates sequence input kinds.
type SeqKind int

const (
	SeqInt SeqKind = iota
	SeqFloat
	SeqTrue
	SeqFalse
	SeqNil
)

// Int64 builds an integer sequence value.
func Int64(v int64) SeqValue { return SeqValue{Kind: SeqInt, Int: v} }

// Float64 builds a float sequence value.
func Float64(v float64) SeqValue { return SeqValue{Kind: SeqFloat, Float: v} }

// Bool builds a boolean sequence value.
func Bool(b bool) SeqValue {
	if b {
		return SeqValue{Kind: SeqTrue}
	}
	return SeqValue{Kind: SeqFalse}
}

// Nil builds the nil sequence value.
func Nil() SeqValue { return SeqValue{Kind: SeqNil} }

func (v SeqValue) materialize(om *heap.ObjectMemory) (heap.Word, error) {
	switch v.Kind {
	case SeqInt:
		if !heap.IsIntegerValue(v.Int) {
			return 0, fmt.Errorf("core: %d outside the small integer range", v.Int)
		}
		return heap.SmallIntFor(v.Int), nil
	case SeqFloat:
		return om.NewFloat(v.Float)
	case SeqTrue:
		return om.TrueObj, nil
	case SeqFalse:
		return om.FalseObj, nil
	default:
		return om.NilObj, nil
	}
}

// SequenceInput is the concrete activation of a sequence test.
type SequenceInput struct {
	Receiver SeqValue
	Args     []SeqValue
}

// SequenceOutcome is the boundary behaviour of one execution.
type SequenceOutcome struct {
	// Kind is "return", "send" or an error description.
	Kind     string
	Result   string
	Selector string
	NumArgs  int
	Stack    []string
}

func (o SequenceOutcome) String() string {
	switch o.Kind {
	case "return":
		return "return " + o.Result
	case "send":
		return fmt.Sprintf("send #%s/%d stack=%v", o.Selector, o.NumArgs, o.Stack)
	default:
		return o.Kind
	}
}

// SequenceVerdict compares the two executions.
type SequenceVerdict struct {
	Interp   SequenceOutcome
	Compiled SequenceOutcome
	Differs  bool
	Detail   string
	// Cause names the compilation stage blamed for the difference
	// ("front-end" or "pass:<name>"); empty when the verdict agrees.
	Cause string
}

// maxSequenceSteps bounds both executions.
const maxSequenceSteps = 100000

// SequenceHooks observes one sequence execution for coverage-guided
// fuzzing. Any field may be nil; a nil *SequenceHooks disables observation
// entirely.
type SequenceHooks struct {
	// InterpOp sees every byte-code opcode the interpreter executes.
	InterpOp func(op bytecode.Op)
	// InterpExit sees the interpreter's boundary exit kind.
	InterpExit func(kind interp.ExitKind)
	// EmitIR sees every post-pipeline JIT IR opcode of the whole-method
	// compilation (labels excluded).
	EmitIR func(op ir.Opc)
	// Block sees the program-relative offset of every basic-block entry
	// the compiled run reaches through a taken branch.
	Block func(offset int64)
	// CompiledStop sees the machine run's stop kind.
	CompiledStop func(kind machine.StopKind)
}

// TestSequence executes method with the given inputs on the interpreter
// and as whole-method machine code, comparing the first boundary.
func (t *Tester) TestSequence(method *bytecode.Method, in SequenceInput, kind CompilerKind, isa machine.ISA) (*SequenceVerdict, error) {
	return t.TestSequenceObserved(method, in, kind, isa, nil)
}

// TestSequenceObserved is TestSequence with coverage hooks attached to
// both executions.
func (t *Tester) TestSequenceObserved(method *bytecode.Method, in SequenceInput, kind CompilerKind, isa machine.ISA, h *SequenceHooks) (*SequenceVerdict, error) {
	if kind == NativeMethodCompilerKind {
		return nil, fmt.Errorf("core: sequence testing applies to byte-code compilers")
	}
	iOut, err := t.InterpSequence(method, in, h)
	if err != nil {
		return nil, err
	}
	cOut, err := t.CompiledSequence(method, in, kind, isa, h)
	if err != nil {
		var verr *irverify.Error
		if errors.As(err, &verr) {
			// Static verdict: the verifier rejected the whole-method body,
			// so the difference is established — and blamed — without
			// executing it.
			return &SequenceVerdict{
				Differs:  true,
				Cause:    verr.Blame(),
				Detail:   "static IR verification failed: " + verr.Error(),
				Interp:   *iOut,
				Compiled: SequenceOutcome{Kind: "error: verifier reject: " + verr.Error()},
			}, nil
		}
		return nil, err
	}
	v := CompareSequenceOutcomes(iOut, cOut)
	if v.Differs {
		v.Cause = t.BlameSequence(method, in, kind, isa, iOut)
	}
	return v, nil
}

// BlameSequence attributes a differing sequence verdict to a compilation
// stage by re-running the compiled execution with the pass pipeline
// truncated at every prefix: if the bare front-end output (no passes)
// already differs from the interpreter the front-end is blamed,
// otherwise the first pass whose inclusion flips the verdict is.
func (t *Tester) BlameSequence(method *bytecode.Method, in SequenceInput, kind CompilerKind, isa machine.ISA, iOut *SequenceOutcome) string {
	passes := jit.PipelineFor(variantOf(kind), t.Defects)
	for k := 0; k <= len(passes); k++ {
		cOut, err := t.compiledSequenceLimited(method, in, kind, isa, nil, k)
		if err != nil {
			return "front-end"
		}
		if CompareSequenceOutcomes(iOut, cOut).Differs {
			if k == 0 {
				return "front-end"
			}
			return "pass:" + passes[k-1].Name
		}
	}
	// Every prefix agreed yet the full pipeline differed: re-running was
	// not reproducible, which the blame string surfaces rather than hides.
	return "unreproducible"
}

// CompareSequenceOutcomes builds the verdict for an interpreter outcome
// against a compiled outcome, comparing the first boundary.
func CompareSequenceOutcomes(iOut, cOut *SequenceOutcome) *SequenceVerdict {
	v := &SequenceVerdict{Interp: *iOut, Compiled: *cOut}
	if iOut.Kind != cOut.Kind {
		v.Differs = true
		v.Detail = fmt.Sprintf("boundaries differ: interpreter %s, compiled %s", iOut, cOut)
		return v
	}
	switch iOut.Kind {
	case "return":
		if iOut.Result != cOut.Result {
			v.Differs = true
			v.Detail = fmt.Sprintf("results differ: interpreter %s, compiled %s", iOut.Result, cOut.Result)
		}
	case "send":
		if iOut.Selector != cOut.Selector || iOut.NumArgs != cOut.NumArgs {
			v.Differs = true
			v.Detail = fmt.Sprintf("sends differ: interpreter #%s/%d, compiled #%s/%d",
				iOut.Selector, iOut.NumArgs, cOut.Selector, cOut.NumArgs)
		} else if !stringSlicesEqual(iOut.Stack, cOut.Stack) {
			v.Differs = true
			v.Detail = fmt.Sprintf("send frames differ: interpreter %v, compiled %v", iOut.Stack, cOut.Stack)
		}
	}
	return v
}

func buildSequenceFrame(om *heap.ObjectMemory, method *bytecode.Method, in SequenceInput) (*interp.Frame, error) {
	rcvr, err := in.Receiver.materialize(om)
	if err != nil {
		return nil, err
	}
	temps := make([]interp.Value, method.TempCount())
	for i := range temps {
		temps[i] = interp.Concrete(om.NilObj)
	}
	if len(in.Args) > method.TempCount() {
		return nil, fmt.Errorf("core: %d arguments for %d temporaries", len(in.Args), method.TempCount())
	}
	for i, a := range in.Args {
		w, err := a.materialize(om)
		if err != nil {
			return nil, err
		}
		temps[i] = interp.Concrete(w)
	}
	return interp.NewFrame(interp.Concrete(rcvr), temps, nil), nil
}

// InterpSequence executes method on the interpreter up to its first
// boundary. The hooks, when non-nil, observe every executed byte-code and
// the exit kind.
func (t *Tester) InterpSequence(method *bytecode.Method, in SequenceInput, h *SequenceHooks) (*SequenceOutcome, error) {
	env := t.getEnv()
	out, err := t.interpSequenceIn(env.om, method, in, h)
	// Reached only on a normal return: a contained panic above abandons
	// the env so dirty state can never re-enter the pool.
	t.putEnv(env)
	return out, err
}

func (t *Tester) interpSequenceIn(om *heap.ObjectMemory, method *bytecode.Method, in SequenceInput, h *SequenceHooks) (*SequenceOutcome, error) {
	frame, err := buildSequenceFrame(om, method, in)
	if err != nil {
		return nil, err
	}
	notifyExit := func(k interp.ExitKind) {
		if h != nil && h.InterpExit != nil {
			h.InterpExit(k)
		}
	}
	ctx := interp.NewCtx(om, frame, method)
	ctx.Primitives = t.Prims
	ctx.InterpreterDefects = interp.DefectSwitches{AsFloatSkipsTypeCheck: t.Defects.AsFloatSkipsTypeCheck}
	for steps := 0; steps < maxSequenceSteps; steps++ {
		if ctx.PC >= len(method.Code) {
			notifyExit(interp.ExitMethodReturn)
			return &SequenceOutcome{Kind: "return", Result: Canonicalize(om, frame.Receiver.W, nil)}, nil
		}
		if h != nil && h.InterpOp != nil {
			if op, _, _, ok := method.FetchOp(ctx.PC); ok {
				h.InterpOp(op)
			}
		}
		exit := interp.RunInstruction(ctx)
		switch exit.Kind {
		case interp.ExitSuccess:
			continue
		case interp.ExitMethodReturn:
			notifyExit(exit.Kind)
			return &SequenceOutcome{Kind: "return", Result: Canonicalize(om, exit.Result.W, nil)}, nil
		case interp.ExitMessageSend:
			notifyExit(exit.Kind)
			words := make([]heap.Word, frame.Size())
			for i, v := range frame.Stack {
				words[i] = v.W
			}
			return &SequenceOutcome{
				Kind:     "send",
				Selector: exit.Selector,
				NumArgs:  exit.NumArgs,
				Stack:    CanonicalizeAll(om, words, nil),
			}, nil
		default:
			notifyExit(exit.Kind)
			return &SequenceOutcome{Kind: fmt.Sprintf("error: %v", exit)}, nil
		}
	}
	return &SequenceOutcome{Kind: "error: step limit"}, nil
}

// CompiledSequence compiles method whole and executes the machine code up
// to its first boundary. The hooks, when non-nil, observe every emitted IR
// instruction, every taken-branch block entry and the stop kind.
func (t *Tester) CompiledSequence(method *bytecode.Method, in SequenceInput, kind CompilerKind, isa machine.ISA, h *SequenceHooks) (*SequenceOutcome, error) {
	return t.compiledSequenceLimited(method, in, kind, isa, h, -1)
}

// compiledSequenceLimited is CompiledSequence with the pass pipeline
// truncated to its first passLimit passes (negative runs the full
// pipeline); blame re-runs use the truncation to bisect.
func (t *Tester) compiledSequenceLimited(method *bytecode.Method, in SequenceInput, kind CompilerKind, isa machine.ISA, h *SequenceHooks, passLimit int) (*SequenceOutcome, error) {
	if kind == NativeMethodCompilerKind {
		return nil, fmt.Errorf("core: sequence testing applies to byte-code compilers")
	}
	env := t.getEnv()
	out, err := t.compiledSequenceIn(env, method, in, kind, isa, h, passLimit)
	t.putEnv(env)
	return out, err
}

func (t *Tester) compiledSequenceIn(env *execEnv, method *bytecode.Method, in SequenceInput, kind CompilerKind, isa machine.ISA, h *SequenceHooks, passLimit int) (*SequenceOutcome, error) {
	om, cpu := env.om, env.cpu
	frame, err := buildSequenceFrame(om, method, in)
	if err != nil {
		return nil, err
	}
	// Whole-method compilation takes no input stack, so the cache key
	// omits it: the compiled body depends only on the method content and
	// the heap watermark (which the frame build above just determined).
	var onIR func(ir.Opc)
	if h != nil && h.EmitIR != nil {
		onIR = h.EmitIR
	}
	cm, err := t.compileBytecode(om, modeMethod, variantOf(kind), isa, passLimit, method, nil, onIR)
	if err != nil {
		return nil, err
	}
	if h != nil {
		cpu.BlockHook = h.Block
	}
	for _, tv := range frame.Temps {
		if err := pushWord(cpu, tv.W); err != nil {
			return nil, err
		}
	}
	if err := pushWord(cpu, machine.SentinelReturn); err != nil {
		return nil, err
	}
	cpu.Regs[machine.ReceiverResultReg] = frame.Receiver.W
	cpu.Install(cm.Prog)
	stop := cpu.Run(maxSequenceSteps)
	if h != nil && h.CompiledStop != nil {
		h.CompiledStop(stop.Kind)
	}

	switch stop.Kind {
	case machine.StopReturned:
		return &SequenceOutcome{Kind: "return", Result: Canonicalize(om, cpu.Regs[machine.ReceiverResultReg], nil)}, nil
	case machine.StopTrampoline:
		sel, _ := cm.SelectorAt(int64(cpu.Regs[machine.ClassSelectorReg]))
		raw, err := cpu.StackSlice(cpu.Regs[machine.FP])
		if err != nil || len(raw) < 1 {
			return &SequenceOutcome{Kind: "error: unreadable send frame"}, nil
		}
		cells := raw[1:] // skip the trampoline return address
		words := make([]heap.Word, len(cells))
		for i, w := range cells {
			words[len(cells)-1-i] = w
		}
		return &SequenceOutcome{
			Kind:     "send",
			Selector: sel.Name,
			NumArgs:  sel.NumArgs,
			Stack:    CanonicalizeAll(om, words, nil),
		}, nil
	default:
		return &SequenceOutcome{Kind: fmt.Sprintf("error: %v", stop)}, nil
	}
}
