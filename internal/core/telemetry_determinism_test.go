package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/core"
	"cogdiff/internal/primitives"
	"cogdiff/internal/report"
	"cogdiff/internal/telemetry"
)

func miniTelemetryConfig(workers int, reg *telemetry.Registry) core.Config {
	cfg := core.DefaultConfig()
	cfg.BytecodeFilter = func(op bytecode.Op) bool {
		return op == bytecode.OpPrimAdd || op == bytecode.OpPushConstantOne || op == bytecode.OpPrimLessThan
	}
	cfg.PrimitiveFilter = func(p *primitives.Primitive) bool {
		switch p.Name {
		case "primitiveAdd", "primitiveAsFloat", "primitiveFloatAdd", "primitiveBitAnd":
			return true
		}
		return false
	}
	cfg.Workers = workers
	cfg.Metrics = reg
	return cfg
}

func renderCampaign(res *core.CampaignResult) string {
	return report.Table2(res) + "\n" + report.Table3(res) + "\n" + report.Causes(res)
}

// TestCampaignReportsUnperturbedByTelemetry is the telemetry overhead
// contract observed from the outside: every rendered table is
// byte-identical with telemetry on or off, at any worker count.
func TestCampaignReportsUnperturbedByTelemetry(t *testing.T) {
	base := renderCampaign(core.NewCampaign(miniTelemetryConfig(1, nil)).Run())
	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"off", "on"} {
			var reg *telemetry.Registry
			if mode == "on" {
				reg = telemetry.NewRegistry()
			}
			got := renderCampaign(core.NewCampaign(miniTelemetryConfig(workers, reg)).Run())
			if got != base {
				t.Errorf("workers=%d telemetry=%s: rendered report diverged from the serial no-telemetry baseline", workers, mode)
			}
		}
	}
}

// TestCampaignMetricsMatchReportTables checks the exported counters are
// not merely correlated with the report but exactly equal to it: the
// per-compiler difference counters match the Table 2 totals and the
// cause counters match the deduplicated Table 3 inventory, both in the
// snapshot and after a round trip through the Prometheus text format.
func TestCampaignMetricsMatchReportTables(t *testing.T) {
	reg := telemetry.NewRegistry()
	res := core.NewCampaign(miniTelemetryConfig(4, reg)).Run()
	snap := reg.Snapshot()

	diffKey := func(r *core.CompilerReport) string {
		return fmt.Sprintf("%s{compiler=%q}", telemetry.MetricDifferences, r.Compiler.String())
	}
	for i := range res.Reports {
		r := &res.Reports[i]
		_, _, diffs := r.Totals()
		if got := snap.Counters[diffKey(r)]; got != int64(diffs) {
			t.Errorf("%s: metric %d, Table 2 reports %d", diffKey(r), got, diffs)
		}
	}

	wantCauses := map[string]int64{}
	for _, cause := range res.Causes {
		key := fmt.Sprintf("%s{family=%q,stage=%q}", telemetry.MetricCauses, cause.Family.String(), cause.Stage)
		wantCauses[key]++
	}
	for key, want := range wantCauses {
		if got := snap.Counters[key]; got != want {
			t.Errorf("%s: metric %d, cause inventory has %d", key, got, want)
		}
	}
	var causeTotal int64
	for series, v := range snap.Counters {
		if strings.HasPrefix(series, telemetry.MetricCauses) {
			causeTotal += v
		}
	}
	if causeTotal != int64(len(res.Causes)) {
		t.Errorf("cause counter total %d, want %d deduplicated causes", causeTotal, len(res.Causes))
	}

	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParsePrometheus(buf.String())
	if err != nil {
		t.Fatalf("campaign snapshot does not parse as Prometheus text: %v", err)
	}
	for i := range res.Reports {
		r := &res.Reports[i]
		_, _, diffs := r.Totals()
		if got := samples[diffKey(r)]; got != float64(diffs) {
			t.Errorf("Prometheus %s: %v, Table 2 reports %d", diffKey(r), got, diffs)
		}
	}
}
