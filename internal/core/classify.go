package core

import (
	"strings"

	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/interp"
	"cogdiff/internal/primitives"
)

// Classify assigns a discovered difference to one of the six defect
// families of §5.3. The paper performed defect identification by manual
// inspection of interpreter and compiler sources; this function encodes
// those inspection rules so the evaluation is reproducible:
//
//   - compiled code raising not-yet-implemented  -> missing functionality
//   - the simulation layer failing               -> simulation error
//   - compiled code crashing where the
//     interpreter degrades gracefully            -> missing compiled type check
//   - a native method succeeding in compiled
//     form on operands the interpreter rejects   -> missing compiled type check
//     for float receivers, behavioral difference otherwise
//   - the interpreter succeeding where the
//     compiled (checked) version fails           -> missing interpreter type check
//   - an inlined interpreter fast path that the
//     compiler sends instead                     -> optimisation difference
//   - anything else (diverging results)          -> behavioral difference
func Classify(target concolic.Target, prims *primitives.Table, iExit interp.Exit, obs *CompiledObservation) defects.Family {
	switch obs.Kind {
	case CompiledNotImplemented:
		return defects.MissingFunctionality
	case CompiledSimulationError:
		return defects.SimulationError
	case CompiledCrash, CompiledRunaway:
		return defects.MissingCompiledTypeCheck
	case CompiledVerifierReject:
		// The static verifier rejected the unit before execution. A pass
		// that broke an invariant is an optimization defect; a front-end
		// emitting malformed IR is a behavioral one.
		if strings.Contains(obs.Detail, "after pass:") {
			return defects.OptimizationDifference
		}
		return defects.BehavioralDifference
	}

	if target.Kind == concolic.TargetNativeMethod {
		prim := prims.Lookup(target.PrimIndex)
		isFloatPrim := prim != nil && prim.Category == primitives.CatFloat
		switch {
		case iExit.Kind == interp.ExitSuccess && obs.Kind == CompiledFailure:
			// The compiled version checks what the interpreter does not
			// (primitiveAsFloat, Listing 5).
			return defects.MissingInterpreterTypeCheck
		case iExit.Kind == interp.ExitFailure && obs.Kind == CompiledReturned:
			if isFloatPrim {
				return defects.MissingCompiledTypeCheck
			}
			return defects.BehavioralDifference
		default:
			return defects.BehavioralDifference
		}
	}

	// Byte-code compilers.
	if iExit.Kind == interp.ExitSuccess && obs.Kind == CompiledMessageSend {
		// The interpreter inlined a fast path the compiler does not.
		return defects.OptimizationDifference
	}
	return defects.BehavioralDifference
}

// selectorInstrument maps the slow-path send selectors the byte-code
// compilers and the interpreter emit back to the byte-code mnemonic that
// sent them — the instrument a sequence difference is attributed to, in
// the vocabulary of the seeded-cause catalog.
var selectorInstrument = map[string]string{
	"+": "primAdd", "-": "primSubtract", "*": "primMultiply", "/": "primDivide",
	"//": "primDiv", "\\\\": "primMod",
	"bitAnd:": "primBitAnd", "bitOr:": "primBitOr", "bitXor:": "primBitXor",
	"bitShift:": "primBitShift",
	"<":         "primLessThan", ">": "primGreaterThan", "<=": "primLessOrEqual",
	">=": "primGreaterOrEqual", "=": "primEqual", "~=": "primNotEqual",
	"size": "primSize", "class": "primClass", "at:": "primAt", "at:put:": "primAtPut",
	"mustBeBoolean": "shortJumpIfTrue",
}

// ClassifySequence applies the Classify inspection rules to a whole-method
// sequence verdict: it assigns the difference to a defect family and names
// the instrument (byte-code mnemonic) it is attributed to. Differences
// that cannot be pinned to one byte-code are attributed to "sequence".
func ClassifySequence(v *SequenceVerdict) (instrument string, fam defects.Family) {
	i, c := v.Interp, v.Compiled
	iErr := strings.HasPrefix(i.Kind, "error")
	cErr := strings.HasPrefix(c.Kind, "error")
	instrument = "sequence"
	switch {
	case cErr && strings.Contains(c.Kind, "notImplemented"):
		return instrument, defects.MissingFunctionality
	case cErr && strings.Contains(c.Kind, "simulation"):
		return instrument, defects.SimulationError
	case cErr && strings.Contains(c.Kind, "verifier reject"):
		if strings.Contains(c.Kind, "after pass:") {
			return instrument, defects.OptimizationDifference
		}
		return instrument, defects.BehavioralDifference
	case !iErr && cErr:
		// Compiled code crashes where the interpreter degrades gracefully.
		return instrument, defects.MissingCompiledTypeCheck
	case iErr && !cErr:
		return instrument, defects.MissingInterpreterTypeCheck
	case i.Kind == "return" && c.Kind == "send":
		// The interpreter inlined a fast path the compiler sends instead.
		if mn, ok := selectorInstrument[c.Selector]; ok {
			instrument = mn
		}
		return instrument, defects.OptimizationDifference
	case i.Kind == "send" && c.Kind == "return":
		// The compiler inlined a fast path the interpreter sends instead.
		if mn, ok := selectorInstrument[i.Selector]; ok {
			instrument = mn
		}
		return instrument, defects.OptimizationDifference
	case i.Kind == "send" && c.Kind == "send" && i.Selector == c.Selector:
		if mn, ok := selectorInstrument[i.Selector]; ok {
			instrument = mn
		}
		return instrument, defects.BehavioralDifference
	}
	return instrument, defects.BehavioralDifference
}
