package core

import (
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/interp"
	"cogdiff/internal/primitives"
)

// Classify assigns a discovered difference to one of the six defect
// families of §5.3. The paper performed defect identification by manual
// inspection of interpreter and compiler sources; this function encodes
// those inspection rules so the evaluation is reproducible:
//
//   - compiled code raising not-yet-implemented  -> missing functionality
//   - the simulation layer failing               -> simulation error
//   - compiled code crashing where the
//     interpreter degrades gracefully            -> missing compiled type check
//   - a native method succeeding in compiled
//     form on operands the interpreter rejects   -> missing compiled type check
//     for float receivers, behavioral difference otherwise
//   - the interpreter succeeding where the
//     compiled (checked) version fails           -> missing interpreter type check
//   - an inlined interpreter fast path that the
//     compiler sends instead                     -> optimisation difference
//   - anything else (diverging results)          -> behavioral difference
func Classify(target concolic.Target, prims *primitives.Table, iExit interp.Exit, obs *CompiledObservation) defects.Family {
	switch obs.Kind {
	case CompiledNotImplemented:
		return defects.MissingFunctionality
	case CompiledSimulationError:
		return defects.SimulationError
	case CompiledCrash, CompiledRunaway:
		return defects.MissingCompiledTypeCheck
	}

	if target.Kind == concolic.TargetNativeMethod {
		prim := prims.Lookup(target.PrimIndex)
		isFloatPrim := prim != nil && prim.Category == primitives.CatFloat
		switch {
		case iExit.Kind == interp.ExitSuccess && obs.Kind == CompiledFailure:
			// The compiled version checks what the interpreter does not
			// (primitiveAsFloat, Listing 5).
			return defects.MissingInterpreterTypeCheck
		case iExit.Kind == interp.ExitFailure && obs.Kind == CompiledReturned:
			if isFloatPrim {
				return defects.MissingCompiledTypeCheck
			}
			return defects.BehavioralDifference
		default:
			return defects.BehavioralDifference
		}
	}

	// Byte-code compilers.
	if iExit.Kind == interp.ExitSuccess && obs.Kind == CompiledMessageSend {
		// The interpreter inlined a fast path the compiler does not.
		return defects.OptimizationDifference
	}
	return defects.BehavioralDifference
}
