// Package core implements the paper's contribution: interpreter-guided
// differential testing of JIT compilers (§2.2, Fig. 1). It takes the
// execution paths discovered by concolic meta-interpretation of the
// interpreter (internal/concolic), builds concrete VM frames from each
// path's input constraints, compiles the instruction with each JIT
// compiler, executes the machine code on the simulated CPU, and validates
// that the compiled execution exhibits the same observable behaviour as
// the interpreted one: matching exit conditions, operand-stack and
// temporary effects, results, and input-object side effects.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"cogdiff/internal/heap"
)

// maxCanonicalDepth bounds structural descriptions of freshly allocated
// objects.
const maxCanonicalDepth = 3

// Pre-rendered forms for the values that dominate canonicalization.
// Rendering is on the per-path hot path — every execution canonicalizes
// its result, stack, temps, and input-object bodies — and almost all of
// those words are small non-negative integers or low input ranks.
var (
	smallIntCanon [256]string
	inputCanon    [64]string
)

func init() {
	for i := range smallIntCanon {
		smallIntCanon[i] = "int:" + strconv.Itoa(i)
	}
	for i := range inputCanon {
		inputCanon[i] = "in:" + strconv.Itoa(i)
	}
}

func intCanonical(v int64) string {
	if v >= 0 && v < int64(len(smallIntCanon)) {
		return smallIntCanon[v]
	}
	return "int:" + strconv.FormatInt(v, 10)
}

func inputCanonical(rep int) string {
	if rep >= 0 && rep < len(inputCanon) {
		return inputCanon[rep]
	}
	return "in:" + strconv.Itoa(rep)
}

// Canonicalize renders a VM value in an object-memory-independent form so
// outputs of two executions on different heaps can be compared: immediates
// by value, input objects by the model representative they realize,
// freshly allocated objects structurally.
func Canonicalize(om *heap.ObjectMemory, w heap.Word, inputs map[heap.Word]int) string {
	return canonical(om, w, inputs, maxCanonicalDepth)
}

func canonical(om *heap.ObjectMemory, w heap.Word, inputs map[heap.Word]int, depth int) string {
	switch {
	case heap.IsSmallInt(w):
		return intCanonical(heap.SmallIntValue(w))
	case w == om.NilObj:
		return "nil"
	case w == om.TrueObj:
		return "true"
	case w == om.FalseObj:
		return "false"
	case w == 0:
		return "null"
	}
	if rep, ok := inputs[w]; ok {
		return inputCanonical(rep)
	}
	if cd := om.ClassByOop(w); cd != nil {
		return "class:" + cd.Name
	}
	ci := om.ClassIndexOf(w)
	if ci == heap.ClassIndexNone {
		return "badref:0x" + strconv.FormatUint(uint64(w), 16)
	}
	if ci == heap.ClassIndexFloat {
		f, err := om.FloatValueOf(w)
		if err != nil {
			return "badfloat"
		}
		return "float:" + strconv.FormatFloat(f, 'x', -1, 64)
	}
	slots := om.SlotCountOf(w)
	if depth <= 0 {
		return fmt.Sprintf("obj:class=%d,slots=%d", ci, slots)
	}
	parts := make([]string, 0, slots)
	for i := 0; i < slots && i < 8; i++ {
		sw, err := om.FetchSlot(w, i)
		if err != nil {
			parts = append(parts, "?")
			continue
		}
		parts = append(parts, canonical(om, sw, inputs, depth-1))
	}
	return fmt.Sprintf("obj:class=%d,slots=%d[%s]", ci, slots, strings.Join(parts, ","))
}

// CanonicalizeAll maps a word slice.
func CanonicalizeAll(om *heap.ObjectMemory, ws []heap.Word, inputs map[heap.Word]int) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = Canonicalize(om, w, inputs)
	}
	return out
}

// HeapEffects canonicalizes the body of every input object, capturing the
// side effects an instruction had on them (stores through at:put:,
// instance-variable writes, FFI stores).
func HeapEffects(om *heap.ObjectMemory, inputs map[heap.Word]int) map[int][]string {
	out := make(map[int][]string, len(inputs))
	for w, rep := range inputs {
		slots := om.SlotCountOf(w)
		body := make([]string, slots)
		for i := 0; i < slots; i++ {
			sw, err := om.FetchSlot(w, i)
			if err != nil {
				body[i] = "?"
				continue
			}
			if om.FormatOf(w) == heap.FormatBytes || om.FormatOf(w) == heap.FormatWords {
				body[i] = "raw:" + strconv.FormatInt(int64(sw), 10)
			} else {
				body[i] = Canonicalize(om, sw, inputs)
			}
		}
		out[rep] = body
	}
	return out
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
