package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/excache"
	"cogdiff/internal/interp"
	"cogdiff/internal/machine"
	"cogdiff/internal/metacompile"
	"cogdiff/internal/primitives"
	"cogdiff/internal/telemetry"
)

// Config parameterizes a testing campaign (§5.1: four experiments — the
// native-method compiler plus three byte-code compilers — each executed on
// two target ISAs).
type Config struct {
	Defects   defects.Switches
	Compilers []CompilerKind
	ISAs      []machine.ISA
	// Explore tunes the concolic exploration.
	Explore concolic.Options
	// BytecodeFilter / PrimitiveFilter restrict the instruction set under
	// test (nil tests everything).
	BytecodeFilter  func(op bytecode.Op) bool
	PrimitiveFilter func(p *primitives.Primitive) bool
	// Workers is the number of goroutines the campaign spreads its work
	// units over (one unit per instruction during exploration, one per
	// compiler x instruction during testing). 0 means runtime.GOMAXPROCS(0);
	// 1 runs strictly serially. Results are byte-identical for any value.
	Workers int
	// OnInstructionDone, when non-nil, is called after each (compiler,
	// instruction) test unit finishes, so long campaigns can report
	// liveness. Calls are serialized; Done counts completed units in
	// completion order, which varies with scheduling.
	OnInstructionDone func(ev InstructionDone)
	// Metrics, when non-nil, receives campaign telemetry: exploration
	// and testing counters, per-phase spans, pass-pipeline timing, and
	// the difference/cause totals. It is a pure sink — reports are
	// byte-identical with metrics on or off, at any worker count.
	Metrics *telemetry.Registry
	// Cache, when non-nil, is consulted before exploring each instruction
	// and before testing each (compiler, instruction) unit, and written
	// back after fresh work (rw mode). Exploration and verdicts are pure
	// functions of the cache keys' inputs, so reports are byte-identical
	// with the cache off, cold or warm, at any worker count; cached
	// entries replay their recorded durations, so even Figures 6/7 render
	// the originating run's timings.
	Cache *excache.Cache
	// faultInject, when non-nil, runs before every TestPath call, inside
	// the containment boundary. Fault-injection tests use it to raise
	// genuine heap panics in worker goroutines.
	faultInject func(target concolic.Target, kind CompilerKind, isa machine.ISA)
	// poisonExploration, when non-nil, mutates each exploration after the
	// explore step and before unit fingerprinting. Fingerprint-error tests
	// inject unmarshalable content (a NaN in a witness model) through it.
	poisonExploration func(target concolic.Target, ex *concolic.Exploration)
	// noReuse disables every raw-speed reuse layer — pooled execution
	// environments, pooled exploration heaps, and the compiled-code
	// cache — so each execution boots and compiles from scratch. The
	// determinism suite diffs reports against this reference mode.
	noReuse bool
	// NoVerify disables the static IR verifier inside every compiler the
	// campaign constructs. Verification is on by default; on a clean
	// catalog reports are byte-identical either way, and the knob exists
	// to measure overhead and to pin that identity.
	NoVerify bool
}

// InstructionDone is the progress event for one completed test unit.
type InstructionDone struct {
	Compiler    CompilerKind
	Instruction string
	Done        int // completed test units so far, including this one
	Total       int // total test units in the campaign
	Differences int
	TestTime    time.Duration
}

// DefaultConfig reproduces the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		Defects: defects.ProductionVM(),
		Compilers: []CompilerKind{
			NativeMethodCompilerKind, SimpleBytecodeCompiler,
			StackToRegisterCompiler, RegisterAllocatingCompiler,
		},
		ISAs:    []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like},
		Explore: concolic.DefaultOptions(),
	}
}

// InstructionReport aggregates one instruction's results for one compiler.
type InstructionReport struct {
	Target      concolic.Target
	Paths       int // interpreter paths discovered
	Curated     int // paths the prototype supports end to end
	Differences int // curated paths whose behaviour differs (any ISA)
	ExploreTime time.Duration
	TestTime    time.Duration
	Verdicts    []PathVerdict // one per (path, ISA) in path-major order
}

// CompilerReport is one row of Table 2.
type CompilerReport struct {
	Compiler     CompilerKind
	Instructions []InstructionReport
}

// TestedInstructions returns the row's instruction count.
func (r *CompilerReport) TestedInstructions() int { return len(r.Instructions) }

// Totals sums paths, curated paths and differences.
func (r *CompilerReport) Totals() (paths, curated, diffs int) {
	for _, ir := range r.Instructions {
		paths += ir.Paths
		curated += ir.Curated
		diffs += ir.Differences
	}
	return
}

// Cause is a deduplicated root cause of one or more path differences.
type Cause struct {
	Instruction string
	Family      defects.Family
	// Stage is the blamed compilation stage of the first differing path
	// ("front-end" or "pass:<name>").
	Stage   string
	Paths   int // differing paths attributed to this cause
	Example string
}

// CampaignResult is the complete evaluation outcome: Table 2 rows, the
// Table 3 cause classification, and the per-instruction data behind
// Figures 5-7.
type CampaignResult struct {
	Reports []CompilerReport
	Causes  map[string]*Cause // keyed by instruction+family
	// Explorations preserves every instruction's exploration (Figure 5/6).
	Explorations map[string]*concolic.Exploration
	// CodeCache reports the in-process compiled-code cache's hit/miss
	// totals for this run. Diagnostics only — counts may vary with worker
	// scheduling (racing double-misses) and with excache unit hits that
	// bypass compilation entirely; reports never do.
	CodeCache CodeCacheStats
	// FingerprintErrors counts explorations whose unit-cache fingerprint
	// failed to compute. Each such instruction ran every test unit
	// uncached — correct but slow, so the count must surface rather than
	// disappear.
	FingerprintErrors int
}

// CodeCacheStats is the compiled-code cache activity of one run.
type CodeCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// HitRate returns hits/(hits+misses), or 0 for an idle cache.
func (s CodeCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// TotalDifferences sums differing paths over all compilers.
func (cr *CampaignResult) TotalDifferences() int {
	n := 0
	for _, r := range cr.Reports {
		_, _, d := r.Totals()
		n += d
	}
	return n
}

// CausesByFamily aggregates causes like Table 3.
func (cr *CampaignResult) CausesByFamily() map[defects.Family]int {
	out := make(map[defects.Family]int)
	for _, c := range cr.Causes {
		out[c.Family]++
	}
	return out
}

// Campaign drives the full evaluation: concolic exploration of every
// instruction, then differential testing against every configured
// compiler on every ISA.
type Campaign struct {
	Config Config
	Prims  *primitives.Table

	// panicsContained is resolved from Config.Metrics at the start of
	// Run; nil (no-op) when telemetry is off.
	panicsContained *telemetry.Counter
}

// NewCampaign builds a campaign from a config.
func NewCampaign(cfg Config) *Campaign {
	return &Campaign{Config: cfg, Prims: primitives.NewTable()}
}

// BytecodeTargets lists the byte-code instructions under test: every
// defined opcode except callPrimitive, whose behaviour is the tested
// native methods'.
func (c *Campaign) BytecodeTargets() []concolic.Target {
	var out []concolic.Target
	for _, op := range bytecode.AllOpcodes() {
		if bytecode.Describe(op).Family == bytecode.FamCallPrimitive {
			continue
		}
		if c.Config.BytecodeFilter != nil && !c.Config.BytecodeFilter(op) {
			continue
		}
		out = append(out, concolic.BytecodeTarget(op))
	}
	return out
}

// PrimitiveTargets lists the native methods under test.
func (c *Campaign) PrimitiveTargets() []concolic.Target {
	var out []concolic.Target
	for _, p := range c.Prims.All() {
		if c.Config.PrimitiveFilter != nil && !c.Config.PrimitiveFilter(p) {
			continue
		}
		out = append(out, concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs))
	}
	return out
}

// Run executes the campaign, sharding it over Config.Workers goroutines.
// It is RunContext without a cancellation source; see there for the
// determinism contract.
func (c *Campaign) Run() *CampaignResult {
	res, _ := c.RunContext(context.Background())
	return res
}

// RunContext executes the campaign, sharding it over Config.Workers
// goroutines under ctx.
//
// The work splits into independent units — one per instruction for the
// concolic exploration, one per (compiler, instruction) pair for the
// differential testing — and each unit owns its substrate instances
// (object memory, CPU, JIT front-end). Unit results land in
// pre-allocated slots indexed by configuration order, and causes are
// recorded in a serial post-pass over that canonical order, so reports,
// verdict ordering and the Table 2/3 rows are byte-identical to a
// serial run regardless of worker count or completion order.
//
// Cancelling ctx aborts the campaign promptly at the next unit
// boundary: in-flight units finish, every worker goroutine exits, and
// RunContext returns (nil, ctx.Err()). Cache writes go through excache's
// atomic temp+rename, so a cancelled campaign leaves only complete,
// valid cache entries behind — a rerun reuses them as ordinary hits.
func (c *Campaign) RunContext(ctx context.Context) (*CampaignResult, error) {
	workers := c.workerCount()
	reg := c.Config.Metrics
	explorer := concolic.NewExplorer(c.Prims, c.exploreOptions())
	tester := NewTester(c.Prims, c.Config.Defects)
	if c.Config.noReuse {
		tester.SetNoReuse()
	}
	if c.Config.NoVerify {
		tester.SetNoVerify()
	}
	tester.SetMetrics(reg)
	c.panicsContained = reg.Counter(telemetry.MetricPanicsContained)

	result := &CampaignResult{
		Causes:       make(map[string]*Cause),
		Explorations: make(map[string]*concolic.Exploration),
	}

	// Step 1: concolic exploration, shared by every compiler (its results
	// are cached and reused, §5.4). Each instruction explores in its own
	// universe, so units never contend. A panic inside one exploration
	// is contained to that unit: the instruction reports zero paths and
	// the campaign carries on.
	bcTargets := c.BytecodeTargets()
	nmTargets := c.PrimitiveTargets()
	allTargets := append(append([]concolic.Target{}, bcTargets...), nmTargets...)
	explorations := make([]*concolic.Exploration, len(allTargets))
	exKeys := make([]string, len(allTargets))
	for i, t := range allTargets {
		exKeys[i] = c.Config.Cache.ExplorationKey(t, c.exploreOptions())
	}
	if err := RunUnitsCtx(ctx, workers, len(allTargets), func(i int) {
		sp := reg.StartSpan(telemetry.SpanExplore)
		defer sp.End()
		if ex, ok := c.Config.Cache.LoadExploration(exKeys[i], allTargets[i]); ok {
			explorations[i] = ex
			return
		}
		contained := false
		defer func() {
			if p := recover(); p != nil {
				c.panicsContained.Inc()
				explorations[i] = &concolic.Exploration{Target: allTargets[i]}
				contained = true
			}
			// Contained panics are not cached: the instruction should
			// re-explore (and re-crash visibly) on the next run.
			if !contained {
				c.Config.Cache.StoreExploration(exKeys[i], explorations[i])
			}
		}()
		explorations[i] = explorer.Explore(allTargets[i])
	}); err != nil {
		return nil, err
	}
	for i, t := range allTargets {
		if c.Config.poisonExploration != nil {
			c.Config.poisonExploration(t, explorations[i])
		}
		result.Explorations[explorationKey(t)] = explorations[i]
	}
	// Fingerprint each exploration's semantic content once; test units
	// derive their cache keys from it, so a unit hit is only possible
	// when the exploration that drives it is content-identical. A
	// fingerprint failure downgrades the instruction's units to uncached
	// runs — correct but slow — and is counted, never swallowed.
	fingerprints := make(map[string]string, len(allTargets))
	if c.Config.Cache != nil {
		fpErrors := reg.Counter(telemetry.MetricUnitCacheFingerprintErrors)
		for i, t := range allTargets {
			fp, err := concolic.FingerprintExploration(explorations[i])
			if err != nil {
				fpErrors.Inc()
				result.FingerprintErrors++
				continue
			}
			fingerprints[explorationKey(t)] = fp
		}
	}
	if reg != nil {
		paths := reg.Counter(telemetry.MetricPathsExplored)
		curated := reg.Counter(telemetry.MetricCuratedOut)
		iters := reg.Counter(telemetry.MetricExploreIterations)
		for _, ex := range explorations {
			paths.Add(int64(len(ex.Paths)))
			curated.Add(int64(ex.CuratedOut))
			iters.Add(int64(ex.Iterations))
		}
	}

	// Steps 2-4: one test unit per (compiler, instruction). Units write
	// into their own report slot; the shared explorations are read-only
	// here (frame builders intern through the universe's lock).
	type testUnit struct{ compiler, target int }
	targetsByCompiler := make([][]concolic.Target, len(c.Config.Compilers))
	result.Reports = make([]CompilerReport, len(c.Config.Compilers))
	var units []testUnit
	for ci, kind := range c.Config.Compilers {
		targets := bcTargets
		if kind == NativeMethodCompilerKind {
			targets = nmTargets
		}
		targetsByCompiler[ci] = targets
		result.Reports[ci] = CompilerReport{
			Compiler:     kind,
			Instructions: make([]InstructionReport, len(targets)),
		}
		for ti := range targets {
			units = append(units, testUnit{compiler: ci, target: ti})
		}
	}

	var progressMu sync.Mutex
	done := 0
	unitsTested := reg.Counter(telemetry.MetricUnitsTested)
	if err := RunUnitsCtx(ctx, workers, len(units), func(i int) {
		sp := reg.StartSpan(telemetry.SpanTestUnit)
		defer sp.End()
		u := units[i]
		target := targetsByCompiler[u.compiler][u.target]
		ex := result.Explorations[explorationKey(target)]
		kind := result.Reports[u.compiler].Compiler
		unitKey := c.unitCacheKey(fingerprints[explorationKey(target)], kind)
		ir, cached := c.loadCachedUnit(unitKey, target, ex)
		if !cached {
			ir = c.testInstruction(tester, kind, target, ex)
			c.storeCachedUnit(unitKey, &ir)
		}
		result.Reports[u.compiler].Instructions[u.target] = ir
		unitsTested.Inc()
		if cb := c.Config.OnInstructionDone; cb != nil {
			progressMu.Lock()
			done++
			cb(InstructionDone{
				Compiler:    result.Reports[u.compiler].Compiler,
				Instruction: target.Name,
				Done:        done,
				Total:       len(units),
				Differences: ir.Differences,
				TestTime:    ir.TestTime,
			})
			progressMu.Unlock()
		}
	}); err != nil {
		return nil, err
	}

	// Deterministic merge: attribute causes walking the reports in
	// canonical (compiler, instruction, path, ISA) order — exactly the
	// order the serial loop used to record them in. The difference and
	// cause counters are bumped here, in this serial pass, so their
	// totals equal the Table 2/3 numbers exactly at any worker count.
	mergeSpan := reg.StartSpan(telemetry.SpanMerge)
	skipped := reg.Counter(telemetry.MetricVerdictsSkipped)
	for ri := range result.Reports {
		r := &result.Reports[ri]
		for ii := range r.Instructions {
			ir := &r.Instructions[ii]
			for _, v := range ir.Verdicts {
				if v.Skipped {
					skipped.Inc()
				}
				if v.Differs {
					c.recordCause(result, ir.Target, v)
				}
			}
		}
		if reg != nil {
			_, _, diffs := r.Totals()
			reg.LabeledCounter(telemetry.MetricDifferences,
				"compiler", r.Compiler.String()).Add(int64(diffs))
		}
	}
	if reg != nil {
		for _, cause := range result.Causes {
			reg.LabeledCounter(telemetry.MetricCauses,
				"family", cause.Family.String(), "stage", cause.Stage).Inc()
		}
	}
	mergeSpan.End()
	hits, misses := tester.CodeCacheStats()
	result.CodeCache = CodeCacheStats{Hits: hits, Misses: misses}
	return result, nil
}

func (c *Campaign) exploreOptions() concolic.Options {
	opts := c.Config.Explore
	opts.InterpreterDefects = interp.DefectSwitches{
		AsFloatSkipsTypeCheck: c.Config.Defects.AsFloatSkipsTypeCheck,
	}
	opts.Metrics = c.Config.Metrics
	opts.NoReuse = c.Config.noReuse
	return opts
}

func explorationKey(t concolic.Target) string {
	return fmt.Sprintf("%s/%s", t.Kind, t.Name)
}

// unitCacheKey derives one test unit's cache key from the exploration
// fingerprint plus everything else a verdict depends on: the compiler
// kind, the ISA list, and the full defect switch state (an empty
// fingerprint disables caching for that unit).
func (c *Campaign) unitCacheKey(explorationFP string, kind CompilerKind) string {
	if c.Config.Cache == nil || explorationFP == "" {
		return ""
	}
	parts := []string{fmt.Sprintf("compiler=%d", int(kind))}
	if kind == MetaJITCompiler {
		// The derived front-end's verdicts additionally depend on the
		// generator's translation scheme: fold its semantics version in so
		// a regenerated compiler cannot reuse stale unit results.
		parts = append(parts, "semantics="+metacompile.SemanticsVersion)
	}
	for _, isa := range c.Config.ISAs {
		parts = append(parts, fmt.Sprintf("isa=%d", int(isa)))
	}
	parts = append(parts, fmt.Sprintf("defects=%+v", c.Config.Defects))
	// Verdicts depend on whether the static verifier ran: a defective
	// pipeline yields a verifier-reject verdict with it on and a dynamic
	// one with it off, and the exploration cache persists across runs.
	parts = append(parts, fmt.Sprintf("verify=%t", !c.Config.NoVerify))
	return c.Config.Cache.UnitKey(explorationFP, parts...)
}

// loadCachedUnit fetches one test unit's report from the cache. A stored
// payload that fails to decode downgrades to a miss (the unit re-tests
// and overwrites), mirroring the cache's corrupt-entry contract.
func (c *Campaign) loadCachedUnit(key string, target concolic.Target, ex *concolic.Exploration) (InstructionReport, bool) {
	payload, ok := c.Config.Cache.LoadBlob("unit", key)
	if !ok {
		return InstructionReport{}, false
	}
	ir, err := UnmarshalInstructionReport(payload, target, ex)
	if err != nil {
		return InstructionReport{}, false
	}
	return ir, true
}

func (c *Campaign) storeCachedUnit(key string, ir *InstructionReport) {
	if c.Config.Cache == nil || key == "" {
		return
	}
	payload, err := MarshalInstructionReport(ir)
	if err != nil {
		return
	}
	c.Config.Cache.StoreBlob("unit", key, payload)
}

// testInstruction runs every curated path of one instruction against one
// compiler on every configured ISA. It touches no campaign-wide state, so
// any number of instances may run concurrently; cause attribution happens
// in Run's serial merge pass.
func (c *Campaign) testInstruction(tester *Tester, kind CompilerKind, target concolic.Target, ex *concolic.Exploration) InstructionReport {
	start := time.Now() //cogdiff:allow-nondeterminism campaign timing feeds telemetry histograms only
	ir := InstructionReport{
		Target:      target,
		Paths:       len(ex.Paths) + ex.CuratedOut,
		ExploreTime: ex.Duration,
	}
	// Batch the unit: the interpreter reference for each path is computed
	// once and reused across every (compiler, ISA) pairing, and compiled
	// bodies are shared through the tester's code cache.
	run := tester.BeginUnit(target, ex)
	defer run.Close()
	for _, path := range ex.Paths {
		pathCurated := false
		pathDiffers := false
		for _, isa := range c.Config.ISAs {
			v := c.safeTestPath(run, target, path, kind, isa)
			ir.Verdicts = append(ir.Verdicts, v)
			if !v.Skipped || v.Reason == "invalid frame (expected failure)" ||
				v.Reason == "invalid memory access on unsafe byte-code (expected failure)" {
				pathCurated = true
			}
			if v.Differs {
				pathDiffers = true
			}
		}
		if pathCurated {
			ir.Curated++
		}
		if pathDiffers {
			ir.Differences++
		}
	}
	ir.TestTime = time.Since(start) //cogdiff:allow-nondeterminism campaign timing feeds telemetry histograms only
	return ir
}

// safeTestPath is TestPath with per-path panic containment: the heap
// layer escalates allocation and access errors as panics (heap.Fault),
// and without a recovery boundary one bad path would abort the whole
// campaign. A contained panic is reported as a differing verdict whose
// observation mirrors a compiled crash — the InvalidMemoryAccess-style
// outcome — so the unit stays in the report and classification still
// applies. Panics are deterministic functions of the unit's inputs, so
// containment preserves byte-identical reports at any worker count.
func (c *Campaign) safeTestPath(run *UnitRun, target concolic.Target, path *concolic.PathResult, kind CompilerKind, isa machine.ISA) (v PathVerdict) {
	defer func() {
		if p := recover(); p != nil {
			c.panicsContained.Inc()
			detail := fmt.Sprintf("contained panic: %v", p)
			v = PathVerdict{
				Compiler:   kind,
				ISA:        isa,
				Differs:    true,
				Detail:     detail,
				Cause:      "panic",
				Observed:   &CompiledObservation{Kind: CompiledCrash, Detail: detail},
				InterpExit: interp.Exit{Kind: interp.ExitInvalidMemoryAccess},
			}
		}
	}()
	if c.Config.faultInject != nil {
		c.Config.faultInject(target, kind, isa)
	}
	return run.TestPath(path, kind, isa)
}

// recordCause classifies a difference and deduplicates it into a cause
// (Table 3 counts a defect once regardless of how many paths it fails).
func (c *Campaign) recordCause(result *CampaignResult, target concolic.Target, v PathVerdict) {
	fam := Classify(target, c.Prims, v.InterpExit, v.Observed)
	key := fmt.Sprintf("%s|%s", target.Name, fam)
	cause, ok := result.Causes[key]
	if !ok {
		cause = &Cause{Instruction: target.Name, Family: fam, Stage: v.Cause, Example: v.Detail}
		result.Causes[key] = cause
	}
	cause.Paths++
}
