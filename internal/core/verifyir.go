package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"cogdiff/internal/concolic"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/irverify"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
	"cogdiff/internal/metacompile"
	"cogdiff/internal/telemetry"
)

// VerifyViolation is one static rejection from the compile-only sweep:
// the IR verifier refused a (path, ISA) unit before a single instruction
// of it could have executed.
type VerifyViolation struct {
	ISA   machine.ISA
	Path  int // index into the instruction's explored paths
	Blame string
	// Detail is the verifier's full rendering: first violation, rule,
	// instruction index and the stage it was caught after.
	Detail string
}

// VerifyRow is the sweep outcome for one (compiler, instruction) unit.
type VerifyRow struct {
	Compiler    CompilerKind
	Instruction string
	// Compiled counts (path, ISA) compiles that passed verification,
	// Skipped the expected failures (invalid frames, not-compilable
	// paths) that never reached the verifier.
	Compiled   int
	Skipped    int
	Violations []VerifyViolation
}

// VerifySweepResult aggregates a whole-catalog compile-only verification
// sweep: every instruction, every configured compiler, both ISAs,
// front-end plus every pass prefix verified — nothing executed.
type VerifySweepResult struct {
	Rows       []VerifyRow // canonical (compiler, instruction) order
	Compiled   int
	Skipped    int
	Violations int
}

// Render formats the sweep deterministically: per-compiler totals, then
// every violation with its blame string. Byte-identical at any worker
// count.
func (r *VerifySweepResult) Render() string {
	var b strings.Builder
	type agg struct{ instrs, compiled, skipped, violations int }
	perCompiler := make(map[CompilerKind]*agg)
	var order []CompilerKind
	for _, row := range r.Rows {
		a := perCompiler[row.Compiler]
		if a == nil {
			a = &agg{}
			perCompiler[row.Compiler] = a
			order = append(order, row.Compiler)
		}
		a.instrs++
		a.compiled += row.Compiled
		a.skipped += row.Skipped
		a.violations += len(row.Violations)
	}
	fmt.Fprintf(&b, "ir-verify: %d units compiled cleanly, %d skipped, %d violations\n",
		r.Compiled, r.Skipped, r.Violations)
	for _, kind := range order {
		a := perCompiler[kind]
		fmt.Fprintf(&b, "  %-32s %3d instructions, %5d compiles verified, %4d skipped, %d violations\n",
			kind, a.instrs, a.compiled, a.skipped, a.violations)
	}
	for _, row := range r.Rows {
		for _, v := range row.Violations {
			fmt.Fprintf(&b, "  VIOLATION %s %s path %d [%s]: %s\n    %s\n",
				row.Compiler, row.Instruction, v.Path, v.ISA, v.Blame, v.Detail)
		}
	}
	return b.String()
}

// VerifyIR runs the compile-only verification sweep over the campaign's
// instruction catalog: it concolically explores every instruction
// (sharing the exploration cache with ordinary campaigns), then compiles
// every (path, compiler, ISA) unit with the static verifier on and
// discards the code without executing it. The result is the proof
// obligation behind `cogdiff verify-ir`: a pristine catalog reports zero
// violations, and a seeded pass defect is caught — and blamed — here,
// statically.
//
// Work shards over Config.Workers goroutines; rows land in slots indexed
// by configuration order, so the rendered report is byte-identical to a
// serial sweep.
func (c *Campaign) VerifyIR(ctx context.Context) (*VerifySweepResult, error) {
	workers := c.workerCount()
	reg := c.Config.Metrics
	explorer := concolic.NewExplorer(c.Prims, c.exploreOptions())
	tester := NewTester(c.Prims, c.Config.Defects)
	tester.SetMetrics(reg)
	c.panicsContained = reg.Counter(telemetry.MetricPanicsContained)

	// Step 1: explore every instruction, sharing cache entries with
	// RunContext (same keys, same options).
	bcTargets := c.BytecodeTargets()
	nmTargets := c.PrimitiveTargets()
	allTargets := append(append([]concolic.Target{}, bcTargets...), nmTargets...)
	explorations := make([]*concolic.Exploration, len(allTargets))
	exKeys := make([]string, len(allTargets))
	for i, t := range allTargets {
		exKeys[i] = c.Config.Cache.ExplorationKey(t, c.exploreOptions())
	}
	if err := RunUnitsCtx(ctx, workers, len(allTargets), func(i int) {
		if ex, ok := c.Config.Cache.LoadExploration(exKeys[i], allTargets[i]); ok {
			explorations[i] = ex
			return
		}
		contained := false
		defer func() {
			if p := recover(); p != nil {
				c.panicsContained.Inc()
				explorations[i] = &concolic.Exploration{Target: allTargets[i]}
				contained = true
			}
			if !contained {
				c.Config.Cache.StoreExploration(exKeys[i], explorations[i])
			}
		}()
		explorations[i] = explorer.Explore(allTargets[i])
	}); err != nil {
		return nil, err
	}
	exByTarget := make(map[string]*concolic.Exploration, len(allTargets))
	for i, t := range allTargets {
		exByTarget[explorationKey(t)] = explorations[i]
	}

	// Step 2: one compile-only unit per (compiler, instruction).
	type verifyUnit struct {
		kind   CompilerKind
		target concolic.Target
	}
	var units []verifyUnit
	for _, kind := range c.Config.Compilers {
		targets := bcTargets
		if kind == NativeMethodCompilerKind {
			targets = nmTargets
		}
		for _, t := range targets {
			units = append(units, verifyUnit{kind: kind, target: t})
		}
	}
	rows := make([]VerifyRow, len(units))
	if err := RunUnitsCtx(ctx, workers, len(units), func(i int) {
		u := units[i]
		rows[i] = c.verifyInstruction(tester, u.kind, u.target, exByTarget[explorationKey(u.target)])
	}); err != nil {
		return nil, err
	}

	// Step 3: serial merge in canonical order.
	res := &VerifySweepResult{Rows: rows}
	for i := range rows {
		res.Compiled += rows[i].Compiled
		res.Skipped += rows[i].Skipped
		res.Violations += len(rows[i].Violations)
	}
	return res, nil
}

// verifyInstruction compiles every (path, ISA) unit of one instruction
// under one compiler with the verifier on, recording violations and
// expected skips. Nothing executes.
func (c *Campaign) verifyInstruction(t *Tester, kind CompilerKind, target concolic.Target, ex *concolic.Exploration) VerifyRow {
	row := VerifyRow{Compiler: kind, Instruction: target.Name}
	if ex == nil {
		return row
	}
	isas := []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like}
	if kind == NativeMethodCompilerKind {
		// Native templates are path-independent: one compile per ISA
		// covers the instruction.
		prim := t.Prims.Lookup(target.PrimIndex)
		if prim == nil {
			row.Skipped += len(isas)
			return row
		}
		for _, isa := range isas {
			env := t.getEnv()
			_, err := t.compileNative(env.om, prim, isa)
			t.putEnv(env)
			c.recordVerifyOutcome(&row, -1, isa, err)
		}
		return row
	}
	for pi, path := range ex.Paths {
		if skip := verifySkipReason(target, path, kind); skip != "" {
			row.Skipped++
			continue
		}
		for _, isa := range isas {
			row.recordOutcome(pi, isa, c.safeVerifyCompile(t, target, ex, path, kind, isa))
		}
	}
	return row
}

// verifySkipReason mirrors UnitRun.TestPath's expected-failure filter for
// the compile-only sweep: paths the test runner would never compile are
// not verification targets either.
func verifySkipReason(target concolic.Target, path *concolic.PathResult, kind CompilerKind) string {
	switch path.Exit.Kind {
	case interp.ExitInvalidFrame:
		return "invalid frame (expected failure)"
	case interp.ExitInvalidMemoryAccess:
		if target.Kind == concolic.TargetBytecode {
			return "invalid memory access on unsafe byte-code (expected failure)"
		}
	case interp.ExitUnsupported:
		return "unsupported instruction"
	}
	if kind == MetaJITCompiler {
		if ok, reason := metacompile.PlanFor(target.Method).PathSupported(path.Path.Signature()); !ok {
			return "not compilable: metacompile: " + reason
		}
	}
	return ""
}

// safeVerifyCompile compiles one (path, ISA) unit with panic containment;
// a contained panic reports as a compile error, never as a clean unit.
func (c *Campaign) safeVerifyCompile(t *Tester, target concolic.Target, ex *concolic.Exploration, path *concolic.PathResult, kind CompilerKind, isa machine.ISA) (err error) {
	defer func() {
		if p := recover(); p != nil {
			c.panicsContained.Inc()
			err = fmt.Errorf("panic contained: %v", p)
		}
	}()
	env := t.getEnv()
	defer t.putEnv(env)
	b := concolic.NewFrameBuilder(env.om, ex.Universe, path.Model)
	frame, ferr := b.BuildFrame(target)
	if ferr != nil {
		return fmt.Errorf("input construction failed: %w", ferr)
	}
	stack := make([]heap.Word, frame.Size())
	for i, v := range frame.Stack {
		stack[i] = v.W
	}
	_, cerr := t.compileBytecode(env.om, modeInstruction, variantOf(kind), isa, -1, target.Method, stack, nil)
	return cerr
}

// recordOutcome classifies one compile result into the row's counters.
func (row *VerifyRow) recordOutcome(path int, isa machine.ISA, err error) {
	var verr *irverify.Error
	switch {
	case err == nil:
		row.Compiled++
	case errors.As(err, &verr):
		row.Violations = append(row.Violations, VerifyViolation{
			ISA: isa, Path: path, Blame: verr.Blame(), Detail: verr.Error(),
		})
	case errors.Is(err, jit.ErrNotCompilable):
		row.Skipped++
	default:
		row.Skipped++
	}
}

// recordVerifyOutcome is recordOutcome behind the campaign receiver, for
// call sites that already hold one.
func (c *Campaign) recordVerifyOutcome(row *VerifyRow, path int, isa machine.ISA, err error) {
	row.recordOutcome(path, isa, err)
}
