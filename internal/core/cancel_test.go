package core_test

// Cancellation contract of the parallel engine: cancelling the context
// stops claiming units at the next boundary, joins every worker
// goroutine (no leaks, checked under -race by the test-race tier), and
// surfaces ctx.Err() — with in-flight units allowed to finish.

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cogdiff/internal/core"
)

// waitNoGoroutineLeak polls until the goroutine count returns to the
// baseline, failing the test if it never does. Polling absorbs the
// scheduler's lag between wg.Wait returning and workers unwinding.
func waitNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d live, baseline %d", runtime.NumGoroutine(), base)
}

func TestRunUnitsCtxCancelStopsClaiming(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var executed atomic.Int64
	const huge = 1 << 30
	done := make(chan error, 1)
	go func() {
		done <- core.RunUnitsCtx(ctx, 4, huge, func(i int) {
			executed.Add(1)
			time.Sleep(time.Millisecond)
		})
	}()
	// Let a few units execute, then cancel: the run must return promptly
	// instead of draining the (practically infinite) unit count.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("RunUnitsCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunUnitsCtx did not return after cancellation")
	}
	if n := executed.Load(); n == 0 || n >= huge {
		t.Errorf("executed %d units, want some but far fewer than %d", n, huge)
	}
	waitNoGoroutineLeak(t, base)
}

func TestRunUnitsCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := core.RunUnitsCtx(ctx, 1, 10, func(i int) { ran = true }); err != context.Canceled {
		t.Errorf("pre-cancelled serial run returned %v, want context.Canceled", err)
	}
	if ran {
		t.Error("pre-cancelled run still executed a unit")
	}
	if err := core.RunUnitsCtx(ctx, 4, 10, func(i int) {}); err != context.Canceled {
		t.Errorf("pre-cancelled parallel run returned %v, want context.Canceled", err)
	}
}

// TestCampaignCancelIsLeakFree cancels a campaign from its own progress
// callback — the first completed test unit pulls the plug — and checks
// the run surfaces context.Canceled with every worker goroutine joined.
func TestCampaignCancelIsLeakFree(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfg := determinismConfig()
	cfg.Workers = 4
	cfg.OnInstructionDone = func(ev core.InstructionDone) {
		if ev.Done == 1 {
			cancel()
		}
	}
	res, err := core.NewCampaign(cfg).RunContext(ctx)
	if err != context.Canceled {
		t.Errorf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled campaign returned a partial result, want nil")
	}
	waitNoGoroutineLeak(t, base)
}
