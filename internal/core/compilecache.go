package core

import (
	"encoding/binary"
	"math"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/codecache"
	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
	"cogdiff/internal/metacompile"
	"cogdiff/internal/primitives"
)

// Compile-mode tags for the compiled-code cache key: single-instruction
// bodies, whole-method (sequence) bodies, and native-method templates
// share one cache but can never collide.
const (
	modeInstruction byte = 'I'
	modeMethod      byte = 'M'
	modeNative      byte = 'N'
)

func appendInt(b []byte, v int64) []byte { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

func appendString(b []byte, s string) []byte {
	b = appendInt(b, int64(len(s)))
	return append(b, s...)
}

// bytecodeKey is the content key for a front-end compile: compiler mode,
// variant, ISA, pass-pipeline prefix, seeded defects, the method's full
// content (name-independent), the concrete input stack baked into the
// body, and the heap watermark the compile starts from (which validates
// the heap addresses baked into the code — see package codecache).
func (t *Tester) bytecodeKey(mode byte, variant jit.Variant, isa machine.ISA, passLimit int, m *bytecode.Method, inputStack []heap.Word, heapStart int) []byte {
	// Exact-size the buffer: key building runs once per path execution,
	// so append growth here shows up directly in per-path allocation
	// counts.
	// The derived front-end's body additionally depends on the generator's
	// translation scheme: fold its semantics version into the defect slot
	// so regenerating from a changed scheme cannot reuse stale bodies.
	defectsFP := t.defectsFP
	if variant == jit.MetaJITCogit {
		defectsFP = metacompile.SemanticsVersion + "|" + defectsFP
	}
	size := 2 + 8 + 8 + (8 + len(defectsFP)) + 8 + 8 + (8 + len(m.Code)) + 8 + 8 + 8*len(inputStack) + 8
	for _, lit := range m.Literals {
		size += 1 + 8 + 8 + 8 + len(lit.Str)
	}
	b := make([]byte, 0, size)
	b = append(b, mode, byte(variant))
	b = appendInt(b, int64(isa))
	b = appendInt(b, int64(passLimit))
	b = appendString(b, defectsFP)
	b = appendInt(b, int64(m.NumArgs))
	b = appendInt(b, int64(m.NumTemps))
	b = appendString(b, string(m.Code))
	b = appendInt(b, int64(len(m.Literals)))
	for _, lit := range m.Literals {
		b = append(b, byte(lit.Kind))
		b = appendInt(b, lit.Int)
		b = appendInt(b, int64(math.Float64bits(lit.Float)))
		b = appendString(b, lit.Str)
	}
	b = appendInt(b, int64(len(inputStack)))
	for _, w := range inputStack {
		b = appendInt(b, int64(w))
	}
	b = appendInt(b, int64(heapStart))
	return b
}

// nativeKey is the content key for a native-method template compile.
// Templates are selected by primitive index and parameterized only by
// ISA and the seeded defect switches.
func (t *Tester) nativeKey(primIndex int, isa machine.ISA, heapStart int) []byte {
	b := make([]byte, 0, 1+8+8+(8+len(t.defectsFP))+8)
	b = append(b, modeNative)
	b = appendInt(b, int64(primIndex))
	b = appendInt(b, int64(isa))
	b = appendString(b, t.defectsFP)
	b = appendInt(b, int64(heapStart))
	return b
}

// compileCached resolves key against the compiled-code cache. On a hit it
// replays the entry's heap effect and IR trace, making the hit
// observationally identical to recompiling. On a miss it runs compile
// with an IR recorder threaded through and stores the result plus the
// heap words the compile appended.
func (t *Tester) compileCached(om *heap.ObjectMemory, key []byte, onIR func(ir.Opc), compile func(record func(ir.Opc)) (*jit.CompiledMethod, error)) (*jit.CompiledMethod, error) {
	if e := t.cache.Lookup(key); e != nil {
		if err := e.Replay(om); err != nil {
			return nil, err
		}
		if onIR != nil {
			for _, op := range e.IROps {
				onIR(op)
			}
		}
		return e.CM, nil
	}
	heapStart := om.HeapUsed()
	var irops []ir.Opc
	record := func(op ir.Opc) {
		irops = append(irops, op)
		if onIR != nil {
			onIR(op)
		}
	}
	cm, err := compile(record)
	if err != nil {
		return nil, err
	}
	t.cache.Store(key, &codecache.Entry{CM: cm, IROps: irops, HeapStart: heapStart, HeapWords: om.HeapRange(heapStart, om.HeapUsed())})
	return cm, nil
}

// compileBytecode compiles a method body (single-instruction or whole
// method, per mode) through the compiled-code cache. With caching
// disabled it compiles directly; either way onIR observes the
// post-pipeline IR stream.
func (t *Tester) compileBytecode(om *heap.ObjectMemory, mode byte, variant jit.Variant, isa machine.ISA, passLimit int, method *bytecode.Method, inputStack []heap.Word, onIR func(ir.Opc)) (*jit.CompiledMethod, error) {
	build := func(irHook func(ir.Opc)) (*jit.CompiledMethod, error) {
		if variant == jit.MetaJITCogit {
			mc := metacompile.NewCompiler(isa, om, t.Defects)
			mc.PassLimit = passLimit
			mc.Metrics = t.passMetrics
			mc.OnIR = irHook
			mc.NoVerify = t.noVerify
			if mode == modeMethod {
				return mc.CompileMethod(method, nil)
			}
			return mc.CompileBytecode(method, inputStack)
		}
		cogit := jit.NewCogit(variant, isa, om, t.Defects)
		cogit.PassLimit = passLimit
		cogit.Metrics = t.passMetrics
		cogit.OnIR = irHook
		cogit.NoVerify = t.noVerify
		if mode == modeMethod {
			return cogit.CompileMethod(method, nil)
		}
		return cogit.CompileBytecode(method, inputStack)
	}
	if t.cache == nil {
		return build(onIR)
	}
	key := t.bytecodeKey(mode, variant, isa, passLimit, method, inputStack, om.HeapUsed())
	return t.compileCached(om, key, onIR, build)
}

// compileNative compiles a native-method template through the cache.
func (t *Tester) compileNative(om *heap.ObjectMemory, prim *primitives.Primitive, isa machine.ISA) (*jit.CompiledMethod, error) {
	build := func(func(ir.Opc)) (*jit.CompiledMethod, error) {
		nc := jit.NewNativeMethodCompiler(isa, om, t.Defects)
		nc.Metrics = t.passMetrics
		nc.NoVerify = t.noVerify
		return nc.CompileNativeMethod(prim)
	}
	if t.cache == nil {
		return build(nil)
	}
	key := t.nativeKey(prim.Index, isa, om.HeapUsed())
	return t.compileCached(om, key, nil, build)
}
