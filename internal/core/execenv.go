package core

import (
	"sync"

	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
)

// execEnv is one reusable execution environment: a booted object memory
// with the machine stack mapped and a CPU over it, sealed at boot so the
// arena can be rewound to the boot state in O(words touched). Every
// engine execution — interpreter reference, compiled run, sequence run —
// borrows an env, runs, and returns it, instead of re-booting a 64K-word
// heap per execution (which profiling showed was ~70% of campaign cost
// between the zeroing and the GC pressure it induced).
type execEnv struct {
	om  *heap.ObjectMemory
	cpu *machine.CPU
}

// newExecEnv boots a fresh environment and seals the boot state.
func newExecEnv() *execEnv {
	om := heap.NewBootedObjectMemory()
	cpu, err := machine.New(om)
	if err != nil {
		// The boot layout is fixed; mapping the stack over it cannot
		// conflict. Reaching here means the VM's address map is broken.
		panic(err)
	}
	om.Seal()
	return &execEnv{om: om, cpu: cpu}
}

// reset rewinds the env to its sealed boot state. Because booting is
// deterministic, a reset env is indistinguishable from a fresh one —
// every allocation lands at the same address — which is what keeps
// reports byte-identical with pooling on or off.
func (e *execEnv) reset() {
	e.om.ResetToSeal()
	e.cpu.Reset()
	e.cpu.Prog = nil
	e.cpu.BlockHook = nil
	e.cpu.SimDefects = machine.SimulationDefects{}
}

// envPool shares environments across testers and workers. Reset happens
// on acquire, not release: an env abandoned mid-panic is simply never
// returned, so the pool only ever hands out state it has rewound itself.
var envPool = sync.Pool{New: func() any { return newExecEnv() }}

// getEnv borrows a clean environment (freshly booted semantics).
func (t *Tester) getEnv() *execEnv {
	if t.noReuse {
		return newExecEnv()
	}
	e := envPool.Get().(*execEnv)
	e.reset()
	return e
}

// putEnv returns an environment to the pool. Callers must drop (not
// return) an env whose execution panicked out of the normal flow; the
// deferred recover boundaries arrange that by keeping the env in a local
// that the unwind abandons.
func (t *Tester) putEnv(e *execEnv) {
	if t.noReuse || e == nil {
		return
	}
	envPool.Put(e)
}
