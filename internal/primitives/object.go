package primitives

import (
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/sym"
)

// Object access and identity native-method indices.
const (
	PrimIdxAt           = 60
	PrimIdxAtPut        = 61
	PrimIdxSize         = 62
	PrimIdxStringAt     = 63
	PrimIdxStringAtPut  = 64
	PrimIdxBasicNew     = 70
	PrimIdxBasicNewWith = 71
	PrimIdxInstVarAt    = 73
	PrimIdxInstVarAtPut = 74
	PrimIdxIdentityHash = 75
	PrimIdxShallowCopy  = 77
	PrimIdxIdentical    = 110
	PrimIdxClass        = 111
	PrimIdxNotIdentical = 112
)

func (t *Table) registerObjectPrimitives() {
	t.register(&Primitive{
		Index: PrimIdxAt, Name: "primitiveAt", NumArgs: 1, Category: CatObjectAccess,
		Fn: func(c *interp.Ctx, p *Primitive) { primAt(c, false) },
	})
	t.register(&Primitive{
		Index: PrimIdxStringAt, Name: "primitiveStringAt", NumArgs: 1, Category: CatObjectAccess,
		Fn: func(c *interp.Ctx, p *Primitive) { primAt(c, true) },
	})
	t.register(&Primitive{
		Index: PrimIdxAtPut, Name: "primitiveAtPut", NumArgs: 2, Category: CatObjectAccess,
		Fn: func(c *interp.Ctx, p *Primitive) { primAtPut(c, false) },
	})
	t.register(&Primitive{
		Index: PrimIdxStringAtPut, Name: "primitiveStringAtPut", NumArgs: 2, Category: CatObjectAccess,
		Fn: func(c *interp.Ctx, p *Primitive) { primAtPut(c, true) },
	})

	t.register(&Primitive{
		Index: PrimIdxSize, Name: "primitiveSize", NumArgs: 0, Category: CatObjectAccess,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if c.IsSmallInt(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			if !c.IsIndexable(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			c.PrimReturn(c.IntObjectOf(c.SlotCount(rcvr)))
		},
	})

	t.register(&Primitive{
		Index: PrimIdxBasicNew, Name: "primitiveBasicNew", NumArgs: 0, Category: CatAllocation,
		Fn: func(c *interp.Ctx, p *Primitive) {
			cd := classReceiver(c)
			oop, err := c.OM.Allocate(cd.Index, cd.InstanceFormat, cd.FixedSlots)
			if err != nil {
				c.PrimFail(FailUnsupported)
			}
			c.PrimReturn(interp.Value{W: oop, Sym: sym.KnownObj{Name: "new " + cd.Name}})
		},
	})
	t.register(&Primitive{
		Index: PrimIdxBasicNewWith, Name: "primitiveBasicNewWithArg", NumArgs: 1, Category: CatAllocation,
		Fn: func(c *interp.Ctx, p *Primitive) {
			cd := classReceiver(c)
			if !cd.InstanceFormat.IsIndexable() {
				c.PrimFail(FailBadReceiver)
			}
			arg := c.Arg(0)
			if !c.IsSmallInt(arg) {
				c.PrimFail(FailBadArgument)
			}
			n := c.SmallIntValue(arg)
			if !c.GuardIntCompare(sym.CmpGE, n, interp.IntValue{V: 0}) ||
				!c.GuardIntCompare(sym.CmpLE, n, interp.IntValue{V: 1 << 20}) {
				c.PrimFail(FailOutOfRange)
			}
			oop, err := c.OM.Allocate(cd.Index, cd.InstanceFormat, cd.FixedSlots+int(n.V))
			if err != nil {
				c.PrimFail(FailUnsupported)
			}
			c.PrimReturn(interp.Value{W: oop, Sym: sym.KnownObj{Name: "new " + cd.Name}})
		},
	})

	t.register(&Primitive{
		Index: PrimIdxInstVarAt, Name: "primitiveInstVarAt", NumArgs: 1, Category: CatObjectAccess,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if c.IsSmallInt(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			idx := c.Arg(0)
			if !c.IsSmallInt(idx) {
				c.PrimFail(FailBadIndex)
			}
			i := c.SmallIntValue(idx)
			if !c.GuardIntCompare(sym.CmpGE, i, interp.IntValue{V: 1}) ||
				!c.GuardIntCompare(sym.CmpLE, i, c.SlotCount(rcvr)) {
				c.PrimFail(FailBadIndex)
			}
			c.PrimReturn(c.FetchSlotChecked(rcvr, int(i.V-1)))
		},
	})
	t.register(&Primitive{
		Index: PrimIdxInstVarAtPut, Name: "primitiveInstVarAtPut", NumArgs: 2, Category: CatObjectAccess,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if c.IsSmallInt(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			idx := c.Arg(0)
			if !c.IsSmallInt(idx) {
				c.PrimFail(FailBadIndex)
			}
			i := c.SmallIntValue(idx)
			if !c.GuardIntCompare(sym.CmpGE, i, interp.IntValue{V: 1}) ||
				!c.GuardIntCompare(sym.CmpLE, i, c.SlotCount(rcvr)) {
				c.PrimFail(FailBadIndex)
			}
			v := c.Arg(1)
			c.StoreSlotChecked(rcvr, int(i.V-1), v)
			c.PrimReturn(v)
		},
	})

	t.register(&Primitive{
		Index: PrimIdxIdentityHash, Name: "primitiveIdentityHash", NumArgs: 0, Category: CatIdentity,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if c.IsSmallInt(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			// The identity hash of this VM is derived from the object
			// address, truncated into the small-int range.
			h := int64(rcvr.W>>1) & 0x3FFFFFFF
			c.PrimReturn(c.IntObjectOf(interp.IntValue{V: h}))
		},
	})

	t.register(&Primitive{
		Index: PrimIdxShallowCopy, Name: "primitiveShallowCopy", NumArgs: 0, Category: CatAllocation,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if c.IsSmallInt(rcvr) {
				c.PrimReturn(rcvr)
			}
			ci := c.OM.ClassIndexOf(rcvr.W)
			f := c.OM.FormatOf(rcvr.W)
			n := c.OM.SlotCountOf(rcvr.W)
			oop, err := c.OM.Allocate(ci, f, n)
			if err != nil {
				c.PrimFail(FailUnsupported)
			}
			for i := 0; i < n; i++ {
				w, err := c.OM.FetchSlot(rcvr.W, i)
				if err != nil {
					c.PrimFail(FailBadReceiver)
				}
				c.OM.StoreSlot(oop, i, w)
			}
			c.PrimReturn(interp.Value{W: oop, Sym: sym.KnownObj{Name: "aCopy"}})
		},
	})

	t.register(&Primitive{
		Index: PrimIdxIdentical, Name: "primitiveIdentical", NumArgs: 1, Category: CatIdentity,
		Fn: func(c *interp.Ctx, p *Primitive) {
			outcome := c.IdenticalValues(c.Receiver(), c.Arg(0))
			c.PrimReturn(c.BoolValue(outcome, nil))
		},
	})
	t.register(&Primitive{
		Index: PrimIdxNotIdentical, Name: "primitiveNotIdentical", NumArgs: 1, Category: CatIdentity,
		Fn: func(c *interp.Ctx, p *Primitive) {
			outcome := !c.IdenticalValues(c.Receiver(), c.Arg(0))
			c.PrimReturn(c.BoolValue(outcome, nil))
		},
	})
	t.register(&Primitive{
		Index: PrimIdxClass, Name: "primitiveClass", NumArgs: 0, Category: CatIdentity,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			idx := c.OM.ClassIndexOf(rcvr.W)
			cd := c.OM.ClassAt(idx)
			if cd == nil {
				c.PrimFail(FailBadReceiver)
			}
			c.PrimReturn(interp.Value{W: cd.Oop, Sym: sym.KnownObj{Name: "class " + cd.Name}})
		},
	})
}

// primAt implements at: (stringVariant restricts to byte receivers).
func primAt(c *interp.Ctx, stringVariant bool) {
	rcvr := c.Receiver()
	if c.IsSmallInt(rcvr) {
		c.PrimFail(FailBadReceiver)
	}
	if stringVariant {
		if !c.FormatOfIs(rcvr, heap.FormatBytes) {
			c.PrimFail(FailBadReceiver)
		}
	} else if !c.IsIndexable(rcvr) {
		c.PrimFail(FailBadReceiver)
	}
	idx := c.Arg(0)
	if !c.IsSmallInt(idx) {
		c.PrimFail(FailBadIndex)
	}
	i := c.SmallIntValue(idx)
	if !c.GuardIntCompare(sym.CmpGE, i, interp.IntValue{V: 1}) ||
		!c.GuardIntCompare(sym.CmpLE, i, c.SlotCount(rcvr)) {
		c.PrimFail(FailBadIndex)
	}
	c.PrimReturn(c.FetchSlotChecked(rcvr, int(i.V-1)))
}

// primAtPut implements at:put:.
func primAtPut(c *interp.Ctx, stringVariant bool) {
	rcvr := c.Receiver()
	if c.IsSmallInt(rcvr) {
		c.PrimFail(FailBadReceiver)
	}
	if stringVariant {
		if !c.FormatOfIs(rcvr, heap.FormatBytes) {
			c.PrimFail(FailBadReceiver)
		}
	} else if !c.IsIndexable(rcvr) {
		c.PrimFail(FailBadReceiver)
	}
	idx := c.Arg(0)
	if !c.IsSmallInt(idx) {
		c.PrimFail(FailBadIndex)
	}
	val := c.Arg(1)
	f := c.OM.FormatOf(rcvr.W)
	if f == heap.FormatBytes || f == heap.FormatWords {
		if !c.IsSmallInt(val) {
			c.PrimFail(FailBadArgument)
		}
		if f == heap.FormatBytes {
			b := c.SmallIntValue(val)
			if !c.GuardIntCompare(sym.CmpGE, b, interp.IntValue{V: 0}) ||
				!c.GuardIntCompare(sym.CmpLE, b, interp.IntValue{V: 255}) {
				c.PrimFail(FailBadArgument)
			}
		}
	}
	i := c.SmallIntValue(idx)
	if !c.GuardIntCompare(sym.CmpGE, i, interp.IntValue{V: 1}) ||
		!c.GuardIntCompare(sym.CmpLE, i, c.SlotCount(rcvr)) {
		c.PrimFail(FailBadIndex)
	}
	c.StoreSlotChecked(rcvr, int(i.V-1), val)
	c.PrimReturn(val)
}

// classReceiver validates that the receiver is a class object and returns
// its description.
func classReceiver(c *interp.Ctx) *heap.ClassDescription {
	rcvr := c.Receiver()
	if !c.ClassIndexIs(rcvr, heap.ClassIndexMetaclass) {
		c.PrimFail(FailBadReceiver)
	}
	cd := c.OM.ClassByOop(rcvr.W)
	if cd == nil {
		c.PrimFail(FailBadReceiver)
	}
	return cd
}
