package primitives

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/sym"
)

// FFI native methods accelerate foreign memory and structure accesses.
// Their indices start at PrimIdxFFIBase. The paper found that this whole
// family was never implemented in the 32-bit JIT compiler (§5.3 "missing
// functionality", 60 causes); the interpreter implementations below are
// complete, while the native-method compiler has no templates for them.
const (
	PrimIdxFFIBase = 560

	ffiIntAccessors    = 16 // {8,16,32,64} x {signed,unsigned} x {get,put}
	ffiFloatAccessors  = 4  // {32,64} x {get,put}
	ffiPtrAccessors    = 2  // pointerAt, pointerAtPut
	ffiStructAccessors = 28 // field 0..13 x {get,put}
	ffiMiscCount       = 6

	// FFIPrimitiveCount is the size of the FFI family.
	FFIPrimitiveCount = ffiIntAccessors + ffiFloatAccessors + ffiPtrAccessors + ffiStructAccessors + ffiMiscCount
)

func (t *Table) registerFFIPrimitives() {
	idx := PrimIdxFFIBase

	// Integer accessors over ExternalAddress objects.
	for _, width := range []uint{8, 16, 32, 64} {
		for _, signed := range []bool{true, false} {
			prefix := "Uint"
			if signed {
				prefix = "Int"
			}
			w, s := width, signed
			t.register(&Primitive{
				Index: idx, Name: fmt.Sprintf("primitiveFFI%s%dAt", prefix, width), NumArgs: 1, Category: CatFFI,
				Fn: func(c *interp.Ctx, p *Primitive) { ffiIntAt(c, w, s) },
			})
			idx++
			t.register(&Primitive{
				Index: idx, Name: fmt.Sprintf("primitiveFFI%s%dAtPut", prefix, width), NumArgs: 2, Category: CatFFI,
				Fn: func(c *interp.Ctx, p *Primitive) { ffiIntAtPut(c, w, s) },
			})
			idx++
		}
	}

	// Float accessors.
	for _, width := range []uint{32, 64} {
		w := width
		t.register(&Primitive{
			Index: idx, Name: fmt.Sprintf("primitiveFFIFloat%dAt", width), NumArgs: 1, Category: CatFFI,
			Fn: func(c *interp.Ctx, p *Primitive) { ffiFloatAt(c, w) },
		})
		idx++
		t.register(&Primitive{
			Index: idx, Name: fmt.Sprintf("primitiveFFIFloat%dAtPut", width), NumArgs: 2, Category: CatFFI,
			Fn: func(c *interp.Ctx, p *Primitive) { ffiFloatAtPut(c, w) },
		})
		idx++
	}

	// Pointer accessors.
	t.register(&Primitive{
		Index: idx, Name: "primitiveFFIPointerAt", NumArgs: 1, Category: CatFFI,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr, i := ffiAddressAndIndex(c)
			c.PrimReturn(c.FetchSlotChecked(rcvr, int(i.V-1)))
		},
	})
	idx++
	t.register(&Primitive{
		Index: idx, Name: "primitiveFFIPointerAtPut", NumArgs: 2, Category: CatFFI,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr, i := ffiAddressAndIndex(c)
			v := c.Arg(1)
			c.StoreSlotChecked(rcvr, int(i.V-1), v)
			c.PrimReturn(v)
		},
	})
	idx++

	// Structure field accessors.
	for field := 0; field < 14; field++ {
		f := field
		t.register(&Primitive{
			Index: idx, Name: fmt.Sprintf("primitiveFFIStructField%dAt", field), NumArgs: 0, Category: CatFFI,
			Fn: func(c *interp.Ctx, p *Primitive) {
				rcvr := ffiStructReceiver(c)
				if !c.GuardIntCompare(sym.CmpGE, c.SlotCount(rcvr), interp.IntValue{V: int64(f + 1)}) {
					c.PrimFail(FailBadIndex)
				}
				c.PrimReturn(c.FetchSlotChecked(rcvr, f))
			},
		})
		idx++
		t.register(&Primitive{
			Index: idx, Name: fmt.Sprintf("primitiveFFIStructField%dAtPut", field), NumArgs: 1, Category: CatFFI,
			Fn: func(c *interp.Ctx, p *Primitive) {
				rcvr := ffiStructReceiver(c)
				if !c.GuardIntCompare(sym.CmpGE, c.SlotCount(rcvr), interp.IntValue{V: int64(f + 1)}) {
					c.PrimFail(FailBadIndex)
				}
				v := c.Arg(0)
				c.StoreSlotChecked(rcvr, f, v)
				c.PrimReturn(v)
			},
		})
		idx++
	}

	// Miscellaneous accelerated memory operations.
	t.register(&Primitive{
		Index: idx, Name: "primitiveFFIAllocate", NumArgs: 0, Category: CatFFI,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if !c.IsSmallInt(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			n := c.SmallIntValue(rcvr)
			if !c.GuardIntCompare(sym.CmpGE, n, interp.IntValue{V: 0}) ||
				!c.GuardIntCompare(sym.CmpLE, n, interp.IntValue{V: 1 << 16}) {
				c.PrimFail(FailOutOfRange)
			}
			oop, err := c.OM.Allocate(heap.ClassIndexExternalAddr, heap.FormatWords, int(n.V))
			if err != nil {
				c.PrimFail(FailUnsupported)
			}
			c.PrimReturn(interp.Value{W: oop, Sym: sym.KnownObj{Name: "anExternalAddress"}})
		},
	})
	idx++
	t.register(&Primitive{
		Index: idx, Name: "primitiveFFIFree", NumArgs: 0, Category: CatFFI,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if !c.ClassIndexIs(rcvr, heap.ClassIndexExternalAddr) {
				c.PrimFail(FailBadReceiver)
			}
			c.PrimReturn(c.NilValue())
		},
	})
	idx++
	t.register(&Primitive{
		Index: idx, Name: "primitiveFFIStrLen", NumArgs: 0, Category: CatFFI,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if !c.ClassIndexIs(rcvr, heap.ClassIndexExternalAddr) {
				c.PrimFail(FailBadReceiver)
			}
			n := c.OM.SlotCountOf(rcvr.W)
			length := n
			for i := 0; i < n; i++ {
				w, err := c.OM.FetchSlot(rcvr.W, i)
				if err != nil {
					c.PrimFail(FailBadReceiver)
				}
				if w == 0 {
					length = i
					break
				}
			}
			c.PrimReturn(c.IntObjectOf(interp.IntValue{V: int64(length)}))
		},
	})
	idx++
	t.register(&Primitive{
		Index: idx, Name: "primitiveFFIAddressOf", NumArgs: 0, Category: CatFFI,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if c.IsSmallInt(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			c.PrimReturn(c.IntObjectOf(interp.IntValue{V: int64(rcvr.W) & 0x3FFFFFFF}))
		},
	})
	idx++
	t.register(&Primitive{
		Index: idx, Name: "primitiveFFIMemCopy", NumArgs: 2, Category: CatFFI,
		Fn: func(c *interp.Ctx, p *Primitive) {
			src := c.Receiver()
			if !c.ClassIndexIs(src, heap.ClassIndexExternalAddr) {
				c.PrimFail(FailBadReceiver)
			}
			dst := c.Arg(0)
			if !c.ClassIndexIs(dst, heap.ClassIndexExternalAddr) {
				c.PrimFail(FailBadArgument)
			}
			cnt := c.Arg(1)
			if !c.IsSmallInt(cnt) {
				c.PrimFail(FailBadArgument)
			}
			n := c.SmallIntValue(cnt)
			if !c.GuardIntCompare(sym.CmpGE, n, interp.IntValue{V: 0}) ||
				!c.GuardIntCompare(sym.CmpLE, n, c.SlotCount(src)) ||
				!c.GuardIntCompare(sym.CmpLE, n, c.SlotCount(dst)) {
				c.PrimFail(FailOutOfRange)
			}
			for i := 0; i < int(n.V); i++ {
				w, err := c.OM.FetchSlot(src.W, i)
				if err != nil {
					c.PrimFail(FailBadReceiver)
				}
				if err := c.OM.StoreSlot(dst.W, i, w); err != nil {
					c.PrimFail(FailBadArgument)
				}
			}
			c.PrimReturn(dst)
		},
	})
	idx++
	t.register(&Primitive{
		Index: idx, Name: "primitiveFFIMemSet", NumArgs: 2, Category: CatFFI,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if !c.ClassIndexIs(rcvr, heap.ClassIndexExternalAddr) {
				c.PrimFail(FailBadReceiver)
			}
			val := c.Arg(0)
			if !c.IsSmallInt(val) {
				c.PrimFail(FailBadArgument)
			}
			cnt := c.Arg(1)
			if !c.IsSmallInt(cnt) {
				c.PrimFail(FailBadArgument)
			}
			n := c.SmallIntValue(cnt)
			if !c.GuardIntCompare(sym.CmpGE, n, interp.IntValue{V: 0}) ||
				!c.GuardIntCompare(sym.CmpLE, n, c.SlotCount(rcvr)) {
				c.PrimFail(FailOutOfRange)
			}
			raw := heap.SmallIntValue(val.W)
			for i := 0; i < int(n.V); i++ {
				if err := c.OM.StoreSlot(rcvr.W, i, heap.Word(raw)); err != nil {
					c.PrimFail(FailBadReceiver)
				}
			}
			c.PrimReturn(rcvr)
		},
	})
	idx++

	if got := idx - PrimIdxFFIBase; got != FFIPrimitiveCount {
		panic(fmt.Sprintf("primitives: FFI family has %d members, expected %d", got, FFIPrimitiveCount))
	}
}

// ffiAddressAndIndex validates an (ExternalAddress, 1-based index) pair.
func ffiAddressAndIndex(c *interp.Ctx) (interp.Value, interp.IntValue) {
	rcvr := c.Receiver()
	if !c.ClassIndexIs(rcvr, heap.ClassIndexExternalAddr) {
		c.PrimFail(FailBadReceiver)
	}
	idx := c.Arg(0)
	if !c.IsSmallInt(idx) {
		c.PrimFail(FailBadIndex)
	}
	i := c.SmallIntValue(idx)
	if !c.GuardIntCompare(sym.CmpGE, i, interp.IntValue{V: 1}) ||
		!c.GuardIntCompare(sym.CmpLE, i, c.SlotCount(rcvr)) {
		c.PrimFail(FailBadIndex)
	}
	return rcvr, i
}

// ffiStructReceiver validates an ExternalStructure receiver.
func ffiStructReceiver(c *interp.Ctx) interp.Value {
	rcvr := c.Receiver()
	if !c.ClassIndexIs(rcvr, heap.ClassIndexExternalStruct) {
		c.PrimFail(FailBadReceiver)
	}
	return rcvr
}

// truncateToWidth coerces a raw word to an integer of the given width.
func truncateToWidth(v int64, width uint, signed bool) int64 {
	if width >= 64 {
		return v
	}
	mask := int64(1)<<width - 1
	v &= mask
	if signed && v&(1<<(width-1)) != 0 {
		v -= 1 << width
	}
	return v
}

// ffiIntAt reads slot index as an integer of the given width.
func ffiIntAt(c *interp.Ctx, width uint, signed bool) {
	rcvr, i := ffiAddressAndIndex(c)
	raw, err := c.OM.FetchSlot(rcvr.W, int(i.V-1))
	if err != nil {
		c.PrimFail(FailBadIndex)
	}
	v := truncateToWidth(int64(raw), width, signed)
	if !heap.IsIntegerValue(v) {
		c.PrimFail(FailOutOfRange)
	}
	c.PrimReturn(c.IntObjectOf(interp.IntValue{V: v}))
}

// ffiIntAtPut stores an integer of the given width into slot index.
func ffiIntAtPut(c *interp.Ctx, width uint, signed bool) {
	rcvr, i := ffiAddressAndIndex(c)
	val := c.Arg(1)
	if !c.IsSmallInt(val) {
		c.PrimFail(FailBadArgument)
	}
	v := c.SmallIntValue(val)
	stored := truncateToWidth(v.V, width, signed)
	if err := c.OM.StoreSlot(rcvr.W, int(i.V-1), heap.Word(stored)); err != nil {
		c.PrimFail(FailBadIndex)
	}
	c.PrimReturn(val)
}

// ffiFloatAt reads slot index as a float of the given width (stored as
// float64 bits in this simulated foreign memory).
func ffiFloatAt(c *interp.Ctx, width uint) {
	rcvr, i := ffiAddressAndIndex(c)
	raw, err := c.OM.FetchSlot(rcvr.W, int(i.V-1))
	if err != nil {
		c.PrimFail(FailBadIndex)
	}
	f := wordBitsToFloat(raw, width)
	c.PrimReturn(c.NewFloatValue(interp.FloatValue{F: f}))
}

// ffiFloatAtPut stores a float into slot index.
func ffiFloatAtPut(c *interp.Ctx, width uint) {
	rcvr, i := ffiAddressAndIndex(c)
	val := c.Arg(1)
	if !c.IsFloatObject(val) {
		c.PrimFail(FailBadArgument)
	}
	fv := c.FloatValueOf(val)
	if err := c.OM.StoreSlot(rcvr.W, int(i.V-1), floatToWordBits(fv.F, width)); err != nil {
		c.PrimFail(FailBadIndex)
	}
	c.PrimReturn(val)
}
