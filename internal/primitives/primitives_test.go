package primitives

import (
	"math"
	"testing"

	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
)

// callPrim runs a native method concretely.
func callPrim(t *testing.T, om *heap.ObjectMemory, tbl *Table, index int, receiver interp.Value, args ...interp.Value) interp.Exit {
	t.Helper()
	p := tbl.Lookup(index)
	if p == nil {
		t.Fatalf("no primitive %d", index)
	}
	f := interp.NewFrame(receiver, args, nil)
	ctx := interp.NewCtx(om, f, nil)
	return interp.RunPrimitive(ctx, tbl, index)
}

func intv(v int64) interp.Value { return interp.Concrete(heap.SmallIntFor(v)) }

func TestTableRegistration(t *testing.T) {
	tbl := NewTable()
	if tbl.Count() < 110 {
		t.Fatalf("only %d native methods registered", tbl.Count())
	}
	all := tbl.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Index >= all[i].Index {
			t.Fatal("All() not ordered")
		}
	}
	counts := map[Category]int{}
	for _, p := range all {
		counts[p.Category]++
		if p.Name == "" || p.Fn == nil {
			t.Errorf("primitive %d incomplete", p.Index)
		}
	}
	if counts[CatFFI] != FFIPrimitiveCount {
		t.Errorf("FFI family has %d members, want %d", counts[CatFFI], FFIPrimitiveCount)
	}
	if !tbl.Exists(PrimIdxAdd) || tbl.Exists(999) {
		t.Error("Exists misreports")
	}
}

func TestIntegerAdd(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()

	exit := callPrim(t, om, tbl, PrimIdxAdd, intv(2), intv(3))
	if exit.Kind != interp.ExitSuccess || exit.Result.W != heap.SmallIntFor(5) {
		t.Fatalf("2+3: %v", exit)
	}

	exit = callPrim(t, om, tbl, PrimIdxAdd, intv(heap.MaxSmallInt), intv(1))
	if exit.Kind != interp.ExitFailure || exit.FailCode != FailOutOfRange {
		t.Fatalf("overflow must fail: %v", exit)
	}

	exit = callPrim(t, om, tbl, PrimIdxAdd, interp.Concrete(om.NilObj), intv(1))
	if exit.Kind != interp.ExitFailure || exit.FailCode != FailBadReceiver {
		t.Fatalf("bad receiver must fail: %v", exit)
	}
}

func TestIntegerDivideExactness(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	if e := callPrim(t, om, tbl, PrimIdxDivide, intv(8), intv(4)); e.Kind != interp.ExitSuccess || e.Result.W != heap.SmallIntFor(2) {
		t.Fatalf("8/4: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxDivide, intv(7), intv(2)); e.Kind != interp.ExitFailure {
		t.Fatalf("7/2 must fail: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxDivide, intv(7), intv(0)); e.Kind != interp.ExitFailure {
		t.Fatalf("7/0 must fail: %v", e)
	}
}

func TestIntegerFlooredDivMod(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	if e := callPrim(t, om, tbl, PrimIdxDiv, intv(-7), intv(2)); e.Result.W != heap.SmallIntFor(-4) {
		t.Fatalf("-7//2: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxMod, intv(-7), intv(2)); e.Result.W != heap.SmallIntFor(1) {
		t.Fatalf("-7\\\\2: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxQuo, intv(-7), intv(2)); e.Result.W != heap.SmallIntFor(-3) {
		t.Fatalf("-7 quo: 2: %v", e)
	}
}

func TestBitwiseNegativeFails(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	if e := callPrim(t, om, tbl, PrimIdxBitAnd, intv(6), intv(3)); e.Result.W != heap.SmallIntFor(2) {
		t.Fatalf("6&3: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxBitAnd, intv(-6), intv(3)); e.Kind != interp.ExitFailure {
		t.Fatalf("negative bitAnd must fail: %v", e)
	}
}

func TestComparisons(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	if e := callPrim(t, om, tbl, PrimIdxLess, intv(1), intv(2)); e.Result.W != om.TrueObj {
		t.Fatalf("1<2: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxGreatEq, intv(1), intv(2)); e.Result.W != om.FalseObj {
		t.Fatalf("1>=2: %v", e)
	}
}

func TestFloatPrimitives(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	f1, _ := om.NewFloat(2.5)
	f2, _ := om.NewFloat(0.5)

	e := callPrim(t, om, tbl, PrimIdxFloatAdd, interp.Concrete(f1), interp.Concrete(f2))
	if e.Kind != interp.ExitSuccess {
		t.Fatalf("float add: %v", e)
	}
	if got, _ := om.FloatValueOf(e.Result.W); got != 3.0 {
		t.Fatalf("2.5+0.5 = %g", got)
	}

	// Type-checked: integer receiver fails.
	if e := callPrim(t, om, tbl, PrimIdxFloatAdd, intv(1), interp.Concrete(f2)); e.Kind != interp.ExitFailure {
		t.Fatalf("float add with int receiver must fail: %v", e)
	}

	if e := callPrim(t, om, tbl, PrimIdxFloatTruncated, interp.Concrete(f1)); e.Result.W != heap.SmallIntFor(2) {
		t.Fatalf("2.5 truncated: %v", e)
	}

	fneg, _ := om.NewFloat(-4.0)
	if e := callPrim(t, om, tbl, PrimIdxFloatSqrt, interp.Concrete(fneg)); e.Kind != interp.ExitFailure {
		t.Fatalf("sqrt(-4) must fail: %v", e)
	}
	f4, _ := om.NewFloat(4.0)
	e = callPrim(t, om, tbl, PrimIdxFloatSqrt, interp.Concrete(f4))
	if got, _ := om.FloatValueOf(e.Result.W); got != 2.0 {
		t.Fatalf("sqrt(4) = %g", got)
	}
}

func TestAsFloatDefect(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()

	// With the seeded defect the primitive coerces a pointer receiver into
	// a garbage float instead of failing (Listing 5).
	obj := om.MustAllocate(heap.ClassIndexObject, heap.FormatFixed, 0)
	f := interp.NewFrame(interp.Concrete(obj), nil, nil)
	ctx := interp.NewCtx(om, f, nil)
	ctx.InterpreterDefects.AsFloatSkipsTypeCheck = true
	e := interp.RunPrimitive(ctx, tbl, PrimIdxAsFloat)
	if e.Kind != interp.ExitSuccess {
		t.Fatalf("defective asFloat should succeed with garbage: %v", e)
	}
	got, _ := om.FloatValueOf(e.Result.W)
	if got != float64(heap.SmallIntValue(obj)) {
		t.Fatalf("expected pointer-coerced garbage, got %g", got)
	}

	// Without the defect, the type check fails properly.
	f2 := interp.NewFrame(interp.Concrete(obj), nil, nil)
	ctx2 := interp.NewCtx(om, f2, nil)
	e2 := interp.RunPrimitive(ctx2, tbl, PrimIdxAsFloat)
	if e2.Kind != interp.ExitFailure {
		t.Fatalf("corrected asFloat must fail: %v", e2)
	}
}

func TestObjectAtPrimitives(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	arr, _ := om.NewArray(heap.SmallIntFor(7), heap.SmallIntFor(8))

	if e := callPrim(t, om, tbl, PrimIdxAt, interp.Concrete(arr), intv(2)); e.Result.W != heap.SmallIntFor(8) {
		t.Fatalf("at: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxAt, interp.Concrete(arr), intv(0)); e.Kind != interp.ExitFailure {
		t.Fatalf("at: 0 must fail: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxAt, interp.Concrete(arr), intv(3)); e.Kind != interp.ExitFailure {
		t.Fatalf("at: beyond bounds must fail: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxAtPut, interp.Concrete(arr), intv(1), intv(5)); e.Kind != interp.ExitSuccess {
		t.Fatalf("atPut: %v", e)
	}
	if w, _ := om.FetchSlot(arr, 0); w != heap.SmallIntFor(5) {
		t.Fatal("atPut did not store")
	}
	if e := callPrim(t, om, tbl, PrimIdxSize, interp.Concrete(arr)); e.Result.W != heap.SmallIntFor(2) {
		t.Fatalf("size: %v", e)
	}
}

func TestBasicNew(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	arrayClass := om.ClassAt(heap.ClassIndexArray)

	e := callPrim(t, om, tbl, PrimIdxBasicNewWith, interp.Concrete(arrayClass.Oop), intv(3))
	if e.Kind != interp.ExitSuccess {
		t.Fatalf("basicNew: 3: %v", e)
	}
	if om.SlotCountOf(e.Result.W) != 3 || om.ClassIndexOf(e.Result.W) != heap.ClassIndexArray {
		t.Fatal("allocated array wrong shape")
	}

	// Non-class receiver fails.
	if e := callPrim(t, om, tbl, PrimIdxBasicNew, intv(1)); e.Kind != interp.ExitFailure {
		t.Fatalf("basicNew on int must fail: %v", e)
	}
}

func TestIdentityPrimitives(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	if e := callPrim(t, om, tbl, PrimIdxIdentical, intv(3), intv(3)); e.Result.W != om.TrueObj {
		t.Fatalf("3==3: %v", e)
	}
	if e := callPrim(t, om, tbl, PrimIdxNotIdentical, intv(3), intv(4)); e.Result.W != om.TrueObj {
		t.Fatalf("3~~4: %v", e)
	}
	e := callPrim(t, om, tbl, PrimIdxClass, intv(3))
	if e.Kind != interp.ExitSuccess || om.ClassByOop(e.Result.W).Index != heap.ClassIndexSmallInteger {
		t.Fatalf("class of 3: %v", e)
	}
}

func TestFFIIntAccessors(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	ea := om.MustAllocate(heap.ClassIndexExternalAddr, heap.FormatWords, 4)
	om.StoreSlot(ea, 0, heap.Word(0xFF)) // 255

	// int8At: 1 reads 255 as signed 8-bit = -1.
	int8At := findPrim(t, tbl, "primitiveFFIInt8At")
	e := callPrim(t, om, tbl, int8At.Index, interp.Concrete(ea), intv(1))
	if e.Kind != interp.ExitSuccess || e.Result.W != heap.SmallIntFor(-1) {
		t.Fatalf("int8At: %v", e)
	}
	// uint8At: 1 reads 255.
	uint8At := findPrim(t, tbl, "primitiveFFIUint8At")
	e = callPrim(t, om, tbl, uint8At.Index, interp.Concrete(ea), intv(1))
	if e.Result.W != heap.SmallIntFor(255) {
		t.Fatalf("uint8At: %v", e)
	}
	// Out of bounds fails (native methods validate, §3.4).
	if e := callPrim(t, om, tbl, int8At.Index, interp.Concrete(ea), intv(5)); e.Kind != interp.ExitFailure {
		t.Fatalf("OOB must fail: %v", e)
	}
	// Wrong receiver class fails.
	if e := callPrim(t, om, tbl, int8At.Index, intv(5), intv(1)); e.Kind != interp.ExitFailure {
		t.Fatalf("bad receiver must fail: %v", e)
	}
}

func TestFFIFloatAccessors(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	ea := om.MustAllocate(heap.ClassIndexExternalAddr, heap.FormatWords, 2)
	fv, _ := om.NewFloat(1.25)

	put := findPrim(t, tbl, "primitiveFFIFloat64AtPut")
	if e := callPrim(t, om, tbl, put.Index, interp.Concrete(ea), intv(1), interp.Concrete(fv)); e.Kind != interp.ExitSuccess {
		t.Fatalf("float64AtPut: %v", e)
	}
	get := findPrim(t, tbl, "primitiveFFIFloat64At")
	e := callPrim(t, om, tbl, get.Index, interp.Concrete(ea), intv(1))
	if got, _ := om.FloatValueOf(e.Result.W); got != 1.25 {
		t.Fatalf("float64At: %g", got)
	}
}

func TestFFIStrLen(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	ea := om.MustAllocate(heap.ClassIndexExternalAddr, heap.FormatWords, 5)
	om.StoreSlot(ea, 0, 'h')
	om.StoreSlot(ea, 1, 'i')
	om.StoreSlot(ea, 2, 0)
	p := findPrim(t, tbl, "primitiveFFIStrLen")
	e := callPrim(t, om, tbl, p.Index, interp.Concrete(ea))
	if e.Result.W != heap.SmallIntFor(2) {
		t.Fatalf("strlen: %v", e)
	}
}

func TestTruncateToWidth(t *testing.T) {
	cases := []struct {
		v      int64
		width  uint
		signed bool
		want   int64
	}{
		{0xFF, 8, true, -1},
		{0xFF, 8, false, 255},
		{0x8000, 16, true, -32768},
		{0x8000, 16, false, 32768},
		{1 << 40, 32, false, 0},
		{-1, 64, true, -1},
	}
	for _, c := range cases {
		if got := truncateToWidth(c.v, c.width, c.signed); got != c.want {
			t.Errorf("truncate(%#x,%d,%t) = %d, want %d", c.v, c.width, c.signed, got, c.want)
		}
	}
}

func TestFloatWordBits(t *testing.T) {
	if got := wordBitsToFloat(floatToWordBits(1.5, 64), 64); got != 1.5 {
		t.Fatalf("64-bit roundtrip: %g", got)
	}
	// 32-bit roundtrip loses precision beyond float32.
	v := 1.1
	got := wordBitsToFloat(floatToWordBits(v, 32), 32)
	if got == v || math.Abs(got-v) > 1e-6 {
		t.Fatalf("32-bit roundtrip: %g", got)
	}
}

func findPrim(t *testing.T, tbl *Table, name string) *Primitive {
	t.Helper()
	for _, p := range tbl.All() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("primitive %s not found", name)
	return nil
}
