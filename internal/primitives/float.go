package primitives

import (
	"math"

	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/sym"
)

// Float native-method indices.
const (
	PrimIdxAsFloat            = 40
	PrimIdxFloatAdd           = 41
	PrimIdxFloatSubtract      = 42
	PrimIdxFloatLess          = 43
	PrimIdxFloatGreater       = 44
	PrimIdxFloatLessEq        = 45
	PrimIdxFloatGreatEq       = 46
	PrimIdxFloatEqual         = 47
	PrimIdxFloatNotEqual      = 48
	PrimIdxFloatMultiply      = 49
	PrimIdxFloatDivide        = 50
	PrimIdxFloatTruncated     = 51
	PrimIdxFloatFraction      = 52
	PrimIdxFloatExponent      = 53
	PrimIdxFloatTimesTwoPower = 54
	PrimIdxFloatSqrt          = 55
	PrimIdxFloatSin           = 56
	PrimIdxFloatArctan        = 57
	PrimIdxFloatLogN          = 58
	PrimIdxFloatExp           = 59
)

func (t *Table) registerFloatPrimitives() {
	// primitiveAsFloat: SmallInteger >> asFloat. The production interpreter
	// carries the paper's Listing 5 defect: the receiver type check is an
	// assertion removed at compile time, so pointer receivers are coerced
	// through untagging into garbage floats. The defect is toggled per
	// context so tests can also exercise the corrected semantics.
	t.register(&Primitive{
		Index: PrimIdxAsFloat, Name: "primitiveAsFloat", NumArgs: 0, Category: CatFloat,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if !c.InterpreterDefects.AsFloatSkipsTypeCheck {
				if !c.IsSmallInt(rcvr) {
					c.PrimFail(FailBadReceiver)
				}
			}
			// self assert: (objectMemory isIntegerObject: rcvr). -- removed
			iv := c.UnsafeIntValue(rcvr)
			c.PrimReturn(c.NewFloatValue(c.IntToFloat(iv)))
		},
	})

	arith := []struct {
		idx  int
		name string
		op   sym.BinOp
	}{
		{PrimIdxFloatAdd, "primitiveFloatAdd", sym.OpAdd},
		{PrimIdxFloatSubtract, "primitiveFloatSubtract", sym.OpSub},
		{PrimIdxFloatMultiply, "primitiveFloatMultiply", sym.OpMul},
		{PrimIdxFloatDivide, "primitiveFloatDivide", sym.OpDiv},
	}
	for _, a := range arith {
		op := a.op
		t.register(&Primitive{
			Index: a.idx, Name: a.name, NumArgs: 1, Category: CatFloat,
			Fn: func(c *interp.Ctx, p *Primitive) {
				rcvr, arg := checkTwoFloats(c)
				c.PrimReturn(c.NewFloatValue(c.FloatBinOp(op, rcvr, arg)))
			},
		})
	}

	cmps := []struct {
		idx  int
		name string
		op   sym.CmpOp
	}{
		{PrimIdxFloatLess, "primitiveFloatLessThan", sym.CmpLT},
		{PrimIdxFloatGreater, "primitiveFloatGreaterThan", sym.CmpGT},
		{PrimIdxFloatLessEq, "primitiveFloatLessOrEqual", sym.CmpLE},
		{PrimIdxFloatGreatEq, "primitiveFloatGreaterOrEqual", sym.CmpGE},
		{PrimIdxFloatEqual, "primitiveFloatEqual", sym.CmpEQ},
		{PrimIdxFloatNotEqual, "primitiveFloatNotEqual", sym.CmpNE},
	}
	for _, cm := range cmps {
		op := cm.op
		t.register(&Primitive{
			Index: cm.idx, Name: cm.name, NumArgs: 1, Category: CatFloat,
			Fn: func(c *interp.Ctx, p *Primitive) {
				rcvr, arg := checkTwoFloats(c)
				outcome, cond := c.FloatCompare(op, rcvr, arg)
				c.PrimReturn(c.BoolValue(outcome, cond))
			},
		})
	}

	t.register(&Primitive{
		Index: PrimIdxFloatTruncated, Name: "primitiveFloatTruncated", NumArgs: 0, Category: CatFloat,
		Fn: func(c *interp.Ctx, p *Primitive) {
			fv := checkFloatReceiver(c)
			tr := math.Trunc(fv.F)
			if math.IsNaN(tr) || math.IsInf(tr, 0) || !heap.IsIntegerValue(int64(tr)) {
				c.PrimFail(FailOutOfRange)
			}
			c.PrimReturn(c.IntObjectOf(interp.IntValue{V: int64(tr)}))
		},
	})
	t.register(&Primitive{
		Index: PrimIdxFloatFraction, Name: "primitiveFloatFractionPart", NumArgs: 0, Category: CatFloat,
		Fn: func(c *interp.Ctx, p *Primitive) {
			fv := checkFloatReceiver(c)
			_, frac := math.Modf(fv.F)
			c.PrimReturn(c.NewFloatValue(interp.FloatValue{F: frac}))
		},
	})
	t.register(&Primitive{
		Index: PrimIdxFloatExponent, Name: "primitiveFloatExponent", NumArgs: 0, Category: CatFloat,
		Fn: func(c *interp.Ctx, p *Primitive) {
			fv := checkFloatReceiver(c)
			if fv.F == 0 || math.IsNaN(fv.F) || math.IsInf(fv.F, 0) {
				c.PrimFail(FailOutOfRange)
			}
			exp := int64(math.Ilogb(fv.F))
			c.PrimReturn(c.IntObjectOf(interp.IntValue{V: exp}))
		},
	})
	t.register(&Primitive{
		Index: PrimIdxFloatTimesTwoPower, Name: "primitiveFloatTimesTwoPower", NumArgs: 1, Category: CatFloat,
		Fn: func(c *interp.Ctx, p *Primitive) {
			fv := checkFloatReceiver(c)
			arg := c.Arg(0)
			if !c.IsSmallInt(arg) {
				c.PrimFail(FailBadArgument)
			}
			k := c.SmallIntValue(arg)
			if !c.GuardIntCompare(sym.CmpGE, k, interp.IntValue{V: -1074}) ||
				!c.GuardIntCompare(sym.CmpLE, k, interp.IntValue{V: 1023}) {
				c.PrimFail(FailOutOfRange)
			}
			c.PrimReturn(c.NewFloatValue(interp.FloatValue{F: math.Ldexp(fv.F, int(k.V))}))
		},
	})

	unary := []struct {
		idx               int
		name              string
		fn                func(float64) float64
		domainNonNegative bool
	}{
		{PrimIdxFloatSqrt, "primitiveFloatSquareRoot", math.Sqrt, true},
		{PrimIdxFloatSin, "primitiveFloatSin", math.Sin, false},
		{PrimIdxFloatArctan, "primitiveFloatArctan", math.Atan, false},
		{PrimIdxFloatLogN, "primitiveFloatLogN", math.Log, true},
		{PrimIdxFloatExp, "primitiveFloatExp", math.Exp, false},
	}
	for _, un := range unary {
		fn, nonNeg := un.fn, un.domainNonNegative
		t.register(&Primitive{
			Index: un.idx, Name: un.name, NumArgs: 0, Category: CatFloat,
			Fn: func(c *interp.Ctx, p *Primitive) {
				fv := checkFloatReceiver(c)
				if nonNeg {
					outcome, cond := c.FloatCompare(sym.CmpGE, fv, interp.FloatValue{F: 0})
					if cond != nil {
						if outcome {
							c.RecordGuard(cond)
						} else {
							c.RecordGuard(sym.Negate(cond))
						}
					}
					if !outcome {
						c.PrimFail(FailBadReceiver)
					}
				}
				c.PrimReturn(c.NewFloatValue(interp.FloatValue{F: fn(fv.F)}))
			},
		})
	}
}

// checkFloatReceiver validates and unboxes the float receiver.
func checkFloatReceiver(c *interp.Ctx) interp.FloatValue {
	rcvr := c.Receiver()
	if !c.IsFloatObject(rcvr) {
		c.PrimFail(FailBadReceiver)
	}
	return c.FloatValueOf(rcvr)
}

// checkTwoFloats validates and unboxes a float (receiver, argument) pair.
func checkTwoFloats(c *interp.Ctx) (rcvr, arg interp.FloatValue) {
	r := c.Receiver()
	if !c.IsFloatObject(r) {
		c.PrimFail(FailBadReceiver)
	}
	a := c.Arg(0)
	if !c.IsFloatObject(a) {
		c.PrimFail(FailBadArgument)
	}
	return c.FloatValueOf(r), c.FloatValueOf(a)
}
