// Package primitives implements the VM's native methods: primitive
// operations exposed as methods (§3.1). Native methods are safe by design:
// they check the types and shapes of all their operands and fail with a
// failure code when an operand is incorrect, falling back to user-defined
// code. Like the byte-codes, they are written against the interp.Ctx
// semantic operations, so the concolic engine explores them unchanged.
package primitives

import (
	"fmt"
	"sort"

	"cogdiff/internal/interp"
)

// Category groups native methods the way the evaluation reports them.
type Category int

const (
	CatIntegerArithmetic Category = iota
	CatIntegerComparison
	CatFloat
	CatObjectAccess
	CatIdentity
	CatAllocation
	CatFFI
)

func (c Category) String() string {
	switch c {
	case CatIntegerArithmetic:
		return "integer-arithmetic"
	case CatIntegerComparison:
		return "integer-comparison"
	case CatFloat:
		return "float"
	case CatObjectAccess:
		return "object-access"
	case CatIdentity:
		return "identity"
	case CatAllocation:
		return "allocation"
	case CatFFI:
		return "ffi"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Failure codes native methods fail with.
const (
	FailBadReceiver = 1
	FailBadArgument = 2
	FailBadIndex    = 3
	FailOutOfRange  = 4
	FailUnsupported = 5
)

// Primitive describes one native method.
type Primitive struct {
	Index    int
	Name     string
	NumArgs  int
	Category Category
	Fn       func(*interp.Ctx, *Primitive)
}

// Table is the native-method registry; it implements interp.PrimitiveTable.
type Table struct {
	byIndex map[int]*Primitive
}

// NewTable builds the full native-method table of this VM.
func NewTable() *Table {
	t := &Table{byIndex: make(map[int]*Primitive)}
	t.registerIntegerPrimitives()
	t.registerFloatPrimitives()
	t.registerObjectPrimitives()
	t.registerFFIPrimitives()
	return t
}

func (t *Table) register(p *Primitive) {
	if _, dup := t.byIndex[p.Index]; dup {
		panic(fmt.Sprintf("primitives: duplicate index %d (%s)", p.Index, p.Name))
	}
	t.byIndex[p.Index] = p
}

// Exists reports whether index names a native method.
func (t *Table) Exists(index int) bool { return t.byIndex[index] != nil }

// Lookup returns the primitive registered at index, or nil.
func (t *Table) Lookup(index int) *Primitive { return t.byIndex[index] }

// Run executes native method index against ctx. The primitive finishes by
// panicking with an exit (PrimReturn/PrimFail) or, on a malformed frame,
// through the frame accessors.
func (t *Table) Run(ctx *interp.Ctx, index int) {
	p := t.byIndex[index]
	if p == nil {
		ctx.Unsupported()
	}
	p.Fn(ctx, p)
	// A native method must produce an explicit exit.
	ctx.PrimFail(FailUnsupported)
}

// All returns every registered primitive ordered by index.
func (t *Table) All() []*Primitive {
	out := make([]*Primitive, 0, len(t.byIndex))
	for _, p := range t.byIndex {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Count returns the number of registered native methods.
func (t *Table) Count() int { return len(t.byIndex) }
