package primitives

import (
	"testing"

	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
)

// TestDivisionZeroDivisorAllFamilies checks every division primitive
// fails its operand checks on a zero divisor instead of faulting.
func TestDivisionZeroDivisorAllFamilies(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	for _, idx := range []int{PrimIdxDivide, PrimIdxDiv, PrimIdxMod, PrimIdxQuo} {
		for _, a := range []int64{0, 1, -7, heap.MinSmallInt, heap.MaxSmallInt} {
			if e := callPrim(t, om, tbl, idx, intv(a), intv(0)); e.Kind != interp.ExitFailure {
				t.Errorf("primitive %d: %d by zero must fail, got %v", idx, a, e.Kind)
			}
		}
	}
}

// TestDivisionMinSmallIntNegation checks the MinSmallInt / -1 edge: the
// true quotient 2^30 is one past MaxSmallInt, so the quotient-producing
// primitives must fail their range check while mod (remainder 0) stays
// representable and succeeds.
func TestDivisionMinSmallIntNegation(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	min := intv(heap.MinSmallInt)
	for _, idx := range []int{PrimIdxDivide, PrimIdxDiv, PrimIdxQuo} {
		if e := callPrim(t, om, tbl, idx, min, intv(-1)); e.Kind != interp.ExitFailure {
			t.Errorf("primitive %d: MinSmallInt / -1 overflows the small-int range and must fail, got %v", idx, e.Kind)
		}
	}
	if e := callPrim(t, om, tbl, PrimIdxMod, min, intv(-1)); e.Kind != interp.ExitSuccess || e.Result.W != heap.SmallIntFor(0) {
		t.Errorf("MinSmallInt mod -1 = 0 is representable and must succeed, got %v %v", e.Kind, e.Result.W)
	}
	// One below the edge negates in range for every family.
	almost := intv(heap.MinSmallInt + 1)
	for _, idx := range []int{PrimIdxDivide, PrimIdxDiv, PrimIdxQuo} {
		if e := callPrim(t, om, tbl, idx, almost, intv(-1)); e.Kind != interp.ExitSuccess || e.Result.W != heap.SmallIntFor(heap.MaxSmallInt) {
			t.Errorf("primitive %d: (MinSmallInt+1) / -1 must succeed with MaxSmallInt, got %v %v", idx, e.Kind, e.Result.W)
		}
	}
}

// TestDivisionFlooringVsTruncation pins the floor (// and \\) versus
// truncation (quo:) semantics on negative operands.
func TestDivisionFlooringVsTruncation(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	tbl := NewTable()
	cases := []struct {
		a, b          int64
		div, mod, quo int64
	}{
		{7, 2, 3, 1, 3},
		{-7, 2, -4, 1, -3},
		{7, -2, -4, -1, -3},
		{-7, -2, 3, -1, 3},
	}
	for _, c := range cases {
		if e := callPrim(t, om, tbl, PrimIdxDiv, intv(c.a), intv(c.b)); e.Kind != interp.ExitSuccess || e.Result.W != heap.SmallIntFor(c.div) {
			t.Errorf("%d // %d: got %v %v, want %d", c.a, c.b, e.Kind, e.Result.W, c.div)
		}
		if e := callPrim(t, om, tbl, PrimIdxMod, intv(c.a), intv(c.b)); e.Kind != interp.ExitSuccess || e.Result.W != heap.SmallIntFor(c.mod) {
			t.Errorf("%d mod %d: got %v %v, want %d", c.a, c.b, e.Kind, e.Result.W, c.mod)
		}
		if e := callPrim(t, om, tbl, PrimIdxQuo, intv(c.a), intv(c.b)); e.Kind != interp.ExitSuccess || e.Result.W != heap.SmallIntFor(c.quo) {
			t.Errorf("%d quo %d: got %v %v, want %d", c.a, c.b, e.Kind, e.Result.W, c.quo)
		}
	}
}
