package primitives

import (
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/sym"
)

// Native-method indices follow the OpenSmalltalk numbering where a
// counterpart exists.
const (
	PrimIdxAdd         = 1
	PrimIdxSubtract    = 2
	PrimIdxLess        = 3
	PrimIdxGreater     = 4
	PrimIdxLessEq      = 5
	PrimIdxGreatEq     = 6
	PrimIdxEqual       = 7
	PrimIdxNotEqual    = 8
	PrimIdxMultiply    = 9
	PrimIdxDivide      = 10
	PrimIdxMod         = 11
	PrimIdxDiv         = 12
	PrimIdxQuo         = 13
	PrimIdxBitAnd      = 14
	PrimIdxBitOr       = 15
	PrimIdxBitXor      = 16
	PrimIdxBitShift    = 17
	PrimIdxMakePoint   = 18
	PrimIdxAsInteger   = 19
	PrimIdxAsCharacter = 20
)

func (t *Table) registerIntegerPrimitives() {
	arith := []struct {
		idx  int
		name string
		op   sym.BinOp
	}{
		{PrimIdxAdd, "primitiveAdd", sym.OpAdd},
		{PrimIdxSubtract, "primitiveSubtract", sym.OpSub},
		{PrimIdxMultiply, "primitiveMultiply", sym.OpMul},
	}
	for _, a := range arith {
		op := a.op
		t.register(&Primitive{
			Index: a.idx, Name: a.name, NumArgs: 1, Category: CatIntegerArithmetic,
			Fn: func(c *interp.Ctx, p *Primitive) {
				rcvr, arg := checkTwoIntegers(c)
				r := c.IntBinOp(op, rcvr, arg)
				if !c.IsIntegerValue(r) {
					c.PrimFail(FailOutOfRange)
				}
				c.PrimReturn(c.IntObjectOf(r))
			},
		})
	}

	cmps := []struct {
		idx  int
		name string
		op   sym.CmpOp
	}{
		{PrimIdxLess, "primitiveLessThan", sym.CmpLT},
		{PrimIdxGreater, "primitiveGreaterThan", sym.CmpGT},
		{PrimIdxLessEq, "primitiveLessOrEqual", sym.CmpLE},
		{PrimIdxGreatEq, "primitiveGreaterOrEqual", sym.CmpGE},
		{PrimIdxEqual, "primitiveEqual", sym.CmpEQ},
		{PrimIdxNotEqual, "primitiveNotEqual", sym.CmpNE},
	}
	for _, cm := range cmps {
		op := cm.op
		t.register(&Primitive{
			Index: cm.idx, Name: cm.name, NumArgs: 1, Category: CatIntegerComparison,
			Fn: func(c *interp.Ctx, p *Primitive) {
				rcvr, arg := checkTwoIntegers(c)
				outcome, cond := c.IntCompare(op, rcvr, arg)
				c.PrimReturn(c.BoolValue(outcome, cond))
			},
		})
	}

	t.register(&Primitive{
		Index: PrimIdxDivide, Name: "primitiveDivide", NumArgs: 1, Category: CatIntegerArithmetic,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr, arg := checkTwoIntegers(c)
			if !c.GuardIntCompare(sym.CmpNE, arg, interp.IntValue{V: 0}) {
				c.PrimFail(FailBadArgument)
			}
			rem := c.IntBinOp(sym.OpMod, rcvr, arg)
			if !c.GuardIntCompare(sym.CmpEQ, rem, interp.IntValue{V: 0}) {
				c.PrimFail(FailBadArgument)
			}
			q := c.IntBinOp(sym.OpDiv, rcvr, arg)
			if !c.IsIntegerValue(q) {
				c.PrimFail(FailOutOfRange)
			}
			c.PrimReturn(c.IntObjectOf(q))
		},
	})

	floored := []struct {
		idx  int
		name string
		op   sym.BinOp
	}{
		{PrimIdxMod, "primitiveMod", sym.OpMod},
		{PrimIdxDiv, "primitiveDiv", sym.OpDiv},
		{PrimIdxQuo, "primitiveQuo", sym.OpQuo},
	}
	for _, fd := range floored {
		op := fd.op
		t.register(&Primitive{
			Index: fd.idx, Name: fd.name, NumArgs: 1, Category: CatIntegerArithmetic,
			Fn: func(c *interp.Ctx, p *Primitive) {
				rcvr, arg := checkTwoIntegers(c)
				if !c.GuardIntCompare(sym.CmpNE, arg, interp.IntValue{V: 0}) {
					c.PrimFail(FailBadArgument)
				}
				r := c.IntBinOp(op, rcvr, arg)
				if !c.IsIntegerValue(r) {
					c.PrimFail(FailOutOfRange)
				}
				c.PrimReturn(c.IntObjectOf(r))
			},
		})
	}

	bits := []struct {
		idx  int
		name string
		op   sym.BinOp
	}{
		{PrimIdxBitAnd, "primitiveBitAnd", sym.OpBitAnd},
		{PrimIdxBitOr, "primitiveBitOr", sym.OpBitOr},
		{PrimIdxBitXor, "primitiveBitXor", sym.OpBitXor},
	}
	for _, b := range bits {
		op := b.op
		t.register(&Primitive{
			Index: b.idx, Name: b.name, NumArgs: 1, Category: CatIntegerArithmetic,
			Fn: func(c *interp.Ctx, p *Primitive) {
				rcvr, arg := checkTwoIntegers(c)
				// The interpreter's native bitwise methods fail on negative
				// operands and fall back to large-integer library code
				// (§5.3: compiled code instead treats them as unsigned).
				if !c.GuardIntCompare(sym.CmpGE, rcvr, interp.IntValue{V: 0}) ||
					!c.GuardIntCompare(sym.CmpGE, arg, interp.IntValue{V: 0}) {
					c.PrimFail(FailBadArgument)
				}
				r := c.IntBinOp(op, rcvr, arg)
				c.PrimReturn(c.IntObjectOf(interp.IntValue{V: r.V}))
			},
		})
	}

	t.register(&Primitive{
		Index: PrimIdxBitShift, Name: "primitiveBitShift", NumArgs: 1, Category: CatIntegerArithmetic,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr, arg := checkTwoIntegers(c)
			if !c.GuardIntCompare(sym.CmpGE, rcvr, interp.IntValue{V: 0}) {
				c.PrimFail(FailBadArgument)
			}
			if c.GuardIntCompare(sym.CmpGE, arg, interp.IntValue{V: 0}) {
				if !c.GuardIntCompare(sym.CmpLE, arg, interp.IntValue{V: 31}) {
					c.PrimFail(FailOutOfRange)
				}
				r := c.IntBinOp(sym.OpShiftLeft, rcvr, arg)
				if !c.IsIntegerValue(interp.IntValue{V: r.V}) {
					c.PrimFail(FailOutOfRange)
				}
				c.PrimReturn(c.IntObjectOf(interp.IntValue{V: r.V}))
			}
			if !c.GuardIntCompare(sym.CmpGE, arg, interp.IntValue{V: -31}) {
				c.PrimFail(FailOutOfRange)
			}
			neg := c.IntBinOp(sym.OpSub, interp.IntValue{V: 0}, arg)
			r := c.IntBinOp(sym.OpShiftRight, rcvr, neg)
			c.PrimReturn(c.IntObjectOf(interp.IntValue{V: r.V}))
		},
	})

	t.register(&Primitive{
		Index: PrimIdxMakePoint, Name: "primitiveMakePoint", NumArgs: 1, Category: CatAllocation,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if !c.IsSmallInt(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			arg := c.Arg(0)
			if !c.IsSmallInt(arg) {
				c.PrimFail(FailBadArgument)
			}
			oop, err := c.OM.Allocate(heap.ClassIndexPoint, heap.FormatFixed, 2)
			if err != nil {
				c.PrimFail(FailUnsupported)
			}
			c.OM.StoreSlot(oop, 0, rcvr.W)
			c.OM.StoreSlot(oop, 1, arg.W)
			c.PrimReturn(interp.Value{W: oop, Sym: sym.KnownObj{Name: "aPoint"}})
		},
	})

	t.register(&Primitive{
		Index: PrimIdxAsInteger, Name: "primitiveAsInteger", NumArgs: 0, Category: CatIntegerArithmetic,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if c.IsSmallInt(rcvr) {
				c.PrimReturn(rcvr)
			}
			if !c.IsFloatObject(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			fv := c.FloatValueOf(rcvr)
			truncated := int64(fv.F)
			if !heap.IsIntegerValue(truncated) {
				c.PrimFail(FailOutOfRange)
			}
			c.PrimReturn(c.IntObjectOf(interp.IntValue{V: truncated}))
		},
	})

	t.register(&Primitive{
		Index: PrimIdxAsCharacter, Name: "primitiveAsCharacter", NumArgs: 0, Category: CatIntegerArithmetic,
		Fn: func(c *interp.Ctx, p *Primitive) {
			rcvr := c.Receiver()
			if !c.IsSmallInt(rcvr) {
				c.PrimFail(FailBadReceiver)
			}
			v := c.SmallIntValue(rcvr)
			if !c.GuardIntCompare(sym.CmpGE, v, interp.IntValue{V: 0}) ||
				!c.GuardIntCompare(sym.CmpLE, v, interp.IntValue{V: 0x10FFFF}) {
				c.PrimFail(FailOutOfRange)
			}
			c.PrimReturn(c.IntObjectOf(v))
		},
	})
}

// checkTwoIntegers validates the (receiver, first argument) pair of an
// integer native method, failing with the proper code.
func checkTwoIntegers(c *interp.Ctx) (rcvr, arg interp.IntValue) {
	r := c.Receiver()
	if !c.IsSmallInt(r) {
		c.PrimFail(FailBadReceiver)
	}
	a := c.Arg(0)
	if !c.IsSmallInt(a) {
		c.PrimFail(FailBadArgument)
	}
	return c.SmallIntValue(r), c.SmallIntValue(a)
}
