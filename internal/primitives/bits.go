package primitives

import (
	"math"

	"cogdiff/internal/heap"
)

// wordBitsToFloat decodes a raw word stored by the FFI float accessors.
// 32-bit loads round-trip through float32 precision, as real foreign
// memory would.
func wordBitsToFloat(raw heap.Word, width uint) float64 {
	if width == 32 {
		return float64(math.Float32frombits(uint32(raw)))
	}
	return math.Float64frombits(uint64(raw))
}

// floatToWordBits encodes a float for storage at the given width.
func floatToWordBits(f float64, width uint) heap.Word {
	if width == 32 {
		return heap.Word(math.Float32bits(float32(f)))
	}
	return heap.Word(math.Float64bits(f))
}
