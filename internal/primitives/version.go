package primitives

// SemanticsVersion stamps the primitive table's observable semantics.
// Adding, removing or changing the behaviour of a primitive must bump
// this, orphaning all cached explorations derived from the old table
// (internal/excache keys embed it).
const SemanticsVersion = "primitives/1"
