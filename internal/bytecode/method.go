package bytecode

import (
	"fmt"
	"strings"
)

// LiteralKind classifies a compiled-method literal.
type LiteralKind int

const (
	LitInt LiteralKind = iota
	LitFloat
	LitSelector
	LitNil
	LitTrue
	LitFalse
	LitString
)

// Literal is a heap-independent literal description. Literals are resolved
// to concrete heap values when a frame is constructed, so that methods can
// be reused across fresh object memories.
type Literal struct {
	Kind  LiteralKind
	Int   int64
	Float float64
	Str   string // selector name or string contents
}

func IntLiteral(v int64) Literal       { return Literal{Kind: LitInt, Int: v} }
func FloatLiteral(v float64) Literal   { return Literal{Kind: LitFloat, Float: v} }
func SelectorLiteral(s string) Literal { return Literal{Kind: LitSelector, Str: s} }
func StringLiteral(s string) Literal   { return Literal{Kind: LitString, Str: s} }
func NilLiteral() Literal              { return Literal{Kind: LitNil} }
func TrueLiteral() Literal             { return Literal{Kind: LitTrue} }
func FalseLiteral() Literal            { return Literal{Kind: LitFalse} }

func (l Literal) String() string {
	switch l.Kind {
	case LitInt:
		return fmt.Sprintf("%d", l.Int)
	case LitFloat:
		return fmt.Sprintf("%g", l.Float)
	case LitSelector:
		return "#" + l.Str
	case LitNil:
		return "nil"
	case LitTrue:
		return "true"
	case LitFalse:
		return "false"
	case LitString:
		return fmt.Sprintf("%q", l.Str)
	}
	return "?"
}

// Method is a compiled method: argument/temporary counts, a literal frame
// and a byte-code stream. NumTemps counts temporaries in addition to the
// arguments.
type Method struct {
	Name     string
	NumArgs  int
	NumTemps int
	Literals []Literal
	Code     []byte
}

// TempCount returns the total temporary frame size (arguments + locals).
func (m *Method) TempCount() int { return m.NumArgs + m.NumTemps }

// LiteralAt returns literal i, or an error for out-of-range indices.
func (m *Method) LiteralAt(i int) (Literal, error) {
	if i < 0 || i >= len(m.Literals) {
		return Literal{}, fmt.Errorf("method %s: literal index %d out of range (%d literals)", m.Name, i, len(m.Literals))
	}
	return m.Literals[i], nil
}

// FetchOp decodes the instruction at pc: the opcode, its trailing operand
// bytes, and the pc of the next instruction. Decoding past the end of the
// code returns ok=false.
func (m *Method) FetchOp(pc int) (op Op, operands []byte, next int, ok bool) {
	if pc < 0 || pc >= len(m.Code) {
		return 0, nil, pc, false
	}
	op = Op(m.Code[pc])
	d := Describe(op)
	if d.Mnemonic == "" {
		return op, nil, pc + 1, false
	}
	end := pc + 1 + d.OperandBytes
	if end > len(m.Code) {
		return op, nil, end, false
	}
	return op, m.Code[pc+1 : end], end, true
}

// Disassemble renders the whole method, one instruction per line.
func (m *Method) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "method %s (args=%d temps=%d literals=%d)\n", m.Name, m.NumArgs, m.NumTemps, len(m.Literals))
	for pc := 0; pc < len(m.Code); {
		op, operands, next, ok := m.FetchOp(pc)
		if !ok {
			fmt.Fprintf(&b, "%4d: <invalid %d>\n", pc, byte(op))
			break
		}
		d := Describe(op)
		fmt.Fprintf(&b, "%4d: %s", pc, d.Mnemonic)
		for _, o := range operands {
			fmt.Fprintf(&b, " %d", o)
		}
		if n, isSend := ArgCountOfSend(op); isSend {
			if lit, err := m.LiteralAt(d.Embedded); err == nil {
				fmt.Fprintf(&b, "   ; send %s/%d", lit.Str, n)
			}
		}
		b.WriteByte('\n')
		pc = next
	}
	return b.String()
}

// Validate checks structural well-formedness: decodable stream, literal
// and temp indices in range, jump targets inside the method.
func (m *Method) Validate() error {
	for pc := 0; pc < len(m.Code); {
		op, operands, next, ok := m.FetchOp(pc)
		if !ok {
			return fmt.Errorf("method %s: undecodable instruction at pc %d", m.Name, pc)
		}
		d := Describe(op)
		switch d.Family {
		case FamPushLiteralConstant, FamSend0Args, FamSend1Arg, FamSend2Args:
			if _, err := m.LiteralAt(d.Embedded); err != nil {
				return fmt.Errorf("pc %d: %w", pc, err)
			}
		case FamPushTemporaryVariable, FamStoreTemporaryVariable, FamPopIntoTemporaryVariable:
			if d.Embedded >= m.TempCount() {
				return fmt.Errorf("method %s pc %d: temp index %d out of range (%d temps)", m.Name, pc, d.Embedded, m.TempCount())
			}
		}
		var operand byte
		if len(operands) > 0 {
			operand = operands[0]
		}
		if off, _, _, isJump := JumpOffset(op, operand); isJump {
			if target := next + off; target < 0 || target > len(m.Code) {
				return fmt.Errorf("method %s pc %d: jump target %d out of range", m.Name, pc, target)
			}
		}
		pc = next
	}
	return nil
}
