package bytecode

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeTableDense(t *testing.T) {
	ops := AllOpcodes()
	if len(ops) != NumOpcodes {
		t.Fatalf("opcode table has gaps: %d defined of %d", len(ops), NumOpcodes)
	}
	for _, op := range ops {
		d := Describe(op)
		if d.Op != op {
			t.Errorf("descriptor of %d self-reports %d", op, d.Op)
		}
		if d.Mnemonic == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
}

func TestFamilyMembership(t *testing.T) {
	// every family must have at least one member
	members := make(map[Family]int)
	for _, op := range AllOpcodes() {
		members[Describe(op).Family]++
	}
	for f := Family(0); f < NumFamilies; f++ {
		if members[f] == 0 {
			t.Errorf("family %s has no opcodes", f)
		}
	}
	if members[FamPushReceiverVariable] != 16 {
		t.Errorf("pushReceiverVariable family size %d", members[FamPushReceiverVariable])
	}
	if members[FamSend1Arg] != 16 {
		t.Errorf("send1Arg family size %d", members[FamSend1Arg])
	}
}

func TestJumpOffsets(t *testing.T) {
	if off, cond, onTrue, ok := JumpOffset(OpShortJump1, 0); !ok || off != 1 || cond || onTrue {
		t.Errorf("shortJump1: %d %v %v %v", off, cond, onTrue, ok)
	}
	if off, cond, onTrue, ok := JumpOffset(OpShortJumpIfTrue1+3, 0); !ok || off != 4 || !cond || !onTrue {
		t.Errorf("shortJumpIfTrue4: %d %v %v %v", off, cond, onTrue, ok)
	}
	if off, _, _, ok := JumpOffset(OpLongJumpForward0+2, 7); !ok || off != 2*256+7 {
		t.Errorf("longJumpForward: %d %v", off, ok)
	}
	if _, _, _, ok := JumpOffset(OpPrimAdd, 0); ok {
		t.Error("primAdd must not be a jump")
	}
}

func TestArgCountOfSend(t *testing.T) {
	if n, ok := ArgCountOfSend(OpSend0Args0 + 5); !ok || n != 0 {
		t.Error("send0")
	}
	if n, ok := ArgCountOfSend(OpSend1Arg0); !ok || n != 1 {
		t.Error("send1")
	}
	if n, ok := ArgCountOfSend(OpSend2Args0 + 7); !ok || n != 2 {
		t.Error("send2")
	}
	if _, ok := ArgCountOfSend(OpPrimAdd); ok {
		t.Error("primAdd is not a send")
	}
}

func TestBuilderBasicMethod(t *testing.T) {
	m, err := NewBuilder("addOne", 1).
		PushTemp(0).
		PushInt(1).
		Add().
		ReturnTop().
		Method()
	if err != nil {
		t.Fatal(err)
	}
	if m.TempCount() != 1 {
		t.Fatal("temp count")
	}
	want := []byte{byte(OpPushTemporaryVariable0), byte(OpPushConstantOne), byte(OpPrimAdd), byte(OpReturnTop)}
	if string(m.Code) != string(want) {
		t.Fatalf("code %v want %v", m.Code, want)
	}
}

func TestBuilderLiteralInterning(t *testing.T) {
	b := NewBuilder("m", 0)
	i1 := b.AddLiteral(IntLiteral(100))
	i2 := b.AddLiteral(IntLiteral(100))
	i3 := b.AddLiteral(IntLiteral(200))
	if i1 != i2 || i1 == i3 {
		t.Fatalf("interning broken: %d %d %d", i1, i2, i3)
	}
}

func TestBuilderJumpResolution(t *testing.T) {
	m, err := NewBuilder("cond", 1).
		PushTemp(0).
		JumpIfTrue("then").
		PushInt(0).
		ReturnTop().
		Label("then").
		PushInt(1).
		ReturnTop().
		Method()
	if err != nil {
		t.Fatal(err)
	}
	op, _, next, ok := m.FetchOp(1)
	if !ok {
		t.Fatal("cannot decode jump")
	}
	off, cond, onTrue, isJump := JumpOffset(op, 0)
	if !isJump || !cond || !onTrue {
		t.Fatal("not a conditional jump")
	}
	// The jump must land on the pushInt(1) at label "then".
	if target := next + off; Op(m.Code[target]) != OpPushConstantOne {
		t.Fatalf("jump target wrong: %d", target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	if _, err := NewBuilder("bad", 0).Jump("nowhere").Method(); err == nil {
		t.Fatal("undefined label must error")
	}
}

func TestBuilderJumpTooFar(t *testing.T) {
	b := NewBuilder("far", 0).Jump("end")
	for i := 0; i < 20; i++ {
		b.Nop()
	}
	b.Label("end").ReturnReceiver()
	if _, err := b.Method(); err == nil {
		t.Fatal("too-long short jump must error")
	}
}

func TestBuilderRangeErrors(t *testing.T) {
	if _, err := NewBuilder("m", 0).PushTemp(12).Method(); err == nil {
		t.Fatal("pushTemp 12 must error")
	}
	if _, err := NewBuilder("m", 0).Send("x", 3).Method(); err == nil {
		t.Fatal("3-arg send must error")
	}
}

func TestValidateCatchesBadTempIndex(t *testing.T) {
	m := &Method{Name: "bad", NumArgs: 0, NumTemps: 0, Code: []byte{byte(OpPushTemporaryVariable0 + 3)}}
	if err := m.Validate(); err == nil {
		t.Fatal("temp index beyond frame must fail validation")
	}
}

func TestValidateCatchesTruncatedOperand(t *testing.T) {
	m := &Method{Name: "bad", Code: []byte{byte(OpCallPrimitive), 1}} // missing second operand byte
	if err := m.Validate(); err == nil {
		t.Fatal("truncated operand must fail validation")
	}
}

func TestFetchOpRoundTripProperty(t *testing.T) {
	// Any method built from defined opcodes with operands must decode back
	// to the same opcode sequence.
	f := func(raw []byte) bool {
		var code []byte
		var ops []Op
		for _, r := range raw {
			op := Op(int(r) % NumOpcodes)
			code = append(code, byte(op))
			for i := 0; i < Describe(op).OperandBytes; i++ {
				code = append(code, 1)
			}
			ops = append(ops, op)
		}
		m := &Method{Name: "p", Code: code}
		var got []Op
		for pc := 0; pc < len(m.Code); {
			op, _, next, ok := m.FetchOp(pc)
			if !ok {
				return false
			}
			got = append(got, op)
			pc = next
		}
		if len(got) != len(ops) {
			return false
		}
		for i := range got {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassemble(t *testing.T) {
	m := NewBuilder("disasm", 1).
		PushTemp(0).
		PushLiteral(IntLiteral(5)).
		Send("max:", 1).
		ReturnTop().
		MustMethod()
	out := m.Disassemble()
	for _, want := range []string{"pushTemporaryVariable0", "pushLiteralConstant0", "send max:/1", "returnTop"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestLiteralString(t *testing.T) {
	cases := map[string]Literal{
		"42":    IntLiteral(42),
		"1.5":   FloatLiteral(1.5),
		"#foo":  SelectorLiteral("foo"),
		"nil":   NilLiteral(),
		"true":  TrueLiteral(),
		"false": FalseLiteral(),
		`"s"`:   StringLiteral("s"),
	}
	for want, lit := range cases {
		if got := lit.String(); got != want {
			t.Errorf("literal %v prints %q want %q", lit, got, want)
		}
	}
}
