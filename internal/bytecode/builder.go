package bytecode

import "fmt"

// Builder assembles compiled methods. It manages the literal frame
// (deduplicating literals) and resolves forward jump labels.
type Builder struct {
	m      *Method
	labels map[string]int // label -> code offset
	fixups map[int]fixup  // code offset of operandless short jump -> pending label
	errs   []error
}

type fixup struct {
	label string
	long  bool
}

// NewBuilder starts a method with the given name and argument count.
func NewBuilder(name string, numArgs int) *Builder {
	return &Builder{
		m:      &Method{Name: name, NumArgs: numArgs},
		labels: make(map[string]int),
		fixups: make(map[int]fixup),
	}
}

// SetTemps declares the number of non-argument temporaries.
func (b *Builder) SetTemps(n int) *Builder { b.m.NumTemps = n; return b }

// AddLiteral interns a literal and returns its index.
func (b *Builder) AddLiteral(l Literal) int {
	for i, e := range b.m.Literals {
		if e == l {
			return i
		}
	}
	b.m.Literals = append(b.m.Literals, l)
	return len(b.m.Literals) - 1
}

func (b *Builder) emit(op Op, operands ...byte) *Builder {
	b.m.Code = append(b.m.Code, byte(op))
	b.m.Code = append(b.m.Code, operands...)
	return b
}

func (b *Builder) errf(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return b
}

// Op emits a raw opcode with operands; used by the differential tester to
// synthesize arbitrary instructions.
func (b *Builder) Op(op Op, operands ...byte) *Builder { return b.emit(op, operands...) }

func (b *Builder) indexed(base Op, limit, i int, what string) *Builder {
	if i < 0 || i >= limit {
		return b.errf("%s index %d out of encodable range [0,%d)", what, i, limit)
	}
	return b.emit(base + Op(i))
}

func (b *Builder) PushReceiverVariable(i int) *Builder {
	return b.indexed(OpPushReceiverVariable0, 16, i, "pushReceiverVariable")
}
func (b *Builder) PushTemp(i int) *Builder {
	return b.indexed(OpPushTemporaryVariable0, 12, i, "pushTemporaryVariable")
}
func (b *Builder) StoreReceiverVariable(i int) *Builder {
	return b.indexed(OpStoreReceiverVariable0, 8, i, "storeReceiverVariable")
}
func (b *Builder) PopIntoReceiverVariable(i int) *Builder {
	return b.indexed(OpPopIntoReceiverVariable0, 8, i, "popIntoReceiverVariable")
}
func (b *Builder) StoreTemp(i int) *Builder {
	return b.indexed(OpStoreTemporaryVariable0, 8, i, "storeTemporaryVariable")
}
func (b *Builder) PopIntoTemp(i int) *Builder {
	return b.indexed(OpPopIntoTemporaryVariable0, 8, i, "popIntoTemporaryVariable")
}

// PushLiteral interns l and emits the push.
func (b *Builder) PushLiteral(l Literal) *Builder {
	i := b.AddLiteral(l)
	return b.indexed(OpPushLiteralConstant0, 16, i, "pushLiteralConstant")
}

// PushInt pushes an integer, using the short constant forms when possible.
func (b *Builder) PushInt(v int64) *Builder {
	switch v {
	case 0:
		return b.emit(OpPushConstantZero)
	case 1:
		return b.emit(OpPushConstantOne)
	case -1:
		return b.emit(OpPushConstantMinusOne)
	case 2:
		return b.emit(OpPushConstantTwo)
	}
	return b.PushLiteral(IntLiteral(v))
}

func (b *Builder) PushReceiver() *Builder { return b.emit(OpPushReceiver) }
func (b *Builder) PushTrue() *Builder     { return b.emit(OpPushConstantTrue) }
func (b *Builder) PushFalse() *Builder    { return b.emit(OpPushConstantFalse) }
func (b *Builder) PushNil() *Builder      { return b.emit(OpPushConstantNil) }
func (b *Builder) Dup() *Builder          { return b.emit(OpDuplicateTop) }
func (b *Builder) Pop() *Builder          { return b.emit(OpPopStackTop) }
func (b *Builder) Nop() *Builder          { return b.emit(OpNop) }

func (b *Builder) Add() *Builder      { return b.emit(OpPrimAdd) }
func (b *Builder) Subtract() *Builder { return b.emit(OpPrimSubtract) }
func (b *Builder) Multiply() *Builder { return b.emit(OpPrimMultiply) }
func (b *Builder) Divide() *Builder   { return b.emit(OpPrimDivide) }
func (b *Builder) LessThan() *Builder { return b.emit(OpPrimLessThan) }
func (b *Builder) Equal() *Builder    { return b.emit(OpPrimEqual) }

func (b *Builder) ReturnTop() *Builder      { return b.emit(OpReturnTop) }
func (b *Builder) ReturnReceiver() *Builder { return b.emit(OpReturnReceiver) }

// Send emits a send of selector with numArgs arguments.
func (b *Builder) Send(selector string, numArgs int) *Builder {
	i := b.AddLiteral(SelectorLiteral(selector))
	switch numArgs {
	case 0:
		return b.indexed(OpSend0Args0, 16, i, "send0")
	case 1:
		return b.indexed(OpSend1Arg0, 16, i, "send1")
	case 2:
		return b.indexed(OpSend2Args0, 8, i, "send2")
	}
	return b.errf("send %s: unsupported argument count %d", selector, numArgs)
}

// CallPrimitive emits the native-method invocation byte-code.
func (b *Builder) CallPrimitive(index int) *Builder {
	return b.emit(OpCallPrimitive, byte(index&0xff), byte(index>>8))
}

// Label binds a name to the current code offset (the target of jumps).
func (b *Builder) Label(name string) *Builder {
	b.labels[name] = len(b.m.Code)
	return b
}

// Jump emits an unconditional forward jump to label (resolved at Method()).
func (b *Builder) Jump(label string) *Builder { return b.jump(label, FamShortJump) }

// JumpIfTrue / JumpIfFalse pop the top of stack and branch.
func (b *Builder) JumpIfTrue(label string) *Builder  { return b.jump(label, FamShortJumpIfTrue) }
func (b *Builder) JumpIfFalse(label string) *Builder { return b.jump(label, FamShortJumpIfFalse) }

func (b *Builder) jump(label string, fam Family) *Builder {
	// Emit a placeholder short jump with distance patched at Method().
	var base Op
	switch fam {
	case FamShortJump:
		base = OpShortJump1
	case FamShortJumpIfTrue:
		base = OpShortJumpIfTrue1
	case FamShortJumpIfFalse:
		base = OpShortJumpIfFalse1
	}
	pos := len(b.m.Code)
	b.emit(base) // distance 1 placeholder
	b.fixups[pos] = fixup{label: label}
	return b
}

// Method finalizes the method: resolves jump fixups and validates.
func (b *Builder) Method() (*Method, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for pos, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("method %s: undefined label %q", b.m.Name, fx.label)
		}
		next := pos + 1 // short jumps have no operand bytes
		dist := target - next
		if dist < 1 || dist > 8 {
			return nil, fmt.Errorf("method %s: jump to %q distance %d not encodable as short jump", b.m.Name, fx.label, dist)
		}
		b.m.Code[pos] = b.m.Code[pos] + byte(dist-1)
	}
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustMethod is Method panicking on error; for tests and examples.
func (b *Builder) MustMethod() *Method {
	m, err := b.Method()
	if err != nil {
		panic(err)
	}
	return m
}
