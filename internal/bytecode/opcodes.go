// Package bytecode defines the virtual machine's byte-code instruction
// set, the compiled-method model, a method builder and a disassembler.
//
// The set follows the Pharo/OpenSmalltalk design: most opcodes are members
// of a family with the operand index embedded in the opcode itself
// (pushTemporaryVariable 0..11 are twelve distinct byte-codes of one
// family). Byte-codes are unsafe by design: they assume the operand stack
// and object shapes were validated by the compiler that produced them.
package bytecode

import "fmt"

// Op is a byte-code opcode.
type Op byte

// Family identifies a group of opcodes sharing one implementation with an
// embedded operand (paper §4.1: 255 byte-codes in 77 families; this VM has
// a representative subset).
type Family int

const (
	FamPushReceiverVariable Family = iota
	FamPushTemporaryVariable
	FamStoreReceiverVariable
	FamPopIntoReceiverVariable
	FamStoreTemporaryVariable
	FamPopIntoTemporaryVariable
	FamPushLiteralConstant
	FamPushReceiver
	FamPushConstant
	FamDuplicateTop
	FamPopStackTop
	FamNop
	FamPushThisContext
	FamPrimAdd
	FamPrimSubtract
	FamPrimMultiply
	FamPrimDivide
	FamPrimDiv
	FamPrimMod
	FamPrimBitAnd
	FamPrimBitOr
	FamPrimBitXor
	FamPrimBitShift
	FamPrimLessThan
	FamPrimGreaterThan
	FamPrimLessOrEqual
	FamPrimGreaterOrEqual
	FamPrimEqual
	FamPrimNotEqual
	FamPrimIdentical
	FamPrimNotIdentical
	FamPrimClass
	FamPrimSize
	FamPrimAt
	FamPrimAtPut
	FamShortJump
	FamShortJumpIfTrue
	FamShortJumpIfFalse
	FamLongJumpForward
	FamReturnSpecial
	FamReturnTop
	FamSend0Args
	FamSend1Arg
	FamSend2Args
	FamCallPrimitive

	NumFamilies
)

var familyNames = [NumFamilies]string{
	"pushReceiverVariable", "pushTemporaryVariable",
	"storeReceiverVariable", "popIntoReceiverVariable",
	"storeTemporaryVariable", "popIntoTemporaryVariable",
	"pushLiteralConstant", "pushReceiver", "pushConstant",
	"duplicateTop", "popStackTop", "nop", "pushThisContext",
	"primAdd", "primSubtract", "primMultiply", "primDivide",
	"primDiv", "primMod",
	"primBitAnd", "primBitOr", "primBitXor", "primBitShift",
	"primLessThan", "primGreaterThan", "primLessOrEqual",
	"primGreaterOrEqual", "primEqual", "primNotEqual",
	"primIdentical", "primNotIdentical",
	"primClass", "primSize", "primAt", "primAtPut",
	"shortJump", "shortJumpIfTrue", "shortJumpIfFalse",
	"longJumpForward",
	"returnSpecial", "returnTop",
	"sendLiteralSelector0Args", "sendLiteralSelector1Arg",
	"sendLiteralSelector2Args", "callPrimitive",
}

func (f Family) String() string {
	if f >= 0 && f < NumFamilies {
		return familyNames[f]
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// Opcode base values. Each family occupies a contiguous range.
const (
	OpPushReceiverVariable0     Op = 0  // ..15
	OpPushTemporaryVariable0    Op = 16 // ..27
	OpStoreReceiverVariable0    Op = 28 // ..35
	OpPopIntoReceiverVariable0  Op = 36 // ..43
	OpStoreTemporaryVariable0   Op = 44 // ..51
	OpPopIntoTemporaryVariable0 Op = 52 // ..59
	OpPushLiteralConstant0      Op = 60 // ..75
	OpPushReceiver              Op = 76
	OpPushConstantTrue          Op = 77
	OpPushConstantFalse         Op = 78
	OpPushConstantNil           Op = 79
	OpPushConstantZero          Op = 80
	OpPushConstantOne           Op = 81
	OpPushConstantMinusOne      Op = 82
	OpPushConstantTwo           Op = 83
	OpDuplicateTop              Op = 84
	OpPopStackTop               Op = 85
	OpNop                       Op = 86
	OpPushThisContext           Op = 87
	OpPrimAdd                   Op = 88
	OpPrimSubtract              Op = 89
	OpPrimMultiply              Op = 90
	OpPrimDivide                Op = 91
	OpPrimDiv                   Op = 92
	OpPrimMod                   Op = 93
	OpPrimBitAnd                Op = 94
	OpPrimBitOr                 Op = 95
	OpPrimBitXor                Op = 96
	OpPrimBitShift              Op = 97
	OpPrimLessThan              Op = 98
	OpPrimGreaterThan           Op = 99
	OpPrimLessOrEqual           Op = 100
	OpPrimGreaterOrEqual        Op = 101
	OpPrimEqual                 Op = 102
	OpPrimNotEqual              Op = 103
	OpPrimIdentical             Op = 104
	OpPrimNotIdentical          Op = 105
	OpPrimClass                 Op = 106
	OpPrimSize                  Op = 107
	OpPrimAt                    Op = 108
	OpPrimAtPut                 Op = 109
	OpShortJump1                Op = 110 // ..117, jump 1..8 bytes forward
	OpShortJumpIfTrue1          Op = 118 // ..125
	OpShortJumpIfFalse1         Op = 126 // ..133
	OpLongJumpForward0          Op = 134 // ..137, offset = base*256 + operand byte
	OpReturnReceiver            Op = 138
	OpReturnTrue                Op = 139
	OpReturnFalse               Op = 140
	OpReturnNil                 Op = 141
	OpReturnTop                 Op = 142
	OpSend0Args0                Op = 143 // ..158, selector literal 0..15
	OpSend1Arg0                 Op = 159 // ..174
	OpSend2Args0                Op = 175 // ..182, selector literal 0..7
	OpCallPrimitive             Op = 183 // two operand bytes: primitive index little-endian

	// NumOpcodes is one past the highest defined opcode.
	NumOpcodes = 184
)

// Descriptor describes one opcode: its family, the operand embedded in the
// opcode value, how many trailing operand bytes it consumes, and its
// mnemonic.
type Descriptor struct {
	Op           Op
	Family       Family
	Embedded     int // family-relative index embedded in the opcode value
	OperandBytes int
	Mnemonic     string
}

var descriptors [NumOpcodes]Descriptor

func defineRange(base Op, count int, fam Family, operandBytes int) {
	for i := 0; i < count; i++ {
		op := base + Op(i)
		mn := fam.String()
		if count > 1 {
			mn = fmt.Sprintf("%s%d", fam.String(), i)
		}
		descriptors[op] = Descriptor{Op: op, Family: fam, Embedded: i, OperandBytes: operandBytes, Mnemonic: mn}
	}
}

func define(op Op, fam Family, embedded, operandBytes int, mnemonic string) {
	descriptors[op] = Descriptor{Op: op, Family: fam, Embedded: embedded, OperandBytes: operandBytes, Mnemonic: mnemonic}
}

func init() {
	defineRange(OpPushReceiverVariable0, 16, FamPushReceiverVariable, 0)
	defineRange(OpPushTemporaryVariable0, 12, FamPushTemporaryVariable, 0)
	defineRange(OpStoreReceiverVariable0, 8, FamStoreReceiverVariable, 0)
	defineRange(OpPopIntoReceiverVariable0, 8, FamPopIntoReceiverVariable, 0)
	defineRange(OpStoreTemporaryVariable0, 8, FamStoreTemporaryVariable, 0)
	defineRange(OpPopIntoTemporaryVariable0, 8, FamPopIntoTemporaryVariable, 0)
	defineRange(OpPushLiteralConstant0, 16, FamPushLiteralConstant, 0)
	define(OpPushReceiver, FamPushReceiver, 0, 0, "pushReceiver")
	define(OpPushConstantTrue, FamPushConstant, 0, 0, "pushConstantTrue")
	define(OpPushConstantFalse, FamPushConstant, 1, 0, "pushConstantFalse")
	define(OpPushConstantNil, FamPushConstant, 2, 0, "pushConstantNil")
	define(OpPushConstantZero, FamPushConstant, 3, 0, "pushConstantZero")
	define(OpPushConstantOne, FamPushConstant, 4, 0, "pushConstantOne")
	define(OpPushConstantMinusOne, FamPushConstant, 5, 0, "pushConstantMinusOne")
	define(OpPushConstantTwo, FamPushConstant, 6, 0, "pushConstantTwo")
	define(OpDuplicateTop, FamDuplicateTop, 0, 0, "duplicateTop")
	define(OpPopStackTop, FamPopStackTop, 0, 0, "popStackTop")
	define(OpNop, FamNop, 0, 0, "nop")
	define(OpPushThisContext, FamPushThisContext, 0, 0, "pushThisContext")
	define(OpPrimAdd, FamPrimAdd, 0, 0, "primAdd")
	define(OpPrimSubtract, FamPrimSubtract, 0, 0, "primSubtract")
	define(OpPrimMultiply, FamPrimMultiply, 0, 0, "primMultiply")
	define(OpPrimDivide, FamPrimDivide, 0, 0, "primDivide")
	define(OpPrimDiv, FamPrimDiv, 0, 0, "primDiv")
	define(OpPrimMod, FamPrimMod, 0, 0, "primMod")
	define(OpPrimBitAnd, FamPrimBitAnd, 0, 0, "primBitAnd")
	define(OpPrimBitOr, FamPrimBitOr, 0, 0, "primBitOr")
	define(OpPrimBitXor, FamPrimBitXor, 0, 0, "primBitXor")
	define(OpPrimBitShift, FamPrimBitShift, 0, 0, "primBitShift")
	define(OpPrimLessThan, FamPrimLessThan, 0, 0, "primLessThan")
	define(OpPrimGreaterThan, FamPrimGreaterThan, 0, 0, "primGreaterThan")
	define(OpPrimLessOrEqual, FamPrimLessOrEqual, 0, 0, "primLessOrEqual")
	define(OpPrimGreaterOrEqual, FamPrimGreaterOrEqual, 0, 0, "primGreaterOrEqual")
	define(OpPrimEqual, FamPrimEqual, 0, 0, "primEqual")
	define(OpPrimNotEqual, FamPrimNotEqual, 0, 0, "primNotEqual")
	define(OpPrimIdentical, FamPrimIdentical, 0, 0, "primIdentical")
	define(OpPrimNotIdentical, FamPrimNotIdentical, 0, 0, "primNotIdentical")
	define(OpPrimClass, FamPrimClass, 0, 0, "primClass")
	define(OpPrimSize, FamPrimSize, 0, 0, "primSize")
	define(OpPrimAt, FamPrimAt, 0, 0, "primAt")
	define(OpPrimAtPut, FamPrimAtPut, 0, 0, "primAtPut")
	defineRange(OpShortJump1, 8, FamShortJump, 0)
	defineRange(OpShortJumpIfTrue1, 8, FamShortJumpIfTrue, 0)
	defineRange(OpShortJumpIfFalse1, 8, FamShortJumpIfFalse, 0)
	defineRange(OpLongJumpForward0, 4, FamLongJumpForward, 1)
	define(OpReturnReceiver, FamReturnSpecial, 0, 0, "returnReceiver")
	define(OpReturnTrue, FamReturnSpecial, 1, 0, "returnTrue")
	define(OpReturnFalse, FamReturnSpecial, 2, 0, "returnFalse")
	define(OpReturnNil, FamReturnSpecial, 3, 0, "returnNil")
	define(OpReturnTop, FamReturnTop, 0, 0, "returnTop")
	defineRange(OpSend0Args0, 16, FamSend0Args, 0)
	defineRange(OpSend1Arg0, 16, FamSend1Arg, 0)
	defineRange(OpSend2Args0, 8, FamSend2Args, 0)
	define(OpCallPrimitive, FamCallPrimitive, 0, 2, "callPrimitive")
}

// Describe returns the descriptor for op. Undefined opcodes return a
// zero-family descriptor with an empty mnemonic.
func Describe(op Op) Descriptor { return descriptors[op] }

// IsDefined reports whether op is part of the instruction set.
func IsDefined(op Op) bool {
	return int(op) < NumOpcodes && descriptors[op].Mnemonic != ""
}

// AllOpcodes returns every defined opcode in numeric order.
func AllOpcodes() []Op {
	var out []Op
	for op := 0; op < NumOpcodes; op++ {
		if IsDefined(Op(op)) {
			out = append(out, Op(op))
		}
	}
	return out
}

// JumpOffset returns the byte offset a jump opcode encodes relative to the
// PC after the full instruction (opcode + operand bytes). operand is the
// trailing operand byte for long jumps, ignored otherwise. ok is false for
// non-jump opcodes.
func JumpOffset(op Op, operand byte) (offset int, conditional, jumpOnTrue bool, ok bool) {
	d := Describe(op)
	switch d.Family {
	case FamShortJump:
		return d.Embedded + 1, false, false, true
	case FamShortJumpIfTrue:
		return d.Embedded + 1, true, true, true
	case FamShortJumpIfFalse:
		return d.Embedded + 1, true, false, true
	case FamLongJumpForward:
		return d.Embedded*256 + int(operand), false, false, true
	}
	return 0, false, false, false
}

// ArgCountOfSend returns the argument count of a send-family opcode, and
// whether op is a send.
func ArgCountOfSend(op Op) (int, bool) {
	switch Describe(op).Family {
	case FamSend0Args:
		return 0, true
	case FamSend1Arg:
		return 1, true
	case FamSend2Args:
		return 2, true
	}
	return 0, false
}
