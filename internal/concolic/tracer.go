package concolic

import (
	"cogdiff/internal/sym"
)

// tracer records the path conditions of one concolic execution. It
// implements interp.Tracer.
type tracer struct {
	u       *sym.Universe
	path    sym.Path
	assumed int // leading conditions correspond to the explorer's assumptions
}

func newTracer(u *sym.Universe, assumed int) *tracer {
	return &tracer{u: u, assumed: assumed}
}

// Record appends the condition that held on this execution.
func (t *tracer) Record(held sym.Constraint) {
	t.path = append(t.path, sym.Condition{C: held, Assumed: len(t.path) < t.assumed})
}

// SlotVar interns the input variable for a body slot of an input object.
func (t *tracer) SlotVar(owner sym.ValExpr, index int) (*sym.Var, bool) {
	ref, ok := owner.(sym.VarRef)
	if !ok {
		return nil, false
	}
	return t.u.Slot(ref.V, index), true
}
