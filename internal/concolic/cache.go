package concolic

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/sym"
)

// Exploration results can be cached and reused multiple times (§5.4): the
// differential tester only needs each path's solver witness, exit
// condition and the variable universe, all of which serialize. This file
// implements a JSON round trip so explorations survive across processes
// (the CLI reuses them between `explore` and `difftest` invocations).

type varDTO struct {
	ID      int `json:"id"`
	Kind    int `json:"kind"`
	Index   int `json:"index"`
	OwnerID int `json:"owner"`
}

type valueDTO struct {
	Kind       int     `json:"kind"`
	Int        int64   `json:"int,omitempty"`
	Float      float64 `json:"float,omitempty"`
	ClassIndex int     `json:"class,omitempty"`
	Format     uint8   `json:"format,omitempty"`
	SlotCount  int     `json:"slots,omitempty"`
}

type modelDTO struct {
	StackSize int                 `json:"stackSize"`
	Values    map[string]valueDTO `json:"values,omitempty"`
	Alias     map[string]int      `json:"alias,omitempty"`
}

type exitDTO struct {
	Kind     int    `json:"kind"`
	NextPC   int    `json:"nextPC,omitempty"`
	Selector string `json:"selector,omitempty"`
	NumArgs  int    `json:"numArgs,omitempty"`
	FailCode int    `json:"failCode,omitempty"`
}

type pathDTO struct {
	Constraints []string `json:"constraints"`
	Model       modelDTO `json:"model"`
	Exit        exitDTO  `json:"exit"`
}

type explorationDTO struct {
	Name       string    `json:"name"`
	Kind       int       `json:"kind"`
	PrimIndex  int       `json:"primIndex,omitempty"`
	PrimArgs   int       `json:"primArgs,omitempty"`
	Opcode     int       `json:"opcode,omitempty"`
	Vars       []varDTO  `json:"vars"`
	Paths      []pathDTO `json:"paths"`
	CuratedOut int       `json:"curatedOut"`
	Iterations int       `json:"iterations"`
	DurationNS int64     `json:"durationNs"`
}

// MarshalExploration serializes an exploration. Constraint paths are
// stored in display form (sufficient for reporting and signature-based
// deduplication); solver witnesses round-trip exactly, so cached
// explorations drive differential testing unchanged.
func MarshalExploration(ex *Exploration) ([]byte, error) {
	dto := explorationDTO{
		Name:       ex.Target.Name,
		Kind:       int(ex.Target.Kind),
		PrimIndex:  ex.Target.PrimIndex,
		PrimArgs:   ex.Target.PrimNumArgs,
		Opcode:     int(ex.Target.Op),
		CuratedOut: ex.CuratedOut,
		Iterations: ex.Iterations,
		DurationNS: ex.Duration.Nanoseconds(),
	}
	for _, v := range ex.Universe.Vars() {
		dto.Vars = append(dto.Vars, varDTO{
			ID: v.ID, Kind: int(v.Role.Kind), Index: v.Role.Index, OwnerID: v.Role.OwnerID,
		})
	}
	for _, p := range ex.Paths {
		pd := pathDTO{
			Model: modelDTO{
				StackSize: p.Model.StackSize,
				Values:    map[string]valueDTO{},
				Alias:     map[string]int{},
			},
			Exit: exitDTO{
				Kind: int(p.Exit.Kind), NextPC: p.Exit.NextPC,
				Selector: p.Exit.Selector, NumArgs: p.Exit.NumArgs,
				FailCode: p.Exit.FailCode,
			},
		}
		for _, c := range p.Path {
			pd.Constraints = append(pd.Constraints, c.C.String())
		}
		for id, tv := range p.Model.Values {
			pd.Model.Values[fmt.Sprint(id)] = valueDTO{
				Kind: int(tv.Kind), Int: tv.Int, Float: tv.Float,
				ClassIndex: tv.ClassIndex, Format: uint8(tv.Format), SlotCount: tv.SlotCount,
			}
		}
		for id, rep := range p.Model.Alias {
			pd.Model.Alias[fmt.Sprint(id)] = rep
		}
		dto.Paths = append(dto.Paths, pd)
	}
	return json.MarshalIndent(dto, "", " ")
}

// UnmarshalExploration reconstructs an exploration from MarshalExploration
// output. Constraint paths come back as opaque display strings carried in
// sym.Bool-wrapped markers — signatures and reports keep working; the
// witnesses, exits and variable universe are exact.
func UnmarshalExploration(data []byte) (*Exploration, error) {
	var dto explorationDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, err
	}
	var target Target
	switch TargetKind(dto.Kind) {
	case TargetBytecode:
		target = BytecodeTarget(byteOp(dto.Opcode))
	case TargetNativeMethod:
		target = NativeMethodTarget(dto.PrimIndex, dto.Name, dto.PrimArgs)
	default:
		return nil, fmt.Errorf("concolic: unknown target kind %d", dto.Kind)
	}
	u := sym.NewUniverse()
	for _, v := range dto.Vars {
		got := u.Of(sym.Role{Kind: sym.RoleKind(v.Kind), Index: v.Index, OwnerID: v.OwnerID})
		if got.ID != v.ID {
			return nil, fmt.Errorf("concolic: variable id drift (%d became %d)", v.ID, got.ID)
		}
	}
	ex := &Exploration{
		Target:     target,
		Universe:   u,
		CuratedOut: dto.CuratedOut,
		Iterations: dto.Iterations,
	}
	ex.Duration = durationFromNS(dto.DurationNS)
	for _, pd := range dto.Paths {
		model := sym.NewModel()
		model.StackSize = pd.Model.StackSize
		for idStr, v := range pd.Model.Values {
			var id int
			if _, err := fmt.Sscan(idStr, &id); err != nil {
				return nil, err
			}
			model.Set(id, sym.TypedValue{
				Kind: sym.TypeKind(v.Kind), Int: v.Int, Float: v.Float,
				ClassIndex: v.ClassIndex, Format: heap.Format(v.Format), SlotCount: v.SlotCount,
			})
		}
		for idStr, rep := range pd.Model.Alias {
			var id int
			if _, err := fmt.Sscan(idStr, &id); err != nil {
				return nil, err
			}
			model.Alias[id] = rep
		}
		pr := &PathResult{
			Model: model,
			Exit: interp.Exit{
				Kind: interp.ExitKind(pd.Exit.Kind), NextPC: pd.Exit.NextPC,
				Selector: pd.Exit.Selector, NumArgs: pd.Exit.NumArgs,
				FailCode: pd.Exit.FailCode,
			},
		}
		for _, c := range pd.Constraints {
			pr.Path = append(pr.Path, sym.Condition{C: sym.Opaque{Text: c}})
		}
		ex.Paths = append(ex.Paths, pr)
	}
	return ex, nil
}

// FingerprintExploration hashes the semantic content of an exploration:
// the target descriptor, variable universe, and every path's constraint
// strings, witness and exit condition. Wall-clock duration is excluded,
// so a fresh exploration and its cache round trip fingerprint
// identically (constraints serialize to the same display strings either
// way, and encoding/json emits map keys sorted). The differential tester
// consumes exactly this content, which makes the fingerprint a sound
// cache key for derived test-unit results (internal/excache).
func FingerprintExploration(ex *Exploration) (string, error) {
	data, err := MarshalExploration(ex)
	if err != nil {
		return "", err
	}
	var dto explorationDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return "", err
	}
	dto.DurationNS = 0
	canon, err := json.Marshal(dto)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

func byteOp(op int) bytecode.Op { return bytecode.Op(op) }

func durationFromNS(ns int64) time.Duration { return time.Duration(ns) }
