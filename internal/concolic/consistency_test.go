package concolic

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/primitives"
	"cogdiff/internal/solver"
)

// sweepTargets returns a broad mix of byte-code and native-method targets.
func sweepTargets() []Target {
	var out []Target
	for _, op := range bytecode.AllOpcodes() {
		d := bytecode.Describe(op)
		if d.Family == bytecode.FamCallPrimitive {
			continue
		}
		out = append(out, BytecodeTarget(op))
	}
	for _, p := range primitives.NewTable().All() {
		out = append(out, NativeMethodTarget(p.Index, p.Name, p.NumArgs))
	}
	return out
}

// TestRefinedModelsReplayTheirPath is the explorer's core soundness
// property: re-executing the interpreter concretely on a path's stored
// witness must reproduce exactly the recorded constraint path and exit
// condition, for every path of every instruction in the VM.
func TestRefinedModelsReplayTheirPath(t *testing.T) {
	prims := primitives.NewTable()
	explorer := NewExplorer(prims, DefaultOptions())
	for _, target := range sweepTargets() {
		ex := explorer.Explore(target)
		for i, p := range ex.Paths {
			om := heap.NewBootedObjectMemory()
			b := NewFrameBuilder(om, ex.Universe, p.Model)
			frame, err := b.BuildFrame(target)
			if err != nil {
				t.Errorf("%s path %d: frame build failed: %v", target.Name, i, err)
				continue
			}
			tr := newTracer(ex.Universe, 0)
			ctx := interp.NewCtx(om, frame, target.Method)
			ctx.Tracer = tr
			ctx.Primitives = prims
			exit := target.run(ctx, prims)
			if exit.Kind != p.Exit.Kind {
				t.Errorf("%s path %d: replay exit %v, recorded %v (witness %s)",
					target.Name, i, exit, p.Exit, p.Model)
				continue
			}
			if got, want := tr.path.Signature(), p.Path.Signature(); got != want {
				t.Errorf("%s path %d: replay diverged\n got: %s\nwant: %s\nwitness: %s",
					target.Name, i, got, want, p.Model)
			}
		}
	}
}

// TestModelsSatisfyTheirConstraints: every stored witness must pass the
// solver's independent checker against the recorded constraints.
func TestModelsSatisfyTheirConstraints(t *testing.T) {
	prims := primitives.NewTable()
	explorer := NewExplorer(prims, DefaultOptions())
	for _, target := range sweepTargets() {
		ex := explorer.Explore(target)
		for i, p := range ex.Paths {
			if err := solver.Check(ex.Universe, p.Model, p.Path.Constraints()); !err {
				t.Errorf("%s path %d: witness %s violates %s", target.Name, i, p.Model, p.Path)
			}
		}
	}
}

// TestPathsAreDistinct: no two paths of one instruction share a
// constraint signature.
func TestPathsAreDistinct(t *testing.T) {
	prims := primitives.NewTable()
	explorer := NewExplorer(prims, DefaultOptions())
	for _, target := range sweepTargets() {
		ex := explorer.Explore(target)
		seen := map[string]int{}
		for i, p := range ex.Paths {
			sig := p.Path.Signature()
			if j, dup := seen[sig]; dup {
				t.Errorf("%s: paths %d and %d share signature %s", target.Name, j, i, sig)
			}
			seen[sig] = i
		}
	}
}

// TestExitConditionCoverage: across the whole instruction set the
// exploration must exercise every exit condition of §3.4.
func TestExitConditionCoverage(t *testing.T) {
	prims := primitives.NewTable()
	explorer := NewExplorer(prims, DefaultOptions())
	kinds := map[interp.ExitKind]bool{}
	for _, target := range sweepTargets() {
		for _, p := range explorer.Explore(target).Paths {
			kinds[p.Exit.Kind] = true
		}
	}
	for _, want := range []interp.ExitKind{
		interp.ExitSuccess, interp.ExitFailure, interp.ExitMessageSend,
		interp.ExitMethodReturn, interp.ExitInvalidFrame, interp.ExitInvalidMemoryAccess,
	} {
		if !kinds[want] {
			t.Errorf("exit condition %v never exercised", want)
		}
	}
}
