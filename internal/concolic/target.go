// Package concolic implements concolic meta-interpretation of the VM
// interpreter (§2.3, §3): it executes VM instructions repeatedly with
// solver-generated inputs, records the semantic path conditions of each
// execution, and negates conditions to discover every execution path of an
// instruction. Each discovered path carries copies of the abstract input
// and output frames plus the instruction's exit condition, which the
// differential tester (internal/core) replays against the JIT compilers.
package concolic

import (
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/interp"
)

// TargetKind distinguishes the two instruction kinds of §3.1.
type TargetKind int

const (
	// TargetBytecode explores a byte-code instruction.
	TargetBytecode TargetKind = iota
	// TargetNativeMethod explores a native method (primitive).
	TargetNativeMethod
)

func (k TargetKind) String() string {
	if k == TargetBytecode {
		return "bytecode"
	}
	return "nativeMethod"
}

// Target is one VM instruction under test.
type Target struct {
	Kind TargetKind
	Name string

	// Method holds the single instruction at PC 0 for byte-code targets.
	Method *bytecode.Method
	// Op is the byte-code opcode (byte-code targets).
	Op bytecode.Op

	// PrimIndex and PrimNumArgs describe native-method targets.
	PrimIndex   int
	PrimNumArgs int
}

// BytecodeTarget synthesizes the test method for one opcode: the method
// holds exactly that instruction (with operand bytes) and declares enough
// temporaries and literals for its embedded index to be valid.
func BytecodeTarget(op bytecode.Op) Target {
	d := bytecode.Describe(op)
	m := &bytecode.Method{Name: d.Mnemonic}
	m.Code = append(m.Code, byte(op))
	for i := 0; i < d.OperandBytes; i++ {
		// Long jump offsets of zero keep synthesized methods decodable.
		m.Code = append(m.Code, 0)
	}
	switch d.Family {
	case bytecode.FamPushTemporaryVariable, bytecode.FamStoreTemporaryVariable, bytecode.FamPopIntoTemporaryVariable:
		m.NumTemps = d.Embedded + 1
	case bytecode.FamPushLiteralConstant:
		for len(m.Literals) <= d.Embedded {
			m.Literals = append(m.Literals, bytecode.IntLiteral(int64(100+len(m.Literals))))
		}
	case bytecode.FamSend0Args, bytecode.FamSend1Arg, bytecode.FamSend2Args:
		for len(m.Literals) <= d.Embedded {
			m.Literals = append(m.Literals, bytecode.SelectorLiteral(fmt.Sprintf("selector%d", len(m.Literals))))
		}
	case bytecode.FamLongJumpForward:
		// Give forward jumps somewhere to land.
		m.Code = append(m.Code, byte(bytecode.OpNop))
	}
	// Short jumps need in-range targets too.
	if off, _, _, isJump := bytecode.JumpOffset(op, 0); isJump {
		for len(m.Code) < 1+d.OperandBytes+off {
			m.Code = append(m.Code, byte(bytecode.OpNop))
		}
	}
	return Target{Kind: TargetBytecode, Name: d.Mnemonic, Method: m, Op: op}
}

// NativeMethodTarget describes a primitive under test.
func NativeMethodTarget(index int, name string, numArgs int) Target {
	return Target{Kind: TargetNativeMethod, Name: name, PrimIndex: index, PrimNumArgs: numArgs}
}

// run executes the target once against ctx and returns the exit condition.
func (t Target) run(ctx *interp.Ctx, prims interp.PrimitiveTable) interp.Exit {
	if t.Kind == TargetBytecode {
		return interp.RunInstruction(ctx)
	}
	return interp.RunPrimitive(ctx, prims, t.PrimIndex)
}
