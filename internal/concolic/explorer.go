package concolic

import (
	"errors"
	"time"

	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/solver"
	"cogdiff/internal/sym"
	"cogdiff/internal/telemetry"
)

// PathResult is one discovered execution path of an instruction: the model
// that reaches it, the recorded path conditions, the exit condition and
// copies of the abstract input and output frames (§3.2).
type PathResult struct {
	Path  sym.Path
	Model *sym.Model
	Exit  interp.Exit

	// InputFrame and OutputFrame are deep copies taken before and after
	// the execution; instructions have side effects, so they must be
	// distinct objects.
	InputFrame  *interp.Frame
	OutputFrame *interp.Frame
}

// Exploration is the full concolic exploration of one instruction.
type Exploration struct {
	Target   Target
	Universe *sym.Universe
	// Paths are the supported execution paths, in discovery order.
	Paths []*PathResult
	// CuratedOut counts paths dropped because the prototype cannot handle
	// them: solver-unsupported constraints (bitwise), over-complex
	// formulas, or instructions marked unsupported (§5.2).
	CuratedOut int
	// Iterations is the number of concolic executions performed.
	Iterations int
	// Duration is the wall-clock exploration time (Fig. 6).
	Duration time.Duration
}

// Options tunes an exploration.
type Options struct {
	// MaxIterations bounds the number of concolic executions per
	// instruction (runaway protection; generous by default).
	MaxIterations int
	// InterpreterDefects forwards seeded interpreter defects.
	InterpreterDefects interp.DefectSwitches
	// Metrics, when non-nil, counts solver invocations. Exploration
	// results are unaffected; the counter is a pure sink.
	Metrics *telemetry.Registry
	// NoReuse disables the booted-object-memory pool: every concolic
	// execution boots a fresh heap. Booting is deterministic, so results
	// are byte-identical either way; the determinism suite flips this to
	// pin that claim.
	NoReuse bool
}

// DefaultOptions returns the standard exploration settings.
func DefaultOptions() Options {
	return Options{MaxIterations: 400}
}

// Explorer drives concolic path exploration over VM instructions.
type Explorer struct {
	Prims interp.PrimitiveTable
	Opts  Options

	solverCalls *telemetry.Counter // resolved once; nil when metrics are off
}

// NewExplorer builds an explorer using the given native-method table.
func NewExplorer(prims interp.PrimitiveTable, opts Options) *Explorer {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = DefaultOptions().MaxIterations
	}
	return &Explorer{
		Prims:       prims,
		Opts:        opts,
		solverCalls: opts.Metrics.Counter(telemetry.MetricSolverCalls),
	}
}

// workItem is a constraint prefix scheduled for solving.
type workItem struct {
	assumptions []sym.Constraint
}

func signatureOf(cs []sym.Constraint) string {
	s := ""
	for i, c := range cs {
		if i > 0 {
			s += "&"
		}
		s += c.String()
	}
	return s
}

// Explore discovers the execution paths of one instruction: the classic
// concolic loop of §2.3, except it never stops at errors — every exit
// condition is a first-class result.
func (e *Explorer) Explore(t Target) *Exploration {
	start := time.Now() //cogdiff:allow-nondeterminism exploration timing feeds telemetry histograms only
	u := sym.NewUniverse()
	ex := &Exploration{Target: t, Universe: u}

	worklist := []workItem{{}}
	seenPaths := map[string]bool{}
	tried := map[string]bool{"": true}

	for len(worklist) > 0 && ex.Iterations < e.Opts.MaxIterations {
		item := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]

		e.solverCalls.Inc()
		model, err := solver.Solve(u, item.assumptions)
		if err != nil {
			if !errors.Is(err, solver.ErrUnsat) {
				// Bitwise or over-complex constraints: curated out, like
				// the paths the paper's prototype cannot initialize.
				ex.CuratedOut++
			}
			continue
		}

		res, runErr := e.runOnce(t, u, model, len(item.assumptions))
		ex.Iterations++
		if runErr != nil {
			ex.CuratedOut++
			continue
		}

		sig := res.Path.Signature()
		if !seenPaths[sig] {
			seenPaths[sig] = true
			if res.Exit.Kind == interp.ExitUnsupported {
				ex.CuratedOut++
			} else {
				// Refine the witness: solve the full recorded path so the
				// stored model is the canonical solver witness for every
				// condition (the concrete values of Table 1), not just
				// the parent prefix.
				e.solverCalls.Inc()
				if refined, err := solver.Solve(u, res.Path.Constraints()); err == nil {
					res.Model = refined
				}
				ex.Paths = append(ex.Paths, res)
			}
		}

		// Generational expansion: negate every recorded condition beyond
		// the assumed prefix.
		prefix := res.Path.Constraints()
		for i := len(item.assumptions); i < len(prefix); i++ {
			child := make([]sym.Constraint, 0, i+1)
			child = append(child, prefix[:i]...)
			child = append(child, sym.Negate(prefix[i]))
			csig := signatureOf(child)
			if !tried[csig] {
				tried[csig] = true
				worklist = append(worklist, workItem{assumptions: child})
			}
		}
	}
	ex.Duration = time.Since(start) //cogdiff:allow-nondeterminism exploration timing feeds telemetry histograms only
	return ex
}

// runOnce performs one concolic execution under a model. The execution
// borrows a pooled booted object memory (the result captures frames and
// path data by value, never the memory itself) and releases it on normal
// return; a contained panic abandons it to the GC instead.
func (e *Explorer) runOnce(t Target, u *sym.Universe, model *sym.Model, assumed int) (*PathResult, error) {
	var om *heap.ObjectMemory
	if e.Opts.NoReuse {
		om = heap.NewBootedObjectMemory()
	} else {
		om = heap.AcquireBooted()
	}
	b := NewFrameBuilder(om, u, model)
	frame, err := b.BuildFrame(t)
	if err != nil {
		if !e.Opts.NoReuse {
			heap.ReleaseBooted(om)
		}
		return nil, err
	}
	input := frame.Clone()

	tr := newTracer(u, assumed)
	ctx := interp.NewCtx(om, frame, t.Method)
	ctx.Tracer = tr
	ctx.Primitives = e.Prims
	ctx.InterpreterDefects = e.Opts.InterpreterDefects

	exit := t.run(ctx, e.Prims)
	res := &PathResult{
		Path:        tr.path,
		Model:       model,
		Exit:        exit,
		InputFrame:  input,
		OutputFrame: frame.Clone(),
	}
	if !e.Opts.NoReuse {
		heap.ReleaseBooted(om)
	}
	return res, nil
}
