package concolic

import (
	"strings"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/primitives"
	"cogdiff/internal/sym"
)

func explore(t *testing.T, target Target) *Exploration {
	t.Helper()
	e := NewExplorer(primitives.NewTable(), DefaultOptions())
	return e.Explore(target)
}

// exitKinds collects the multiset of exit kinds of an exploration.
func exitKinds(ex *Exploration) map[interp.ExitKind]int {
	out := map[interp.ExitKind]int{}
	for _, p := range ex.Paths {
		out[p.Exit.Kind]++
	}
	return out
}

// TestExploreAddBytecode reproduces Table 1 / Fig. 2: the add byte-code has
// the invalid-frame paths (empty and one-element stack), the int+int
// success path, the overflow path, and the three type-mismatch send paths.
func TestExploreAddBytecode(t *testing.T) {
	ex := explore(t, BytecodeTarget(bytecode.OpPrimAdd))
	kinds := exitKinds(ex)

	if kinds[interp.ExitInvalidFrame] == 0 {
		t.Error("missing invalid-frame path")
	}
	if kinds[interp.ExitSuccess] < 2 {
		t.Errorf("expected int and float success paths, got %d", kinds[interp.ExitSuccess])
	}
	if kinds[interp.ExitMessageSend] < 3 {
		t.Errorf("expected overflow + type-mismatch send paths, got %d", kinds[interp.ExitMessageSend])
	}

	// The int+int success path must carry the Table 1 conditions.
	var successPath *PathResult
	for _, p := range ex.Paths {
		if p.Exit.Kind == interp.ExitSuccess && strings.Contains(p.Path.String(), "isIntegerValue") {
			successPath = p
			break
		}
	}
	if successPath == nil {
		t.Fatal("no small-integer success path found")
	}
	s := successPath.Path.String()
	for _, want := range []string{"operand_stack_size >= 2", "isSmallInteger(s0)", "isSmallInteger(s1)", "isIntegerValue"} {
		if !strings.Contains(s, want) {
			t.Errorf("success path misses condition %q: %s", want, s)
		}
	}
	// Its output frame has one element: the sum.
	if successPath.OutputFrame.Size() != 1 {
		t.Errorf("success output stack size %d", successPath.OutputFrame.Size())
	}
	a, _ := successPath.Model.ValueOf(ex.Universe.Stack(0))
	b, _ := successPath.Model.ValueOf(ex.Universe.Stack(1))
	if got := successPath.OutputFrame.Stack[0].W; got != heap.SmallIntFor(a.Int+b.Int) {
		t.Errorf("output %v is not the sum of %d and %d", got, a.Int, b.Int)
	}

	// An overflow path exists: both ints, sum out of range.
	foundOverflow := false
	for _, p := range ex.Paths {
		if p.Exit.Kind != interp.ExitMessageSend {
			continue
		}
		av, aok := p.Model.ValueOf(ex.Universe.Stack(0))
		bv, bok := p.Model.ValueOf(ex.Universe.Stack(1))
		if aok && bok && av.Kind == sym.KindSmallInt && bv.Kind == sym.KindSmallInt &&
			!heap.IsIntegerValue(av.Int+bv.Int) {
			foundOverflow = true
		}
	}
	if !foundOverflow {
		t.Error("no overflow witness discovered")
	}
}

func TestExplorePushConstantSinglePath(t *testing.T) {
	ex := explore(t, BytecodeTarget(bytecode.OpPushConstantOne))
	if len(ex.Paths) != 1 {
		t.Fatalf("pushConstant should have exactly 1 path, got %d", len(ex.Paths))
	}
	if ex.Paths[0].Exit.Kind != interp.ExitSuccess {
		t.Fatalf("exit %v", ex.Paths[0].Exit)
	}
}

func TestExplorePopPaths(t *testing.T) {
	ex := explore(t, BytecodeTarget(bytecode.OpPopStackTop))
	// Two paths: empty stack (invalid frame) and one-element stack.
	kinds := exitKinds(ex)
	if kinds[interp.ExitInvalidFrame] != 1 || kinds[interp.ExitSuccess] != 1 {
		t.Fatalf("pop paths: %v", kinds)
	}
}

func TestExplorePushReceiverVariable(t *testing.T) {
	ex := explore(t, BytecodeTarget(bytecode.OpPushReceiverVariable0+2))
	kinds := exitKinds(ex)
	// Receiver without 3 slots -> invalid memory access; with slots -> success.
	if kinds[interp.ExitInvalidMemoryAccess] == 0 {
		t.Error("missing invalid-memory path")
	}
	if kinds[interp.ExitSuccess] == 0 {
		t.Error("missing success path")
	}
	// The success path's model must give the receiver at least 3 slots.
	for _, p := range ex.Paths {
		if p.Exit.Kind == interp.ExitSuccess {
			tv, ok := p.Model.ValueOf(ex.Universe.Receiver())
			if !ok || tv.SlotCount < 3 {
				t.Errorf("success model receiver: %v (ok=%t)", tv, ok)
			}
		}
	}
}

func TestExploreJumpIfTrue(t *testing.T) {
	ex := explore(t, BytecodeTarget(bytecode.OpShortJumpIfTrue1))
	kinds := exitKinds(ex)
	// Paths: invalid frame, jump on true, fall through on false, and the
	// mustBeBoolean send.
	if kinds[interp.ExitSuccess] < 2 {
		t.Errorf("expected both branch paths: %v", kinds)
	}
	if kinds[interp.ExitMessageSend] != 1 {
		t.Errorf("expected mustBeBoolean path: %v", kinds)
	}
	foundMBB := false
	for _, p := range ex.Paths {
		if p.Exit.Kind == interp.ExitMessageSend && p.Exit.Selector == "mustBeBoolean" {
			foundMBB = true
		}
	}
	if !foundMBB {
		t.Error("mustBeBoolean selector missing")
	}
}

func TestExploreReturnTop(t *testing.T) {
	ex := explore(t, BytecodeTarget(bytecode.OpReturnTop))
	kinds := exitKinds(ex)
	if kinds[interp.ExitMethodReturn] != 1 || kinds[interp.ExitInvalidFrame] != 1 {
		t.Fatalf("returnTop paths: %v", kinds)
	}
}

func TestExplorePushThisContextCurated(t *testing.T) {
	ex := explore(t, BytecodeTarget(bytecode.OpPushThisContext))
	if len(ex.Paths) != 0 || ex.CuratedOut == 0 {
		t.Fatalf("pushThisContext must be curated out: paths=%d curated=%d", len(ex.Paths), ex.CuratedOut)
	}
}

// TestExploreNativeAdd checks the native integer add: bad receiver, bad
// argument, overflow failure, success.
func TestExploreNativeAdd(t *testing.T) {
	ex := explore(t, NativeMethodTarget(primitives.PrimIdxAdd, "primitiveAdd", 1))
	kinds := exitKinds(ex)
	if kinds[interp.ExitSuccess] == 0 {
		t.Error("missing success path")
	}
	if kinds[interp.ExitFailure] < 3 {
		t.Errorf("expected >=3 failure paths (receiver, argument, overflow), got %v", kinds)
	}
	// Failure codes distinguish causes.
	codes := map[int]bool{}
	for _, p := range ex.Paths {
		if p.Exit.Kind == interp.ExitFailure {
			codes[p.Exit.FailCode] = true
		}
	}
	for _, want := range []int{primitives.FailBadReceiver, primitives.FailBadArgument, primitives.FailOutOfRange} {
		if !codes[want] {
			t.Errorf("missing failure code %d; got %v", want, codes)
		}
	}
}

// TestExploreNativeAt covers the bounds-checked at: primitive.
func TestExploreNativeAt(t *testing.T) {
	ex := explore(t, NativeMethodTarget(primitives.PrimIdxAt, "primitiveAt", 1))
	kinds := exitKinds(ex)
	if kinds[interp.ExitSuccess] == 0 {
		t.Errorf("missing success path: %v", kinds)
	}
	if kinds[interp.ExitFailure] < 3 {
		t.Errorf("expected several failure paths, got %v", kinds)
	}
	// The success model must be an indexable receiver with an in-bounds
	// integer index.
	for _, p := range ex.Paths {
		if p.Exit.Kind != interp.ExitSuccess {
			continue
		}
		r, _ := p.Model.ValueOf(ex.Universe.Receiver())
		i, _ := p.Model.ValueOf(ex.Universe.Arg(0))
		if !r.Format.IsIndexable() {
			t.Errorf("success receiver not indexable: %v", r)
		}
		if i.Kind != sym.KindSmallInt || i.Int < 1 || i.Int > int64(r.SlotCount) {
			t.Errorf("success index out of bounds: %v of %v", i, r)
		}
	}
}

// TestExploreBitShiftHasManyPaths checks that deeply guarded instructions
// enumerate their full path fan-out.
func TestExploreBitShiftHasManyPaths(t *testing.T) {
	ex := explore(t, NativeMethodTarget(primitives.PrimIdxBitShift, "primitiveBitShift", 1))
	if len(ex.Paths) < 6 {
		t.Fatalf("bitShift should have many paths, got %d", len(ex.Paths))
	}
}

// TestInputFramesAreCopies verifies §3.2: executing an instruction must not
// mutate the stored input frame.
func TestInputFramesAreCopies(t *testing.T) {
	ex := explore(t, BytecodeTarget(bytecode.OpPrimAdd))
	for _, p := range ex.Paths {
		if p.Exit.Kind != interp.ExitSuccess {
			continue
		}
		if p.InputFrame.Size() == p.OutputFrame.Size() {
			t.Errorf("input frame shares size with output after push/pop: in=%d out=%d",
				p.InputFrame.Size(), p.OutputFrame.Size())
		}
	}
}

// TestExplorationDeterminism: same target explored twice yields identical
// path signatures, which the differential tester relies on for caching.
func TestExplorationDeterminism(t *testing.T) {
	a := explore(t, BytecodeTarget(bytecode.OpPrimAdd))
	b := explore(t, BytecodeTarget(bytecode.OpPrimAdd))
	if len(a.Paths) != len(b.Paths) {
		t.Fatalf("path counts differ: %d vs %d", len(a.Paths), len(b.Paths))
	}
	for i := range a.Paths {
		if a.Paths[i].Path.Signature() != b.Paths[i].Path.Signature() {
			t.Fatalf("path %d signature differs", i)
		}
	}
}
