package concolic

import (
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/sym"
)

// FrameBuilder materializes concrete VM values from a solver model,
// interpreting the abstract frame structure (§3.2: "re-creating a VM input
// implies interpreting the results of the constraint solver using the
// structural information in the VM object constraints"). The same builder
// serves the concolic executions and the differential tester's concrete
// JIT frames, guaranteeing both see equivalent inputs.
type FrameBuilder struct {
	OM    *heap.ObjectMemory
	U     *sym.Universe
	Model *sym.Model

	cache map[int]heap.Word // rep var ID -> materialized word
}

// NewFrameBuilder prepares a builder over a fresh object memory.
func NewFrameBuilder(om *heap.ObjectMemory, u *sym.Universe, model *sym.Model) *FrameBuilder {
	return &FrameBuilder{OM: om, U: u, Model: model, cache: make(map[int]heap.Word)}
}

// ValueFor materializes the value of one input variable, carrying the
// symbolic reference so the tracer can relate accesses back to it.
func (b *FrameBuilder) ValueFor(v *sym.Var) (interp.Value, error) {
	w, err := b.wordFor(v)
	if err != nil {
		return interp.Value{}, err
	}
	return interp.Value{W: w, Sym: sym.VarRef{V: v}}, nil
}

func (b *FrameBuilder) wordFor(v *sym.Var) (heap.Word, error) {
	rep := b.Model.Rep(v.ID)
	if w, ok := b.cache[rep]; ok {
		return w, nil
	}
	tv, assigned := b.Model.ValueOf(v)
	if !assigned {
		// Unconstrained inputs materialize as plain objects ("s2 = obj"
		// in Fig. 2): the least likely witness to satisfy type checks.
		tv = sym.TypedValue{Kind: sym.KindPointer, ClassIndex: heap.ClassIndexObject, Format: heap.FormatFixed}
	}
	w, err := b.materialize(v, tv)
	if err != nil {
		return 0, err
	}
	b.cache[rep] = w
	return w, nil
}

func (b *FrameBuilder) materialize(v *sym.Var, tv sym.TypedValue) (heap.Word, error) {
	switch tv.Kind {
	case sym.KindSmallInt:
		return heap.SmallIntFor(tv.Int), nil
	case sym.KindFloat:
		return b.OM.NewFloat(tv.Float)
	case sym.KindNil:
		return b.OM.NilObj, nil
	case sym.KindTrue:
		return b.OM.TrueObj, nil
	case sym.KindFalse:
		return b.OM.FalseObj, nil
	}

	oop, err := b.OM.Allocate(tv.ClassIndex, tv.Format, tv.SlotCount)
	if err != nil {
		return 0, err
	}
	// Fill the slots the model constrains; the rest keep their default
	// (nil for pointer formats, zero for raw formats).
	for i := 0; i < tv.SlotCount; i++ {
		sv, exists := b.slotVarOf(v, i)
		if !exists {
			continue
		}
		stv, ok := b.Model.ValueOf(sv)
		if !ok {
			continue
		}
		var raw heap.Word
		if tv.Format == heap.FormatBytes || tv.Format == heap.FormatWords {
			// Raw formats store untagged data.
			raw = heap.Word(stv.Int)
		} else {
			raw, err = b.wordFor(sv)
			if err != nil {
				return 0, err
			}
		}
		if err := b.OM.StoreSlot(oop, i, raw); err != nil {
			return 0, err
		}
	}
	return oop, nil
}

// slotVarOf finds an interned slot variable for (owner, index), looking
// through both the owner itself and its model representative.
func (b *FrameBuilder) slotVarOf(owner *sym.Var, index int) (*sym.Var, bool) {
	ids := []int{owner.ID}
	if rep := b.Model.Rep(owner.ID); rep != owner.ID {
		ids = append(ids, rep)
	}
	for _, id := range ids {
		for _, v := range b.U.Vars() {
			if v.Role.Kind == sym.RoleSlot && v.Role.OwnerID == id && v.Role.Index == index {
				return v, true
			}
		}
	}
	return nil, false
}

// InputObjects maps each materialized heap value back to the model
// representative it realizes. The differential tester uses it to identify
// "the same input object" across independently built frames.
func (b *FrameBuilder) InputObjects() map[heap.Word]int {
	out := make(map[heap.Word]int, len(b.cache))
	for rep, w := range b.cache {
		if heap.IsObjectRef(w) {
			out[w] = rep
		}
	}
	return out
}

// BuildFrame constructs the concrete interpreter input frame for a target
// under the builder's model.
func (b *FrameBuilder) BuildFrame(t Target) (*interp.Frame, error) {
	receiver, err := b.ValueFor(b.U.Receiver())
	if err != nil {
		return nil, err
	}
	var temps []interp.Value
	switch t.Kind {
	case TargetBytecode:
		for i := 0; i < t.Method.TempCount(); i++ {
			v, err := b.ValueFor(b.U.Temp(i))
			if err != nil {
				return nil, err
			}
			temps = append(temps, v)
		}
	case TargetNativeMethod:
		for i := 0; i < t.PrimNumArgs; i++ {
			v, err := b.ValueFor(b.U.Arg(i))
			if err != nil {
				return nil, err
			}
			temps = append(temps, v)
		}
	}
	var stack []interp.Value
	for i := 0; i < b.Model.StackSize; i++ {
		v, err := b.ValueFor(b.U.Stack(i))
		if err != nil {
			return nil, err
		}
		stack = append(stack, v)
	}
	return interp.NewFrame(receiver, temps, stack), nil
}
