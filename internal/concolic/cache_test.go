package concolic

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/primitives"
)

func TestExplorationRoundTrip(t *testing.T) {
	prims := primitives.NewTable()
	explorer := NewExplorer(prims, DefaultOptions())
	for _, target := range []Target{
		BytecodeTarget(bytecode.OpPrimAdd),
		NativeMethodTarget(primitives.PrimIdxAt, "primitiveAt", 1),
	} {
		ex := explorer.Explore(target)
		data, err := MarshalExploration(ex)
		if err != nil {
			t.Fatalf("%s: marshal: %v", target.Name, err)
		}
		back, err := UnmarshalExploration(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", target.Name, err)
		}
		if back.Target.Name != ex.Target.Name || back.Target.Kind != ex.Target.Kind {
			t.Fatalf("%s: target drift: %+v", target.Name, back.Target)
		}
		if len(back.Paths) != len(ex.Paths) || back.CuratedOut != ex.CuratedOut {
			t.Fatalf("%s: %d paths after round trip, want %d", target.Name, len(back.Paths), len(ex.Paths))
		}
		if back.Universe.Count() != ex.Universe.Count() {
			t.Fatalf("%s: universe drift", target.Name)
		}
		for i := range ex.Paths {
			if ex.Paths[i].Exit.Kind != back.Paths[i].Exit.Kind {
				t.Errorf("%s path %d: exit drift %v -> %v", target.Name, i, ex.Paths[i].Exit.Kind, back.Paths[i].Exit.Kind)
			}
			if ex.Paths[i].Model.String() != back.Paths[i].Model.String() {
				t.Errorf("%s path %d: model drift\n %s\n %s", target.Name, i,
					ex.Paths[i].Model, back.Paths[i].Model)
			}
			if ex.Paths[i].Path.Signature() != back.Paths[i].Path.Signature() {
				t.Errorf("%s path %d: constraint display drift", target.Name, i)
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalExploration([]byte("{")); err == nil {
		t.Fatal("truncated JSON must error")
	}
	if _, err := UnmarshalExploration([]byte(`{"kind": 9}`)); err == nil {
		t.Fatal("unknown target kind must error")
	}
}
