package metacompile

import (
	"fmt"
	"strconv"
	"strings"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/ir"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
	"cogdiff/internal/sym"
)

// evalPool is the register set the expression evaluator hands out, in
// allocation order. ScratchReg is reserved for micro-sequences with small
// immediates only: lowering materializes large CmpI immediates through the
// machine scratch register on the fixed-width ISA, which would clobber a
// live value parked there.
var evalPool = []ir.Reg{ir.R1, ir.R2, ir.R3, ir.TempReg, ir.ExtraReg}

// lowerer translates one exploration path at a time into IR: the path's
// constraints become a guard prefix that falls through to the next path
// block on mismatch, and the path's recorded effect becomes straight-line
// code.
type lowerer struct {
	b        *ir.Builder
	om       *heap.ObjectMemory
	sw       defects.Switches
	u        *sym.Universe
	numTemps int

	// wholeMethod forbids baking witness-derived facts (slot homes, class
	// words, raw slot reads): a whole-method compile serves every input,
	// not the one materialized witness of a single-instruction test.
	wholeMethod bool

	// per-instruction state
	family   bytecode.Family
	embedded int
	pcBase   int // absolute byte-code offset of the instruction (method mode)
	instrEnd int // absolute offset of the following instruction
	next0    int // fall-through NextPC of the instruction (instruction mode)
	codeLen  int
	endLabel string

	// per-path state
	res    *concolic.PathResult
	inS    int // input operand-stack cells of the current path
	pushes int // machine-stack pushes since the guard prefix

	free     []ir.Reg
	labelSeq int

	selectors   []jit.Selector
	selectorIdx map[string]int64

	err error
}

func newLowerer(om *heap.ObjectMemory, sw defects.Switches, numTemps int) *lowerer {
	return &lowerer{
		b:           ir.NewBuilder(),
		om:          om,
		sw:          sw,
		numTemps:    numTemps,
		selectorIdx: make(map[string]int64),
	}
}

func (l *lowerer) fail(format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf(format, args...)
	}
}

func (l *lowerer) newLabel(prefix string) string {
	l.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, l.labelSeq)
}

func (l *lowerer) addSelector(name string, numArgs int) int64 {
	key := fmt.Sprintf("%s/%d", name, numArgs)
	if id, ok := l.selectorIdx[key]; ok {
		return id
	}
	id := int64(len(l.selectors))
	l.selectors = append(l.selectors, jit.Selector{Name: name, NumArgs: numArgs})
	l.selectorIdx[key] = id
	return id
}

// ---- register discipline ----

func (l *lowerer) resetRegs() {
	l.free = l.free[:0]
	for i := len(evalPool) - 1; i >= 0; i-- {
		l.free = append(l.free, evalPool[i])
	}
}

func (l *lowerer) allocReg() ir.Reg {
	if len(l.free) == 0 {
		l.fail("metacompile: expression exhausts the %d-register pool", len(evalPool))
		return ir.ScratchReg
	}
	r := l.free[len(l.free)-1]
	l.free = l.free[:len(l.free)-1]
	return r
}

func (l *lowerer) freeReg(r ir.Reg) {
	if r != ir.ScratchReg {
		l.free = append(l.free, r)
	}
}

// ---- variable homes ----

// loadVar materializes the current value of a path variable. Every input
// variable has a frame home: the operand stack cells below the pushes this
// block already made, the temporaries above FP, the receiver register, or
// (instruction mode only) a witness-indexed slot of an owning object.
func (l *lowerer) loadVar(dst ir.Reg, v *sym.Var) {
	if v == nil {
		l.fail("metacompile: nil variable")
		return
	}
	switch v.Role.Kind {
	case sym.RoleReceiver:
		l.b.MovR(dst, ir.ReceiverResultReg)
	case sym.RoleStack:
		j := v.Role.Index
		if j >= l.inS {
			l.fail("metacompile: stack variable s%d beyond input depth %d", j, l.inS)
			return
		}
		l.b.Load(dst, ir.SP, int64(l.pushes+(l.inS-1-j)))
	case sym.RoleArg, sym.RoleTemp:
		l.b.Load(dst, ir.FP, jit.TempOffset(v.Role.Index, l.numTemps))
	case sym.RoleSlot:
		if l.wholeMethod {
			l.fail("metacompile: witness slot access in whole-method mode")
			return
		}
		owner := l.u.ByID(v.Role.OwnerID)
		if owner == nil {
			l.fail("metacompile: slot variable with unknown owner %d", v.Role.OwnerID)
			return
		}
		l.loadVar(dst, owner)
		l.b.Load(dst, dst, int64(heap.HeaderWords+v.Role.Index))
	default:
		l.fail("metacompile: variable role %v has no frame home", v.Role.Kind)
	}
}

// witnessValue answers the typed value the frame builder materializes for
// v: the model entry when the solver pinned one, else the builder's
// default plain object.
func (l *lowerer) witnessValue(v *sym.Var) sym.TypedValue {
	if tv, ok := l.res.Model.ValueOf(v); ok {
		return tv
	}
	return sym.TypedValue{Kind: sym.KindPointer, ClassIndex: heap.ClassIndexObject, Format: heap.FormatFixed}
}

// ---- guard emission ----

func jumpFor(op sym.CmpOp) ir.Opc {
	switch op {
	case sym.CmpEQ:
		return ir.OpcJeq
	case sym.CmpNE:
		return ir.OpcJne
	case sym.CmpLT:
		return ir.OpcJlt
	case sym.CmpLE:
		return ir.OpcJle
	case sym.CmpGT:
		return ir.OpcJgt
	case sym.CmpGE:
		return ir.OpcJge
	}
	return ir.OpcJmp
}

// guard emits code that jumps to fail unless constraint c holds (or, with
// negate, unless c fails). Tag tests always precede dereferences, so a
// guard sequence evaluated against an input belonging to a different path
// cannot fault before one of its comparisons misses.
func (l *lowerer) guard(c sym.Constraint, fail string, negate bool) {
	if l.err != nil {
		return
	}
	switch n := c.(type) {
	case sym.Not:
		l.guard(n.C, fail, !negate)
	case sym.Bool:
		if n.B == negate {
			l.b.Jump(ir.OpcJmp, fail)
		}
	case sym.AllOf:
		if negate {
			l.guard(sym.Negate(c), fail, false)
			return
		}
		for _, e := range n {
			l.guard(e, fail, false)
		}
	case sym.AnyOf:
		if negate {
			l.guard(sym.Negate(c), fail, false)
			return
		}
		pass := l.newLabel("any_pass")
		for i, e := range n {
			if i == len(n)-1 {
				l.guard(e, fail, false)
				break
			}
			next := l.newLabel("any_next")
			l.guard(e, next, false)
			l.b.Jump(ir.OpcJmp, pass)
			l.b.Label(next)
		}
		l.b.Label(pass)
	case sym.ICmp:
		l.guardICmp(n, fail, negate)
	case sym.FCmp:
		l.guardFCmp(n, fail, negate)
	case sym.TypeIs:
		l.guardTypeIs(n, fail, negate)
	case sym.ClassIs:
		l.guardClassIs(n, fail, negate)
	case sym.FormatIs:
		l.guardFormatIs(n, fail, negate)
	case sym.SlotCountAtLeast:
		l.guardSlotCount(n, fail, negate)
	case sym.InSmallIntRange:
		l.guardSmallIntRange(n, fail, negate)
	case sym.StackSizeAtLeast:
		l.b.Bin(ir.OpcSub, ir.ScratchReg, ir.FP, ir.SP)
		l.b.CmpI(ir.ScratchReg, int64(n.N))
		if negate {
			l.b.Jump(ir.OpcJge, fail)
		} else {
			l.b.Jump(ir.OpcJlt, fail)
		}
	case sym.Identical:
		a := l.allocReg()
		l.loadVar(a, n.A)
		b := l.allocReg()
		l.loadVar(b, n.B)
		l.b.Cmp(a, b)
		l.freeReg(b)
		l.freeReg(a)
		if negate {
			l.b.Jump(ir.OpcJeq, fail)
		} else {
			l.b.Jump(ir.OpcJne, fail)
		}
	default:
		l.fail("metacompile: unsupported path constraint %s", c)
	}
}

func (l *lowerer) guardICmp(n sym.ICmp, fail string, negate bool) {
	op := n.Op
	if negate {
		op = op.Negated()
	}
	// The generator-targeted defect: strict less-than guards lower as
	// less-or-equal, so boundary inputs match the wrong path block.
	if l.sw.MetaJITGuardSignError && op == sym.CmpLT {
		op = sym.CmpLE
	}
	a := l.evalInt(n.L)
	if rc, ok := n.R.(sym.IntConst); ok {
		l.b.CmpI(a, rc.V)
	} else {
		b := l.evalInt(n.R)
		l.b.Cmp(a, b)
		l.freeReg(b)
	}
	l.freeReg(a)
	l.b.Jump(jumpFor(op.Negated()), fail)
}

// guardFCmp uses the jump-on-pass shape: the machine's FCMP parks NaN in a
// comparison state only JNE fires on, which matches the interpreter's
// "NaN satisfies only ~=" outcome exactly when the pass edge is the
// conditional one.
func (l *lowerer) guardFCmp(n sym.FCmp, fail string, negate bool) {
	op := n.Op
	if negate {
		op = op.Negated()
	}
	if l.sw.MetaJITGuardSignError && op == sym.CmpLT {
		op = sym.CmpLE
	}
	a := l.evalFloat(n.L)
	b := l.evalFloat(n.R)
	l.b.FCmp(a, b)
	l.freeReg(b)
	l.freeReg(a)
	pass := l.newLabel("fcmp_pass")
	l.b.Jump(jumpFor(op), pass)
	l.b.Jump(ir.OpcJmp, fail)
	l.b.Label(pass)
}

// tagCheck sets the comparison state to "equal" when r holds a tagged
// integer. Small immediates only: safe on ScratchReg.
func (l *lowerer) tagCheck(r ir.Reg) {
	l.b.BinI(ir.OpcAndI, ir.ScratchReg, r, 1)
	l.b.CmpI(ir.ScratchReg, 1)
}

// loadClassIndex fetches the class index of the (untagged) object in obj.
func (l *lowerer) loadClassIndex(dst, obj ir.Reg) {
	l.b.Load(dst, obj, 0)
	l.b.BinI(ir.OpcSarI, dst, dst, heap.HeaderClassShift)
}

func (l *lowerer) guardTypeIs(n sym.TypeIs, fail string, negate bool) {
	r := l.allocReg()
	l.loadVar(r, n.V)
	defer l.freeReg(r)
	switch n.Kind {
	case sym.KindSmallInt:
		l.tagCheck(r)
		if negate {
			l.b.Jump(ir.OpcJeq, fail)
		} else {
			l.b.Jump(ir.OpcJne, fail)
		}
	case sym.KindNil, sym.KindTrue, sym.KindFalse:
		var w heap.Word
		switch n.Kind {
		case sym.KindNil:
			w = l.om.NilObj
		case sym.KindTrue:
			w = l.om.TrueObj
		default:
			w = l.om.FalseObj
		}
		l.b.CmpI(r, int64(w))
		if negate {
			l.b.Jump(ir.OpcJeq, fail)
		} else {
			l.b.Jump(ir.OpcJne, fail)
		}
	case sym.KindFloat:
		if negate {
			pass := l.newLabel("nfloat_pass")
			l.tagCheck(r)
			l.b.Jump(ir.OpcJeq, pass)
			l.loadClassIndex(ir.ScratchReg, r)
			l.b.CmpI(ir.ScratchReg, heap.ClassIndexFloat)
			l.b.Jump(ir.OpcJeq, fail)
			l.b.Label(pass)
			return
		}
		l.tagCheck(r)
		l.b.Jump(ir.OpcJeq, fail)
		l.loadClassIndex(ir.ScratchReg, r)
		l.b.CmpI(ir.ScratchReg, heap.ClassIndexFloat)
		l.b.Jump(ir.OpcJne, fail)
	case sym.KindPointer:
		// A pointer is anything that is not tagged, not one of the three
		// well-known immediate-like objects, and not a boxed float.
		if negate {
			pass := l.newLabel("nptr_pass")
			l.tagCheck(r)
			l.b.Jump(ir.OpcJeq, pass)
			l.b.CmpI(r, int64(l.om.NilObj))
			l.b.Jump(ir.OpcJeq, pass)
			l.b.CmpI(r, int64(l.om.TrueObj))
			l.b.Jump(ir.OpcJeq, pass)
			l.b.CmpI(r, int64(l.om.FalseObj))
			l.b.Jump(ir.OpcJeq, pass)
			l.loadClassIndex(ir.ScratchReg, r)
			l.b.CmpI(ir.ScratchReg, heap.ClassIndexFloat)
			l.b.Jump(ir.OpcJne, fail)
			l.b.Label(pass)
			return
		}
		l.tagCheck(r)
		l.b.Jump(ir.OpcJeq, fail)
		l.b.CmpI(r, int64(l.om.NilObj))
		l.b.Jump(ir.OpcJeq, fail)
		l.b.CmpI(r, int64(l.om.TrueObj))
		l.b.Jump(ir.OpcJeq, fail)
		l.b.CmpI(r, int64(l.om.FalseObj))
		l.b.Jump(ir.OpcJeq, fail)
		l.loadClassIndex(ir.ScratchReg, r)
		l.b.CmpI(ir.ScratchReg, heap.ClassIndexFloat)
		l.b.Jump(ir.OpcJeq, fail)
	default:
		l.fail("metacompile: unsupported type kind %v", n.Kind)
	}
}

func (l *lowerer) guardClassIs(n sym.ClassIs, fail string, negate bool) {
	if n.ClassIndex == heap.ClassIndexSmallInteger {
		l.guardTypeIs(sym.TypeIs{V: n.V, Kind: sym.KindSmallInt}, fail, negate)
		return
	}
	r := l.allocReg()
	l.loadVar(r, n.V)
	defer l.freeReg(r)
	if negate {
		pass := l.newLabel("nclass_pass")
		l.tagCheck(r)
		l.b.Jump(ir.OpcJeq, pass)
		l.loadClassIndex(ir.ScratchReg, r)
		l.b.CmpI(ir.ScratchReg, int64(n.ClassIndex))
		l.b.Jump(ir.OpcJeq, fail)
		l.b.Label(pass)
		return
	}
	l.tagCheck(r)
	l.b.Jump(ir.OpcJeq, fail)
	l.loadClassIndex(ir.ScratchReg, r)
	l.b.CmpI(ir.ScratchReg, int64(n.ClassIndex))
	l.b.Jump(ir.OpcJne, fail)
}

func (l *lowerer) guardFormatIs(n sym.FormatIs, fail string, negate bool) {
	r := l.allocReg()
	l.loadVar(r, n.V)
	defer l.freeReg(r)
	loadFormat := func() {
		l.b.Load(ir.ScratchReg, r, 0)
		l.b.BinI(ir.OpcSarI, ir.ScratchReg, ir.ScratchReg, heap.HeaderSlotBits)
		l.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderFormatMask)
		l.b.CmpI(ir.ScratchReg, int64(n.F))
	}
	if negate {
		pass := l.newLabel("nformat_pass")
		l.tagCheck(r)
		l.b.Jump(ir.OpcJeq, pass)
		loadFormat()
		l.b.Jump(ir.OpcJeq, fail)
		l.b.Label(pass)
		return
	}
	l.tagCheck(r)
	l.b.Jump(ir.OpcJeq, fail)
	loadFormat()
	l.b.Jump(ir.OpcJne, fail)
}

func (l *lowerer) guardSlotCount(n sym.SlotCountAtLeast, fail string, negate bool) {
	r := l.allocReg()
	l.loadVar(r, n.V)
	// Slot counts can exceed the fixed-width compare-immediate range, so
	// the count lives in an allocated register, not the scratch register
	// lowering may need for materialization.
	cnt := l.allocReg()
	if negate {
		pass := l.newLabel("nslots_pass")
		l.tagCheck(r)
		l.b.Jump(ir.OpcJeq, pass)
		l.b.Load(cnt, r, 0)
		l.b.BinI(ir.OpcAndI, cnt, cnt, heap.HeaderSlotMask)
		l.b.CmpI(cnt, int64(n.N))
		l.b.Jump(ir.OpcJge, fail)
		l.b.Label(pass)
		l.freeReg(cnt)
		l.freeReg(r)
		return
	}
	l.tagCheck(r)
	l.b.Jump(ir.OpcJeq, fail)
	l.b.Load(cnt, r, 0)
	l.b.BinI(ir.OpcAndI, cnt, cnt, heap.HeaderSlotMask)
	l.b.CmpI(cnt, int64(n.N))
	l.b.Jump(ir.OpcJlt, fail)
	l.freeReg(cnt)
	l.freeReg(r)
}

func (l *lowerer) guardSmallIntRange(n sym.InSmallIntRange, fail string, negate bool) {
	r := l.evalInt(n.E)
	if negate {
		out := l.newLabel("range_out")
		l.b.CmpI(r, heap.MaxSmallInt)
		l.b.Jump(ir.OpcJgt, out)
		l.b.CmpI(r, heap.MinSmallInt)
		l.b.Jump(ir.OpcJlt, out)
		l.b.Jump(ir.OpcJmp, fail)
		l.b.Label(out)
		l.freeReg(r)
		return
	}
	l.b.CmpI(r, heap.MaxSmallInt)
	l.b.Jump(ir.OpcJgt, fail)
	l.b.CmpI(r, heap.MinSmallInt)
	l.b.Jump(ir.OpcJlt, fail)
	l.freeReg(r)
}

// ---- expression evaluation ----

func (l *lowerer) evalInt(e sym.IntExpr) ir.Reg {
	switch n := e.(type) {
	case sym.IntConst:
		r := l.allocReg()
		l.b.MovI(r, n.V)
		return r
	case sym.IntValueOf:
		r := l.allocReg()
		l.loadVar(r, n.V)
		l.b.BinI(ir.OpcSarI, r, r, 1)
		return r
	case sym.SlotCountOf:
		r := l.allocReg()
		l.loadVar(r, n.V)
		l.b.Load(r, r, 0)
		l.b.BinI(ir.OpcAndI, r, r, heap.HeaderSlotMask)
		return r
	case sym.IntBin:
		return l.evalIntBin(n)
	default:
		l.fail("metacompile: unsupported integer expression %T", e)
		return ir.ScratchReg
	}
}

func (l *lowerer) evalIntBin(n sym.IntBin) ir.Reg {
	a := l.evalInt(n.L)
	b := l.evalInt(n.R)
	switch n.Op {
	case sym.OpAdd:
		l.b.Bin(ir.OpcAdd, a, a, b)
	case sym.OpSub:
		l.b.Bin(ir.OpcSub, a, a, b)
	case sym.OpMul:
		l.b.Bin(ir.OpcMul, a, a, b)
	case sym.OpQuo:
		l.b.Bin(ir.OpcDiv, a, a, b)
	case sym.OpBitAnd:
		l.b.Bin(ir.OpcAnd, a, a, b)
	case sym.OpBitOr:
		l.b.Bin(ir.OpcOr, a, a, b)
	case sym.OpBitXor:
		l.b.Bin(ir.OpcXor, a, a, b)
	case sym.OpShiftLeft:
		l.b.Bin(ir.OpcShl, a, a, b)
	case sym.OpShiftRight:
		l.b.Bin(ir.OpcSar, a, a, b)
	case sym.OpDiv:
		// Floored division over a truncating divide, the same fix-up the
		// hand-written front-ends emit: decrement the quotient when the
		// remainder is non-zero and the operand signs differ.
		q := l.allocReg()
		t := l.allocReg()
		done := l.newLabel("fdiv_done")
		l.b.Bin(ir.OpcDiv, q, a, b)
		l.b.Bin(ir.OpcMul, t, q, b)
		l.b.Bin(ir.OpcSub, t, a, t)
		l.b.CmpI(t, 0)
		l.b.Jump(ir.OpcJeq, done)
		l.b.Bin(ir.OpcXor, t, a, b)
		l.b.CmpI(t, 0)
		l.b.Jump(ir.OpcJge, done)
		l.b.BinI(ir.OpcSubI, q, q, 1)
		l.b.Label(done)
		l.b.MovR(a, q)
		l.freeReg(t)
		l.freeReg(q)
	case sym.OpMod:
		// Floored modulo: add the divisor back when the truncated
		// remainder is non-zero and the operand signs differ.
		m := l.allocReg()
		t := l.allocReg()
		done := l.newLabel("fmod_done")
		l.b.Bin(ir.OpcMod, m, a, b)
		l.b.CmpI(m, 0)
		l.b.Jump(ir.OpcJeq, done)
		l.b.Bin(ir.OpcXor, t, a, b)
		l.b.CmpI(t, 0)
		l.b.Jump(ir.OpcJge, done)
		l.b.Bin(ir.OpcAdd, m, m, b)
		l.b.Label(done)
		l.b.MovR(a, m)
		l.freeReg(t)
		l.freeReg(m)
	default:
		l.fail("metacompile: unsupported integer operator %v", n.Op)
	}
	l.freeReg(b)
	return a
}

func (l *lowerer) evalFloat(e sym.FloatExpr) ir.Reg {
	switch n := e.(type) {
	case sym.FloatConst:
		// Bake a boxed float at compile time and load its bits: the
		// fixed-width ISA cannot materialize a 64-bit bit pattern as an
		// immediate.
		oop, err := l.om.NewFloat(n.V)
		if err != nil {
			l.fail("metacompile: baking float constant: %v", err)
			return ir.ScratchReg
		}
		r := l.allocReg()
		l.b.MovI(r, int64(oop))
		l.b.Load(r, r, heap.HeaderWords)
		return r
	case sym.FloatValueOf:
		r := l.allocReg()
		l.loadVar(r, n.V)
		l.b.Load(r, r, heap.HeaderWords)
		return r
	case sym.IntToFloat:
		r := l.evalInt(n.E)
		l.b.Emit(ir.Instr{Op: ir.OpcI2F, Rd: r, Rs1: r})
		return r
	case sym.FloatBin:
		a := l.evalFloat(n.L)
		b := l.evalFloat(n.R)
		switch n.Op {
		case sym.OpAdd:
			l.b.Bin(ir.OpcFAdd, a, a, b)
		case sym.OpSub:
			l.b.Bin(ir.OpcFSub, a, a, b)
		case sym.OpMul:
			l.b.Bin(ir.OpcFMul, a, a, b)
		case sym.OpDiv, sym.OpQuo:
			l.b.Bin(ir.OpcFDiv, a, a, b)
		default:
			l.fail("metacompile: unsupported float operator %v", n.Op)
		}
		l.freeReg(b)
		return a
	default:
		l.fail("metacompile: unsupported float expression %T", e)
		return ir.ScratchReg
	}
}

// knownWord resolves a KnownObj name against the object memory, the way
// the hand-written front-ends bake literal oops into code.
func (l *lowerer) knownWord(name string) (heap.Word, bool) {
	switch name {
	case "nil":
		return l.om.NilObj, true
	case "true":
		return l.om.TrueObj, true
	case "false":
		return l.om.FalseObj, true
	}
	if cn, ok := strings.CutPrefix(name, "class "); ok {
		if l.wholeMethod {
			l.fail("metacompile: witness class bake in whole-method mode")
			return 0, false
		}
		for i := 0; i < l.om.ClassCount(); i++ {
			if cd := l.om.ClassAt(i); cd != nil && cd.Name == cn {
				return cd.Oop, true
			}
		}
		l.fail("metacompile: unknown class %q", cn)
		return 0, false
	}
	if sel, ok := strings.CutPrefix(name, "#"); ok {
		oop, err := l.om.NewString(sel)
		if err != nil {
			l.fail("metacompile: baking selector literal: %v", err)
			return 0, false
		}
		return oop, true
	}
	if strings.HasPrefix(name, "\"") {
		s, err := strconv.Unquote(name)
		if err != nil {
			l.fail("metacompile: undecodable string literal %s", name)
			return 0, false
		}
		oop, err := l.om.NewString(s)
		if err != nil {
			l.fail("metacompile: baking string literal: %v", err)
			return 0, false
		}
		return oop, true
	}
	l.fail("metacompile: unsupported known object %q", name)
	return 0, false
}

// evalValue materializes a recorded frame value as a tagged word.
func (l *lowerer) evalValue(v interp.Value) ir.Reg {
	if v.Sym == nil {
		// No symbolic provenance: the value is a concrete witness word
		// (e.g. a raw slot read). Sound for single-instruction tests,
		// which replay the exact materialized witness.
		if l.wholeMethod {
			l.fail("metacompile: untracked concrete value in whole-method mode")
			return ir.ScratchReg
		}
		r := l.allocReg()
		l.b.MovI(r, int64(v.W))
		return r
	}
	return l.evalVal(v.Sym)
}

func (l *lowerer) evalVal(e sym.ValExpr) ir.Reg {
	switch n := e.(type) {
	case sym.VarRef:
		r := l.allocReg()
		l.loadVar(r, n.V)
		return r
	case sym.IntObj:
		if iv, ok := n.E.(sym.IntValueOf); ok {
			// Retagging an untagged load of an already-tagged home is a
			// no-op: load the home directly.
			r := l.allocReg()
			l.loadVar(r, iv.V)
			return r
		}
		if c, ok := n.E.(sym.IntConst); ok {
			r := l.allocReg()
			l.b.MovI(r, int64(heap.SmallIntFor(c.V)))
			return r
		}
		r := l.evalInt(n.E)
		l.b.BinI(ir.OpcShlI, r, r, 1)
		l.b.BinI(ir.OpcOrI, r, r, 1)
		return r
	case sym.FloatObj:
		if c, ok := n.E.(sym.FloatConst); ok {
			oop, err := l.om.NewFloat(c.V)
			if err != nil {
				l.fail("metacompile: baking float constant: %v", err)
				return ir.ScratchReg
			}
			r := l.allocReg()
			l.b.MovI(r, int64(oop))
			return r
		}
		r := l.evalFloat(n.E)
		l.b.Emit(ir.Instr{Op: ir.OpcAllocFloat, Rd: r, Rs1: r})
		return r
	case sym.BoolObj:
		r := l.allocReg()
		no := l.newLabel("bool_false")
		done := l.newLabel("bool_done")
		l.guard(n.C, no, false)
		l.b.MovI(r, int64(l.om.TrueObj))
		l.b.Jump(ir.OpcJmp, done)
		l.b.Label(no)
		l.b.MovI(r, int64(l.om.FalseObj))
		l.b.Label(done)
		return r
	case sym.KnownObj:
		w, ok := l.knownWord(n.Name)
		if !ok {
			return ir.ScratchReg
		}
		r := l.allocReg()
		l.b.MovI(r, int64(w))
		return r
	default:
		l.fail("metacompile: unsupported value expression %T", e)
		return ir.ScratchReg
	}
}

// ---- path lowering ----

// lowerPath emits one guard-chain block: the path's recorded constraints
// in order (each missing constraint jumps to failLabel, the next block),
// then the path's effect and exit tail.
func (l *lowerer) lowerPath(res *concolic.PathResult, failLabel string) {
	l.res = res
	l.inS = res.Model.StackSize
	l.pushes = 0
	l.resetRegs()
	for _, cond := range res.Path {
		l.guard(cond.C, failLabel, false)
		if l.err != nil {
			return
		}
	}
	switch res.Exit.Kind {
	case interp.ExitSuccess:
		l.lowerEffects()
		l.successTail()
	case interp.ExitMessageSend:
		l.lowerEffects()
		l.sendTail()
	case interp.ExitMethodReturn:
		l.returnTail()
	default:
		l.fail("metacompile: exit kind %v is not compilable", res.Exit.Kind)
	}
}

// lowerEffects rewrites the frame from the path's input state to its
// recorded output state: temporary writes and heap stores first (they read
// pristine homes), then the operand stack in two phases — evaluate and
// push every non-identity output cell, then shuffle the pushed values into
// their final slots and adjust SP.
func (l *lowerer) lowerEffects() {
	if l.err != nil {
		return
	}
	out := l.res.OutputFrame

	for i := range out.Temps {
		if isIdentityTemp(out.Temps[i], i) {
			continue
		}
		r := l.evalValue(out.Temps[i])
		l.b.Store(ir.FP, jit.TempOffset(i, l.numTemps), r)
		l.freeReg(r)
		if l.err != nil {
			return
		}
	}

	l.lowerHeapEffects()
	if l.err != nil {
		return
	}

	nOut := len(out.Stack)
	var pushed []int
	for j := 0; j < nOut; j++ {
		if j < l.inS && isIdentityStack(out.Stack[j], j) {
			continue
		}
		r := l.evalValue(out.Stack[j])
		l.b.Push(r)
		l.freeReg(r)
		l.pushes++
		pushed = append(pushed, j)
		if l.err != nil {
			return
		}
	}
	k := len(pushed)
	for r, j := range pushed {
		src := int64(k - 1 - r)
		dst := int64(k + l.inS - 1 - j)
		if src == dst {
			continue
		}
		l.b.Load(ir.ScratchReg, ir.SP, src)
		l.b.Store(ir.SP, dst, ir.ScratchReg)
	}
	if delta := k - (nOut - l.inS); delta != 0 {
		l.b.BinI(ir.OpcAddI, ir.SP, ir.SP, int64(delta))
	}
	l.pushes = 0
}

func isIdentityStack(v interp.Value, j int) bool {
	vr, ok := v.Sym.(sym.VarRef)
	return ok && vr.V != nil && vr.V.Role.Kind == sym.RoleStack && vr.V.Role.Index == j
}

func isIdentityTemp(v interp.Value, i int) bool {
	vr, ok := v.Sym.(sym.VarRef)
	if !ok || vr.V == nil {
		return false
	}
	k := vr.V.Role.Kind
	return (k == sym.RoleTemp || k == sym.RoleArg) && vr.V.Role.Index == i
}

// lowerHeapEffects emits the object-memory writes the recorded frames
// cannot express: the receiver-variable store families and at:put:. The
// store layout (slot index, raw-versus-tagged conversion) is baked from
// the witness, which single-instruction tests replay exactly; whole-method
// compilation rejects these families up front.
func (l *lowerer) lowerHeapEffects() {
	if l.res.Exit.Kind != interp.ExitSuccess {
		return
	}
	switch l.family {
	case bytecode.FamStoreReceiverVariable, bytecode.FamPopIntoReceiverVariable:
		if l.wholeMethod {
			l.fail("metacompile: receiver-variable store in whole-method mode")
			return
		}
		if l.inS < 1 {
			l.fail("metacompile: receiver-variable store with empty input stack")
			return
		}
		val := l.allocReg()
		l.loadVar(val, l.u.Stack(l.inS-1))
		recv := l.u.Receiver()
		if f := l.witnessValue(recv).Format; f == heap.FormatBytes || f == heap.FormatWords {
			l.b.BinI(ir.OpcSarI, val, val, 1)
		}
		l.b.Store(ir.ReceiverResultReg, int64(heap.HeaderWords+l.embedded), val)
		l.freeReg(val)
	case bytecode.FamPrimAtPut:
		if l.wholeMethod {
			l.fail("metacompile: at:put: store in whole-method mode")
			return
		}
		if l.inS < 3 {
			l.fail("metacompile: at:put: with input stack depth %d", l.inS)
			return
		}
		objVar := l.u.Stack(l.inS - 3)
		obj := l.allocReg()
		l.loadVar(obj, objVar)
		idx := l.allocReg()
		l.loadVar(idx, l.u.Stack(l.inS-2))
		l.b.BinI(ir.OpcSarI, idx, idx, 1)
		val := l.allocReg()
		l.loadVar(val, l.u.Stack(l.inS-1))
		if f := l.witnessValue(objVar).Format; f == heap.FormatBytes || f == heap.FormatWords {
			l.b.BinI(ir.OpcSarI, val, val, 1)
		}
		l.b.BinI(ir.OpcAddI, idx, idx, int64(heap.HeaderWords-1))
		l.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: val, Rs1: obj, Rs2: idx})
		l.freeReg(val)
		l.freeReg(idx)
		l.freeReg(obj)
	}
}

// ---- exit tails ----

func bcLabel(pc int) string { return fmt.Sprintf("bc_%d", pc) }

func (l *lowerer) jumpToPC(abs int) {
	if abs >= l.codeLen {
		l.b.Jump(ir.OpcJmp, l.endLabel)
		return
	}
	l.b.Jump(ir.OpcJmp, bcLabel(abs))
}

func (l *lowerer) successTail() {
	if l.err != nil {
		return
	}
	if l.wholeMethod {
		l.jumpToPC(l.pcBase + l.res.Exit.NextPC)
		return
	}
	if l.res.Exit.NextPC != l.next0 {
		l.b.Brk(jit.BrkJumpTaken)
	} else {
		l.b.Brk(jit.BrkEndFall)
	}
}

func (l *lowerer) sendTail() {
	if l.err != nil {
		return
	}
	id := l.addSelector(l.res.Exit.Selector, l.res.Exit.NumArgs)
	l.b.MovI(ir.ClassSelectorReg, id)
	l.b.Call(machine.SendTrampoline)
	if l.wholeMethod {
		l.jumpToPC(l.instrEnd)
		return
	}
	l.b.Brk(jit.BrkEndFall)
}

func (l *lowerer) returnTail() {
	if l.err != nil {
		return
	}
	if l.res.Exit.HasResult {
		r := l.evalValue(l.res.Exit.Result)
		l.b.MovR(ir.ReceiverResultReg, r)
		l.freeReg(r)
		if l.err != nil {
			return
		}
	}
	l.b.MovR(ir.SP, ir.FP)
	l.b.Pop(ir.FP)
	l.b.Ret()
}
