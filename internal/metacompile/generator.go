package metacompile

import (
	"fmt"
	"strings"
	"sync"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/primitives"
)

// planMaxIterations bounds the concolic exploration a plan is derived
// from. It matches the explorer's default so the generator sees exactly
// the path set the differential tester tests.
const planMaxIterations = 400

// PathPlan classifies one explored path: supported paths become guard
// blocks of the derived compiler, unsupported ones are omitted from the
// chain (the differ skips them deterministically through PathSupported).
type PathPlan struct {
	Res       *concolic.PathResult
	Supported bool
	// Reason records why the path is not compilable.
	Reason string
}

// Plan is the meta-compilation plan of one method: the interpreter's
// explored path tree plus a per-path supportability classification.
type Plan struct {
	Method      *bytecode.Method
	Exploration *concolic.Exploration
	Paths       []*PathPlan
	bySig       map[string]*PathPlan
}

// PathBySignature answers the plan entry of a path signature.
func (p *Plan) PathBySignature(sig string) (*PathPlan, bool) {
	pp, ok := p.bySig[sig]
	return pp, ok
}

// PathSupported reports whether the guard chain contains the path, and if
// not, why — the differ's deterministic pre-check before running the
// derived compiler on a unit.
func (p *Plan) PathSupported(sig string) (bool, string) {
	pp, ok := p.bySig[sig]
	if !ok {
		return false, "path not in exploration"
	}
	if !pp.Supported {
		return false, pp.Reason
	}
	return true, ""
}

// SupportedPaths returns the guard-chain blocks in discovery order.
func (p *Plan) SupportedPaths() []*PathPlan {
	out := make([]*PathPlan, 0, len(p.Paths))
	for _, pp := range p.Paths {
		if pp.Supported {
			out = append(out, pp)
		}
	}
	return out
}

// Complete reports whether the exploration enumerated the method's whole
// path tree: the iteration budget was not exhausted and no path was
// curated out. Whole-method compilation requires it — an input taking an
// unenumerated path would deoptimize mid-sequence.
func (p *Plan) Complete() bool {
	return p.Exploration.Iterations < planMaxIterations && p.Exploration.CuratedOut == 0
}

// ---- memoization ----

// Plans are derived from a pristine interpreter and depend only on method
// content, so they are shared process-wide: campaigns re-test the same
// instruction under many configurations and must not re-explore each time.
const maxMemoEntries = 4096

type planEntry struct {
	once sync.Once
	plan *Plan
}

var (
	memoMu sync.Mutex
	memo   = make(map[string]*planEntry)
)

// methodKey identifies a method by content (name excluded: rebased
// sub-methods of the same byte-codes share a plan).
func methodKey(m *bytecode.Method) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d/%x", m.NumArgs, m.NumTemps, m.Code)
	for _, lit := range m.Literals {
		fmt.Fprintf(&sb, "|%d:%d:%x:%q", lit.Kind, lit.Int, lit.Float, lit.Str)
	}
	return sb.String()
}

// PlanFor derives (or recalls) the meta-compilation plan of a method. The
// exploration runs against a pristine interpreter — the generator reads
// the interpreter's semantics, never a defect configuration.
func PlanFor(m *bytecode.Method) *Plan {
	key := methodKey(m)
	memoMu.Lock()
	e, ok := memo[key]
	if !ok {
		e = &planEntry{}
		if len(memo) < maxMemoEntries {
			memo[key] = e
		}
	}
	memoMu.Unlock()
	e.once.Do(func() { e.plan = buildPlan(m) })
	return e.plan
}

func buildPlan(m *bytecode.Method) *Plan {
	name := m.Name
	var op bytecode.Op
	if o, _, _, ok := m.FetchOp(0); ok {
		op = o
		if name == "" {
			name = bytecode.Describe(o).Mnemonic
		}
	}
	ex := concolic.NewExplorer(primitives.NewTable(), concolic.Options{MaxIterations: planMaxIterations}).
		Explore(concolic.Target{Kind: concolic.TargetBytecode, Name: name, Method: m, Op: op})

	plan := &Plan{
		Method:      m,
		Exploration: ex,
		bySig:       make(map[string]*PathPlan, len(ex.Paths)),
	}
	// Supportability classification dry-runs the real lowering against a
	// throwaway object memory; the verdict is memory-independent because
	// boot is deterministic.
	om := heap.NewBootedObjectMemory()
	for _, res := range ex.Paths {
		pp := &PathPlan{Res: res}
		switch res.Exit.Kind {
		case interp.ExitSuccess, interp.ExitMessageSend, interp.ExitMethodReturn:
			if err := dryLower(m, ex, res, om); err != nil {
				pp.Reason = err.Error()
			} else {
				pp.Supported = true
			}
		default:
			pp.Reason = fmt.Sprintf("exit %v has no compiled form", res.Exit.Kind)
		}
		plan.Paths = append(plan.Paths, pp)
		sig := res.Path.Signature()
		if _, dup := plan.bySig[sig]; !dup {
			plan.bySig[sig] = pp
		}
	}
	return plan
}

// dryLower runs the single-instruction lowering of one path to classify
// it. Compilation errors surface here once, at plan time, so the guard
// chain only ever contains paths that lower cleanly.
func dryLower(m *bytecode.Method, ex *concolic.Exploration, res *concolic.PathResult, om *heap.ObjectMemory) error {
	l := newLowerer(om, defects.Switches{}, m.TempCount())
	l.u = ex.Universe
	prepareInstruction(l, m)
	if l.err != nil {
		return l.err
	}
	if l.family == bytecode.FamCallPrimitive {
		return fmt.Errorf("metacompile: called primitives may have untracked heap effects")
	}
	l.lowerPath(res, "dry_fail")
	return l.err
}

// prepareInstruction decodes the instruction under test into the
// lowerer's per-instruction state.
func prepareInstruction(l *lowerer, m *bytecode.Method) {
	op, _, next, ok := m.FetchOp(0)
	if !ok {
		l.fail("metacompile: undecodable byte-code")
		return
	}
	d := bytecode.Describe(op)
	l.family = d.Family
	l.embedded = d.Embedded
	l.next0 = next
	l.codeLen = len(m.Code)
}
