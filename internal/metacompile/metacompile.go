// Package metacompile derives a fifth compiler from the interpreter,
// Druid-style: instead of hand-writing code-generation templates, it runs
// the concolic explorer over the symbolic interpreter (internal/interp)
// and turns each explored path into compiled code — the path's
// constraints become a guard sequence, the path's recorded frame effect
// becomes straight-line IR, and an input no explored path claims falls
// through to a deoptimization stub. The generated front-end flows through
// exactly the back-end the hand-written Cogits use (pass pipeline,
// lowering, encoding), so pass-level blame, telemetry and both ISAs work
// unchanged.
//
// Soundness note: single-instruction test units replay the exact witness
// input the differ materialized from the path model, so the generator may
// bake witness-derived facts (slot indexes, object formats, class words)
// into the unit — the same facts the hand-written front-ends read from
// the live object memory. Whole-method compilation serves arbitrary
// inputs and therefore rejects any instruction family whose lowering
// would bake a witness fact.
package metacompile

import (
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
)

// SemanticsVersion names the generator's translation scheme. It is folded
// into code-cache and unit-cache keys: regenerating the front-end from a
// changed interpreter or lowering scheme must not reuse stale entries.
const SemanticsVersion = "metajit/1"

// methodBlockedFamilies are the instruction families whose lowering bakes
// witness-derived facts and is therefore only sound for single-instruction
// test units. FamCallPrimitive is blocked in both modes: called
// primitives can have heap effects the recorded frames do not express.
var methodBlockedFamilies = map[bytecode.Family]bool{
	bytecode.FamPrimClass:               true,
	bytecode.FamPushReceiverVariable:    true,
	bytecode.FamStoreReceiverVariable:   true,
	bytecode.FamPopIntoReceiverVariable: true,
	bytecode.FamPrimAt:                  true,
	bytecode.FamPrimAtPut:               true,
	bytecode.FamCallPrimitive:           true,
}

// Compiler is the meta-compiled front-end. Like a Cogit, one instance
// compiles for one object memory; compile-time constants (class words,
// boxed literals) are resolved against it.
type Compiler struct {
	ISA     machine.ISA
	OM      *heap.ObjectMemory
	Defects defects.Switches

	// PassLimit, Metrics, OnIR and OnStage mirror the Cogit fields: they
	// parameterize the shared Backend (blame truncation, pass telemetry,
	// coverage and ir-dump hooks).
	PassLimit int
	Metrics   *jit.PassMetrics
	OnIR      func(ir.Opc)
	OnStage   func(stage string, fn *ir.Fn)

	// NoVerify disables the Backend's static IR verifier. When on (the
	// default) the verifier additionally demands a reachable deopt stub:
	// generated guard chains must always be able to bail out.
	NoVerify bool
}

// NewCompiler builds a meta-compiled front-end over om.
func NewCompiler(isa machine.ISA, om *heap.ObjectMemory, sw defects.Switches) *Compiler {
	return &Compiler{ISA: isa, OM: om, Defects: sw, PassLimit: -1}
}

func (c *Compiler) finish(l *lowerer) (*jit.CompiledMethod, error) {
	if l.err != nil {
		return nil, l.err
	}
	bk := &jit.Backend{
		Variant:   jit.MetaJITCogit,
		ISA:       c.ISA,
		Defects:   c.Defects,
		PassLimit: c.PassLimit,
		Metrics:   c.Metrics,
		OnIR:      c.OnIR,
		OnStage:   c.OnStage,
		// The generated front-end works on physical registers only; the
		// pool exists for lowering's virtual-register contract.
		Pool:         []machine.Reg{machine.TempReg, machine.ExtraReg, machine.R1},
		NoVerify:     c.NoVerify,
		RequireDeopt: true,
	}
	return bk.Finish(l.b, l.selectors, l.numTemps)
}

// CompileBytecode compiles the single-instruction test schema of
// Listing 3 from the method's meta-compilation plan: frame preamble and
// input pushes as the Cogits emit them, then one guard block per
// supported explored path in discovery order, then the deoptimization
// stub. Exactly one block's full guard sequence can match any input —
// each path's recorded constraints are complete — so chain order does not
// affect semantics.
func (c *Compiler) CompileBytecode(m *bytecode.Method, inputStack []heap.Word) (*jit.CompiledMethod, error) {
	plan := PlanFor(m)
	supported := plan.SupportedPaths()
	if len(supported) == 0 {
		return nil, fmt.Errorf("%w: metacompile: no supported path", jit.ErrNotCompilable)
	}

	l := newLowerer(c.OM, c.Defects, m.TempCount())
	l.u = plan.Exploration.Universe
	prepareInstruction(l, m)

	l.b.Push(ir.FP)
	l.b.MovR(ir.FP, ir.SP)
	for _, w := range inputStack {
		l.b.MovI(ir.ScratchReg, int64(w))
		l.b.Push(ir.ScratchReg)
	}

	for i, pp := range supported {
		failLabel := "deopt"
		if i < len(supported)-1 {
			failLabel = fmt.Sprintf("path_%d", i+1)
		}
		l.lowerPath(pp.Res, failLabel)
		if l.err != nil {
			return nil, l.err
		}
		if i < len(supported)-1 {
			l.b.Label(failLabel)
		}
	}
	l.b.Label("deopt")
	l.b.Brk(jit.BrkMetaDeopt)
	return c.finish(l)
}

// CompileMethod compiles a whole method as a sequence of per-byte-code
// guard chains: every byte-code offset gets a labelled block whose paths
// continue at their recorded successor offsets; returns compile to the
// frame epilogue; falling off the end answers the receiver. The guard
// chain must be total here — any byte-code whose path tree is incomplete
// or whose family needs witness baking makes the method not compilable.
func (c *Compiler) CompileMethod(m *bytecode.Method, inputStack []heap.Word) (*jit.CompiledMethod, error) {
	l := newLowerer(c.OM, c.Defects, m.TempCount())
	l.wholeMethod = true
	l.codeLen = len(m.Code)
	l.endLabel = bcLabel(len(m.Code))

	l.b.Push(ir.FP)
	l.b.MovR(ir.FP, ir.SP)
	for _, w := range inputStack {
		l.b.MovI(ir.ScratchReg, int64(w))
		l.b.Push(ir.ScratchReg)
	}

	for pc := 0; pc < len(m.Code); {
		op, _, next, ok := m.FetchOp(pc)
		if !ok {
			return nil, fmt.Errorf("%w: undecodable byte-code at %d", jit.ErrNotCompilable, pc)
		}
		d := bytecode.Describe(op)
		if methodBlockedFamilies[d.Family] {
			return nil, fmt.Errorf("%w: metacompile: %s needs witness facts", jit.ErrNotCompilable, d.Mnemonic)
		}
		sub := subMethod(m, pc, next)
		plan := PlanFor(sub)
		if !plan.Complete() {
			return nil, fmt.Errorf("%w: metacompile: incomplete path tree for %s at %d", jit.ErrNotCompilable, d.Mnemonic, pc)
		}
		supported := plan.SupportedPaths()
		if len(supported) != len(plan.Paths) {
			return nil, fmt.Errorf("%w: metacompile: unsupported path in %s at %d", jit.ErrNotCompilable, d.Mnemonic, pc)
		}
		if len(supported) == 0 {
			return nil, fmt.Errorf("%w: metacompile: no path for %s at %d", jit.ErrNotCompilable, d.Mnemonic, pc)
		}

		l.u = plan.Exploration.Universe
		l.family = d.Family
		l.embedded = d.Embedded
		l.pcBase = pc
		l.instrEnd = next
		l.b.Label(bcLabel(pc))
		for i, pp := range supported {
			failLabel := "deopt"
			if i < len(supported)-1 {
				failLabel = fmt.Sprintf("bc%d_path_%d", pc, i+1)
			}
			l.lowerPath(pp.Res, failLabel)
			if l.err != nil {
				return nil, l.err
			}
			if i < len(supported)-1 {
				l.b.Label(failLabel)
			}
		}
		pc = next
	}

	// Labels may point one past the last instruction; falling off the end
	// answers the receiver, which never leaves its register.
	l.b.Label(l.endLabel)
	l.b.MovR(ir.SP, ir.FP)
	l.b.Pop(ir.FP)
	l.b.Ret()
	l.b.Label("deopt")
	l.b.Brk(jit.BrkMetaDeopt)
	return c.finish(l)
}

// subMethod rebases the instruction at [pc,next) into a standalone method
// sharing the parent's frame shape and literal table.
func subMethod(m *bytecode.Method, pc, next int) *bytecode.Method {
	return &bytecode.Method{
		Name:     fmt.Sprintf("%s@%d", m.Name, pc),
		NumArgs:  m.NumArgs,
		NumTemps: m.NumTemps,
		Literals: m.Literals,
		Code:     m.Code[pc:next],
	}
}
