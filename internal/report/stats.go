// Package report renders the evaluation artifacts: the tables and figures
// of the paper (Table 1-3, Figures 5-7) from campaign results, plus the
// summary statistics (mean, median, dispersion) and ASCII distribution
// plots used in place of the paper's log-scale box plots.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes a sample.
type Stats struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	P25, P75     float64
	StdDev       float64
	Total        float64
}

// Summarize computes summary statistics of a float sample.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var st Stats
	st.N = len(s)
	st.Min, st.Max = s[0], s[len(s)-1]
	for _, v := range s {
		st.Total += v
	}
	st.Mean = st.Total / float64(len(s))
	st.Median = percentile(s, 0.5)
	st.P25 = percentile(s, 0.25)
	st.P75 = percentile(s, 0.75)
	var ss float64
	for _, v := range s {
		d := v - st.Mean
		ss += d * d
	}
	st.StdDev = math.Sqrt(ss / float64(len(s)))
	return st
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// IntsToFloats converts a sample.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// Histogram renders a log-scale ASCII distribution, the textual stand-in
// for the paper's log-scale box plots.
func Histogram(label string, xs []float64, width int) string {
	if len(xs) == 0 {
		return label + ": (no data)\n"
	}
	st := Summarize(xs)
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d, mean=%.2f, median=%.2f, min=%.0f, max=%.0f)\n",
		label, st.N, st.Mean, st.Median, st.Min, st.Max)

	// Log-scale buckets.
	buckets := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	counts := make([]int, len(buckets)+1)
	for _, v := range xs {
		placed := false
		for i, limit := range buckets {
			if v <= limit {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(buckets)]++
		}
	}
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		var rng string
		switch {
		case i == 0:
			rng = fmt.Sprintf("<=%3.0f", buckets[0])
		case i == len(buckets):
			rng = fmt.Sprintf("> %3.0f", buckets[len(buckets)-1])
		default:
			rng = fmt.Sprintf("<=%3.0f", buckets[i])
		}
		bar := strings.Repeat("#", c*width/maxCount)
		if bar == "" {
			bar = "#"
		}
		fmt.Fprintf(&b, "  %6s | %-*s %d\n", rng, width, bar, c)
	}
	return b.String()
}

// Table renders rows with aligned columns separated by two spaces.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
