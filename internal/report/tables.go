package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cogdiff/internal/concolic"
	"cogdiff/internal/core"
	"cogdiff/internal/defects"
	"cogdiff/internal/interp"
)

// Table1 renders the concolic paths of one exploration in the format of
// the paper's Table 1: the concrete argument witnesses and the constraint
// path of each exploration case.
func Table1(ex *concolic.Exploration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concolic execution paths of %s (%d paths, %d curated out, %d iterations)\n\n",
		ex.Target.Name, len(ex.Paths), ex.CuratedOut, ex.Iterations)
	header := []string{"#", "exit", "witness", "constraint path"}
	var rows [][]string
	for i, p := range ex.Paths {
		witness := p.Model.String()
		if len(witness) > 60 {
			witness = witness[:57] + "..."
		}
		path := p.Path.String()
		if len(path) > 100 {
			path = path[:97] + "..."
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), p.Exit.String(), witness, path,
		})
	}
	b.WriteString(Table(header, rows))
	return b.String()
}

// Table2 renders the per-compiler results row of the paper's Table 2.
func Table2(res *core.CampaignResult) string {
	header := []string{"Compiler", "# Tested Instructions", "# Interpreter Paths", "# Curated Paths", "# Differences (%)"}
	var rows [][]string
	totalI, totalP, totalC, totalD := 0, 0, 0, 0
	for _, r := range res.Reports {
		p, c, d := r.Totals()
		pct := 0.0
		if c > 0 {
			pct = 100 * float64(d) / float64(c)
		}
		rows = append(rows, []string{
			r.Compiler.String(),
			fmt.Sprintf("%d", r.TestedInstructions()),
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%d (%.2f%%)", d, pct),
		})
		totalI += r.TestedInstructions()
		totalP += p
		totalC += c
		totalD += d
	}
	pct := 0.0
	if totalC > 0 {
		pct = 100 * float64(totalD) / float64(totalC)
	}
	rows = append(rows, []string{
		"Total",
		fmt.Sprintf("%d", totalI),
		fmt.Sprintf("%d", totalP),
		fmt.Sprintf("%d", totalC),
		fmt.Sprintf("%d (%.2f%%)", totalD, pct),
	})
	return "Table 2: differences per compiler\n\n" + Table(header, rows)
}

// Table3 renders the defect-family summary of the paper's Table 3.
func Table3(res *core.CampaignResult) string {
	header := []string{"Family", "# Cases"}
	fams := res.CausesByFamily()
	var rows [][]string
	total := 0
	for f := defects.Family(0); f < defects.NumFamilies; f++ {
		rows = append(rows, []string{strings.Title(f.String()), fmt.Sprintf("%d", fams[f])})
		total += fams[f]
	}
	rows = append(rows, []string{"Total causes", fmt.Sprintf("%d", total)})
	return "Table 3: summary of found defects\n\n" + Table(header, rows)
}

// Causes renders the full deduplicated cause list.
func Causes(res *core.CampaignResult) string {
	keys := make([]string, 0, len(res.Causes))
	for k := range res.Causes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	header := []string{"Instruction", "Family", "Stage", "# Paths", "Example"}
	var rows [][]string
	for _, k := range keys {
		c := res.Causes[k]
		ex := c.Example
		if len(ex) > 70 {
			ex = ex[:67] + "..."
		}
		rows = append(rows, []string{c.Instruction, c.Family.String(), c.Stage, fmt.Sprintf("%d", c.Paths), ex})
	}
	return Table(header, rows)
}

// pathCounts extracts per-instruction path counts for one target kind.
func pathCounts(res *core.CampaignResult, kind concolic.TargetKind) []float64 {
	var out []float64
	for _, ex := range res.Explorations {
		if ex.Target.Kind == kind {
			out = append(out, float64(len(ex.Paths)+ex.CuratedOut))
		}
	}
	return out
}

// Figure5 renders paths-per-instruction distributions (the paper's Fig. 5:
// byte-codes average a few more than 2 paths, native methods many more).
func Figure5(res *core.CampaignResult) string {
	var b strings.Builder
	b.WriteString("Figure 5: paths per instruction (log-scale buckets)\n\n")
	b.WriteString(Histogram("Bytecode", pathCounts(res, concolic.TargetBytecode), 40))
	b.WriteString("\n")
	b.WriteString(Histogram("Native Method", pathCounts(res, concolic.TargetNativeMethod), 40))
	return b.String()
}

// exploreTimes extracts per-instruction concolic exploration times (µs).
func exploreTimes(res *core.CampaignResult, kind concolic.TargetKind) []float64 {
	var out []float64
	for _, ex := range res.Explorations {
		if ex.Target.Kind == kind {
			out = append(out, float64(ex.Duration.Microseconds()))
		}
	}
	return out
}

// Figure6 renders concolic exploration time per instruction kind (the
// paper's Fig. 6; absolute values differ from the paper's 2015 hardware
// and AST meta-interpreter, the byte-code < native-method shape holds).
func Figure6(res *core.CampaignResult) string {
	var b strings.Builder
	b.WriteString("Figure 6: concolic execution time per kind of instruction (µs)\n\n")
	bc := Summarize(exploreTimes(res, concolic.TargetBytecode))
	nm := Summarize(exploreTimes(res, concolic.TargetNativeMethod))
	header := []string{"Kind", "n", "mean (µs)", "median (µs)", "max (µs)", "total"}
	rows := [][]string{
		{"Bytecode", fmt.Sprintf("%d", bc.N), fmt.Sprintf("%.1f", bc.Mean), fmt.Sprintf("%.1f", bc.Median), fmt.Sprintf("%.0f", bc.Max), time.Duration(bc.Total * float64(time.Microsecond)).String()},
		{"Native Method", fmt.Sprintf("%d", nm.N), fmt.Sprintf("%.1f", nm.Mean), fmt.Sprintf("%.1f", nm.Median), fmt.Sprintf("%.0f", nm.Max), time.Duration(nm.Total * float64(time.Microsecond)).String()},
	}
	b.WriteString(Table(header, rows))
	return b.String()
}

// Figure7 renders test execution time per instruction per compiler (the
// paper's Fig. 7).
func Figure7(res *core.CampaignResult) string {
	var b strings.Builder
	b.WriteString("Figure 7: test execution time per instruction, by compiler (µs)\n\n")
	header := []string{"Compiler", "n", "mean (µs)", "median (µs)", "max (µs)", "total"}
	var rows [][]string
	for _, r := range res.Reports {
		var xs []float64
		for _, ir := range r.Instructions {
			xs = append(xs, float64(ir.TestTime.Microseconds()))
		}
		st := Summarize(xs)
		rows = append(rows, []string{
			r.Compiler.String(), fmt.Sprintf("%d", st.N),
			fmt.Sprintf("%.1f", st.Mean), fmt.Sprintf("%.1f", st.Median),
			fmt.Sprintf("%.0f", st.Max),
			time.Duration(st.Total * float64(time.Microsecond)).String(),
		})
	}
	b.WriteString(Table(header, rows))
	return b.String()
}

// PathDetail renders one path like a Fig. 2 column: input frame, output
// frame, exit condition and constraint path.
func PathDetail(ex *concolic.Exploration, idx int) string {
	if idx < 0 || idx >= len(ex.Paths) {
		return "no such path\n"
	}
	p := ex.Paths[idx]
	var b strings.Builder
	fmt.Fprintf(&b, "Path %d of %s\n", idx+1, ex.Target.Name)
	fmt.Fprintf(&b, "  exit:        %s\n", p.Exit)
	fmt.Fprintf(&b, "  witness:     %s\n", p.Model)
	fmt.Fprintf(&b, "  constraints: %s\n", p.Path)
	fmt.Fprintf(&b, "  input frame:  %s\n", frameDesc(p.InputFrame))
	fmt.Fprintf(&b, "  output frame: %s\n", frameDesc(p.OutputFrame))
	return b.String()
}

func frameDesc(f *interp.Frame) string {
	if f == nil {
		return "(none)"
	}
	cells := make([]string, 0, f.Size())
	for _, v := range f.Stack {
		if v.Sym != nil {
			cells = append(cells, v.Sym.String())
		} else {
			cells = append(cells, fmt.Sprintf("%#x", uint64(v.W)))
		}
	}
	return fmt.Sprintf("stack=[%s]", strings.Join(cells, ", "))
}
