package report

import (
	"strings"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/core"
	"cogdiff/internal/primitives"
)

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{1, 2, 3, 4, 5})
	if st.N != 5 || st.Mean != 3 || st.Median != 3 || st.Min != 1 || st.Max != 5 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.Total != 15 {
		t.Fatalf("total wrong: %v", st.Total)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty sample must be zero")
	}
}

func TestPercentiles(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if p := percentile(s, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := percentile(s, 1); p != 4 {
		t.Fatalf("p100 = %v", p)
	}
	if p := percentile(s, 0.5); p != 2.5 {
		t.Fatalf("p50 = %v", p)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("sample", []float64{1, 1, 2, 3, 100, 500}, 20)
	for _, want := range []string{"sample", "mean", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	if Histogram("empty", nil, 20) == "" {
		t.Error("empty histogram must still render a label")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines: %v", lines)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func miniCampaign(t *testing.T) *core.CampaignResult {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.BytecodeFilter = func(op bytecode.Op) bool { return op == bytecode.OpPrimAdd }
	cfg.PrimitiveFilter = func(p *primitives.Primitive) bool { return p.Name == "primitiveAdd" || p.Name == "primitiveFFIInt8At" }
	return core.NewCampaign(cfg).Run()
}

func TestTables(t *testing.T) {
	res := miniCampaign(t)
	t2 := Table2(res)
	for _, want := range []string{"Native Methods", "Simple Stack", "Total", "# Differences"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
	t3 := Table3(res)
	if !strings.Contains(t3, "Missing Functionality") || !strings.Contains(t3, "Total causes") {
		t.Errorf("Table3 incomplete:\n%s", t3)
	}
	if c := Causes(res); !strings.Contains(c, "primitiveFFIInt8At") {
		t.Errorf("causes missing FFI entry:\n%s", c)
	}
}

func TestFigures(t *testing.T) {
	res := miniCampaign(t)
	if f := Figure5(res); !strings.Contains(f, "Bytecode") || !strings.Contains(f, "Native Method") {
		t.Errorf("Figure5 incomplete:\n%s", f)
	}
	if f := Figure6(res); !strings.Contains(f, "mean (µs)") {
		t.Errorf("Figure6 incomplete:\n%s", f)
	}
	if f := Figure7(res); !strings.Contains(f, "Stack-to-Register") {
		t.Errorf("Figure7 incomplete:\n%s", f)
	}
}

func TestTable1AndPathDetail(t *testing.T) {
	prims := primitives.NewTable()
	ex := concolic.NewExplorer(prims, concolic.DefaultOptions()).Explore(concolic.BytecodeTarget(bytecode.OpPrimAdd))
	t1 := Table1(ex)
	if !strings.Contains(t1, "isSmallInteger") {
		t.Errorf("Table1 missing constraints:\n%s", t1)
	}
	pd := PathDetail(ex, 0)
	for _, want := range []string{"exit:", "witness:", "input frame", "output frame"} {
		if !strings.Contains(pd, want) {
			t.Errorf("path detail missing %q:\n%s", want, pd)
		}
	}
	if PathDetail(ex, 999) != "no such path\n" {
		t.Error("out-of-range path detail")
	}
}
