// Package excache is a persistent content-addressed cache for concolic
// exploration results and differential test-unit verdicts.
//
// Concolic exploration and differential testing are pure: the path set of
// an instruction depends only on the instruction descriptor and the
// interpreter/primitive/solver semantics, and a test unit's verdicts
// depend only on the exploration content, the compiler, the ISAs and the
// seeded defect state. Every cache entry is therefore keyed by a SHA-256
// hash over exactly those inputs, so a repeat campaign re-explores and
// re-tests only what changed — the "campaign-on-every-commit" speed the
// ROADMAP calls for.
//
// Safety contract: a cache hit is observationally identical to fresh
// work — campaign reports are byte-identical with the cache off, cold or
// warm, at any worker count. Three mechanisms enforce it:
//
//   - Keys embed the semantics versions of every layer an entry depends
//     on (interp, primitives, solver for explorations; additionally jit
//     and machine for test units). Bumping any version orphans all old
//     entries: they become plain misses, never stale hits.
//   - Entries are wrapped in an envelope carrying the entry key and a
//     SHA-256 of the payload. Truncated, corrupted, zero-length or
//     mislabeled files fail validation and are treated as misses (the
//     cogdiff_excache_corrupt_total counter records them), never as
//     errors or wrong results.
//   - Writes go through a temp file plus atomic rename, so concurrent
//     campaigns sharing one cache directory only ever observe complete
//     entries (last writer wins; both payloads are valid by purity).
//
// The cache is nil-safe throughout: a nil *Cache loads nothing and
// stores nothing, so engines thread it unconditionally.
package excache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"cogdiff/internal/concolic"
	"cogdiff/internal/telemetry"
)

// Mode selects how a cache participates in a run.
type Mode int

const (
	// ModeOff disables the cache entirely (Open returns a nil cache).
	ModeOff Mode = iota
	// ModeRO consults existing entries but never writes.
	ModeRO
	// ModeRW consults entries and writes back fresh results.
	ModeRW
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeRO:
		return "ro"
	case ModeRW:
		return "rw"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the CLI notation off|ro|rw. The empty string means
// ModeRW — passing -cache-dir alone enables the full cache.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "rw":
		return ModeRW, nil
	case "ro":
		return ModeRO, nil
	case "off":
		return ModeOff, nil
	}
	return ModeOff, fmt.Errorf("-cache %q: want off, ro or rw", s)
}

// Versions names the semantic revisions baked into every cache key.
// Bumping any component orphans all entries derived from it.
type Versions struct {
	Schema     string // excache entry layout
	Interp     string // interpreter semantics (interp.SemanticsVersion)
	Primitives string // primitive-table semantics
	Solver     string // solver semantics
	JIT        string // compiler semantics (test units only)
	Machine    string // simulated-machine semantics (test units only)
}

// Stats is a point-in-time snapshot of cache traffic.
type Stats struct {
	Hits    int64
	Misses  int64
	Corrupt int64
	Writes  int64
	Evicted int64
}

// HitRate returns hits/(hits+misses), zero when there was no traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Config parameterizes Open.
type Config struct {
	// Dir is the cache directory. Created (rw) if missing.
	Dir string
	// Mode selects off/ro/rw participation.
	Mode Mode
	// Metrics, when non-nil, mirrors the hit/miss/corrupt/write/evict
	// counters into the telemetry registry (cogdiff_excache_*_total).
	Metrics *telemetry.Registry
	// MaxEntries bounds the number of entry files (0 = unlimited). When a
	// write pushes the directory over the bound, the oldest entries by
	// modification time are evicted.
	MaxEntries int
	// Versions overrides the semantic version stamps (zero value =
	// DefaultVersions). Tests use it to simulate version bumps.
	Versions Versions
}

// Cache is a content-addressed on-disk store for exploration and
// test-unit entries. All methods are safe for concurrent use and safe on
// a nil receiver.
type Cache struct {
	dir        string
	mode       Mode
	maxEntries int
	vers       Versions

	hits, misses, corrupt, writes, evicted atomic.Int64

	mHits, mMisses, mCorrupt, mWrites, mEvicted *telemetry.Counter

	evictMu sync.Mutex
}

// DefaultVersions returns the live semantic version stamps of every
// layer, collected from the packages that own them.
func DefaultVersions() Versions {
	return Versions{
		Schema:     schemaVersion,
		Interp:     interpVersion(),
		Primitives: primitivesVersion(),
		Solver:     solverVersion(),
		JIT:        jitVersion(),
		Machine:    machineVersion(),
	}
}

const schemaVersion = "cogdiff-excache/1"

// Open validates the configuration and returns a ready cache. ModeOff
// (or an empty Dir) returns a nil cache, which is valid and inert. In rw
// mode the directory is created and probed for writability, so campaigns
// fail fast on misconfiguration instead of silently running uncached.
func Open(cfg Config) (*Cache, error) {
	if cfg.Mode == ModeOff || cfg.Dir == "" {
		return nil, nil
	}
	vers := cfg.Versions
	if vers == (Versions{}) {
		vers = DefaultVersions()
	}
	if vers.Schema == "" {
		vers.Schema = schemaVersion
	}
	c := &Cache{
		dir:        cfg.Dir,
		mode:       cfg.Mode,
		maxEntries: cfg.MaxEntries,
		vers:       vers,
		mHits:      cfg.Metrics.Counter(telemetry.MetricCacheHits),
		mMisses:    cfg.Metrics.Counter(telemetry.MetricCacheMisses),
		mCorrupt:   cfg.Metrics.Counter(telemetry.MetricCacheCorrupt),
		mWrites:    cfg.Metrics.Counter(telemetry.MetricCacheWrites),
		mEvicted:   cfg.Metrics.Counter(telemetry.MetricCacheEvicted),
	}
	if cfg.Mode == ModeRW {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("excache: create cache dir: %w", err)
		}
		probe, err := os.CreateTemp(cfg.Dir, ".probe-*")
		if err != nil {
			return nil, fmt.Errorf("excache: cache dir not writable: %w", err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	return c, nil
}

// Mode returns the cache's participation mode (ModeOff for nil).
func (c *Cache) Mode() Mode {
	if c == nil {
		return ModeOff
	}
	return c.mode
}

// Stats snapshots the traffic counters (zero for nil).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Writes:  c.writes.Load(),
		Evicted: c.evicted.Load(),
	}
}

// envelope wraps every entry file: the schema stamp, the entry's own key
// and a payload digest detect truncation, corruption and mislabeled or
// hand-edited files, all of which downgrade to misses.
type envelope struct {
	Schema  string          `json:"schema"`
	Key     string          `json:"key"`
	SHA256  string          `json:"payloadSha256"`
	Payload json.RawMessage `json:"payload"`
}

func hashHex(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ExplorationKey derives the content key of one instruction's concolic
// exploration: the full instruction descriptor (for byte-codes the
// synthesized method — code bytes, temporaries and literals — for native
// methods the primitive identity), the interpreter, primitive-table and
// solver semantics versions, and every exploration option that shapes
// the path set (iteration bound, seeded interpreter defects).
func (c *Cache) ExplorationKey(t concolic.Target, opts concolic.Options) string {
	if c == nil {
		return ""
	}
	return hashHex(
		"exploration",
		c.vers.Schema, c.vers.Interp, c.vers.Primitives, c.vers.Solver,
		targetDescriptor(t),
		fmt.Sprintf("maxIterations=%d", opts.MaxIterations),
		fmt.Sprintf("interpDefects=%+v", opts.InterpreterDefects),
	)
}

// UnitKey derives the content key of one differential test unit from the
// exploration fingerprint that drives it plus caller-supplied parts
// (compiler kind, ISA list, defect switches). Every semantics version is
// mixed in: a unit verdict re-executes the interpreter and primitives as
// the reference and the jit and machine as the subject, so bumping any
// of them must orphan cached verdicts — even when the exploration
// content (and hence the fingerprint) happens to be unchanged.
func (c *Cache) UnitKey(explorationFingerprint string, parts ...string) string {
	if c == nil {
		return ""
	}
	all := append([]string{
		"unit",
		c.vers.Schema, c.vers.Interp, c.vers.Primitives, c.vers.Solver,
		c.vers.JIT, c.vers.Machine,
		explorationFingerprint,
	}, parts...)
	return hashHex(all...)
}

// targetDescriptor renders the cache-relevant identity of a target.
func targetDescriptor(t concolic.Target) string {
	if t.Kind == concolic.TargetBytecode {
		lits := ""
		if t.Method != nil {
			for _, l := range t.Method.Literals {
				lits += fmt.Sprintf("|%d:%d:%g:%s", l.Kind, l.Int, l.Float, l.Str)
			}
			return fmt.Sprintf("bytecode/%s/op=%d/code=%x/temps=%d/lits=%s",
				t.Name, int(t.Op), t.Method.Code, t.Method.NumTemps, lits)
		}
		return fmt.Sprintf("bytecode/%s/op=%d", t.Name, int(t.Op))
	}
	return fmt.Sprintf("nativeMethod/%s/index=%d/args=%d", t.Name, t.PrimIndex, t.PrimNumArgs)
}

// entryPath maps a (kind, key) pair to its file. Keys are hex digests,
// so the name needs no escaping.
func (c *Cache) entryPath(kind, key string) string {
	return filepath.Join(c.dir, kind+"-"+key+".json")
}

// loadStatus classifies one lookup without touching counters, so typed
// loaders can defer accounting until their own payload decoding is done.
type loadStatus int

const (
	loadOK loadStatus = iota
	loadMissing
	loadCorrupt
)

// loadEnvelope reads and validates one entry file. A missing file is
// loadMissing; a truncated, corrupted, zero-length, wrong-schema or
// wrong-key file, or a payload-digest mismatch, is loadCorrupt.
func (c *Cache) loadEnvelope(kind, key string) ([]byte, loadStatus) {
	data, err := os.ReadFile(c.entryPath(kind, key))
	if err != nil {
		return nil, loadMissing
	}
	var env envelope
	if len(data) == 0 || json.Unmarshal(data, &env) != nil ||
		env.Schema != c.vers.Schema || env.Key != key ||
		env.SHA256 != hashHex(string(env.Payload)) {
		return nil, loadCorrupt
	}
	return env.Payload, loadOK
}

// LoadBlob fetches a raw payload. A missing entry is a miss; an invalid
// one (truncated, corrupted, zero-length, wrong schema or key, digest
// mismatch) is a miss that also bumps the corrupt counter. LoadBlob
// never fails: every malformed state downgrades to "re-do the work".
func (c *Cache) LoadBlob(kind, key string) ([]byte, bool) {
	if c == nil || c.mode == ModeOff || key == "" {
		return nil, false
	}
	payload, st := c.loadEnvelope(kind, key)
	switch st {
	case loadMissing:
		c.miss()
		return nil, false
	case loadCorrupt:
		c.corruptMiss()
		return nil, false
	}
	c.hit()
	return payload, true
}

// StoreBlob writes a JSON payload under (kind, key) via temp-file +
// atomic rename. The payload is compacted first — embedding a
// json.RawMessage compacts it anyway, and the digest must cover the
// bytes as stored. Best effort: invalid payloads and write failures are
// silently dropped (the cache never fails a campaign), and ro mode
// stores nothing.
func (c *Cache) StoreBlob(kind, key string, payload []byte) {
	if c == nil || c.mode != ModeRW || key == "" {
		return
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, payload); err != nil {
		return
	}
	payload = compacted.Bytes()
	env := envelope{
		Schema:  c.vers.Schema,
		Key:     key,
		SHA256:  hashHex(string(payload)),
		Payload: payload,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.entryPath(kind, key)); err != nil {
		os.Remove(name)
		return
	}
	c.writes.Add(1)
	c.mWrites.Inc()
	c.evictOverflow()
}

// LoadExploration fetches a cached exploration and rebinds it to target.
// The deserialized exploration is observationally identical to a fresh
// one: paths, witnesses, exits, universe and counters round-trip exactly
// (internal/concolic cache contract), so differential testing and report
// rendering cannot tell a hit from fresh work. An entry whose envelope
// validates but whose payload fails semantic decoding — or names a
// different target than the key demands — counts as corrupt, not a hit.
func (c *Cache) LoadExploration(key string, target concolic.Target) (*concolic.Exploration, bool) {
	if c == nil || c.mode == ModeOff || key == "" {
		return nil, false
	}
	payload, st := c.loadEnvelope("ex", key)
	if st == loadMissing {
		c.miss()
		return nil, false
	}
	if st == loadCorrupt {
		c.corruptMiss()
		return nil, false
	}
	ex, err := concolic.UnmarshalExploration(payload)
	if err != nil || ex.Target.Name != target.Name || ex.Target.Kind != target.Kind {
		c.corruptMiss()
		return nil, false
	}
	// Rebind the caller's full target (the serialized form carries only
	// the descriptor; Method pointers are re-synthesized identically).
	ex.Target = target
	c.hit()
	return ex, true
}

// StoreExploration serializes and stores one exploration.
func (c *Cache) StoreExploration(key string, ex *concolic.Exploration) {
	if c == nil || c.mode != ModeRW {
		return
	}
	payload, err := concolic.MarshalExploration(ex)
	if err != nil {
		return
	}
	c.StoreBlob("ex", key, payload)
}

func (c *Cache) hit() {
	c.hits.Add(1)
	c.mHits.Inc()
}

func (c *Cache) miss() {
	c.misses.Add(1)
	c.mMisses.Inc()
}

func (c *Cache) corruptMiss() {
	c.corrupt.Add(1)
	c.mCorrupt.Inc()
	c.miss()
}

// evictOverflow trims the directory to MaxEntries, oldest first by
// modification time. Serialized so concurrent writers do not race over
// the same victims; removal errors are ignored (another writer won).
func (c *Cache) evictOverflow() {
	if c.maxEntries <= 0 {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	var files []aged
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{name: e.Name(), mod: info.ModTime().UnixNano()})
	}
	if len(files) <= c.maxEntries {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name
	})
	for _, f := range files[:len(files)-c.maxEntries] {
		if os.Remove(filepath.Join(c.dir, f.name)) == nil {
			c.evicted.Add(1)
			c.mEvicted.Inc()
		}
	}
}
