package excache_test

// Unit and robustness tests for the persistent exploration cache. The
// contract under test: hits are observationally identical to fresh
// exploration, and nothing a cache directory can contain — truncated,
// corrupted, zero-length or mislabeled entries, or entries from other
// semantic versions — is ever an error or a wrong result; every
// malformed state downgrades to a miss that re-does and overwrites.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/excache"
	"cogdiff/internal/interp"
	"cogdiff/internal/primitives"
	"cogdiff/internal/telemetry"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want excache.Mode
		err  bool
	}{
		{"", excache.ModeRW, false},
		{"rw", excache.ModeRW, false},
		{"ro", excache.ModeRO, false},
		{"off", excache.ModeOff, false},
		{"readwrite", 0, true},
		{"RW", 0, true},
	}
	for _, c := range cases {
		got, err := excache.ParseMode(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseMode(%q): err=%v, want error=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestOpenDisabledReturnsNilCache(t *testing.T) {
	for _, cfg := range []excache.Config{
		{Mode: excache.ModeOff, Dir: t.TempDir()},
		{Mode: excache.ModeRW, Dir: ""},
	} {
		c, err := excache.Open(cfg)
		if err != nil {
			t.Fatalf("Open(%+v): %v", cfg, err)
		}
		if c != nil {
			t.Fatalf("Open(%+v) returned a live cache, want nil", cfg)
		}
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *excache.Cache
	if c.Mode() != excache.ModeOff {
		t.Errorf("nil cache Mode() = %v, want ModeOff", c.Mode())
	}
	if key := c.ExplorationKey(concolic.BytecodeTarget(bytecode.OpPrimAdd), concolic.DefaultOptions()); key != "" {
		t.Errorf("nil cache ExplorationKey = %q, want empty", key)
	}
	if key := c.UnitKey("fp", "a"); key != "" {
		t.Errorf("nil cache UnitKey = %q, want empty", key)
	}
	if _, ok := c.LoadBlob("ex", "k"); ok {
		t.Error("nil cache LoadBlob reported a hit")
	}
	c.StoreBlob("ex", "k", []byte(`{}`))
	if _, ok := c.LoadExploration("k", concolic.BytecodeTarget(bytecode.OpPrimAdd)); ok {
		t.Error("nil cache LoadExploration reported a hit")
	}
	c.StoreExploration("k", &concolic.Exploration{})
	if s := c.Stats(); s != (excache.Stats{}) {
		t.Errorf("nil cache Stats() = %+v, want zero", s)
	}
}

func openRW(t *testing.T, dir string, reg *telemetry.Registry) *excache.Cache {
	t.Helper()
	c, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// exploreTargets lists every instruction family of the production
// catalog: all byte-codes under test plus all native methods.
func exploreTargets() []concolic.Target {
	var targets []concolic.Target
	for _, op := range bytecode.AllOpcodes() {
		if bytecode.Describe(op).Family == bytecode.FamCallPrimitive {
			continue
		}
		targets = append(targets, concolic.BytecodeTarget(op))
	}
	prims := primitives.NewTable()
	for _, p := range prims.All() {
		targets = append(targets, concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs))
	}
	return targets
}

// TestExplorationRoundTripEveryFamily is the cache correctness property
// test: for every instruction family in the production catalog, the
// exploration loaded from the cache must be deep-equal to the fresh one
// on every surface the differential tester and the reports consume —
// path exits, solver witnesses, constraint display strings, universe,
// counters and duration — and must fingerprint identically, so derived
// test-unit cache keys are stable across fresh and cached explorations.
func TestExplorationRoundTripEveryFamily(t *testing.T) {
	dir := t.TempDir()
	cache := openRW(t, dir, nil)
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())

	targets := exploreTargets()
	if len(targets) < 100 {
		t.Fatalf("production catalog suspiciously small: %d targets", len(targets))
	}
	for _, target := range targets {
		fresh := explorer.Explore(target)
		key := cache.ExplorationKey(target, concolic.DefaultOptions())
		cache.StoreExploration(key, fresh)
		loaded, ok := cache.LoadExploration(key, target)
		if !ok {
			t.Fatalf("%s: stored exploration did not load", target.Name)
		}

		freshBytes, err := concolic.MarshalExploration(fresh)
		if err != nil {
			t.Fatalf("%s: marshal fresh: %v", target.Name, err)
		}
		loadedBytes, err := concolic.MarshalExploration(loaded)
		if err != nil {
			t.Fatalf("%s: marshal loaded: %v", target.Name, err)
		}
		if !bytes.Equal(freshBytes, loadedBytes) {
			t.Errorf("%s: cached exploration is not deep-equal to fresh exploration", target.Name)
			continue
		}
		fpFresh, _ := concolic.FingerprintExploration(fresh)
		fpLoaded, _ := concolic.FingerprintExploration(loaded)
		if fpFresh == "" || fpFresh != fpLoaded {
			t.Errorf("%s: fingerprint drift: fresh %q, loaded %q", target.Name, fpFresh, fpLoaded)
		}
		if len(loaded.Paths) != len(fresh.Paths) || loaded.CuratedOut != fresh.CuratedOut ||
			loaded.Iterations != fresh.Iterations || loaded.Duration != fresh.Duration {
			t.Errorf("%s: path tree shape drift after round trip", target.Name)
		}
		for i := range fresh.Paths {
			// The serialized exit (like the report pipeline) carries the
			// exit kind and control fields but not the concrete result
			// value; normalize before the structural comparison.
			fe, le := fresh.Paths[i].Exit, loaded.Paths[i].Exit
			fe.Result, fe.HasResult = interp.Value{}, false
			le.Result, le.HasResult = interp.Value{}, false
			if !reflect.DeepEqual(fe, le) {
				t.Errorf("%s path %d: exit drift", target.Name, i)
			}
			if !reflect.DeepEqual(fresh.Paths[i].Model, loaded.Paths[i].Model) {
				t.Errorf("%s path %d: witness model drift", target.Name, i)
			}
		}
	}

	s := cache.Stats()
	if s.Hits != int64(len(targets)) || s.Misses != 0 || s.Corrupt != 0 {
		t.Errorf("stats after round trips: %+v, want %d hits, 0 misses, 0 corrupt", s, len(targets))
	}
}

// entryFile returns the single cache entry file of one kind.
func entryFile(t *testing.T, dir, kind string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, kind+"-*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one %s entry, got %v (err %v)", kind, matches, err)
	}
	return matches[0]
}

// TestCorruptEntriesAreMisses pins the robustness contract: truncated,
// zero-length and garbage entry files, payload-digest mismatches and
// key-mislabeled files are all misses that bump the corrupt counter
// (cogdiff_excache_corrupt_total) and are silently overwritten by the
// re-done work — never errors, never wrong results.
func TestCorruptEntriesAreMisses(t *testing.T) {
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	fresh := explorer.Explore(target)

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"zero-length", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not json at all\x00\xff"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload-tampered", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tampered := bytes.Replace(data, []byte(`"paths"`), []byte(`"Paths"`), 1)
			if bytes.Equal(tampered, data) {
				t.Fatal("tamper marker not found")
			}
			if err := os.WriteFile(path, tampered, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			reg := telemetry.NewRegistry()
			cache := openRW(t, dir, reg)
			key := cache.ExplorationKey(target, concolic.DefaultOptions())
			cache.StoreExploration(key, fresh)
			c.corrupt(t, entryFile(t, dir, "ex"))

			if _, ok := cache.LoadExploration(key, target); ok {
				t.Fatal("corrupted entry reported as hit")
			}
			s := cache.Stats()
			if s.Corrupt != 1 || s.Misses != 1 {
				t.Errorf("stats after corrupt load: %+v, want 1 corrupt, 1 miss", s)
			}
			if got := reg.Counter(telemetry.MetricCacheCorrupt).Value(); got != 1 {
				t.Errorf("%s = %d, want 1", telemetry.MetricCacheCorrupt, got)
			}

			// The contract's second half: re-done work overwrites the bad
			// entry and the next load hits.
			cache.StoreExploration(key, fresh)
			loaded, ok := cache.LoadExploration(key, target)
			if !ok {
				t.Fatal("re-stored entry did not load")
			}
			if len(loaded.Paths) != len(fresh.Paths) {
				t.Errorf("re-stored entry has %d paths, want %d", len(loaded.Paths), len(fresh.Paths))
			}
		})
	}
}

// TestMislabeledEntryIsCorrupt covers the remaining envelope checks: an
// entry stored under one key must not satisfy a lookup for another
// (env.Key mismatch), and entries from a different schema version are
// corrupt, not hits.
func TestMislabeledEntryIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cache := openRW(t, dir, nil)
	cache.StoreBlob("ex", strings.Repeat("a", 64), []byte(`{"x":1}`))
	src := entryFile(t, dir, "ex")
	otherKey := strings.Repeat("b", 64)
	if err := os.Rename(src, filepath.Join(dir, "ex-"+otherKey+".json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.LoadBlob("ex", otherKey); ok {
		t.Fatal("entry stored under key a satisfied lookup for key b")
	}
	if s := cache.Stats(); s.Corrupt != 1 {
		t.Errorf("stats: %+v, want 1 corrupt", s)
	}
}

// TestVersionBumpOrphansEntries pins the invalidation rule: bumping the
// interpreter semantics version changes every exploration key, so a
// cache populated under the old version misses (and re-explores) rather
// than serving stale semantics. The old entries are never reported as
// corrupt — they are simply unreachable.
func TestVersionBumpOrphansEntries(t *testing.T) {
	dir := t.TempDir()
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	fresh := explorer.Explore(target)

	v1 := excache.DefaultVersions()
	c1, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW, Versions: v1})
	if err != nil {
		t.Fatal(err)
	}
	k1 := c1.ExplorationKey(target, concolic.DefaultOptions())
	c1.StoreExploration(k1, fresh)

	v2 := v1
	v2.Interp = "interp/999-bumped"
	c2, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW, Versions: v2})
	if err != nil {
		t.Fatal(err)
	}
	k2 := c2.ExplorationKey(target, concolic.DefaultOptions())
	if k1 == k2 {
		t.Fatal("interpreter version bump did not change the exploration key")
	}
	if _, ok := c2.LoadExploration(k2, target); ok {
		t.Fatal("version-bumped cache hit an entry from the old semantics")
	}
	s := c2.Stats()
	if s.Misses != 1 || s.Corrupt != 0 {
		t.Errorf("stats: %+v, want a plain miss (1 miss, 0 corrupt)", s)
	}
	// Re-explore + write back under the new version; both generations
	// coexist in the directory.
	c2.StoreExploration(k2, fresh)
	if _, ok := c2.LoadExploration(k2, target); !ok {
		t.Fatal("re-stored entry under bumped version did not load")
	}
	if _, ok := c1.LoadExploration(k1, target); !ok {
		t.Fatal("old-version entry destroyed by version bump")
	}
}

func TestReadOnlyModeNeverWrites(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "does-not-exist")
	ro, err := excache.Open(excache.Config{Dir: missing, Mode: excache.ModeRO})
	if err != nil {
		t.Fatalf("ro mode must tolerate a missing directory: %v", err)
	}
	if _, ok := ro.LoadBlob("ex", strings.Repeat("a", 64)); ok {
		t.Fatal("hit on a missing directory")
	}
	ro.StoreBlob("ex", strings.Repeat("a", 64), []byte(`{}`))
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("ro-mode store created the cache directory")
	}

	// A populated directory serves hits in ro mode, still without writes.
	rw := openRW(t, dir, nil)
	rw.StoreBlob("ex", strings.Repeat("c", 64), []byte(`{"v":1}`))
	ro2, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRO})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ro2.LoadBlob("ex", strings.Repeat("c", 64)); !ok {
		t.Fatal("ro mode did not hit an existing entry")
	}
	ro2.StoreBlob("ex", strings.Repeat("d", 64), []byte(`{"v":2}`))
	if s := ro2.Stats(); s.Writes != 0 {
		t.Errorf("ro mode recorded %d writes", s.Writes)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(matches) != 1 {
		t.Errorf("ro mode changed the directory: %v", matches)
	}
}

func TestUnwritableDirectoryFailsOpen(t *testing.T) {
	// A path under a regular file cannot be created, even by root.
	_, err := excache.Open(excache.Config{Dir: filepath.Join(os.DevNull, "cache"), Mode: excache.ModeRW})
	if err == nil {
		t.Fatal("Open succeeded on a directory under /dev/null")
	}
}

func TestEvictionBoundsEntryCount(t *testing.T) {
	dir := t.TempDir()
	c, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW, MaxEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		strings.Repeat("1", 64), strings.Repeat("2", 64), strings.Repeat("3", 64),
		strings.Repeat("4", 64), strings.Repeat("5", 64),
	}
	for i, k := range keys {
		c.StoreBlob("ex", k, []byte(`{"i":`+string(rune('0'+i))+`}`))
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(matches) > 3 {
		t.Errorf("directory holds %d entries, MaxEntries is 3", len(matches))
	}
	if s := c.Stats(); s.Evicted < 2 {
		t.Errorf("stats: %+v, want >= 2 evictions", s)
	}
	// The newest entry must have survived.
	if _, ok := c.LoadBlob("ex", keys[len(keys)-1]); !ok {
		t.Error("newest entry was evicted")
	}
}

// TestConcurrentBlobTraffic hammers one cache from many goroutines
// (mixed loads and stores over a small key space) so the race-detector
// tier verifies the cache's internal synchronization.
func TestConcurrentBlobTraffic(t *testing.T) {
	dir := t.TempDir()
	c := openRW(t, dir, telemetry.NewRegistry())
	keys := []string{strings.Repeat("a", 64), strings.Repeat("b", 64), strings.Repeat("c", 64)}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := keys[(g+i)%len(keys)]
				c.StoreBlob("ex", k, []byte(`{"g":1}`))
				if payload, ok := c.LoadBlob("ex", k); ok {
					if !bytes.Equal(payload, []byte(`{"g":1}`)) {
						t.Errorf("goroutine %d read torn payload %q", g, payload)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s := c.Stats(); s.Corrupt != 0 {
		t.Errorf("concurrent traffic produced %d corrupt reads (atomic rename broken?)", s.Corrupt)
	}
}
