package excache

import (
	"cogdiff/internal/interp"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
	"cogdiff/internal/solver"
)

// The live semantic version stamps, isolated here so the rest of the
// package never references layer packages directly and tests can build
// caches with synthetic Versions to simulate bumps.

func interpVersion() string     { return interp.SemanticsVersion }
func primitivesVersion() string { return primitives.SemanticsVersion }
func solverVersion() string     { return solver.SemanticsVersion }
func jitVersion() string        { return jit.SemanticsVersion }
func machineVersion() string    { return machine.SemanticsVersion }
