package fuzzer

// Pools-on/off determinism for the fuzz engine: the pooled execution
// environments and the compiled-code cache the engine's tester reuses
// across iterations are pure optimizations, so a budgeted run with them
// disabled must reproduce the default run byte for byte — same coverage,
// same corpus, same differences, same rendered report — at any worker
// count. Only the CodeCache diagnostics may (and must) differ.

import (
	"reflect"
	"testing"
)

func runNoReuse(t *testing.T, noReuse bool, workers int) *Result {
	t.Helper()
	opts := Options{Seed: 2022, Budget: 300, Workers: workers, Minimize: true}
	opts.noReuse = noReuse
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFuzzByteIdenticalPoolsOnOff(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pooled := runNoReuse(t, false, workers)
		fresh := runNoReuse(t, true, workers)

		if got, want := Report(pooled), Report(fresh); got != want {
			t.Errorf("workers=%d: rendered fuzz reports differ between pooled and noReuse runs", workers)
		}
		if pooled.Executions != fresh.Executions || pooled.Discarded != fresh.Discarded {
			t.Errorf("workers=%d: execution counts differ: pooled %d/%d, fresh %d/%d",
				workers, pooled.Executions, pooled.Discarded, fresh.Executions, fresh.Discarded)
		}
		if pooled.CoverageBits != fresh.CoverageBits || pooled.CorpusSize != fresh.CorpusSize {
			t.Errorf("workers=%d: coverage differs: pooled bits=%d corpus=%d, fresh bits=%d corpus=%d",
				workers, pooled.CoverageBits, pooled.CorpusSize, fresh.CoverageBits, fresh.CorpusSize)
		}
		if !reflect.DeepEqual(pooled.Differences, fresh.Differences) {
			t.Errorf("workers=%d: differences diverge between pooled and noReuse runs", workers)
		}
		if !reflect.DeepEqual(pooled.Matched, fresh.Matched) {
			t.Errorf("workers=%d: matched causes diverge between pooled and noReuse runs", workers)
		}
		if fresh.CodeCache.Hits != 0 || fresh.CodeCache.Misses != 0 {
			t.Errorf("workers=%d: noReuse run recorded code-cache traffic %d/%d",
				workers, fresh.CodeCache.Hits, fresh.CodeCache.Misses)
		}
	}
}
