package fuzzer

import (
	"math"
	"math/rand" //cogdiff:allow-nondeterminism fuzzer RNG is explicitly seeded; runs replay from the seed

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
)

// The mutation engine: every mutator builds a candidate genome from a
// parent (and possibly a splice partner); Check is the only arbiter of
// validity. Mutate retries a bounded number of times and falls back to a
// fresh random genome, so it always returns something well-formed.

// Mutate derives a well-formed child from parent; partner donates genes
// for splices and inputs for crossover (it may equal parent).
func Mutate(rng *rand.Rand, parent, partner *Seq) *Seq {
	for try := 0; try < 12; try++ {
		cand := mutateOnce(rng, parent, partner)
		if cand != nil && cand.Check() == nil {
			return cand
		}
	}
	return RandomSeq(rng, rng.Intn(maxSeqArgs+1), ProfileFull)
}

func mutateOnce(rng *rand.Rand, parent, partner *Seq) *Seq {
	switch rng.Intn(9) {
	case 0:
		return substituteOp(rng, parent)
	case 1:
		return mutateLiteral(rng, parent)
	case 2:
		return mutateInput(rng, parent)
	case 3:
		return mutateIndex(rng, parent)
	case 4:
		return insertGene(rng, parent)
	case 5:
		return deleteGene(rng, parent)
	case 6:
		return truncateTail(rng, parent)
	case 7:
		return spliceTail(rng, parent, partner)
	}
	return crossInputs(parent, partner)
}

// substituteOp replaces one gene with another member of its signature
// class (binop for binop, push for push, ...), the "opcode substitution
// within family" mutator.
func substituteOp(rng *rand.Rand, parent *Seq) *Seq {
	s := parent.Clone()
	i := rng.Intn(len(s.Code))
	g := &s.Code[i]
	d := bytecode.Describe(g.Op)
	switch d.Family {
	case bytecode.FamPrimAdd, bytecode.FamPrimSubtract, bytecode.FamPrimMultiply,
		bytecode.FamPrimDivide, bytecode.FamPrimDiv, bytecode.FamPrimMod,
		bytecode.FamPrimBitAnd, bytecode.FamPrimBitOr, bytecode.FamPrimBitXor,
		bytecode.FamPrimBitShift,
		bytecode.FamPrimLessThan, bytecode.FamPrimGreaterThan,
		bytecode.FamPrimLessOrEqual, bytecode.FamPrimGreaterOrEqual,
		bytecode.FamPrimEqual, bytecode.FamPrimNotEqual:
		g.Op = binaryOps[rng.Intn(len(binaryOps))]
	case bytecode.FamPushLiteralConstant, bytecode.FamPushReceiver,
		bytecode.FamPushConstant, bytecode.FamPushTemporaryVariable:
		ng, ok := randomPush(rng, s)
		if !ok {
			return nil
		}
		*g = ng
	case bytecode.FamShortJumpIfTrue:
		g.Op = bytecode.OpShortJumpIfFalse1
	case bytecode.FamShortJumpIfFalse:
		g.Op = bytecode.OpShortJumpIfTrue1
	case bytecode.FamStoreTemporaryVariable:
		g.Op = bytecode.OpPopIntoTemporaryVariable0 + bytecode.Op(d.Embedded%8)
	case bytecode.FamPopIntoTemporaryVariable:
		g.Op = bytecode.OpStoreTemporaryVariable0 + bytecode.Op(d.Embedded%8)
	case bytecode.FamReturnSpecial, bytecode.FamReturnTop:
		rets := []bytecode.Op{bytecode.OpReturnReceiver, bytecode.OpReturnTrue,
			bytecode.OpReturnFalse, bytecode.OpReturnNil, bytecode.OpReturnTop}
		g.Op = rets[rng.Intn(len(rets))]
		g.Target = 0
	default:
		return nil
	}
	return s
}

// randomPush builds a random push gene over the genome's frame.
func randomPush(rng *rand.Rand, s *Seq) (Gene, bool) {
	tempCount := s.NumArgs + s.NumTemps
	switch rng.Intn(5) {
	case 0:
		return Gene{Op: bytecode.OpPushReceiver}, true
	case 1:
		if tempCount > 0 {
			return Gene{Op: bytecode.OpPushTemporaryVariable0 + bytecode.Op(rng.Intn(tempCount))}, true
		}
		fallthrough
	case 2:
		ops := []bytecode.Op{bytecode.OpPushConstantTrue, bytecode.OpPushConstantFalse,
			bytecode.OpPushConstantNil, bytecode.OpPushConstantZero, bytecode.OpPushConstantOne,
			bytecode.OpPushConstantMinusOne, bytecode.OpPushConstantTwo}
		return Gene{Op: ops[rng.Intn(len(ops))]}, true
	case 3:
		if len(s.Literals) > 0 {
			return Gene{Op: bytecode.OpPushLiteralConstant0 + bytecode.Op(rng.Intn(len(s.Literals)))}, true
		}
		fallthrough
	default:
		return s.pushGene(randomLiteral(rng, ProfileFull))
	}
}

// mutateLiteral perturbs one literal value in place.
func mutateLiteral(rng *rand.Rand, parent *Seq) *Seq {
	if len(parent.Literals) == 0 {
		return nil
	}
	s := parent.Clone()
	l := &s.Literals[rng.Intn(len(s.Literals))]
	switch l.Kind {
	case bytecode.LitInt:
		switch rng.Intn(6) {
		case 0:
			l.Int++
		case 1:
			l.Int--
		case 2:
			l.Int = -l.Int
		case 3:
			l.Int *= 2
		case 4:
			l.Int = interestingInts[rng.Intn(len(interestingInts))]
		default:
			*l = bytecode.FloatLiteral(interestingFloats[rng.Intn(len(interestingFloats))])
		}
		if l.Kind == bytecode.LitInt && !heap.IsIntegerValue(l.Int) {
			l.Int = heap.MaxSmallInt
		}
	case bytecode.LitFloat:
		switch rng.Intn(5) {
		case 0:
			l.Float += 0.5
		case 1:
			l.Float = -l.Float
		case 2:
			l.Float *= 2
		case 3:
			l.Float = interestingFloats[rng.Intn(len(interestingFloats))]
		default:
			*l = bytecode.IntLiteral(interestingInts[rng.Intn(len(interestingInts))])
		}
		if l.Kind == bytecode.LitFloat && (math.IsInf(l.Float, 0) || math.IsNaN(l.Float)) {
			l.Float = 1e15
		}
	}
	return s
}

// mutateInput replaces the receiver or one argument.
func mutateInput(rng *rand.Rand, parent *Seq) *Seq {
	s := parent.Clone()
	v := randomValue(rng, ProfileFull)
	if s.NumArgs > 0 && rng.Intn(2) == 0 {
		s.Args[rng.Intn(s.NumArgs)] = v
	} else {
		s.Receiver = v
	}
	return s
}

// mutateIndex tweaks an embedded operand: a temp index or a jump target.
func mutateIndex(rng *rand.Rand, parent *Seq) *Seq {
	s := parent.Clone()
	i := rng.Intn(len(s.Code))
	g := &s.Code[i]
	d := bytecode.Describe(g.Op)
	tempCount := s.NumArgs + s.NumTemps
	switch d.Family {
	case bytecode.FamPushTemporaryVariable:
		if tempCount == 0 {
			return nil
		}
		g.Op = bytecode.OpPushTemporaryVariable0 + bytecode.Op(rng.Intn(tempCount))
	case bytecode.FamStoreTemporaryVariable:
		if tempCount == 0 {
			return nil
		}
		g.Op = bytecode.OpStoreTemporaryVariable0 + bytecode.Op(rng.Intn(min(tempCount, 8)))
	case bytecode.FamPopIntoTemporaryVariable:
		if tempCount == 0 {
			return nil
		}
		g.Op = bytecode.OpPopIntoTemporaryVariable0 + bytecode.Op(rng.Intn(min(tempCount, 8)))
	case bytecode.FamShortJump, bytecode.FamShortJumpIfTrue, bytecode.FamShortJumpIfFalse:
		if rng.Intn(2) == 0 {
			g.Target++
		} else {
			g.Target--
		}
	default:
		return nil
	}
	return s
}

// insertGene inserts a random gene, shifting jump targets across the
// insertion point.
func insertGene(rng *rand.Rand, parent *Seq) *Seq {
	s := parent.Clone()
	at := rng.Intn(len(s.Code) + 1)
	var g Gene
	switch rng.Intn(6) {
	case 0, 1:
		var ok bool
		if g, ok = randomPush(rng, s); !ok {
			return nil
		}
	case 2:
		g = Gene{Op: binaryOps[rng.Intn(len(binaryOps))]}
	case 3:
		g = Gene{Op: bytecode.OpDuplicateTop}
	case 4:
		g = Gene{Op: bytecode.OpPopStackTop}
	default:
		g = Gene{Op: bytecode.OpNop}
	}
	for i := range s.Code {
		if isJumpFamily(bytecode.Describe(s.Code[i].Op).Family) && s.Code[i].Target > at {
			s.Code[i].Target++
		}
	}
	s.Code = append(s.Code, Gene{})
	copy(s.Code[at+1:], s.Code[at:])
	s.Code[at] = g
	return s
}

// deleteGene removes one gene, retargeting jumps across the removal.
func deleteGene(rng *rand.Rand, parent *Seq) *Seq {
	if len(parent.Code) <= 1 {
		return nil
	}
	return RemoveRange(parent, rng.Intn(len(parent.Code)), 1)
}

// truncateTail cuts the sequence at a random point, clamping jump targets
// to the new end.
func truncateTail(rng *rand.Rand, parent *Seq) *Seq {
	if len(parent.Code) <= 2 {
		return nil
	}
	s := parent.Clone()
	keep := 1 + rng.Intn(len(s.Code)-1)
	s.Code = s.Code[:keep]
	for i := range s.Code {
		if isJumpFamily(bytecode.Describe(s.Code[i].Op).Family) && s.Code[i].Target > keep {
			s.Code[i].Target = keep
		}
	}
	return s
}

// spliceTail crosses parent's prefix with partner's suffix, remapping the
// suffix's literal indices into the merged frame and rebasing its jump
// targets.
func spliceTail(rng *rand.Rand, parent, partner *Seq) *Seq {
	if len(partner.Code) == 0 {
		return nil
	}
	s := parent.Clone()
	cut := rng.Intn(len(s.Code))
	from := rng.Intn(len(partner.Code))
	s.Code = s.Code[:cut]
	shift := cut - from
	for j := from; j < len(partner.Code); j++ {
		g := partner.Code[j]
		d := bytecode.Describe(g.Op)
		if d.Family == bytecode.FamPushLiteralConstant {
			if d.Embedded >= len(partner.Literals) {
				return nil
			}
			idx := s.addLiteral(partner.Literals[d.Embedded])
			if idx < 0 {
				return nil
			}
			g.Op = bytecode.OpPushLiteralConstant0 + bytecode.Op(idx)
		}
		if isJumpFamily(d.Family) {
			g.Target += shift
		}
		s.Code = append(s.Code, g)
	}
	return s
}

// crossInputs takes partner's inputs onto parent's code.
func crossInputs(parent, partner *Seq) *Seq {
	s := parent.Clone()
	s.Receiver = partner.Receiver
	for i := range s.Args {
		if i < len(partner.Args) {
			s.Args[i] = partner.Args[i]
		}
	}
	return s
}

// RemoveRange removes genes [start, start+size) and retargets jumps: a
// target beyond the removed range shifts left, a target inside it lands on
// the gene that follows the removal. Distances that become unencodable are
// rejected by Check, which is what "breaks well-formedness" means for the
// reducer's 1-minimality property.
func RemoveRange(s *Seq, start, size int) *Seq {
	out := s.Clone()
	out.Code = append(out.Code[:start], out.Code[start+size:]...)
	for i := range out.Code {
		g := &out.Code[i]
		if !isJumpFamily(bytecode.Describe(g.Op).Family) {
			continue
		}
		switch {
		case g.Target >= start+size:
			g.Target -= size
		case g.Target > start:
			g.Target = start
		}
	}
	return out
}
