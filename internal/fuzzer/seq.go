// Package fuzzer implements coverage-guided differential fuzzing of
// byte-code sequences — the paper's closing future work ("generate
// minimal and relevant byte-code sequences for unit testing the JIT
// compiler") turned into a subsystem:
//
//   - a coverage signal over interpreter byte-codes, interpreter exits,
//     JIT IR opcodes and machine basic blocks (coverage.go),
//   - a mutation engine over well-formed genomes with a deterministic
//     seeded RNG (mutate.go, rand.go),
//   - a corpus manager that keeps coverage-increasing inputs and
//     persists them as JSON (corpus.go),
//   - a delta-debugging reducer producing 1-minimal difference
//     sequences, emitted as ready-to-run Go tests (reduce.go,
//     testgen.go),
//
// all driven by a deterministic batch engine sharded over the campaign
// worker pool (engine.go).
package fuzzer

import (
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/core"
	"cogdiff/internal/heap"
)

// Genome size limits. Sequences are meant to be unit-test sized; the
// reducer shrinks them further.
const (
	maxSeqArgs  = 2
	maxSeqTemps = 3
	maxSeqLen   = 48
	maxSeqDepth = 12
	maxLiterals = 16
)

// Gene is one byte-code instruction of a sequence genome. Every opcode in
// the fuzzing grammar encodes in one byte, so gene indices equal byte-code
// pcs; jump genes address their target by gene index and are re-encoded on
// render, which keeps mutation and reduction free of offset arithmetic.
type Gene struct {
	Op bytecode.Op `json:"op"`
	// Target is the jump-target gene index for jump-family genes
	// (strictly beyond the gene itself; len(Code) means jump-to-end).
	Target int `json:"target,omitempty"`
}

// Value is the JSON-stable mirror of core.SeqValue.
type Value struct {
	Kind  string  `json:"kind"` // "int", "float", "true", "false", "nil"
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
}

// IntValue builds an integer input value.
func IntValue(v int64) Value { return Value{Kind: "int", Int: v} }

// FloatValue builds a float input value.
func FloatValue(v float64) Value { return Value{Kind: "float", Float: v} }

func (v Value) seqValue() core.SeqValue {
	switch v.Kind {
	case "int":
		return core.Int64(v.Int)
	case "float":
		return core.Float64(v.Float)
	case "true":
		return core.Bool(true)
	case "false":
		return core.Bool(false)
	}
	return core.Nil()
}

func (v Value) String() string {
	switch v.Kind {
	case "int":
		return fmt.Sprintf("int:%d", v.Int)
	case "float":
		return fmt.Sprintf("float:%g", v.Float)
	}
	return v.Kind
}

// Seq is the fuzzer's genome: a well-formed, send-free method plus the
// concrete inputs it runs on.
type Seq struct {
	NumArgs  int                `json:"numArgs"`
	NumTemps int                `json:"numTemps"`
	Literals []bytecode.Literal `json:"literals,omitempty"`
	Code     []Gene             `json:"code"`
	Receiver Value              `json:"receiver"`
	Args     []Value            `json:"args,omitempty"`
}

// Clone deep-copies the genome.
func (s *Seq) Clone() *Seq {
	out := &Seq{
		NumArgs:  s.NumArgs,
		NumTemps: s.NumTemps,
		Receiver: s.Receiver,
	}
	out.Literals = append([]bytecode.Literal(nil), s.Literals...)
	out.Code = append([]Gene(nil), s.Code...)
	out.Args = append([]Value(nil), s.Args...)
	return out
}

// Input materializes the genome's concrete inputs.
func (s *Seq) Input() core.SequenceInput {
	in := core.SequenceInput{Receiver: s.Receiver.seqValue()}
	for _, a := range s.Args {
		in.Args = append(in.Args, a.seqValue())
	}
	return in
}

func isJumpFamily(f bytecode.Family) bool {
	return f == bytecode.FamShortJump || f == bytecode.FamShortJumpIfTrue || f == bytecode.FamShortJumpIfFalse
}

// Method renders the genome to a byte-code method. Rendering assumes the
// genome passed Check; jump distances are re-derived from gene indices.
func (s *Seq) Method(name string) *bytecode.Method {
	code := make([]byte, len(s.Code))
	for i, g := range s.Code {
		op := g.Op
		switch bytecode.Describe(g.Op).Family {
		case bytecode.FamShortJump:
			op = bytecode.OpShortJump1 + bytecode.Op(g.Target-i-2)
		case bytecode.FamShortJumpIfTrue:
			op = bytecode.OpShortJumpIfTrue1 + bytecode.Op(g.Target-i-2)
		case bytecode.FamShortJumpIfFalse:
			op = bytecode.OpShortJumpIfFalse1 + bytecode.Op(g.Target-i-2)
		}
		code[i] = byte(op)
	}
	return &bytecode.Method{
		Name:     name,
		NumArgs:  s.NumArgs,
		NumTemps: s.NumTemps,
		Literals: append([]bytecode.Literal(nil), s.Literals...),
		Code:     code,
	}
}

// effect returns the stack pops and pushes of one gene, validating its
// embedded indices, or an error for opcodes outside the fuzzing grammar.
func (s *Seq) effect(d bytecode.Descriptor) (pops, pushes int, err error) {
	switch d.Family {
	case bytecode.FamPushLiteralConstant:
		if d.Embedded >= len(s.Literals) {
			return 0, 0, fmt.Errorf("literal index %d out of range", d.Embedded)
		}
		return 0, 1, nil
	case bytecode.FamPushReceiver, bytecode.FamPushConstant:
		return 0, 1, nil
	case bytecode.FamPushTemporaryVariable:
		if d.Embedded >= s.NumArgs+s.NumTemps {
			return 0, 0, fmt.Errorf("temp index %d out of range", d.Embedded)
		}
		return 0, 1, nil
	case bytecode.FamStoreTemporaryVariable:
		if d.Embedded >= s.NumArgs+s.NumTemps {
			return 0, 0, fmt.Errorf("temp index %d out of range", d.Embedded)
		}
		return 1, 1, nil
	case bytecode.FamPopIntoTemporaryVariable:
		if d.Embedded >= s.NumArgs+s.NumTemps {
			return 0, 0, fmt.Errorf("temp index %d out of range", d.Embedded)
		}
		return 1, 0, nil
	case bytecode.FamDuplicateTop:
		return 1, 2, nil
	case bytecode.FamPopStackTop:
		return 1, 0, nil
	case bytecode.FamNop:
		return 0, 0, nil
	case bytecode.FamPrimAdd, bytecode.FamPrimSubtract, bytecode.FamPrimMultiply,
		bytecode.FamPrimDivide, bytecode.FamPrimDiv, bytecode.FamPrimMod,
		bytecode.FamPrimBitAnd, bytecode.FamPrimBitOr, bytecode.FamPrimBitXor,
		bytecode.FamPrimBitShift,
		bytecode.FamPrimLessThan, bytecode.FamPrimGreaterThan,
		bytecode.FamPrimLessOrEqual, bytecode.FamPrimGreaterOrEqual,
		bytecode.FamPrimEqual, bytecode.FamPrimNotEqual:
		return 2, 1, nil
	case bytecode.FamShortJump:
		return 0, 0, nil
	case bytecode.FamShortJumpIfTrue, bytecode.FamShortJumpIfFalse:
		return 1, 0, nil
	case bytecode.FamReturnSpecial:
		return 0, 0, nil
	case bytecode.FamReturnTop:
		return 1, 0, nil
	}
	return 0, 0, fmt.Errorf("opcode %s outside the fuzzing grammar", d.Mnemonic)
}

// Check validates well-formedness. Beyond structural limits it runs a
// linear stack-depth scan over the whole stream — the same textual-order
// discipline the Cogit's simulation stack follows — and requires every
// jump target to be reached at the depth the jump recorded. Everything
// Check admits therefore both interprets and compiles without error, and
// all jumps are short forward jumps, so every admitted sequence
// terminates.
func (s *Seq) Check() error {
	if s.NumArgs < 0 || s.NumArgs > maxSeqArgs {
		return fmt.Errorf("numArgs %d out of range", s.NumArgs)
	}
	if s.NumTemps < 0 || s.NumTemps > maxSeqTemps {
		return fmt.Errorf("numTemps %d out of range", s.NumTemps)
	}
	if len(s.Args) != s.NumArgs {
		return fmt.Errorf("%d args for %d parameters", len(s.Args), s.NumArgs)
	}
	if len(s.Code) == 0 {
		return fmt.Errorf("empty sequence")
	}
	if len(s.Code) > maxSeqLen {
		return fmt.Errorf("sequence length %d exceeds %d", len(s.Code), maxSeqLen)
	}
	if len(s.Literals) > maxLiterals {
		return fmt.Errorf("%d literals exceed %d", len(s.Literals), maxLiterals)
	}
	for i, l := range s.Literals {
		switch l.Kind {
		case bytecode.LitInt:
			if !heap.IsIntegerValue(l.Int) {
				return fmt.Errorf("literal %d outside the small integer range", i)
			}
		case bytecode.LitFloat:
			// any float is materializable
		default:
			return fmt.Errorf("literal %d kind outside the fuzzing grammar", i)
		}
	}
	for i, v := range append([]Value{s.Receiver}, s.Args...) {
		switch v.Kind {
		case "int":
			if !heap.IsIntegerValue(v.Int) {
				return fmt.Errorf("input %d outside the small integer range", i)
			}
		case "float", "true", "false", "nil":
		default:
			return fmt.Errorf("input %d has unknown kind %q", i, v.Kind)
		}
	}

	depth := 0
	expect := make(map[int]int)
	for i, g := range s.Code {
		if want, ok := expect[i]; ok && want != depth {
			return fmt.Errorf("gene %d: jump target reached at depth %d, jump recorded %d", i, depth, want)
		}
		d := bytecode.Describe(g.Op)
		if d.Mnemonic == "" {
			return fmt.Errorf("gene %d: undefined opcode %d", i, g.Op)
		}
		pops, pushes, err := s.effect(d)
		if err != nil {
			return fmt.Errorf("gene %d (%s): %w", i, d.Mnemonic, err)
		}
		if depth < pops {
			return fmt.Errorf("gene %d (%s): stack underflow", i, d.Mnemonic)
		}
		depth += pushes - pops
		if depth > maxSeqDepth {
			return fmt.Errorf("gene %d: stack depth %d exceeds %d", i, depth, maxSeqDepth)
		}
		if isJumpFamily(d.Family) {
			dist := g.Target - i - 1
			if dist < 1 || dist > 8 {
				return fmt.Errorf("gene %d: jump distance %d not encodable as a short jump", i, dist)
			}
			if g.Target > len(s.Code) {
				return fmt.Errorf("gene %d: jump target %d beyond the sequence", i, g.Target)
			}
			if want, ok := expect[g.Target]; ok {
				if want != depth {
					return fmt.Errorf("gene %d: jump target %d expected at depths %d and %d", i, g.Target, want, depth)
				}
			} else {
				expect[g.Target] = depth
			}
		}
	}
	if want, ok := expect[len(s.Code)]; ok && want != depth {
		return fmt.Errorf("end of sequence reached at depth %d, jump recorded %d", depth, want)
	}
	return nil
}

// Key is a canonical content string used for corpus deduplication.
func (s *Seq) Key() string {
	m := s.Method("k")
	return fmt.Sprintf("%d|%d|%v|%x|%s|%v", s.NumArgs, s.NumTemps, s.Literals, m.Code, s.Receiver, s.Args)
}
