package fuzzer

import (
	"encoding/json"
	"fmt"
	"math/rand" //cogdiff:allow-nondeterminism fuzzer RNG is explicitly seeded; runs replay from the seed
	"os"
	"path/filepath"
	"strings"
)

// The corpus persists as JSON in the same DTO style as the concolic
// exploration cache (internal/concolic/cache.go): a versioned envelope,
// indented for diffability, reconstructed explicitly on load. The same
// file round-trips between runs, so a fuzzing campaign is resumable.

type corpusDTO struct {
	Version int    `json:"version"`
	Entries []*Seq `json:"entries"`
}

const corpusVersion = 1

// MarshalCorpus renders entries in the on-disk corpus format (versioned
// envelope, indented for diffability). The server's shared corpus store
// serves exactly these bytes, so files, HTTP bodies and CLI flags all
// speak one format.
func MarshalCorpus(entries []*Seq) ([]byte, error) {
	data, err := json.MarshalIndent(corpusDTO{Version: corpusVersion, Entries: entries}, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// UnmarshalCorpus parses a corpus document. Entries that fail the genome
// well-formedness check are dropped (the engine re-checks every genome
// anyway); a wrong version or unparseable document is an error.
func UnmarshalCorpus(data []byte) ([]*Seq, error) {
	var dto corpusDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("fuzzer: corpus: %w", err)
	}
	if dto.Version != corpusVersion {
		return nil, fmt.Errorf("fuzzer: corpus has version %d, want %d", dto.Version, corpusVersion)
	}
	var out []*Seq
	for _, s := range dto.Entries {
		if s != nil && s.Check() == nil {
			out = append(out, s)
		}
	}
	return out, nil
}

// SaveCorpus writes entries to path.
func SaveCorpus(path string, entries []*Seq) error {
	data, err := MarshalCorpus(entries)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadCorpus reads a corpus file; a missing file is an empty corpus.
func LoadCorpus(path string) ([]*Seq, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out, err := UnmarshalCorpus(data)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: corpus %s: %w", path, err)
	}
	return out, nil
}

// LoadGoFuzzSeeds reads a `go test fuzz v1` seed directory in the
// FuzzSequenceDiff format — four int64 lines: generator seed, receiver,
// arg0, arg1 — and regenerates each seed through the shared agreement
// grammar, exactly as the native harness does. Both fuzzing paths
// therefore share one corpus format.
func LoadGoFuzzSeeds(dir string) ([]*Seq, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*Seq
	for _, ent := range ents { // ReadDir sorts by name: deterministic order
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, err
		}
		s, err := parseGoFuzzSeed(string(data))
		if err != nil {
			return nil, fmt.Errorf("fuzzer: seed %s: %w", ent.Name(), err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseGoFuzzSeed(text string) (*Seq, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 1 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, fmt.Errorf("not a go test fuzz v1 file")
	}
	var vals []int64
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line, "int64(%d)", &v); err != nil {
			return nil, fmt.Errorf("bad corpus line %q", line)
		}
		vals = append(vals, v)
	}
	if len(vals) != 4 {
		return nil, fmt.Errorf("want 4 int64 values, got %d", len(vals))
	}
	return SeedFromTuple(vals[0], vals[1], vals[2], vals[3]), nil
}

// SeedFromTuple regenerates the genome the native FuzzSequenceDiff
// harness derives from one fuzzed (seed, receiver, arg0, arg1) tuple.
func SeedFromTuple(seed, receiver, arg0, arg1 int64) *Seq {
	rng := rand.New(rand.NewSource(seed))
	numArgs := rng.Intn(3)
	s := RandomSeq(rng, numArgs, ProfileAgreement)
	s.Receiver = IntValue(ClampInt(receiver))
	for i, v := range []int64{arg0, arg1} {
		if i < numArgs {
			s.Args[i] = IntValue(ClampInt(v))
		}
	}
	return s
}
