package fuzzer

import "math/bits"

// The coverage signal is a fixed-size bitmap per execution, sectioned so
// the four observation channels cannot collide:
//
//	[0,256)    interpreter byte-code opcodes executed
//	[256,272)  interpreter exit kinds reached
//	[272,320)  machine stop kinds, salted by compiler
//	[320,512)  post-pipeline JIT IR opcodes, salted by compiler
//	[512,4096) machine basic blocks executed, hashed over
//	           (compiler, ISA, block offset)
//
// The block section is the discriminating one: an input that drives the
// same byte-codes down a different compiled path (a float pair taking the
// slow-path send, say) lights different block bits even though the
// byte-code section is identical, which is exactly what lets the corpus
// retain it.
const (
	covWords = 64
	covBits  = covWords * 64

	covBCBase    = 0
	covExitBase  = 256
	covStopBase  = 272
	covIRBase    = 320
	covBlockBase = 512
)

// Coverage is one execution's (or the whole campaign's) coverage bitmap.
type Coverage [covWords]uint64

// Set marks one bit (wrapped into range).
func (c *Coverage) Set(bit uint32) {
	bit %= covBits
	c[bit>>6] |= 1 << (bit & 63)
}

// Count returns the number of set bits.
func (c *Coverage) Count() int {
	n := 0
	for _, w := range c {
		n += bits.OnesCount64(w)
	}
	return n
}

// NewBits counts bits set in c but not in global.
func (c *Coverage) NewBits(global *Coverage) int {
	n := 0
	for i, w := range c {
		n += bits.OnesCount64(w &^ global[i])
	}
	return n
}

// Merge ORs other into c.
func (c *Coverage) Merge(other *Coverage) {
	for i := range c {
		c[i] |= other[i]
	}
}

// blockBit hashes a (compiler index, ISA index, program-relative block
// offset) triple into the block section (FNV-1a over the packed triple).
func blockBit(compiler, isa int, offset int64) uint32 {
	h := uint64(14695981039346656037)
	for _, b := range [...]uint64{uint64(compiler), uint64(isa), uint64(offset)} {
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= 1099511628211
		}
	}
	return covBlockBase + uint32(h%(covBits-covBlockBase))
}
