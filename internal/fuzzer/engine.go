package fuzzer

import (
	"context"
	"errors"
	"fmt"
	"math/rand" //cogdiff:allow-nondeterminism fuzzer RNG is explicitly seeded; runs replay from the seed
	"os"
	"time"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/core"
	"cogdiff/internal/defects"
	"cogdiff/internal/interp"
	"cogdiff/internal/ir"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
	"cogdiff/internal/telemetry"
)

// Options configures a fuzzing run.
type Options struct {
	// Seed is the engine RNG seed; the same seed and budget reproduce the
	// run exactly, for any worker count.
	Seed int64
	// Budget is the number of executions (0 defaults to 1000; seed inputs
	// count toward it).
	Budget int
	// Duration, when set, additionally caps the run by wall clock.
	// Duration-capped runs are NOT deterministic; iteration budgets are.
	Duration time.Duration
	// Workers shards each batch over this many goroutines (0 = GOMAXPROCS,
	// 1 = serial). Results are byte-identical for any worker count.
	Workers int
	// BatchSize is the scheduling quantum (0 defaults to 32): tasks are
	// generated serially per batch, executed in parallel, merged serially
	// in canonical execution order.
	BatchSize int
	// Minimize reduces every difference to a 1-minimal sequence.
	Minimize bool
	// CorpusPath, when set, loads this JSON corpus before the run and
	// persists the final corpus after it.
	CorpusPath string
	// SeedDir, when set, loads a `go test fuzz v1` seed directory (the
	// FuzzSequenceDiff corpus format) as additional seed inputs.
	SeedDir string
	// SeedSeqs are additional in-memory seed genomes, appended after the
	// built-in seeds in the given order. The server's shared corpus store
	// feeds concurrent fuzz jobs through this field.
	SeedSeqs []*Seq
	// EmitTests, when set, writes the reduced differences as a ready-to-run
	// Go test file.
	EmitTests string
	// Defects selects the VM defect state (nil = ProductionVM).
	Defects *defects.Switches
	// Compilers overrides the compiler set (nil = the three hand-written
	// byte-code compilers). The meta-compiled front-end (MetaJITCompiler)
	// is opt-in here: a sequence it cannot compile (a family whose
	// lowering would bake witness facts) skips that (compiler, ISA) pair
	// deterministically instead of discarding the genome.
	Compilers []core.CompilerKind
	// OnProgress, when non-nil, receives a serialized callback after every
	// merged batch.
	OnProgress func(done, total, corpusSize, causes int)
	// Metrics, when non-nil, receives fuzzing telemetry (exec counts,
	// corpus admissions, batch spans, contained panics). Pure sink:
	// results are byte-identical with metrics on or off.
	Metrics *telemetry.Registry
	// faultInject, when non-nil, runs before every sequence execution,
	// inside the containment boundary. Fault-injection tests use it to
	// raise genuine heap panics in worker goroutines.
	faultInject func(s *Seq)
	// noReuse disables pooled execution environments and the compiled-code
	// cache: every sequence execution boots and compiles from scratch.
	// The determinism suite diffs reports against this reference mode.
	noReuse bool
}

// CurvePoint is one sample of the coverage growth curve, recorded
// whenever a corpus admission raises global coverage.
type CurvePoint struct {
	Execs int `json:"execs"`
	Bits  int `json:"bits"`
}

// Difference is one deduplicated classified cause, with the sequence that
// first triggered it and its 1-minimal reduction.
type Difference struct {
	Instrument  string
	Family      defects.Family
	Compiler    core.CompilerKind
	ISA         machine.ISA
	Cause       string // blamed compilation stage ("front-end" or "pass:<name>")
	Detail      string
	FoundAt     int // execution index of first discovery
	Count       int // executions that re-triggered the cause
	Seq         *Seq
	Reduced     *Seq
	ReduceExecs int
}

// Key is the cause-deduplication key (instrument | family | blamed
// stage), the same convention the campaign engine uses for verdict
// causes. Including the stage keeps a front-end defect and a
// pass-introduced defect on the same instrument distinct.
func (d *Difference) Key() string {
	return d.Instrument + "|" + d.Family.String() + "|" + d.Cause
}

// Result is a completed fuzzing run. It contains no wall-clock data, so
// equal-seed runs compare byte-identical.
type Result struct {
	Seed         int64
	Budget       int
	Executions   int
	Discarded    int // budget spent on genomes rejected by Check
	CorpusSize   int
	CoverageBits int
	Curve        []CurvePoint
	Differences  []*Difference
	// Corpus is the final coverage-increasing corpus in admission order,
	// so callers (the server's shared corpus store) can drain a run's
	// findings without going through a file.
	Corpus []*Seq
	// Matched lists the seeded-catalog cause IDs rediscovered through
	// sequences, in catalog order.
	Matched []string
	// CodeCache reports compiled-code cache activity (diagnostics only;
	// results are byte-identical with the cache on or off).
	CodeCache core.CodeCacheStats
}

type diffObs struct {
	ci, ii  int
	verdict *core.SequenceVerdict
}

type execOut struct {
	cov     Coverage
	invalid bool
	diffs   []diffObs
}

type engine struct {
	opts      Options
	tester    *core.Tester
	compilers []core.CompilerKind
	isas      []machine.ISA

	global    Coverage
	corpus    []*Seq
	corpusKey map[string]bool
	diffs     []*Difference
	diffIdx   map[string]int
	execs     int
	discarded int
	curve     []CurvePoint

	// Telemetry handles, resolved once in newEngine; all nil (no-op)
	// when Options.Metrics is absent.
	mExecs      *telemetry.Counter
	mDiscarded  *telemetry.Counter
	mBatches    *telemetry.Counter
	mAdmissions *telemetry.Counter
	mCorpusSize *telemetry.Gauge
	mPanics     *telemetry.Counter
}

// newFuzzTester builds the engine's shared tester, honouring the
// reuse-free reference mode.
func newFuzzTester(opts Options, sw defects.Switches) *core.Tester {
	t := core.NewTester(primitives.NewTable(), sw)
	if opts.noReuse {
		t.SetNoReuse()
	}
	return t
}

func newEngine(opts Options) *engine {
	sw := defects.ProductionVM()
	if opts.Defects != nil {
		sw = *opts.Defects
	}
	compilers := opts.Compilers
	if len(compilers) == 0 {
		compilers = []core.CompilerKind{core.SimpleBytecodeCompiler, core.StackToRegisterCompiler, core.RegisterAllocatingCompiler}
	}
	e := &engine{
		opts:      opts,
		tester:    newFuzzTester(opts, sw),
		compilers: compilers,
		isas:      []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like},
		corpusKey: make(map[string]bool),
		diffIdx:   make(map[string]int),
	}
	e.tester.SetMetrics(opts.Metrics)
	e.mExecs = opts.Metrics.Counter(telemetry.MetricFuzzExecs)
	e.mDiscarded = opts.Metrics.Counter(telemetry.MetricFuzzDiscarded)
	e.mBatches = opts.Metrics.Counter(telemetry.MetricFuzzBatches)
	e.mAdmissions = opts.Metrics.Counter(telemetry.MetricFuzzCorpusAdmissions)
	e.mCorpusSize = opts.Metrics.Gauge(telemetry.MetricFuzzCorpusSize)
	e.mPanics = opts.Metrics.Counter(telemetry.MetricPanicsContained)
	return e
}

// builtinSeeds is the always-available seed set: the native harness's
// f.Add tuples regenerated through the shared grammar, plus two
// hand-written float carriers so small budgets exercise the interesting
// slow paths immediately.
func builtinSeeds() []*Seq {
	seeds := []*Seq{
		SeedFromTuple(2022, 7, -3, 100),
		SeedFromTuple(1, 0, 0, 0),
		SeedFromTuple(-9000, -100, 99, -1),
		SeedFromTuple(424242, 1<<19, -(1 << 19), 13),
		{ // ^self + self over a float receiver
			Receiver: FloatValue(1.5),
			Code: []Gene{
				{Op: bytecode.OpPushReceiver},
				{Op: bytecode.OpDuplicateTop},
				{Op: bytecode.OpPrimAdd},
				{Op: bytecode.OpReturnTop},
			},
		},
		{ // ^0.5 < 3.25
			Receiver: IntValue(2),
			Literals: []bytecode.Literal{bytecode.FloatLiteral(0.5), bytecode.FloatLiteral(3.25)},
			Code: []Gene{
				{Op: bytecode.OpPushLiteralConstant0},
				{Op: bytecode.OpPushLiteralConstant0 + 1},
				{Op: bytecode.OpPrimLessThan},
				{Op: bytecode.OpReturnTop},
			},
		},
	}
	return seeds
}

// execute runs one genome through the interpreter once and through every
// (compiler, ISA) pair, collecting the coverage bitmap and every differing
// verdict. It is the parallel section: no engine state is touched.
//
// A panic inside one execution (the heap layer escalates allocation and
// access errors as panics) is contained here and reported as a
// crash-style difference verdict, so one bad genome never aborts the
// run. Panics are deterministic functions of the genome, so containment
// preserves byte-identical reports at any worker count.
func (e *engine) execute(s *Seq) (out execOut) {
	defer func() {
		if p := recover(); p != nil {
			e.mPanics.Inc()
			detail := fmt.Sprintf("contained panic: %v", p)
			out.diffs = []diffObs{{verdict: &core.SequenceVerdict{
				Interp:   core.SequenceOutcome{Kind: "return"},
				Compiled: core.SequenceOutcome{Kind: "error: " + detail},
				Differs:  true,
				Detail:   detail,
				Cause:    "panic",
			}}}
		}
	}()
	if e.opts.faultInject != nil {
		e.opts.faultInject(s)
	}
	if s.Check() != nil {
		out.invalid = true
		return out
	}
	m := s.Method("fuzzseq")
	if m.Validate() != nil {
		out.invalid = true
		return out
	}
	in := s.Input()
	cov := &out.cov
	iOut, err := e.tester.InterpSequence(m, in, &core.SequenceHooks{
		InterpOp:   func(op bytecode.Op) { cov.Set(covBCBase + uint32(op)) },
		InterpExit: func(k interp.ExitKind) { cov.Set(covExitBase + uint32(k)%16) },
	})
	if err != nil {
		out.invalid = true
		return out
	}
	for ci, kind := range e.compilers {
		for ii, isa := range e.isas {
			ci, ii := ci, ii
			cOut, err := e.tester.CompiledSequence(m, in, kind, isa, &core.SequenceHooks{
				EmitIR:       func(op ir.Opc) { cov.Set(covIRBase + uint32(ci)*64 + uint32(op)%64) },
				Block:        func(off int64) { cov.Set(blockBit(ci, ii, off)) },
				CompiledStop: func(k machine.StopKind) { cov.Set(covStopBase + uint32(ci)*16 + uint32(k)%16) },
			})
			if errors.Is(err, jit.ErrNotCompilable) {
				// The pair declines the sequence (the meta-compiled
				// front-end rejects witness-baking families in whole-method
				// mode). A deterministic function of the genome, so skipping
				// the pair keeps reports byte-identical at any worker count.
				continue
			}
			if err != nil {
				out.invalid = true
				return out
			}
			if v := core.CompareSequenceOutcomes(iOut, cOut); v.Differs {
				v.Cause = e.tester.BlameSequence(m, in, kind, isa, iOut)
				out.diffs = append(out.diffs, diffObs{ci: ci, ii: ii, verdict: v})
			}
		}
	}
	return out
}

// merge folds one execution into the engine state. Called serially in
// canonical execution order — this is what makes reports byte-identical
// for any worker count.
func (e *engine) merge(s *Seq, o *execOut, keepAll bool) {
	idx := e.execs
	e.execs++
	e.mExecs.Inc()
	if o.invalid {
		e.discarded++
		e.mDiscarded.Inc()
		return
	}
	if newBits := o.cov.NewBits(&e.global); newBits > 0 || keepAll {
		e.global.Merge(&o.cov)
		key := s.Key()
		if !e.corpusKey[key] {
			e.corpusKey[key] = true
			e.corpus = append(e.corpus, s)
			e.curve = append(e.curve, CurvePoint{Execs: e.execs, Bits: e.global.Count()})
			e.mAdmissions.Inc()
			e.mCorpusSize.Set(int64(len(e.corpus)))
		}
	} else {
		e.global.Merge(&o.cov)
	}
	for _, d := range o.diffs {
		instrument, fam := core.ClassifySequence(d.verdict)
		key := instrument + "|" + fam.String() + "|" + d.verdict.Cause
		if j, ok := e.diffIdx[key]; ok {
			e.diffs[j].Count++
			continue
		}
		e.diffIdx[key] = len(e.diffs)
		e.opts.Metrics.LabeledCounter(telemetry.MetricFuzzDifferences,
			"family", fam.String()).Inc()
		e.diffs = append(e.diffs, &Difference{
			Instrument: instrument,
			Family:     fam,
			Compiler:   e.compilers[d.ci],
			ISA:        e.isas[d.ii],
			Cause:      d.verdict.Cause,
			Detail:     d.verdict.Detail,
			FoundAt:    idx,
			Count:      1,
			Seq:        s.Clone(),
		})
	}
}

// runBatch executes tasks in parallel and merges them in order. A
// cancelled batch merges nothing: partially executed batches must not
// leak into the corpus or the difference list.
func (e *engine) runBatch(ctx context.Context, tasks []*Seq, workers int, keepAll bool) error {
	sp := e.opts.Metrics.StartSpan(telemetry.SpanFuzzBatch)
	defer sp.End()
	e.mBatches.Inc()
	outs := make([]execOut, len(tasks))
	if err := core.RunUnitsCtx(ctx, workers, len(tasks), func(i int) { outs[i] = e.execute(tasks[i]) }); err != nil {
		return err
	}
	for i := range outs {
		e.merge(tasks[i], &outs[i], keepAll)
	}
	return nil
}

// makeTask derives the genome for one execution index: mostly a mutation
// of a corpus parent, occasionally a fresh random genome.
func (e *engine) makeTask(index int64) *Seq {
	rng := rand.New(rand.NewSource(Mix(e.opts.Seed, index)))
	if len(e.corpus) == 0 || rng.Intn(8) == 0 {
		return RandomSeq(rng, rng.Intn(maxSeqArgs+1), ProfileFull)
	}
	parent := e.corpus[rng.Intn(len(e.corpus))]
	partner := e.corpus[rng.Intn(len(e.corpus))]
	return Mutate(rng, parent, partner)
}

// causeKeys returns the classified cause keys a genome triggers, in
// canonical (compiler, ISA) order, or nil when it triggers none.
func (e *engine) causeKeys(s *Seq) []string {
	if s.Check() != nil {
		return nil
	}
	m := s.Method("fuzzseq")
	if m.Validate() != nil {
		return nil
	}
	in := s.Input()
	iOut, err := e.tester.InterpSequence(m, in, nil)
	if err != nil {
		return nil
	}
	var keys []string
	for _, kind := range e.compilers {
		for _, isa := range e.isas {
			cOut, err := e.tester.CompiledSequence(m, in, kind, isa, nil)
			if errors.Is(err, jit.ErrNotCompilable) {
				continue
			}
			if err != nil {
				return nil
			}
			if v := core.CompareSequenceOutcomes(iOut, cOut); v.Differs {
				instrument, fam := core.ClassifySequence(v)
				cause := e.tester.BlameSequence(m, in, kind, isa, iOut)
				keys = append(keys, instrument+"|"+fam.String()+"|"+cause)
			}
		}
	}
	return keys
}

// Run executes a fuzzing campaign. It is RunContext without a
// cancellation source.
func Run(opts Options) (*Result, error) {
	return RunContext(context.Background(), opts)
}

// RunContext executes a fuzzing campaign under ctx. Cancellation is
// prompt and clean: the current batch's in-flight executions finish,
// nothing from the cancelled batch is merged, the corpus file is left
// untouched, and (nil, ctx.Err()) is returned.
func RunContext(ctx context.Context, opts Options) (*Result, error) {
	e := newEngine(opts)
	budget := opts.Budget
	if budget <= 0 {
		budget = 1000
		if opts.Duration > 0 {
			budget = 1 << 30
		}
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 32
	}
	workers := core.ResolveWorkers(opts.Workers)

	seeds := builtinSeeds()
	seeds = append(seeds, opts.SeedSeqs...)
	if opts.SeedDir != "" {
		more, err := LoadGoFuzzSeeds(opts.SeedDir)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, more...)
	}
	if opts.CorpusPath != "" {
		more, err := LoadCorpus(opts.CorpusPath)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, more...)
	}
	if len(seeds) > budget {
		seeds = seeds[:budget]
	}
	if err := e.runBatch(ctx, seeds, workers, true); err != nil {
		return nil, err
	}
	e.progress(budget)

	start := time.Now() //cogdiff:allow-nondeterminism wall-clock fuzz budget; findings replay deterministically
	for e.execs < budget {
		if opts.Duration > 0 && time.Since(start) >= opts.Duration { //cogdiff:allow-nondeterminism wall-clock fuzz budget; findings replay deterministically
			break
		}
		n := batch
		if rest := budget - e.execs; rest < n {
			n = rest
		}
		tasks := make([]*Seq, n)
		for i := range tasks {
			tasks[i] = e.makeTask(int64(e.execs + i))
		}
		if err := e.runBatch(ctx, tasks, workers, false); err != nil {
			return nil, err
		}
		e.progress(budget)
	}

	if opts.Minimize {
		for _, d := range e.diffs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			d.Reduced, d.ReduceExecs = Reduce(d.Seq, d.Key(), e.causeKeys)
		}
	}

	res := &Result{
		Seed:         opts.Seed,
		Budget:       budget,
		Executions:   e.execs,
		Discarded:    e.discarded,
		CorpusSize:   len(e.corpus),
		CoverageBits: e.global.Count(),
		Curve:        e.curve,
		Differences:  e.diffs,
		Corpus:       e.corpus,
	}
	hits, misses := e.tester.CodeCacheStats()
	res.CodeCache = core.CodeCacheStats{Hits: hits, Misses: misses}
	for _, c := range defects.Catalog() {
		for _, d := range e.diffs {
			if d.Instrument == c.Instrument && d.Family == c.Family {
				res.Matched = append(res.Matched, c.ID)
				break
			}
		}
	}

	if opts.CorpusPath != "" {
		if err := SaveCorpus(opts.CorpusPath, e.corpus); err != nil {
			return nil, err
		}
	}
	if opts.EmitTests != "" {
		if err := os.WriteFile(opts.EmitTests, []byte(UnitTestSource(res.Differences)), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (e *engine) progress(total int) {
	if e.opts.OnProgress != nil {
		e.opts.OnProgress(e.execs, total, len(e.corpus), len(e.diffs))
	}
}
