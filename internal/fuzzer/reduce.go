package fuzzer

import (
	"cogdiff/internal/bytecode"
)

// The reducer is a delta-debugging (ddmin) loop over gene ranges, run to a
// fixpoint: by the time it terminates, the final chunk size of 1 has tried
// removing every single gene of the result without reproducing the cause,
// which is exactly the 1-minimality property the reducer tests assert.
// Inputs and literals are simplified inside the same fixpoint, so the
// emitted sequence carries the smallest values that still trigger.

// Reduce shrinks s to a 1-minimal sequence that still triggers the cause
// identified by key (an instrument|family string). causeKeys reports the
// cause keys a candidate triggers — a candidate counts as reproducing when
// key is among them. Returns the reduced sequence and the number of
// candidate evaluations spent.
func Reduce(s *Seq, key string, causeKeys func(*Seq) []string) (*Seq, int) {
	execs := 0
	reproduces := func(cand *Seq) bool {
		execs++
		for _, k := range causeKeys(cand) {
			if k == key {
				return true
			}
		}
		return false
	}

	cur := s.Clone()
	if !reproduces(cur) {
		// Not reproducible in isolation (should not happen for verdicts the
		// engine recorded); hand the original back untouched.
		return cur, execs
	}

	simpleValues := []Value{IntValue(0), IntValue(1)}
	simpleLits := []bytecode.Literal{bytecode.IntLiteral(0), bytecode.IntLiteral(1)}

	for changed := true; changed; {
		changed = false

		// ddmin over gene ranges, halving the chunk size down to 1.
		for size := len(cur.Code) / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(cur.Code); {
				if len(cur.Code)-size < 1 {
					break
				}
				cand := RemoveRange(cur, start, size)
				if reproduces(cand) {
					cur = cand
					changed = true
				} else {
					start += size
				}
			}
		}

		// Simplify inputs toward the smallest values that still trigger.
		// Each value may only move to an earlier slot in the simple-value
		// list, so simplification is monotone and the fixpoint terminates.
		if cand, ok := simplifyValue(&cur.Receiver, simpleValues, cur, func(c *Seq, v Value) { c.Receiver = v }, reproduces); ok {
			cur = cand
			changed = true
		}
		for i := range cur.Args {
			i := i
			if cand, ok := simplifyValue(&cur.Args[i], simpleValues, cur, func(c *Seq, v Value) { c.Args[i] = v }, reproduces); ok {
				cur = cand
				changed = true
			}
		}

		// Simplify literal values the same way.
		for i := range cur.Literals {
			rank := litRank(cur.Literals[i], simpleLits)
			for j := 0; j < rank; j++ {
				cand := cur.Clone()
				cand.Literals[i] = simpleLits[j]
				if reproduces(cand) {
					cur = cand
					changed = true
					break
				}
			}
		}
	}

	return CompactLiterals(cur), execs
}

// simplifyValue tries to replace *slot with an earlier entry of the simple
// list; returns the accepted candidate. Values already in the list only
// ever move toward index 0, which bounds the fixpoint.
func simplifyValue(slot *Value, simple []Value, cur *Seq, set func(*Seq, Value), reproduces func(*Seq) bool) (*Seq, bool) {
	rank := len(simple)
	for j, v := range simple {
		if *slot == v {
			rank = j
			break
		}
	}
	for j := 0; j < rank; j++ {
		cand := cur.Clone()
		set(cand, simple[j])
		if reproduces(cand) {
			return cand, true
		}
	}
	return nil, false
}

func litRank(l bytecode.Literal, simple []bytecode.Literal) int {
	for j, s := range simple {
		if l == s {
			return j
		}
	}
	return len(simple)
}

// CompactLiterals drops literals no gene references and renumbers the
// remaining push opcodes. Purely frame cleanup: gene count and semantics
// are untouched, so 1-minimality is preserved.
func CompactLiterals(s *Seq) *Seq {
	used := make([]bool, len(s.Literals))
	for _, g := range s.Code {
		d := bytecode.Describe(g.Op)
		if d.Family == bytecode.FamPushLiteralConstant && d.Embedded < len(used) {
			used[d.Embedded] = true
		}
	}
	keep := 0
	for _, u := range used {
		if u {
			keep++
		}
	}
	if keep == len(s.Literals) {
		return s
	}
	out := s.Clone()
	out.Literals = out.Literals[:0]
	remap := make([]int, len(s.Literals))
	for i, u := range used {
		if u {
			remap[i] = len(out.Literals)
			out.Literals = append(out.Literals, s.Literals[i])
		} else {
			remap[i] = -1
		}
	}
	for i := range out.Code {
		d := bytecode.Describe(out.Code[i].Op)
		if d.Family == bytecode.FamPushLiteralConstant {
			out.Code[i].Op = bytecode.OpPushLiteralConstant0 + bytecode.Op(remap[d.Embedded])
		}
	}
	return out
}
