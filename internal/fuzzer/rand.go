package fuzzer

import (
	"math/rand" //cogdiff:allow-nondeterminism fuzzer RNG is explicitly seeded; runs replay from the seed

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
)

// Mix derives a per-execution RNG seed from the engine seed and a global
// execution index (a splitmix64 step), so any worker — and any replay —
// regenerates exactly the same task for the same index.
func Mix(seed, index int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ClampInt folds an arbitrary int64 into a small-integer-safe range while
// keeping sign and low bits (shared with the native FuzzSequenceDiff
// harness, so both fuzzing paths interpret seed inputs identically).
func ClampInt(v int64) int64 {
	return v % (1 << 20)
}

// Profile selects a generation grammar.
type Profile int

const (
	// ProfileAgreement generates send-free integer sequences on which the
	// interpreter and all byte-code compilers must agree — the grammar
	// behind FuzzSequenceDiff and TestSequenceFuzzProperty.
	ProfileAgreement Profile = iota
	// ProfileFull adds float literals and inputs, comparisons, division,
	// bitwise ops, temp stores and forward branches: the full fuzzing
	// grammar. Sequences from this profile may legitimately differ.
	ProfileFull
)

// binaryOps is the binary-operator pool of the full grammar.
var binaryOps = []bytecode.Op{
	bytecode.OpPrimAdd, bytecode.OpPrimSubtract, bytecode.OpPrimMultiply,
	bytecode.OpPrimDivide, bytecode.OpPrimDiv, bytecode.OpPrimMod,
	bytecode.OpPrimBitAnd, bytecode.OpPrimBitOr, bytecode.OpPrimBitXor,
	bytecode.OpPrimBitShift,
	bytecode.OpPrimLessThan, bytecode.OpPrimGreaterThan,
	bytecode.OpPrimLessOrEqual, bytecode.OpPrimGreaterOrEqual,
	bytecode.OpPrimEqual, bytecode.OpPrimNotEqual,
}

// agreementBinaryOps is the subset the interpreter and every byte-code
// compiler inline identically for small-integer operands.
var agreementBinaryOps = []bytecode.Op{
	bytecode.OpPrimAdd, bytecode.OpPrimSubtract, bytecode.OpPrimMultiply,
}

var interestingInts = []int64{
	0, 1, -1, 2, 3, 7, 10, 100, -100, 1023, -1024,
	1 << 19, -(1 << 19), heap.MaxSmallInt, heap.MinSmallInt,
}

var interestingFloats = []float64{
	0, 1, -1, 0.5, -0.5, 1.5, -2.5, 3.25, 100.125, 1e10, -1e10, 1e-10,
}

func randomValue(rng *rand.Rand, p Profile) Value {
	if p == ProfileAgreement {
		return IntValue(int64(rng.Intn(200) - 100))
	}
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		return IntValue(interestingInts[rng.Intn(len(interestingInts))])
	case 4, 5, 6:
		return FloatValue(interestingFloats[rng.Intn(len(interestingFloats))])
	case 7:
		return Value{Kind: "true"}
	case 8:
		return Value{Kind: "false"}
	}
	return Value{Kind: "nil"}
}

func randomLiteral(rng *rand.Rand, p Profile) bytecode.Literal {
	if p == ProfileAgreement || rng.Intn(3) > 0 {
		return bytecode.IntLiteral(int64(rng.Intn(2001) - 1000))
	}
	return bytecode.FloatLiteral(interestingFloats[rng.Intn(len(interestingFloats))])
}

// addLiteral interns l into the genome's literal frame and returns its
// index, or -1 when the frame is full.
func (s *Seq) addLiteral(l bytecode.Literal) int {
	for i, have := range s.Literals {
		if have == l {
			return i
		}
	}
	if len(s.Literals) >= maxLiterals {
		return -1
	}
	s.Literals = append(s.Literals, l)
	return len(s.Literals) - 1
}

// pushGene emits a push of the given literal, preferring the dedicated
// short-form constant opcodes (as the builder does).
func (s *Seq) pushGene(l bytecode.Literal) (Gene, bool) {
	if l.Kind == bytecode.LitInt {
		switch l.Int {
		case 0:
			return Gene{Op: bytecode.OpPushConstantZero}, true
		case 1:
			return Gene{Op: bytecode.OpPushConstantOne}, true
		case -1:
			return Gene{Op: bytecode.OpPushConstantMinusOne}, true
		case 2:
			return Gene{Op: bytecode.OpPushConstantTwo}, true
		}
	}
	idx := s.addLiteral(l)
	if idx < 0 {
		return Gene{}, false
	}
	return Gene{Op: bytecode.OpPushLiteralConstant0 + bytecode.Op(idx)}, true
}

// RandomSeq generates a random well-formed genome with numArgs parameters
// under the given profile. The generated sequence always passes Check.
func RandomSeq(rng *rand.Rand, numArgs int, p Profile) *Seq {
	s := &Seq{NumArgs: numArgs, Receiver: randomValue(rng, p)}
	for i := 0; i < numArgs; i++ {
		s.Args = append(s.Args, randomValue(rng, p))
	}
	if p == ProfileFull {
		s.NumTemps = rng.Intn(2)
	}
	tempCount := s.NumArgs + s.NumTemps

	depth := 0
	n := 3 + rng.Intn(12)
	if p == ProfileFull {
		n = 3 + rng.Intn(16)
	}
	for i := 0; i < n; i++ {
		switch pick := rng.Intn(10); {
		case pick < 3: // push a constant
			if g, ok := s.pushGene(randomLiteral(rng, p)); ok {
				s.Code = append(s.Code, g)
				depth++
			}
		case pick < 5 && tempCount > 0:
			s.Code = append(s.Code, Gene{Op: bytecode.OpPushTemporaryVariable0 + bytecode.Op(rng.Intn(tempCount))})
			depth++
		case pick < 6:
			if p == ProfileFull && rng.Intn(4) == 0 {
				ops := []bytecode.Op{bytecode.OpPushConstantTrue, bytecode.OpPushConstantFalse, bytecode.OpPushConstantNil}
				s.Code = append(s.Code, Gene{Op: ops[rng.Intn(len(ops))]})
			} else {
				s.Code = append(s.Code, Gene{Op: bytecode.OpPushReceiver})
			}
			depth++
		case pick < 7 && depth >= 1:
			if p == ProfileFull && tempCount > 0 && rng.Intn(3) == 0 {
				idx := rng.Intn(min(tempCount, 8))
				if rng.Intn(2) == 0 {
					s.Code = append(s.Code, Gene{Op: bytecode.OpStoreTemporaryVariable0 + bytecode.Op(idx)})
				} else {
					s.Code = append(s.Code, Gene{Op: bytecode.OpPopIntoTemporaryVariable0 + bytecode.Op(idx)})
					depth--
				}
			} else {
				s.Code = append(s.Code, Gene{Op: bytecode.OpDuplicateTop})
				depth++
			}
		case pick < 8 && depth >= 2:
			pool := agreementBinaryOps
			if p == ProfileFull {
				pool = binaryOps
			}
			s.Code = append(s.Code, Gene{Op: pool[rng.Intn(len(pool))]})
			depth--
		case pick < 9 && depth >= 1:
			s.Code = append(s.Code, Gene{Op: bytecode.OpPopStackTop})
			depth--
		default:
			s.Code = append(s.Code, Gene{Op: bytecode.OpNop})
		}
		if depth >= maxSeqDepth-2 {
			s.Code = append(s.Code, Gene{Op: bytecode.OpPopStackTop})
			depth--
		}
	}

	// The full profile appends a guarded block with some probability: a
	// condition push, a conditional forward branch over a stack-balanced
	// body, so branch byte-codes enter the corpus from generation, not
	// only from mutation.
	if p == ProfileFull && rng.Intn(3) == 0 && depth < maxSeqDepth-3 {
		condOps := []bytecode.Op{bytecode.OpPushConstantTrue, bytecode.OpPushConstantFalse}
		s.Code = append(s.Code, Gene{Op: condOps[rng.Intn(2)]})
		jumpOp := bytecode.OpShortJumpIfTrue1
		if rng.Intn(2) == 0 {
			jumpOp = bytecode.OpShortJumpIfFalse1
		}
		jumpAt := len(s.Code)
		s.Code = append(s.Code, Gene{Op: jumpOp}) // target patched below
		if g, ok := s.pushGene(randomLiteral(rng, p)); ok {
			s.Code = append(s.Code, g)
			s.Code = append(s.Code, Gene{Op: bytecode.OpPopStackTop})
		} else {
			s.Code = append(s.Code, Gene{Op: bytecode.OpNop})
		}
		s.Code[jumpAt].Target = len(s.Code)
	}

	if depth >= 1 {
		s.Code = append(s.Code, Gene{Op: bytecode.OpReturnTop})
	} else {
		s.Code = append(s.Code, Gene{Op: bytecode.OpReturnReceiver})
	}
	return s
}
