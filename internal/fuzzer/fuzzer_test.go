package fuzzer

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// The rediscovery and minimality tests share one fuzzing run: the run is
// the expensive part, the assertions are not.
var (
	sharedOnce sync.Once
	sharedRes  *Result
	sharedErr  error
)

func sharedOptions() Options {
	return Options{Seed: 2022, Budget: 600, Workers: 0, Minimize: true}
}

func sharedRun(t *testing.T) *Result {
	t.Helper()
	sharedOnce.Do(func() {
		sharedRes, sharedErr = Run(sharedOptions())
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedRes
}

// A fixed seed and a small budget must rediscover at least three distinct
// seeded defect causes through sequences (the acceptance bar of the
// subsystem), with every difference carrying a reduced sequence.
func TestFuzzRediscoversSeededCauses(t *testing.T) {
	res := sharedRun(t)
	if len(res.Matched) < 3 {
		t.Fatalf("rediscovered %d seeded causes %v, want >= 3\n%s", len(res.Matched), res.Matched, Report(res))
	}
	if len(res.Differences) == 0 {
		t.Fatal("no differences recorded")
	}
	for _, d := range res.Differences {
		if d.Reduced == nil {
			t.Fatalf("difference %s has no reduced sequence", d.Key())
		}
		if len(d.Reduced.Code) > len(d.Seq.Code) {
			t.Errorf("difference %s: reduction grew %d -> %d", d.Key(), len(d.Seq.Code), len(d.Reduced.Code))
		}
		if err := d.Reduced.Check(); err != nil {
			t.Errorf("difference %s: reduced sequence ill-formed: %v", d.Key(), err)
		}
	}
}

// Every reduced sequence is 1-minimal: it still triggers its classified
// cause, and removing any single byte-code either breaks well-formedness
// or makes the cause disappear.
func TestReducedSequencesAreOneMinimal(t *testing.T) {
	res := sharedRun(t)
	e := newEngine(sharedOptions())
	for _, d := range res.Differences {
		key := d.Key()
		if !containsKey(e.causeKeys(d.Reduced), key) {
			t.Errorf("difference %s: reduced sequence does not reproduce its cause", key)
			continue
		}
		for i := range d.Reduced.Code {
			cand := RemoveRange(d.Reduced, i, 1)
			if cand.Check() != nil {
				continue // removal breaks well-formedness: minimal at i
			}
			if containsKey(e.causeKeys(cand), key) {
				t.Errorf("difference %s: still triggers after removing gene %d of %d",
					key, i, len(d.Reduced.Code))
			}
		}
	}
}

func containsKey(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// The same seed and budget produce deeply equal results and byte-identical
// reports for any worker count — the merge order is canonical, never
// arrival order.
func TestFuzzDeterministicAcrossWorkers(t *testing.T) {
	opts := Options{Seed: 7, Budget: 192, Minimize: true}
	run := func(workers int) *Result {
		o := opts
		o.Workers = workers
		res, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	again := run(1)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=1 and workers=4 disagree:\n--- serial ---\n%s\n--- parallel ---\n%s",
			Report(serial), Report(parallel))
	}
	if !reflect.DeepEqual(serial, again) {
		t.Error("two serial runs with the same seed disagree")
	}
	if Report(serial) != Report(parallel) {
		t.Error("reports are not byte-identical across worker counts")
	}
}

// The corpus survives a save/load round trip and reloads only well-formed
// entries.
func TestCorpusRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var entries []*Seq
	for i := 0; i < 8; i++ {
		entries = append(entries, RandomSeq(rng, rng.Intn(maxSeqArgs+1), ProfileFull))
	}
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := SaveCorpus(path, entries); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("reloaded %d entries, want %d", len(back), len(entries))
	}
	for i := range back {
		if back[i].Key() != entries[i].Key() {
			t.Errorf("entry %d changed across the round trip", i)
		}
	}
	if missing, err := LoadCorpus(filepath.Join(t.TempDir(), "absent.json")); err != nil || missing != nil {
		t.Errorf("missing corpus: got %v, %v; want empty", missing, err)
	}
}

// Mutation always returns a well-formed genome, whatever it is fed.
func TestMutateAlwaysWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := []*Seq{RandomSeq(rng, 0, ProfileAgreement), RandomSeq(rng, 2, ProfileFull)}
	for i := 0; i < 1000; i++ {
		parent := pool[rng.Intn(len(pool))]
		partner := pool[rng.Intn(len(pool))]
		child := Mutate(rng, parent, partner)
		if err := child.Check(); err != nil {
			t.Fatalf("iteration %d: ill-formed child: %v", i, err)
		}
		if len(pool) < 64 {
			pool = append(pool, child)
		}
	}
}

// RandomSeq output always passes Check, for both profiles.
func TestRandomSeqWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		for _, p := range []Profile{ProfileAgreement, ProfileFull} {
			s := RandomSeq(rng, rng.Intn(maxSeqArgs+1), p)
			if err := s.Check(); err != nil {
				t.Fatalf("iteration %d profile %d: %v", i, p, err)
			}
		}
	}
}

// SeedFromTuple is deterministic and clamps inputs into the small-integer
// range, matching the native harness's interpretation of fuzz inputs.
func TestSeedFromTuple(t *testing.T) {
	a := SeedFromTuple(2022, 7, -3, 100)
	b := SeedFromTuple(2022, 7, -3, 100)
	if a.Key() != b.Key() {
		t.Error("SeedFromTuple is not deterministic")
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	huge := SeedFromTuple(1, 1<<40, -(1 << 40), 0)
	if err := huge.Check(); err != nil {
		t.Fatalf("clamped inputs must be well-formed: %v", err)
	}
}

func TestParseGoFuzzSeed(t *testing.T) {
	s, err := parseGoFuzzSeed("go test fuzz v1\nint64(2022)\nint64(7)\nint64(-3)\nint64(100)\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Key() != SeedFromTuple(2022, 7, -3, 100).Key() {
		t.Error("parsed seed does not match the tuple regeneration")
	}
	if _, err := parseGoFuzzSeed("not a corpus file"); err == nil {
		t.Error("malformed header must be rejected")
	}
	if _, err := parseGoFuzzSeed("go test fuzz v1\nint64(1)\n"); err == nil {
		t.Error("wrong value count must be rejected")
	}
}
