package fuzzer

import (
	"testing"

	"cogdiff/internal/telemetry"
)

// TestFuzzReportUnperturbedByTelemetry checks the fuzz report stays
// byte-identical with telemetry on or off, at any worker count, and that
// the execution counters agree with the report's own numbers.
func TestFuzzReportUnperturbedByTelemetry(t *testing.T) {
	run := func(workers int, reg *telemetry.Registry) (*Result, string) {
		res, err := Run(Options{Seed: 11, Budget: 250, Workers: workers, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		return res, Report(res)
	}
	_, base := run(1, nil)
	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"off", "on"} {
			var reg *telemetry.Registry
			if mode == "on" {
				reg = telemetry.NewRegistry()
			}
			res, got := run(workers, reg)
			if got != base {
				t.Errorf("workers=%d telemetry=%s: report diverged from the serial no-telemetry baseline", workers, mode)
			}
			if reg == nil {
				continue
			}
			if execs := reg.Counter(telemetry.MetricFuzzExecs).Value(); execs != int64(res.Executions) {
				t.Errorf("workers=%d: exec counter %d, report says %d", workers, execs, res.Executions)
			}
			if disc := reg.Counter(telemetry.MetricFuzzDiscarded).Value(); disc != int64(res.Discarded) {
				t.Errorf("workers=%d: discard counter %d, report says %d", workers, disc, res.Discarded)
			}
			if size := reg.Gauge(telemetry.MetricFuzzCorpusSize).Value(); size != int64(res.CorpusSize) {
				t.Errorf("workers=%d: corpus gauge %d, report says %d", workers, size, res.CorpusSize)
			}
		}
	}
}
