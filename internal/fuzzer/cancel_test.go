package fuzzer_test

// Cancellation contract of the fuzzing engine: RunContext returns
// ctx.Err() at the next batch boundary, nothing from the cancelled
// batch is merged, and the corpus file is left exactly as it was —
// cancellation never writes a partial corpus.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"cogdiff/internal/fuzzer"
)

func TestRunContextCancelLeavesCorpusUntouched(t *testing.T) {
	corpus := filepath.Join(t.TempDir(), "corpus.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	opts := fuzzer.Options{
		Seed:       2022,
		Budget:     100000,
		BatchSize:  32,
		Workers:    2,
		CorpusPath: corpus,
		OnProgress: func(done, total, corpusSize, causes int) {
			// The first merged batch pulls the plug; the run must stop long
			// before the budget is spent.
			cancel()
		},
	}
	res, err := fuzzer.RunContext(ctx, opts)
	if err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a partial result, want nil")
	}
	if _, err := os.Stat(corpus); !os.IsNotExist(err) {
		t.Errorf("cancelled run touched the corpus file: stat err %v, want not-exist", err)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fuzzer.RunContext(ctx, fuzzer.Options{Seed: 1, Budget: 100}); err != context.Canceled {
		t.Errorf("pre-cancelled run returned %v, want context.Canceled", err)
	}
}
