package fuzzer

import (
	"strings"
	"testing"

	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/telemetry"
)

// fuzzFaultCondition deterministically poisons a slice of the genome
// space: any function of the genome alone keeps reports byte-identical
// at every worker count.
func fuzzFaultCondition(s *Seq) bool { return len(s.Code)%5 == 2 }

// TestFuzzerContainsHeapPanics injects genuine heap faults into a subset
// of executions and checks the engine survives: the run spends its whole
// budget, contained panics surface as crash-style differences classified
// as missing compiled type checks, and the containment counter records
// them.
func TestFuzzerContainsHeapPanics(t *testing.T) {
	reg := telemetry.NewRegistry()
	res, err := Run(Options{
		Seed:    7,
		Budget:  120,
		Workers: 4,
		Metrics: reg,
		faultInject: func(s *Seq) {
			if fuzzFaultCondition(s) {
				heap.NewMemory().MustRead(0x40)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != 120 {
		t.Errorf("run stopped early: %d of 120 executions", res.Executions)
	}
	var containedDiff *Difference
	for _, d := range res.Differences {
		if strings.Contains(d.Detail, "contained panic") {
			containedDiff = d
		}
	}
	if containedDiff == nil {
		t.Fatal("no contained-panic difference reported; the fault injection never fired")
	}
	if containedDiff.Family != defects.MissingCompiledTypeCheck {
		t.Errorf("contained panic classified as %v, want MissingCompiledTypeCheck", containedDiff.Family)
	}
	if got := reg.Counter(telemetry.MetricPanicsContained).Value(); got == 0 {
		t.Error("panics_contained counter is zero")
	}
}

// TestFuzzerPanicContainmentDeterministic checks contained panics keep
// the report byte-identical across worker counts.
func TestFuzzerPanicContainmentDeterministic(t *testing.T) {
	run := func(workers int) string {
		res, err := Run(Options{
			Seed:    7,
			Budget:  120,
			Workers: workers,
			faultInject: func(s *Seq) {
				if fuzzFaultCondition(s) {
					heap.NewMemory().MustRead(0x40)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return Report(res)
	}
	if serial, parallel := run(1), run(4); serial != parallel {
		t.Errorf("reports differ between worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
