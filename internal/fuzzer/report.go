package fuzzer

import (
	"fmt"
	"strings"
)

// Report renders a Result as a deterministic plain-text report: it contains
// no wall-clock data, worker counts or map-ordered output, so two runs with
// the same seed and budget produce byte-identical text.
func Report(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cogdiff fuzz report\n")
	fmt.Fprintf(&b, "  seed %d, budget %d, executions %d (%d discarded)\n",
		r.Seed, r.Budget, r.Executions, r.Discarded)
	fmt.Fprintf(&b, "  corpus %d entries, coverage %d bits\n", r.CorpusSize, r.CoverageBits)

	if len(r.Curve) > 0 {
		fmt.Fprintf(&b, "\ncoverage growth (execs: bits)\n")
		for _, p := range sampleCurve(r.Curve, 10) {
			fmt.Fprintf(&b, "  %6d: %d\n", p.Execs, p.Bits)
		}
	}

	fmt.Fprintf(&b, "\ndifferences: %d distinct causes\n", len(r.Differences))
	for i, d := range r.Differences {
		fmt.Fprintf(&b, "\n[%d] %s | %s\n", i+1, d.Instrument, d.Family)
		fmt.Fprintf(&b, "    first seen on %s / %s at execution %d, re-triggered %d time(s)\n",
			d.Compiler, d.ISA, d.FoundAt, d.Count)
		fmt.Fprintf(&b, "    blamed stage: %s\n", d.Cause)
		fmt.Fprintf(&b, "    %s\n", d.Detail)
		if d.Reduced != nil {
			fmt.Fprintf(&b, "    reduced %d -> %d byte-codes (%d reduction execs)\n",
				len(d.Seq.Code), len(d.Reduced.Code), d.ReduceExecs)
			writeSeq(&b, d.Reduced)
		} else {
			writeSeq(&b, d.Seq)
		}
	}

	fmt.Fprintf(&b, "\nseeded causes rediscovered through sequences: %d\n", len(r.Matched))
	for _, id := range r.Matched {
		fmt.Fprintf(&b, "  %s\n", id)
	}
	return b.String()
}

func writeSeq(b *strings.Builder, s *Seq) {
	fmt.Fprintf(b, "    receiver %s", s.Receiver)
	for i, a := range s.Args {
		fmt.Fprintf(b, ", arg%d %s", i, a)
	}
	b.WriteByte('\n')
	for _, line := range strings.Split(strings.TrimRight(s.Method("fuzzseq").Disassemble(), "\n"), "\n") {
		fmt.Fprintf(b, "      %s\n", line)
	}
}

// sampleCurve thins a curve to at most n points, always keeping the last.
func sampleCurve(curve []CurvePoint, n int) []CurvePoint {
	if len(curve) <= n {
		return curve
	}
	out := make([]CurvePoint, 0, n)
	for i := 0; i < n-1; i++ {
		out = append(out, curve[i*len(curve)/(n-1)])
	}
	return append(out, curve[len(curve)-1])
}
