package solver

import (
	"errors"
	"math/rand"
	"testing"

	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// solveChecked solves and asserts model soundness via the independent
// checker.
func solveChecked(t *testing.T, u *sym.Universe, cs ...sym.Constraint) *sym.Model {
	t.Helper()
	m, err := Solve(u, cs)
	if err != nil {
		t.Fatalf("Solve(%v) failed: %v", cs, err)
	}
	if !Check(u, m, cs) {
		t.Fatalf("model %s does not satisfy %v", m, cs)
	}
	return m
}

func TestSolveTypeAtom(t *testing.T) {
	u := sym.NewUniverse()
	s0 := u.Stack(0)
	m := solveChecked(t, u, sym.TypeIs{V: s0, Kind: sym.KindSmallInt})
	tv, ok := m.ValueOf(s0)
	if !ok || tv.Kind != sym.KindSmallInt {
		t.Fatalf("expected small int witness, got %v", tv)
	}
}

func TestSolveNegatedType(t *testing.T) {
	u := sym.NewUniverse()
	s0 := u.Stack(0)
	m := solveChecked(t, u, sym.Not{C: sym.TypeIs{V: s0, Kind: sym.KindSmallInt}})
	tv, _ := m.ValueOf(s0)
	if tv.Kind == sym.KindSmallInt {
		t.Fatalf("witness must not be a small int: %v", tv)
	}
}

func TestSolveUnsatTypeConflict(t *testing.T) {
	u := sym.NewUniverse()
	s0 := u.Stack(0)
	_, err := Solve(u, []sym.Constraint{
		sym.TypeIs{V: s0, Kind: sym.KindSmallInt},
		sym.TypeIs{V: s0, Kind: sym.KindFloat},
	})
	if !errors.Is(err, ErrUnsat) {
		t.Fatalf("expected unsat, got %v", err)
	}
}

func TestSolveAddOverflowPath(t *testing.T) {
	// The Table 1 overflow path: both args are integers, their sum is not.
	u := sym.NewUniverse()
	s0, s1 := u.Stack(0), u.Stack(1)
	sum := sym.IntBin{Op: sym.OpAdd, L: sym.IntValueOf{V: s0}, R: sym.IntValueOf{V: s1}}
	m := solveChecked(t, u,
		sym.StackSizeAtLeast{N: 2},
		sym.TypeIs{V: s0, Kind: sym.KindSmallInt},
		sym.TypeIs{V: s1, Kind: sym.KindSmallInt},
		sym.Negate(sym.InSmallIntRange{E: sum}),
	)
	a, _ := m.ValueOf(s0)
	b, _ := m.ValueOf(s1)
	total := a.Int + b.Int
	if heap.IsIntegerValue(total) {
		t.Fatalf("sum %d should overflow the small int range", total)
	}
	if m.StackSize < 2 {
		t.Fatalf("stack size %d too small", m.StackSize)
	}
}

func TestSolveAddInRangePath(t *testing.T) {
	u := sym.NewUniverse()
	s0, s1 := u.Stack(0), u.Stack(1)
	sum := sym.IntBin{Op: sym.OpAdd, L: sym.IntValueOf{V: s0}, R: sym.IntValueOf{V: s1}}
	m := solveChecked(t, u,
		sym.StackSizeAtLeast{N: 2},
		sym.TypeIs{V: s0, Kind: sym.KindSmallInt},
		sym.TypeIs{V: s1, Kind: sym.KindSmallInt},
		sym.InSmallIntRange{E: sum},
	)
	a, _ := m.ValueOf(s0)
	b, _ := m.ValueOf(s1)
	if !heap.IsIntegerValue(a.Int + b.Int) {
		t.Fatalf("sum %d out of range", a.Int+b.Int)
	}
}

func TestSolveMulOverflow(t *testing.T) {
	u := sym.NewUniverse()
	s0, s1 := u.Stack(0), u.Stack(1)
	prod := sym.IntBin{Op: sym.OpMul, L: sym.IntValueOf{V: s0}, R: sym.IntValueOf{V: s1}}
	m := solveChecked(t, u,
		sym.TypeIs{V: s0, Kind: sym.KindSmallInt},
		sym.TypeIs{V: s1, Kind: sym.KindSmallInt},
		sym.Negate(sym.InSmallIntRange{E: prod}),
	)
	a, _ := m.ValueOf(s0)
	b, _ := m.ValueOf(s1)
	if heap.IsIntegerValue(a.Int * b.Int) {
		t.Fatalf("product %d should overflow", a.Int*b.Int)
	}
}

func TestSolveClassConstraint(t *testing.T) {
	u := sym.NewUniverse()
	r := u.Receiver()
	m := solveChecked(t, u, sym.ClassIs{V: r, ClassIndex: heap.ClassIndexArray})
	tv, _ := m.ValueOf(r)
	if tv.Kind != sym.KindPointer || tv.ClassIndex != heap.ClassIndexArray {
		t.Fatalf("expected array witness, got %v", tv)
	}
	if tv.Format != heap.FormatPointers {
		t.Fatalf("array witness must have pointers format, got %v", tv.Format)
	}
}

func TestSolveNegatedClassPicksOther(t *testing.T) {
	u := sym.NewUniverse()
	r := u.Receiver()
	m := solveChecked(t, u,
		sym.TypeIs{V: r, Kind: sym.KindPointer},
		sym.Not{C: sym.ClassIs{V: r, ClassIndex: heap.ClassIndexObject}},
	)
	tv, _ := m.ValueOf(r)
	if tv.ClassIndex == heap.ClassIndexObject {
		t.Fatalf("excluded class chosen: %v", tv)
	}
}

func TestSolveFormatConstraint(t *testing.T) {
	u := sym.NewUniverse()
	r := u.Receiver()
	m := solveChecked(t, u, sym.FormatIs{V: r, F: heap.FormatBytes})
	tv, _ := m.ValueOf(r)
	if tv.Format != heap.FormatBytes {
		t.Fatalf("expected bytes witness, got %v", tv)
	}
}

func TestSolveSlotCountBounds(t *testing.T) {
	u := sym.NewUniverse()
	r := u.Receiver()
	m := solveChecked(t, u,
		sym.SlotCountAtLeast{V: r, N: 3},
		sym.Not{C: sym.SlotCountAtLeast{V: r, N: 10}},
	)
	tv, _ := m.ValueOf(r)
	if tv.SlotCount < 3 || tv.SlotCount >= 10 {
		t.Fatalf("slot count %d outside [3,10)", tv.SlotCount)
	}
}

func TestSolveSlotBoundsUnsat(t *testing.T) {
	u := sym.NewUniverse()
	r := u.Receiver()
	_, err := Solve(u, []sym.Constraint{
		sym.SlotCountAtLeast{V: r, N: 5},
		sym.Not{C: sym.SlotCountAtLeast{V: r, N: 3}},
	})
	if !errors.Is(err, ErrUnsat) {
		t.Fatalf("expected unsat, got %v", err)
	}
}

func TestSolveAtBoundsCheck(t *testing.T) {
	// at: path: receiver is an array, index is an integer within bounds.
	u := sym.NewUniverse()
	r, i := u.Receiver(), u.Arg(0)
	m := solveChecked(t, u,
		sym.ClassIs{V: r, ClassIndex: heap.ClassIndexArray},
		sym.TypeIs{V: i, Kind: sym.KindSmallInt},
		sym.ICmp{Op: sym.CmpGE, L: sym.IntValueOf{V: i}, R: sym.IntConst{V: 1}},
		sym.ICmp{Op: sym.CmpLE, L: sym.IntValueOf{V: i}, R: sym.SlotCountOf{V: r}},
	)
	rv, _ := m.ValueOf(r)
	iv, _ := m.ValueOf(i)
	if iv.Int < 1 || iv.Int > int64(rv.SlotCount) {
		t.Fatalf("index %d out of bounds of %d slots", iv.Int, rv.SlotCount)
	}
}

func TestSolveStackBounds(t *testing.T) {
	u := sym.NewUniverse()
	m := solveChecked(t, u, sym.StackSizeAtLeast{N: 3})
	if m.StackSize != 3 {
		t.Fatalf("stack size %d, want 3", m.StackSize)
	}
	_, err := Solve(u, []sym.Constraint{
		sym.StackSizeAtLeast{N: 3},
		sym.Not{C: sym.StackSizeAtLeast{N: 2}},
	})
	if !errors.Is(err, ErrUnsat) {
		t.Fatalf("expected unsat stack bounds, got %v", err)
	}
}

func TestSolveIdentical(t *testing.T) {
	u := sym.NewUniverse()
	a, b := u.Stack(0), u.Stack(1)
	m := solveChecked(t, u,
		sym.Identical{A: a, B: b},
		sym.TypeIs{V: a, Kind: sym.KindSmallInt},
		sym.ICmp{Op: sym.CmpEQ, L: sym.IntValueOf{V: a}, R: sym.IntConst{V: 7}},
	)
	tvb, ok := m.ValueOf(b)
	if !ok || tvb.Int != 7 {
		t.Fatalf("aliased var should inherit value, got %v %v", tvb, ok)
	}
}

func TestSolveNotIdenticalSmallInts(t *testing.T) {
	u := sym.NewUniverse()
	a, b := u.Stack(0), u.Stack(1)
	m := solveChecked(t, u,
		sym.TypeIs{V: a, Kind: sym.KindSmallInt},
		sym.TypeIs{V: b, Kind: sym.KindSmallInt},
		sym.Not{C: sym.Identical{A: a, B: b}},
	)
	tva, _ := m.ValueOf(a)
	tvb, _ := m.ValueOf(b)
	if tva.Int == tvb.Int {
		t.Fatalf("distinct small ints must differ: %d", tva.Int)
	}
}

func TestSolveFloatComparison(t *testing.T) {
	u := sym.NewUniverse()
	a, b := u.Stack(0), u.Stack(1)
	m := solveChecked(t, u,
		sym.TypeIs{V: a, Kind: sym.KindFloat},
		sym.TypeIs{V: b, Kind: sym.KindFloat},
		sym.FCmp{Op: sym.CmpLT, L: sym.FloatValueOf{V: a}, R: sym.FloatValueOf{V: b}},
	)
	tva, _ := m.ValueOf(a)
	tvb, _ := m.ValueOf(b)
	if !(tva.Float < tvb.Float) {
		t.Fatalf("%g not < %g", tva.Float, tvb.Float)
	}
}

func TestSolveRejectsBitwise(t *testing.T) {
	u := sym.NewUniverse()
	v := u.Stack(0)
	_, err := Solve(u, []sym.Constraint{
		sym.ICmp{
			Op: sym.CmpEQ,
			L:  sym.IntBin{Op: sym.OpBitAnd, L: sym.IntValueOf{V: v}, R: sym.IntConst{V: 1}},
			R:  sym.IntConst{V: 1},
		},
	})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("bitwise constraint must be unsupported, got %v", err)
	}
}

func TestSolveDivisionGuard(t *testing.T) {
	u := sym.NewUniverse()
	a, b := u.Stack(0), u.Stack(1)
	div := sym.IntBin{Op: sym.OpDiv, L: sym.IntValueOf{V: a}, R: sym.IntValueOf{V: b}}
	m := solveChecked(t, u,
		sym.TypeIs{V: a, Kind: sym.KindSmallInt},
		sym.TypeIs{V: b, Kind: sym.KindSmallInt},
		sym.ICmp{Op: sym.CmpNE, L: sym.IntValueOf{V: b}, R: sym.IntConst{V: 0}},
		sym.InSmallIntRange{E: div},
	)
	tvb, _ := m.ValueOf(b)
	if tvb.Int == 0 {
		t.Fatal("divisor must be nonzero")
	}
}

func TestSolveDisjunction(t *testing.T) {
	u := sym.NewUniverse()
	v := u.Stack(0)
	m := solveChecked(t, u, sym.AnyOf{
		sym.TypeIs{V: v, Kind: sym.KindFloat},
		sym.TypeIs{V: v, Kind: sym.KindTrue},
	})
	tv, _ := m.ValueOf(v)
	if tv.Kind != sym.KindFloat && tv.Kind != sym.KindTrue {
		t.Fatalf("witness kind %v not in disjunction", tv.Kind)
	}
}

func TestSolveNegatedRangeIsDisjunction(t *testing.T) {
	// Fig. 2: !(min <= e <= max) must solve via either side.
	u := sym.NewUniverse()
	v := u.Stack(0)
	e := sym.IntBin{Op: sym.OpSub, L: sym.IntValueOf{V: v}, R: sym.IntConst{V: 1}}
	m := solveChecked(t, u,
		sym.TypeIs{V: v, Kind: sym.KindSmallInt},
		sym.Negate(sym.InSmallIntRange{E: e}),
	)
	tv, _ := m.ValueOf(v)
	if heap.IsIntegerValue(tv.Int - 1) {
		t.Fatalf("v-1 = %d should be out of range", tv.Int-1)
	}
}

func TestEvalIntBinSmalltalkDivMod(t *testing.T) {
	cases := []struct {
		op   sym.BinOp
		l, r int64
		want int64
	}{
		{sym.OpDiv, 7, 2, 3},
		{sym.OpDiv, -7, 2, -4}, // floored
		{sym.OpMod, 7, 2, 1},
		{sym.OpMod, -7, 2, 1}, // floored modulo has divisor's sign
		{sym.OpMod, 7, -2, -1},
		{sym.OpQuo, -7, 2, -3}, // truncated
	}
	for _, c := range cases {
		got, err := evalIntBin(c.op, c.l, c.r)
		if err != nil || got != c.want {
			t.Errorf("%d %s %d = %d (err %v), want %d", c.l, c.op, c.r, got, err, c.want)
		}
	}
	if _, err := evalIntBin(sym.OpDiv, 1, 0); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := evalIntBin(sym.OpMod, 1, 0); err == nil {
		t.Error("modulo by zero must error")
	}
}

// TestSolveSoundnessProperty generates random satisfiable-looking
// constraint sets and verifies that every model Solve returns passes the
// independent checker (it never verifies unsat claims, only soundness).
func TestSolveSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kinds := []sym.TypeKind{sym.KindSmallInt, sym.KindFloat, sym.KindPointer, sym.KindNil, sym.KindTrue, sym.KindFalse}
	for iter := 0; iter < 300; iter++ {
		u := sym.NewUniverse()
		vars := []*sym.Var{u.Stack(0), u.Stack(1), u.Receiver()}
		var cs []sym.Constraint
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			v := vars[rng.Intn(len(vars))]
			var c sym.Constraint
			switch rng.Intn(6) {
			case 0:
				c = sym.TypeIs{V: v, Kind: kinds[rng.Intn(len(kinds))]}
			case 1:
				c = sym.Not{C: sym.TypeIs{V: v, Kind: kinds[rng.Intn(len(kinds))]}}
			case 2:
				c = sym.AllOf{
					sym.TypeIs{V: v, Kind: sym.KindSmallInt},
					sym.ICmp{Op: sym.CmpOp(rng.Intn(6)), L: sym.IntValueOf{V: v}, R: sym.IntConst{V: int64(rng.Intn(100) - 50)}},
				}
			case 3:
				c = sym.StackSizeAtLeast{N: rng.Intn(4)}
			case 4:
				c = sym.AllOf{
					sym.TypeIs{V: v, Kind: sym.KindPointer},
					sym.SlotCountAtLeast{V: v, N: rng.Intn(5)},
				}
			case 5:
				w := vars[rng.Intn(len(vars))]
				c = sym.AllOf{
					sym.TypeIs{V: v, Kind: sym.KindSmallInt},
					sym.TypeIs{V: w, Kind: sym.KindSmallInt},
					sym.ICmp{Op: sym.CmpOp(rng.Intn(6)), L: sym.IntValueOf{V: v}, R: sym.IntValueOf{V: w}},
				}
			}
			cs = append(cs, c)
		}
		m, err := Solve(u, cs)
		if err != nil {
			continue // unsat or too complex is acceptable here
		}
		if !Check(u, m, cs) {
			t.Fatalf("iter %d: model %s violates %v", iter, m, cs)
		}
	}
}
