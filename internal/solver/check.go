package solver

import (
	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// Check reports whether a model satisfies a conjunction of constraints.
// It is the independent soundness oracle for Solve: every model returned
// by Solve must Check against the constraints it was solved for.
func Check(u *sym.Universe, m *sym.Model, cs []sym.Constraint) bool {
	for _, c := range cs {
		if !checkOne(u, m, lower(c)) {
			return false
		}
	}
	return true
}

func modelKind(m *sym.Model, v *sym.Var) (sym.TypeKind, sym.TypedValue) {
	if tv, ok := m.ValueOf(v); ok {
		return tv.Kind, tv
	}
	// Unconstrained variables materialize as plain objects.
	return sym.KindPointer, sym.TypedValue{Kind: sym.KindPointer, ClassIndex: heap.ClassIndexObject, Format: heap.FormatFixed}
}

func modelAssignment(m *sym.Model) *assignment {
	a := &assignment{
		ints:   make(map[int]int64),
		slots:  make(map[int]int64),
		floats: make(map[int]float64),
		rep:    m.Rep,
	}
	for id, tv := range m.Values {
		switch tv.Kind {
		case sym.KindSmallInt:
			a.ints[id] = tv.Int
		case sym.KindFloat:
			a.floats[id] = tv.Float
			a.slots[id] = 1
		case sym.KindPointer:
			a.slots[id] = int64(tv.SlotCount)
		}
	}
	return a
}

func checkOne(u *sym.Universe, m *sym.Model, c sym.Constraint) bool {
	switch n := c.(type) {
	case sym.Bool:
		return n.B
	case sym.Not:
		return !checkOne(u, m, n.C)
	case sym.AllOf:
		for _, e := range n {
			if !checkOne(u, m, e) {
				return false
			}
		}
		return true
	case sym.AnyOf:
		for _, e := range n {
			if checkOne(u, m, e) {
				return true
			}
		}
		return false
	case sym.TypeIs:
		k, _ := modelKind(m, n.V)
		return k == n.Kind
	case sym.ClassIs:
		k, tv := modelKind(m, n.V)
		switch k {
		case sym.KindSmallInt:
			return n.ClassIndex == heap.ClassIndexSmallInteger
		case sym.KindFloat:
			return n.ClassIndex == heap.ClassIndexFloat
		case sym.KindNil:
			return n.ClassIndex == heap.ClassIndexUndefinedObj
		case sym.KindTrue:
			return n.ClassIndex == heap.ClassIndexTrue
		case sym.KindFalse:
			return n.ClassIndex == heap.ClassIndexFalse
		default:
			return tv.ClassIndex == n.ClassIndex
		}
	case sym.FormatIs:
		k, tv := modelKind(m, n.V)
		if k == sym.KindFloat {
			return n.F == heap.FormatFloat
		}
		if k != sym.KindPointer {
			return false
		}
		return tv.Format == n.F
	case sym.StackSizeAtLeast:
		return m.StackSize >= n.N
	case sym.SlotCountAtLeast:
		k, tv := modelKind(m, n.V)
		switch k {
		case sym.KindPointer:
			return tv.SlotCount >= n.N
		case sym.KindFloat:
			return 1 >= n.N
		default:
			return n.N <= 0
		}
	case sym.Identical:
		ka, tva := modelKind(m, n.A)
		kb, tvb := modelKind(m, n.B)
		if m.Rep(n.A.ID) == m.Rep(n.B.ID) {
			return true
		}
		// Immediates and singletons are identical by value.
		if ka != kb {
			return false
		}
		switch ka {
		case sym.KindNil, sym.KindTrue, sym.KindFalse:
			return true
		case sym.KindSmallInt:
			return tva.Int == tvb.Int
		}
		return false // distinct heap objects
	case sym.ICmp:
		a := modelAssignment(m)
		ok, deferred := a.checkICmp(n)
		return ok && !deferred
	case sym.FCmp:
		a := modelAssignment(m)
		ok, deferred := a.checkFCmp(n)
		return ok && !deferred
	}
	return false
}
