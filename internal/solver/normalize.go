// Package solver implements the constraint solver behind the concolic
// exploration. It is the from-scratch substitute for the Z3-style solver
// the paper uses, specialized to the semantic constraint language of
// internal/sym: type-domain atoms, linear integer and float comparisons,
// and structural frame/object constraints.
//
// Mirroring the paper's solver limitations (§4.3), integer reasoning is
// capped at 56-bit precision and there is no bitwise theory: constraints
// containing bitwise operators are rejected with ErrUnsupported.
package solver

import (
	"errors"
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// ErrUnsupported marks constraints outside the solver's theory (bitwise
// operators). The concolic explorer curates such paths out, exactly as the
// paper curates paths its solver cannot handle (§5.2).
var ErrUnsupported = errors.New("solver: unsupported constraint")

// ErrTooComplex is returned when normalization exceeds the clause budget.
var ErrTooComplex = errors.New("solver: constraint too complex")

// maxDNFClauses bounds the disjunctive normal form expansion.
const maxDNFClauses = 4096

// IntPrecisionBits mirrors the paper's 56-bit solver integer precision.
const IntPrecisionBits = 56

// lower rewrites compound atoms into the core language: InSmallIntRange
// becomes a conjunction of two comparisons so that its negation produces
// the paper's disjunction (Fig. 2).
func lower(c sym.Constraint) sym.Constraint {
	switch n := c.(type) {
	case sym.InSmallIntRange:
		return sym.AllOf{
			sym.ICmp{Op: sym.CmpGE, L: n.E, R: sym.IntConst{V: heap.MinSmallInt}},
			sym.ICmp{Op: sym.CmpLE, L: n.E, R: sym.IntConst{V: heap.MaxSmallInt}},
		}
	case sym.Not:
		return sym.Not{C: lower(n.C)}
	case sym.AllOf:
		out := make(sym.AllOf, len(n))
		for i, e := range n {
			out[i] = lower(e)
		}
		return out
	case sym.AnyOf:
		out := make(sym.AnyOf, len(n))
		for i, e := range n {
			out[i] = lower(e)
		}
		return out
	default:
		return c
	}
}

// nnf pushes negations down to atoms.
func nnf(c sym.Constraint) sym.Constraint {
	switch n := c.(type) {
	case sym.AllOf:
		out := make(sym.AllOf, len(n))
		for i, e := range n {
			out[i] = nnf(e)
		}
		return out
	case sym.AnyOf:
		out := make(sym.AnyOf, len(n))
		for i, e := range n {
			out[i] = nnf(e)
		}
		return out
	case sym.Not:
		switch inner := n.C.(type) {
		case sym.Not:
			return nnf(inner.C)
		case sym.AllOf, sym.AnyOf, sym.ICmp, sym.FCmp, sym.Bool:
			return nnf(sym.Negate(inner))
		default:
			return n // negated atom stays as a literal
		}
	default:
		return c
	}
}

// clause is a conjunction of literals (atoms or negated atoms).
type clause []sym.Constraint

// dnf expands an NNF constraint into disjunctive normal form.
func dnf(c sym.Constraint) ([]clause, error) {
	switch n := c.(type) {
	case sym.AllOf:
		acc := []clause{{}}
		for _, e := range n {
			sub, err := dnf(e)
			if err != nil {
				return nil, err
			}
			var next []clause
			for _, a := range acc {
				for _, b := range sub {
					merged := make(clause, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
				}
			}
			if len(next) > maxDNFClauses {
				return nil, fmt.Errorf("%w: DNF exceeds %d clauses", ErrTooComplex, maxDNFClauses)
			}
			acc = next
		}
		return acc, nil
	case sym.AnyOf:
		var acc []clause
		for _, e := range n {
			sub, err := dnf(e)
			if err != nil {
				return nil, err
			}
			acc = append(acc, sub...)
			if len(acc) > maxDNFClauses {
				return nil, fmt.Errorf("%w: DNF exceeds %d clauses", ErrTooComplex, maxDNFClauses)
			}
		}
		return acc, nil
	default:
		return []clause{{c}}, nil
	}
}

// normalize lowers, NNFs and DNF-expands a conjunction of path conditions.
func normalize(cs []sym.Constraint) ([]clause, error) {
	all := make(sym.AllOf, len(cs))
	for i, c := range cs {
		all[i] = lower(c)
	}
	return dnf(nnf(all))
}

// checkSupported rejects constraints containing bitwise arithmetic, which
// the solver has no theory for.
func checkSupported(cs []sym.Constraint) error {
	var visit func(c sym.Constraint) error
	var visitInt func(e sym.IntExpr) error
	visitInt = func(e sym.IntExpr) error {
		if sym.HasBitwise(e) {
			return fmt.Errorf("%w: bitwise operator in %s", ErrUnsupported, e)
		}
		return nil
	}
	visit = func(c sym.Constraint) error {
		switch n := c.(type) {
		case sym.ICmp:
			if err := visitInt(n.L); err != nil {
				return err
			}
			return visitInt(n.R)
		case sym.Not:
			return visit(n.C)
		case sym.AllOf:
			for _, e := range n {
				if err := visit(e); err != nil {
					return err
				}
			}
		case sym.AnyOf:
			for _, e := range n {
				if err := visit(e); err != nil {
					return err
				}
			}
		case sym.InSmallIntRange:
			return visitInt(n.E)
		}
		return nil
	}
	for _, c := range cs {
		if err := visit(c); err != nil {
			return err
		}
	}
	return nil
}
