package solver

import (
	"errors"
	"fmt"
	"math"

	"cogdiff/internal/sym"
)

// assignment holds candidate values during the numeric search: integer
// values for SmallInteger variables and slot counts for pointer variables,
// keyed by representative variable ID.
type assignment struct {
	ints   map[int]int64
	slots  map[int]int64
	floats map[int]float64
	rep    func(int) int
}

var errUnassigned = errors.New("solver: unassigned variable")

// evalInt evaluates an integer expression under a (possibly partial)
// assignment. Unassigned variables yield errUnassigned so the search can
// defer the atom; semantic errors (division by zero) yield other errors.
func (a *assignment) evalInt(e sym.IntExpr) (int64, error) {
	switch n := e.(type) {
	case sym.IntConst:
		return n.V, nil
	case sym.IntValueOf:
		v, ok := a.ints[a.rep(n.V.ID)]
		if !ok {
			return 0, errUnassigned
		}
		return v, nil
	case sym.SlotCountOf:
		v, ok := a.slots[a.rep(n.V.ID)]
		if !ok {
			return 0, errUnassigned
		}
		return v, nil
	case sym.IntBin:
		l, err := a.evalInt(n.L)
		if err != nil {
			return 0, err
		}
		r, err := a.evalInt(n.R)
		if err != nil {
			return 0, err
		}
		return evalIntBin(n.Op, l, r)
	}
	return 0, fmt.Errorf("solver: unknown int expression %T", e)
}

// evalIntBin applies a binary operator with Smalltalk semantics: // and \\
// are floored division and modulo.
func evalIntBin(op sym.BinOp, l, r int64) (int64, error) {
	switch op {
	case sym.OpAdd:
		return l + r, nil
	case sym.OpSub:
		return l - r, nil
	case sym.OpMul:
		return l * r, nil
	case sym.OpDiv:
		if r == 0 {
			return 0, errors.New("solver: division by zero")
		}
		q := l / r
		if (l%r != 0) && ((l < 0) != (r < 0)) {
			q--
		}
		return q, nil
	case sym.OpMod:
		if r == 0 {
			return 0, errors.New("solver: modulo by zero")
		}
		m := l % r
		if m != 0 && ((l < 0) != (r < 0)) {
			m += r
		}
		return m, nil
	case sym.OpQuo:
		if r == 0 {
			return 0, errors.New("solver: division by zero")
		}
		return l / r, nil
	// Bitwise operators can be *evaluated* (the model checker needs this
	// for recorded paths); Solve still rejects them as constraints to
	// search over, mirroring the paper's solver limitation (§4.3).
	case sym.OpBitAnd:
		return l & r, nil
	case sym.OpBitOr:
		return l | r, nil
	case sym.OpBitXor:
		return l ^ r, nil
	case sym.OpShiftLeft:
		return l << uint(r&63), nil
	case sym.OpShiftRight:
		return l >> uint(r&63), nil
	}
	return 0, fmt.Errorf("%w: operator %s", ErrUnsupported, op)
}

// evalFloat evaluates a float expression under the assignment.
func (a *assignment) evalFloat(e sym.FloatExpr) (float64, error) {
	switch n := e.(type) {
	case sym.FloatConst:
		return n.V, nil
	case sym.FloatValueOf:
		v, ok := a.floats[a.rep(n.V.ID)]
		if !ok {
			return 0, errUnassigned
		}
		return v, nil
	case sym.IntToFloat:
		v, err := a.evalInt(n.E)
		if err != nil {
			return 0, err
		}
		return float64(v), nil
	case sym.FloatBin:
		l, err := a.evalFloat(n.L)
		if err != nil {
			return 0, err
		}
		r, err := a.evalFloat(n.R)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case sym.OpAdd:
			return l + r, nil
		case sym.OpSub:
			return l - r, nil
		case sym.OpMul:
			return l * r, nil
		case sym.OpDiv:
			return l / r, nil
		}
		return 0, fmt.Errorf("%w: float operator %s", ErrUnsupported, n.Op)
	}
	return 0, fmt.Errorf("solver: unknown float expression %T", e)
}

func compareInts(op sym.CmpOp, l, r int64) bool {
	switch op {
	case sym.CmpEQ:
		return l == r
	case sym.CmpNE:
		return l != r
	case sym.CmpLT:
		return l < r
	case sym.CmpLE:
		return l <= r
	case sym.CmpGT:
		return l > r
	case sym.CmpGE:
		return l >= r
	}
	return false
}

func compareFloats(op sym.CmpOp, l, r float64) bool {
	switch op {
	case sym.CmpEQ:
		return l == r
	case sym.CmpNE:
		return l != r
	case sym.CmpLT:
		return l < r
	case sym.CmpLE:
		return l <= r
	case sym.CmpGT:
		return l > r
	case sym.CmpGE:
		return l >= r
	}
	return false
}

// checkICmp evaluates an integer comparison; deferred=true means some
// variable is still unassigned.
func (a *assignment) checkICmp(c sym.ICmp) (ok, deferred bool) {
	l, err := a.evalInt(c.L)
	if errors.Is(err, errUnassigned) {
		return true, true
	}
	if err != nil {
		return false, false
	}
	r, err := a.evalInt(c.R)
	if errors.Is(err, errUnassigned) {
		return true, true
	}
	if err != nil {
		return false, false
	}
	return compareInts(c.Op, l, r), false
}

// checkFCmp evaluates a float comparison with the same deferral contract.
func (a *assignment) checkFCmp(c sym.FCmp) (ok, deferred bool) {
	l, err := a.evalFloat(c.L)
	if errors.Is(err, errUnassigned) {
		return true, true
	}
	if err != nil {
		return false, false
	}
	r, err := a.evalFloat(c.R)
	if errors.Is(err, errUnassigned) {
		return true, true
	}
	if err != nil {
		return false, false
	}
	if math.IsNaN(l) || math.IsNaN(r) {
		// NaN compares false with everything except !=.
		return c.Op == sym.CmpNE, false
	}
	return compareFloats(c.Op, l, r), false
}
