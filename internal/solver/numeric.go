package solver

import (
	"fmt"
	"sort"

	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// searchBudget caps the number of numeric search nodes per clause.
const searchBudget = 200000

// solver integer precision bound (§4.3: the paper's solver handles 56-bit
// integers, which is why evaluation was restricted to 32-bit builds).
const (
	solverIntMin = -(1 << (IntPrecisionBits - 1))
	solverIntMax = 1<<(IntPrecisionBits-1) - 1
)

type numVar struct {
	rep    int
	isSlot bool
	lo, hi int64
}

func collectIntVarIDs(e sym.IntExpr, ints, slots map[int]bool, rep func(int) int) {
	switch n := e.(type) {
	case sym.IntValueOf:
		ints[rep(n.V.ID)] = true
	case sym.SlotCountOf:
		slots[rep(n.V.ID)] = true
	case sym.IntBin:
		collectIntVarIDs(n.L, ints, slots, rep)
		collectIntVarIDs(n.R, ints, slots, rep)
	}
}

func collectIntConsts(e sym.IntExpr, into map[int64]bool) {
	switch n := e.(type) {
	case sym.IntConst:
		into[n.V] = true
	case sym.IntBin:
		collectIntConsts(n.L, into)
		collectIntConsts(n.R, into)
	}
}

// searchNumeric finds integer and slot-count values satisfying the clause's
// integer atoms via candidate-based backtracking with bound propagation.
func (st *clauseState) searchNumeric(reps []int, kinds map[int]sym.TypeKind, atoms []sym.ICmp) (*assignment, error) {
	asg := &assignment{
		ints:   make(map[int]int64),
		slots:  make(map[int]int64),
		floats: make(map[int]float64),
		rep:    st.find,
	}

	intSet, slotSet := make(map[int]bool), make(map[int]bool)
	consts := map[int64]bool{0: true, 1: true, -1: true, 2: true}
	for _, a := range atoms {
		collectIntVarIDs(a.L, intSet, slotSet, st.find)
		collectIntVarIDs(a.R, intSet, slotSet, st.find)
		collectIntConsts(a.L, consts)
		collectIntConsts(a.R, consts)
	}
	// Float atoms can reference integers through intToFloat conversions.
	for _, a := range st.floatAtoms {
		var walk func(e sym.FloatExpr)
		walk = func(e sym.FloatExpr) {
			switch n := e.(type) {
			case sym.IntToFloat:
				collectIntVarIDs(n.E, intSet, slotSet, st.find)
				collectIntConsts(n.E, consts)
			case sym.FloatBin:
				walk(n.L)
				walk(n.R)
			}
		}
		walk(a.L)
		walk(a.R)
	}

	var vars []numVar
	for rep := range intSet {
		if kinds[rep] != sym.KindSmallInt {
			return nil, ErrUnsat // an intValueOf over a non-integer kind
		}
		vars = append(vars, numVar{rep: rep, lo: heap.MinSmallInt, hi: heap.MaxSmallInt})
	}
	for rep := range slotSet {
		lo := int64(st.minSlots[rep])
		hi := int64(64)
		if max, ok := st.maxSlots[rep]; ok {
			hi = int64(max)
		}
		vars = append(vars, numVar{rep: rep, isSlot: true, lo: lo, hi: hi})
	}
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].isSlot != vars[j].isSlot {
			return !vars[i].isSlot
		}
		return vars[i].rep < vars[j].rep
	})

	// Bound propagation for single-variable vs constant comparisons.
	for _, a := range atoms {
		st.propagate(a, vars)
	}
	for i := range vars {
		if vars[i].lo > vars[i].hi {
			return nil, ErrUnsat
		}
	}

	// Candidate values: small integers, atom constants (±1), bounds, and
	// halves of constants (useful for sum-overflow witnesses).
	candList := make([]int64, 0, len(consts)*3+8)
	for c := range consts {
		candList = append(candList, c, c-1, c+1, c/2)
	}
	// Total order (magnitude, then positive first): candidates come from a
	// map, so ties must break deterministically or witnesses — and every
	// campaign artifact derived from them — would vary run to run.
	sort.Slice(candList, func(i, j int) bool {
		ai, aj := abs64(candList[i]), abs64(candList[j])
		if ai != aj {
			return ai < aj
		}
		return candList[i] > candList[j]
	})

	budget := searchBudget
	var dfs func(i int) error
	dfs = func(i int) error {
		if budget <= 0 {
			return fmt.Errorf("%w: numeric search budget exhausted", ErrTooComplex)
		}
		if i == len(vars) {
			for _, a := range atoms {
				ok, deferred := asg.checkICmp(a)
				if deferred || !ok {
					return ErrUnsat
				}
			}
			return nil
		}
		v := vars[i]
		tried := make(map[int64]bool)
		try := func(val int64) error {
			if val < v.lo || val > v.hi || tried[val] {
				return ErrUnsat
			}
			tried[val] = true
			budget--
			if v.isSlot {
				asg.slots[v.rep] = val
			} else {
				asg.ints[v.rep] = val
			}
			// Prune on already-decidable atoms.
			for _, a := range atoms {
				if ok, deferred := asg.checkICmp(a); !deferred && !ok {
					return ErrUnsat
				}
			}
			return dfs(i + 1)
		}
		for _, val := range candList {
			if err := try(val); err == nil {
				return nil
			} else if _, tc := errIsBudget(err); tc {
				return err
			}
		}
		for _, val := range []int64{v.lo, v.lo + 1, v.hi - 1, v.hi, (v.lo + v.hi) / 2} {
			if err := try(val); err == nil {
				return nil
			} else if _, tc := errIsBudget(err); tc {
				return err
			}
		}
		if v.isSlot {
			delete(asg.slots, v.rep)
		} else {
			delete(asg.ints, v.rep)
		}
		return ErrUnsat
	}
	if err := dfs(0); err != nil {
		return nil, err
	}
	return asg, nil
}

func errIsBudget(err error) (error, bool) {
	if err == nil {
		return nil, false
	}
	return err, !isUnsat(err)
}

func isUnsat(err error) bool { return err == ErrUnsat }

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// propagate tightens a variable's bounds for atoms of the shape
// var CMP const or const CMP var.
func (st *clauseState) propagate(a sym.ICmp, vars []numVar) {
	varIdx := func(e sym.IntExpr) int {
		var rep int
		var slot bool
		switch n := e.(type) {
		case sym.IntValueOf:
			rep = st.find(n.V.ID)
		case sym.SlotCountOf:
			rep, slot = st.find(n.V.ID), true
		default:
			return -1
		}
		for i := range vars {
			if vars[i].rep == rep && vars[i].isSlot == slot {
				return i
			}
		}
		return -1
	}
	constOf := func(e sym.IntExpr) (int64, bool) {
		c, ok := e.(sym.IntConst)
		return c.V, ok
	}

	if i := varIdx(a.L); i >= 0 {
		if c, ok := constOf(a.R); ok {
			tighten(&vars[i], a.Op, c)
			return
		}
	}
	if i := varIdx(a.R); i >= 0 {
		if c, ok := constOf(a.L); ok {
			// c OP var  ==  var OP' c with the mirrored operator.
			tighten(&vars[i], mirror(a.Op), c)
		}
	}
}

func mirror(op sym.CmpOp) sym.CmpOp {
	switch op {
	case sym.CmpLT:
		return sym.CmpGT
	case sym.CmpLE:
		return sym.CmpGE
	case sym.CmpGT:
		return sym.CmpLT
	case sym.CmpGE:
		return sym.CmpLE
	}
	return op
}

func tighten(v *numVar, op sym.CmpOp, c int64) {
	switch op {
	case sym.CmpEQ:
		if c > v.lo {
			v.lo = c
		}
		if c < v.hi {
			v.hi = c
		}
	case sym.CmpLT:
		if c-1 < v.hi {
			v.hi = c - 1
		}
	case sym.CmpLE:
		if c < v.hi {
			v.hi = c
		}
	case sym.CmpGT:
		if c+1 > v.lo {
			v.lo = c + 1
		}
	case sym.CmpGE:
		if c > v.lo {
			v.lo = c
		}
	}
}

// searchFloats assigns float variables satisfying the clause's float atoms.
// Integer sub-expressions are already fixed by the numeric search.
func (st *clauseState) searchFloats(reps []int, kinds map[int]sym.TypeKind, asg *assignment) error {
	fset := make(map[int]bool)
	var collect func(e sym.FloatExpr)
	consts := map[float64]bool{0: true, 1: true, -1: true, 1.5: true, -2.5: true, 0.5: true, 1e10: true, -1e10: true}
	collect = func(e sym.FloatExpr) {
		switch n := e.(type) {
		case sym.FloatValueOf:
			fset[st.find(n.V.ID)] = true
		case sym.FloatConst:
			consts[n.V] = true
		case sym.FloatBin:
			collect(n.L)
			collect(n.R)
		}
	}
	for _, a := range st.floatAtoms {
		collect(a.L)
		collect(a.R)
	}
	if len(st.floatAtoms) == 0 {
		return nil
	}
	var fvars []int
	for rep := range fset {
		if kinds[rep] != sym.KindFloat {
			return ErrUnsat
		}
		fvars = append(fvars, rep)
	}
	sort.Ints(fvars)

	candList := make([]float64, 0, len(consts)*3)
	for c := range consts {
		candList = append(candList, c, c-1, c+1, c/2, c*2)
	}
	sort.Float64s(candList)

	budget := searchBudget
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if budget <= 0 {
			return false
		}
		if i == len(fvars) {
			for _, a := range st.floatAtoms {
				if ok, deferred := asg.checkFCmp(a); deferred || !ok {
					return false
				}
			}
			return true
		}
		for _, val := range candList {
			budget--
			asg.floats[fvars[i]] = val
			good := true
			for _, a := range st.floatAtoms {
				if ok, deferred := asg.checkFCmp(a); !deferred && !ok {
					good = false
					break
				}
			}
			if good && dfs(i+1) {
				return true
			}
		}
		delete(asg.floats, fvars[i])
		return false
	}
	if !dfs(0) {
		return ErrUnsat
	}
	return nil
}
