package solver

import (
	"errors"
	"math/rand"
	"testing"

	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// bruteSatisfiable decides satisfiability of a constraint set over two
// variables by brute force over a small but representative witness space:
// every semantic kind, and small integers plus range endpoints.
func bruteSatisfiable(u *sym.Universe, a, b *sym.Var, cs []sym.Constraint) bool {
	candidates := []sym.TypedValue{
		{Kind: sym.KindNil}, {Kind: sym.KindTrue}, {Kind: sym.KindFalse},
		{Kind: sym.KindFloat, Float: 1.5},
		{Kind: sym.KindPointer, ClassIndex: heap.ClassIndexObject, Format: heap.FormatFixed, SlotCount: 0},
		{Kind: sym.KindPointer, ClassIndex: heap.ClassIndexArray, Format: heap.FormatPointers, SlotCount: 3},
	}
	for _, v := range []int64{-3, -1, 0, 1, 2, 5, heap.MinSmallInt, heap.MaxSmallInt} {
		candidates = append(candidates, sym.TypedValue{Kind: sym.KindSmallInt, Int: v})
	}
	for _, va := range candidates {
		for _, vb := range candidates {
			m := sym.NewModel()
			m.StackSize = 2
			m.Set(a.ID, va)
			m.Set(b.ID, vb)
			if Check(u, m, cs) {
				return true
			}
		}
	}
	return false
}

// TestSolverCompletenessProperty compares Solve against the brute-force
// decision procedure on random constraint sets: whenever brute force finds
// a witness in its small space, Solve must find one too (and Solve's
// witness must check). The reverse implication does not hold — Solve
// searches a much larger space — so only brute-sat cases are asserted.
func TestSolverCompletenessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []sym.TypeKind{sym.KindSmallInt, sym.KindFloat, sym.KindPointer, sym.KindNil, sym.KindTrue, sym.KindFalse}
	for iter := 0; iter < 400; iter++ {
		u := sym.NewUniverse()
		a, b := u.Stack(0), u.Stack(1)
		vars := []*sym.Var{a, b}
		var cs []sym.Constraint
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			v := vars[rng.Intn(2)]
			switch rng.Intn(5) {
			case 0:
				cs = append(cs, sym.TypeIs{V: v, Kind: kinds[rng.Intn(len(kinds))]})
			case 1:
				cs = append(cs, sym.Not{C: sym.TypeIs{V: v, Kind: kinds[rng.Intn(len(kinds))]}})
			case 2:
				cs = append(cs, sym.AllOf{
					sym.TypeIs{V: v, Kind: sym.KindSmallInt},
					sym.ICmp{Op: sym.CmpOp(rng.Intn(6)), L: sym.IntValueOf{V: v}, R: sym.IntConst{V: int64(rng.Intn(11) - 5)}},
				})
			case 3:
				cs = append(cs, sym.AllOf{
					sym.TypeIs{V: a, Kind: sym.KindSmallInt},
					sym.TypeIs{V: b, Kind: sym.KindSmallInt},
					sym.ICmp{Op: sym.CmpOp(rng.Intn(6)), L: sym.IntValueOf{V: a}, R: sym.IntValueOf{V: b}},
				})
			case 4:
				sum := sym.IntBin{Op: sym.OpAdd, L: sym.IntValueOf{V: a}, R: sym.IntValueOf{V: b}}
				c := sym.Constraint(sym.InSmallIntRange{E: sum})
				if rng.Intn(2) == 0 {
					c = sym.Negate(c)
				}
				cs = append(cs, sym.AllOf{
					sym.TypeIs{V: a, Kind: sym.KindSmallInt},
					sym.TypeIs{V: b, Kind: sym.KindSmallInt},
					c,
				})
			}
		}

		bruteSat := bruteSatisfiable(u, a, b, cs)
		m, err := Solve(u, cs)
		switch {
		case err == nil:
			if !Check(u, m, cs) {
				t.Fatalf("iter %d: unsound model %s for %v", iter, m, cs)
			}
		case errors.Is(err, ErrUnsat):
			if bruteSat {
				t.Fatalf("iter %d: Solve says unsat but brute force found a witness for %v", iter, cs)
			}
		default:
			t.Fatalf("iter %d: unexpected solver error %v for %v", iter, err, cs)
		}
	}
}
