package solver

import (
	"errors"
	"fmt"
	"sort"

	"cogdiff/internal/heap"
	"cogdiff/internal/sym"
)

// ErrUnsat reports that the constraint conjunction has no model.
var ErrUnsat = errors.New("solver: unsatisfiable")

// Solve finds a model for the conjunction of constraints, or ErrUnsat.
// It enumerates DNF clauses and solves each with type-domain enumeration,
// structural bound merging, and a bounded numeric search.
func Solve(u *sym.Universe, cs []sym.Constraint) (*sym.Model, error) {
	if err := checkSupported(cs); err != nil {
		return nil, err
	}
	clauses, err := normalize(cs)
	if err != nil {
		return nil, err
	}
	var lastErr error = ErrUnsat
	for _, cl := range clauses {
		m, err := solveClause(u, cl)
		if err == nil {
			return m, nil
		}
		if !errors.Is(err, ErrUnsat) {
			lastErr = err
		}
	}
	return nil, lastErr
}

// kind bitmask helpers.
type kindSet uint8

const allKinds kindSet = 1<<sym.NumTypeKinds - 1

func kindBit(k sym.TypeKind) kindSet      { return 1 << k }
func (s kindSet) has(k sym.TypeKind) bool { return s&kindBit(k) != 0 }

// classKind maps a class index to the semantic kind its instances have.
func classKind(idx int) sym.TypeKind {
	switch idx {
	case heap.ClassIndexSmallInteger:
		return sym.KindSmallInt
	case heap.ClassIndexFloat:
		return sym.KindFloat
	case heap.ClassIndexUndefinedObj:
		return sym.KindNil
	case heap.ClassIndexTrue:
		return sym.KindTrue
	case heap.ClassIndexFalse:
		return sym.KindFalse
	}
	return sym.KindPointer
}

// clauseState is the analysis of one DNF clause.
type clauseState struct {
	u *sym.Universe

	parent map[int]int // union-find over var IDs (Identical)

	domains      map[int]kindSet
	reqClass     map[int]int
	exclClasses  map[int]map[int]bool
	reqFormat    map[int]heap.Format
	hasReqFormat map[int]bool
	exclFormats  map[int]map[heap.Format]bool
	minSlots     map[int]int
	maxSlots     map[int]int

	minStack int
	maxStack int

	intAtoms   []sym.ICmp
	floatAtoms []sym.FCmp
	distinct   [][2]int // rep pairs that must not be identical
}

func newClauseState(u *sym.Universe) *clauseState {
	return &clauseState{
		u:            u,
		parent:       make(map[int]int),
		domains:      make(map[int]kindSet),
		reqClass:     make(map[int]int),
		exclClasses:  make(map[int]map[int]bool),
		reqFormat:    make(map[int]heap.Format),
		hasReqFormat: make(map[int]bool),
		exclFormats:  make(map[int]map[heap.Format]bool),
		minSlots:     make(map[int]int),
		maxSlots:     make(map[int]int),
		maxStack:     1 << 30,
	}
}

func (st *clauseState) find(id int) int {
	p, ok := st.parent[id]
	if !ok || p == id {
		return id
	}
	r := st.find(p)
	st.parent[id] = r
	return r
}

func (st *clauseState) union(a, b int) {
	ra, rb := st.find(a), st.find(b)
	if ra != rb {
		st.parent[rb] = ra
	}
}

func (st *clauseState) domain(rep int) kindSet {
	if d, ok := st.domains[rep]; ok {
		return d
	}
	return allKinds
}

func (st *clauseState) restrict(id int, allowed kindSet) {
	rep := st.find(id)
	st.domains[rep] = st.domain(rep) & allowed
}

// restrictExprVars applies implicit kind restrictions from expression
// structure: intValueOf implies SmallInteger, floatValueOf implies Float,
// slotCountOf implies a heap object.
func (st *clauseState) restrictIntExpr(e sym.IntExpr) {
	switch n := e.(type) {
	case sym.IntValueOf:
		st.restrict(n.V.ID, kindBit(sym.KindSmallInt))
	case sym.SlotCountOf:
		st.restrict(n.V.ID, kindBit(sym.KindPointer))
	case sym.IntBin:
		st.restrictIntExpr(n.L)
		st.restrictIntExpr(n.R)
	}
}

func (st *clauseState) restrictFloatExpr(e sym.FloatExpr) {
	switch n := e.(type) {
	case sym.FloatValueOf:
		st.restrict(n.V.ID, kindBit(sym.KindFloat))
	case sym.IntToFloat:
		st.restrictIntExpr(n.E)
	case sym.FloatBin:
		st.restrictFloatExpr(n.L)
		st.restrictFloatExpr(n.R)
	}
}

// analyze classifies every literal of the clause. Identical literals must
// be processed before var references, so analysis runs in two passes.
func (st *clauseState) analyze(cl clause) error {
	for _, lit := range cl {
		if id, ok := lit.(sym.Identical); ok {
			st.union(id.A.ID, id.B.ID)
		}
	}
	for _, lit := range cl {
		if err := st.analyzeLiteral(lit, false); err != nil {
			return err
		}
	}
	return nil
}

func (st *clauseState) analyzeLiteral(lit sym.Constraint, negated bool) error {
	switch n := lit.(type) {
	case sym.Not:
		return st.analyzeLiteral(n.C, !negated)
	case sym.Bool:
		if n.B == negated {
			return ErrUnsat
		}
	case sym.TypeIs:
		if negated {
			st.restrict(n.V.ID, allKinds&^kindBit(n.Kind))
		} else {
			st.restrict(n.V.ID, kindBit(n.Kind))
		}
	case sym.ClassIs:
		k := classKind(n.ClassIndex)
		rep := st.find(n.V.ID)
		if negated {
			if k == sym.KindPointer {
				if st.exclClasses[rep] == nil {
					st.exclClasses[rep] = make(map[int]bool)
				}
				st.exclClasses[rep][n.ClassIndex] = true
			} else {
				st.restrict(n.V.ID, allKinds&^kindBit(k))
			}
		} else {
			st.restrict(n.V.ID, kindBit(k))
			if k == sym.KindPointer {
				if prev, ok := st.reqClass[rep]; ok && prev != n.ClassIndex {
					return ErrUnsat
				}
				st.reqClass[rep] = n.ClassIndex
			}
		}
	case sym.FormatIs:
		rep := st.find(n.V.ID)
		if negated {
			if st.exclFormats[rep] == nil {
				st.exclFormats[rep] = make(map[heap.Format]bool)
			}
			st.exclFormats[rep][n.F] = true
		} else {
			if st.hasReqFormat[rep] && st.reqFormat[rep] != n.F {
				return ErrUnsat
			}
			st.reqFormat[rep] = n.F
			st.hasReqFormat[rep] = true
			if n.F == heap.FormatFloat {
				st.restrict(n.V.ID, kindBit(sym.KindFloat))
			} else {
				st.restrict(n.V.ID, kindBit(sym.KindPointer))
			}
		}
	case sym.StackSizeAtLeast:
		if negated {
			if n.N-1 < st.maxStack {
				st.maxStack = n.N - 1
			}
		} else if n.N > st.minStack {
			st.minStack = n.N
		}
	case sym.SlotCountAtLeast:
		rep := st.find(n.V.ID)
		if negated {
			cur, ok := st.maxSlots[rep]
			if !ok || n.N-1 < cur {
				st.maxSlots[rep] = n.N - 1
			}
		} else {
			if n.N > st.minSlots[rep] {
				st.minSlots[rep] = n.N
			}
			if n.N > 0 {
				st.restrict(n.V.ID, kindBit(sym.KindPointer)|kindBit(sym.KindFloat))
			}
		}
	case sym.Identical:
		if negated {
			st.distinct = append(st.distinct, [2]int{st.find(n.A.ID), st.find(n.B.ID)})
		}
		// positive case already merged in the first pass
	case sym.ICmp:
		st.restrictIntExpr(n.L)
		st.restrictIntExpr(n.R)
		st.intAtoms = append(st.intAtoms, n)
	case sym.FCmp:
		st.restrictFloatExpr(n.L)
		st.restrictFloatExpr(n.R)
		st.floatAtoms = append(st.floatAtoms, n)
	default:
		return fmt.Errorf("solver: unexpected literal %T", lit)
	}
	return nil
}

// solveClause attempts one DNF clause.
func solveClause(u *sym.Universe, cl clause) (*sym.Model, error) {
	st := newClauseState(u)
	if err := st.analyze(cl); err != nil {
		return nil, err
	}
	if st.minStack > st.maxStack {
		return nil, ErrUnsat
	}
	for rep, max := range st.maxSlots {
		if max < 0 || st.minSlots[rep] > max {
			return nil, ErrUnsat
		}
	}

	// Collect representatives with constrained domains or numeric roles.
	repSet := make(map[int]bool)
	for id := range st.domains {
		repSet[st.find(id)] = true
	}
	for rep := range st.minSlots {
		repSet[rep] = true
	}
	for rep := range st.maxSlots {
		repSet[rep] = true
	}
	for rep := range st.reqClass {
		repSet[rep] = true
	}
	for _, p := range st.distinct {
		repSet[p[0]] = true
		repSet[p[1]] = true
	}
	reps := make([]int, 0, len(repSet))
	for rep := range repSet {
		reps = append(reps, rep)
	}
	sort.Ints(reps)

	for _, rep := range reps {
		if st.domain(rep) == 0 {
			return nil, ErrUnsat
		}
	}

	// Enumerate kind assignments in preference order.
	prefer := []sym.TypeKind{sym.KindSmallInt, sym.KindPointer, sym.KindFloat, sym.KindNil, sym.KindTrue, sym.KindFalse}
	kinds := make(map[int]sym.TypeKind, len(reps))
	budget := 50000

	var tryKinds func(i int) (*sym.Model, error)
	tryKinds = func(i int) (*sym.Model, error) {
		if budget <= 0 {
			return nil, fmt.Errorf("%w: kind enumeration budget exhausted", ErrTooComplex)
		}
		if i == len(reps) {
			budget--
			return st.solveWithKinds(reps, kinds)
		}
		rep := reps[i]
		dom := st.domain(rep)
		for _, k := range prefer {
			if !dom.has(k) {
				continue
			}
			if st.minSlots[rep] > 0 && k != sym.KindPointer && k != sym.KindFloat {
				continue
			}
			kinds[rep] = k
			m, err := tryKinds(i + 1)
			if err == nil {
				return m, nil
			}
			if errors.Is(err, ErrTooComplex) || errors.Is(err, ErrUnsupported) {
				return nil, err
			}
		}
		delete(kinds, rep)
		return nil, ErrUnsat
	}
	return tryKinds(0)
}

// solveWithKinds finishes a clause once every representative has a kind:
// identity checks, numeric search, model construction.
func (st *clauseState) solveWithKinds(reps []int, kinds map[int]sym.TypeKind) (*sym.Model, error) {
	// Distinctness between singleton kinds fails immediately.
	extraNE := make([]sym.ICmp, 0)
	for _, p := range st.distinct {
		if p[0] == p[1] {
			return nil, ErrUnsat
		}
		ka, kb := kinds[p[0]], kinds[p[1]]
		if ka != kb {
			continue // different kinds are always distinct
		}
		switch ka {
		case sym.KindNil, sym.KindTrue, sym.KindFalse:
			return nil, ErrUnsat
		case sym.KindSmallInt:
			// SmallInteger identity is value identity.
			extraNE = append(extraNE, sym.ICmp{
				Op: sym.CmpNE,
				L:  sym.IntValueOf{V: st.u.ByID(p[0])},
				R:  sym.IntValueOf{V: st.u.ByID(p[1])},
			})
		}
		// Two pointer/float variables materialize as separate objects.
	}

	intAtoms := append(append([]sym.ICmp(nil), st.intAtoms...), extraNE...)
	asg, err := st.searchNumeric(reps, kinds, intAtoms)
	if err != nil {
		return nil, err
	}
	if err := st.searchFloats(reps, kinds, asg); err != nil {
		return nil, err
	}

	m := sym.NewModel()
	m.StackSize = st.minStack
	for id := range st.parent {
		if rep := st.find(id); rep != id {
			m.Alias[id] = rep
		}
	}
	for _, rep := range reps {
		tv, err := st.buildValue(rep, kinds[rep], asg)
		if err != nil {
			return nil, err
		}
		m.Set(rep, tv)
	}
	return m, nil
}

// candidateClasses lists boot classes in witness-preference order.
var candidateClasses = func() []heap.BootClass {
	order := []int{
		heap.ClassIndexObject, heap.ClassIndexArray, heap.ClassIndexString,
		heap.ClassIndexWordArray, heap.ClassIndexByteArray, heap.ClassIndexPoint,
		heap.ClassIndexAssociation, heap.ClassIndexExternalStruct,
		heap.ClassIndexExternalAddr, heap.ClassIndexContext,
	}
	byIdx := make(map[int]heap.BootClass)
	for _, bc := range heap.BootClasses() {
		byIdx[bc.Index] = bc
	}
	out := make([]heap.BootClass, 0, len(order))
	for _, idx := range order {
		out = append(out, byIdx[idx])
	}
	return out
}()

// buildValue constructs the TypedValue for one representative.
func (st *clauseState) buildValue(rep int, kind sym.TypeKind, asg *assignment) (sym.TypedValue, error) {
	switch kind {
	case sym.KindSmallInt:
		v := asg.ints[rep] // zero default is a valid witness
		return sym.TypedValue{Kind: sym.KindSmallInt, Int: v}, nil
	case sym.KindFloat:
		v, ok := asg.floats[rep]
		if !ok {
			v = 1.5
		}
		return sym.TypedValue{Kind: sym.KindFloat, Float: v, ClassIndex: heap.ClassIndexFloat, Format: heap.FormatFloat, SlotCount: 1}, nil
	case sym.KindNil:
		return sym.TypedValue{Kind: sym.KindNil}, nil
	case sym.KindTrue:
		return sym.TypedValue{Kind: sym.KindTrue}, nil
	case sym.KindFalse:
		return sym.TypedValue{Kind: sym.KindFalse}, nil
	}

	// Pointer: choose a class honoring class/format requirements.
	slots := int(asg.slots[rep])
	if slots < st.minSlots[rep] {
		slots = st.minSlots[rep]
	}
	excludedC := st.exclClasses[rep]
	excludedF := st.exclFormats[rep]
	pick := func(bc heap.BootClass) (sym.TypedValue, bool) {
		if excludedC[bc.Index] || excludedF[bc.Format] {
			return sym.TypedValue{}, false
		}
		if st.hasReqFormat[rep] && bc.Format != st.reqFormat[rep] {
			return sym.TypedValue{}, false
		}
		n := slots
		if bc.FixedSlots > n {
			n = bc.FixedSlots
		}
		if max, ok := st.maxSlots[rep]; ok && n > max {
			return sym.TypedValue{}, false
		}
		return sym.TypedValue{Kind: sym.KindPointer, ClassIndex: bc.Index, Format: bc.Format, SlotCount: n}, true
	}
	if cls, ok := st.reqClass[rep]; ok {
		for _, bc := range heap.BootClasses() {
			if bc.Index == cls {
				if tv, ok := pick(bc); ok {
					return tv, nil
				}
				return sym.TypedValue{}, ErrUnsat
			}
		}
		// A required class outside the boot table: trust the constraint.
		return sym.TypedValue{Kind: sym.KindPointer, ClassIndex: cls, Format: heap.FormatFixed, SlotCount: slots}, nil
	}
	for _, bc := range candidateClasses {
		if tv, ok := pick(bc); ok {
			return tv, nil
		}
	}
	return sym.TypedValue{}, ErrUnsat
}
