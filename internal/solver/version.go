package solver

// SemanticsVersion stamps the solver's model-construction behaviour. Explored
// path sets depend on which witnesses the solver picks, so any change to
// witness selection, normalization or satisfiability must bump this,
// orphaning all cached explorations (internal/excache keys embed it).
const SemanticsVersion = "solver/1"
