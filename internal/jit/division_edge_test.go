package jit

import (
	"testing"

	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// nativeDivisionEdgeValues mirrors the core-level division edge grid:
// zero divisors, the MinSmallInt/-1 overflow pair, mixed signs and the
// small-integer range extremes.
var nativeDivisionEdgeValues = []int64{
	heap.MinSmallInt, heap.MinSmallInt + 1,
	-7, -2, -1, 0, 1, 2, 7,
	heap.MaxSmallInt - 1, heap.MaxSmallInt,
}

func runInterpDivision(om *heap.ObjectMemory, tbl *primitives.Table, idx int, a, b int64) interp.Exit {
	f := interp.NewFrame(interp.Concrete(heap.SmallIntFor(a)), []interp.Value{interp.Concrete(heap.SmallIntFor(b))}, nil)
	ctx := interp.NewCtx(om, f, nil)
	return interp.RunPrimitive(ctx, tbl, idx)
}

// TestNativeDivisionTemplatesMatchInterpreter runs the native templates of
// all four division primitives over the edge grid on both ISAs and checks
// each outcome against the interpreter primitive: where the interpreter
// succeeds the template must return the same tagged value; where the
// interpreter fails its operand checks (zero divisor, inexact /,
// MinSmallInt negation overflow) the template must fall through to the
// send path — never return a wrong value or crash the machine.
func TestNativeDivisionTemplatesMatchInterpreter(t *testing.T) {
	prims := primitives.NewTable()
	indices := []struct {
		idx  int
		name string
	}{
		{primitives.PrimIdxDivide, "divide"},
		{primitives.PrimIdxDiv, "div"},
		{primitives.PrimIdxMod, "mod"},
		{primitives.PrimIdxQuo, "quo"},
	}
	for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
		for _, p := range indices {
			om := heap.NewBootedObjectMemory()
			nc := NewNativeMethodCompiler(isa, om, defects.ProductionVM())
			cm, err := nc.CompileNativeMethod(prims.Lookup(p.idx))
			if err != nil {
				t.Fatalf("%v %s: compile: %v", isa, p.name, err)
			}
			for _, a := range nativeDivisionEdgeValues {
				for _, b := range nativeDivisionEdgeValues {
					exit := runInterpDivision(om, prims, p.idx, a, b)
					cpu, _ := machine.New(om)
					cpu.Reset()
					cpu.Regs[machine.SP]--
					om.Mem.MustWrite(cpu.Regs[machine.SP], machine.SentinelReturn)
					cpu.Regs[machine.ReceiverResultReg] = heap.SmallIntFor(a)
					cpu.Regs[machine.Arg0Reg] = heap.SmallIntFor(b)
					cpu.Install(cm.Prog)
					stop := cpu.Run(10000)
					if exit.Kind == interp.ExitSuccess {
						if stop.Kind != machine.StopReturned {
							t.Errorf("%v %s %d,%d: interp returned %v but template stopped %v", isa, p.name, a, b, exit.Result.W, stop)
							continue
						}
						if got := cpu.Regs[machine.ReceiverResultReg]; got != exit.Result.W {
							t.Errorf("%v %s %d,%d: template result %v, interp %v", isa, p.name, a, b, got, exit.Result.W)
						}
					} else {
						if stop.Kind != machine.StopBreakpoint || stop.BreakID != BrkNativeFallthrough {
							t.Errorf("%v %s %d,%d: interp failed (%v) but template stopped %v", isa, p.name, a, b, exit.Kind, stop)
						}
					}
				}
			}
		}
	}
}
