package jit

import (
	"time"

	"cogdiff/internal/defects"
	"cogdiff/internal/telemetry"
)

// PassMetrics carries pre-resolved telemetry handles for the pass
// pipeline. Compilation runs once per tested path — far too hot to
// format histogram series keys — so the handles are resolved once, when
// the owning Tester is given a registry, and shared read-only by every
// Cogit instance afterwards.
type PassMetrics struct {
	compiled         *telemetry.Counter
	passes           *telemetry.Counter
	perPass          map[string]*telemetry.Histogram
	verifyRuns       *telemetry.Counter
	verifyViolations *telemetry.Counter
	verifySeconds    *telemetry.Histogram
}

// NewPassMetrics resolves the pipeline instruments against reg: a
// units-compiled counter, a passes-run counter, and one latency
// histogram per distinct pass name across every variant's pipeline.
// Returns nil (a valid no-op) for a nil registry.
func NewPassMetrics(reg *telemetry.Registry, sw defects.Switches) *PassMetrics {
	if reg == nil {
		return nil
	}
	m := &PassMetrics{
		compiled:         reg.Counter(telemetry.MetricUnitsCompiled),
		passes:           reg.Counter(telemetry.MetricPassesRun),
		perPass:          make(map[string]*telemetry.Histogram),
		verifyRuns:       reg.Counter(telemetry.MetricIRVerifyRuns),
		verifyViolations: reg.Counter(telemetry.MetricIRVerifyViolations),
		verifySeconds:    reg.Histogram(telemetry.MetricIRVerifySeconds, telemetry.DurationBuckets),
	}
	for _, v := range []Variant{SimpleStackBasedCogit, StackToRegisterCogit, RegisterAllocatingCogit, MetaJITCogit} {
		for _, p := range PipelineFor(v, sw) {
			if _, ok := m.perPass[p.Name]; !ok {
				m.perPass[p.Name] = reg.LabeledHistogram(
					telemetry.MetricPassSeconds, telemetry.DurationBuckets, "pass", p.Name)
			}
		}
	}
	return m
}

// unitCompiled counts one successful compilation. No-op on nil.
func (m *PassMetrics) unitCompiled() {
	if m == nil {
		return
	}
	m.compiled.Inc()
}

// observeVerify records one static-verifier run over a stage's output
// and the violations it found. No-op on nil.
func (m *PassMetrics) observeVerify(d time.Duration, violations int) {
	if m == nil {
		return
	}
	m.verifyRuns.Inc()
	m.verifyViolations.Add(int64(violations))
	m.verifySeconds.ObserveDuration(d)
}

// observePass records one pass execution. No-op on nil.
func (m *PassMetrics) observePass(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.passes.Inc()
	m.perPass[name].ObserveDuration(d)
}
