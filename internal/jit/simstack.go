package jit

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
)

// ssKind classifies a parse-time simulation-stack entry (the ssPush /
// ssFlushTo machinery of the Stack-to-Register mapping Cogit).
type ssKind int

const (
	ssConst ssKind = iota // a known constant, no code emitted yet
	ssReg                 // value lives in a register
	ssSpill               // value lives on the machine stack
)

type ssEntry struct {
	kind ssKind
	w    heap.Word
	reg  machine.Reg
}

func (e ssEntry) String() string {
	switch e.kind {
	case ssConst:
		return fmt.Sprintf("const(%d)", e.w)
	case ssReg:
		return fmt.Sprintf("reg(%s)", e.reg)
	default:
		return "spilled"
	}
}

// regAllocator hands out scratch registers during byte-code compilation.
// The two policies are what distinguishes StackToRegisterCogit from
// RegisterAllocatingCogit.
type regAllocator interface {
	// alloc returns a free register, or ok=false when the pool is
	// exhausted (the Cogit then spills the simulation stack and retries).
	alloc() (machine.Reg, bool)
	free(r machine.Reg)
	reset()
}

// fixedAllocator is the StackToRegisterCogit policy: a fixed two-register
// rotation (TempReg/ExtraReg), spilling eagerly when both are live.
type fixedAllocator struct {
	inUse map[machine.Reg]bool
}

func newFixedAllocator() *fixedAllocator {
	return &fixedAllocator{inUse: make(map[machine.Reg]bool)}
}

func (a *fixedAllocator) alloc() (machine.Reg, bool) {
	for _, r := range []machine.Reg{machine.TempReg, machine.ExtraReg, machine.R1} {
		if !a.inUse[r] {
			a.inUse[r] = true
			return r, true
		}
	}
	return 0, false
}

func (a *fixedAllocator) free(r machine.Reg) { delete(a.inUse, r) }
func (a *fixedAllocator) reset()             { a.inUse = make(map[machine.Reg]bool) }

// linearAllocator is the RegisterAllocatingCogit policy: a linear scan
// over the byte-code keeps a wider pool live and reuses the least recently
// released register, reducing spills.
type linearAllocator struct {
	pool  []machine.Reg
	inUse map[machine.Reg]bool
	// order tracks allocation sequence for deterministic linear reuse.
	seq   int
	birth map[machine.Reg]int
}

func newLinearAllocator() *linearAllocator {
	return &linearAllocator{
		pool:  []machine.Reg{machine.R1, machine.R2, machine.R3, machine.TempReg, machine.ExtraReg},
		inUse: make(map[machine.Reg]bool),
		birth: make(map[machine.Reg]int),
	}
}

func (a *linearAllocator) alloc() (machine.Reg, bool) {
	var best machine.Reg
	bestBirth := -1
	found := false
	for _, r := range a.pool {
		if a.inUse[r] {
			continue
		}
		if !found || a.birth[r] < bestBirth {
			best, bestBirth, found = r, a.birth[r], true
		}
	}
	if !found {
		return 0, false
	}
	a.seq++
	a.inUse[best] = true
	a.birth[best] = a.seq
	return best, true
}

func (a *linearAllocator) free(r machine.Reg) { delete(a.inUse, r) }
func (a *linearAllocator) reset() {
	a.inUse = make(map[machine.Reg]bool)
	a.birth = make(map[machine.Reg]int)
	a.seq = 0
}
