package jit

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
)

// ssKind classifies a parse-time simulation-stack entry (the ssPush /
// ssFlushTo machinery of the Stack-to-Register mapping Cogit).
type ssKind int

const (
	ssConst ssKind = iota // a known constant, no code emitted yet
	ssReg                 // value lives in a register
	ssSpill               // value lives on the machine stack
)

type ssEntry struct {
	kind ssKind
	w    heap.Word
	reg  ir.Reg
}

func (e ssEntry) String() string {
	switch e.kind {
	case ssConst:
		return fmt.Sprintf("const(%d)", e.w)
	case ssReg:
		return fmt.Sprintf("reg(%s)", e.reg)
	default:
		return "spilled"
	}
}

// regAllocator hands out scratch registers during byte-code compilation.
// The two policies are what distinguishes StackToRegisterCogit from
// RegisterAllocatingCogit.
type regAllocator interface {
	// alloc returns a free register, or ok=false when the pool is
	// exhausted (the Cogit then spills the simulation stack and retries).
	alloc() (ir.Reg, bool)
	free(r ir.Reg)
	reset()
}

// fixedAllocator is the StackToRegisterCogit policy: a fixed rotation
// over a small virtual-register pool, spilling eagerly when all are
// live. Lowering maps the virtuals onto the variant's physical pool.
type fixedAllocator struct {
	inUse map[ir.Reg]bool
}

func newFixedAllocator() *fixedAllocator {
	return &fixedAllocator{inUse: make(map[ir.Reg]bool)}
}

func (a *fixedAllocator) alloc() (ir.Reg, bool) {
	for _, r := range []ir.Reg{ir.V(0), ir.V(1), ir.V(2)} {
		if !a.inUse[r] {
			a.inUse[r] = true
			return r, true
		}
	}
	return 0, false
}

func (a *fixedAllocator) free(r ir.Reg) { delete(a.inUse, r) }
func (a *fixedAllocator) reset()        { a.inUse = make(map[ir.Reg]bool) }

// linearAllocator is the RegisterAllocatingCogit policy: a linear scan
// over the byte-code keeps a wider pool live and reuses the least recently
// released register, reducing spills.
type linearAllocator struct {
	pool  []ir.Reg
	inUse map[ir.Reg]bool
	// order tracks allocation sequence for deterministic linear reuse.
	seq   int
	birth map[ir.Reg]int
}

func newLinearAllocator() *linearAllocator {
	return &linearAllocator{
		pool:  []ir.Reg{ir.V(0), ir.V(1), ir.V(2), ir.V(3), ir.V(4)},
		inUse: make(map[ir.Reg]bool),
		birth: make(map[ir.Reg]int),
	}
}

func (a *linearAllocator) alloc() (ir.Reg, bool) {
	var best ir.Reg
	bestBirth := -1
	found := false
	for _, r := range a.pool {
		if a.inUse[r] {
			continue
		}
		if !found || a.birth[r] < bestBirth {
			best, bestBirth, found = r, a.birth[r], true
		}
	}
	if !found {
		return 0, false
	}
	a.seq++
	a.inUse[best] = true
	a.birth[best] = a.seq
	return best, true
}

func (a *linearAllocator) free(r ir.Reg) { delete(a.inUse, r) }
func (a *linearAllocator) reset() {
	a.inUse = make(map[ir.Reg]bool)
	a.birth = make(map[ir.Reg]int)
	a.seq = 0
}
