package jit

import (
	"fmt"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
)

// BenchmarkCompile measures front-end-to-machine-code compilation of a
// representative byte-code (primAdd: tagged fast path, overflow checks and
// a slow-path send) per variant and ISA. EXPERIMENTS.md records the
// before/after numbers across the IR-pipeline refactor.
func BenchmarkCompile(b *testing.B) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "bench", Code: []byte{byte(bytecode.OpPrimAdd)}}
	input := []heap.Word{heap.SmallIntFor(3), heap.SmallIntFor(4)}
	for _, v := range []Variant{SimpleStackBasedCogit, StackToRegisterCogit, RegisterAllocatingCogit} {
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			b.Run(fmt.Sprintf("%s/%s", v, isa), func(b *testing.B) {
				cogit := NewCogit(v, isa, om, defects.ProductionVM())
				for i := 0; i < b.N; i++ {
					if _, err := cogit.CompileBytecode(m, input); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
