package jit

import (
	"fmt"
	"time"

	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/irverify"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// NativeMethodCompiler is the hand-written template-based compiler of
// native methods (§4.1): each primitive index maps to an IR template. The
// compiled convention is the machine-code side of the hybrid native-method
// schema (§4.2): receiver in ReceiverResultReg, arguments in Arg0..Arg2,
// success returns to the caller with the result in ReceiverResultReg,
// failure jumps to the fall-through breakpoint (Listing 4).
type NativeMethodCompiler struct {
	ISA     machine.ISA
	OM      *heap.ObjectMemory
	Defects defects.Switches

	// OnStage, when non-nil, observes the template IR before lowering.
	// Native methods run no passes, so the only stage is "front-end".
	OnStage func(stage string, fn *ir.Fn)

	// Metrics, when non-nil, counts compiled units. Native methods run
	// no passes, so no pass timing applies.
	Metrics *PassMetrics

	// NoVerify disables the static IR verifier over the template output.
	// Native methods run no passes, so only the well-formedness and
	// stack-balance rules apply, after the single "front-end" stage.
	NoVerify bool

	b   *ir.Builder
	seq int
}

// NewNativeMethodCompiler builds a native-method compiler over om.
func NewNativeMethodCompiler(isa machine.ISA, om *heap.ObjectMemory, sw defects.Switches) *NativeMethodCompiler {
	return &NativeMethodCompiler{ISA: isa, OM: om, Defects: sw}
}

func (n *NativeMethodCompiler) label(prefix string) string {
	n.seq++
	return fmt.Sprintf("%s_%d", prefix, n.seq)
}

// fallthroughLabel is where every failing check jumps; CompileNativeMethod
// plants the fall-through breakpoint there.
const fallthroughLabel = "fallthrough"

// CompileNativeMethod compiles the native behavior of one primitive and
// appends the stop instruction that detects fall-through cases.
func (n *NativeMethodCompiler) CompileNativeMethod(p *primitives.Primitive) (*CompiledMethod, error) {
	n.b = ir.NewBuilder()
	n.seq = 0

	if defects.IsMissingInJIT(n.Defects, p.Name, p.Category) {
		// Never implemented in the 32-bit compiler: the generated stub
		// raises not-yet-implemented at run time (§5.3).
		n.b.Brk(BrkNotImplemented)
		return n.finish()
	}
	if err := n.genTemplate(p); err != nil {
		return nil, err
	}
	n.b.Label(fallthroughLabel)
	n.b.Brk(BrkNativeFallthrough)
	return n.finish()
}

// finish lowers the template IR directly: native templates run no
// optimization passes and use no virtual registers, so the pool is nil.
func (n *NativeMethodCompiler) finish() (*CompiledMethod, error) {
	fn, err := n.b.Finish()
	if err != nil {
		return nil, err
	}
	if n.OnStage != nil {
		n.OnStage("front-end", fn)
	}
	if !n.NoVerify {
		var t0 time.Time
		if n.Metrics != nil {
			t0 = time.Now() //cogdiff:allow-nondeterminism compile timing feeds telemetry histograms only
		}
		vs := (irverify.Options{}).Verify(fn)
		if n.Metrics != nil {
			n.Metrics.observeVerify(time.Since(t0), len(vs)) //cogdiff:allow-nondeterminism compile timing feeds telemetry histograms only
		}
		if len(vs) > 0 {
			return nil, &irverify.Error{Stage: "front-end", Violations: vs}
		}
	}
	prog, err := machine.Lower(fn, n.ISA, machine.CodeBase, nil)
	if err != nil {
		return nil, err
	}
	code, err := machine.Encode(prog, n.ISA)
	if err != nil {
		return nil, err
	}
	n.Metrics.unitCompiled()
	return &CompiledMethod{Prog: prog, Code: code, ISA: n.ISA}, nil
}

// ---- shared shapes ----

func (n *NativeMethodCompiler) checkSmallIntOrFail(r ir.Reg) {
	n.b.BinI(ir.OpcAndI, ir.ScratchReg, r, 1)
	n.b.CmpI(ir.ScratchReg, 1)
	n.b.Jump(ir.OpcJne, fallthroughLabel)
}

func (n *NativeMethodCompiler) checkPointerOrFail(r ir.Reg) {
	n.b.BinI(ir.OpcAndI, ir.ScratchReg, r, 1)
	n.b.CmpI(ir.ScratchReg, 1)
	n.b.Jump(ir.OpcJeq, fallthroughLabel)
}

// checkClassIndexOrFail verifies classIndexOf(r) = idx for a heap object
// (immediates fail first).
func (n *NativeMethodCompiler) checkClassIndexOrFail(r ir.Reg, idx int) {
	n.checkPointerOrFail(r)
	n.b.Load(ir.ScratchReg, r, 0)
	n.b.BinI(ir.OpcSarI, ir.ScratchReg, ir.ScratchReg, heap.HeaderClassShift)
	n.b.CmpI(ir.ScratchReg, int64(idx))
	n.b.Jump(ir.OpcJne, fallthroughLabel)
}

// cmpImm emits a compare-immediate; lowering materializes out-of-range
// immediates on the fixed-width ISA.
func (n *NativeMethodCompiler) cmpImm(rs ir.Reg, imm int64) {
	n.b.CmpI(rs, imm)
}

func (n *NativeMethodCompiler) rangeCheckOrFail(r ir.Reg) {
	n.cmpImm(r, heap.MaxSmallInt)
	n.b.Jump(ir.OpcJgt, fallthroughLabel)
	n.cmpImm(r, heap.MinSmallInt)
	n.b.Jump(ir.OpcJlt, fallthroughLabel)
}

func (n *NativeMethodCompiler) tag(r ir.Reg) {
	n.b.BinI(ir.OpcShlI, r, r, 1)
	n.b.BinI(ir.OpcOrI, r, r, 1)
}

func (n *NativeMethodCompiler) untag(rd, rs ir.Reg) {
	n.b.BinI(ir.OpcSarI, rd, rs, 1)
}

// retBool returns the boolean object selected by the pending jump opcode.
func (n *NativeMethodCompiler) retBool(jcc ir.Opc) {
	t := n.label("true")
	n.b.Jump(jcc, t)
	n.b.MovI(ir.ReceiverResultReg, int64(n.OM.FalseObj))
	n.b.Ret()
	n.b.Label(t)
	n.b.MovI(ir.ReceiverResultReg, int64(n.OM.TrueObj))
	n.b.Ret()
}

// slotBoundsCheckOrFail leaves the untagged 1-based index in idxOut and
// the slot count in ScratchReg, failing when the index is out of bounds.
func (n *NativeMethodCompiler) slotBoundsCheckOrFail(obj, taggedIdx, idxOut ir.Reg) {
	n.untag(idxOut, taggedIdx)
	n.b.CmpI(idxOut, 1)
	n.b.Jump(ir.OpcJlt, fallthroughLabel)
	n.b.Load(ir.ScratchReg, obj, 0)
	n.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderSlotMask)
	n.b.Cmp(idxOut, ir.ScratchReg)
	n.b.Jump(ir.OpcJgt, fallthroughLabel)
}

// genTemplate dispatches on the primitive index.
func (n *NativeMethodCompiler) genTemplate(p *primitives.Primitive) error {
	switch {
	case p.Index >= primitives.PrimIdxAdd && p.Index <= primitives.PrimIdxAsCharacter:
		return n.genIntegerTemplate(p)
	case p.Index >= primitives.PrimIdxAsFloat && p.Index <= primitives.PrimIdxFloatExp:
		return n.genFloatTemplate(p)
	case p.Index >= primitives.PrimIdxFFIBase:
		return n.genFFITemplate(p)
	default:
		return n.genObjectTemplate(p)
	}
}
