package jit

import (
	"fmt"

	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// NativeMethodCompiler is the hand-written template-based compiler of
// native methods (§4.1): each primitive index maps to an IR template. The
// compiled convention is the machine-code side of the hybrid native-method
// schema (§4.2): receiver in ReceiverResultReg, arguments in Arg0..Arg2,
// success returns to the caller with the result in ReceiverResultReg,
// failure jumps to the fall-through breakpoint (Listing 4).
type NativeMethodCompiler struct {
	ISA     machine.ISA
	OM      *heap.ObjectMemory
	Defects defects.Switches

	asm *machine.Assembler
	seq int
}

// NewNativeMethodCompiler builds a native-method compiler over om.
func NewNativeMethodCompiler(isa machine.ISA, om *heap.ObjectMemory, sw defects.Switches) *NativeMethodCompiler {
	return &NativeMethodCompiler{ISA: isa, OM: om, Defects: sw}
}

func (n *NativeMethodCompiler) label(prefix string) string {
	n.seq++
	return fmt.Sprintf("%s_%d", prefix, n.seq)
}

// fallthroughLabel is where every failing check jumps; CompileNativeMethod
// plants the fall-through breakpoint there.
const fallthroughLabel = "fallthrough"

// CompileNativeMethod compiles the native behavior of one primitive and
// appends the stop instruction that detects fall-through cases.
func (n *NativeMethodCompiler) CompileNativeMethod(p *primitives.Primitive) (*CompiledMethod, error) {
	n.asm = machine.NewAssembler(machine.CodeBase)
	n.seq = 0

	if defects.IsMissingInJIT(n.Defects, p.Name, p.Category) {
		// Never implemented in the 32-bit compiler: the generated stub
		// raises not-yet-implemented at run time (§5.3).
		n.asm.Brk(BrkNotImplemented)
		return n.finish()
	}
	if err := n.genTemplate(p); err != nil {
		return nil, err
	}
	n.asm.Label(fallthroughLabel)
	n.asm.Brk(BrkNativeFallthrough)
	return n.finish()
}

func (n *NativeMethodCompiler) finish() (*CompiledMethod, error) {
	prog, err := n.asm.Finish()
	if err != nil {
		return nil, err
	}
	code, err := machine.Encode(prog, n.ISA)
	if err != nil {
		return nil, err
	}
	return &CompiledMethod{Prog: prog, Code: code, ISA: n.ISA}, nil
}

// ---- shared shapes ----

func (n *NativeMethodCompiler) checkSmallIntOrFail(r machine.Reg) {
	n.asm.BinI(machine.OpcAndI, machine.ScratchReg, r, 1)
	n.asm.CmpI(machine.ScratchReg, 1)
	n.asm.Jump(machine.OpcJne, fallthroughLabel)
}

func (n *NativeMethodCompiler) checkPointerOrFail(r machine.Reg) {
	n.asm.BinI(machine.OpcAndI, machine.ScratchReg, r, 1)
	n.asm.CmpI(machine.ScratchReg, 1)
	n.asm.Jump(machine.OpcJeq, fallthroughLabel)
}

// checkClassIndexOrFail verifies classIndexOf(r) = idx for a heap object
// (immediates fail first).
func (n *NativeMethodCompiler) checkClassIndexOrFail(r machine.Reg, idx int) {
	n.checkPointerOrFail(r)
	n.asm.Load(machine.ScratchReg, r, 0)
	n.asm.BinI(machine.OpcSarI, machine.ScratchReg, machine.ScratchReg, heap.HeaderClassShift)
	n.asm.CmpI(machine.ScratchReg, int64(idx))
	n.asm.Jump(machine.OpcJne, fallthroughLabel)
}

func (n *NativeMethodCompiler) cmpImm(rs machine.Reg, imm int64) {
	if n.ISA == machine.ISAArm32Like && (imm >= armImmLimit || imm <= -armImmLimit) {
		n.asm.MovI(machine.ScratchReg, imm)
		n.asm.Cmp(rs, machine.ScratchReg)
		return
	}
	n.asm.CmpI(rs, imm)
}

func (n *NativeMethodCompiler) rangeCheckOrFail(r machine.Reg) {
	n.cmpImm(r, heap.MaxSmallInt)
	n.asm.Jump(machine.OpcJgt, fallthroughLabel)
	n.cmpImm(r, heap.MinSmallInt)
	n.asm.Jump(machine.OpcJlt, fallthroughLabel)
}

func (n *NativeMethodCompiler) tag(r machine.Reg) {
	n.asm.BinI(machine.OpcShlI, r, r, 1)
	n.asm.BinI(machine.OpcOrI, r, r, 1)
}

func (n *NativeMethodCompiler) untag(rd, rs machine.Reg) {
	n.asm.BinI(machine.OpcSarI, rd, rs, 1)
}

// retBool returns the boolean object selected by the pending jump opcode.
func (n *NativeMethodCompiler) retBool(jcc machine.Opc) {
	t := n.label("true")
	n.asm.Jump(jcc, t)
	n.asm.MovI(machine.ReceiverResultReg, int64(n.OM.FalseObj))
	n.asm.Ret()
	n.asm.Label(t)
	n.asm.MovI(machine.ReceiverResultReg, int64(n.OM.TrueObj))
	n.asm.Ret()
}

// slotBoundsCheckOrFail leaves the untagged 1-based index in idxOut and
// the slot count in ScratchReg, failing when the index is out of bounds.
func (n *NativeMethodCompiler) slotBoundsCheckOrFail(obj, taggedIdx, idxOut machine.Reg) {
	n.untag(idxOut, taggedIdx)
	n.asm.CmpI(idxOut, 1)
	n.asm.Jump(machine.OpcJlt, fallthroughLabel)
	n.asm.Load(machine.ScratchReg, obj, 0)
	n.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, heap.HeaderSlotMask)
	n.asm.Cmp(idxOut, machine.ScratchReg)
	n.asm.Jump(machine.OpcJgt, fallthroughLabel)
}

// genTemplate dispatches on the primitive index.
func (n *NativeMethodCompiler) genTemplate(p *primitives.Primitive) error {
	switch {
	case p.Index >= primitives.PrimIdxAdd && p.Index <= primitives.PrimIdxAsCharacter:
		return n.genIntegerTemplate(p)
	case p.Index >= primitives.PrimIdxAsFloat && p.Index <= primitives.PrimIdxFloatExp:
		return n.genFloatTemplate(p)
	case p.Index >= primitives.PrimIdxFFIBase:
		return n.genFFITemplate(p)
	default:
		return n.genObjectTemplate(p)
	}
}
