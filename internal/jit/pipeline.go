package jit

import (
	"cogdiff/internal/defects"
	"cogdiff/internal/ir"
)

// The pass pipeline table: each byte-code variant registers the pass
// constructors it runs between its front-end and lowering. Constructors
// take the defect switches so pass-targeted defects (the deliberately
// unsound constant fold) can be injected per campaign configuration.
//
// All three byte-code variants currently share one pipeline; the native
// method compiler runs none (its templates are already shaped). Order
// matters: dead-push/pop elimination first turns the simple variant's
// materialize-and-reload traffic into register moves that constant
// folding can then see through.
var pipelineTable = map[Variant][]func(defects.Switches) ir.Pass{
	SimpleStackBasedCogit:   standardPasses,
	StackToRegisterCogit:    standardPasses,
	RegisterAllocatingCogit: standardPasses,
	MetaJITCogit:            standardPasses,
}

var standardPasses = []func(defects.Switches) ir.Pass{
	func(defects.Switches) ir.Pass { return ir.DeadPushPop() },
	func(sw defects.Switches) ir.Pass { return ir.ConstFold(sw.ConstFoldSignError) },
	func(sw defects.Switches) ir.Pass { return ir.Peephole(sw.VerifyStackLeak) },
}

// PipelineFor instantiates the variant's registered pass pipeline under
// the given defect switches.
func PipelineFor(v Variant, sw defects.Switches) []ir.Pass {
	ctors := pipelineTable[v]
	passes := make([]ir.Pass, 0, len(ctors))
	for _, mk := range ctors {
		passes = append(passes, mk(sw))
	}
	return passes
}
