package jit

// SemanticsVersion stamps the compilers' observable behaviour: the IR,
// the optimization pass pipeline and the per-compiler code generation.
// Any change that could alter a compiled observation must bump this,
// orphaning all cached test-unit verdicts (internal/excache unit keys
// embed it; exploration entries are unaffected).
const SemanticsVersion = "jit/1"
