package jit

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/primitives"
)

// emitIndexableFormatCheckN loads the header into hdr and fails unless the
// receiver format is indexable; the format is left in ScratchReg.
func (n *NativeMethodCompiler) emitIndexableFormatCheckN(obj, hdr ir.Reg, bytesOnly bool) {
	ok := n.label("fmtok")
	n.b.Load(hdr, obj, 0)
	n.b.BinI(ir.OpcSarI, ir.ScratchReg, hdr, heap.HeaderSlotBits)
	n.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderFormatMask)
	if bytesOnly {
		n.b.CmpI(ir.ScratchReg, int64(heap.FormatBytes))
		n.b.Jump(ir.OpcJne, fallthroughLabel)
		return
	}
	n.b.CmpI(ir.ScratchReg, int64(heap.FormatPointers))
	n.b.Jump(ir.OpcJeq, ok)
	n.b.CmpI(ir.ScratchReg, int64(heap.FormatWords))
	n.b.Jump(ir.OpcJeq, ok)
	n.b.CmpI(ir.ScratchReg, int64(heap.FormatBytes))
	n.b.Jump(ir.OpcJne, fallthroughLabel)
	n.b.Label(ok)
}

// genObjectTemplate compiles the object access, identity and allocation
// native methods.
func (n *NativeMethodCompiler) genObjectTemplate(p *primitives.Primitive) error {
	rcvr := ir.ReceiverResultReg
	res := ir.TempReg

	switch p.Index {
	case primitives.PrimIdxAt, primitives.PrimIdxStringAt:
		n.checkPointerOrFail(rcvr)
		n.emitIndexableFormatCheckN(rcvr, ir.ClassSelectorReg, p.Index == primitives.PrimIdxStringAt)
		n.checkSmallIntOrFail(ir.Arg0Reg)
		n.slotBoundsCheckOrFail(rcvr, ir.Arg0Reg, res)
		n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: res, Rs1: rcvr, Rs2: res})
		if p.Index == primitives.PrimIdxStringAt {
			n.tag(res)
		} else {
			// Raw formats answer tagged integers; pointer formats answer
			// the slot value. The format survives in ClassSelectorReg's
			// header copy; recompute from it.
			noTag := n.label("noTag")
			n.b.BinI(ir.OpcSarI, ir.ScratchReg, ir.ClassSelectorReg, heap.HeaderSlotBits)
			n.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderFormatMask)
			n.b.CmpI(ir.ScratchReg, int64(heap.FormatPointers))
			n.b.Jump(ir.OpcJeq, noTag)
			n.tag(res)
			n.b.Label(noTag)
		}
		n.b.MovR(rcvr, res)
		n.b.Ret()

	case primitives.PrimIdxAtPut, primitives.PrimIdxStringAtPut:
		val := ir.Arg1Reg
		n.checkPointerOrFail(rcvr)
		n.emitIndexableFormatCheckN(rcvr, ir.ClassSelectorReg, p.Index == primitives.PrimIdxStringAtPut)
		n.checkSmallIntOrFail(ir.Arg0Reg)
		// Raw formats require tagged-integer values; bytes are range
		// checked.
		ptrStore := n.label("ptrStore")
		rawStore := n.label("rawStore")
		n.b.BinI(ir.OpcSarI, ir.ScratchReg, ir.ClassSelectorReg, heap.HeaderSlotBits)
		n.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderFormatMask)
		n.b.CmpI(ir.ScratchReg, int64(heap.FormatPointers))
		n.b.Jump(ir.OpcJeq, ptrStore)
		n.checkSmallIntOrFail(val)
		n.b.CmpI(ir.ScratchReg, int64(heap.FormatWords))
		n.b.Jump(ir.OpcJeq, rawStore)
		n.cmpImm(val, int64(heap.SmallIntFor(0)))
		n.b.Jump(ir.OpcJlt, fallthroughLabel)
		n.cmpImm(val, int64(heap.SmallIntFor(255)))
		n.b.Jump(ir.OpcJgt, fallthroughLabel)
		n.b.Label(rawStore)
		n.slotBoundsCheckOrFail(rcvr, ir.Arg0Reg, res)
		n.untag(ir.ScratchReg, val)
		n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.ScratchReg, Rs1: rcvr, Rs2: res})
		n.b.MovR(rcvr, val)
		n.b.Ret()
		n.b.Label(ptrStore)
		n.slotBoundsCheckOrFail(rcvr, ir.Arg0Reg, res)
		n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: val, Rs1: rcvr, Rs2: res})
		n.b.MovR(rcvr, val)
		n.b.Ret()

	case primitives.PrimIdxSize:
		n.checkPointerOrFail(rcvr)
		n.emitIndexableFormatCheckN(rcvr, res, false)
		n.b.BinI(ir.OpcAndI, res, res, heap.HeaderSlotMask)
		n.tag(res)
		n.b.MovR(rcvr, res)
		n.b.Ret()

	case primitives.PrimIdxBasicNew, primitives.PrimIdxBasicNewWith:
		n.checkClassIndexOrFail(rcvr, heap.ClassIndexMetaclass)
		// Verify the receiver is the registered class object: the class
		// table entry for its stored index must be the receiver itself
		// (the compiled analogue of the interpreter's table lookup).
		n.b.Load(res, rcvr, heap.HeaderWords) // tagged class index
		n.checkSmallIntOrFail(res)
		n.untag(res, res)
		n.b.CmpI(res, 0)
		n.b.Jump(ir.OpcJlt, fallthroughLabel)
		n.cmpImm(res, heap.ClassTableSize-1)
		n.b.Jump(ir.OpcJgt, fallthroughLabel)
		n.b.MovI(ir.ScratchReg, heap.ClassTableBase)
		n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: ir.ScratchReg, Rs1: ir.ScratchReg, Rs2: res})
		n.b.Cmp(ir.ScratchReg, rcvr)
		n.b.Jump(ir.OpcJne, fallthroughLabel)
		// Fixed slots from the class object; indexable size from the
		// argument for basicNew:.
		n.b.Load(ir.ExtraReg, rcvr, heap.HeaderWords+2)
		n.untag(ir.ExtraReg, ir.ExtraReg)
		if p.Index == primitives.PrimIdxBasicNewWith {
			// basicNew: requires an indexable instance format.
			n.b.Load(ir.ScratchReg, rcvr, heap.HeaderWords+1)
			n.untag(ir.ScratchReg, ir.ScratchReg)
			okFmt := n.label("fmtok")
			n.b.CmpI(ir.ScratchReg, int64(heap.FormatPointers))
			n.b.Jump(ir.OpcJeq, okFmt)
			n.b.CmpI(ir.ScratchReg, int64(heap.FormatWords))
			n.b.Jump(ir.OpcJeq, okFmt)
			n.b.CmpI(ir.ScratchReg, int64(heap.FormatBytes))
			n.b.Jump(ir.OpcJne, fallthroughLabel)
			n.b.Label(okFmt)
			n.checkSmallIntOrFail(ir.Arg0Reg)
			n.b.CmpI(ir.Arg0Reg, int64(heap.SmallIntFor(0)))
			n.b.Jump(ir.OpcJlt, fallthroughLabel)
			n.cmpImm(ir.Arg0Reg, int64(heap.SmallIntFor(1<<20)))
			n.b.Jump(ir.OpcJgt, fallthroughLabel)
			n.untag(ir.ScratchReg, ir.Arg0Reg)
			n.b.Bin(ir.OpcAdd, ir.ExtraReg, ir.ExtraReg, ir.ScratchReg)
		}
		n.b.Emit(ir.Instr{Op: ir.OpcAlloc, Rd: rcvr, Rs1: res, Rs2: ir.ExtraReg})
		n.b.Ret()

	case primitives.PrimIdxInstVarAt, primitives.PrimIdxInstVarAtPut:
		n.checkPointerOrFail(rcvr)
		n.checkSmallIntOrFail(ir.Arg0Reg)
		n.slotBoundsCheckOrFail(rcvr, ir.Arg0Reg, res)
		if p.Index == primitives.PrimIdxInstVarAt {
			n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: res, Rs1: rcvr, Rs2: res})
			n.b.MovR(rcvr, res)
		} else {
			n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.Arg1Reg, Rs1: rcvr, Rs2: res})
			n.b.MovR(rcvr, ir.Arg1Reg)
		}
		n.b.Ret()

	case primitives.PrimIdxIdentityHash:
		n.checkPointerOrFail(rcvr)
		n.b.BinI(ir.OpcSarI, res, rcvr, 1)
		n.b.MovI(ir.ScratchReg, 0x3FFFFFFF)
		n.b.Bin(ir.OpcAnd, res, res, ir.ScratchReg)
		n.tag(res)
		n.b.MovR(rcvr, res)
		n.b.Ret()

	case primitives.PrimIdxShallowCopy:
		intCase := n.label("isInt")
		n.b.BinI(ir.OpcAndI, ir.ScratchReg, rcvr, 1)
		n.b.CmpI(ir.ScratchReg, 1)
		n.b.Jump(ir.OpcJeq, intCase)
		// Allocate a same-class, same-size object and copy the body.
		n.b.Load(ir.ClassSelectorReg, rcvr, 0) // header
		n.b.BinI(ir.OpcSarI, res, ir.ClassSelectorReg, heap.HeaderClassShift)
		n.b.BinI(ir.OpcAndI, ir.ClassSelectorReg, ir.ClassSelectorReg, heap.HeaderSlotMask)
		n.b.Emit(ir.Instr{Op: ir.OpcAlloc, Rd: ir.ExtraReg, Rs1: res, Rs2: ir.ClassSelectorReg})
		loop := n.label("copy")
		done := n.label("done")
		n.b.MovI(res, 1) // body offset cursor
		n.b.Label(loop)
		n.b.Cmp(res, ir.ClassSelectorReg)
		n.b.Jump(ir.OpcJgt, done)
		n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: ir.ScratchReg, Rs1: rcvr, Rs2: res})
		n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.ScratchReg, Rs1: ir.ExtraReg, Rs2: res})
		n.b.BinI(ir.OpcAddI, res, res, 1)
		n.b.Jump(ir.OpcJmp, loop)
		n.b.Label(done)
		n.b.MovR(rcvr, ir.ExtraReg)
		n.b.Ret()
		n.b.Label(intCase)
		n.b.Ret()

	case primitives.PrimIdxIdentical, primitives.PrimIdxNotIdentical:
		n.b.Cmp(rcvr, ir.Arg0Reg)
		if p.Index == primitives.PrimIdxIdentical {
			n.retBool(ir.OpcJeq)
		} else {
			n.retBool(ir.OpcJne)
		}

	case primitives.PrimIdxClass:
		intCase := n.label("isInt")
		n.b.BinI(ir.OpcAndI, ir.ScratchReg, rcvr, 1)
		n.b.CmpI(ir.ScratchReg, 1)
		n.b.Jump(ir.OpcJeq, intCase)
		n.b.Load(ir.ScratchReg, rcvr, 0)
		n.b.BinI(ir.OpcSarI, ir.ScratchReg, ir.ScratchReg, heap.HeaderClassShift)
		n.b.MovI(res, heap.ClassTableBase)
		n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: rcvr, Rs1: res, Rs2: ir.ScratchReg})
		n.b.Ret()
		n.b.Label(intCase)
		n.b.MovI(rcvr, int64(n.OM.ClassAt(heap.ClassIndexSmallInteger).Oop))
		n.b.Ret()

	default:
		return fmt.Errorf("%w: no object template for %s", ErrNotCompilable, p.Name)
	}
	return nil
}
