package jit

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// emitIndexableFormatCheckN loads the header into hdr and fails unless the
// receiver format is indexable; the format is left in ScratchReg.
func (n *NativeMethodCompiler) emitIndexableFormatCheckN(obj, hdr machine.Reg, bytesOnly bool) {
	ok := n.label("fmtok")
	n.asm.Load(hdr, obj, 0)
	n.asm.BinI(machine.OpcSarI, machine.ScratchReg, hdr, heap.HeaderSlotBits)
	n.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, heap.HeaderFormatMask)
	if bytesOnly {
		n.asm.CmpI(machine.ScratchReg, int64(heap.FormatBytes))
		n.asm.Jump(machine.OpcJne, fallthroughLabel)
		return
	}
	n.asm.CmpI(machine.ScratchReg, int64(heap.FormatPointers))
	n.asm.Jump(machine.OpcJeq, ok)
	n.asm.CmpI(machine.ScratchReg, int64(heap.FormatWords))
	n.asm.Jump(machine.OpcJeq, ok)
	n.asm.CmpI(machine.ScratchReg, int64(heap.FormatBytes))
	n.asm.Jump(machine.OpcJne, fallthroughLabel)
	n.asm.Label(ok)
}

// genObjectTemplate compiles the object access, identity and allocation
// native methods.
func (n *NativeMethodCompiler) genObjectTemplate(p *primitives.Primitive) error {
	rcvr := machine.ReceiverResultReg
	res := machine.TempReg

	switch p.Index {
	case primitives.PrimIdxAt, primitives.PrimIdxStringAt:
		n.checkPointerOrFail(rcvr)
		n.emitIndexableFormatCheckN(rcvr, machine.ClassSelectorReg, p.Index == primitives.PrimIdxStringAt)
		n.checkSmallIntOrFail(machine.Arg0Reg)
		n.slotBoundsCheckOrFail(rcvr, machine.Arg0Reg, res)
		n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: res, Rs1: rcvr, Rs2: res})
		if p.Index == primitives.PrimIdxStringAt {
			n.tag(res)
		} else {
			// Raw formats answer tagged integers; pointer formats answer
			// the slot value. The format survives in ClassSelectorReg's
			// header copy; recompute from it.
			noTag := n.label("noTag")
			n.asm.BinI(machine.OpcSarI, machine.ScratchReg, machine.ClassSelectorReg, heap.HeaderSlotBits)
			n.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, heap.HeaderFormatMask)
			n.asm.CmpI(machine.ScratchReg, int64(heap.FormatPointers))
			n.asm.Jump(machine.OpcJeq, noTag)
			n.tag(res)
			n.asm.Label(noTag)
		}
		n.asm.MovR(rcvr, res)
		n.asm.Ret()

	case primitives.PrimIdxAtPut, primitives.PrimIdxStringAtPut:
		val := machine.Arg1Reg
		n.checkPointerOrFail(rcvr)
		n.emitIndexableFormatCheckN(rcvr, machine.ClassSelectorReg, p.Index == primitives.PrimIdxStringAtPut)
		n.checkSmallIntOrFail(machine.Arg0Reg)
		// Raw formats require tagged-integer values; bytes are range
		// checked.
		ptrStore := n.label("ptrStore")
		rawStore := n.label("rawStore")
		n.asm.BinI(machine.OpcSarI, machine.ScratchReg, machine.ClassSelectorReg, heap.HeaderSlotBits)
		n.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, heap.HeaderFormatMask)
		n.asm.CmpI(machine.ScratchReg, int64(heap.FormatPointers))
		n.asm.Jump(machine.OpcJeq, ptrStore)
		n.checkSmallIntOrFail(val)
		n.asm.CmpI(machine.ScratchReg, int64(heap.FormatWords))
		n.asm.Jump(machine.OpcJeq, rawStore)
		n.cmpImm(val, int64(heap.SmallIntFor(0)))
		n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		n.cmpImm(val, int64(heap.SmallIntFor(255)))
		n.asm.Jump(machine.OpcJgt, fallthroughLabel)
		n.asm.Label(rawStore)
		n.slotBoundsCheckOrFail(rcvr, machine.Arg0Reg, res)
		n.untag(machine.ScratchReg, val)
		n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.ScratchReg, Rs1: rcvr, Rs2: res})
		n.asm.MovR(rcvr, val)
		n.asm.Ret()
		n.asm.Label(ptrStore)
		n.slotBoundsCheckOrFail(rcvr, machine.Arg0Reg, res)
		n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: val, Rs1: rcvr, Rs2: res})
		n.asm.MovR(rcvr, val)
		n.asm.Ret()

	case primitives.PrimIdxSize:
		n.checkPointerOrFail(rcvr)
		n.emitIndexableFormatCheckN(rcvr, res, false)
		n.asm.BinI(machine.OpcAndI, res, res, heap.HeaderSlotMask)
		n.tag(res)
		n.asm.MovR(rcvr, res)
		n.asm.Ret()

	case primitives.PrimIdxBasicNew, primitives.PrimIdxBasicNewWith:
		n.checkClassIndexOrFail(rcvr, heap.ClassIndexMetaclass)
		// Verify the receiver is the registered class object: the class
		// table entry for its stored index must be the receiver itself
		// (the compiled analogue of the interpreter's table lookup).
		n.asm.Load(res, rcvr, heap.HeaderWords) // tagged class index
		n.checkSmallIntOrFail(res)
		n.untag(res, res)
		n.asm.CmpI(res, 0)
		n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		n.cmpImm(res, heap.ClassTableSize-1)
		n.asm.Jump(machine.OpcJgt, fallthroughLabel)
		n.asm.MovI(machine.ScratchReg, heap.ClassTableBase)
		n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: machine.ScratchReg, Rs1: machine.ScratchReg, Rs2: res})
		n.asm.Cmp(machine.ScratchReg, rcvr)
		n.asm.Jump(machine.OpcJne, fallthroughLabel)
		// Fixed slots from the class object; indexable size from the
		// argument for basicNew:.
		n.asm.Load(machine.ExtraReg, rcvr, heap.HeaderWords+2)
		n.untag(machine.ExtraReg, machine.ExtraReg)
		if p.Index == primitives.PrimIdxBasicNewWith {
			// basicNew: requires an indexable instance format.
			n.asm.Load(machine.ScratchReg, rcvr, heap.HeaderWords+1)
			n.untag(machine.ScratchReg, machine.ScratchReg)
			okFmt := n.label("fmtok")
			n.asm.CmpI(machine.ScratchReg, int64(heap.FormatPointers))
			n.asm.Jump(machine.OpcJeq, okFmt)
			n.asm.CmpI(machine.ScratchReg, int64(heap.FormatWords))
			n.asm.Jump(machine.OpcJeq, okFmt)
			n.asm.CmpI(machine.ScratchReg, int64(heap.FormatBytes))
			n.asm.Jump(machine.OpcJne, fallthroughLabel)
			n.asm.Label(okFmt)
			n.checkSmallIntOrFail(machine.Arg0Reg)
			n.asm.CmpI(machine.Arg0Reg, int64(heap.SmallIntFor(0)))
			n.asm.Jump(machine.OpcJlt, fallthroughLabel)
			n.cmpImm(machine.Arg0Reg, int64(heap.SmallIntFor(1<<20)))
			n.asm.Jump(machine.OpcJgt, fallthroughLabel)
			n.untag(machine.ScratchReg, machine.Arg0Reg)
			n.asm.Bin(machine.OpcAdd, machine.ExtraReg, machine.ExtraReg, machine.ScratchReg)
		}
		n.asm.Emit(machine.Instr{Op: machine.OpcAlloc, Rd: rcvr, Rs1: res, Rs2: machine.ExtraReg})
		n.asm.Ret()

	case primitives.PrimIdxInstVarAt, primitives.PrimIdxInstVarAtPut:
		n.checkPointerOrFail(rcvr)
		n.checkSmallIntOrFail(machine.Arg0Reg)
		n.slotBoundsCheckOrFail(rcvr, machine.Arg0Reg, res)
		if p.Index == primitives.PrimIdxInstVarAt {
			n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: res, Rs1: rcvr, Rs2: res})
			n.asm.MovR(rcvr, res)
		} else {
			n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.Arg1Reg, Rs1: rcvr, Rs2: res})
			n.asm.MovR(rcvr, machine.Arg1Reg)
		}
		n.asm.Ret()

	case primitives.PrimIdxIdentityHash:
		n.checkPointerOrFail(rcvr)
		n.asm.BinI(machine.OpcSarI, res, rcvr, 1)
		n.asm.MovI(machine.ScratchReg, 0x3FFFFFFF)
		n.asm.Bin(machine.OpcAnd, res, res, machine.ScratchReg)
		n.tag(res)
		n.asm.MovR(rcvr, res)
		n.asm.Ret()

	case primitives.PrimIdxShallowCopy:
		intCase := n.label("isInt")
		n.asm.BinI(machine.OpcAndI, machine.ScratchReg, rcvr, 1)
		n.asm.CmpI(machine.ScratchReg, 1)
		n.asm.Jump(machine.OpcJeq, intCase)
		// Allocate a same-class, same-size object and copy the body.
		n.asm.Load(machine.ClassSelectorReg, rcvr, 0) // header
		n.asm.BinI(machine.OpcSarI, res, machine.ClassSelectorReg, heap.HeaderClassShift)
		n.asm.BinI(machine.OpcAndI, machine.ClassSelectorReg, machine.ClassSelectorReg, heap.HeaderSlotMask)
		n.asm.Emit(machine.Instr{Op: machine.OpcAlloc, Rd: machine.ExtraReg, Rs1: res, Rs2: machine.ClassSelectorReg})
		loop := n.label("copy")
		done := n.label("done")
		n.asm.MovI(res, 1) // body offset cursor
		n.asm.Label(loop)
		n.asm.Cmp(res, machine.ClassSelectorReg)
		n.asm.Jump(machine.OpcJgt, done)
		n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: machine.ScratchReg, Rs1: rcvr, Rs2: res})
		n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.ScratchReg, Rs1: machine.ExtraReg, Rs2: res})
		n.asm.BinI(machine.OpcAddI, res, res, 1)
		n.asm.Jump(machine.OpcJmp, loop)
		n.asm.Label(done)
		n.asm.MovR(rcvr, machine.ExtraReg)
		n.asm.Ret()
		n.asm.Label(intCase)
		n.asm.Ret()

	case primitives.PrimIdxIdentical, primitives.PrimIdxNotIdentical:
		n.asm.Cmp(rcvr, machine.Arg0Reg)
		if p.Index == primitives.PrimIdxIdentical {
			n.retBool(machine.OpcJeq)
		} else {
			n.retBool(machine.OpcJne)
		}

	case primitives.PrimIdxClass:
		intCase := n.label("isInt")
		n.asm.BinI(machine.OpcAndI, machine.ScratchReg, rcvr, 1)
		n.asm.CmpI(machine.ScratchReg, 1)
		n.asm.Jump(machine.OpcJeq, intCase)
		n.asm.Load(machine.ScratchReg, rcvr, 0)
		n.asm.BinI(machine.OpcSarI, machine.ScratchReg, machine.ScratchReg, heap.HeaderClassShift)
		n.asm.MovI(res, heap.ClassTableBase)
		n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: rcvr, Rs1: res, Rs2: machine.ScratchReg})
		n.asm.Ret()
		n.asm.Label(intCase)
		n.asm.MovI(rcvr, int64(n.OM.ClassAt(heap.ClassIndexSmallInteger).Oop))
		n.asm.Ret()

	default:
		return fmt.Errorf("%w: no object template for %s", ErrNotCompilable, p.Name)
	}
	return nil
}
